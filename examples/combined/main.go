// combined reproduces §6.4.2's headline: combining analyses is as
// simple as concatenating their ALDA sources, and the combined analysis
// runs faster than the sum of its parts because ALDAcc coalesces their
// metadata and shares lookups across them.
package main

import (
	"fmt"
	"log"
	"time"

	alda "repro"
	"repro/internal/analyses"
	"repro/internal/workloads"
)

func timeRun(an *alda.Analysis, prog *alda.Program) (time.Duration, int) {
	inst, err := an.Instrument(prog)
	if err != nil {
		log.Fatal(err)
	}
	// Warm-up + three measured runs, best-of to damp scheduler noise.
	best := time.Duration(0)
	reports := 0
	for i := 0; i < 4; i++ {
		res, err := alda.Run(inst, an, alda.RunConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			continue
		}
		if best == 0 || res.Wall < best {
			best = res.Wall
		}
		reports = len(res.Reports)
	}
	return best, reports
}

func compile(names ...string) *alda.Analysis {
	src, err := analyses.Combined(names...)
	if err != nil {
		log.Fatal(err)
	}
	an, err := alda.Compile(src, alda.DefaultOptions())
	if err != nil {
		log.Fatalf("compile %v: %v", names, err)
	}
	for name, fn := range analyses.FastTrackExternals() {
		an.RegisterExternal(name, fn)
	}
	return an
}

func main() {
	parts := []string{"eraser", "fasttrack", "uaf", "tainttrack"}
	prog, err := workloads.Build("fft", workloads.SizeSmall)
	if err != nil {
		log.Fatal(err)
	}

	plain, err := alda.Run(prog, nil, alda.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fft baseline: %v\n\n", plain.Wall)

	var sum time.Duration
	for _, name := range parts {
		an := compile(name)
		wall, nrep := timeRun(an, prog)
		sum += wall
		fmt.Printf("%-11s alone:    %10v (%.1fx, %d findings)\n",
			name, wall, float64(wall)/float64(plain.Wall), nrep)
	}

	combined := compile(parts...)
	wall, nrep := timeRun(combined, prog)
	fmt.Printf("\nsum of individual runs: %10v (%.1fx)\n", sum, float64(sum)/float64(plain.Wall))
	fmt.Printf("combined (one run):     %10v (%.1fx, %d findings)\n",
		wall, float64(wall)/float64(plain.Wall), nrep)
	fmt.Printf("speedup from combining: %.1f%%\n", (1-float64(wall)/float64(sum))*100)
}
