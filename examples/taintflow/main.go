// taintflow demonstrates local-metadata propagation (§5.5): index taint
// tracking marks bytes read from input as tainted, the VM propagates
// taint through arithmetic on shadow registers automatically, and the
// analysis reports when a tainted value becomes a memory address.
package main

import (
	"fmt"
	"log"

	alda "repro"
	"repro/internal/analyses"
	"repro/internal/mir"
	"repro/internal/workloads"
)

// handRolled builds a program where input flows through arithmetic into
// an array index — three hops from source to sink.
func handRolled() *alda.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	table := b.Call("malloc", mir.C(256*8))
	b.Loop(mir.C(256), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		a := b.Add(mir.R(table), mir.R(off))
		b.Store(mir.R(a), mir.R(i), 8)
	})
	in := b.Call("malloc", mir.C(32))
	g := b.Call("gets", mir.R(in))
	c0 := b.Load(mir.R(g), 1) // tainted byte
	// Arithmetic laundering does not clear taint:
	x1 := b.Mul(mir.R(c0), mir.C(3))
	x2 := b.Add(mir.R(x1), mir.C(5))
	x3 := b.Bin(mir.OpAnd, mir.R(x2), mir.C(255))
	off := b.Mul(mir.R(x3), mir.C(8))
	addr := b.Add(mir.R(table), mir.R(off)) // tainted address
	v := b.Load(mir.R(addr), 8)             // sink
	b.CallVoid("print_i64", mir.R(v))
	b.CallVoid("free", mir.R(table))
	b.CallVoid("free", mir.R(in))
	b.RetVal(mir.C(0))
	return p
}

func main() {
	an, err := alda.Compile(analyses.MustSource("tainttrack"), alda.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		prog *alda.Program
	}{
		{"hand-rolled source->arith->index flow", handRolled()},
		{"ffmpeg with injected input-controlled index", mustBuild("ffmpeg", workloads.BugTaint)},
		{"ffmpeg clean", mustBuild("ffmpeg", workloads.BugNone)},
	} {
		inst, err := an.Instrument(tc.prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alda.Run(inst, an, alda.RunConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d finding(s)\n", tc.name, len(res.Reports))
		for _, r := range res.Reports {
			fmt.Printf("  %v\n", r)
		}
	}
}

func mustBuild(name string, bug workloads.Bug) *alda.Program {
	p, err := workloads.BuildBug(name, workloads.SizeTiny, bug)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
