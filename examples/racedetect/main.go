// racedetect runs the paper's two data-race detectors — Eraser
// (lockset) and FastTrack (happens-before epochs) — over the radiosity
// workload with and without its injected race, showing how the two
// algorithms agree on the real bug.
package main

import (
	"fmt"
	"log"

	alda "repro"
	"repro/internal/analyses"
	"repro/internal/workloads"
)

func run(analysis string, bug workloads.Bug) int {
	an, err := alda.Compile(analyses.MustSource(analysis), alda.DefaultOptions())
	if err != nil {
		log.Fatalf("compile %s: %v", analysis, err)
	}
	// FastTrack's vector clocks live in external functions (ALDA's
	// escape hatch); wire in their Go implementations.
	for name, fn := range analyses.FastTrackExternals() {
		an.RegisterExternal(name, fn)
	}
	prog, err := workloads.BuildBug("radiosity", workloads.SizeTiny, bug)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := an.Instrument(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := alda.Run(inst, an, alda.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Reports {
		fmt.Printf("  %v\n", r)
	}
	return len(res.Reports)
}

func main() {
	for _, analysis := range []string{"eraser", "fasttrack"} {
		fmt.Printf("== %s on radiosity (lock-protected total) ==\n", analysis)
		clean := run(analysis, workloads.BugNone)
		fmt.Printf("== %s on radiosity (unprotected total — injected race) ==\n", analysis)
		buggy := run(analysis, workloads.BugRace)
		fmt.Printf("%s: %d findings clean, %d findings with the race injected\n\n", analysis, clean, buggy)
	}
}
