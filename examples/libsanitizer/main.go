// libsanitizer demonstrates §6.4.1's headline capability: building a
// niche, library-specific sanitizer in minutes. Here we write
// "HeapSan", an allocator-contract checker (double free, free of a
// never-allocated pointer, leak-at-exit) in ~30 lines of ALDA, and run
// it against the memcached workload plus a purpose-built offender.
package main

import (
	_ "embed"
	"fmt"
	"log"

	alda "repro"
	"repro/internal/mir"
	"repro/internal/workloads"
)

//go:embed heapsan.alda
var heapSanSource string

// offender builds a program with a double free and a leak.
func offender() *alda.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	a := b.Call("malloc", mir.C(32))
	b.Store(mir.R(a), mir.C(7), 8)
	b.CallVoid("free", mir.R(a))
	b.CallVoid("free", mir.R(a)) // double free
	leak := b.Call("malloc", mir.C(128))
	b.Store(mir.R(leak), mir.C(9), 8) // never freed
	b.RetVal(mir.C(0))
	return p
}

func check(an *alda.Analysis, name string, prog *alda.Program) {
	inst, err := an.Instrument(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := alda.Run(inst, an, alda.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d finding(s)\n", name, len(res.Reports))
	for _, r := range res.Reports {
		fmt.Printf("  %v\n", r)
	}
}

func main() {
	an, err := alda.Compile(heapSanSource, alda.DefaultOptions())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("HeapSan is %d lines of ALDA\n\n", an.LOC())

	check(an, "offender", offender())

	// A disciplined real program stays clean.
	mc, err := workloads.Build("memcached", workloads.SizeTiny)
	if err != nil {
		log.Fatal(err)
	}
	check(an, "memcached (clean)", mc)

	// The same program with its use-after-free bug keeps HeapSan quiet
	// (freed properly!) — different sanitizers catch different contracts.
	mcUAF, err := workloads.BuildBug("memcached", workloads.SizeTiny, workloads.BugUAF)
	if err != nil {
		log.Fatal(err)
	}
	check(an, "memcached (uaf variant)", mcUAF)
}
