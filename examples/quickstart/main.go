// Quickstart: write a use-after-free checker in ALDA, weave it into a
// small program, and run it — the whole Figure 1 workflow in ~60 lines.
package main

import (
	_ "embed"
	"fmt"
	"log"

	alda "repro"
	"repro/internal/mir"
)

// The analysis: mark freed granules, assert on touch (a compact version
// of the paper's use-after-free example from §3.1.1).
//
//go:embed uaf.alda
var uafSource string

// buildProgram constructs the analyzed program in MIR (the repository's
// LLVM-IR stand-in): allocate, use, free — then use again.
func buildProgram() *alda.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	b.Loop(mir.C(8), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
	})
	b.CallVoid("free", mir.R(buf))
	b.Store(mir.R(buf), mir.C(99), 8) // the bug
	b.RetVal(mir.C(0))
	return p
}

func main() {
	an, err := alda.Compile(uafSource, alda.DefaultOptions())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled %d-line analysis; compilation plan:\n%s\n", an.LOC(), an.Plan())

	prog := buildProgram()
	instrumented, err := an.Instrument(prog)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	res, err := alda.Run(instrumented, an, alda.RunConfig{})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("executed %d instructions, %d analysis events\n", res.Steps, res.HookCalls)
	for _, r := range res.Reports {
		fmt.Println("finding:", r)
	}
	if len(res.Reports) == 0 {
		fmt.Println("no findings (unexpected — this program has a use-after-free!)")
	}
}
