#!/usr/bin/env bash
# serve-smoke: end-to-end drill of the aldaserve robustness contract.
#
#  1. start aldaserve with a write-ahead journal, wait for /readyz
#  2. aldaload burst with deterministic VM fault seeds mixed in —
#     every job must reach a typed terminal state (lost=0)
#  3. queue async jobs, SIGTERM mid-stream — the drain must finish them
#     all and exit 0, and the journal must balance (accepts == dones)
#  4. restart on the same journal — recovery must come up ready with
#     nothing to re-run (the drain left no unfinished work)
#  5. separate server with an injected journal-fsync fault — /readyz
#     must report degradation while jobs keep completing
#
# On failure the server log and journal are dumped (CI uploads them as
# artifacts). Deterministic except for timing; no network beyond
# localhost.
set -uo pipefail

ADDR=127.0.0.1:18321
URL=http://$ADDR
DIR=${SERVE_SMOKE_DIR:-$(mktemp -d /tmp/serve-smoke.XXXXXX)}
mkdir -p "$DIR"
JOURNAL=$DIR/jobs.jsonl
LOG=$DIR/aldaserve.log
SERVER_PID=

cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null
  true
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ($LOG) ---" >&2
  cat "$LOG" 2>/dev/null >&2
  echo "--- journal ($JOURNAL) ---" >&2
  cat "$JOURNAL" 2>/dev/null >&2
  exit 1
}

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$URL/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

echo "serve-smoke: workdir $DIR"
go build -o "$DIR/aldaserve" ./cmd/aldaserve || fail "build aldaserve"
go build -o "$DIR/aldaload" ./cmd/aldaload || fail "build aldaload"

# --- 1. start + ready ------------------------------------------------
"$DIR/aldaserve" -addr "$ADDR" -journal "$JOURNAL" -shards 2 -workers 2 -queue-depth 16 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_ready || fail "server never became ready"
[[ "$(curl -fsS "$URL/readyz")" == "ok" ]] || fail "readyz not ok at startup"

# --- 2. chaos burst --------------------------------------------------
"$DIR/aldaload" -url "$URL" -n 60 -c 8 -fault-seed-every 5 -quiet | tee "$DIR/load.out" \
  || fail "aldaload burst reported lost jobs"
grep -q 'lost=0' "$DIR/load.out" || fail "burst summary missing lost=0"

# --- 3. SIGTERM drain with work in flight ----------------------------
for i in 1 2 3 4 5 6; do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$URL/v1/jobs" \
    -d '{"workload":"sort","analysis":"uaf","tenant":"drain"}') || fail "async submit $i"
  [[ "$code" == 202 ]] || fail "async submit $i got HTTP $code"
done
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=
[[ $rc == 0 ]] || fail "server exited $rc on SIGTERM (drain failed)"
grep -q 'drained cleanly' "$LOG" || fail "no clean-drain log line"

accepts=$(grep -c '"type":"accept"' "$JOURNAL")
dones=$(grep -c '"type":"done"' "$JOURNAL")
[[ "$accepts" == "$dones" ]] || fail "journal imbalance: $accepts accepts vs $dones dones (lost jobs)"
[[ "$accepts" -ge 66 ]] || fail "journal too small: $accepts accepts, expected >= 66"
echo "serve-smoke: drain balanced ($accepts accepts == $dones dones)"

# --- 4. restart on the drained journal -------------------------------
"$DIR/aldaserve" -addr "$ADDR" -journal "$JOURNAL" >"$LOG.2" 2>&1 &
SERVER_PID=$!
LOG=$LOG.2
wait_ready || fail "restart on drained journal never became ready"
curl -fsS "$URL/metrics" | grep -q '"serve.jobs.recovered"' \
  && fail "drained journal still produced recovered jobs"
kill -TERM "$SERVER_PID"; wait "$SERVER_PID" || fail "restart drain failed"
SERVER_PID=

# --- 5. journal-fault degradation ------------------------------------
"$DIR/aldaserve" -addr "$ADDR" -journal "$DIR/chaos.jsonl" -chaos-journal-sync-nth 2 >"$DIR/chaos.log" 2>&1 &
SERVER_PID=$!
LOG=$DIR/chaos.log
wait_ready || fail "chaos server never became ready"
"$DIR/aldaload" -url "$URL" -n 6 -c 2 -quiet >"$DIR/chaos-load.out" \
  || fail "jobs failed under journal fault (availability must survive durability loss)"
grep -q 'lost=0' "$DIR/chaos-load.out" || fail "chaos burst lost jobs"
curl -fsS "$URL/readyz" | grep -q 'degraded: journal' || fail "readyz does not report journal degradation"
kill -TERM "$SERVER_PID"; wait "$SERVER_PID"
SERVER_PID=

echo "serve-smoke: PASS"
