#!/usr/bin/env bash
# obs-live-smoke: end-to-end drill of the live serving-tier
# observability surface.
#
#  1. start aldaserve with a journal, a flight-recorder snapshot path,
#     the adaptive loop, and an injected journal-write fault primed to
#     fire mid-burst
#  2. submit one job and check the trace ID contract: the
#     X-Alda-Trace-Id response header matches the trace_id in the body
#  3. aldaload burst — the summary must report zero lost jobs and carry
#     the p50/p95/p99 latency fields the dashboards grep
#  4. scrape /metrics three ways: default (JSON), Accept: text/plain
#     (Prometheus text exposition), and ?format=prom; the exposition is
#     validated with the strict in-repo parser (aldabench
#     -prom-validate) and probed for the labeled families
#  5. /debug/flight and /debug/spans must serve ring and span dumps
#  6. the journal fault must have auto-dumped a flight snapshot with
#     reason "journal-degraded"; SIGQUIT must overwrite it with a
#     "sigquit" snapshot while the server keeps serving
#  7. SIGTERM drain must still exit 0
#
# On failure the server log and snapshot are dumped (CI uploads the
# workdir as an artifact). No network beyond localhost.
set -uo pipefail

ADDR=127.0.0.1:18322
URL=http://$ADDR
DIR=${OBS_SMOKE_DIR:-$(mktemp -d /tmp/obs-live-smoke.XXXXXX)}
mkdir -p "$DIR"
JOURNAL=$DIR/jobs.jsonl
SNAP=$DIR/flight.json
LOG=$DIR/aldaserve.log
SERVER_PID=

cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null
  true
}
trap cleanup EXIT

fail() {
  echo "obs-live-smoke: FAIL: $*" >&2
  echo "--- server log ($LOG) ---" >&2
  cat "$LOG" 2>/dev/null >&2
  echo "--- flight snapshot ($SNAP) ---" >&2
  cat "$SNAP" 2>/dev/null >&2
  exit 1
}

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$URL/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

echo "obs-live-smoke: workdir $DIR"
go build -o "$DIR/aldaserve" ./cmd/aldaserve || fail "build aldaserve"
go build -o "$DIR/aldaload" ./cmd/aldaload || fail "build aldaload"
go build -o "$DIR/aldabench" ./cmd/aldabench || fail "build aldabench"

# --- 1. start: journal + flight snapshot + adaptive loop + primed fault
"$DIR/aldaserve" -addr "$ADDR" -journal "$JOURNAL" -shards 2 -workers 2 \
  -flight-snapshot "$SNAP" -adapt-after 2 -profile-sample-every 2 \
  -chaos-journal-write-nth 40 >"$LOG" 2>&1 &
SERVER_PID=$!
wait_ready || fail "server never became ready"

# --- 2. trace-ID contract -------------------------------------------
curl -fsS -D "$DIR/headers" -o "$DIR/job.json" -X POST "$URL/v1/jobs?wait=1" \
  -d '{"workload":"sort","analysis":"uaf","tenant":"smoke"}' || fail "submit"
hdr=$(grep -i '^x-alda-trace-id:' "$DIR/headers" | tr -d '\r' | awk '{print $2}')
[[ "$hdr" == t-* ]] || fail "missing/invalid X-Alda-Trace-Id header: '$hdr'"
grep -q "\"trace_id\":\"$hdr\"" "$DIR/job.json" || fail "body trace_id does not match header $hdr"
echo "obs-live-smoke: trace contract ok ($hdr)"

# --- 3. burst with latency summary ----------------------------------
"$DIR/aldaload" -url "$URL" -n 48 -c 6 -quiet | tee "$DIR/load.out" \
  || fail "aldaload burst reported lost jobs"
grep -q 'lost=0' "$DIR/load.out" || fail "burst summary missing lost=0"
grep -Eq 'p50_ms=[0-9.]+ p95_ms=[0-9.]+ p99_ms=[0-9.]+' "$DIR/load.out" \
  || fail "burst summary missing latency percentiles"

# --- 4. metrics: JSON default, prom via Accept and ?format ----------
curl -fsS "$URL/metrics" >"$DIR/metrics.json" || fail "scrape JSON"
grep -q '"serve.jobs.accepted"' "$DIR/metrics.json" || fail "JSON export missing serve.jobs.accepted"
curl -fsS -H 'Accept: text/plain' "$URL/metrics" >"$DIR/metrics.prom" || fail "scrape prom"
head -1 "$DIR/metrics.prom" | grep -q '^# TYPE' || fail "Accept: text/plain did not negotiate the exposition"
"$DIR/aldabench" -prom-validate "$DIR/metrics.prom" || fail "exposition fails the strict parser"
for family in alda_serve_stage_wall_us_bucket alda_serve_endpoint_wall_us_count \
  alda_serve_tenant_wall_us_count alda_serve_queue_depth alda_serve_jobs_by_analysis_total \
  alda_serve_profile_window; do
  grep -q "^$family" "$DIR/metrics.prom" || fail "exposition missing family $family"
done
curl -fsS "$URL/metrics?format=prom" >"$DIR/metrics2.prom" || fail "scrape ?format=prom"
head -1 "$DIR/metrics2.prom" | grep -q '^# TYPE' || fail "?format=prom ignored"

# --- 5. debug endpoints ---------------------------------------------
curl -fsS "$URL/debug/flight" >"$DIR/flight-live.json" || fail "scrape /debug/flight"
grep -q '"shards"' "$DIR/flight-live.json" || fail "/debug/flight has no ring dump"
curl -fsS "$URL/debug/spans" >"$DIR/spans.json" || fail "scrape /debug/spans"
grep -q '"stages"' "$DIR/spans.json" || fail "/debug/spans has no spans"

# --- 6. flight snapshots: journal fault, then SIGQUIT ---------------
# The snapshot fires from the worker that hits the failing journal
# write; give the tail of the burst a moment to land it.
for _ in $(seq 1 50); do
  grep -q '"journal-degraded"' "$SNAP" 2>/dev/null && break
  sleep 0.1
done
grep -q '"journal-degraded"' "$SNAP" || fail "journal fault did not auto-dump a flight snapshot"
kill -QUIT "$SERVER_PID"
for _ in $(seq 1 50); do
  grep -q '"sigquit"' "$SNAP" 2>/dev/null && break
  sleep 0.1
done
grep -q '"sigquit"' "$SNAP" || fail "SIGQUIT did not rewrite the flight snapshot"
curl -fsS "$URL/healthz" >/dev/null || fail "server died on SIGQUIT"

# --- 7. drain --------------------------------------------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=
[[ $rc == 0 ]] || fail "server exited $rc on SIGTERM"

echo "obs-live-smoke: PASS"
