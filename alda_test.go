package alda_test

import (
	"strings"
	"testing"

	alda "repro"
	"repro/internal/analyses"
	"repro/internal/mir"
	"repro/internal/vm"
)

// buildUAFProgram returns a program that writes through a freed pointer
// when bug is true.
func buildUAFProgram(bug bool) *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	// Initialize and sum the buffer.
	b.Loop(mir.C(8), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(i), 8)
	})
	b.CallVoid("free", mir.R(buf))
	if bug {
		b.Store(mir.R(buf), mir.C(99), 8) // use after free
	}
	b.RetVal(mir.C(0))
	return p
}

func TestUAFEndToEnd(t *testing.T) {
	an, err := alda.Compile(analyses.MustSource("uaf"), alda.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	for _, tc := range []struct {
		name    string
		bug     bool
		reports int
	}{
		{"clean", false, 0},
		{"buggy", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := buildUAFProgram(tc.bug)
			inst, err := an.Instrument(prog)
			if err != nil {
				t.Fatalf("instrument: %v", err)
			}
			res, err := alda.Run(inst, an, alda.RunConfig{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.Reports) != tc.reports {
				t.Fatalf("got %d reports, want %d:\n%v", len(res.Reports), tc.reports, res.Reports)
			}
			if tc.bug && !strings.Contains(res.Reports[0].Message, "use after free") {
				t.Fatalf("unexpected report: %v", res.Reports[0])
			}
		})
	}
}

func TestBaselineRunsClean(t *testing.T) {
	prog := buildUAFProgram(false)
	res, err := alda.Run(prog, nil, alda.RunConfig{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Exit != 0 || len(res.Reports) != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestCompileAllRegisteredAnalyses(t *testing.T) {
	for _, name := range analyses.Names() {
		if _, err := analyses.Compile(name, alda.DefaultOptions()); err != nil {
			t.Errorf("compile %s: %v", name, err)
		}
	}
}

func TestFacadeSurface(t *testing.T) {
	an, err := alda.Compile(analyses.MustSource("eraser"), alda.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if an.LOC() < 40 || an.LOC() > 120 {
		t.Errorf("eraser LOC = %d", an.LOC())
	}
	if an.NeedShadow() {
		t.Error("eraser does not use local metadata")
	}
	if plan := an.Plan(); !strings.Contains(plan, "impl=pagetable") {
		t.Errorf("plan missing container choice:\n%s", plan)
	}
	if an.Compiled() == nil {
		t.Error("Compiled() returned nil")
	}

	msan, err := alda.Compile(analyses.MustSource("msan"), alda.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !msan.NeedShadow() {
		t.Error("msan must need shadow registers")
	}
}

func TestFacadeOptionPresets(t *testing.T) {
	if o := alda.DefaultOptions(); !o.Coalesce || !o.CSE || !o.SmartSelect || !o.FuseHandlers {
		t.Error("default options must enable everything")
	}
	if o := alda.DSOnlyOptions(); o.Coalesce || o.CSE || !o.SmartSelect {
		t.Error("ds-only options wrong")
	}
	if o := alda.NaiveOptions(); o.Coalesce || o.CSE || o.SmartSelect {
		t.Error("naive options wrong")
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := alda.Compile("x := float32", alda.DefaultOptions()); err == nil {
		t.Fatal("expected a compile error")
	}
}

func TestFacadeRegisterExternal(t *testing.T) {
	src := `
address := pointer
h(address p) { observe(p); }
insert after LoadInst call h($1)
`
	an, err := alda.Compile(src, alda.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Without the external, binding fails at run time.
	prog := buildUAFProgram(false)
	inst, err := an.Instrument(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alda.Run(inst, an, alda.RunConfig{}); err == nil {
		t.Fatal("expected missing-external error")
	}
	calls := 0
	an.RegisterExternal("observe", func(m *vm.Machine, args []uint64) uint64 {
		calls++
		return 0
	})
	if _, err := alda.Run(inst, an, alda.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("external not invoked")
	}
}

func TestFacadeRunRejectsBrokenProgram(t *testing.T) {
	p := mir.NewProgram()
	fb := p.NewFunc("main", 0)
	fb.Const(1) // no terminator
	if _, err := alda.Run(p, nil, alda.RunConfig{}); err == nil {
		t.Fatal("expected verification error")
	}
}

// Byte-granularity configuration (§5.1): at granularity 1 a UAF checker
// distinguishes adjacent bytes that word granularity would merge.
func TestByteGranularity(t *testing.T) {
	src := analyses.MustSource("uaf")
	mk := func(gran int) *alda.Analysis {
		o := alda.DefaultOptions()
		o.Granularity = gran
		an, err := alda.Compile(src, o)
		if err != nil {
			t.Fatal(err)
		}
		return an
	}
	// Program: allocate two adjacent 8-byte blocks? The allocator aligns
	// to 16, so craft sub-granule adjacency inside one granule: free a
	// 4-byte block and touch the byte next to it within the same word.
	build := func() *alda.Program {
		p := mir.NewProgram()
		b := p.NewFunc("main", 0)
		blk := b.Call("malloc", mir.C(16))
		b.Store(mir.R(blk), mir.C(1), 8)
		keep := b.Add(mir.R(blk), mir.C(8))
		b.Store(mir.R(keep), mir.C(2), 8)
		// Free only conceptually half: model a sub-word stale pointer by
		// freeing the block then re-allocating a smaller one at the same
		// address, leaving the tail poisoned.
		b.CallVoid("free", mir.R(blk))
		blk2 := b.Call("malloc", mir.C(4))
		b.Store(mir.R(blk2), mir.C(3), 4)
		tail := b.Add(mir.R(blk2), mir.C(4))
		b.Load(mir.R(tail), 4) // bytes 4..7: freed at byte granularity
		b.RetVal(mir.C(0))
		return p
	}
	runWith := func(an *alda.Analysis) int {
		inst, err := an.Instrument(build())
		if err != nil {
			t.Fatal(err)
		}
		res, err := alda.Run(inst, an, alda.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Reports)
	}
	// Word granularity: malloc(4) unpoisons the whole word ⇒ miss.
	if n := runWith(mk(8)); n != 0 {
		t.Fatalf("word granularity reported %d (expected the miss)", n)
	}
	// Byte granularity: the tail stays poisoned ⇒ hit.
	if n := runWith(mk(1)); n == 0 {
		t.Fatal("byte granularity missed the sub-word stale access")
	}
}
