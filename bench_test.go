// Benchmarks regenerating the paper's evaluation (§6) as testing.B
// targets — one benchmark family per figure/table. Each sub-benchmark
// executes one full instrumented run per iteration and reports the
// normalized overhead (instrumented wall ÷ uninstrumented wall) as the
// "overhead" metric, which is the quantity every figure in the paper
// plots. The cmd/aldabench tool renders the same experiments as the
// paper-style tables; EXPERIMENTS.md records both.
//
// Suggested invocation (full sweep, bounded time):
//
//	go test -bench=. -benchmem -benchtime=1x .
package alda_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/analyses"
	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

const benchSize = workloads.SizeTiny

// baseWall measures the uninstrumented runtime once (median of three).
func baseWall(b *testing.B, p *mir.Program) float64 {
	b.Helper()
	var walls []float64
	for i := 0; i < 3; i++ {
		res, err := core.RunPlain(p, core.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		walls = append(walls, float64(res.Wall))
	}
	// median
	if walls[0] > walls[1] {
		walls[0], walls[1] = walls[1], walls[0]
	}
	if walls[1] > walls[2] {
		walls[1], walls[2] = walls[2], walls[1]
	}
	if walls[0] > walls[1] {
		walls[0], walls[1] = walls[1], walls[0]
	}
	return walls[1]
}

// benchRuns runs fn b.N times and reports overhead vs base.
func benchRuns(b *testing.B, base float64, fn func() (*vm.Result, error)) {
	b.Helper()
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Wall)
	}
	b.StopTimer()
	if base > 0 && b.N > 0 {
		b.ReportMetric(total/float64(b.N)/base, "overhead")
	}
}

func aldaRunner(b *testing.B, a *compiler.Analysis, p *mir.Program) func() (*vm.Result, error) {
	b.Helper()
	inst, err := instrument.Apply(p, a)
	if err != nil {
		b.Fatal(err)
	}
	return func() (*vm.Result, error) { return core.RunInstrumented(inst, a, core.RunOptions{}) }
}

// BenchmarkFig3 regenerates Figure 3: hand-tuned MSan vs ALDA MSan over
// the 20-program suite.
func BenchmarkFig3(b *testing.B) {
	msan, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range harness.Fig3Programs {
		p := workloads.MustBuild(w, benchSize)
		base := baseWall(b, p)
		b.Run(w+"/hand", func(b *testing.B) {
			benchRuns(b, base, func() (*vm.Result, error) {
				return core.RunBaseline(p, func() baselines.Baseline { return baselines.NewMSan(1 << 28) }, core.RunOptions{})
			})
		})
		b.Run(w+"/alda", func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, msan, p))
		})
	}
}

// BenchmarkFig4 regenerates Figure 4: hand-tuned Eraser vs ALDAcc-full
// vs ALDAcc-ds-only on Splash2.
func BenchmarkFig4(b *testing.B) {
	full, err := analyses.Compile("eraser", compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	dsOnly, err := analyses.Compile("eraser", compiler.DSOnlyOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range harness.Fig4Programs {
		p := workloads.MustBuild(w, benchSize)
		base := baseWall(b, p)
		b.Run(w+"/hand", func(b *testing.B) {
			benchRuns(b, base, func() (*vm.Result, error) {
				return core.RunBaseline(p, func() baselines.Baseline { return baselines.NewEraser() }, core.RunOptions{})
			})
		})
		b.Run(w+"/full", func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, full, p))
		})
		b.Run(w+"/ds-only", func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, dsOnly, p))
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: the four analyses individually
// plus combined; the combined/<w> overhead metric should undercut the
// sum of the four individual metrics.
func BenchmarkFig5(b *testing.B) {
	parts := []string{"eraser", "fasttrack", "uaf", "tainttrack"}
	var compiled []*compiler.Analysis
	for _, n := range parts {
		a, err := analyses.Compile(n, compiler.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		compiled = append(compiled, a)
	}
	combined, err := analyses.CompileCombined(compiler.DefaultOptions(), parts...)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range harness.Fig5Programs {
		p := workloads.MustBuild(w, benchSize)
		base := baseWall(b, p)
		for i, n := range parts {
			a := compiled[i]
			b.Run(w+"/"+n, func(b *testing.B) {
				benchRuns(b, base, aldaRunner(b, a, p))
			})
		}
		b.Run(w+"/combined", func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, combined, p))
		})
	}
}

// BenchmarkTable3 regenerates Table 3's validation runs (detection
// latency of the planted bugs under both MSan implementations).
func BenchmarkTable3(b *testing.B) {
	msan, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		w   string
		bug workloads.Bug
	}{
		{"fmm", workloads.BugNone},
		{"barnes", workloads.BugNone},
		{"ocean", workloads.BugUninit},
		{"volrend", workloads.BugUninit},
		{"gcc", workloads.BugUninit},
	}
	for _, c := range cases {
		p, err := workloads.BuildBug(c.w, benchSize, c.bug)
		if err != nil {
			b.Fatal(err)
		}
		base := baseWall(b, p)
		b.Run(c.w+"/alda", func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, msan, p))
		})
		b.Run(c.w+"/hand", func(b *testing.B) {
			benchRuns(b, base, func() (*vm.Result, error) {
				return core.RunBaseline(p, func() baselines.Baseline { return baselines.NewMSan(1 << 28) }, core.RunOptions{})
			})
		})
	}
}

// BenchmarkTable4 measures ALDAcc compilation itself over the eight
// analyses (Table 4 is about analysis authoring cost; this is the
// tooling-side counterpart).
func BenchmarkTable4(b *testing.B) {
	for _, n := range analyses.Names() {
		src := analyses.MustSource(n)
		b.Run(n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile(src, compiler.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLibSan regenerates the §6.4.1 sanitizer runs.
func BenchmarkLibSan(b *testing.B) {
	cases := []struct {
		san, w string
		bug    workloads.Bug
	}{
		{"sslsan", "memcached", workloads.BugSSLLeak},
		{"sslsan", "nginx", workloads.BugSSLShutdown},
		{"zlibsan", "ffmpeg", workloads.BugZlibUninit},
	}
	for _, c := range cases {
		a, err := analyses.Compile(c.san, compiler.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		p, err := workloads.BuildBug(c.w, benchSize, c.bug)
		if err != nil {
			b.Fatal(err)
		}
		base := baseWall(b, p)
		b.Run(c.san+"/"+c.w, func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, a, p))
		})
	}
}

// BenchmarkHarness measures the evaluation harness itself: Figure 4's
// full measurement grid executed serially versus fanned out across
// GOMAXPROCS workers. The speedup sub-benchmark times both back to back
// per iteration and reports their wall-clock ratio as the "speedup"
// metric — ~1.0 on a single-core host, approaching the worker count on
// multi-core hosts (cells are independent and CPU-bound).
func BenchmarkHarness(b *testing.B) {
	grid := func(parallelism int) harness.Config {
		return harness.Config{
			Size:        workloads.SizeTiny,
			Reps:        1,
			Parallelism: parallelism,
			Out:         io.Discard,
		}
	}
	runOnce := func(b *testing.B, cfg harness.Config) time.Duration {
		b.Helper()
		start := time.Now()
		if _, err := harness.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	workers := runtime.GOMAXPROCS(0)
	b.Run("fig4/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, grid(1))
		}
	})
	b.Run(fmt.Sprintf("fig4/parallel-%d", workers), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, grid(workers))
		}
	})
	b.Run("fig4/speedup", func(b *testing.B) {
		var serial, parallel time.Duration
		for i := 0; i < b.N; i++ {
			serial += runOnce(b, grid(1))
			parallel += runOnce(b, grid(workers))
		}
		if parallel > 0 {
			b.ReportMetric(float64(serial)/float64(parallel), "speedup")
		}
	})
}

// BenchmarkCompileCache measures what the compile-once cache saves: a
// cold compile of the combined four-analysis source versus the cached
// lookup the harness performs on every figure after the first.
func BenchmarkCompileCache(b *testing.B) {
	parts := []string{"eraser", "fasttrack", "uaf", "tainttrack"}
	src, err := analyses.Combined(parts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiler.Compile(src, compiler.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := analyses.CompileCombined(compiler.DefaultOptions(), parts...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := analyses.CompileCombined(compiler.DefaultOptions(), parts...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation regenerates the §6.2 metadata-layout ablation at a
// finer grain than Figure 4: each optimization toggled separately.
func BenchmarkAblation(b *testing.B) {
	mk := func(coalesce, cse, smart bool) compiler.Options {
		o := compiler.DefaultOptions()
		o.Coalesce, o.CSE, o.SmartSelect = coalesce, cse, smart
		return o
	}
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"full", mk(true, true, true)},
		{"no-cse", mk(true, false, true)},
		{"no-coalesce", mk(false, true, true)},
		{"ds-only", mk(false, false, true)},
		{"naive", mk(false, false, false)},
	}
	p := workloads.MustBuild("lu_c", benchSize)
	base := baseWall(b, p)
	for _, c := range configs {
		a, err := analyses.Compile("eraser", c.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			benchRuns(b, base, aldaRunner(b, a, p))
		})
	}
}
