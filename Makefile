# Convenience targets; everything is plain `go` underneath (stdlib only,
# no external dependencies).

.PHONY: all build test race vet bench benchgate benchbaseline experiments examples fmt cover fuzz faults conform replay-conform adapt-conform metrics serve-smoke obs-live-smoke

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Second tier-1 target: the full suite under the race detector. The
# harness fans workload×analysis cells across goroutines, so this is
# the gate for any change to vm, compiler, or harness internals.
race:
	go test -race ./...

# Deterministic fault-injection suite: three fixed seeds chosen to
# cover every fault mode with a firing injection point (1 =
# sched-perturb, 20 = malloc-fail, 23 = handler-panic). Each seed's
# failure must be typed, recovered, and identical run to run.
faults:
	go test ./internal/vm/faults -run TestFaultSuite -count=1 -v -seeds 1,20,23

# Differential conformance sweep: 200 generated workloads, each run
# under every analysis across the full ablation matrix (plus oracle,
# schedule, and fused-combination legs). Deterministic for a fixed
# generator seed range; raise -conform-seeds for a nightly-scale sweep.
conform:
	go test ./internal/conformance -run 'TestConform' -count=1 -conform-seeds 200

# Replay conformance sweep: every generated workload recorded once
# plain, the trace fanned across the ablation matrix (schedule-invariant
# verdict comparison) plus the byte-identical same-configuration
# record/replay leg, the shared-trace concurrency proof, and the
# trace-corruption shrinker.
replay-conform:
	go test ./internal/conformance -run 'TestReplayConform|TestConcurrentReplay|TestShrinkReplayDivergence' -count=1 -conform-seeds 200

# Adaptive-PGO conformance sweep: every generated workload profiled,
# adapted through AdaptOptions, and the adapted recompile checked
# byte-identical to the static full configuration on both engines
# (plus the profiling build itself), with the adapted-divergence
# shrinker closing the debugging loop.
adapt-conform:
	go test ./internal/conformance -run 'TestAdaptConform|TestShrinkAdaptiveDivergence' -count=1 -conform-seeds 200

# Short fuzz passes over the parser, the set containers, and the
# conformance harness (all three seed from checked-in testdata/fuzz
# corpora).
fuzz:
	go test ./internal/lang/parser -run=FuzzParse -fuzz=FuzzParse -fuzztime=30s
	go test ./internal/meta -run=FuzzSetContainers -fuzz=FuzzSetContainers -fuzztime=30s
	go test ./internal/conformance -run=FuzzConformance -fuzz=FuzzConformance -fuzztime=30s

# One measured shot of every figure/table benchmark.
bench:
	go test -bench=. -benchmem -benchtime=1x .

# Hot-path benchmark regression gate: re-measure the BenchHotPath
# micro-suite and fail on a >15% geometric-mean regression against the
# checked-in BENCH_baseline.json. Override BENCHTIME for a faster or
# slower sweep (0 = single-batch smoke, exercises the gate machinery
# only). The 15% threshold is meaningful on hardware comparable to the
# machine that recorded the baseline; see EXPERIMENTS.md for how to
# refresh it.
BENCHTIME ?= 100ms
benchgate:
	go run ./cmd/aldabench -benchgate -bench-baseline BENCH_baseline.json -benchtime $(BENCHTIME)

# Refresh the gate baseline on this machine: measure and write
# BENCH_<rev>.json, then copy it over BENCH_baseline.json.
benchbaseline:
	go run ./cmd/aldabench -bench-json -benchtime 250ms
	cp BENCH_$$(git rev-parse --short HEAD).json BENCH_baseline.json

# Regenerate the paper's evaluation tables (EXPERIMENTS.md's source).
experiments:
	go run ./cmd/aldabench -exp all -size small -reps 5

# Observability smoke: run one deterministic sweep with the metrics
# registry, overhead attribution, and Chrome-trace export all on, then
# validate the trace parses. metrics.json is byte-stable under -virtual
# (volatile counters excluded); load trace.json in Perfetto or
# chrome://tracing.
metrics:
	go run ./cmd/aldabench -exp fig4 -size tiny -reps 1 -virtual -parallel 4 \
		-metrics-json metrics.json -trace trace.json
	go run ./cmd/aldabench -attrib uaf -size tiny -reps 1 -virtual

# End-to-end drill of the aldaserve job server: chaos burst via
# aldaload (seeded VM faults), SIGTERM drain with zero lost jobs
# (journal accepts == dones), restart-on-journal recovery, and
# journal-fault degradation surfacing on /readyz. Dumps the server log
# and journal on failure.
serve-smoke:
	bash scripts/serve_smoke.sh

# Live-observability drill: trace-ID contract (header == body), prom
# exposition via content negotiation validated by the strict in-repo
# parser, aldaload latency percentiles, /debug/flight + /debug/spans,
# and the flight recorder auto-snapshotting on a journal fault and on
# SIGQUIT. Dumps the server log and snapshot on failure.
obs-live-smoke:
	bash scripts/obs_live_smoke.sh

examples:
	go run ./examples/quickstart
	go run ./examples/racedetect
	go run ./examples/libsanitizer
	go run ./examples/taintflow
	go run ./examples/combined

fmt:
	gofmt -w .
	# -l only: aldafmt does not preserve comments, so never -w the
	# hand-commented shipped analyses.
	go run ./cmd/aldafmt -l internal/analyses/*.alda || true

cover:
	go test -cover ./...
