# Convenience targets; everything is plain `go` underneath (stdlib only,
# no external dependencies).

.PHONY: all build test vet bench experiments examples fmt cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# One measured shot of every figure/table benchmark.
bench:
	go test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's evaluation tables (EXPERIMENTS.md's source).
experiments:
	go run ./cmd/aldabench -exp all -size small -reps 5

examples:
	go run ./examples/quickstart
	go run ./examples/racedetect
	go run ./examples/libsanitizer
	go run ./examples/taintflow
	go run ./examples/combined

fmt:
	gofmt -w .
	# -l only: aldafmt does not preserve comments, so never -w the
	# hand-commented shipped analyses.
	go run ./cmd/aldafmt -l internal/analyses/*.alda || true

cover:
	go test -cover ./...
