// Package alda is a from-scratch Go reproduction of ALDA, the dynamic
// analysis description language, and ALDAcc, its optimizing compiler
// (Cheng & Devecsery, ASPLOS 2022).
//
// An analysis is written in the ALDA language, compiled with Compile,
// woven into a MIR program with Analysis.Instrument, and executed with
// Run:
//
//	an, err := alda.Compile(source, alda.DefaultOptions())
//	prog := workloads.Build("fft", workloads.SizeSmall)
//	inst, err := an.Instrument(prog)
//	res, err := alda.Run(inst, an, alda.RunConfig{})
//	for _, r := range res.Reports { fmt.Println(r) }
//
// The package is a façade over internal/compiler (ALDAcc),
// internal/instrument (event-handler insertion), internal/mir (the
// LLVM-IR stand-in) and internal/vm (the execution substrate). See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package alda

import (
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/vm"
)

// Options are ALDAcc compilation switches.
type Options = compiler.Options

// ExternalFn implements an ALDA external function call in Go.
type ExternalFn = compiler.ExternalFn

// Program is a MIR program (the instrumentation substrate's IR).
type Program = mir.Program

// Result summarizes a VM run.
type Result = vm.Result

// Report is an analysis finding.
type Report = vm.Report

// DefaultOptions returns the full-optimization configuration.
func DefaultOptions() Options { return compiler.DefaultOptions() }

// DSOnlyOptions returns the Figure 4 ablation: data-structure selection
// without map coalescing or lookup CSE.
func DSOnlyOptions() Options { return compiler.DSOnlyOptions() }

// NaiveOptions disables every layout optimization.
func NaiveOptions() Options { return compiler.NaiveOptions() }

// Analysis is a compiled ALDA analysis.
type Analysis struct {
	c *compiler.Analysis
}

// Compile parses, type-checks and compiles ALDA source text with
// ALDAcc. Several analyses combine by concatenating their sources
// (§6.4.2).
func Compile(src string, opts Options) (*Analysis, error) {
	c, err := compiler.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	return &Analysis{c: c}, nil
}

// RegisterExternal supplies the Go implementation of an external
// function referenced by the analysis (the escape hatch of §3.3). Must
// be called before Run.
func (a *Analysis) RegisterExternal(name string, fn ExternalFn) {
	a.c.Externals[name] = fn
}

// Instrument weaves the analysis into a program, returning an
// instrumented clone.
func (a *Analysis) Instrument(p *Program) (*Program, error) {
	return instrument.Apply(p, a.c)
}

// Plan renders ALDAcc's compilation plan: coalescing groups, container
// selections, shadow factors and CSE summary.
func (a *Analysis) Plan() string { return a.c.Plan() }

// LOC returns the analysis source's line count (Table 4 accounting).
func (a *Analysis) LOC() int { return a.c.SourceLOC }

// NeedShadow reports whether instrumented programs require shadow
// register tracking.
func (a *Analysis) NeedShadow() bool { return a.c.NeedShadow }

// Compiled exposes the underlying compiler plan (for the explain tool
// and the benchmark harness).
func (a *Analysis) Compiled() *compiler.Analysis { return a.c }

// RunConfig controls execution.
type RunConfig struct {
	// Seed drives the deterministic scheduler (default 1).
	Seed int64
	// MaxSteps caps execution (default 4e9).
	MaxSteps uint64
	// Quantum is the scheduler slice (default 64).
	Quantum int
}

func (rc RunConfig) runOptions() core.RunOptions {
	return core.RunOptions{Seed: rc.Seed, MaxSteps: rc.MaxSteps, Quantum: rc.Quantum}
}

// Run executes an instrumented program under the analysis. Pass a nil
// analysis to run an uninstrumented baseline.
func Run(p *Program, a *Analysis, cfg RunConfig) (*Result, error) {
	if err := core.Validate(p); err != nil {
		return nil, err
	}
	if a == nil {
		return core.RunPlain(p, cfg.runOptions())
	}
	return core.RunInstrumented(p, a.c, cfg.runOptions())
}
