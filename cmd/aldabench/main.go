// Command aldabench regenerates the paper's evaluation (§6): Figure 3
// (MSan vs hand-tuned MSan), Figure 4 (Eraser vs hand-tuned and the
// ds-only ablation), Figure 5 (combined analyses), Table 3 (MSan error
// validation), Table 4 (analysis line counts), the §6.4.1 library
// sanitizer runs, and a finer optimization ablation.
//
// Usage:
//
//	aldabench -exp all -size small -reps 3
//	aldabench -exp fig4 -size medium
//	aldabench -exp fig3 -parallel 8            # fan cells out over 8 workers
//	aldabench -exp fig4 -parallel 8 -virtual   # deterministic virtual timing
//	aldabench -exp all -checkpoint sweep.jsonl # stream completed cells to JSONL
//	aldabench -exp all -checkpoint sweep.jsonl -resume   # continue a killed sweep
//	aldabench -exp fig4 -virtual -fault-seed 20          # inject a deterministic fault
//	aldabench -exp replay -trace-out traces/   # record plain traces, replay per analysis
//	aldabench -exp replay -trace-in traces/    # reuse previously recorded traces
//	aldabench -exp fig4 -virtual -metrics-out m.prom     # Prometheus text exposition
//	aldabench -prom-validate m.prom                      # strict exposition check
//
// Measurement cells (one workload × one configuration) are independent;
// -parallel N fans them out over N worker goroutines (0 = GOMAXPROCS).
// Tables are assembled in a fixed cell order, so output layout does not
// depend on parallelism; with -virtual the numbers are deterministic
// too and the tables are byte-identical at any -parallel value.
// Per-cell progress/timing lines go to stderr; suppress with -quiet.
//
// Fault tolerance: each cell runs crash-isolated — a VM trap, resource
// budget overrun (-cell-timeout, -max-heap) or injected fault degrades
// that one cell to an ERR(<kind>) table entry (error taxonomy: Trap,
// StepLimit, HeapLimit, Deadline, LibFault) while the rest of the sweep
// completes (-keep-going, on by default). Deadline failures — the only
// load-dependent kind — are retried with exponential backoff up to
// -retries times. -checkpoint streams completed cells to a JSONL file
// and -resume replays them, so an interrupted sweep picks up where it
// was killed; under -virtual the resumed tables are byte-identical to
// an uninterrupted run.
//
// Fault injection (-fault-seed, or the explicit -fault-malloc-nth,
// -fault-panic-nth, -fault-sched-perturb) applies one deterministic
// fault plan to every cell — the harness hardening testbed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mir"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/vm"
	"repro/internal/vm/faults"
	"repro/internal/workloads"
)

// gitRev returns the short HEAD revision for BENCH_<rev>.json naming,
// or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// runBench handles the -bench-json / -benchgate modes: measure the
// BenchHotPath suite, then emit BENCH_<rev>.json and/or gate against a
// baseline file. Exits the process.
func runBench(emitJSON bool, gate bool, baseline string, benchtime time.Duration, threshold float64) {
	fmt.Fprintf(os.Stderr, "bench: running hot-path suite (benchtime %v)\n", benchtime)
	f := perf.RunSuite(benchtime)
	f.Rev = gitRev()
	if emitJSON {
		path := fmt.Sprintf("BENCH_%s.json", f.Rev)
		if err := perf.WriteFile(path, f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s (%d benches)\n", path, len(f.Benches))
		if s, err := perf.SpeedupVsRef(f); err == nil {
			fmt.Fprintf(os.Stderr, "bench: flat-arena vs map-backed hash Get/Set geomean speedup: %.2fx\n", s)
		}
		if per, g, err := perf.EngineSpeedups(f); err == nil {
			for _, p := range []string{"dispatch/uaf", "dispatch/msan", "dispatch/eraser", "dispatch/uaf/arith"} {
				if s, ok := per[p]; ok {
					fmt.Fprintf(os.Stderr, "bench: threaded-tier speedup %-20s %.2fx\n", p, s)
				}
			}
			fmt.Fprintf(os.Stderr, "bench: threaded-tier dispatch geomean speedup: %.2fx\n", g)
		}
	}
	if gate {
		base, err := perf.ReadFile(baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if err := perf.Gate(base, f, threshold); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %v\n", err)
			os.Exit(1)
		}
	}
	os.Exit(0)
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|fig5|table3|table4|libsan|ablate|pgo|adapt|mem|gran|replay|all")
	sizeFlag := flag.String("size", "small", "workload size: tiny|small|medium|large")
	reps := flag.Int("reps", 3, "measured repetitions per configuration (one warm-up run is added)")
	seed := flag.Int64("seed", 1, "deterministic scheduler seed")
	engineFlag := flag.String("engine", "interp", "VM execution tier: interp|threaded (observably identical; threaded pays less per dispatch)")
	parallel := flag.Int("parallel", 0, "measurement-cell worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	virtual := flag.Bool("virtual", false, "deterministic virtual timing (steps+hooks) instead of wall-clock")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress lines on stderr")
	keepGoing := flag.Bool("keep-going", true, "degrade failed cells to ERR(<kind>) entries instead of aborting the sweep")
	retries := flag.Int("retries", 1, "extra attempts for retryable (Deadline) cell failures")
	checkpoint := flag.String("checkpoint", "", "JSONL file streaming completed cells (enables -resume)")
	resume := flag.Bool("resume", false, "replay completed cells from -checkpoint instead of re-measuring them")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-run VM deadline (0 = none); overruns degrade as ERR(Deadline)")
	maxHeap := flag.Uint64("max-heap", 0, "per-run simulated-heap budget in bytes (0 = none); overruns degrade as ERR(HeapLimit)")
	faultSeed := flag.Int64("fault-seed", 0, "derive a deterministic fault plan (malloc-fail / handler-panic / sched-perturb) from this seed (0 = none)")
	faultMallocNth := flag.Uint64("fault-malloc-nth", 0, "make the nth simulated allocation return NULL (0 = off)")
	faultPanicNth := flag.Uint64("fault-panic-nth", 0, "panic at the nth analysis hook dispatch (0 = off)")
	faultSchedPerturb := flag.Uint64("fault-sched-perturb", 0, "perturb the deterministic scheduler seed (0 = off)")
	benchJSON := flag.Bool("bench-json", false, "run the BenchHotPath micro-suite and write BENCH_<rev>.json")
	benchGate := flag.Bool("benchgate", false, "run the BenchHotPath micro-suite and fail on geomean regression vs -bench-baseline")
	benchBaseline := flag.String("bench-baseline", "BENCH_baseline.json", "baseline file for -benchgate")
	benchTime := flag.Duration("benchtime", 100*time.Millisecond, "per-bench time budget for -bench-json/-benchgate (0 = single-batch smoke)")
	benchThreshold := flag.Float64("bench-threshold", perf.GateThreshold, "geomean regression ratio failing -benchgate")
	metricsJSON := flag.String("metrics-json", "", "write the sweep's observability counters to this JSON file (deterministic under -virtual)")
	metricsOut := flag.String("metrics-out", "", "write the sweep's observability counters to this file; a .prom extension selects the Prometheus text exposition, anything else JSON (both deterministic under -virtual)")
	promValidate := flag.String("prom-validate", "", "strictly validate a Prometheus text exposition file and exit (0 = valid)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file (load in Perfetto / chrome://tracing)")
	attrib := flag.String("attrib", "", "run the overhead-attribution report for this analysis (e.g. uaf, msan) instead of -exp")
	attribPrograms := flag.String("attrib-programs", "", "comma-separated workloads for -attrib (default: a representative set)")
	adapt := flag.Bool("adapt", false, "enable the adaptive hot swap in -exp adapt (off = no-swap control: the adaptive column stays static)")
	adaptAfter := flag.Int("adapt-after", 1, "profiling-quantum length for -exp adapt, in programs")
	profileOut := flag.String("profile-out", "", "collect a per-member access profile (train run) and write it to this file, then exit")
	profileIn := flag.String("profile-in", "", "load a profile written by -profile-out; the pgo experiment uses it instead of training inline")
	profileAnalysis := flag.String("profile-analysis", "msan", "analysis -profile-out trains")
	profileTrain := flag.String("profile-train", "libquantum", "workload -profile-out trains on (at size tiny, matching the pgo experiment)")
	traceOut := flag.String("trace-out", "", "directory for recorded replay traces; missing workload traces are recorded there (enables -exp replay)")
	traceIn := flag.String("trace-in", "", "directory of previously recorded replay traces; a missing trace is an error (enables -exp replay)")
	flag.Parse()

	if *promValidate != "" {
		n, err := obs.ValidatePromFile(*promValidate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prom-validate: %s: %v\n", *promValidate, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "prom-validate: %s ok (%d samples)\n", *promValidate, n)
		os.Exit(0)
	}

	if *benchJSON || *benchGate {
		runBench(*benchJSON, *benchGate, *benchBaseline, *benchTime, *benchThreshold)
	}

	var size workloads.Size
	switch *sizeFlag {
	case "tiny":
		size = workloads.SizeTiny
	case "small":
		size = workloads.SizeSmall
	case "medium":
		size = workloads.SizeMedium
	case "large":
		size = workloads.SizeLarge
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeFlag)
		os.Exit(2)
	}

	cfg := harness.Config{
		Size:           size,
		Reps:           *reps,
		Out:            os.Stdout,
		Parallelism:    *parallel,
		Virtual:        *virtual,
		KeepGoing:      *keepGoing,
		Retries:        *retries,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Adapt:          *adapt,
		AdaptAfter:     *adaptAfter,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	eng, err := vm.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	cfg.Engine = eng
	cfg.Opt.Seed = *seed
	cfg.Opt.Deadline = *cellTimeout
	cfg.Opt.MaxHeapBytes = *maxHeap

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		os.Exit(2)
	}
	if *traceOut != "" && *traceIn != "" {
		fmt.Fprintln(os.Stderr, "-trace-out and -trace-in are mutually exclusive")
		os.Exit(2)
	}
	cfg.TraceDir = *traceIn
	if *traceOut != "" {
		cfg.TraceDir = *traceOut
		cfg.TraceRecord = true
	}
	if *exp == "replay" && cfg.TraceDir == "" {
		fmt.Fprintln(os.Stderr, "-exp replay needs -trace-out (record) or -trace-in (reuse)")
		os.Exit(2)
	}

	if *profileOut != "" {
		a, err := analyses.Compile(*profileAnalysis, compiler.DefaultOptions())
		if err == nil {
			var prog *mir.Program
			if prog, err = workloads.Build(*profileTrain, workloads.SizeTiny); err == nil {
				var p *compiler.Profile
				if p, err = core.CollectProfile(a, prog, cfg.Opt); err == nil {
					err = p.WriteFile(*profileOut)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "profile-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "profile-out: wrote %s (%s trained on %s/tiny)\n", *profileOut, *profileAnalysis, *profileTrain)
		os.Exit(0)
	}
	if *profileIn != "" {
		p, err := compiler.ReadProfileFile(*profileIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profile-in: %v\n", err)
			os.Exit(1)
		}
		cfg.PGOProfile = p
	}

	// -metrics-out supersedes -metrics-json (kept as an alias); the file
	// extension picks the format.
	metricsPath := *metricsOut
	if metricsPath == "" {
		metricsPath = *metricsJSON
	}
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	var trace *obs.Trace
	if *tracePath != "" {
		var err error
		trace, err = obs.CreateTrace(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		compiler.SetTraceSink(trace)
		cfg.Trace = trace
	}
	finishObs := func() {
		if trace != nil {
			compiler.SetTraceSink(nil)
			if err := trace.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				os.Exit(1)
			}
			n, err := obs.ValidateTraceFile(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: invalid trace written: %v\n", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "trace: wrote %s (%d events, validated)\n", *tracePath, n)
			}
		}
		if reg != nil {
			hits, misses, evictions := compiler.CompileCacheStats()
			reg.AddVolatile("compiler.cache.hits", hits)
			reg.AddVolatile("compiler.cache.misses", misses)
			reg.AddVolatile("compiler.cache.evictions", evictions)
			f, err := os.Create(metricsPath)
			if err == nil {
				// Volatile counters (hook ns, cache hits, retries) are
				// host-dependent; keep the -virtual export golden-pinnable.
				if strings.HasSuffix(metricsPath, ".prom") {
					err = reg.WriteProm(f, !*virtual)
				} else {
					err = reg.WriteJSON(f, !*virtual)
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "metrics-out: wrote %s\n", metricsPath)
			}
		}
	}

	spec := vm.FaultSpec{
		MallocFailNth:   *faultMallocNth,
		HandlerPanicNth: *faultPanicNth,
		SchedPerturb:    *faultSchedPerturb,
	}
	if *faultSeed != 0 {
		plan := faults.FromSeed(*faultSeed)
		spec = plan.Spec()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "fault plan: seed=%d mode=%s nth=%d\n", plan.Seed, plan.Mode, plan.Nth)
		}
	}
	if !spec.Zero() {
		cfg.CellFaults = func(program, column string) vm.FaultSpec { return spec }
	}

	if *attrib != "" {
		var programs []string
		if *attribPrograms != "" {
			programs = strings.Split(*attribPrograms, ",")
		}
		if _, err := harness.Attrib(cfg, *attrib, programs); err != nil {
			fmt.Fprintf(os.Stderr, "attrib: %v\n", err)
			os.Exit(1)
		}
		finishObs()
		return
	}

	run := func(name string, fn func(harness.Config) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table4", func(c harness.Config) error { _, err := harness.Table4(c); return err })
	run("table3", func(c harness.Config) error { _, err := harness.Table3(c); return err })
	run("libsan", func(c harness.Config) error { _, err := harness.LibSan(c); return err })
	run("fig3", func(c harness.Config) error { _, err := harness.Fig3(c); return err })
	run("fig4", func(c harness.Config) error { _, err := harness.Fig4(c); return err })
	run("fig5", func(c harness.Config) error { _, err := harness.Fig5(c); return err })
	run("ablate", func(c harness.Config) error { _, err := harness.Ablate(c); return err })
	run("pgo", func(c harness.Config) error { _, err := harness.PGO(c); return err })
	run("adapt", func(c harness.Config) error { _, err := harness.Adapt(c); return err })
	run("mem", func(c harness.Config) error { _, err := harness.Mem(c); return err })
	run("gran", func(c harness.Config) error { _, err := harness.Granularity(c); return err })
	run("replay", func(c harness.Config) error {
		if c.TraceDir == "" {
			return nil // -exp all without a trace dir skips the replay grid
		}
		_, err := harness.Replay(c)
		return err
	})

	if !strings.Contains("fig3 fig4 fig5 table3 table4 libsan ablate pgo adapt mem gran replay all", *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	finishObs()
}
