// Command aldaexplain dumps ALDAcc's compilation plan for an analysis:
// coalescing groups, chosen containers with shadow factors, entry
// layouts, and per-handler lookup-savings — the "why is my analysis
// fast (or not)" tool. It can diff two optimization configurations side
// by side.
//
// Usage:
//
//	aldaexplain -analysis eraser
//	aldaexplain -analysis eraser,fasttrack,uaf,tainttrack -compare
//	aldaexplain -file my.alda
//	aldaexplain -trace traces/fft.trc          # recorded replay-trace statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aldaexplain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analysisName := fs.String("analysis", "", "built-in analysis name or comma-separated combination: "+strings.Join(analyses.Names(), ", "))
	file := fs.String("file", "", "path to an ALDA source file")
	compare := fs.Bool("compare", false, "also show the ds-only and naive plans")
	stats := fs.Bool("stats", false, "run -workload (size tiny) under the analysis and print its observability counters")
	workload := fs.String("workload", "fft", "workload for -stats")
	engineFlag := fs.String("engine", "interp", "VM execution tier the plan targets: interp|threaded")
	traceFile := fs.String("trace", "", "print the event and compression statistics of a recorded replay trace (.trc) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *traceFile != "" {
		if err := showTraceStats(stdout, *traceFile); err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
		return 0
	}
	eng, err := vm.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(stderr, "aldaexplain:", err)
		return 2
	}

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
		src = string(b)
	case *analysisName != "":
		s, err := analyses.Combined(strings.Split(*analysisName, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
		src = s
	default:
		fmt.Fprintln(stderr, "need -analysis or -file")
		return 2
	}

	show := func(title string, opts compiler.Options) error {
		a, err := compiler.Compile(src, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "=== %s ===\n", title)
		fmt.Fprint(stdout, a.Plan())
		fmt.Fprintf(stdout, "analysis source: %d LOC\n\n", a.SourceLOC)
		return nil
	}

	titles := []struct {
		title string
		opts  compiler.Options
	}{
		{"ALDAcc-full", compiler.DefaultOptions().WithEngine(eng)},
		{"ALDAcc-ds-only (no coalescing, no CSE)", compiler.DSOnlyOptions().WithEngine(eng)},
		{"naive (hash maps and tree sets everywhere)", compiler.NaiveOptions().WithEngine(eng)},
	}
	if !*compare {
		titles = titles[:1]
	}
	for _, t := range titles {
		if err := show(t.title, t.opts); err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
	}
	if *stats {
		if err := showStats(stdout, src, *workload, eng); err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
	}
	return 0
}

// showTraceStats decodes a recorded replay trace and prints what the
// stream holds: recording identity, per-kind event counts, and the
// compression the stride/varint encoding achieved over a fixed-width
// layout of the same events.
func showTraceStats(stdout io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tr, err := trace.Decode(data)
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Fprintf(stdout, "=== trace %s ===\n", path)
	fmt.Fprintf(stdout, "program fingerprint: %#016x\n", s.ProgFP)
	fmt.Fprintf(stdout, "recorded with: seed=%d quantum=%d\n", s.Seed, s.Quantum)
	fmt.Fprintf(stdout, "scheduler quanta: %d\n", s.Batches)
	fmt.Fprintf(stdout, "events: %d\n", s.Events)
	for _, row := range []struct {
		name string
		n    uint64
	}{
		{"load", s.Loads}, {"store", s.Stores}, {"lib", s.Libs},
		{"lock", s.Locks}, {"unlock", s.Unlocks},
		{"spawn", s.Spawns}, {"join", s.Joins},
		{"alloc", s.Allocs}, {"free", s.Frees},
	} {
		if row.n > 0 {
			fmt.Fprintf(stdout, "  %-8s %12d\n", row.name, row.n)
		}
	}
	fmt.Fprintf(stdout, "run-length records: %d\n", s.RepRuns)
	fmt.Fprintf(stdout, "encoded: %d bytes (%d fixed-width) — %.2fx compression, %.2f bytes/event\n",
		s.Bytes, s.RawBytes, s.Ratio(), float64(s.Bytes)/float64(max(1, s.Events)))
	return nil
}

// showStats runs one tiny workload under the analysis with metrics
// collection on and prints the counters the obs registry would hold:
// hook dispatch counts (with the event category the attribution report
// uses), per-container traffic, and per-member access counts.
func showStats(stdout io.Writer, src, workload string, eng vm.Engine) error {
	opts := compiler.DefaultOptions().WithEngine(eng)
	opts.ProfileCollect = true
	a, err := compiler.Compile(src, opts)
	if err != nil {
		return err
	}
	analyses.RegisterExternals(a)
	prog, err := workloads.Build(workload, workloads.SizeTiny)
	if err != nil {
		return err
	}
	sh := obs.NewShard()
	if _, err := core.RunAnalysis(prog, a, core.RunOptions{Seed: 1, Metrics: sh}); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "=== runtime stats (%s, size tiny) ===\n", workload)
	fmt.Fprintf(stdout, "vm: steps=%d quanta=%d ctx_switches=%d hook_dispatches=%d\n",
		sh.Counts["vm.steps"], sh.Counts["vm.sched.quanta"],
		sh.Counts["vm.sched.ctx_switches"], sh.Counts["vm.op.hook"])

	names := a.HandlerNames()
	cats := a.HookCategories()
	fmt.Fprintln(stdout, "hooks:")
	for i, n := range names {
		if calls := sh.Counts["vm.hook."+n+".calls"]; calls > 0 {
			fmt.Fprintf(stdout, "  %-36s %-6s %12d calls\n", n, cats[i], calls)
		}
	}

	keys := make([]string, 0, len(sh.Counts))
	for k := range sh.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type cstat struct {
		get, set, iter, rehash, hit, miss uint64
	}
	byLabel := map[string]*cstat{}
	var order []string
	for _, k := range keys {
		rest, ok := strings.CutPrefix(k, "meta.")
		if !ok {
			continue
		}
		dot := strings.LastIndexByte(rest, '.')
		label, op := rest[:dot], rest[dot+1:]
		cs := byLabel[label]
		if cs == nil {
			cs = &cstat{}
			byLabel[label] = cs
			order = append(order, label)
		}
		switch op {
		case "get":
			cs.get = sh.Counts[k]
		case "set":
			cs.set = sh.Counts[k]
		case "iter":
			cs.iter = sh.Counts[k]
		case "rehash":
			cs.rehash = sh.Counts[k]
		case "cache_hit":
			cs.hit = sh.Counts[k]
		case "cache_miss":
			cs.miss = sh.Counts[k]
		}
	}
	fmt.Fprintln(stdout, "containers:")
	for _, l := range order {
		cs := byLabel[l]
		fmt.Fprintf(stdout, "  %-44s get=%d set=%d iter=%d rehash=%d", l, cs.get, cs.set, cs.iter, cs.rehash)
		if cs.hit+cs.miss > 0 {
			fmt.Fprintf(stdout, " cache-hit=%.1f%%", 100*float64(cs.hit)/float64(cs.hit+cs.miss))
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintln(stdout, "members:")
	fmt.Fprint(stdout, compiler.ProfileFromCounts(sh.Counts).String())
	return nil
}
