// Command aldaexplain dumps ALDAcc's compilation plan for an analysis:
// coalescing groups, chosen containers with shadow factors, entry
// layouts, and per-handler lookup-savings — the "why is my analysis
// fast (or not)" tool. It can diff two optimization configurations side
// by side.
//
// Usage:
//
//	aldaexplain -analysis eraser
//	aldaexplain -analysis eraser,fasttrack,uaf,tainttrack -compare
//	aldaexplain -file my.alda
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyses"
	"repro/internal/compiler"
)

func main() {
	analysisName := flag.String("analysis", "", "built-in analysis name or comma-separated combination: "+strings.Join(analyses.Names(), ", "))
	file := flag.String("file", "", "path to an ALDA source file")
	compare := flag.Bool("compare", false, "also show the ds-only and naive plans")
	flag.Parse()

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	case *analysisName != "":
		s, err := analyses.Combined(strings.Split(*analysisName, ",")...)
		if err != nil {
			fatal(err)
		}
		src = s
	default:
		fmt.Fprintln(os.Stderr, "need -analysis or -file")
		os.Exit(2)
	}

	show := func(title string, opts compiler.Options) {
		a, err := compiler.Compile(src, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s ===\n", title)
		fmt.Print(a.Plan())
		fmt.Printf("analysis source: %d LOC\n\n", a.SourceLOC)
	}

	show("ALDAcc-full", compiler.DefaultOptions())
	if *compare {
		show("ALDAcc-ds-only (no coalescing, no CSE)", compiler.DSOnlyOptions())
		show("naive (hash maps and tree sets everywhere)", compiler.NaiveOptions())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aldaexplain:", err)
	os.Exit(1)
}
