// Command aldaexplain dumps ALDAcc's compilation plan for an analysis:
// coalescing groups, chosen containers with shadow factors, entry
// layouts, and per-handler lookup-savings — the "why is my analysis
// fast (or not)" tool. It can diff two optimization configurations side
// by side.
//
// Usage:
//
//	aldaexplain -analysis eraser
//	aldaexplain -analysis eraser,fasttrack,uaf,tainttrack -compare
//	aldaexplain -file my.alda
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyses"
	"repro/internal/compiler"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aldaexplain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analysisName := fs.String("analysis", "", "built-in analysis name or comma-separated combination: "+strings.Join(analyses.Names(), ", "))
	file := fs.String("file", "", "path to an ALDA source file")
	compare := fs.Bool("compare", false, "also show the ds-only and naive plans")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
		src = string(b)
	case *analysisName != "":
		s, err := analyses.Combined(strings.Split(*analysisName, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
		src = s
	default:
		fmt.Fprintln(stderr, "need -analysis or -file")
		return 2
	}

	show := func(title string, opts compiler.Options) error {
		a, err := compiler.Compile(src, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "=== %s ===\n", title)
		fmt.Fprint(stdout, a.Plan())
		fmt.Fprintf(stdout, "analysis source: %d LOC\n\n", a.SourceLOC)
		return nil
	}

	titles := []struct {
		title string
		opts  compiler.Options
	}{
		{"ALDAcc-full", compiler.DefaultOptions()},
		{"ALDAcc-ds-only (no coalescing, no CSE)", compiler.DSOnlyOptions()},
		{"naive (hash maps and tree sets everywhere)", compiler.NaiveOptions()},
	}
	if !*compare {
		titles = titles[:1]
	}
	for _, t := range titles {
		if err := show(t.title, t.opts); err != nil {
			fmt.Fprintln(stderr, "aldaexplain:", err)
			return 1
		}
	}
	return 0
}
