package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyses"
	"repro/internal/core"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestGolden pins the full three-configuration plan dump for every
// built-in analysis: the compilation plan (groups, containers, shadow
// factors, savings) is the tool's entire output surface, so any layout
// or selection change shows up as a golden diff here — deliberate
// changes regenerate with -update.
func TestGolden(t *testing.T) {
	for _, name := range analyses.Names() {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-analysis", name, "-compare"}, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			checkGolden(t, name, stdout.Bytes())
		})
	}
}

// TestGoldenCombined pins the plan for the shipped four-way
// combination (fusion changes the group structure, which this output
// makes visible).
func TestGoldenCombined(t *testing.T) {
	var stdout, stderr bytes.Buffer
	arg := "eraser,fasttrack,uaf,tainttrack"
	if code := run([]string{"-analysis", arg, "-compare"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	checkGolden(t, "combined", stdout.Bytes())
}

// TestGoldenFiles runs the -file path over the examples' extracted
// .alda sources.
func TestGoldenFiles(t *testing.T) {
	paths, err := filepath.Glob("../../examples/*/*.alda")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example .alda files found")
	}
	for _, p := range paths {
		name := filepath.Base(filepath.Dir(p)) + "_" + strings.TrimSuffix(filepath.Base(p), ".alda")
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-file", p}, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			checkGolden(t, name, stdout.Bytes())
		})
	}
}

// TestTraceStats: the -trace mode decodes a freshly recorded replay
// trace and reports its event counts and compression ratio.
func TestTraceStats(t *testing.T) {
	prog, err := workloads.Build("fft", workloads.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := core.RecordTrace(prog, core.RunOptions{Seed: 1, MaxSteps: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fft.trc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trace", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	for _, want := range []string{"program fingerprint:", "scheduler quanta:", "load", "compression"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, stdout.String())
		}
	}

	stderr.Reset()
	if code := run([]string{"-trace", filepath.Join(t.TempDir(), "missing.trc")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing trace: exit %d, want 1", code)
	}
	corrupt := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(corrupt, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-trace", corrupt}, &stdout, &stderr); code != 1 {
		t.Errorf("corrupt trace: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
}

// TestErrors: the documented exit codes for bad invocations.
func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-analysis", "nosuch"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown analysis: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-file", filepath.Join(t.TempDir(), "missing.alda")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
