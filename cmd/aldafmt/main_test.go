package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// aldaFiles returns every shipped .alda source (built-in analyses plus
// the examples' embedded analyses), keyed by a collision-free golden
// name derived from the parent directory.
func aldaFiles(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, pat := range []string{"../../internal/analyses/*.alda", "../../examples/*/*.alda"} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			base := strings.TrimSuffix(filepath.Base(p), ".alda")
			name := filepath.Base(filepath.Dir(p)) + "_" + base
			out[name] = p
		}
	}
	if len(out) < 10 {
		t.Fatalf("found only %d .alda files, expected the 8 built-ins plus the examples", len(out))
	}
	return out
}

// TestGolden pins aldafmt's output for every shipped .alda file. The
// formatter is the printer, so these goldens also freeze the canonical
// surface style; regenerate with -update after deliberate printer
// changes.
func TestGolden(t *testing.T) {
	for name, path := range aldaFiles(t) {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run([]string{path}, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, stdout.String(), want)
			}
		})
	}
}

// TestIdempotent: formatting aldafmt's own output must be a fixed point
// (format twice, identical bytes).
func TestIdempotent(t *testing.T) {
	for name, path := range aldaFiles(t) {
		t.Run(name, func(t *testing.T) {
			var first, second, stderr bytes.Buffer
			if code := run([]string{path}, &first, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			tmp := filepath.Join(t.TempDir(), "once.alda")
			if err := os.WriteFile(tmp, first.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if code := run([]string{tmp}, &second, &stderr); code != 0 {
				t.Fatalf("second pass exit %d, stderr:\n%s", code, stderr.String())
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("not idempotent:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
			}
		})
	}
}

// TestListAndWrite covers the -l and -w modes on a deliberately
// misformatted copy.
func TestListAndWrite(t *testing.T) {
	src, err := os.ReadFile("../../internal/analyses/uaf.alda")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ugly := filepath.Join(dir, "ugly.alda")
	// Extra blank lines misformat the file without changing the AST.
	if err := os.WriteFile(ugly, append([]byte("\n\n\n"), src...), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-l", ugly}, &stdout, &stderr); code != 0 {
		t.Fatalf("-l exit %d, stderr:\n%s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != ugly {
		t.Errorf("-l printed %q, want %q", got, ugly)
	}

	stdout.Reset()
	if code := run([]string{"-w", ugly}, &stdout, &stderr); code != 0 {
		t.Fatalf("-w exit %d, stderr:\n%s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"-l", ugly}, &stdout, &stderr); code != 0 {
		t.Fatalf("-l after -w exit %d, stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-l still lists the file after -w: %q", stdout.String())
	}
}

// TestErrors: bad usage and unparsable input produce the documented
// exit codes without panicking.
func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.alda")
	if err := os.WriteFile(bad, []byte("analysis { nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{bad}, &stdout, &stderr); code != 1 {
		t.Errorf("parse error: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.alda")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
