// Command aldafmt formats ALDA source files in canonical style, the way
// gofmt does for Go: four-space indentation, one statement per line,
// spaces around operators, minimal parentheses.
//
// Known limitation: the printer works from the AST, which does not
// carry comments — formatting a commented file with -w drops its
// comments. Use the default (stdout) or -l modes on hand-commented
// sources; -w is safe for generated or comment-free files.
//
// Usage:
//
//	aldafmt file.alda            # print formatted source to stdout
//	aldafmt -w file.alda ...     # rewrite files in place
//	aldafmt -l file.alda ...     # list files whose formatting differs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lang/parser"
	"repro/internal/lang/printer"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aldafmt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	write := fs.Bool("w", false, "write result to source file instead of stdout")
	list := fs.Bool("l", false, "list files whose formatting differs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: aldafmt [-w|-l] file.alda ...")
		return 2
	}
	exit := 0
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "aldafmt:", err)
			exit = 1
			continue
		}
		out, err := printer.Format(string(src), parser.Parse)
		if err != nil {
			fmt.Fprintf(stderr, "aldafmt: %s: %v\n", path, err)
			exit = 1
			continue
		}
		switch {
		case *list:
			if out != string(src) {
				fmt.Fprintln(stdout, path)
			}
		case *write:
			if out != string(src) {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fmt.Fprintln(stderr, "aldafmt:", err)
					exit = 1
				}
			}
		default:
			fmt.Fprint(stdout, out)
		}
	}
	return exit
}
