// Command aldaserve runs the analysis-as-a-service daemon: the one-shot
// aldabench machinery behind a long-lived HTTP/JSON job API.
//
// Usage:
//
//	aldaserve -addr :8080 -journal jobs.jsonl
//	aldaserve -addr :8080 -shards 4 -workers 2 -queue-depth 64
//	aldaserve -addr :8080 -journal jobs.jsonl -chaos-journal-write-nth 50
//
// API:
//
//	POST /v1/jobs        submit a job ({workload|mir, analysis, options});
//	                     202 + status, or typed 400/429/503. ?wait=1 blocks.
//	GET  /v1/jobs/{id}   job status/result; ?wait=1 blocks until terminal
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while draining; notes journal degradation)
//	GET  /metrics        obs registry: JSON by default, Prometheus text
//	                     exposition with Accept: text/plain or ?format=prom
//	GET  /debug/flight   flight-recorder ring dump (recent per-shard events)
//	GET  /debug/spans    per-job lifecycle span store
//
// Jobs are deterministic in their request (virtual-time results), so the
// write-ahead journal (-journal) makes the service crash-safe: kill -9,
// restart with the same journal, and exactly the unfinished jobs re-run
// with byte-identical results. SIGTERM/SIGINT drains gracefully: no new
// admissions, queued and running jobs finish, journal is flushed.
//
// The -chaos-* flags inject deterministic journal I/O faults (the serve
// half of the fault-injection testbed); VM-level chaos arrives per job
// via options.fault_seed.
//
// -adapt-after N turns on the serving-tier adaptive-PGO loop: the first
// N jobs per compile fingerprint run a profiling build, then the shard
// hot-swaps to a profile-adapted recompile. Swaps are journaled, so a
// restart replays to the same adapted analysis without re-profiling.
// After a swap, every -profile-sample-every'th job re-runs the
// (verdict-identical) profiling build so the rolling profile window and
// drift gauge on /metrics keep tracking live traffic.
//
// SIGQUIT dumps the flight recorder to -flight-snapshot (or stderr when
// unset) and keeps serving — the live post-mortem hook. The same
// snapshot fires automatically on the first journal degradation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 4, "worker-pool shards (jobs colocate by compile fingerprint)")
	workers := flag.Int("workers", 1, "workers per shard")
	queueDepth := flag.Int("queue-depth", 64, "bounded queue depth per shard (overflow is 429)")
	tenantCap := flag.Int("tenant-inflight", 16, "per-tenant in-flight job cap (<0 disables)")
	journal := flag.String("journal", "", "write-ahead job journal path (empty = no durability)")
	syncEvery := flag.Int("journal-sync-every", 1, "fsync the journal every N records")
	chaosWrite := flag.Uint64("chaos-journal-write-nth", 0, "inject a failure on the Nth journal write")
	chaosSync := flag.Uint64("chaos-journal-sync-nth", 0, "inject a failure on the Nth journal fsync")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to finish in-flight jobs on SIGTERM")
	maxSteps := flag.Uint64("max-steps", 0, "per-job step-budget cap (0 = default limits)")
	adaptAfter := flag.Int("adapt-after", 0, "profile the first N jobs per compile fingerprint, then hot-swap to a profile-adapted recompile (0 = off)")
	sampleEvery := flag.Int("profile-sample-every", 0, "re-profile every Nth post-swap job for the rolling profile window (0 = default 16, <0 = off)")
	slo := flag.Duration("slo", 0, "per-job wall-latency objective; slower completions count into serve.slo.jobs_over_deadline_total (0 = default 1s, <0 = off)")
	flightSnap := flag.String("flight-snapshot", "", "file the flight recorder auto-dumps to on journal degradation or SIGQUIT")
	flightRing := flag.Int("flight-ring", 0, "flight-recorder events retained per worker shard (0 = default 256)")
	spanCap := flag.Int("span-cap", 0, "lifecycle span store bound in traces (0 = default 1024)")
	flag.Parse()

	cfg := serve.Config{
		Shards:             *shards,
		WorkersPerShard:    *workers,
		QueueDepth:         *queueDepth,
		TenantInflight:     *tenantCap,
		JournalPath:        *journal,
		JournalSyncEvery:   *syncEvery,
		JournalFaults:      serve.JournalFaults{FailWriteNth: *chaosWrite, FailSyncNth: *chaosSync},
		AdaptAfter:         *adaptAfter,
		ProfileSampleEvery: *sampleEvery,
		SLOWall:            *slo,
		FlightSnapshotPath: *flightSnap,
		FlightRing:         *flightRing,
		SpanCap:            *spanCap,
		Metrics:            obs.NewRegistry(),
	}
	if *maxSteps > 0 {
		cfg.Limits = serve.DefaultLimits()
		cfg.Limits.MaxMaxSteps = *maxSteps
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aldaserve: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "aldaserve: listening on %s (shards=%d workers/shard=%d queue=%d journal=%q)\n",
		*addr, *shards, *workers, *queueDepth, *journal)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGQUIT)
loop:
	for {
		select {
		case err := <-errCh:
			fmt.Fprintf(os.Stderr, "aldaserve: %v\n", err)
			os.Exit(1)
		case got := <-sig:
			if got == syscall.SIGQUIT {
				// Live post-mortem: dump the flight recorder, keep serving.
				if *flightSnap != "" {
					if err := s.SnapshotFlightTo(*flightSnap, "sigquit"); err != nil {
						fmt.Fprintf(os.Stderr, "aldaserve: flight snapshot: %v\n", err)
					} else {
						fmt.Fprintf(os.Stderr, "aldaserve: SIGQUIT: flight snapshot written to %s\n", *flightSnap)
					}
				} else {
					snap := s.FlightSnapshot("sigquit")
					b, _ := json.Marshal(snap)
					fmt.Fprintf(os.Stderr, "aldaserve: SIGQUIT flight dump: %s\n", b)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "aldaserve: %v: draining (timeout %s)\n", got, *drainTimeout)
			break loop
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admissions first (readyz flips, jobs drain), then close the
	// listener; in-flight HTTP waits get their responses.
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "aldaserve: drain: %v (unfinished jobs stay journaled)\n", err)
		srv.Close()
		os.Exit(1)
	}
	srv.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, "aldaserve: drained cleanly")
}
