// Command aldacc is the ALDA compiler driver: it compiles an ALDA
// analysis (from a file or one of the built-in analyses), instruments a
// workload program, runs it on the VM, and prints the analysis reports
// and overhead — the full Figure 1 workflow in one invocation.
//
// Usage:
//
//	aldacc -analysis uaf -workload memcached -bug uaf
//	aldacc -file my.alda -workload fft -size small
//	aldacc -analysis eraser -workload radiosity -bug race -explain
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	analysisName := flag.String("analysis", "", "built-in analysis name (or comma-separated list to combine): "+strings.Join(analyses.Names(), ", "))
	file := flag.String("file", "", "path to an ALDA source file (alternative to -analysis)")
	workload := flag.String("workload", "", "workload program: "+strings.Join(workloads.Names(), ", "))
	mirFile := flag.String("mir", "", "path to a MIR text program to analyze instead of a named workload")
	sizeFlag := flag.String("size", "tiny", "workload size: tiny|small|medium|large")
	bugFlag := flag.String("bug", "none", "bug injection: none|uninit|ssl-leak|ssl-shutdown|zlib-uninit|uaf|race|taint")
	seed := flag.Int64("seed", 1, "scheduler seed")
	explain := flag.Bool("explain", false, "print ALDAcc's compilation plan")
	dsOnly := flag.Bool("ds-only", false, "disable coalescing and CSE (Figure 4 ablation)")
	naive := flag.Bool("naive", false, "disable all layout optimizations")
	baseline := flag.Bool("baseline", false, "also run uninstrumented and report overhead")
	pgo := flag.Bool("pgo", false, "run a tiny profiling pass first and recompile with profile-guided coalescing")
	optimize := flag.Bool("O", false, "run the MIR optimizer on the program before instrumenting")
	flag.Parse()

	opts := compiler.DefaultOptions()
	if *dsOnly {
		opts = compiler.DSOnlyOptions()
	}
	if *naive {
		opts = compiler.NaiveOptions()
	}

	var a *compiler.Analysis
	var err error
	switch {
	case *file != "":
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		a, err = compiler.Compile(string(src), opts)
		if err == nil {
			analyses.RegisterExternals(a)
		}
	case *analysisName != "":
		names := strings.Split(*analysisName, ",")
		if len(names) == 1 {
			a, err = analyses.Compile(names[0], opts)
		} else {
			a, err = analyses.CompileCombined(opts, names...)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -analysis or -file; try -analysis uaf -workload memcached -bug uaf")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if *explain {
		fmt.Print(a.Plan())
	}
	if *workload == "" && *mirFile == "" {
		if !*explain {
			fmt.Println("analysis compiled OK (use -workload or -mir to run it, -explain to see the plan)")
		}
		return
	}

	size := parseSize(*sizeFlag)
	bug := parseBug(*bugFlag)
	var p *mir.Program
	if *mirFile != "" {
		src, rerr := os.ReadFile(*mirFile)
		if rerr != nil {
			fatal(rerr)
		}
		p, err = mir.ParseText(string(src))
		if err != nil {
			fatal(err)
		}
		if err := p.Verify(); err != nil {
			fatal(err)
		}
	} else {
		p, err = workloads.BuildBug(*workload, size, bug)
		if err != nil {
			fatal(err)
		}
	}

	opt := core.RunOptions{Seed: *seed}

	if *optimize {
		removed := mir.Optimize(p)
		fmt.Printf("optimizer removed %d instructions\n", removed)
	}

	if *pgo {
		train := p
		if *mirFile == "" {
			train, err = workloads.Build(*workload, workloads.SizeTiny)
			if err != nil {
				fatal(err)
			}
		}
		prof, err := core.CollectProfile(a, train, opt)
		if err != nil {
			fatal(err)
		}
		a, err = core.RecompileWithProfile(a, prof)
		if err != nil {
			fatal(err)
		}
		fmt.Println("profile-guided coalescing applied; profile:")
		fmt.Print(prof.String())
	}
	res, err := core.RunAnalysis(p, a, opt)
	if err != nil {
		fatal(err)
	}

	if *mirFile != "" {
		fmt.Printf("program=%s\n", *mirFile)
	} else {
		fmt.Printf("workload=%s size=%s bug=%s\n", *workload, size, bug)
	}
	fmt.Printf("steps=%d hooks=%d threads=%d wall=%v\n", res.Steps, res.HookCalls, res.Threads, res.Wall)
	if *baseline {
		plain, err := core.RunPlain(p, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("baseline wall=%v normalized overhead=%.2fx\n", plain.Wall, core.Overhead(res, plain))
	}
	if len(res.Reports) == 0 {
		fmt.Println("no analysis reports")
		return
	}
	fmt.Printf("%d report(s):\n%s", len(res.Reports), vm.FormatReports(res.Reports))
}

func parseSize(s string) workloads.Size {
	switch s {
	case "tiny":
		return workloads.SizeTiny
	case "small":
		return workloads.SizeSmall
	case "medium":
		return workloads.SizeMedium
	case "large":
		return workloads.SizeLarge
	}
	fmt.Fprintf(os.Stderr, "unknown size %q\n", s)
	os.Exit(2)
	return 0
}

func parseBug(s string) workloads.Bug {
	switch s {
	case "none":
		return workloads.BugNone
	case "uninit":
		return workloads.BugUninit
	case "ssl-leak":
		return workloads.BugSSLLeak
	case "ssl-shutdown":
		return workloads.BugSSLShutdown
	case "zlib-uninit":
		return workloads.BugZlibUninit
	case "uaf":
		return workloads.BugUAF
	case "race":
		return workloads.BugRace
	case "taint":
		return workloads.BugTaint
	}
	fmt.Fprintf(os.Stderr, "unknown bug %q\n", s)
	os.Exit(2)
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aldacc:", err)
	os.Exit(1)
}
