// Command aldaload is the load generator for aldaserve: it drives a
// mixed job stream at a fixed concurrency, rides out backpressure with
// capped exponential backoff + jitter, and reports the sustained
// jobs/sec the server actually completed.
//
// Usage:
//
//	aldaload -url http://localhost:8080 -n 200 -c 8
//	aldaload -url http://localhost:8080 -n 500 -c 16 -workloads sort,fft -analyses uaf,msan
//	aldaload -url http://localhost:8080 -n 100 -c 8 -fault-seed-every 5   # chaos mix
//
// Every 429/503 is retried with equal-jitter exponential backoff (the
// same discipline as the harness retry path) up to -retry-budget total
// wait per job; a 5xx or an exhausted budget is a hard failure and the
// exit status is non-zero. The summary line is machine-grepped by the
// serve-smoke CI step and now carries tail latency (per-job wall time
// from submit to terminal response, backoff waits included — what a
// client actually experienced):
//
//	aldaload: ok=200 failed=0 lost=0 retries=37 elapsed=2.51s jobs/sec=79.7 p50_ms=18.2 p95_ms=104.7 p99_ms=311.0
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error *struct {
		Kind string `json:"kind"`
	} `json:"error"`
}

// splitmix64 is the same tiny PRNG the harness jitters with: enough to
// decorrelate clients without math/rand state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// percentile is the nearest-rank estimate over the collected per-job
// latencies (sorts its input; called once per quantile at exit).
func percentile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// backoff returns the equal-jitter wait for the given retry ordinal:
// uniform in [d/2, d] where d doubles from base up to max.
func backoff(base, max time.Duration, try int, seed uint64) time.Duration {
	d := base
	for i := 0; i < try && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(splitmix64(seed+uint64(try))%uint64(half+1))
}

func main() {
	url := flag.String("url", "http://localhost:8080", "aldaserve base URL")
	n := flag.Int("n", 100, "total jobs to submit")
	c := flag.Int("c", 8, "concurrent submitters")
	workloadList := flag.String("workloads", "sort,fft,bzip2", "comma-separated workload mix")
	analysisList := flag.String("analyses", "uaf,msan,eraser", "comma-separated analysis mix")
	tenants := flag.Int("tenants", 4, "number of synthetic tenants")
	engines := flag.String("engines", "interp,threaded", "comma-separated engine mix")
	faultEvery := flag.Int("fault-seed-every", 0, "give every Nth job a deterministic fault seed (0 = none)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial backoff after a 429/503")
	retryMax := flag.Duration("retry-max", 2*time.Second, "per-wait backoff cap")
	retryBudget := flag.Duration("retry-budget", 30*time.Second, "total backoff budget per job")
	seed := flag.Uint64("seed", 1, "jitter seed")
	quiet := flag.Bool("quiet", false, "suppress per-failure lines")
	flag.Parse()

	workloads := strings.Split(*workloadList, ",")
	analyses := strings.Split(*analysisList, ",")
	engs := strings.Split(*engines, ",")

	var ok, failed, lost, retries atomic.Uint64
	failKinds := struct {
		sync.Mutex
		m map[string]uint64
	}{m: map[string]uint64{}}
	lat := struct {
		sync.Mutex
		ms []float64 // per terminal job: wall time submit → terminal response
	}{}

	client := &http.Client{Timeout: 5 * time.Minute}
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				req := map[string]any{
					"tenant":   fmt.Sprintf("tenant%d", i%*tenants),
					"workload": workloads[i%len(workloads)],
					"analysis": analyses[i%len(analyses)],
					"options":  map[string]any{"engine": engs[i%len(engs)]},
				}
				if *faultEvery > 0 && i%*faultEvery == *faultEvery-1 {
					req["options"].(map[string]any)["fault_seed"] = i + 1
				}
				body, _ := json.Marshal(req)

				var spent time.Duration
				try := 0
				jobStart := time.Now()
				for {
					resp, err := client.Post(*url+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
					if err != nil {
						if !*quiet {
							fmt.Fprintf(os.Stderr, "aldaload: job %d: %v\n", i, err)
						}
						lost.Add(1)
						break
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
						d := backoff(*retryBase, *retryMax, try, splitmix64(*seed)+uint64(i))
						if spent+d > *retryBudget {
							if !*quiet {
								fmt.Fprintf(os.Stderr, "aldaload: job %d: backoff budget exhausted after %d tries\n", i, try+1)
							}
							lost.Add(1)
							break
						}
						time.Sleep(d)
						spent += d
						try++
						retries.Add(1)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						if !*quiet {
							fmt.Fprintf(os.Stderr, "aldaload: job %d: HTTP %d: %s\n", i, resp.StatusCode, b)
						}
						lost.Add(1)
						break
					}
					var st jobStatus
					if err := json.Unmarshal(b, &st); err != nil || st.State == "" {
						lost.Add(1)
						break
					}
					lat.Lock()
					lat.ms = append(lat.ms, float64(time.Since(jobStart).Microseconds())/1000)
					lat.Unlock()
					if st.State == "done" {
						ok.Add(1)
					} else {
						failed.Add(1)
						kind := "unknown"
						if st.Error != nil {
							kind = st.Error.Kind
						}
						failKinds.Lock()
						failKinds.m[kind]++
						failKinds.Unlock()
					}
					break
				}
			}
		}(w)
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	rate := float64(ok.Load()+failed.Load()) / elapsed.Seconds()
	p50, p95, p99 := percentile(lat.ms, 0.50), percentile(lat.ms, 0.95), percentile(lat.ms, 0.99)
	fmt.Printf("aldaload: ok=%d failed=%d lost=%d retries=%d elapsed=%.2fs jobs/sec=%.1f p50_ms=%.1f p95_ms=%.1f p99_ms=%.1f\n",
		ok.Load(), failed.Load(), lost.Load(), retries.Load(), elapsed.Seconds(), rate, p50, p95, p99)
	if len(failKinds.m) > 0 {
		var parts []string
		for k, v := range failKinds.m {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
		fmt.Printf("aldaload: failure kinds: %s\n", strings.Join(parts, " "))
	}
	if lost.Load() > 0 {
		os.Exit(1)
	}
}
