// Package core couples the pieces of the ALDA system — ALDAcc
// compilation (internal/compiler), event-handler insertion
// (internal/instrument) and execution (internal/vm) — into the
// end-to-end pipeline everything else builds on: the public alda
// package, the CLI tools and the benchmark harness.
package core

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/vm"
)

// RunOptions control one VM execution.
type RunOptions struct {
	Seed     int64
	MaxSteps uint64
	Quantum  int
	// MaxHeapBytes / Deadline are the vm.Config resource budgets; zero
	// means unbounded (beyond the address space / no wall-clock cap).
	MaxHeapBytes uint64
	Deadline     time.Duration
	// Faults is forwarded to the VM for deterministic fault injection.
	Faults vm.FaultSpec
}

func (o RunOptions) vmConfig(track bool) vm.Config {
	return vm.Config{
		Seed:         o.Seed,
		MaxSteps:     o.MaxSteps,
		Quantum:      o.Quantum,
		TrackShadow:  track,
		MaxHeapBytes: o.MaxHeapBytes,
		Deadline:     o.Deadline,
		Faults:       o.Faults,
	}
}

// RunPlain executes an uninstrumented program.
func RunPlain(p *mir.Program, opt RunOptions) (*vm.Result, error) {
	m, err := vm.New(p, opt.vmConfig(false))
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// RunAnalysis instruments p with a compiled ALDA analysis and executes
// it: instantiate a fresh runtime, weave the hooks, run.
func RunAnalysis(p *mir.Program, a *compiler.Analysis, opt RunOptions) (*vm.Result, error) {
	inst, err := instrument.Apply(p, a)
	if err != nil {
		return nil, err
	}
	return RunInstrumented(inst, a, opt)
}

// RunInstrumented executes an already-instrumented program under a
// fresh runtime of the analysis. Use this when the same instrumented
// program runs several times (benchmark repetitions) to keep the
// instrumentation cost out of the measured loop.
func RunInstrumented(inst *mir.Program, a *compiler.Analysis, opt RunOptions) (*vm.Result, error) {
	rt, err := a.NewRuntime()
	if err != nil {
		return nil, err
	}
	m, err := vm.New(inst, opt.vmConfig(a.NeedShadow))
	if err != nil {
		return nil, err
	}
	m.Handlers = rt.Handlers()
	return m.Run()
}

// RunBaseline executes p under a hand-tuned baseline analysis. The
// factory is invoked per run because baselines are single-use.
func RunBaseline(p *mir.Program, factory func() baselines.Baseline, opt RunOptions) (*vm.Result, error) {
	b := factory()
	inst, err := baselines.InstrumentBaseline(p, b)
	if err != nil {
		return nil, err
	}
	m, err := vm.New(inst, opt.vmConfig(b.NeedShadow()))
	if err != nil {
		return nil, err
	}
	m.Handlers = b.Handlers()
	return m.Run()
}

// CollectProfile recompiles the analysis with access counters, runs it
// over a training program, and returns the per-member access profile —
// the input to profile-guided coalescing (§3.2.1's future work).
func CollectProfile(a *compiler.Analysis, train *mir.Program, opt RunOptions) (*compiler.Profile, error) {
	popts := a.Opts
	popts.ProfileCollect = true
	pa, err := compiler.CompileProgram(a.Info.Program, popts)
	if err != nil {
		return nil, err
	}
	for k, v := range a.Externals {
		pa.Externals[k] = v
	}
	inst, err := instrument.Apply(train, pa)
	if err != nil {
		return nil, err
	}
	rt, err := pa.NewRuntime()
	if err != nil {
		return nil, err
	}
	m, err := vm.New(inst, opt.vmConfig(pa.NeedShadow))
	if err != nil {
		return nil, err
	}
	m.Handlers = rt.Handlers()
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	return rt.Profile(), nil
}

// RecompileWithProfile rebuilds an analysis under profile-guided
// coalescing.
func RecompileWithProfile(a *compiler.Analysis, p *compiler.Profile) (*compiler.Analysis, error) {
	opts := a.Opts
	opts.Profile = p
	na, err := compiler.CompileProgram(a.Info.Program, opts)
	if err != nil {
		return nil, err
	}
	na.SourceLOC = a.SourceLOC
	for k, v := range a.Externals {
		na.Externals[k] = v
	}
	return na, nil
}

// Overhead returns instrumented wall time normalized to the baseline
// run ("normalized overhead" in every figure of the paper).
func Overhead(instrumented, plain *vm.Result) float64 {
	if plain.Wall <= 0 {
		return 0
	}
	return float64(instrumented.Wall) / float64(plain.Wall)
}

// Validate verifies a program and reports a friendlier error.
func Validate(p *mir.Program) error {
	if err := p.Verify(); err != nil {
		return fmt.Errorf("core: program fails verification: %w", err)
	}
	return nil
}
