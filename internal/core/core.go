// Package core couples the pieces of the ALDA system — ALDAcc
// compilation (internal/compiler), event-handler insertion
// (internal/instrument) and execution (internal/vm) — into the
// end-to-end pipeline everything else builds on: the public alda
// package, the CLI tools and the benchmark harness.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vm"
)

// RunOptions control one VM execution.
type RunOptions struct {
	Seed     int64
	MaxSteps uint64
	Quantum  int
	// MaxHeapBytes / Deadline are the vm.Config resource budgets; zero
	// means unbounded (beyond the address space / no wall-clock cap).
	MaxHeapBytes uint64
	Deadline     time.Duration
	// Faults is forwarded to the VM for deterministic fault injection.
	Faults vm.FaultSpec
	// Engine selects the VM execution tier. The zero value defers to
	// the analysis' compiled configuration (Options.Engine), so matrix
	// sweeps carry the tier in their NamedOptions while explicit
	// callers (CLI -engine flags) override per run.
	Engine vm.Engine

	// Metrics, when non-nil, receives the run's observability counters
	// after a successful run (VM op/hook/scheduler counts, container
	// traffic, profile counts). Failed runs report nothing: their
	// partial counters would differ between a run that trapped and one
	// that was retried, breaking determinism of merged metrics.
	Metrics *obs.Shard
	// TimeHooks additionally records per-handler cumulative nanoseconds
	// (volatile counters; leave off for deterministic -virtual runs).
	TimeHooks bool
	// Trace, when non-nil, receives VM quantum/fault trace events,
	// tagged with TraceTID.
	Trace    *obs.Trace
	TraceTID int64

	// TraceSink, when non-nil, records the run as a compressed replay
	// trace (interpreter-only; see vm.Config.TraceSink). RecordTrace is
	// the usual entry point.
	TraceSink io.Writer
	// ReplayTrace, when non-nil, re-executes a recorded trace instead of
	// running live (forces the replay tier; see vm.Config.Replay). The
	// same decoded trace may feed concurrent runs.
	ReplayTrace *trace.Trace
}

// resolveEngine picks the execution tier for a run: an explicit
// RunOptions.Engine wins, otherwise the tier compiled into the
// analysis configuration applies (EngineInterp for plain runs).
func (o RunOptions) resolveEngine(a *compiler.Analysis) vm.Engine {
	if o.Engine != vm.EngineInterp || a == nil {
		return o.Engine
	}
	return a.Opts.Engine
}

func (o RunOptions) vmConfig(track bool) vm.Config {
	return vm.Config{
		Seed:         o.Seed,
		MaxSteps:     o.MaxSteps,
		Quantum:      o.Quantum,
		TrackShadow:  track,
		Engine:       o.Engine,
		MaxHeapBytes: o.MaxHeapBytes,
		Deadline:     o.Deadline,
		Faults:       o.Faults,
		TimeHooks:    o.TimeHooks,
		Trace:        o.Trace,
		TraceTID:     o.TraceTID,
		TraceSink:    o.TraceSink,
		Replay:       o.ReplayTrace,
	}
}

// hookName labels handler id for metrics keys; ids beyond the known
// name table (baselines, plain runs) fall back to a numeric label.
func hookName(names []string, id int) string {
	if id < len(names) {
		return names[id]
	}
	return fmt.Sprintf("h%d", id)
}

func addNZ(s *obs.Shard, key string, v uint64) {
	if v != 0 {
		s.Add(key, v)
	}
}

// observe flattens a finished machine's counters (and, when available,
// the runtime's container traffic and member-access profile) into the
// options' metrics shard. Keys under vm.*, meta.* and profile.* are
// deterministic for -virtual runs; vm.hook.*.ns is volatile.
func observe(o RunOptions, m *vm.Machine, names []string, rt *compiler.Runtime) {
	s := o.Metrics
	if s == nil {
		return
	}
	mm := m.Metrics()
	var steps uint64
	for op, n := range mm.Ops {
		if n == 0 {
			continue
		}
		steps += n
		s.Add("vm.op."+mir.Op(op).String(), n)
	}
	s.Add("vm.steps", steps)
	s.Add("vm.sched.quanta", mm.Quanta)
	s.Add("vm.sched.ctx_switches", mm.CtxSwitches)
	addNZ(s, "vm.faults.fired", mm.FaultsFired)
	for id, n := range mm.HookCalls {
		if n != 0 {
			s.Add("vm.hook."+hookName(names, id)+".calls", n)
		}
	}
	for id, ns := range mm.HookNS {
		if ns != 0 {
			s.AddVolatile("vm.hook."+hookName(names, id)+".ns", ns)
		}
	}
	if rt == nil {
		return
	}
	for _, gt := range rt.GroupTraffic() {
		pre := "meta." + gt.Label + "."
		addNZ(s, pre+"get", gt.Stats.Gets())
		addNZ(s, pre+"set", gt.Stats.Sets())
		addNZ(s, pre+"iter", gt.Stats.Iters)
		addNZ(s, pre+"rehash", gt.Stats.Rehashes)
		addNZ(s, pre+"cache_hit", gt.Stats.CacheHits)
		addNZ(s, pre+"cache_miss", gt.Stats.CacheMisses)
	}
	for name, c := range rt.Profile().Counts {
		addNZ(s, compiler.ProfileMetricPrefix+name, c)
	}
}

// observeTrace exports a recorded run's stream statistics. Separate
// from observe because recording is the one mode whose interesting
// numbers survive a failed run (the trace does too).
func observeTrace(o RunOptions, m *vm.Machine) {
	s := o.Metrics
	if s == nil {
		return
	}
	ts := m.TraceStats()
	if ts.Bytes == 0 {
		return
	}
	s.Add("vm.trace.bytes", ts.Bytes)
	s.Add("vm.trace.raw_bytes", ts.RawBytes)
	s.Add("vm.trace.events", ts.Events)
	s.Add("vm.trace.batches", ts.Batches)
	s.Add("vm.trace.ratio_milli", uint64(ts.Ratio()*1000))
}

// RunPlain executes an uninstrumented program.
func RunPlain(p *mir.Program, opt RunOptions) (*vm.Result, error) {
	m, err := vm.New(p, opt.vmConfig(false))
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	observe(opt, m, nil, nil)
	observeTrace(opt, m)
	return res, nil
}

// RecordTrace executes the uninstrumented program in record mode and
// returns the encoded replay trace. The trace is returned even when
// the run fails with a verdict-grade RunError — the stream's terminal
// record captures the failure, and replaying it reproduces the same
// error — so callers can record ERR cells too. Infrastructure errors
// (a program that does not link) return nil bytes.
func RecordTrace(p *mir.Program, opt RunOptions) ([]byte, *vm.Result, error) {
	var buf bytes.Buffer
	opt.TraceSink = &buf
	opt.ReplayTrace = nil
	opt.Engine = vm.EngineInterp
	m, err := vm.New(p, opt.vmConfig(false))
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run()
	if err != nil {
		observeTrace(opt, m)
		var re *vm.RunError
		if errors.As(err, &re) {
			return buf.Bytes(), nil, err
		}
		return nil, nil, err
	}
	observe(opt, m, nil, nil)
	observeTrace(opt, m)
	return buf.Bytes(), res, nil
}

// RunAnalysis instruments p with a compiled ALDA analysis and executes
// it: instantiate a fresh runtime, weave the hooks, run.
func RunAnalysis(p *mir.Program, a *compiler.Analysis, opt RunOptions) (*vm.Result, error) {
	inst, err := instrument.Apply(p, a)
	if err != nil {
		return nil, err
	}
	return RunInstrumented(inst, a, opt)
}

// RunInstrumented executes an already-instrumented program under a
// fresh runtime of the analysis. Use this when the same instrumented
// program runs several times (benchmark repetitions) to keep the
// instrumentation cost out of the measured loop.
func RunInstrumented(inst *mir.Program, a *compiler.Analysis, opt RunOptions) (*vm.Result, error) {
	rt, err := a.NewRuntime()
	if err != nil {
		return nil, err
	}
	opt.Engine = opt.resolveEngine(a)
	m, err := vm.New(inst, opt.vmConfig(a.NeedShadow))
	if err != nil {
		return nil, err
	}
	m.Handlers = rt.Handlers()
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	observe(opt, m, a.HandlerNames(), rt)
	return res, nil
}

// RunBaseline executes p under a hand-tuned baseline analysis. The
// factory is invoked per run because baselines are single-use.
func RunBaseline(p *mir.Program, factory func() baselines.Baseline, opt RunOptions) (*vm.Result, error) {
	b := factory()
	inst, err := baselines.InstrumentBaseline(p, b)
	if err != nil {
		return nil, err
	}
	m, err := vm.New(inst, opt.vmConfig(b.NeedShadow()))
	if err != nil {
		return nil, err
	}
	m.Handlers = b.Handlers()
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	observe(opt, m, nil, nil)
	return res, nil
}

// CollectProfile recompiles the analysis with access counters, runs it
// over a training program, and returns the per-member access profile —
// the input to profile-guided coalescing (§3.2.1's future work).
func CollectProfile(a *compiler.Analysis, train *mir.Program, opt RunOptions) (*compiler.Profile, error) {
	popts := a.Opts
	popts.ProfileCollect = true
	pa, err := compiler.CompileProgram(a.Info.Program, popts)
	if err != nil {
		return nil, err
	}
	for k, v := range a.Externals {
		pa.Externals[k] = v
	}
	inst, err := instrument.Apply(train, pa)
	if err != nil {
		return nil, err
	}
	// The profile rides the ordinary metrics pathway: the training run
	// exports profile.member.* counters into a private shard, and the
	// shard flattens back into a Profile — the same counters an external
	// -profile-out file round-trips through.
	popt := opt
	sh := obs.NewShard()
	popt.Metrics = sh
	rt, err := pa.NewRuntime()
	if err != nil {
		return nil, err
	}
	popt.Engine = popt.resolveEngine(pa)
	m, err := vm.New(inst, popt.vmConfig(pa.NeedShadow))
	if err != nil {
		return nil, err
	}
	m.Handlers = rt.Handlers()
	if _, err := m.Run(); err != nil {
		// A MaxSteps budget ending the run is the normal way a BOUNDED
		// profiling quantum finishes (the adaptive loop caps training
		// with exactly this budget): the counters accumulated up to the
		// cutoff are the profile. Every other failure aborts.
		var re *vm.RunError
		if !errors.As(err, &re) || re.Kind != vm.KindStepLimit {
			return nil, err
		}
	}
	observe(popt, m, pa.HandlerNames(), rt)
	if opt.Metrics != nil {
		for k, v := range sh.Counts {
			opt.Metrics.Add(k, v)
		}
		for k, v := range sh.Volatile {
			opt.Metrics.AddVolatile(k, v)
		}
	}
	return compiler.ProfileFromCounts(sh.Counts), nil
}

// RecompileWithProfile rebuilds an analysis under profile-guided
// coalescing.
func RecompileWithProfile(a *compiler.Analysis, p *compiler.Profile) (*compiler.Analysis, error) {
	opts := a.Opts
	opts.Profile = p
	na, err := compiler.CompileProgram(a.Info.Program, opts)
	if err != nil {
		return nil, err
	}
	na.SourceLOC = a.SourceLOC
	for k, v := range a.Externals {
		na.Externals[k] = v
	}
	return na, nil
}

// Overhead returns instrumented wall time normalized to the baseline
// run ("normalized overhead" in every figure of the paper).
func Overhead(instrumented, plain *vm.Result) float64 {
	if plain.Wall <= 0 {
		return 0
	}
	return float64(instrumented.Wall) / float64(plain.Wall)
}

// Validate verifies a program and reports a friendlier error.
func Validate(p *mir.Program) error {
	if err := p.Verify(); err != nil {
		return fmt.Errorf("core: program fails verification: %w", err)
	}
	return nil
}
