package core

import (
	"testing"
	"time"

	"repro/internal/analyses"
	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/mir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestRunPlain(t *testing.T) {
	p := workloads.MustBuild("bzip2", workloads.SizeTiny)
	res, err := RunPlain(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps")
	}
}

func TestRunAnalysisAndInstrumentedAgree(t *testing.T) {
	a, err := analyses.Compile("uaf", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := workloads.BuildBug("memcached", workloads.SizeTiny, workloads.BugUAF)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunAnalysis(p, a, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-instrumenting and reusing must give the same behavior.
	inst, err := instrumentFor(p, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunInstrumented(inst, a, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Reports) != len(r2.Reports) || r1.Steps != r2.Steps {
		t.Fatalf("paths disagree: %d/%d vs %d/%d", len(r1.Reports), r1.Steps, len(r2.Reports), r2.Steps)
	}
	// Runtimes are per-run: a second run over the same instrumented
	// program must see fresh metadata.
	r3, err := RunInstrumented(inst, a, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Reports) != len(r2.Reports) {
		t.Fatalf("stale metadata across runs: %d vs %d reports", len(r3.Reports), len(r2.Reports))
	}
}

func instrumentFor(p *mir.Program, a *compiler.Analysis) (*mir.Program, error) {
	return instrument.Apply(p, a)
}

func TestRunBaseline(t *testing.T) {
	p := workloads.MustBuild("fft", workloads.SizeTiny)
	res, err := RunBaseline(p, func() baselines.Baseline { return baselines.NewEraser() }, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HookCalls == 0 {
		t.Fatal("baseline dispatched no hooks")
	}
}

func TestOverhead(t *testing.T) {
	a := &vm.Result{Wall: 30 * time.Millisecond}
	b := &vm.Result{Wall: 10 * time.Millisecond}
	if got := Overhead(a, b); got != 3 {
		t.Fatalf("overhead = %v", got)
	}
	if got := Overhead(a, &vm.Result{}); got != 0 {
		t.Fatalf("zero baseline overhead = %v", got)
	}
}

func TestValidate(t *testing.T) {
	p := mir.NewProgram()
	fb := p.NewFunc("main", 0)
	fb.Const(1) // no terminator
	if err := Validate(p); err == nil {
		t.Fatal("expected validation error")
	}
}
