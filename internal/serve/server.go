package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/obs"
)

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	// Shards is the number of worker-pool shards. Jobs are placed by
	// compile fingerprint (analysis × options), so jobs sharing a
	// cached compiled analysis colocate on one shard and keep its
	// caches warm. Default 4.
	Shards int
	// WorkersPerShard is the goroutine count per shard. Default 1.
	WorkersPerShard int
	// QueueDepth bounds each shard's admission queue: a burst beyond
	// workers+queue is rejected with 429 + Retry-After instead of
	// growing an unbounded backlog. Default 64.
	QueueDepth int
	// TenantInflight caps one tenant's queued+running jobs; excess is
	// 429'd so a single hot tenant cannot starve the rest. 0 means the
	// default (16); negative disables the cap.
	TenantInflight int
	// JournalPath enables the write-ahead job journal (empty = no
	// durability).
	JournalPath string
	// JournalSyncEvery batches journal fsyncs (default 1 = every
	// record, the full-durability setting).
	JournalSyncEvery int
	// JournalFaults injects deterministic journal I/O failures (chaos
	// testing).
	JournalFaults JournalFaults
	// AdaptAfter enables the adaptive-PGO loop: each compile-affinity
	// key profiles its first AdaptAfter completed jobs, then hot-swaps
	// to a profile-adapted recompile for every later job (see adapt.go).
	// 0 disables adaptation (every job runs the static build).
	AdaptAfter int
	// Limits are the per-job resource budgets; zero fields take
	// DefaultLimits.
	Limits Limits
	// Metrics receives service counters and per-job deterministic VM
	// counters (nil = a private registry, still served on /metrics).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantInflight == 0 {
		c.TenantInflight = 16
	}
	if c.JournalSyncEvery <= 0 {
		c.JournalSyncEvery = 1
	}
	def := DefaultLimits()
	if c.Limits.DefaultMaxSteps == 0 {
		c.Limits.DefaultMaxSteps = def.DefaultMaxSteps
	}
	if c.Limits.MaxMaxSteps == 0 {
		c.Limits.MaxMaxSteps = def.MaxMaxSteps
	}
	if c.Limits.DefaultMaxHeap == 0 {
		c.Limits.DefaultMaxHeap = def.DefaultMaxHeap
	}
	if c.Limits.MaxMaxHeap == 0 {
		c.Limits.MaxMaxHeap = def.MaxMaxHeap
	}
	if c.Limits.DefaultDeadline == 0 {
		c.Limits.DefaultDeadline = def.DefaultDeadline
	}
	if c.Limits.MaxDeadline == 0 {
		c.Limits.MaxDeadline = def.MaxDeadline
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// fingerprint guards the journal: results are a function of the
// journal version and the budget limits (a job that failed HeapLimit
// under one cap might succeed under another), so a journal written
// under different limits must not be replayed.
func (c Config) fingerprint() string {
	l := c.Limits
	fp := fmt.Sprintf("serve-v%d steps=%d/%d heap=%d/%d deadline=%s/%s",
		journalVersion, l.DefaultMaxSteps, l.MaxMaxSteps,
		l.DefaultMaxHeap, l.MaxMaxHeap, l.DefaultDeadline, l.MaxDeadline)
	// Adaptation epochs are journaled, so a journal written with the
	// adaptive loop enabled must not replay into a server that would
	// ignore (or differently schedule) those records. Appending only
	// when enabled keeps existing non-adaptive journals valid.
	if c.AdaptAfter > 0 {
		fp += fmt.Sprintf(" adapt=%d", c.AdaptAfter)
	}
	return fp
}

// job is one accepted job's server-side state.
type job struct {
	id   string
	seq  uint64
	req  JobRequest
	mu   sync.Mutex
	stat JobStatus
	done chan struct{} // closed at terminal state
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stat
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.stat.State = state
	j.mu.Unlock()
}

// finish records the terminal status and wakes waiters.
func (j *job) finish(res *JobResult, jerr *JobError) JobStatus {
	j.mu.Lock()
	if jerr != nil {
		j.stat.State = StateFailed
		j.stat.Error = jerr
	} else {
		j.stat.State = StateDone
		j.stat.Result = res
	}
	out := j.stat
	j.mu.Unlock()
	close(j.done)
	return out
}

// shard is one slice of the worker pool: a bounded queue plus a
// semaphore bounding queued+running occupancy, sized so that a job
// holding a token always has a queue slot — admission that wins a
// token never blocks on the send.
type shard struct {
	queue  chan *job
	tokens chan struct{}
}

// Server is the aldaserve core: admission, sharded execution,
// journaling, drain. Construct with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	journal *Journal

	mu      sync.Mutex // jobs, seq, tenants
	jobs    map[string]*job
	seq     uint64
	tenants map[string]int

	sendMu   sync.RWMutex // guards draining + queue sends
	draining bool
	drainCh  chan struct{}
	drainOne sync.Once

	shards []*shard
	wg     sync.WaitGroup

	adaptMu     sync.Mutex // adaptive-PGO loop state (adapt.go)
	adaptStates map[string]*keyAdaptState

	cacheMu                             sync.Mutex // counter delta export for /metrics
	lastHits, lastMisses, lastEvictions uint64
	lastJournalAppends, lastJournalErrs uint64
}

// New builds a server, replays its journal (if configured), starts the
// worker pool, and re-enqueues every journaled-but-unfinished job.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Metrics,
		jobs:        map[string]*job{},
		tenants:     map[string]int{},
		adaptStates: map[string]*keyAdaptState{},
		drainCh:     make(chan struct{}),
	}
	var recovered *Recovered
	if cfg.JournalPath != "" {
		var err error
		s.journal, recovered, err = OpenJournal(cfg.JournalPath, cfg.fingerprint(), cfg.JournalSyncEvery, cfg.JournalFaults)
		if err != nil {
			return nil, err
		}
	}
	cap := cfg.QueueDepth + cfg.WorkersPerShard
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{queue: make(chan *job, cap), tokens: make(chan struct{}, cap)}
		s.shards = append(s.shards, sh)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			s.wg.Add(1)
			go s.worker(sh)
		}
	}
	if recovered != nil {
		s.replay(recovered)
	}
	return s, nil
}

// replay restores journaled terminal jobs and re-enqueues unfinished
// accepts. Unfinished jobs were admitted before the crash, so they
// bypass admission control (blocking token acquisition in a background
// goroutine) — a restart must never 429 work it already promised.
func (s *Server) replay(rec *Recovered) {
	// Adaptation epochs first: a re-enqueued job whose key swapped
	// before the crash must run the adapted analysis, exactly as it
	// would have.
	if s.cfg.AdaptAfter > 0 {
		s.replayAdapt(rec.Adapt)
	}
	s.mu.Lock()
	s.seq = rec.MaxSeq
	for id, st := range rec.Done {
		j := &job{id: id, stat: *st, done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
	}
	var pending []*job
	for _, a := range rec.Unfinished {
		j := &job{
			id: a.ID, seq: a.Seq, req: *a.Req,
			stat: JobStatus{ID: a.ID, Tenant: a.Req.Tenant, State: StateQueued},
			done: make(chan struct{}),
		}
		s.jobs[a.ID] = j
		s.tenants[a.Req.Tenant]++
		pending = append(pending, j)
	}
	s.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	s.reg.Add("serve.jobs.recovered", uint64(len(pending)))
	go func() {
		for _, j := range pending {
			sh := s.shards[s.shardOf(&j.req)]
			select {
			case sh.tokens <- struct{}{}:
			case <-s.drainCh:
				return // still journaled as unfinished; the next restart gets it
			}
			s.sendMu.RLock()
			if s.draining {
				s.sendMu.RUnlock()
				return
			}
			sh.queue <- j
			s.sendMu.RUnlock()
		}
	}()
}

// shardOf places a job by compile fingerprint so cache-affine jobs
// colocate.
func (s *Server) shardOf(req *JobRequest) int {
	h := fnv.New32a()
	h.Write([]byte(req.fingerprintKey()))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// worker drains one shard's queue until Shutdown closes it.
func (s *Server) worker(sh *shard) {
	defer s.wg.Done()
	for j := range sh.queue {
		s.runJob(j)
		<-sh.tokens
	}
}

// runJob executes one job, journals the terminal status, and folds the
// run's counters into the registry.
func (s *Server) runJob(j *job) {
	j.setState(StateRunning)
	var shard *obs.Shard
	if s.reg != nil {
		shard = obs.NewShard()
	}
	start := time.Now()
	var res *JobResult
	var jerr *JobError
	if s.cfg.AdaptAfter > 0 {
		res, jerr = s.runAdaptive(j, shard)
	} else {
		res, jerr = Execute(&j.req, s.cfg.Limits, shard)
	}
	wall := time.Since(start)

	status := j.finish(res, jerr)
	if s.journal != nil {
		if err := s.journal.AppendDone(&status); err != nil {
			s.reg.AddVolatile("serve.journal.errors", 1)
		}
	}
	s.mu.Lock()
	s.tenants[j.req.Tenant]--
	if s.tenants[j.req.Tenant] <= 0 {
		delete(s.tenants, j.req.Tenant)
	}
	s.mu.Unlock()

	if jerr != nil {
		s.reg.Add("serve.jobs.failed."+jerr.Kind, 1)
	} else {
		s.reg.Add("serve.jobs.completed", 1)
		s.reg.MergeShard(shard)
	}
	s.reg.AddVolatile("serve.job_wall_ns", uint64(wall))
}

// accept admits one validated request: tenant cap, shard token,
// journal, enqueue. Returns the queued job or a typed rejection.
func (s *Server) accept(req *JobRequest) (*job, int, *JobError) {
	shIdx := s.shardOf(req)
	sh := s.shards[shIdx]

	// Per-tenant in-flight cap first: a busy tenant must not consume
	// queue tokens other tenants could use.
	if s.cfg.TenantInflight > 0 {
		s.mu.Lock()
		busy := s.tenants[req.Tenant] >= s.cfg.TenantInflight
		s.mu.Unlock()
		if busy {
			s.reg.AddVolatile("serve.rejected.tenant_cap", 1)
			return nil, http.StatusTooManyRequests,
				&JobError{Kind: "TenantBusy", Message: fmt.Sprintf("tenant %q at in-flight cap %d", req.Tenant, s.cfg.TenantInflight), Retryable: true}
		}
	}
	// Bounded queue: win a shard token or be backpressured.
	select {
	case sh.tokens <- struct{}{}:
	default:
		s.reg.AddVolatile("serve.rejected.queue_full", 1)
		return nil, http.StatusTooManyRequests,
			&JobError{Kind: "QueueFull", Message: fmt.Sprintf("shard %d queue full", shIdx), Retryable: true}
	}

	s.mu.Lock()
	s.seq++
	j := &job{
		id: fmt.Sprintf("j%d", s.seq), seq: s.seq, req: *req,
		done: make(chan struct{}),
	}
	j.stat = JobStatus{ID: j.id, Tenant: req.Tenant, State: StateQueued}
	s.jobs[j.id] = j
	s.tenants[req.Tenant]++
	s.mu.Unlock()

	// Write-ahead: the accept record reaches the journal (fsynced)
	// before the client sees 202. A journal failure degrades
	// durability, not availability.
	if s.journal != nil {
		if err := s.journal.AppendAccept(j.seq, j.id, &j.req); err != nil {
			s.reg.AddVolatile("serve.journal.errors", 1)
		}
	}

	s.sendMu.RLock()
	if s.draining {
		// Lost the race with Shutdown: undo the admission.
		s.sendMu.RUnlock()
		<-sh.tokens
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.tenants[req.Tenant]--
		if s.tenants[req.Tenant] <= 0 {
			delete(s.tenants, req.Tenant)
		}
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable,
			&JobError{Kind: "Draining", Message: "server is draining", Retryable: true}
	}
	sh.queue <- j // token held ⇒ never blocks
	s.sendMu.RUnlock()

	s.reg.Add("serve.jobs.accepted", 1)
	return j, http.StatusAccepted, nil
}

// lookup returns a job by ID.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	return s.draining
}

// Shutdown gracefully drains the server: stop accepting, finish every
// queued and running job, flush and close the journal. If ctx expires
// first, the remaining jobs stay journaled as unfinished — a restart
// with the same journal picks them up (that is the "checkpoint
// in-flight" half of the drain contract) — and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.sendMu.Lock()
		s.draining = true
		close(s.drainCh)
		for _, sh := range s.shards {
			close(sh.queue)
		}
		s.sendMu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.journal != nil {
			if err := s.journal.Close(); err != nil {
				return fmt.Errorf("closing journal: %w", err)
			}
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted: %w", ctx.Err())
	}
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// errorBody is the non-job error envelope (bad request, not found,
// draining, backpressure).
type errorBody struct {
	Error *JobError `json:"error"`
}

// Handler mounts the service API:
//
//	POST /v1/jobs        submit (202, or 400/429/503 typed errors);
//	                     ?wait=1 blocks until terminal and returns 200
//	GET  /v1/jobs/{id}   status/result; ?wait=1 blocks until terminal
//	GET  /healthz        process liveness
//	GET  /readyz         accepting? 200 ("ok" or "degraded: journal") / 503 draining
//	GET  /metrics        obs registry JSON (volatile included)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{&JobError{Kind: "Draining", Message: "server is draining", Retryable: true}})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		s.reg.AddVolatile("serve.rejected.invalid", 1)
		writeJSON(w, http.StatusBadRequest,
			errorBody{&JobError{Kind: "BadRequest", Message: err.Error()}})
		return
	}
	if err := req.Validate(); err != nil {
		s.reg.AddVolatile("serve.rejected.invalid", 1)
		writeJSON(w, http.StatusBadRequest,
			errorBody{&JobError{Kind: "BadRequest", Message: err.Error()}})
		return
	}
	j, code, jerr := s.accept(&req)
	if jerr != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorBody{jerr})
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.waitAndReply(w, r, j)
		return
	}
	writeJSON(w, code, j.snapshot())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{&JobError{Kind: "NotFound", Message: "no such job"}})
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.waitAndReply(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// waitAndReply blocks until the job is terminal (or the client goes
// away) and replies with the final status.
func (s *Server) waitAndReply(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.snapshot())
	case <-r.Context().Done():
		writeJSON(w, http.StatusOK, j.snapshot()) // best effort: current state
	}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	if s.journal != nil && s.journal.Degraded() {
		w.Write([]byte("degraded: journal\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Fold the process-wide compile-cache deltas in as volatile
	// counters (they are shared across servers in one process, hence
	// not deterministic per server).
	hits, misses, evicts := compiler.CompileCacheStats()
	s.cacheMu.Lock()
	dh, dm, de := hits-s.lastHits, misses-s.lastMisses, evicts-s.lastEvictions
	s.lastHits, s.lastMisses, s.lastEvictions = hits, misses, evicts
	s.cacheMu.Unlock()
	s.reg.AddVolatile("compiler.cache.hits", dh)
	s.reg.AddVolatile("compiler.cache.misses", dm)
	s.reg.AddVolatile("compiler.cache.evictions", de)
	if s.journal != nil {
		appends, errs := s.journal.Stats()
		s.cacheMu.Lock()
		da, de2 := appends-s.lastJournalAppends, errs-s.lastJournalErrs
		s.lastJournalAppends, s.lastJournalErrs = appends, errs
		s.cacheMu.Unlock()
		s.reg.AddVolatile("serve.journal.appends", da)
		s.reg.AddVolatile("serve.journal.append_errors", de2)
	}
	s.reg.WriteJSON(w, true)
}
