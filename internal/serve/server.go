package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/obs"
)

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	// Shards is the number of worker-pool shards. Jobs are placed by
	// compile fingerprint (analysis × options), so jobs sharing a
	// cached compiled analysis colocate on one shard and keep its
	// caches warm. Default 4.
	Shards int
	// WorkersPerShard is the goroutine count per shard. Default 1.
	WorkersPerShard int
	// QueueDepth bounds each shard's admission queue: a burst beyond
	// workers+queue is rejected with 429 + Retry-After instead of
	// growing an unbounded backlog. Default 64.
	QueueDepth int
	// TenantInflight caps one tenant's queued+running jobs; excess is
	// 429'd so a single hot tenant cannot starve the rest. 0 means the
	// default (16); negative disables the cap.
	TenantInflight int
	// JournalPath enables the write-ahead job journal (empty = no
	// durability).
	JournalPath string
	// JournalSyncEvery batches journal fsyncs (default 1 = every
	// record, the full-durability setting).
	JournalSyncEvery int
	// JournalFaults injects deterministic journal I/O failures (chaos
	// testing).
	JournalFaults JournalFaults
	// AdaptAfter enables the adaptive-PGO loop: each compile-affinity
	// key profiles its first AdaptAfter completed jobs, then hot-swaps
	// to a profile-adapted recompile for every later job (see adapt.go).
	// 0 disables adaptation (every job runs the static build).
	AdaptAfter int
	// ProfileSampleEvery keeps the profile stream alive after a key's
	// swap: every Nth post-swap job re-runs the profile-collecting build
	// (verdict-identical by the adaptive conformance axis), feeding the
	// rolling profile window and the drift gauge. 0 takes the default
	// (16) when adaptation is on; negative disables post-swap sampling.
	ProfileSampleEvery int
	// ProfileWindow is how many recent per-job profiles the rolling
	// window holds per compile-affinity key. Default 8.
	ProfileWindow int
	// SpanCap bounds the lifecycle span store (oldest trace evicted
	// whole beyond it). Default 1024.
	SpanCap int
	// FlightRing is the per-worker-shard flight-recorder ring size.
	// Default 256.
	FlightRing int
	// FlightSnapshotPath, when set, is where the flight recorder
	// auto-dumps (once) when the journal degrades — chaos faults
	// included — so a failed soak leaves a post-mortem behind.
	FlightSnapshotPath string
	// SLOWall is the wall-clock latency objective per job; completions
	// slower than it count into serve.slo.jobs_over_deadline_total.
	// 0 takes the default (1s); negative disables the counter.
	SLOWall time.Duration
	// Limits are the per-job resource budgets; zero fields take
	// DefaultLimits.
	Limits Limits
	// Metrics receives service counters and per-job deterministic VM
	// counters (nil = a private registry, still served on /metrics).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantInflight == 0 {
		c.TenantInflight = 16
	}
	if c.JournalSyncEvery <= 0 {
		c.JournalSyncEvery = 1
	}
	if c.ProfileSampleEvery == 0 {
		c.ProfileSampleEvery = 16
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = 8
	}
	if c.SpanCap <= 0 {
		c.SpanCap = 1024
	}
	if c.FlightRing <= 0 {
		c.FlightRing = 256
	}
	if c.SLOWall == 0 {
		c.SLOWall = time.Second
	}
	def := DefaultLimits()
	if c.Limits.DefaultMaxSteps == 0 {
		c.Limits.DefaultMaxSteps = def.DefaultMaxSteps
	}
	if c.Limits.MaxMaxSteps == 0 {
		c.Limits.MaxMaxSteps = def.MaxMaxSteps
	}
	if c.Limits.DefaultMaxHeap == 0 {
		c.Limits.DefaultMaxHeap = def.DefaultMaxHeap
	}
	if c.Limits.MaxMaxHeap == 0 {
		c.Limits.MaxMaxHeap = def.MaxMaxHeap
	}
	if c.Limits.DefaultDeadline == 0 {
		c.Limits.DefaultDeadline = def.DefaultDeadline
	}
	if c.Limits.MaxDeadline == 0 {
		c.Limits.MaxDeadline = def.MaxDeadline
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// fingerprint guards the journal: results are a function of the
// journal version and the budget limits (a job that failed HeapLimit
// under one cap might succeed under another), so a journal written
// under different limits must not be replayed.
func (c Config) fingerprint() string {
	l := c.Limits
	fp := fmt.Sprintf("serve-v%d steps=%d/%d heap=%d/%d deadline=%s/%s",
		journalVersion, l.DefaultMaxSteps, l.MaxMaxSteps,
		l.DefaultMaxHeap, l.MaxMaxHeap, l.DefaultDeadline, l.MaxDeadline)
	// Adaptation epochs are journaled, so a journal written with the
	// adaptive loop enabled must not replay into a server that would
	// ignore (or differently schedule) those records. Appending only
	// when enabled keeps existing non-adaptive journals valid.
	if c.AdaptAfter > 0 {
		fp += fmt.Sprintf(" adapt=%d", c.AdaptAfter)
	}
	return fp
}

// job is one accepted job's server-side state.
type job struct {
	id    string
	seq   uint64
	trace string
	req   JobRequest
	mu    sync.Mutex
	stat  JobStatus
	done  chan struct{} // closed at terminal state
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stat
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.stat.State = state
	j.mu.Unlock()
}

// finish records the terminal status and wakes waiters.
func (j *job) finish(res *JobResult, jerr *JobError) JobStatus {
	j.mu.Lock()
	if jerr != nil {
		j.stat.State = StateFailed
		j.stat.Error = jerr
	} else {
		j.stat.State = StateDone
		j.stat.Result = res
	}
	out := j.stat
	j.mu.Unlock()
	close(j.done)
	return out
}

// shard is one slice of the worker pool: a bounded queue plus a
// semaphore bounding queued+running occupancy, sized so that a job
// holding a token always has a queue slot — admission that wins a
// token never blocks on the send.
type shard struct {
	queue  chan *job
	tokens chan struct{}
}

// Server is the aldaserve core: admission, sharded execution,
// journaling, drain. Construct with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	journal *Journal
	spans   *obs.SpanStore
	flight  *obs.FlightRecorder

	snapOnce sync.Once // one auto flight snapshot per process life

	mu      sync.Mutex // jobs, seq, tenants
	jobs    map[string]*job
	seq     uint64
	tenants map[string]int

	sendMu   sync.RWMutex // guards draining + queue sends
	draining bool
	drainCh  chan struct{}
	drainOne sync.Once

	shards []*shard
	wg     sync.WaitGroup

	adaptMu     sync.Mutex // adaptive-PGO loop state (adapt.go)
	adaptStates map[string]*keyAdaptState

	cacheMu                             sync.Mutex // counter delta export for /metrics
	lastHits, lastMisses, lastEvictions uint64
	lastJournalAppends, lastJournalErrs uint64
}

// New builds a server, replays its journal (if configured), starts the
// worker pool, and re-enqueues every journaled-but-unfinished job.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Metrics,
		spans:       obs.NewSpanStore(cfg.SpanCap),
		flight:      obs.NewFlightRecorder(cfg.Shards, cfg.FlightRing),
		jobs:        map[string]*job{},
		tenants:     map[string]int{},
		adaptStates: map[string]*keyAdaptState{},
		drainCh:     make(chan struct{}),
	}
	var recovered *Recovered
	if cfg.JournalPath != "" {
		var err error
		s.journal, recovered, err = OpenJournal(cfg.JournalPath, cfg.fingerprint(), cfg.JournalSyncEvery, cfg.JournalFaults)
		if err != nil {
			return nil, err
		}
	}
	cap := cfg.QueueDepth + cfg.WorkersPerShard
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{queue: make(chan *job, cap), tokens: make(chan struct{}, cap)}
		s.shards = append(s.shards, sh)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			s.wg.Add(1)
			go s.worker(i, sh)
		}
	}
	if recovered != nil {
		s.replay(recovered)
	}
	return s, nil
}

// replay restores journaled terminal jobs and re-enqueues unfinished
// accepts. Unfinished jobs were admitted before the crash, so they
// bypass admission control (blocking token acquisition in a background
// goroutine) — a restart must never 429 work it already promised.
func (s *Server) replay(rec *Recovered) {
	// Adaptation epochs first: a re-enqueued job whose key swapped
	// before the crash must run the adapted analysis, exactly as it
	// would have.
	if s.cfg.AdaptAfter > 0 {
		s.replayAdapt(rec.Adapt)
	}
	s.mu.Lock()
	s.seq = rec.MaxSeq
	for id, st := range rec.Done {
		j := &job{id: id, trace: st.TraceID, stat: *st, done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
	}
	var pending []*job
	for _, a := range rec.Unfinished {
		// The trace ID rides the accept record; journals predating the
		// tid field re-mint it from the sequence number, which by
		// construction yields the same ID the original admission minted.
		tid := a.Tid
		if tid == "" {
			tid = obs.MintTraceID(a.Seq)
		}
		j := &job{
			id: a.ID, seq: a.Seq, trace: tid, req: *a.Req,
			stat: JobStatus{ID: a.ID, TraceID: tid, Tenant: a.Req.Tenant, State: StateQueued},
			done: make(chan struct{}),
		}
		s.jobs[a.ID] = j
		s.tenants[a.Req.Tenant]++
		pending = append(pending, j)
	}
	s.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	s.reg.Add("serve.jobs.recovered", uint64(len(pending)))
	go func() {
		for _, j := range pending {
			// A recovered job keeps its identity: its chain restarts with
			// a "recovered" span instead of "accepted", which is how a
			// post-mortem tells a re-run from a first run.
			s.spans.Append(j.trace, "recovered", 0, 0)
			s.flight.Record(s.flight.ControlShard(),
				obs.FlightEvent{Trace: j.trace, Stage: "recovered", Detail: j.id})
			sh := s.shards[s.shardOf(&j.req)]
			select {
			case sh.tokens <- struct{}{}:
			case <-s.drainCh:
				return // still journaled as unfinished; the next restart gets it
			}
			s.sendMu.RLock()
			if s.draining {
				s.sendMu.RUnlock()
				return
			}
			s.spans.Append(j.trace, "queued", 0, 0)
			sh.queue <- j
			s.sendMu.RUnlock()
		}
	}()
}

// shardOf places a job by compile fingerprint so cache-affine jobs
// colocate.
func (s *Server) shardOf(req *JobRequest) int {
	h := fnv.New32a()
	h.Write([]byte(req.fingerprintKey()))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// worker drains one shard's queue until Shutdown closes it.
func (s *Server) worker(shIdx int, sh *shard) {
	defer s.wg.Done()
	for j := range sh.queue {
		s.runJob(shIdx, j)
		<-sh.tokens
	}
}

// runJob executes one job, journals the terminal status, records its
// lifecycle spans and latency histograms, and folds the run's counters
// into the registry.
func (s *Server) runJob(shIdx int, j *job) {
	j.setState(StateRunning)
	var shard *obs.Shard
	if s.reg != nil {
		shard = obs.NewShard()
	}
	start := time.Now()
	// onStage records one pipeline stage three ways: the span store
	// (structure deterministic, wall volatile), the shard's flight ring,
	// and the per-stage wall-latency histogram. Stage *sequence* is a
	// pure function of the request; only the wall numbers vary.
	prev := start
	onStage := func(stage string, virtual uint64) {
		now := time.Now()
		stageUS := now.Sub(prev).Microseconds()
		prev = now
		s.spans.Append(j.trace, stage, virtual, stageUS)
		s.flight.Record(shIdx, obs.FlightEvent{
			Trace: j.trace, Stage: stage, Virtual: virtual, WallUS: stageUS,
		})
		s.reg.ObserveVolatile("serve.latency.wall_us.stage."+stage, uint64(stageUS))
	}
	var res *JobResult
	var jerr *JobError
	if s.cfg.AdaptAfter > 0 {
		res, jerr = s.runAdaptive(j, shard, onStage)
	} else {
		res, jerr = ExecuteObserved(&j.req, s.cfg.Limits, shard, nil, onStage)
	}
	wall := time.Since(start)

	status := j.finish(res, jerr)
	if s.journal != nil {
		if err := s.journal.AppendDone(&status); err != nil {
			s.reg.AddVolatile("serve.journal.errors", 1)
			s.autoFlightSnapshot("journal-degraded")
		} else {
			onStage("journaled", 0)
		}
	}
	s.mu.Lock()
	s.tenants[j.req.Tenant]--
	if s.tenants[j.req.Tenant] <= 0 {
		delete(s.tenants, j.req.Tenant)
	}
	s.mu.Unlock()

	if jerr != nil {
		onStage("error", 0)
		s.reg.Add("serve.jobs.failed."+jerr.Kind, 1)
	} else {
		onStage("done", res.Virtual)
		s.reg.Add("serve.jobs.completed", 1)
		// Virtual job latency is deterministic — it belongs in the
		// deterministic histogram family, alongside the counters.
		s.reg.Observe("serve.latency.virtual.job", res.Virtual)
		s.reg.MergeShard(shard)
	}
	s.reg.Add("serve.jobs.by_analysis."+j.req.Analysis, 1)
	s.reg.AddVolatile("serve.job_wall_ns", uint64(wall))
	wallUS := uint64(wall.Microseconds())
	s.reg.ObserveVolatile("serve.latency.wall_us.job", wallUS)
	tenant := j.req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	s.reg.ObserveVolatile("serve.latency.wall_us.tenant."+tenant, wallUS)
	if s.cfg.SLOWall > 0 && wall > s.cfg.SLOWall {
		s.reg.AddVolatile("serve.slo.jobs_over_deadline_total", 1)
	}
}

// autoFlightSnapshot dumps the flight recorder to the configured path,
// once per process life — fired on the first journal degradation
// (chaos-injected faults included) so the post-mortem captures the ring
// state nearest the failure.
func (s *Server) autoFlightSnapshot(reason string) {
	s.flight.Record(s.flight.ControlShard(), obs.FlightEvent{Stage: reason})
	if s.cfg.FlightSnapshotPath == "" {
		return
	}
	s.snapOnce.Do(func() {
		if err := s.flight.SnapshotToFile(s.cfg.FlightSnapshotPath, reason); err != nil {
			s.reg.AddVolatile("serve.flight.snapshot_errors", 1)
		} else {
			s.reg.AddVolatile("serve.flight.snapshots", 1)
		}
	})
}

// accept admits one validated request: tenant cap, shard token,
// journal, enqueue. Returns the queued job or a typed rejection.
func (s *Server) accept(req *JobRequest) (*job, int, *JobError) {
	shIdx := s.shardOf(req)
	sh := s.shards[shIdx]

	// Per-tenant in-flight cap first: a busy tenant must not consume
	// queue tokens other tenants could use.
	if s.cfg.TenantInflight > 0 {
		s.mu.Lock()
		busy := s.tenants[req.Tenant] >= s.cfg.TenantInflight
		s.mu.Unlock()
		if busy {
			s.reg.AddVolatile("serve.rejected.tenant_cap", 1)
			return nil, http.StatusTooManyRequests,
				&JobError{Kind: "TenantBusy", Message: fmt.Sprintf("tenant %q at in-flight cap %d", req.Tenant, s.cfg.TenantInflight), Retryable: true}
		}
	}
	// Bounded queue: win a shard token or be backpressured.
	select {
	case sh.tokens <- struct{}{}:
	default:
		s.reg.AddVolatile("serve.rejected.queue_full", 1)
		return nil, http.StatusTooManyRequests,
			&JobError{Kind: "QueueFull", Message: fmt.Sprintf("shard %d queue full", shIdx), Retryable: true}
	}

	s.mu.Lock()
	s.seq++
	j := &job{
		id: fmt.Sprintf("j%d", s.seq), seq: s.seq,
		trace: obs.MintTraceID(s.seq), req: *req,
		done: make(chan struct{}),
	}
	j.stat = JobStatus{ID: j.id, TraceID: j.trace, Tenant: req.Tenant, State: StateQueued}
	s.jobs[j.id] = j
	s.tenants[req.Tenant]++
	s.mu.Unlock()
	s.spans.Append(j.trace, "accepted", 0, 0)

	// Write-ahead: the accept record reaches the journal (fsynced)
	// before the client sees 202. A journal failure degrades
	// durability, not availability.
	if s.journal != nil {
		if err := s.journal.AppendAccept(j.seq, j.id, j.trace, &j.req); err != nil {
			s.reg.AddVolatile("serve.journal.errors", 1)
			s.autoFlightSnapshot("journal-degraded")
		}
	}

	s.sendMu.RLock()
	if s.draining {
		// Lost the race with Shutdown: undo the admission.
		s.sendMu.RUnlock()
		<-sh.tokens
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.tenants[req.Tenant]--
		if s.tenants[req.Tenant] <= 0 {
			delete(s.tenants, req.Tenant)
		}
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable,
			&JobError{Kind: "Draining", Message: "server is draining", Retryable: true}
	}
	// The "queued" span lands before the enqueue: once the job is in the
	// channel a worker may already be running it, and stage order within
	// a trace must stay deterministic.
	s.spans.Append(j.trace, "queued", 0, 0)
	sh.queue <- j // token held ⇒ never blocks
	s.sendMu.RUnlock()

	s.reg.Add("serve.jobs.accepted", 1)
	return j, http.StatusAccepted, nil
}

// lookup returns a job by ID.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	return s.draining
}

// Shutdown gracefully drains the server: stop accepting, finish every
// queued and running job, flush and close the journal. If ctx expires
// first, the remaining jobs stay journaled as unfinished — a restart
// with the same journal picks them up (that is the "checkpoint
// in-flight" half of the drain contract) — and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.sendMu.Lock()
		s.draining = true
		close(s.drainCh)
		for _, sh := range s.shards {
			close(sh.queue)
		}
		s.sendMu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.journal != nil {
			if err := s.journal.Close(); err != nil {
				return fmt.Errorf("closing journal: %w", err)
			}
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted: %w", ctx.Err())
	}
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// errorBody is the non-job error envelope (bad request, not found,
// draining, backpressure).
type errorBody struct {
	Error *JobError `json:"error"`
}

// Handler mounts the service API:
//
//	POST /v1/jobs        submit (202, or 400/429/503 typed errors);
//	                     ?wait=1 blocks until terminal and returns 200
//	GET  /v1/jobs/{id}   status/result; ?wait=1 blocks until terminal
//	GET  /healthz        process liveness
//	GET  /readyz         accepting? 200 ("ok" or "degraded: journal") / 503 draining
//	GET  /metrics        obs registry: JSON by default, Prometheus text
//	                     exposition with Accept: text/plain or ?format=prom
//	GET  /debug/flight   flight-recorder ring dump (JSON)
//	GET  /debug/spans    lifecycle span store dump (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.timed("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed("get", s.handleGet))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/spans", s.handleSpans)
	return mux
}

// timed wraps a handler with the per-endpoint wall-latency histogram.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.reg.ObserveVolatile("serve.latency.wall_us.endpoint."+endpoint,
			uint64(time.Since(start).Microseconds()))
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{&JobError{Kind: "Draining", Message: "server is draining", Retryable: true}})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		s.reg.AddVolatile("serve.rejected.invalid", 1)
		writeJSON(w, http.StatusBadRequest,
			errorBody{&JobError{Kind: "BadRequest", Message: err.Error()}})
		return
	}
	if err := req.Validate(); err != nil {
		s.reg.AddVolatile("serve.rejected.invalid", 1)
		writeJSON(w, http.StatusBadRequest,
			errorBody{&JobError{Kind: "BadRequest", Message: err.Error()}})
		return
	}
	j, code, jerr := s.accept(&req)
	if jerr != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorBody{jerr})
		return
	}
	w.Header().Set("X-Alda-Trace-Id", j.trace)
	if r.URL.Query().Get("wait") != "" {
		s.waitAndReply(w, r, j)
		return
	}
	writeJSON(w, code, j.snapshot())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{&JobError{Kind: "NotFound", Message: "no such job"}})
		return
	}
	w.Header().Set("X-Alda-Trace-Id", j.trace)
	if r.URL.Query().Get("wait") != "" {
		s.waitAndReply(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// waitAndReply blocks until the job is terminal (or the client goes
// away) and replies with the final status.
func (s *Server) waitAndReply(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.snapshot())
	case <-r.Context().Done():
		writeJSON(w, http.StatusOK, j.snapshot()) // best effort: current state
	}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	if s.journal != nil && s.journal.Degraded() {
		w.Write([]byte("degraded: journal\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// scrapeCaches folds the process-wide compile-cache and journal deltas
// in as volatile counters (they are shared across servers in one
// process, hence not deterministic per server). The delta-state update
// and the registry writes commit under one cacheMu critical section, so
// two concurrent scrapes — or a scrape racing a compile — can never
// observe a delta applied against the wrong epoch's baseline.
func (s *Server) scrapeCaches() {
	hits, misses, evicts := compiler.CompileCacheStats()
	s.cacheMu.Lock()
	dh, dm, de := hits-s.lastHits, misses-s.lastMisses, evicts-s.lastEvictions
	s.lastHits, s.lastMisses, s.lastEvictions = hits, misses, evicts
	s.reg.AddVolatile("compiler.cache.hits", dh)
	s.reg.AddVolatile("compiler.cache.misses", dm)
	s.reg.AddVolatile("compiler.cache.evictions", de)
	if s.journal != nil {
		appends, errs := s.journal.Stats()
		da, de2 := appends-s.lastJournalAppends, errs-s.lastJournalErrs
		s.lastJournalAppends, s.lastJournalErrs = appends, errs
		s.reg.AddVolatile("serve.journal.appends", da)
		s.reg.AddVolatile("serve.journal.append_errors", de2)
	}
	s.cacheMu.Unlock()
}

// scrapeGauges refreshes the point-in-time levels: per-shard queue
// depth and in-flight occupancy, per-tenant in-flight counts, and the
// live span count. Tenant gauges are cleared first so departed tenants
// don't linger as stale series.
func (s *Server) scrapeGauges() {
	for i, sh := range s.shards {
		s.reg.SetGauge(fmt.Sprintf("serve.queue.depth.%d", i), int64(len(sh.queue)))
		s.reg.SetGauge(fmt.Sprintf("serve.inflight.%d", i), int64(len(sh.tokens)))
	}
	s.reg.ClearGauges("serve.tenant.inflight.")
	s.mu.Lock()
	for t, n := range s.tenants {
		name := t
		if name == "" {
			name = "anonymous"
		}
		s.reg.SetGauge("serve.tenant.inflight."+name, int64(n))
	}
	s.mu.Unlock()
	s.reg.SetGauge("serve.spans.live", int64(s.spans.Len()))
}

// promRules maps the registry's dotted families onto labeled Prometheus
// metrics: error kinds, analysis names, shards, tenants and pipeline
// stages become labels without the hot path ever recording a label pair.
func promRules() []obs.PromRule {
	return []obs.PromRule{
		{Prefix: "serve.jobs.failed.", Metric: "alda_serve_jobs_failed_total", Label: "kind"},
		{Prefix: "serve.jobs.by_analysis.", Metric: "alda_serve_jobs_by_analysis_total", Label: "analysis"},
		{Prefix: "serve.rejected.", Metric: "alda_serve_rejected_total", Label: "reason"},
		{Prefix: "serve.queue.depth.", Metric: "alda_serve_queue_depth", Label: "shard"},
		{Prefix: "serve.inflight.", Metric: "alda_serve_inflight", Label: "shard"},
		{Prefix: "serve.tenant.inflight.", Metric: "alda_serve_tenant_inflight", Label: "tenant"},
		{Prefix: "serve.latency.wall_us.stage.", Metric: "alda_serve_stage_wall_us", Label: "stage"},
		{Prefix: "serve.latency.wall_us.endpoint.", Metric: "alda_serve_endpoint_wall_us", Label: "endpoint"},
		{Prefix: "serve.latency.wall_us.tenant.", Metric: "alda_serve_tenant_wall_us", Label: "tenant"},
		{Prefix: "serve.profile.window.", Metric: "alda_serve_profile_window", Label: "member"},
		{Prefix: "serve.adapt.drift_permille.", Metric: "alda_serve_profile_drift_permille", Label: "key"},
		{Prefix: "profile.member.", Metric: "alda_profile_member_total", Label: "member"},
	}
}

// handleMetrics serves the registry in two formats: the PR-5 JSON dump
// (the default, wire-compatible with every existing scraper and smoke
// script) or the Prometheus text exposition when the client asks for
// text/plain (or forces ?format=prom|json).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapeCaches()
	s.scrapeGauges()
	s.scrapeAdapt()
	format := r.URL.Query().Get("format")
	wantProm := format == "prom" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain"))
	if wantProm {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteProm(w, true, promRules()...)
		return
	}
	s.reg.WriteJSON(w, true)
}

// handleFlight dumps the flight-recorder rings.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteSnapshot(w, "debug")
}

// handleSpans dumps the lifecycle span store (volatile wall times
// included; pass ?volatile=0 for the deterministic structure only).
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.spans.WriteJSON(w, r.URL.Query().Get("volatile") != "0")
}

// Spans exposes the span store's snapshot (for tests and tooling).
func (s *Server) Spans(includeVolatile bool) []obs.TraceExport {
	return s.spans.Snapshot(includeVolatile)
}

// FlightSnapshot exposes the flight recorder's current rings.
func (s *Server) FlightSnapshot(reason string) obs.FlightSnapshot {
	return s.flight.Snapshot(reason)
}

// SnapshotFlightTo dumps the flight recorder to a file — the SIGQUIT
// hook in cmd/aldaserve.
func (s *Server) SnapshotFlightTo(path, reason string) error {
	return s.flight.SnapshotToFile(path, reason)
}
