package serve

import (
	"repro/internal/compiler"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Adaptive PGO in the serving tier: with Config.AdaptAfter = N, each
// compile-affinity key (analysis × options — the same key jobs shard
// by) spends its first N completed jobs as a profiling quantum. Those
// jobs run the ProfileCollect build of the analysis, their per-member
// access counters are harvested from the job's metrics shard, and once
// N profiles have merged the key hot-swaps: the profile folds through
// compiler.AdaptOptions into a profile-fingerprinted recompile that
// every later job with the key runs.
//
// Verdict safety is structural — adaptation re-selects containers and
// splits cold members but never changes what the analysis computes, so
// a job's JobResult (exit, reports, steps, hooks, virtual time) is
// byte-identical whether it ran before, during or after the swap. The
// recovery tests pin exactly that.
//
// Durability: the swap is journaled as an "adapt" record carrying the
// merged counts and the adaptation epoch. Recovery replays the record
// (last epoch per key wins) through the same pure AdaptOptions pass,
// so a restarted server runs the identical adapted analysis without
// re-profiling. A crash during the profiling quantum simply restarts
// the quantum — profiles steer performance, never verdicts, so nothing
// observable is lost.

// keyAdaptState is one compile-affinity key's position in the adaptive
// loop. Guarded by Server.adaptMu.
type keyAdaptState struct {
	profiled int               // completed profiling jobs so far
	counts   map[string]uint64 // merged per-member access counts
	epoch    int               // 0 = still profiling; >0 = swapped
	adapted  *compiler.Options // options every post-swap job compiles under
}

// adaptStateFor returns (creating if needed) the key's adapt state.
func (s *Server) adaptStateFor(key string) *keyAdaptState {
	s.adaptMu.Lock()
	defer s.adaptMu.Unlock()
	st := s.adaptStates[key]
	if st == nil {
		st = &keyAdaptState{counts: map[string]uint64{}}
		s.adaptStates[key] = st
	}
	return st
}

// runAdaptive executes one job under the adaptive loop: adapted options
// after the swap, profile-collecting options during the quantum. Only
// successful jobs advance the quantum — a trapped or budget-killed run
// yields a partial profile of unknowable coverage, and the quantum is
// cheap enough to wait for clean ones.
func (s *Server) runAdaptive(j *job, shard *obs.Shard) (*JobResult, *JobError) {
	key := j.req.fingerprintKey()
	st := s.adaptStateFor(key)

	s.adaptMu.Lock()
	adapted := st.adapted
	s.adaptMu.Unlock()
	if adapted != nil {
		return ExecuteWith(&j.req, s.cfg.Limits, shard, adapted)
	}

	eng, _ := vm.ParseEngine(j.req.Options.Engine)
	popts := compileOptions(eng)
	popts.ProfileCollect = true
	if shard == nil {
		shard = obs.NewShard() // the profile rides the metrics shard
	}
	res, jerr := ExecuteWith(&j.req, s.cfg.Limits, shard, &popts)
	if jerr != nil {
		return res, jerr
	}
	prof := compiler.ProfileFromCounts(shard.Counts)

	s.adaptMu.Lock()
	defer s.adaptMu.Unlock()
	if st.adapted != nil {
		// Lost the swap race to a concurrent worker: this run profiled
		// redundantly, which is harmless — its result is identical.
		return res, jerr
	}
	for k, v := range prof.Counts {
		st.counts[k] += v
	}
	st.profiled++
	s.reg.Add("serve.adapt.profiled", 1)
	if st.profiled < s.cfg.AdaptAfter {
		return res, jerr
	}

	base := compileOptions(eng)
	ares := base.AdaptOptions(&compiler.Profile{Counts: st.counts})
	st.epoch++
	st.adapted = &ares.Opts
	if ares.Changed {
		s.reg.Add("serve.adapt.swaps", 1)
	} else {
		s.reg.Add("serve.adapt.static_kept", 1)
	}
	// Journal the swap before any job runs under it: recovery must
	// land on the same analysis, not re-enter the quantum.
	if s.journal != nil {
		if err := s.journal.AppendAdapt(key, st.epoch, j.req.Options.Engine, st.counts); err != nil {
			s.reg.AddVolatile("serve.journal.errors", 1)
		}
	}
	return res, jerr
}

// replayAdapt restores journaled adaptation epochs: the same pure
// profile→options pass the live swap ran, so the recovered server
// compiles the identical adapted analysis. Runs before any recovered
// job is re-enqueued.
func (s *Server) replayAdapt(records map[string]journalRecord) {
	if len(records) == 0 {
		return
	}
	s.adaptMu.Lock()
	for key, rec := range records {
		eng, err := vm.ParseEngine(rec.Eng)
		if err != nil {
			continue // foreign record; jobs with this key re-profile
		}
		base := compileOptions(eng)
		ares := base.AdaptOptions(&compiler.Profile{Counts: rec.Counts})
		s.adaptStates[key] = &keyAdaptState{
			profiled: s.cfg.AdaptAfter,
			counts:   rec.Counts,
			epoch:    rec.Epoch,
			adapted:  &ares.Opts,
		}
	}
	n := uint64(len(s.adaptStates))
	s.adaptMu.Unlock()
	s.reg.Add("serve.adapt.recovered", n)
}
