package serve

import (
	"fmt"
	"hash/fnv"

	"repro/internal/compiler"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Adaptive PGO in the serving tier: with Config.AdaptAfter = N, each
// compile-affinity key (analysis × options — the same key jobs shard
// by) spends its first N completed jobs as a profiling quantum. Those
// jobs run the ProfileCollect build of the analysis, their per-member
// access counters are harvested from the job's metrics shard, and once
// N profiles have merged the key hot-swaps: the profile folds through
// compiler.AdaptOptions into a profile-fingerprinted recompile that
// every later job with the key runs.
//
// Verdict safety is structural — adaptation re-selects containers and
// splits cold members but never changes what the analysis computes, so
// a job's JobResult (exit, reports, steps, hooks, virtual time) is
// byte-identical whether it ran before, during or after the swap. The
// recovery tests pin exactly that.
//
// Durability: the swap is journaled as an "adapt" record carrying the
// merged counts and the adaptation epoch. Recovery replays the record
// (last epoch per key wins) through the same pure AdaptOptions pass,
// so a restarted server runs the identical adapted analysis without
// re-profiling. A crash during the profiling quantum simply restarts
// the quantum — profiles steer performance, never verdicts, so nothing
// observable is lost.

// keyAdaptState is one compile-affinity key's position in the adaptive
// loop. Guarded by Server.adaptMu.
type keyAdaptState struct {
	profiled int               // completed profiling jobs so far
	counts   map[string]uint64 // merged per-member access counts
	epoch    int               // 0 = still profiling; >0 = swapped
	adapted  *compiler.Options // options every post-swap job compiles under

	// Rolling profile window: the last ProfileWindow per-job profiles
	// (quantum jobs plus every sampled post-swap job), summed for the
	// /metrics rolling-profile export and compared against the profile
	// that drove the swap for the drift gauge.
	window    []map[string]uint64
	windowSum map[string]uint64
	sampled   int // post-swap completions, for the sampling cadence
}

// keyLabel is the short stable label a compile-affinity key exports
// under (the raw key embeds the full options fingerprint — too long for
// a metric label, stable enough to hash).
func keyLabel(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("k%08x", h.Sum32())
}

// pushWindow folds one job's profile into the key's rolling window,
// evicting the oldest entry beyond the bound. Caller holds adaptMu.
func (st *keyAdaptState) pushWindow(prof map[string]uint64, bound int) {
	if len(prof) == 0 {
		return
	}
	if st.windowSum == nil {
		st.windowSum = map[string]uint64{}
	}
	if len(st.window) >= bound {
		old := st.window[0]
		st.window = st.window[1:]
		for k, v := range old {
			st.windowSum[k] -= v
			if st.windowSum[k] == 0 {
				delete(st.windowSum, k)
			}
		}
	}
	st.window = append(st.window, prof)
	for k, v := range prof {
		st.windowSum[k] += v
	}
}

// driftPermille is the total-variation distance between the profile
// that drove the swap and the rolling window, in permille: 0 means the
// traffic still looks exactly like the profile the adapted build was
// selected for, 1000 means completely disjoint hot sets.
func driftPermille(base, window map[string]uint64) int64 {
	var baseTot, winTot uint64
	for _, v := range base {
		baseTot += v
	}
	for _, v := range window {
		winTot += v
	}
	if baseTot == 0 || winTot == 0 {
		return 0
	}
	var tv float64
	keys := map[string]struct{}{}
	for k := range base {
		keys[k] = struct{}{}
	}
	for k := range window {
		keys[k] = struct{}{}
	}
	for k := range keys {
		pb := float64(base[k]) / float64(baseTot)
		pw := float64(window[k]) / float64(winTot)
		if pb > pw {
			tv += pb - pw
		} else {
			tv += pw - pb
		}
	}
	return int64(tv / 2 * 1000)
}

// adaptStateFor returns (creating if needed) the key's adapt state.
func (s *Server) adaptStateFor(key string) *keyAdaptState {
	s.adaptMu.Lock()
	defer s.adaptMu.Unlock()
	st := s.adaptStates[key]
	if st == nil {
		st = &keyAdaptState{counts: map[string]uint64{}}
		s.adaptStates[key] = st
	}
	return st
}

// runAdaptive executes one job under the adaptive loop: adapted options
// after the swap, profile-collecting options during the quantum. Only
// successful jobs advance the quantum — a trapped or budget-killed run
// yields a partial profile of unknowable coverage, and the quantum is
// cheap enough to wait for clean ones.
//
// After the swap the profile stream stays alive: every Nth post-swap
// job (Config.ProfileSampleEvery) re-runs the ProfileCollect build —
// safe because the adaptive conformance axis proves profiling builds
// verdict- and result-identical — and its profile refreshes the rolling
// window and the drift gauge, so a shifted workload is visible on
// /metrics before anyone re-tunes.
func (s *Server) runAdaptive(j *job, shard *obs.Shard, onStage StageObserver) (*JobResult, *JobError) {
	key := j.req.fingerprintKey()
	st := s.adaptStateFor(key)

	s.adaptMu.Lock()
	adapted := st.adapted
	var sampleThis bool
	if adapted != nil {
		st.sampled++
		sampleThis = s.cfg.ProfileSampleEvery > 0 && st.sampled%s.cfg.ProfileSampleEvery == 0
	}
	s.adaptMu.Unlock()

	eng, _ := vm.ParseEngine(j.req.Options.Engine)
	if adapted != nil && !sampleThis {
		return ExecuteObserved(&j.req, s.cfg.Limits, shard, adapted, onStage)
	}

	// Profiling run: either the quantum, or a post-swap sample.
	popts := compileOptions(eng)
	popts.ProfileCollect = true
	if shard == nil {
		shard = obs.NewShard() // the profile rides the metrics shard
	}
	res, jerr := ExecuteObserved(&j.req, s.cfg.Limits, shard, &popts, onStage)
	if jerr != nil {
		return res, jerr
	}
	prof := compiler.ProfileFromCounts(shard.Counts)

	s.adaptMu.Lock()
	defer s.adaptMu.Unlock()
	if adapted != nil || st.adapted != nil {
		// Post-swap sample, or a quantum run that lost the swap race to
		// a concurrent worker (harmless either way — the result is
		// identical). Feed the rolling window and refresh drift.
		st.pushWindow(prof.Counts, s.cfg.ProfileWindow)
		if adapted != nil {
			s.reg.AddVolatile("serve.adapt.sampled", 1)
			drift := driftPermille(st.counts, st.windowSum)
			s.reg.SetGauge("serve.adapt.drift_permille."+keyLabel(key), drift)
		}
		return res, jerr
	}
	for k, v := range prof.Counts {
		st.counts[k] += v
	}
	st.pushWindow(prof.Counts, s.cfg.ProfileWindow)
	st.profiled++
	s.reg.Add("serve.adapt.profiled", 1)
	if st.profiled < s.cfg.AdaptAfter {
		return res, jerr
	}

	base := compileOptions(eng)
	ares := base.AdaptOptions(&compiler.Profile{Counts: st.counts})
	st.epoch++
	st.adapted = &ares.Opts
	if ares.Changed {
		s.reg.Add("serve.adapt.swaps", 1)
	} else {
		s.reg.Add("serve.adapt.static_kept", 1)
	}
	// The swap epoch is itself a trace: its span chain and flight event
	// make adaptation decisions first-class citizens of a post-mortem.
	atid := fmt.Sprintf("adapt-%s-e%d", keyLabel(key), st.epoch)
	s.spans.Append(atid, "swap-decided", uint64(st.profiled), 0)
	s.flight.Record(s.flight.ControlShard(),
		obs.FlightEvent{Trace: atid, Stage: "adapt-swap", Detail: key})
	// Journal the swap before any job runs under it: recovery must
	// land on the same analysis, not re-enter the quantum.
	if s.journal != nil {
		if err := s.journal.AppendAdapt(key, st.epoch, j.req.Options.Engine, st.counts); err != nil {
			s.reg.AddVolatile("serve.journal.errors", 1)
			s.autoFlightSnapshot("journal-degraded")
		} else {
			s.spans.Append(atid, "journaled", 0, 0)
		}
	}
	return res, jerr
}

// scrapeAdapt refreshes the rolling-profile and drift exports at scrape
// time: the per-member window sums (aggregated across keys) become
// serve.profile.window.* gauges, cleared first so cooled-off members
// drop out.
func (s *Server) scrapeAdapt() {
	if s.cfg.AdaptAfter <= 0 {
		return
	}
	totals := map[string]uint64{}
	s.adaptMu.Lock()
	for _, st := range s.adaptStates {
		for k, v := range st.windowSum {
			totals[k] += v
		}
	}
	s.adaptMu.Unlock()
	s.reg.ClearGauges("serve.profile.window.")
	for k, v := range totals {
		// k is "profile.member.<name>"; keep only the member name.
		name := k
		if len(name) > len(compiler.ProfileMetricPrefix) && name[:len(compiler.ProfileMetricPrefix)] == compiler.ProfileMetricPrefix {
			name = name[len(compiler.ProfileMetricPrefix):]
		}
		s.reg.SetGauge("serve.profile.window."+name, int64(v))
	}
}

// replayAdapt restores journaled adaptation epochs: the same pure
// profile→options pass the live swap ran, so the recovered server
// compiles the identical adapted analysis. Runs before any recovered
// job is re-enqueued.
func (s *Server) replayAdapt(records map[string]journalRecord) {
	if len(records) == 0 {
		return
	}
	s.adaptMu.Lock()
	for key, rec := range records {
		eng, err := vm.ParseEngine(rec.Eng)
		if err != nil {
			continue // foreign record; jobs with this key re-profile
		}
		base := compileOptions(eng)
		ares := base.AdaptOptions(&compiler.Profile{Counts: rec.Counts})
		s.adaptStates[key] = &keyAdaptState{
			profiled: s.cfg.AdaptAfter,
			counts:   rec.Counts,
			epoch:    rec.Epoch,
			adapted:  &ares.Opts,
		}
	}
	n := uint64(len(s.adaptStates))
	s.adaptMu.Unlock()
	s.reg.Add("serve.adapt.recovered", n)
}
