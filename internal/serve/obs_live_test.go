package serve

// Tests for the live observability layer: trace identity, span
// determinism, Prometheus exposition, the flight recorder, SLO
// accounting, and the rolling post-swap profile stream.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// chainKey renders one trace's deterministic structure: the ordered
// stage names with their virtual costs.
func chainKey(te obs.TraceExport) string {
	var b strings.Builder
	for i, st := range te.Stages {
		if i > 0 {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "%s:%d", st.Stage, st.Virtual)
	}
	return b.String()
}

// spanChains reduces a span snapshot to a sorted multiset of stage
// chains — the schedule-independent shape two runs must share.
func spanChains(spans []obs.TraceExport) []string {
	out := make([]string, 0, len(spans))
	for _, te := range spans {
		out = append(out, chainKey(te))
	}
	sort.Strings(out)
	return out
}

// TestTraceIDEndToEnd: every job response carries a trace ID, in the
// body and the X-Alda-Trace-Id header, stable from submit to terminal
// GET, and distinct across jobs.
func TestTraceIDEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(JobRequest{Workload: "sort", Analysis: "uaf"})
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		hdr := resp.Header.Get("X-Alda-Trace-Id")
		if st.TraceID == "" || hdr != st.TraceID {
			t.Fatalf("trace identity broken: body %q header %q", st.TraceID, hdr)
		}
		if seen[st.TraceID] {
			t.Fatalf("trace ID %q reused", st.TraceID)
		}
		seen[st.TraceID] = true

		// The terminal GET carries the same identity.
		code, b := getBody(t, ts, "/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("get: code %d", code)
		}
		var st2 JobStatus
		json.Unmarshal(b, &st2)
		if st2.TraceID != st.TraceID {
			t.Fatalf("GET trace %q != submit trace %q", st2.TraceID, st.TraceID)
		}
	}
}

// TestSpanStructureSerialVsParallel is the span determinism soak: the
// same job mix run on a serial server (1 shard × 1 worker, sequential
// submits) and a parallel one (4 shards × 2 workers, 8 submitter
// goroutines) must yield the identical multiset of stage chains, with
// unique trace IDs throughout.
func TestSpanStructureSerialVsParallel(t *testing.T) {
	mix := []JobRequest{
		{Workload: "sort", Analysis: "uaf"},
		{Workload: "memcached", Bug: "uaf", Analysis: "uaf"},
		{MIR: trapMIR, Analysis: "uaf"},
		{Workload: "sort", Analysis: "msan", Options: JobOptions{Engine: "threaded"}},
	}
	const perReq = 4 // 16 jobs total

	run := func(cfg Config, submitters int) []string {
		cfg.TenantInflight = -1
		cfg.JournalPath = filepath.Join(t.TempDir(), "j.jsonl")
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		jobs := make(chan JobRequest, len(mix)*perReq)
		for _, r := range mix {
			for i := 0; i < perReq; i++ {
				jobs <- r
			}
		}
		close(jobs)
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range jobs {
					code, b := postJob(t, ts, r, "?wait=1")
					if code != http.StatusOK {
						t.Errorf("submit: code %d body %s", code, b)
					}
				}
			}()
		}
		wg.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		ts.Close()

		spans := s.Spans(false)
		ids := map[string]bool{}
		for _, te := range spans {
			if ids[te.Trace] {
				t.Fatalf("duplicate trace %q in span store", te.Trace)
			}
			ids[te.Trace] = true
			for _, st := range te.Stages {
				if st.WallUS != 0 {
					t.Fatalf("wall time leaked into deterministic snapshot: %+v", te)
				}
			}
		}
		return spanChains(spans)
	}

	serial := run(Config{Shards: 1, WorkersPerShard: 1}, 1)
	parallel := run(Config{Shards: 4, WorkersPerShard: 2}, 8)
	if len(serial) != len(mix)*perReq {
		t.Fatalf("serial run recorded %d traces, want %d", len(serial), len(mix)*perReq)
	}
	a := strings.Join(serial, "\n")
	b := strings.Join(parallel, "\n")
	if a != b {
		t.Fatalf("span structure differs serial vs parallel:\n--- serial\n%s\n--- parallel\n%s", a, b)
	}
	// Every successful chain passed through the full pipeline.
	if !strings.Contains(a, "accepted:0>queued:0>compiled:0>executed:") {
		t.Fatalf("expected full pipeline chains, got:\n%s", a)
	}
}

// TestRecoverySpansAndTraceIdentity extends the crash-recovery story to
// observability: after a forged crash, recovered jobs keep their trace
// IDs, their span chains restart with a "recovered" stage, and the
// recovered structure is deterministic across two independent
// recoveries of the same journal.
func TestRecoverySpansAndTraceIdentity(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := New(Config{JournalPath: refPath})
	if err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(ref.Handler())
	traces := map[string]string{} // id -> trace
	for _, r := range []JobRequest{
		{Workload: "sort", Analysis: "uaf"},
		{MIR: trapMIR, Analysis: "uaf"},
		{Workload: "memcached", Bug: "uaf", Analysis: "uaf"},
	} {
		code, b := postJob(t, tsRef, r, "?wait=1")
		if code != http.StatusOK {
			t.Fatalf("ref submit: code %d body %s", code, b)
		}
		var st JobStatus
		json.Unmarshal(b, &st)
		traces[st.ID] = st.TraceID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ref.Shutdown(ctx)
	tsRef.Close()

	// Forge the crash: drop every done record, so all three re-run.
	refLines, _ := os.ReadFile(refPath)
	var crashed []string
	for _, line := range strings.Split(strings.TrimRight(string(refLines), "\n"), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == "done" {
			continue
		}
		crashed = append(crashed, line)
	}
	forged := strings.Join(crashed, "\n") + "\n"

	recover := func() (map[string]string, []string) {
		crashPath := filepath.Join(t.TempDir(), "crash.jsonl")
		if err := os.WriteFile(crashPath, []byte(forged), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := New(Config{JournalPath: crashPath})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]string{}
		for id := range traces {
			j := s2.lookup(id)
			if j == nil {
				t.Fatalf("job %s lost", id)
			}
			select {
			case <-j.done:
			case <-time.After(60 * time.Second):
				t.Fatalf("job %s never finished", id)
			}
			got[id] = j.snapshot().TraceID
		}
		s2.Shutdown(ctx)
		return got, spanChains(s2.Spans(false))
	}

	got1, chains1 := recover()
	for id, want := range traces {
		if got1[id] != want {
			t.Errorf("job %s: recovered trace %q, want original %q", id, got1[id], want)
		}
	}
	for _, c := range chains1 {
		if !strings.HasPrefix(c, "recovered:0>queued:0>") {
			t.Errorf("recovered chain does not restart with recovered>queued: %s", c)
		}
	}
	_, chains2 := recover()
	if strings.Join(chains1, "\n") != strings.Join(chains2, "\n") {
		t.Fatalf("recovery span structure not deterministic:\n%v\n%v", chains1, chains2)
	}
}

// TestMetricsContentNegotiation: the default scrape stays JSON (wire
// compatibility with every existing script), Accept: text/plain or
// ?format=prom switches to a valid Prometheus exposition carrying the
// labeled families the acceptance criteria name.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := startServer(t, Config{})
	// One success, one StepLimit failure, to populate labeled counters.
	if code, b := postJob(t, ts, JobRequest{Tenant: "alice", Workload: "sort", Analysis: "uaf"}, "?wait=1"); code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, b)
	}
	if code, _ := postJob(t, ts, JobRequest{Tenant: "bob", Workload: "sort", Analysis: "uaf", Options: JobOptions{MaxSteps: 100}}, "?wait=1"); code != http.StatusOK {
		t.Fatalf("steplimit submit: %d", code)
	}

	// Default: JSON, exactly as before.
	code, b := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var exp obs.Export
	if err := json.Unmarshal(b, &exp); err != nil {
		t.Fatalf("default /metrics is not the JSON export: %v", err)
	}
	if exp.Counters["serve.jobs.accepted"] != 2 {
		t.Fatalf("accepted = %d, want 2", exp.Counters["serve.jobs.accepted"])
	}

	// Accept: text/plain → Prometheus, strictly valid.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	promBody := new(bytes.Buffer)
	promBody.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("prom content type %q", ct)
	}
	n, err := obs.ValidatePromText(promBody.Bytes())
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, promBody.String())
	}
	if n == 0 {
		t.Fatal("empty exposition")
	}
	out := promBody.String()
	for _, want := range []string{
		`alda_serve_jobs_failed_total{kind="StepLimit"} 1`,
		`alda_serve_jobs_by_analysis_total{analysis="uaf"} 2`,
		`alda_serve_tenant_wall_us_count{tenant="alice"}`,
		`alda_serve_stage_wall_us_bucket{stage="executed",le="+Inf"}`,
		`alda_serve_endpoint_wall_us_count{endpoint="submit"}`,
		`alda_serve_queue_depth{shard="0"}`,
		"serve_jobs_accepted 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// ?format=prom forces it without the header; ?format=json forces
	// JSON even with the header.
	code, b = getBody(t, ts, "/metrics?format=prom")
	if code != http.StatusOK || !strings.HasPrefix(string(b), "# TYPE") {
		t.Fatalf("format=prom: %d %q", code, string(b[:min(40, len(b))]))
	}
	req2, _ := http.NewRequest("GET", ts.URL+"/metrics?format=json", nil)
	req2.Header.Set("Accept", "text/plain")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&exp); err != nil {
		t.Fatalf("format=json override broken: %v", err)
	}
}

// TestDebugFlightEndpoint: the ring dump is live JSON holding recent
// per-shard stage events with the jobs' trace IDs.
func TestDebugFlightEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Shards: 2})
	code, b := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	var st JobStatus
	json.Unmarshal(b, &st)

	code, b = getBody(t, ts, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("flight: %d", code)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("flight dump is not JSON: %v", err)
	}
	if len(snap.Shards) != 3 { // 2 workers + control
		t.Fatalf("flight rings = %d, want 3", len(snap.Shards))
	}
	found := false
	for _, sh := range snap.Shards {
		for _, ev := range sh.Events {
			if ev.Trace == st.TraceID && ev.Stage == "executed" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("job trace %s has no executed event in flight dump:\n%s", st.TraceID, b)
	}

	// The span dump endpoint serves the same trace.
	code, b = getBody(t, ts, "/debug/spans")
	if code != http.StatusOK || !strings.Contains(string(b), st.TraceID) {
		t.Fatalf("/debug/spans missing trace: %d %s", code, b)
	}
}

// TestFlightAutoSnapshotOnJournalFault: a chaos-injected journal fault
// degrades the journal AND leaves a flight snapshot file behind — the
// post-mortem the soak suites read instead of print-debugging.
func TestFlightAutoSnapshotOnJournalFault(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "flight.json")
	_, ts := startServer(t, Config{
		JournalPath:        filepath.Join(dir, "j.jsonl"),
		JournalFaults:      JournalFaults{FailWriteNth: 2}, // the first done record
		FlightSnapshotPath: snapPath,
	})
	if code, _ := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, "?wait=1"); code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("auto snapshot not written: %v", err)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.Reason != "journal-degraded" {
		t.Fatalf("snapshot reason %q", snap.Reason)
	}
}

// TestMetricsScrapeRace is the satellite -race test for the cache-delta
// fix: concurrent scrapes racing concurrent compiles must neither trip
// the race detector nor lose delta increments across epochs. The final
// quiesced scrape totals must equal the process-global stats delta
// observed across the test.
func TestMetricsScrapeRace(t *testing.T) {
	s, ts := startServer(t, Config{TenantInflight: -1})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, "?wait=1")
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				getBody(t, ts, "/metrics")
			}
		}()
	}
	wg.Wait()
	// Quiesced: one more scrape folds any tail, then the volatile
	// counters must be internally consistent (sum of deltas == the
	// last-snapshot state the server holds).
	getBody(t, ts, "/metrics")
	_, b := getBody(t, ts, "/metrics")
	var exp obs.Export
	if err := json.Unmarshal(b, &exp); err != nil {
		t.Fatal(err)
	}
	s.cacheMu.Lock()
	wantAppends := s.lastJournalAppends
	s.cacheMu.Unlock()
	if exp.Volatile["serve.journal.appends"] != wantAppends {
		t.Fatalf("journal append deltas lost: exported %d, snapshot state %d",
			exp.Volatile["serve.journal.appends"], wantAppends)
	}
}

// TestSLOAndLatencyHistograms: jobs slower than the configured SLO
// count into the over-deadline counter, and the wall/virtual latency
// histograms populate with quantiles available.
func TestSLOAndLatencyHistograms(t *testing.T) {
	s, ts := startServer(t, Config{SLOWall: time.Nanosecond}) // everything misses
	if code, _ := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, "?wait=1"); code != http.StatusOK {
		t.Fatal("submit failed")
	}
	_, b := getBody(t, ts, "/metrics")
	var exp obs.Export
	json.Unmarshal(b, &exp)
	if exp.Volatile["serve.slo.jobs_over_deadline_total"] == 0 {
		t.Fatal("SLO miss not counted")
	}
	if exp.VolatileHistograms["serve.latency.wall_us.job"].Count == 0 {
		t.Fatal("job wall histogram empty")
	}
	if exp.Histograms["serve.latency.virtual.job"].Count == 0 {
		t.Fatal("virtual latency histogram empty")
	}
	if _, ok := s.reg.Quantile("serve.latency.wall_us.job", 0.95); !ok {
		t.Fatal("p95 unavailable")
	}
}

// TestAdaptiveRollingProfile: with post-swap sampling on, results stay
// byte-identical across the quantum, the swap, and sampled jobs, while
// the rolling window and drift gauge surface on /metrics and the swap
// epoch appears as a span.
func TestAdaptiveRollingProfile(t *testing.T) {
	s, ts := startServer(t, Config{
		Shards: 1, WorkersPerShard: 1,
		AdaptAfter: 2, ProfileSampleEvery: 2, ProfileWindow: 4,
	})
	req := JobRequest{Workload: "memcached", Bug: "uaf", Analysis: "uaf"}
	var first []byte
	for i := 0; i < 8; i++ {
		code, b := postJob(t, ts, req, "?wait=1")
		if code != http.StatusOK {
			t.Fatalf("job %d: code %d", i, code)
		}
		var st JobStatus
		json.Unmarshal(b, &st)
		res, _ := json.Marshal(st.Result)
		if i == 0 {
			first = res
		} else if !bytes.Equal(first, res) {
			t.Fatalf("job %d result diverged across swap/sampling:\n%s\n%s", i, first, res)
		}
	}
	if got := s.reg.Counter("serve.adapt.profiled"); got != 2 {
		t.Fatalf("profiled = %d, want 2", got)
	}

	_, b := getBody(t, ts, "/metrics")
	var exp obs.Export
	json.Unmarshal(b, &exp)
	if exp.Volatile["serve.adapt.sampled"] == 0 {
		t.Fatal("post-swap sampling never fired")
	}
	foundWindow, foundDrift := false, false
	for k := range exp.Gauges {
		if strings.HasPrefix(k, "serve.profile.window.") {
			foundWindow = true
		}
		if strings.HasPrefix(k, "serve.adapt.drift_permille.") {
			foundDrift = true
		}
	}
	if !foundWindow || !foundDrift {
		t.Fatalf("rolling profile/drift gauges missing (window=%v drift=%v): %v", foundWindow, foundDrift, exp.Gauges)
	}

	// The swap epoch is a span.
	swapSeen := false
	for _, te := range s.Spans(false) {
		if strings.HasPrefix(te.Trace, "adapt-") {
			swapSeen = true
			if te.Stages[0].Stage != "swap-decided" {
				t.Fatalf("adapt span shape wrong: %+v", te)
			}
		}
	}
	if !swapSeen {
		t.Fatal("swap epoch produced no span")
	}

	// And the rolling profile shows up in the Prometheus exposition.
	reqP, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	reqP.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(reqP)
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if _, err := obs.ValidatePromText(buf.Bytes()); err != nil {
		t.Fatalf("adaptive exposition invalid: %v", err)
	}
	if !strings.Contains(buf.String(), "alda_serve_profile_window{member=") {
		t.Fatal("rolling profile absent from exposition")
	}
}
