// Package serve turns the one-shot evaluation machinery into
// long-running analysis-as-a-service infrastructure: an HTTP/JSON job
// API scheduled onto a sharded worker pool, with the robustness layers
// the ROADMAP's server item names as load-bearing — per-job tenant
// isolation via the VM's recover()+budget sandbox, admission control
// with bounded queues and per-tenant in-flight caps, a fingerprinted
// JSONL write-ahead journal for crash recovery, and graceful drain.
//
// Every job is deterministic in its request (the VM is deterministic,
// results use virtual time), so the same journal replayed after a
// crash re-runs exactly the unfinished jobs and the completed job set
// is byte-identical to an uninterrupted run.
package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analyses"
	"repro/internal/mir"
	"repro/internal/vm"
	"repro/internal/vm/faults"
	"repro/internal/workloads"
)

// JobOptions are the per-job execution knobs a tenant may set. Resource
// budgets are clamped to the server's Limits; fault fields exist for
// the chaos/soak layer and for tenants reproducing failures.
type JobOptions struct {
	// Engine is the VM execution tier: "", "interp" or "threaded".
	Engine string `json:"engine,omitempty"`
	// Seed is the deterministic scheduler seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// MaxSteps caps retired instructions (0 = server default).
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// MaxHeapBytes caps the simulated heap (0 = server default).
	MaxHeapBytes uint64 `json:"max_heap_bytes,omitempty"`
	// DeadlineMS caps wall-clock per run (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// FaultSeed derives a deterministic fault plan (internal/vm/faults)
	// applied to the run; 0 = none. The explicit fault fields below
	// override the seed when non-zero.
	FaultSeed         int64  `json:"fault_seed,omitempty"`
	FaultMallocNth    uint64 `json:"fault_malloc_nth,omitempty"`
	FaultPanicNth     uint64 `json:"fault_panic_nth,omitempty"`
	FaultSchedPerturb uint64 `json:"fault_sched_perturb,omitempty"`
}

// JobRequest is the POST /v1/jobs body: one program (a named workload
// or inline MIR text) crossed with one analysis (a shipped name, or
// several joined with "+" for the fused combination).
type JobRequest struct {
	// Tenant attributes the job for per-tenant admission caps; empty
	// means the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Workload names a registered workload generator; mutually
	// exclusive with MIR.
	Workload string `json:"workload,omitempty"`
	// Bug optionally injects a named defect into the workload
	// ("uaf", "race", ... — workloads.Bug spellings).
	Bug string `json:"bug,omitempty"`
	// Size scales a named workload: "tiny" (default), "small",
	// "medium", "large".
	Size string `json:"size,omitempty"`
	// MIR is an inline program in the mir.ParseText format; mutually
	// exclusive with Workload.
	MIR string `json:"mir,omitempty"`
	// Analysis names the ALDA analysis to run, e.g. "uaf" or
	// "uaf+msan" for a fused combination.
	Analysis string `json:"analysis"`
	// Options are the per-job execution knobs.
	Options JobOptions `json:"options,omitzero"`
}

// JobError is the typed degraded response: the vm.RunError taxonomy
// (Trap/StepLimit/HeapLimit/Deadline/LibFault) plus the service-level
// kinds ("panic" for a recovered non-VM panic, "fail" for untyped
// build errors). A tenant's job can crash, bust its budgets or hit an
// injected fault and the response is always this shape — never a bare
// 500.
type JobError struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// JobResult is a successful run's deterministic summary. Wall-clock is
// deliberately absent: results must be byte-identical across reruns and
// crash recovery, so timing is virtual (steps + 16·hook dispatches,
// the harness's -virtual formula) and volatile timings live in
// /metrics instead.
type JobResult struct {
	Exit      uint64   `json:"exit"`
	Steps     uint64   `json:"steps"`
	HookCalls uint64   `json:"hook_calls"`
	Virtual   uint64   `json:"virtual"`
	Reports   []string `json:"reports,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the GET /v1/jobs/{id} body. For terminal jobs it is a
// pure function of (ID, request): the byte-identity unit the
// crash-recovery conformance tests compare.
type JobStatus struct {
	ID string `json:"id"`
	// TraceID is the job's observability identity, minted at admission
	// (obs.MintTraceID of the admission sequence number — deterministic,
	// so crash recovery reclaims the same ID) and echoed in the
	// X-Alda-Trace-Id response header. It indexes the span store and the
	// flight recorder.
	TraceID string     `json:"trace_id,omitempty"`
	Tenant  string     `json:"tenant,omitempty"`
	State   string     `json:"state"`
	Result  *JobResult `json:"result,omitempty"`
	Error   *JobError  `json:"error,omitempty"`
}

// Terminal reports whether the status is final.
func (s *JobStatus) Terminal() bool { return s.State == StateDone || s.State == StateFailed }

// Limits are the server-side resource budgets: Default* applies when a
// request leaves the knob zero, Max* clamps what a request may ask
// for. Zero fields fall back to the package defaults in
// DefaultLimits.
type Limits struct {
	DefaultMaxSteps uint64
	MaxMaxSteps     uint64
	DefaultMaxHeap  uint64
	MaxMaxHeap      uint64
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
}

// DefaultLimits returns the budgets a fresh server runs under: roomy
// enough for tiny/small workloads, tight enough that one hostile job
// cannot monopolize a worker or the simulated address space.
func DefaultLimits() Limits {
	return Limits{
		DefaultMaxSteps: 50_000_000,
		MaxMaxSteps:     500_000_000,
		DefaultMaxHeap:  1 << 30,
		MaxMaxHeap:      1 << 32,
		DefaultDeadline: 10 * time.Second,
		MaxDeadline:     60 * time.Second,
	}
}

// clamp resolves a requested budget against a default and a cap.
func clamp[T uint64 | time.Duration](req, def, max T) T {
	v := req
	if v == 0 {
		v = def
	}
	if max > 0 && v > max {
		v = max
	}
	return v
}

// parseSize maps the request spelling to a workloads.Size; empty means
// tiny (the serving sweet spot: jobs are interactive, not benchmarks).
func parseSize(s string) (workloads.Size, error) {
	switch s {
	case "", "tiny":
		return workloads.SizeTiny, nil
	case "small":
		return workloads.SizeSmall, nil
	case "medium":
		return workloads.SizeMedium, nil
	case "large":
		return workloads.SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size %q (want tiny|small|medium|large)", s)
}

// parseBug maps the request spelling to a workloads.Bug.
func parseBug(s string) (workloads.Bug, error) {
	for b := workloads.BugNone; b <= workloads.BugTaint; b++ {
		if b.String() == s {
			return b, nil
		}
	}
	if s == "" {
		return workloads.BugNone, nil
	}
	return 0, fmt.Errorf("unknown bug %q", s)
}

// faultSpec resolves the request's fault fields: explicit nth fields
// win, otherwise a non-zero FaultSeed derives a plan.
func (o JobOptions) faultSpec() vm.FaultSpec {
	if o.FaultMallocNth != 0 || o.FaultPanicNth != 0 || o.FaultSchedPerturb != 0 {
		return vm.FaultSpec{
			MallocFailNth:   o.FaultMallocNth,
			HandlerPanicNth: o.FaultPanicNth,
			SchedPerturb:    o.FaultSchedPerturb,
		}
	}
	if o.FaultSeed != 0 {
		return faults.FromSeed(o.FaultSeed).Spec()
	}
	return vm.FaultSpec{}
}

// Validate checks a request at admission time so malformed jobs are
// rejected with a 400 instead of burning a worker slot. It returns the
// parsed pieces the executor needs.
func (r *JobRequest) Validate() error {
	if (r.Workload == "") == (r.MIR == "") {
		return fmt.Errorf("exactly one of workload or mir is required")
	}
	if r.Analysis == "" {
		return fmt.Errorf("analysis is required")
	}
	for _, name := range strings.Split(r.Analysis, "+") {
		if _, err := analyses.Source(name); err != nil {
			return fmt.Errorf("unknown analysis %q", name)
		}
	}
	if _, err := parseSize(r.Size); err != nil {
		return err
	}
	if _, err := vm.ParseEngine(r.Options.Engine); err != nil {
		return err
	}
	if r.Workload != "" {
		if _, err := workloads.Get(r.Workload); err != nil {
			return err
		}
		if _, err := parseBug(r.Bug); err != nil {
			return err
		}
	} else {
		if r.Bug != "" {
			return fmt.Errorf("bug injection requires a named workload")
		}
		p, err := mir.ParseText(r.MIR)
		if err != nil {
			return fmt.Errorf("mir: %v", err)
		}
		if err := p.Verify(); err != nil {
			return fmt.Errorf("mir: %v", err)
		}
	}
	return nil
}

// fingerprintKey is the compile-affinity key jobs shard by: jobs that
// share it hit the same cached compiled analysis, so colocating them
// on one shard keeps the LRU compile cache and the per-shard CPU
// caches warm.
func (r *JobRequest) fingerprintKey() string {
	eng, _ := vm.ParseEngine(r.Options.Engine)
	return r.Analysis + "|" + compileOptions(eng).Fingerprint()
}
