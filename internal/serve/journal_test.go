package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testReq(workload string) *JobRequest {
	return &JobRequest{Tenant: "t0", Workload: workload, Analysis: "uaf"}
}

// TestJournalRoundTrip: accepts and dones written before a close are
// all recovered, unfinished = accepts lacking a done, and MaxSeq is the
// high-water mark new IDs must clear.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, rec, err := OpenJournal(path, "fp1", 1, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Done) != 0 || len(rec.Unfinished) != 0 || rec.MaxSeq != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.AppendAccept(seq, jobID(seq), "", testReq("sort")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendDone(&JobStatus{ID: "j2", State: StateDone, Result: &JobResult{Exit: 7}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = OpenJournal(path, "fp1", 1, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Done); got != 1 || rec.Done["j2"].Result.Exit != 7 {
		t.Fatalf("done recovered wrong: %d entries, %+v", got, rec.Done["j2"])
	}
	if len(rec.Unfinished) != 2 || rec.Unfinished[0].ID != "j1" || rec.Unfinished[1].ID != "j3" {
		t.Fatalf("unfinished recovered wrong: %+v", rec.Unfinished)
	}
	if rec.MaxSeq != 3 {
		t.Fatalf("MaxSeq = %d, want 3", rec.MaxSeq)
	}
}

func jobID(seq uint64) string { return "j" + string(rune('0'+seq)) }

// TestJournalTornTrailingLine: a partial final line — the kill -9
// arrived mid-write — must not poison recovery of the complete records
// before it.
func TestJournalTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, err := OpenJournal(path, "fp1", 1, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAccept(1, "j1", "", testReq("sort")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"done","status":{"id":"j1","sta`) // torn
	f.Close()

	_, rec, err := OpenJournal(path, "fp1", 1, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Unfinished) != 1 || rec.Unfinished[0].ID != "j1" {
		t.Fatalf("torn line broke recovery: %+v", rec)
	}
}

// TestJournalFingerprintMismatch: a journal written under different
// server limits must refuse to replay — the results would not be
// comparable.
func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, err := OpenJournal(path, "fp1", 1, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := OpenJournal(path, "fp2", 1, JournalFaults{}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

// TestJournalInjectedFaultsDegrade: the Nth write / Nth sync failing
// flips the journal to degraded and counts an error, but later appends
// keep working — availability over durability.
func TestJournalInjectedFaultsDegrade(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults JournalFaults
	}{
		{"write", JournalFaults{FailWriteNth: 2}},
		{"sync", JournalFaults{FailSyncNth: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.jsonl")
			j, _, err := OpenJournal(path, "fp1", 1, tc.faults)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.AppendAccept(1, "j1", "", testReq("sort")); err != nil {
				t.Fatalf("append 1: %v", err)
			}
			if j.Degraded() {
				t.Fatal("degraded before the injected ordinal")
			}
			if err := j.AppendAccept(2, "j2", "", testReq("sort")); !errors.Is(err, errInjected) {
				t.Fatalf("append 2: err = %v, want injected fault", err)
			}
			if !j.Degraded() {
				t.Fatal("injected fault did not flip degraded")
			}
			if err := j.AppendAccept(3, "j3", "", testReq("sort")); err != nil {
				t.Fatalf("append after fault: %v (faults must fire once)", err)
			}
			_, errs := j.Stats()
			if errs != 1 {
				t.Fatalf("errs = %d, want 1", errs)
			}
			j.Close()
		})
	}
}

// TestJournalBatchedSync: SyncEvery > 1 batches fsyncs but records are
// still recoverable after Close (which flushes the tail).
func TestJournalBatchedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, err := OpenJournal(path, "fp1", 8, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := j.AppendAccept(seq, jobID(seq), "", testReq("sort")); err != nil {
			t.Fatal(err)
		}
	}
	if j.syncs != 0 {
		t.Fatalf("syncs = %d before the batch filled, want 0", j.syncs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenJournal(path, "fp1", 8, JournalFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Unfinished) != 5 {
		t.Fatalf("recovered %d unfinished, want 5", len(rec.Unfinished))
	}
}
