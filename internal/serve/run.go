package serve

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// compileOptions returns the compilation configuration jobs run under:
// full optimization with the requested execution tier. The engine
// participates in Options.Fingerprint, so interp and threaded jobs
// cache — and shard — separately.
func compileOptions(eng vm.Engine) compiler.Options {
	o := compiler.DefaultOptions()
	o.Engine = eng
	return o
}

// compileAnalysis resolves "uaf" or "uaf+msan" through the bounded
// process-wide compile cache.
func compileAnalysis(spec string, opts compiler.Options) (*compiler.Analysis, error) {
	names := strings.Split(spec, "+")
	if len(names) == 1 {
		return analyses.Compile(names[0], opts)
	}
	return analyses.CompileCombined(opts, names...)
}

// buildProgram materializes the job's program: a named workload (with
// optional injected bug) or inline MIR.
func buildProgram(req *JobRequest) (*mir.Program, error) {
	if req.MIR != "" {
		p, err := mir.ParseText(req.MIR)
		if err != nil {
			return nil, fmt.Errorf("mir: %v", err)
		}
		if err := p.Verify(); err != nil {
			return nil, fmt.Errorf("mir: %v", err)
		}
		return p, nil
	}
	size, err := parseSize(req.Size)
	if err != nil {
		return nil, err
	}
	bug, err := parseBug(req.Bug)
	if err != nil {
		return nil, err
	}
	return workloads.BuildBug(req.Workload, size, bug)
}

// jobError maps an execution failure to its typed wire form. VM
// failures keep their taxonomy kind; anything else degrades to "fail".
func jobError(err error) *JobError {
	var re *vm.RunError
	if errors.As(err, &re) {
		return &JobError{Kind: re.KindLabel(), Message: re.Msg, Retryable: re.Retryable()}
	}
	return &JobError{Kind: "fail", Message: err.Error()}
}

// StageObserver receives pipeline-stage transitions during a job's
// execution ("compiled", "executed"), with the stage's deterministic
// virtual cost (0 where no cost applies). Used by the serving tier to
// record lifecycle spans; nil disables observation at zero cost.
type StageObserver func(stage string, virtual uint64)

// Execute runs one job to completion under the server's limits,
// returning either a deterministic result or a typed error — never
// both, and never a panic: workload builders, the compiler, the
// instrumenter and analysis handlers all run behind recover(), so a
// hostile tenant degrades to a JobError{Kind:"panic"} response while
// the worker survives. The shard, when non-nil, receives the run's
// deterministic observability counters.
func Execute(req *JobRequest, lim Limits, shard *obs.Shard) (*JobResult, *JobError) {
	return ExecuteObserved(req, lim, shard, nil, nil)
}

// ExecuteWith is Execute with an explicit compilation configuration —
// the adaptive-PGO loop's entry point, which substitutes the
// profile-collecting build during the quantum and the profile-adapted
// build after the swap. A nil opts means the default static options.
// The request's engine always wins: adapted options are shared per
// compile-affinity key, and the key already pins the engine.
func ExecuteWith(req *JobRequest, lim Limits, shard *obs.Shard, opts *compiler.Options) (*JobResult, *JobError) {
	return ExecuteObserved(req, lim, shard, opts, nil)
}

// ExecuteObserved is ExecuteWith plus a stage observer: onStage fires
// after compilation succeeds ("compiled") and after the VM run returns
// ("executed", with the run's virtual cost when it succeeded). Stage
// emission is a deterministic function of the request — the span
// determinism tests rely on that.
func ExecuteObserved(req *JobRequest, lim Limits, shard *obs.Shard, opts *compiler.Options, onStage StageObserver) (res *JobResult, jerr *JobError) {
	defer func() {
		if r := recover(); r != nil {
			res, jerr = nil, &JobError{Kind: "panic", Message: fmt.Sprintf("panic: %v", r)}
		}
	}()

	eng, err := vm.ParseEngine(req.Options.Engine)
	if err != nil {
		return nil, &JobError{Kind: "fail", Message: err.Error()}
	}
	prog, err := buildProgram(req)
	if err != nil {
		return nil, jobError(err)
	}
	copts := compileOptions(eng)
	if opts != nil {
		copts = *opts
		copts.Engine = eng
	}
	a, err := compileAnalysis(req.Analysis, copts)
	if err != nil {
		return nil, jobError(err)
	}
	if onStage != nil {
		onStage("compiled", 0)
	}

	seed := req.Options.Seed
	if seed == 0 {
		seed = 1
	}
	opt := core.RunOptions{
		Seed:         seed,
		MaxSteps:     clamp(req.Options.MaxSteps, lim.DefaultMaxSteps, lim.MaxMaxSteps),
		MaxHeapBytes: clamp(req.Options.MaxHeapBytes, lim.DefaultMaxHeap, lim.MaxMaxHeap),
		Deadline:     clamp(millis(req.Options.DeadlineMS), lim.DefaultDeadline, lim.MaxDeadline),
		Faults:       req.Options.faultSpec(),
		Engine:       eng,
		Metrics:      shard,
	}
	vres, err := core.RunAnalysis(prog, a, opt)
	if err != nil {
		if onStage != nil {
			onStage("executed", 0)
		}
		return nil, jobError(err)
	}
	if onStage != nil {
		onStage("executed", vres.Steps+16*vres.HookCalls)
	}
	out := &JobResult{
		Exit:      vres.Exit,
		Steps:     vres.Steps,
		HookCalls: vres.HookCalls,
		Virtual:   vres.Steps + 16*vres.HookCalls,
	}
	if canon := conformance.Canon(vres.Reports); canon != "" {
		out.Reports = strings.Split(canon, "\n")
	}
	return out, nil
}

func millis(ms int64) time.Duration {
	return time.Duration(ms) * time.Millisecond
}
