package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// adaptJob is the adaptive-loop test job: an MSan run over a workload
// whose shadow-map traffic dwarfs the allocation-size sidecar, so the
// profiling quantum reliably discovers a cold member and the swap
// actually changes the layout. The injected uninit bug makes the
// verdict non-trivial (reports present), which is what the identity
// assertions are worth running against.
func adaptJob() JobRequest {
	return JobRequest{Tenant: "adapt", Workload: "gcc", Bug: "uninit", Analysis: "msan"}
}

func submitWait(t *testing.T, ts *httptest.Server, req JobRequest) *JobStatus {
	t.Helper()
	code, b := postJob(t, ts, req, "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("submit: code %d, body %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job did not complete: %+v", st)
	}
	return &st
}

func resultJSON(t *testing.T, r *JobResult) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeAdaptiveVerdictIdentity: with AdaptAfter=2, jobs 1-2 run the
// profiling build, the key swaps, and jobs 3-5 run the adapted build —
// and every one of the five results is byte-identical to a static
// (non-adaptive) server's result for the same request. Adaptation
// re-selects containers; it never touches verdicts.
func TestServeAdaptiveVerdictIdentity(t *testing.T) {
	_, refTS := startServer(t, Config{Shards: 1})
	ref := resultJSON(t, submitWait(t, refTS, adaptJob()).Result)
	if !strings.Contains(ref, "uninitialized") && !strings.Contains(ref, "reports") {
		t.Fatalf("reference job produced no reports: %s", ref)
	}

	reg := obs.NewRegistry()
	_, ts := startServer(t, Config{Shards: 1, WorkersPerShard: 1, AdaptAfter: 2, Metrics: reg})
	for i := 0; i < 5; i++ {
		got := resultJSON(t, submitWait(t, ts, adaptJob()).Result)
		if got != ref {
			t.Errorf("job %d (phase %s): result diverged from static server\nstatic:   %s\nadaptive: %s",
				i+1, adaptPhase(i, 2), ref, got)
		}
	}
	if n := reg.Counter("serve.adapt.profiled"); n != 2 {
		t.Errorf("profiled %d jobs, want exactly the quantum (2)", n)
	}
	if n := reg.Counter("serve.adapt.swaps"); n != 1 {
		t.Errorf("swaps = %d, want 1 (the profile must discover the cold sidecar)", n)
	}
}

func adaptPhase(i, quantum int) string {
	if i < quantum {
		return "profiling"
	}
	return "adapted"
}

// TestServeAdaptiveRecovery: the swap is journaled as an adapt record,
// and a restarted server replays it — running the identical adapted
// analysis without re-entering the profiling quantum, with results
// byte-identical to the pre-crash server's.
func TestServeAdaptiveRecovery(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "adapt.jsonl")
	cfg := Config{Shards: 1, WorkersPerShard: 1, AdaptAfter: 2, JournalPath: jp}

	cfg1 := cfg
	cfg1.Metrics = obs.NewRegistry()
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	var want string
	for i := 0; i < 3; i++ {
		want = resultJSON(t, submitWait(t, ts1, adaptJob()).Result)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"adapt"`) || !strings.Contains(string(data), `"epoch":1`) {
		t.Fatalf("journal lacks the adaptation epoch record:\n%s", data)
	}

	// Restart with the same journal: the adapt record replays, the
	// next job runs adapted immediately (profiled stays 0), and the
	// result matches the pre-crash server's.
	reg2 := obs.NewRegistry()
	cfg2 := cfg
	cfg2.Metrics = reg2
	_, ts2 := startServer(t, cfg2)
	got := resultJSON(t, submitWait(t, ts2, adaptJob()).Result)
	if got != want {
		t.Errorf("post-recovery result diverged\npre-crash: %s\nrecovered: %s", want, got)
	}
	if n := reg2.Counter("serve.adapt.recovered"); n != 1 {
		t.Errorf("recovered %d adaptation epochs, want 1", n)
	}
	if n := reg2.Counter("serve.adapt.profiled"); n != 0 {
		t.Errorf("recovered server re-profiled %d jobs; the replayed epoch should skip the quantum", n)
	}
	if n := reg2.Counter("serve.adapt.swaps"); n != 0 {
		t.Errorf("recovered server re-swapped (%d); the epoch must come from the journal", n)
	}
}

// TestServeAdaptiveJournalFingerprint: a journal written under one
// adaptive configuration must not replay into a server with another —
// the adapt records' meaning depends on the quantum length, and a
// non-adaptive server would silently ignore them.
func TestServeAdaptiveJournalFingerprint(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "adapt.jsonl")
	base := Config{Shards: 1, AdaptAfter: 2, JournalPath: jp}
	s, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, 3} {
		cfg := base
		cfg.AdaptAfter = bad
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
			t.Errorf("AdaptAfter=%d reopened an adapt=2 journal: err=%v", bad, err)
		}
	}
}
