package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// loopMIR spins ~20M instructions: long enough that a 1ms deadline
// reliably fires at the VM's clock-check cadence, short enough not to
// drag the suite.
const loopMIR = `
func main(nparams=0, nregs=2) {
b0:
  r0 = const 20000000
  r1 = const 1
  br b1
b1:
  r0 = sub r0, r1
  condbr r0 ? b1 : b2
b2:
  ret r0
}
`

// trapMIR stores far outside any mapped region.
const trapMIR = `
func main(nparams=0, nregs=1) {
b0:
  r0 = const 281474976710656
  store.8 [r0] = 1
  ret r0
}
`

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req any, query string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestSubmitWaitDeterministic: a job runs to done with a deterministic
// result — submitting the identical request again yields an identical
// result (virtual time, no wall-clock in the body).
func TestSubmitWaitDeterministic(t *testing.T) {
	_, ts := startServer(t, Config{})
	req := JobRequest{Tenant: "alice", Workload: "memcached", Bug: "uaf", Analysis: "uaf"}

	var results [2]*JobResult
	for i := range results {
		code, b := postJob(t, ts, req, "?wait=1")
		if code != http.StatusOK {
			t.Fatalf("run %d: code %d, body %s", i, code, b)
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("run %d: status %+v", i, st)
		}
		results[i] = st.Result
	}
	a, _ := json.Marshal(results[0])
	b, _ := json.Marshal(results[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("same request, different results:\n%s\n%s", a, b)
	}
	if len(results[0].Reports) == 0 {
		t.Fatal("uaf bug produced no reports")
	}
	if results[0].Virtual != results[0].Steps+16*results[0].HookCalls {
		t.Fatal("virtual time formula broken")
	}
}

// TestSubmitAsyncAndPoll: 202 with a queued/running status, then GET
// ?wait=1 returns the terminal status.
func TestSubmitAsyncAndPoll(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, b := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "msan"}, "")
	if code != http.StatusAccepted {
		t.Fatalf("code %d, body %s", code, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Terminal() {
		t.Fatalf("202 status %+v, want a non-terminal job with an ID", st)
	}
	code, b = getBody(t, ts, "/v1/jobs/"+st.ID+"?wait=1")
	if code != http.StatusOK {
		t.Fatalf("poll code %d", code)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("final state %q, body %s", st.State, b)
	}
}

// TestBadRequests: malformed submissions are 400 with a typed error,
// never accepted and never a 500.
func TestBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := []any{
		JobRequest{Analysis: "uaf"},                                     // no program
		JobRequest{Workload: "sort", MIR: trapMIR, Analysis: "uaf"},     /* both */
		JobRequest{Workload: "sort"},                                    // no analysis
		JobRequest{Workload: "sort", Analysis: "nope"},                  // unknown analysis
		JobRequest{Workload: "nope", Analysis: "uaf"},                   // unknown workload
		JobRequest{Workload: "sort", Analysis: "uaf", Size: "galactic"}, // unknown size
		JobRequest{MIR: "func main(", Analysis: "uaf"},                  // unparsable MIR
		JobRequest{MIR: trapMIR, Bug: "uaf", Analysis: "uaf"},           // bug needs a workload
		JobRequest{Workload: "sort", Analysis: "uaf",
			Options: JobOptions{Engine: "quantum"}}, // unknown engine
		"not json at all",
	}
	for i, c := range cases {
		code, b := postJob(t, ts, c, "")
		if code != http.StatusBadRequest {
			t.Errorf("case %d: code %d, body %s", i, code, b)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Error == nil || eb.Error.Kind != "BadRequest" {
			t.Errorf("case %d: body %s not a typed BadRequest", i, b)
		}
	}
}

// TestGetUnknownJob: 404 with the typed envelope.
func TestGetUnknownJob(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, b := getBody(t, ts, "/v1/jobs/j999")
	if code != http.StatusNotFound || !bytes.Contains(b, []byte(`"NotFound"`)) {
		t.Fatalf("code %d body %s", code, b)
	}
}

// TestQueueFullBackpressure: with every shard token held, admission is
// an immediate 429 QueueFull with Retry-After — the queue is bounded
// and overload never blocks or 500s.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := startServer(t, Config{Shards: 1, WorkersPerShard: 1, QueueDepth: 1})
	sh := s.shards[0]
	n := 0
	for { // hold every token so admission cannot win one
		select {
		case sh.tokens <- struct{}{}:
			n++
			continue
		default:
		}
		break
	}
	defer func() {
		for ; n > 0; n-- {
			<-sh.tokens
		}
	}()

	body, _ := json.Marshal(JobRequest{Workload: "sort", Analysis: "uaf"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("code %d, body %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Kind != "QueueFull" || !eb.Error.Retryable {
		t.Fatalf("body %s, want retryable QueueFull", b)
	}
}

// TestTenantInflightCap: one tenant at its cap is 429 TenantBusy while
// another tenant still gets through — per-tenant isolation at
// admission.
func TestTenantInflightCap(t *testing.T) {
	s, ts := startServer(t, Config{TenantInflight: 2})
	s.mu.Lock()
	s.tenants["greedy"] = 2 // simulate two in-flight jobs
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.tenants, "greedy")
		s.mu.Unlock()
	}()

	code, b := postJob(t, ts, JobRequest{Tenant: "greedy", Workload: "sort", Analysis: "uaf"}, "")
	var eb errorBody
	if code != http.StatusTooManyRequests || json.Unmarshal(b, &eb) != nil || eb.Error.Kind != "TenantBusy" {
		t.Fatalf("greedy tenant: code %d body %s, want 429 TenantBusy", code, b)
	}
	code, _ = postJob(t, ts, JobRequest{Tenant: "modest", Workload: "sort", Analysis: "uaf"}, "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("modest tenant blocked by greedy's cap: code %d", code)
	}
}

// TestErrorKindJSONPinned pins the degraded-response contract on both
// engines: every vm.RunError kind plus the recovered-panic and
// build-failure service kinds surfaces as state "failed" with exactly
// {kind, message, retryable} — never a 500, and retryable only for
// Deadline.
func TestErrorKindJSONPinned(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := []struct {
		name      string
		kind      string
		retryable bool
		req       JobRequest
	}{
		{"trap", "Trap", false,
			JobRequest{MIR: trapMIR, Analysis: "uaf"}},
		{"handler-panic-trap", "Trap", false,
			JobRequest{Workload: "sort", Analysis: "uaf", Options: JobOptions{FaultPanicNth: 1}}},
		{"steplimit", "StepLimit", false,
			JobRequest{Workload: "sort", Analysis: "uaf", Options: JobOptions{MaxSteps: 100}}},
		{"heaplimit", "HeapLimit", false,
			JobRequest{Workload: "sort", Analysis: "uaf", Options: JobOptions{MaxHeapBytes: 512}}},
		{"deadline", "Deadline", true,
			JobRequest{MIR: loopMIR, Analysis: "uaf", Options: JobOptions{DeadlineMS: 1}}},
		{"libfault", "LibFault", false,
			JobRequest{Workload: "sort", Analysis: "uaf", Options: JobOptions{FaultMallocNth: 1}}},
	}
	for _, eng := range []string{"interp", "threaded"} {
		for _, tc := range cases {
			t.Run(eng+"/"+tc.name, func(t *testing.T) {
				req := tc.req
				req.Options.Engine = eng
				code, b := postJob(t, ts, req, "?wait=1")
				if code != http.StatusOK {
					t.Fatalf("code %d, body %s", code, b)
				}
				var st JobStatus
				if err := json.Unmarshal(b, &st); err != nil {
					t.Fatal(err)
				}
				if st.State != StateFailed || st.Result != nil || st.Error == nil {
					t.Fatalf("status %s, want failed with error only", b)
				}
				if st.Error.Kind != tc.kind {
					t.Fatalf("kind %q (msg %q), want %q", st.Error.Kind, st.Error.Message, tc.kind)
				}
				if st.Error.Retryable != tc.retryable {
					t.Fatalf("retryable = %v, want %v", st.Error.Retryable, tc.retryable)
				}
				if st.Error.Message == "" {
					t.Fatal("empty error message")
				}
				// Pin the wire shape: exactly kind/message/retryable.
				var raw map[string]json.RawMessage
				if err := json.Unmarshal(b, &raw); err != nil {
					t.Fatal(err)
				}
				var errObj map[string]json.RawMessage
				if err := json.Unmarshal(raw["error"], &errObj); err != nil {
					t.Fatal(err)
				}
				for _, k := range []string{"kind", "message", "retryable"} {
					if _, ok := errObj[k]; !ok {
						t.Fatalf("error body %s missing %q", b, k)
					}
				}
				if len(errObj) != 3 {
					t.Fatalf("error body %s has extra fields", b)
				}
			})
		}
	}
}

// TestGracefulDrain: Shutdown finishes queued jobs, flips /readyz to
// 503, and post-drain submissions are 503 Draining.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		code, b := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, "")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", i, code)
		}
		var st JobStatus
		json.Unmarshal(b, &st)
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st := s.lookup(id).snapshot()
		if !st.Terminal() {
			t.Fatalf("job %s not terminal after drain: %+v", id, st)
		}
	}
	if code, b := getBody(t, ts, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(string(b), "draining") {
		t.Fatalf("readyz after drain: %d %s", code, b)
	}
	if code, b := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, ""); code != http.StatusServiceUnavailable || !bytes.Contains(b, []byte(`"Draining"`)) {
		t.Fatalf("submit after drain: %d %s", code, b)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second drain not idempotent: %v", err)
	}
}

// TestCrashRecoveryByteIdentity is the durability acceptance test: a
// journal missing some done records (the crash ate them) replays into a
// server whose per-job terminal statuses are byte-identical to the
// uninterrupted reference run.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")

	// Reference run: six jobs (successes and typed failures), drained
	// cleanly so the journal holds every accept and every done.
	ref, err := New(Config{JournalPath: refPath})
	if err != nil {
		t.Fatal(err)
	}
	tsRef := httptest.NewServer(ref.Handler())
	reqs := []JobRequest{
		{Tenant: "a", Workload: "memcached", Bug: "uaf", Analysis: "uaf"},
		{Tenant: "a", Workload: "sort", Analysis: "msan"},
		{Tenant: "b", Workload: "sort", Analysis: "uaf", Options: JobOptions{MaxSteps: 100}},
		{Tenant: "b", MIR: trapMIR, Analysis: "uaf"},
		{Tenant: "c", Workload: "sort", Analysis: "uaf", Options: JobOptions{Engine: "threaded"}},
		{Tenant: "c", Workload: "sort", Analysis: "uaf", Options: JobOptions{FaultMallocNth: 1}},
	}
	want := map[string][]byte{} // id -> terminal status JSON
	for i, r := range reqs {
		code, b := postJob(t, tsRef, r, "?wait=1")
		if code != http.StatusOK {
			t.Fatalf("ref submit %d: code %d body %s", i, code, b)
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		canon, _ := json.Marshal(st)
		want[st.ID] = canon
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ref.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	tsRef.Close()

	// Forge the crashed journal: all accepts, done records for only two
	// jobs, and a torn trailing line (the write the crash interrupted).
	refLines, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	keepDone := map[string]bool{"j2": true, "j4": true}
	var crashed []string
	for _, line := range strings.Split(strings.TrimRight(string(refLines), "\n"), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("ref journal line %q: %v", line, err)
		}
		if rec.Type == "done" && !keepDone[rec.Status.ID] {
			continue
		}
		crashed = append(crashed, line)
	}
	crashed = append(crashed, `{"type":"done","status":{"id":"j5","st`)
	crashPath := filepath.Join(dir, "crash.jsonl")
	if err := os.WriteFile(crashPath, []byte(strings.Join(crashed, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart against the crashed journal: the four unfinished jobs
	// re-run; every terminal status must match the reference bytes.
	s2, err := New(Config{JournalPath: crashPath})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s2.Shutdown(ctx) }()
	if got := s2.reg.Counter("serve.jobs.recovered"); got != 4 {
		t.Fatalf("recovered counter = %d, want 4", got)
	}
	for id, wantJSON := range want {
		j := s2.lookup(id)
		if j == nil {
			t.Fatalf("job %s lost in the crash", id)
		}
		select {
		case <-j.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s never finished after recovery", id)
		}
		st := j.snapshot()
		got, _ := json.Marshal(st)
		if !bytes.Equal(got, wantJSON) {
			t.Errorf("job %s diverged after crash recovery:\n ref: %s\n got: %s", id, wantJSON, got)
		}
	}

	// New submissions must not collide with journaled IDs.
	tsCrash := httptest.NewServer(s2.Handler())
	defer tsCrash.Close()
	code, b := postJob(t, tsCrash, JobRequest{Workload: "sort", Analysis: "uaf"}, "")
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d", code)
	}
	var st JobStatus
	json.Unmarshal(b, &st)
	if _, taken := want[st.ID]; taken {
		t.Fatalf("post-recovery job reused journaled ID %s", st.ID)
	}
}

// TestConcurrentSubmitSoak: eight goroutines hammer a small server with
// mixed jobs. Every response is a typed outcome (202/400/429 — never a
// 500), every accepted job reaches a terminal state, and the books
// balance. Run with -race this doubles as the concurrency soak.
func TestConcurrentSubmitSoak(t *testing.T) {
	s, ts := startServer(t, Config{Shards: 2, WorkersPerShard: 2, QueueDepth: 4, TenantInflight: 8})
	const goroutines = 8
	const perG = 12
	var mu sync.Mutex
	var accepted []string
	var rejected, failed400 int

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := JobRequest{
					Tenant:   fmt.Sprintf("t%d", g%3),
					Workload: "sort",
					Analysis: []string{"uaf", "msan", "uaf+msan"}[i%3],
				}
				if i%4 == 3 {
					req.Options.Engine = "threaded"
				}
				if i%5 == 4 {
					req.Analysis = "nope" // exercise the 400 path concurrently
				}
				if i%6 == 5 {
					req.Options.FaultSeed = int64(g*perG + i + 1) // seeded VM faults in the mix
				}
				code, b := postJob(t, ts, req, "")
				mu.Lock()
				switch code {
				case http.StatusAccepted:
					var st JobStatus
					json.Unmarshal(b, &st)
					accepted = append(accepted, st.ID)
				case http.StatusTooManyRequests:
					rejected++
				case http.StatusBadRequest:
					failed400++
				default:
					t.Errorf("unexpected code %d: %s", code, b)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if len(accepted)+rejected+failed400 != goroutines*perG {
		t.Fatalf("books don't balance: %d + %d + %d != %d", len(accepted), rejected, failed400, goroutines*perG)
	}
	if len(accepted) == 0 {
		t.Fatal("soak accepted nothing")
	}
	for _, id := range accepted {
		j := s.lookup(id)
		select {
		case <-j.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("accepted job %s never finished", id)
		}
	}
	done := s.reg.Counter("serve.jobs.completed")
	var nFailed uint64
	for name, v := range s.reg.Export(false).Counters {
		if strings.HasPrefix(name, "serve.jobs.failed.") {
			nFailed += v
		}
	}
	if done+nFailed != uint64(len(accepted)) {
		t.Fatalf("terminal counters %d+%d != accepted %d", done, nFailed, len(accepted))
	}
}

// TestMetricsEndpoint: /metrics serves the registry including service
// counters and the compile-cache deltas.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{})
	if code, _ := postJob(t, ts, JobRequest{Workload: "sort", Analysis: "uaf"}, "?wait=1"); code != http.StatusOK {
		t.Fatalf("job code %d", code)
	}
	code, b := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics code %d", code)
	}
	var exp struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &exp); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, b)
	}
	if exp.Counters["serve.jobs.accepted"] != 1 || exp.Counters["serve.jobs.completed"] != 1 {
		t.Fatalf("service counters wrong: %s", b)
	}
	if code, b := getBody(t, ts, "/healthz"); code != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz: %d %q", code, b)
	}
	if code, b := getBody(t, ts, "/readyz"); code != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("readyz: %d %q", code, b)
	}
}
