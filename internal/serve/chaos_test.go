package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaosSoak is the serve-layer chaos drill: concurrent tenants
// submit jobs carrying deterministic VM fault plans (seeded malloc
// failures, handler panics, scheduler perturbation) while the journal
// itself suffers injected I/O faults. The invariants under all of it:
// every accepted job reaches a typed terminal state, the process never
// dies, rejections are only backpressure, and the journal fault
// degrades /readyz instead of failing requests.
func TestChaosSoak(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	s, err := New(Config{
		Shards: 2, WorkersPerShard: 2, QueueDepth: 8,
		JournalPath:   path,
		JournalFaults: JournalFaults{FailWriteNth: 5, FailSyncNth: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 4
	const perG = 10
	var mu sync.Mutex
	var accepted []string
	rejected := 0

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perG; i++ {
				req := JobRequest{
					Tenant:   fmt.Sprintf("tenant%d", g),
					Workload: "memcached",
					Analysis: "uaf",
					Options: JobOptions{
						// A different deterministic fault plan per job:
						// some break malloc, some panic handlers, some
						// only perturb the scheduler.
						FaultSeed: int64(g*perG + i + 1),
					},
				}
				if i%3 == 1 {
					req.Options.Engine = "threaded"
				}
				body, _ := json.Marshal(req)
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				var st JobStatus
				code := resp.StatusCode
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				mu.Lock()
				switch code {
				case http.StatusAccepted:
					accepted = append(accepted, st.ID)
				case http.StatusTooManyRequests:
					rejected++
				default:
					t.Errorf("g%d i%d: unexpected code %d", g, i, code)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if len(accepted) == 0 {
		t.Fatal("chaos soak accepted nothing")
	}

	// Every accepted job reaches a typed terminal state: done, or
	// failed with a taxonomy kind — never stuck, never a bare panic.
	kinds := map[string]int{}
	for _, id := range accepted {
		j := s.lookup(id)
		select {
		case <-j.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s wedged under chaos", id)
		}
		st := j.snapshot()
		switch st.State {
		case StateDone:
			kinds["ok"]++
		case StateFailed:
			if st.Error == nil || st.Error.Kind == "" {
				t.Fatalf("job %s failed untyped: %+v", id, st)
			}
			kinds[st.Error.Kind]++
		default:
			t.Fatalf("job %s non-terminal %q", id, st.State)
		}
	}
	// The seeded fault plans must actually have bitten: at least one
	// injected library fault or handler panic surfaced as a typed error.
	if kinds["LibFault"]+kinds["Trap"] == 0 {
		t.Fatalf("no injected fault surfaced; outcomes: %v", kinds)
	}

	// The injected journal fault degraded durability, not availability.
	if !s.journal.Degraded() {
		t.Fatal("journal faults never fired")
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d under journal degradation, want 200 + degraded note", resp.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 256)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "degraded: journal") {
		t.Fatalf("readyz body %q does not surface journal degradation", sb.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
}

// TestChaosDeterministicOutcomes: the same seeded fault plan yields the
// same typed outcome on a fresh server — chaos here is reproducible,
// not random.
func TestChaosDeterministicOutcomes(t *testing.T) {
	run := func() []byte {
		s, err := New(Config{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var out []JobStatus
		for seed := int64(1); seed <= 6; seed++ {
			code, b := postJob(t, ts, JobRequest{
				Workload: "memcached", Analysis: "uaf",
				Options: JobOptions{FaultSeed: seed},
			}, "?wait=1")
			if code != http.StatusOK {
				t.Fatalf("seed %d: code %d", seed, code)
			}
			var st JobStatus
			if err := json.Unmarshal(b, &st); err != nil {
				t.Fatal(err)
			}
			st.ID = "" // IDs differ across servers; outcomes must not
			out = append(out, st)
		}
		b, _ := json.Marshal(out)
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("seeded chaos not reproducible:\n%s\n%s", a, b)
	}
}
