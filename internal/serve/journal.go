package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/harness"
)

// The job journal is a JSONL write-ahead log, the server's durability
// layer — the same discipline as the harness's cell checkpoints
// (fingerprint-guarded records, one line per write, torn trailing line
// tolerated) applied to jobs. Two record types matter:
//
//	{"type":"accept","seq":N,"id":"jN","req":{...}}   before a 202
//	{"type":"done","status":{...}}                    at terminal state
//
// plus a header line written atomically (temp file + rename) when the
// journal is created. Recovery reads the journal back: accepts without
// a matching done are exactly the jobs a crash interrupted, and because
// jobs are deterministic, re-running them yields results byte-identical
// to the run the crash stole.

const journalVersion = 1

// journalRecord is one JSONL line.
type journalRecord struct {
	Type string `json:"type"` // "hdr" | "accept" | "done" | "adapt"
	// Header fields.
	V  int    `json:"v,omitempty"`
	Fp string `json:"fp,omitempty"`
	// Accept fields. Tid is the trace ID minted at admission; journals
	// predating the field recover it by re-minting from Seq (the mint is
	// a pure function of the sequence number, so the identity is stable
	// either way).
	Seq uint64      `json:"seq,omitempty"`
	ID  string      `json:"id,omitempty"`
	Tid string      `json:"tid,omitempty"`
	Req *JobRequest `json:"req,omitempty"`
	// Done fields.
	Status *JobStatus `json:"status,omitempty"`
	// Adapt fields (adaptive-PGO epoch, see adapt.go): the merged
	// profile counts plus the engine needed to re-derive the adapted
	// options deterministically on recovery.
	Key    string            `json:"key,omitempty"`
	Epoch  int               `json:"epoch,omitempty"`
	Eng    string            `json:"eng,omitempty"`
	Counts map[string]uint64 `json:"counts,omitempty"`
}

// JournalFaults injects deterministic I/O failures for the chaos
// layer: the Nth append write (1-based) or the Nth fsync fails once
// with an injected error. Zero fields inject nothing.
type JournalFaults struct {
	FailWriteNth uint64
	FailSyncNth  uint64
}

// errInjected marks a chaos-injected journal failure.
var errInjected = errors.New("injected journal fault")

// Journal is the append side of the WAL; safe for concurrent workers.
// Appends are fsynced per record by default (SyncEvery 1): an accept
// must be on stable storage before the client sees its 202, or "zero
// lost accepted jobs" after kill -9 would be a lie.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	syncEvery int
	pending   int
	writes    uint64 // appends attempted, for fault ordinals
	syncs     uint64
	faults    JournalFaults
	degraded  atomic.Bool
	appends   atomic.Uint64
	errs      atomic.Uint64
}

// Recovered is what reading a journal back yields: terminal statuses
// by ID, unfinished accepted jobs in acceptance order, and the highest
// sequence number ever issued (so new IDs never collide with journaled
// ones).
type Recovered struct {
	Done       map[string]*JobStatus
	Unfinished []journalRecord          // accept records lacking a done, in seq order
	Adapt      map[string]journalRecord // last adaptation epoch per compile-affinity key
	MaxSeq     uint64
}

// OpenJournal opens (or creates) the journal at path and replays its
// contents. The fingerprint guards against resuming with a server
// configuration whose results would differ: a mismatch is an error,
// not silent corruption. A torn trailing line — the crash arrived
// mid-write — is tolerated exactly like the harness checkpoints
// tolerate it.
func OpenJournal(path, fp string, syncEvery int, faults JournalFaults) (*Journal, *Recovered, error) {
	if syncEvery <= 0 {
		syncEvery = 1
	}
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		// Atomic header write: the journal either exists with a complete
		// header line or not at all — a crash during creation cannot
		// leave a headerless file that a restart would misread.
		hdr, err := json.Marshal(journalRecord{Type: "hdr", V: journalVersion, Fp: fp})
		if err != nil {
			return nil, nil, err
		}
		if err := harness.WriteFileAtomic(path, append(hdr, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
	}
	rec, err := readJournal(path, fp)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f, path: path, syncEvery: syncEvery, faults: faults}, rec, nil
}

// readJournal parses the journal, verifying the header fingerprint.
func readJournal(path, fp string) (*Recovered, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := &Recovered{Done: map[string]*JobStatus{}, Adapt: map[string]journalRecord{}}
	var accepts []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	first := true
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn or foreign line (kill arrived mid-write)
		}
		if first {
			first = false
			if rec.Type != "hdr" {
				return nil, fmt.Errorf("journal %s: missing header", path)
			}
			if rec.Fp != fp {
				return nil, fmt.Errorf("journal %s: fingerprint mismatch: journal %q, server %q", path, rec.Fp, fp)
			}
			if rec.V != journalVersion {
				return nil, fmt.Errorf("journal %s: version %d, want %d", path, rec.V, journalVersion)
			}
			continue
		}
		switch rec.Type {
		case "accept":
			if rec.Req != nil && rec.ID != "" {
				accepts = append(accepts, rec)
				if rec.Seq > out.MaxSeq {
					out.MaxSeq = rec.Seq
				}
			}
		case "done":
			if rec.Status != nil && rec.Status.ID != "" {
				out.Done[rec.Status.ID] = rec.Status
			}
		case "adapt":
			// Last epoch per key wins: appended in epoch order, so a
			// plain overwrite replays to the final pre-crash state.
			if rec.Key != "" {
				out.Adapt[rec.Key] = rec
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, a := range accepts {
		if _, ok := out.Done[a.ID]; !ok {
			out.Unfinished = append(out.Unfinished, a)
		}
	}
	return out, nil
}

// append writes one record, honoring the batched-sync discipline and
// the injected fault schedule. On failure the journal flips to
// degraded: the server keeps serving (availability over durability —
// accepted work still completes, results just stop being crash-safe)
// and /readyz reports the degradation.
func (j *Journal) append(rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	j.writes++
	if j.faults.FailWriteNth != 0 && j.writes == j.faults.FailWriteNth {
		j.degraded.Store(true)
		j.errs.Add(1)
		return fmt.Errorf("append %d: %w", j.writes, errInjected)
	}
	if _, err := j.f.Write(b); err != nil { // one line per write: no torn records from the writer side
		j.degraded.Store(true)
		j.errs.Add(1)
		return err
	}
	j.appends.Add(1)
	j.pending++
	if j.pending >= j.syncEvery {
		j.pending = 0
		j.syncs++
		if j.faults.FailSyncNth != 0 && j.syncs == j.faults.FailSyncNth {
			j.degraded.Store(true)
			j.errs.Add(1)
			return fmt.Errorf("sync %d: %w", j.syncs, errInjected)
		}
		if err := j.f.Sync(); err != nil {
			j.degraded.Store(true)
			j.errs.Add(1)
			return err
		}
	}
	return nil
}

// AppendAccept journals an accepted job before its 202 is sent.
func (j *Journal) AppendAccept(seq uint64, id, tid string, req *JobRequest) error {
	return j.append(journalRecord{Type: "accept", Seq: seq, ID: id, Tid: tid, Req: req})
}

// AppendDone journals a job's terminal status.
func (j *Journal) AppendDone(status *JobStatus) error {
	return j.append(journalRecord{Type: "done", Status: status})
}

// AppendAdapt journals an adaptation epoch: the compile-affinity key
// that swapped, the merged profile that drove the swap, and the engine
// the base options derive from. Recovery replays the record through
// the same pure AdaptOptions pass and lands on the identical analysis.
func (j *Journal) AppendAdapt(key string, epoch int, eng string, counts map[string]uint64) error {
	return j.append(journalRecord{Type: "adapt", Key: key, Epoch: epoch, Eng: eng, Counts: counts})
}

// Degraded reports whether a journal write has failed; the server
// surfaces it on /readyz.
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// Stats reports appends that reached the file and append errors
// (injected or real).
func (j *Journal) Stats() (appends, errs uint64) { return j.appends.Load(), j.errs.Load() }

// Close flushes and closes the journal (part of graceful drain).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pending > 0 {
		j.pending = 0
		j.f.Sync()
	}
	return j.f.Close()
}
