package analyses

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/vm"
)

func TestNamesAndSources(t *testing.T) {
	names := Names()
	want := []string{"eraser", "fasttrack", "msan", "sslsan", "strictalias", "tainttrack", "uaf", "zlibsan"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		src, err := Source(n)
		if err != nil || src == "" {
			t.Errorf("source %s: %v", n, err)
		}
	}
	if _, err := Source("bogus"); err == nil {
		t.Error("no error for unknown analysis")
	}
}

func TestCompileEachWithEveryConfig(t *testing.T) {
	for _, n := range Names() {
		for _, opts := range []compiler.Options{
			compiler.DefaultOptions(), compiler.DSOnlyOptions(), compiler.NaiveOptions(),
		} {
			a, err := Compile(n, opts)
			if err != nil {
				t.Errorf("compile %s: %v", n, err)
				continue
			}
			if _, err := a.NewRuntime(); err != nil {
				t.Errorf("runtime %s: %v", n, err)
			}
		}
	}
}

func TestCombinedSourcesCompile(t *testing.T) {
	a, err := CompileCombined(compiler.DefaultOptions(), "eraser", "fasttrack", "uaf", "tainttrack")
	if err != nil {
		t.Fatalf("combined: %v", err)
	}
	// The combined analysis must coalesce the four analyses'
	// address-keyed maps into fewer groups than the sum of parts.
	var addrGroups int
	for _, g := range a.Layout.Groups {
		if g.KeyType != nil && g.KeyType.Name == "address" {
			addrGroups++
		}
	}
	if addrGroups != 1 {
		t.Errorf("address-keyed groups in combined analysis = %d, want 1", addrGroups)
	}
}

func TestCombinedUnknownName(t *testing.T) {
	if _, err := Combined("eraser", "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTable4LOCBounds(t *testing.T) {
	// The ALDA sources must stay the size class the paper reports
	// (tens to low hundreds of lines, not thousands).
	for _, n := range Names() {
		src := MustSource(n)
		loc := compiler.CountLOC(src)
		if loc < 5 || loc > 250 {
			t.Errorf("%s: %d LOC out of the expected band", n, loc)
		}
	}
}

func TestFastTrackExternalsSemantics(t *testing.T) {
	ext := FastTrackExternals()
	m := &vm.Machine{} // state key only; externals don't touch the machine
	epoch := func(tid uint64) uint64 { return ext["ft_epoch"](m, []uint64{tid}) }
	hb := func(e, tid uint64) uint64 { return ext["ft_hb"](m, []uint64{e, tid}) }

	// Fresh threads: epoch of t0 = (1<<8)|0.
	if e := epoch(0); e != 1<<8 {
		t.Fatalf("epoch(0) = %#x", e)
	}
	// No prior access always happens-before.
	if hb(0, 1) != 1 {
		t.Fatal("hb(0, ...) must be 1")
	}
	// t0's epoch does not happen-before t1 yet.
	e0 := epoch(0)
	if hb(e0, 1) != 0 {
		t.Fatal("unsynchronized epochs must not be ordered")
	}
	// After t0 releases lock L and t1 acquires it, it does.
	ext["ft_release"](m, []uint64{77, 0})
	ext["ft_acquire"](m, []uint64{77, 1})
	if hb(e0, 1) != 1 {
		t.Fatal("release/acquire must order epochs")
	}
	// Fork orders parent's past with the child.
	e1 := epoch(1)
	ext["ft_fork"](m, []uint64{1, 2})
	if hb(e1, 2) != 1 {
		t.Fatal("fork must order parent with child")
	}
	// Join orders child's past with the parent.
	e2 := epoch(2)
	ext["ft_join"](m, []uint64{1, 2})
	if hb(e2, 1) != 1 {
		t.Fatal("join must order child with parent")
	}
	// Release bumps the releasing thread's clock.
	before := epoch(3)
	ext["ft_release"](m, []uint64{88, 3})
	if epoch(3) <= before {
		t.Fatal("release must advance the clock")
	}
}

func TestSourcesContainPaperStructure(t *testing.T) {
	// Eraser keeps the paper's four-state machine and lockset
	// intersections.
	src := MustSource("eraser")
	for _, want := range []string{"SHARED_MODIFIED", "addr2Lock[addr] & thread2Lock[t]", "universe::map"} {
		if !strings.Contains(src, want) {
			t.Errorf("eraser source missing %q", want)
		}
	}
	// MSan keeps the six Listing 2 insertion points.
	msan := MustSource("msan")
	for _, want := range []string{"insert after AllocaInst", "insert after LoadInst",
		"insert before BranchInst", "$1.m", "sizeof($r)"} {
		if !strings.Contains(msan, want) {
			t.Errorf("msan source missing %q", want)
		}
	}
}
