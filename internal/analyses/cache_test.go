package analyses

import (
	"testing"

	"repro/internal/compiler"
)

// TestCompileMemoized asserts the compile-once behavior the harness
// depends on: the same (name, options) pair yields the same shared
// *Analysis, while different options or a combined source compile
// separately.
func TestCompileMemoized(t *testing.T) {
	a1, err := Compile("msan", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Compile("msan", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same name and options should return the cached Analysis")
	}
	b, err := Compile("msan", compiler.DSOnlyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b == a1 {
		t.Error("different options must not share a compiled Analysis")
	}

	c1, err := CompileCombined(compiler.DefaultOptions(), "eraser", "uaf")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileCombined(compiler.DefaultOptions(), "eraser", "uaf")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same combined names and options should return the cached Analysis")
	}
	single, err := Compile("eraser", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c1 == single {
		t.Error("combined analysis must not collide with a single analysis")
	}
	// The cached Analysis arrives fully wired: externals registered
	// before publication, so concurrent users never observe a partial
	// table.
	ft, err := Compile("fasttrack", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name := range FastTrackExternals() {
		if _, ok := ft.Externals[name]; !ok {
			t.Errorf("cached analysis missing external %q", name)
		}
	}
}
