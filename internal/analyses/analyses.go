// Package analyses holds the eight ALDA analysis sources evaluated in
// the paper (Table 4 and §6.4), a registry to fetch and combine them,
// and the Go-side external functions FastTrack's vector-clock machinery
// needs (ALDA's escape hatch).
package analyses

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
)

//go:embed *.alda
var sources embed.FS

// Names returns the registered analysis names, sorted.
func Names() []string {
	entries, err := sources.ReadDir(".")
	if err != nil {
		panic(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".alda"))
	}
	sort.Strings(names)
	return names
}

// Source returns an analysis's ALDA source text.
func Source(name string) (string, error) {
	b, err := sources.ReadFile(name + ".alda")
	if err != nil {
		return "", fmt.Errorf("analyses: unknown analysis %q", name)
	}
	return string(b), nil
}

// MustSource is Source for registered names.
func MustSource(name string) string {
	s, err := Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Combined concatenates several analyses' sources — the paper's §6.4.2
// combination mechanism ("as simple as concatenating our 4 ALDA analysis
// source files into a single file").
func Combined(names ...string) (string, error) {
	var b strings.Builder
	for _, n := range names {
		s, err := Source(n)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Compile fetches, compiles and wires up an analysis (including any
// required externals) in one step. Results are memoized per (name,
// options fingerprint): the harness compiles each shipped analysis
// exactly once per process instead of once per figure per workload. The
// returned Analysis is therefore shared — treat it as immutable.
func Compile(name string, opts compiler.Options) (*compiler.Analysis, error) {
	return compiler.CachedCompile(name, opts, func() (*compiler.Analysis, error) {
		src, err := Source(name)
		if err != nil {
			return nil, err
		}
		a, err := compiler.Compile(src, opts)
		if err != nil {
			return nil, fmt.Errorf("analyses: compile %s: %w", name, err)
		}
		RegisterExternals(a)
		return a, nil
	})
}

// CompileCombined compiles the concatenation of several analyses,
// memoized like Compile under the joined name.
func CompileCombined(opts compiler.Options, names ...string) (*compiler.Analysis, error) {
	key := "combined(" + strings.Join(names, "+") + ")"
	return compiler.CachedCompile(key, opts, func() (*compiler.Analysis, error) {
		src, err := Combined(names...)
		if err != nil {
			return nil, err
		}
		a, err := compiler.Compile(src, opts)
		if err != nil {
			return nil, fmt.Errorf("analyses: compile combined %v: %w", names, err)
		}
		RegisterExternals(a)
		return a, nil
	})
}

// RegisterExternals installs every known external-function
// implementation an analysis may reference.
func RegisterExternals(a *compiler.Analysis) {
	for name, fn := range FastTrackExternals() {
		a.Externals[name] = fn
	}
}
