package analyses

import (
	"repro/internal/compiler"
	"repro/internal/vm"
)

// FastTrack's vector-clock machinery, implemented as ALDA external
// functions. The epoch fast path lives in ALDA metadata (fasttrack.alda);
// these externals maintain per-thread and per-lock vector clocks for the
// acquire/release/fork/join edges — operations that need loops, which
// ALDA deliberately lacks (§3.3).
//
// Epochs pack as (clock << 8) | tid, matching FastTrack's 32-bit epoch
// trick scaled to our 64-bit values.

const ftMaxThreads = 256

type ftState struct {
	vc     map[uint64][]uint64 // thread -> vector clock
	lockVC map[uint64][]uint64 // lock value -> release clock
}

func newFTState() *ftState {
	return &ftState{
		vc:     make(map[uint64][]uint64),
		lockVC: make(map[uint64][]uint64),
	}
}

func (s *ftState) threadVC(t uint64) []uint64 {
	t &= ftMaxThreads - 1
	v := s.vc[t]
	if v == nil {
		v = make([]uint64, ftMaxThreads)
		v[t] = 1 // every thread starts at clock 1 so epoch 0 means "none"
		s.vc[t] = v
	}
	return v
}

func joinInto(dst, src []uint64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// FastTrackExternals returns the external-function table. State lives on
// the running Machine (vm.Machine.ExtState), not in these closures: a
// compiled analysis — and with the compile cache, its Externals table —
// is shared by every Machine that runs it, including Machines running
// concurrently on harness worker goroutines.
func FastTrackExternals() map[string]compiler.ExternalFn {
	get := func(m *vm.Machine) *ftState {
		return m.ExtState("fasttrack", func() any { return newFTState() }).(*ftState)
	}

	return map[string]compiler.ExternalFn{
		// ft_epoch(t) -> (C_t(t) << 8) | t
		"ft_epoch": func(m *vm.Machine, args []uint64) uint64 {
			s := get(m)
			t := args[0] & (ftMaxThreads - 1)
			return s.threadVC(t)[t]<<8 | t
		},
		// ft_hb(epoch, t) -> 1 if epoch happens-before thread t's now.
		"ft_hb": func(m *vm.Machine, args []uint64) uint64 {
			s := get(m)
			epoch := args[0]
			if epoch == 0 {
				return 1 // no prior access
			}
			t := args[1] & (ftMaxThreads - 1)
			etid := epoch & 0xff
			eclk := epoch >> 8
			if s.threadVC(t)[etid] >= eclk {
				return 1
			}
			return 0
		},
		// ft_acquire(l, t): VC_t ⊔= L_l
		"ft_acquire": func(m *vm.Machine, args []uint64) uint64 {
			s := get(m)
			l, t := args[0], args[1]&(ftMaxThreads-1)
			if lv := s.lockVC[l]; lv != nil {
				joinInto(s.threadVC(t), lv)
			}
			return 0
		},
		// ft_release(l, t): L_l = VC_t; C_t(t)++
		"ft_release": func(m *vm.Machine, args []uint64) uint64 {
			s := get(m)
			l, t := args[0], args[1]&(ftMaxThreads-1)
			tv := s.threadVC(t)
			lv := s.lockVC[l]
			if lv == nil {
				lv = make([]uint64, ftMaxThreads)
				s.lockVC[l] = lv
			}
			copy(lv, tv)
			tv[t]++
			return 0
		},
		// ft_fork(parent, child): VC_child ⊔= VC_parent; C_parent++
		"ft_fork": func(m *vm.Machine, args []uint64) uint64 {
			s := get(m)
			p, c := args[0]&(ftMaxThreads-1), args[1]&(ftMaxThreads-1)
			pv := s.threadVC(p)
			joinInto(s.threadVC(c), pv)
			pv[p]++
			return 0
		},
		// ft_join(parent, child): VC_parent ⊔= VC_child; C_child++
		"ft_join": func(m *vm.Machine, args []uint64) uint64 {
			s := get(m)
			p, c := args[0]&(ftMaxThreads-1), args[1]&(ftMaxThreads-1)
			cv := s.threadVC(c)
			joinInto(s.threadVC(p), cv)
			cv[c]++
			return 0
		},
	}
}
