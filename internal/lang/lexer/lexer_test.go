package lexer

import (
	"testing"
	"testing/quick"

	"repro/internal/lang/token"
)

func kinds(src string) []token.Kind {
	toks, _ := ScanAll(src)
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	src := `addr := pointer : sync
m = universe::map(tid, set(lid))
if (x != 3) { m[x].add(1); }`
	want := []token.Kind{
		token.IDENT, token.DECLARE, token.POINTER, token.COLON, token.SYNC,
		token.IDENT, token.ASSIGN, token.UNIVERSE, token.COLONPATH, token.MAP,
		token.LPAREN, token.IDENT, token.COMMA, token.SET, token.LPAREN, token.IDENT,
		token.RPAREN, token.RPAREN,
		token.IF, token.LPAREN, token.IDENT, token.NEQ, token.INT, token.RPAREN,
		token.LBRACE, token.IDENT, token.LBRACKET, token.IDENT, token.RBRACKET,
		token.DOT, token.IDENT, token.LPAREN, token.INT, token.RPAREN,
		token.SEMICOLON, token.RBRACE,
		token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := `+ - * / % & | ^ << >> && || ! == != < <= > >= $ :: = :=`
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR,
		token.LAND, token.LOR, token.NOT,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.DOLLAR, token.COLONPATH, token.ASSIGN, token.DECLARE, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	src := "a // line comment\n/* block\ncomment */ b"
	got := kinds(src)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("comments not skipped: %v", got)
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := ScanAll("12 0x1F 0")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Lit != "12" || toks[1].Lit != "0x1F" || toks[2].Lit != "0" {
		t.Fatalf("literals: %v", toks)
	}
}

func TestStrings(t *testing.T) {
	toks, errs := ScanAll(`"hello \"world\""`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != token.STRING {
		t.Fatalf("kind = %v", toks[0].Kind)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"\"unterminated",
		"/* unterminated block",
		"a @ b",
		"0xzz",
	}
	for _, src := range cases {
		_, errs := ScanAll(src)
		if len(errs) == 0 {
			t.Errorf("no error for %q", src)
		}
	}
}

// Property: the lexer terminates and never panics on arbitrary input,
// and always ends the stream with EOF.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		toks, _ := ScanAll(src)
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeywordTable(t *testing.T) {
	for _, kw := range []string{"map", "set", "insert", "before", "after", "call",
		"func", "return", "if", "else", "int8", "int64", "pointer", "lockid",
		"threadid", "universe", "bottom", "sync", "sizeof", "const"} {
		if token.Lookup(kw) == token.IDENT {
			t.Errorf("%q not a keyword", kw)
		}
	}
	if token.Lookup("banana") != token.IDENT {
		t.Error("banana became a keyword")
	}
}
