// Package lexer implements the scanner for ALDA source text.
//
// The scanner is hand written, handles // line and /* block */ comments,
// decimal and hexadecimal integer literals, string literals with the
// usual escapes, and never panics on malformed input: unrecognized bytes
// are reported as ILLEGAL tokens and scanning continues.
package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/lang/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans ALDA source text into tokens.
type Lexer struct {
	src    string
	off    int  // byte offset of current rune
	rd     int  // byte offset after current rune
	ch     rune // current rune, -1 at EOF
	line   int
	col    int
	errors []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	l := &Lexer{src: src, line: 1, col: 0}
	l.next()
	return l
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errors }

const eof = -1

func (l *Lexer) next() {
	if l.rd >= len(l.src) {
		l.off = len(l.src)
		if l.ch == '\n' {
			l.line++
			l.col = 0
		}
		l.ch = eof
		l.col++
		return
	}
	if l.ch == '\n' {
		l.line++
		l.col = 0
	}
	r, w := rune(l.src[l.rd]), 1
	if r >= utf8.RuneSelf {
		r, w = utf8.DecodeRuneInString(l.src[l.rd:])
	}
	l.off = l.rd
	l.rd += w
	l.ch = r
	l.col++
}

func (l *Lexer) peek() rune {
	if l.rd >= len(l.src) {
		return eof
	}
	r := rune(l.src[l.rd])
	if r >= utf8.RuneSelf {
		r, _ = utf8.DecodeRuneInString(l.src[l.rd:])
	}
	return r
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func isLetter(ch rune) bool {
	return ch == '_' || unicode.IsLetter(ch)
}

func isDigit(ch rune) bool { return '0' <= ch && ch <= '9' }

func isHexDigit(ch rune) bool {
	return isDigit(ch) || ('a' <= ch && ch <= 'f') || ('A' <= ch && ch <= 'F')
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		for l.ch == ' ' || l.ch == '\t' || l.ch == '\r' || l.ch == '\n' {
			l.next()
		}
		if l.ch == '/' && l.peek() == '/' {
			for l.ch != '\n' && l.ch != eof {
				l.next()
			}
			continue
		}
		if l.ch == '/' && l.peek() == '*' {
			start := l.pos()
			l.next() // '/'
			l.next() // '*'
			closed := false
			for l.ch != eof {
				if l.ch == '*' && l.peek() == '/' {
					l.next()
					l.next()
					closed = true
					break
				}
				l.next()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
			continue
		}
		return
	}
}

func (l *Lexer) scanIdent() string {
	start := l.off
	for isLetter(l.ch) || isDigit(l.ch) {
		l.next()
	}
	return l.src[start:l.off]
}

func (l *Lexer) scanNumber() (string, bool) {
	start := l.off
	if l.ch == '0' && (l.peek() == 'x' || l.peek() == 'X') {
		l.next()
		l.next()
		if !isHexDigit(l.ch) {
			return l.src[start:l.off], false
		}
		for isHexDigit(l.ch) {
			l.next()
		}
		return l.src[start:l.off], true
	}
	for isDigit(l.ch) {
		l.next()
	}
	return l.src[start:l.off], true
}

func (l *Lexer) scanString() (string, bool) {
	start := l.off
	l.next() // opening quote
	for {
		switch l.ch {
		case eof, '\n':
			return l.src[start:l.off], false
		case '\\':
			l.next()
			if l.ch != eof {
				l.next()
			}
		case '"':
			l.next()
			return l.src[start:l.off], true
		default:
			l.next()
		}
	}
}

// Next returns the next token. At end of input it returns EOF tokens
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()

	switch ch := l.ch; {
	case ch == eof:
		return token.Token{Kind: token.EOF, Pos: pos}

	case isLetter(ch):
		lit := l.scanIdent()
		kind := token.Lookup(lit)
		if kind == token.IDENT {
			return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: kind, Lit: lit, Pos: pos}

	case isDigit(ch):
		lit, ok := l.scanNumber()
		if !ok {
			l.errorf(pos, "malformed number %q", lit)
			return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.INT, Lit: lit, Pos: pos}

	case ch == '"':
		lit, ok := l.scanString()
		if !ok {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.STRING, Lit: lit, Pos: pos}
	}

	// Operator or delimiter.
	ch := l.ch
	l.next()
	two := func(next rune, ifTwo, ifOne token.Kind) token.Token {
		if l.ch == next {
			l.next()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}

	switch ch {
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case ':':
		if l.ch == '=' {
			l.next()
			return token.Token{Kind: token.DECLARE, Pos: pos}
		}
		if l.ch == ':' {
			l.next()
			return token.Token{Kind: token.COLONPATH, Pos: pos}
		}
		return token.Token{Kind: token.COLON, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case '+':
		return token.Token{Kind: token.ADD, Pos: pos}
	case '-':
		return token.Token{Kind: token.SUB, Pos: pos}
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '/':
		return token.Token{Kind: token.QUO, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		if l.ch == '<' {
			l.next()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.ch == '>' {
			l.next()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GEQ, token.GTR)
	case '$':
		return token.Token{Kind: token.DOLLAR, Pos: pos}
	}

	l.errorf(pos, "unexpected character %q", ch)
	return token.Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
}

// ScanAll tokenizes all of src, always ending with an EOF token.
func ScanAll(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
