package sema

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

const prelude = `
address := pointer
tid := threadid : 8
lid := lockid : 256
counter := int64
status := int8
`

func TestMetaShapes(t *testing.T) {
	info := mustCheck(t, prelude+`
m1 = map(address, counter)
m2 = universe::map(address, set(lid))
m3 = map(tid, map(tid, counter))
g1 = counter
g2 = set(lid)
`)
	m1 := info.Metas["m1"]
	if !m1.IsMap() || m1.Kind != ScalarValue || m1.Scalar.Name != "counter" {
		t.Errorf("m1 shape: %+v", m1)
	}
	m2 := info.Metas["m2"]
	if m2.Kind != SetValue || !m2.Universe || m2.Elem.Name != "lid" {
		t.Errorf("m2 shape: %+v", m2)
	}
	m3 := info.Metas["m3"]
	if len(m3.Keys) != 2 || m3.Keys[0].Name != "tid" || m3.Keys[1].Name != "tid" {
		t.Errorf("m3 keys: %+v", m3.Keys)
	}
	g1 := info.Metas["g1"]
	if g1.IsMap() || g1.Kind != ScalarValue {
		t.Errorf("g1 shape: %+v", g1)
	}
	g2 := info.Metas["g2"]
	if g2.IsMap() || g2.Kind != SetValue {
		t.Errorf("g2 shape: %+v", g2)
	}
}

func TestSyncPropagation(t *testing.T) {
	info := mustCheck(t, `
address := pointer : sync
counter := int64
m = map(address, counter)
`)
	if !info.Metas["m"].Sync {
		t.Error("sync key did not mark the map sync")
	}
}

func TestHandlerTyping(t *testing.T) {
	info := mustCheck(t, prelude+`
m = map(address, counter)
s = map(tid, set(lid))
counter h(address a, tid t, lid l) {
    m[a] = m[a] + 1;
    s[t].add(l);
    if (s[t].find(l) && m[a] > 3) {
        alda_assert(m[a], 4, "boom");
    }
    return m[a];
}
insert after LoadInst call h($1, $t, $1)
`)
	h := info.Handlers["h"]
	if h.Result == nil || h.Result.Name != "counter" {
		t.Errorf("result: %+v", h.Result)
	}
	if len(info.Inserts) != 1 {
		t.Errorf("inserts: %d", len(info.Inserts))
	}
}

func TestExternalsCollected(t *testing.T) {
	info := mustCheck(t, prelude+`
h(address a) {
    my_helper(a, 3);
    other_helper(a);
    my_helper(a, 4);
}
`)
	if len(info.Externals) != 2 || info.Externals[0] != "my_helper" || info.Externals[1] != "other_helper" {
		t.Errorf("externals: %v", info.Externals)
	}
}

func TestRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared type", `m = map(nope, alsonope)`, "undeclared type"},
		{"undeclared ident", prelude + `h(address a) { b = 3; }`, "undeclared identifier"},
		{"dup handler", prelude + `h(address a) { } h(address a) { }`, "duplicate handler"},
		{"dup param", prelude + `h(address a, tid a) { }`, "duplicate parameter"},
		{"assign to param", prelude + `h(address a) { a = 3; }`, "assignment target must be a metadata location"},
		{"set as condition", prelude + `s = set(lid)
h(address a) { if (s) { } }`, "cannot be used as a condition"},
		{"return without type", prelude + `h(address a) { return a; }`, "has no return type"},
		{"missing return value", prelude + `counter h(address a) { return; }`, "must return"},
		{"set arith", prelude + `s = set(lid)
r = set(lid)
h(lid l) { s = s + r; }`, "not defined on sets"},
		{"mixed set scalar", prelude + `s = set(lid)
h(lid l) { s = s & l; }`, "must be sets"},
		{"insert unknown handler", prelude + `insert after LoadInst call nothere($1)`, "undeclared handler"},
		{"insert arity", prelude + `h(address a, tid t) { }
insert after LoadInst call h($1)`, "passes 1"},
		{"bad set method", prelude + `s = set(lid)
h(lid l) { s.push(l); }`, "unknown set method"},
		{"map set on set-valued", prelude + `m = map(address, set(lid))
h(address a, lid l) { m.set(a, l, 4); }`, "requires scalar-valued map"},
		{"conflicting type redecl", `t := int64
t := int32`, "conflicting redeclaration"},
		{"conflicting const", `const A = 1
const A = 2`, "conflicting redeclaration of const"},
		{"conflicting domain", `l := lockid : 4
l := lockid : 8`, "conflicting domain"},
		{"name collision", `t := int64
t = map(t, t)`, "already declared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := check(t, c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %q, want substring %q", err.Error(), c.want)
			}
		})
	}
}

func TestConcatenationMerges(t *testing.T) {
	// Identical and compatible redeclarations merge (§6.4.2).
	info := mustCheck(t, `
address := pointer
counter := int64
m1 = map(address, counter)
h1(address a) { m1[a] = 1; }
insert after LoadInst call h1($1)

address := pointer : sync
counter := int64
m1 = map(address, counter)
m2 = map(address, counter)
h2(address a) { m2[a] = 2; }
insert after StoreInst call h2($2)
`)
	if !info.Types["address"].Sync {
		t.Error("sync did not OR-merge")
	}
	if len(info.MetaOrder) != 2 {
		t.Errorf("metas = %d, want 2 (m1 deduped)", len(info.MetaOrder))
	}
	if len(info.Inserts) != 2 {
		t.Errorf("inserts = %d", len(info.Inserts))
	}
}

func TestDomainAdoptedOnMerge(t *testing.T) {
	info := mustCheck(t, `
l := lockid
l := lockid : 64
`)
	if info.Types["l"].Domain != 64 {
		t.Errorf("domain = %d", info.Types["l"].Domain)
	}
}

func TestRBeforeFuncRejected(t *testing.T) {
	_, err := check(t, prelude+`
h(address a) { }
insert before func malloc call h($r)
`)
	if err == nil || !strings.Contains(err.Error(), "$r is not available") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedMapAccess(t *testing.T) {
	info := mustCheck(t, prelude+`
vc = map(address, map(tid, counter))
h(address a, tid t) {
    vc[a][t] = vc[a][t] + 1;
}
`)
	vc := info.Metas["vc"]
	if len(vc.Keys) != 2 {
		t.Fatalf("keys = %d", len(vc.Keys))
	}
}
