// Package sema performs name resolution and type checking of parsed
// ALDA programs and produces the typed model that the ALDAcc compiler
// consumes.
//
// The checker enforces ALDA's restrictions (§4.3): handler bodies have
// no loops, no local variables and no pointers; the only indirection is
// through the declared map/set metadata. It also implements the
// concatenation-combination rule of §6.4.2: when several analysis
// sources are concatenated, duplicate *identical* type and constant
// declarations merge silently while conflicting ones are errors.
package sema

import (
	"fmt"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

// Error is a semantic error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty list of semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Typed model

// Type is a declared named type.
type Type struct {
	Name   string
	Prim   ast.PrimType
	Sync   bool
	Domain int64 // 0 ⇒ unbounded
}

// Bits returns the value width in bits.
func (t *Type) Bits() int { return t.Prim.Bits() }

// ValueKind classifies the value stored at the leaves of a metadata
// object.
type ValueKind int

// Leaf value kinds.
const (
	ScalarValue ValueKind = iota
	SetValue
)

// MetaObj is a checked metadata declaration. Nested maps are flattened:
// map(K1, map(K2, V)) becomes a single object with Keys = [K1, K2].
type MetaObj struct {
	Name string
	Decl *ast.MetaDecl

	Keys     []*Type // empty ⇒ a global scalar or global set
	Kind     ValueKind
	Scalar   *Type // when Kind == ScalarValue
	Elem     *Type // when Kind == SetValue
	Universe bool  // initial state is the full domain
	Sync     bool  // any key or the declared types demand locking
}

// IsMap reports whether the object is keyed.
func (m *MetaObj) IsMap() bool { return len(m.Keys) > 0 }

// Handler is a checked event-handler declaration.
type Handler struct {
	Name   string
	Decl   *ast.FuncDecl
	Params []*Type
	Result *Type // nil if none
}

// VType is the checked type of an expression occurrence.
type VType struct {
	Kind   VKind
	Scalar *Type    // KScalar
	Elem   *Type    // KSet
	Meta   *MetaObj // KMapRef and leaf accesses
	Depth  int      // KMapRef: number of keys consumed so far
}

// VKind classifies expression types.
type VKind int

// Expression type kinds.
const (
	KScalar VKind = iota
	KSet
	KMapRef // partially-indexed map object
	KVoid
)

func (v VType) String() string {
	switch v.Kind {
	case KScalar:
		if v.Scalar != nil {
			return v.Scalar.Name
		}
		return "int"
	case KSet:
		if v.Elem != nil {
			return "set(" + v.Elem.Name + ")"
		}
		return "set(?)"
	case KMapRef:
		return fmt.Sprintf("map<%s,depth=%d>", v.Meta.Name, v.Depth)
	}
	return "void"
}

// Info is the result of checking: the complete typed model of the
// analysis program.
type Info struct {
	Program *ast.Program

	Types     map[string]*Type
	Consts    map[string]int64
	Metas     map[string]*MetaObj
	MetaOrder []*MetaObj

	Handlers     map[string]*Handler
	HandlerOrder []*Handler

	Inserts []*ast.InsertDecl

	// ExprTypes records the checked type of every expression node, for
	// the code generator.
	ExprTypes map[ast.Expr]VType

	// Externals lists external (escape-hatch) function names called from
	// handler bodies, in first-use order.
	Externals []string
}

// Builtin function names (Table 1).
const (
	BuiltinAssert    = "alda_assert"
	BuiltinPtrOffset = "ptr_offset"
)

// ---------------------------------------------------------------------------
// Checker

type checker struct {
	info   *Info
	errs   ErrorList
	extSet map[string]bool
}

// Check type-checks the program.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Program:   prog,
			Types:     make(map[string]*Type),
			Consts:    make(map[string]int64),
			Metas:     make(map[string]*MetaObj),
			Handlers:  make(map[string]*Handler),
			ExprTypes: make(map[ast.Expr]VType),
		},
		extSet: make(map[string]bool),
	}
	c.collectTypes(prog)
	c.collectConsts(prog)
	c.collectMetas(prog)
	c.collectHandlers(prog)
	for _, h := range c.info.HandlerOrder {
		c.checkHandler(h)
	}
	c.checkInserts(prog)
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) collectTypes(prog *ast.Program) {
	for _, d := range prog.TypeDecls() {
		if prev, ok := c.info.Types[d.Name]; ok {
			// Concatenation-merge (§6.4.2): the primitive must agree;
			// sync is a requirement so it ORs; bounded domains must not
			// contradict (an unbounded redeclaration adopts the bound).
			if prev.Prim != d.Prim {
				c.errorf(d.Pos(), "conflicting redeclaration of type %s (was %s)", d.Name, prev.Prim)
				continue
			}
			if d.Sync {
				prev.Sync = true
			}
			switch {
			case d.Domain == 0 || d.Domain == prev.Domain:
				// compatible
			case prev.Domain == 0:
				prev.Domain = d.Domain
			default:
				c.errorf(d.Pos(), "conflicting domain for type %s (%d vs %d)", d.Name, prev.Domain, d.Domain)
			}
			continue
		}
		c.info.Types[d.Name] = &Type{Name: d.Name, Prim: d.Prim, Sync: d.Sync, Domain: d.Domain}
	}
}

func (c *checker) collectConsts(prog *ast.Program) {
	for _, d := range prog.ConstDecls() {
		if prev, ok := c.info.Consts[d.Name]; ok {
			if prev != d.Value {
				c.errorf(d.Pos(), "conflicting redeclaration of const %s (%d vs %d)", d.Name, prev, d.Value)
			}
			continue
		}
		if _, isType := c.info.Types[d.Name]; isType {
			c.errorf(d.Pos(), "%s already declared as a type", d.Name)
			continue
		}
		c.info.Consts[d.Name] = d.Value
	}
}

func (c *checker) lookupType(pos token.Pos, name string) *Type {
	if t, ok := c.info.Types[name]; ok {
		return t
	}
	c.errorf(pos, "undeclared type %s", name)
	return &Type{Name: name, Prim: ast.Int64}
}

func (c *checker) collectMetas(prog *ast.Program) {
	for _, d := range prog.MetaDecls() {
		obj := c.buildMeta(d)
		if obj == nil {
			continue
		}
		if prev, ok := c.info.Metas[d.Name]; ok {
			if !sameShape(prev, obj) {
				c.errorf(d.Pos(), "conflicting redeclaration of metadata %s", d.Name)
			}
			continue
		}
		if _, isType := c.info.Types[d.Name]; isType {
			c.errorf(d.Pos(), "%s already declared as a type", d.Name)
			continue
		}
		if _, isConst := c.info.Consts[d.Name]; isConst {
			c.errorf(d.Pos(), "%s already declared as a constant", d.Name)
			continue
		}
		c.info.Metas[d.Name] = obj
		c.info.MetaOrder = append(c.info.MetaOrder, obj)
	}
}

func sameShape(a, b *MetaObj) bool {
	if a.Kind != b.Kind || a.Universe != b.Universe || len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	return a.Scalar == b.Scalar && a.Elem == b.Elem
}

func (c *checker) buildMeta(d *ast.MetaDecl) *MetaObj {
	obj := &MetaObj{Name: d.Name, Decl: d}
	mt := d.Type
	// The outermost specifier applies to the leaf value; the paper's
	// examples also write the specifier on nested positions
	// (universe::map(address, universe::set(lid))) — either position
	// marks the leaf universe-initialized.
	universe := mt.Spec == ast.Universe
	for mt.IsMap {
		kt := c.lookupType(d.Pos(), mt.Key)
		obj.Keys = append(obj.Keys, kt)
		mt = mt.Value
		if mt.Spec == ast.Universe {
			universe = true
		}
	}
	switch {
	case mt.IsSet:
		obj.Kind = SetValue
		obj.Elem = c.lookupType(d.Pos(), mt.Elem)
	case mt.TypeName != "":
		obj.Kind = ScalarValue
		obj.Scalar = c.lookupType(d.Pos(), mt.TypeName)
	default:
		c.errorf(d.Pos(), "metadata %s has no leaf value type", d.Name)
		return nil
	}
	obj.Universe = universe
	for _, k := range obj.Keys {
		if k.Sync {
			obj.Sync = true
		}
	}
	if obj.Scalar != nil && obj.Scalar.Sync {
		obj.Sync = true
	}
	if obj.Elem != nil && obj.Elem.Sync {
		obj.Sync = true
	}
	return obj
}

func (c *checker) collectHandlers(prog *ast.Program) {
	for _, d := range prog.FuncDecls() {
		if _, ok := c.info.Handlers[d.Name]; ok {
			c.errorf(d.Pos(), "duplicate handler %s (combined analyses must use distinct handler names)", d.Name)
			continue
		}
		h := &Handler{Name: d.Name, Decl: d}
		if d.Result != "" {
			h.Result = c.lookupType(d.Pos(), d.Result)
		}
		seen := make(map[string]bool)
		for _, p := range d.Params {
			if seen[p.Name] {
				c.errorf(p.NamePos, "duplicate parameter %s in handler %s", p.Name, d.Name)
			}
			seen[p.Name] = true
			h.Params = append(h.Params, c.lookupType(p.NamePos, p.Type))
		}
		c.info.Handlers[d.Name] = h
		c.info.HandlerOrder = append(c.info.HandlerOrder, h)
	}
}

// ---------------------------------------------------------------------------
// Handler body checking

type scope struct {
	handler *Handler
	params  map[string]*Type
}

func (c *checker) checkHandler(h *Handler) {
	sc := &scope{handler: h, params: make(map[string]*Type)}
	for i, p := range h.Decl.Params {
		sc.params[p.Name] = h.Params[i]
	}
	c.checkStmts(sc, h.Decl.Body)
}

func (c *checker) checkStmts(sc *scope, stmts []ast.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.IfStmt:
			vt := c.checkExpr(sc, st.Cond)
			if vt.Kind == KMapRef || vt.Kind == KSet {
				c.errorf(st.Cond.Pos(), "%s cannot be used as a condition (conditions are scalar)", vt)
			}
			c.checkStmts(sc, st.Then)
			c.checkStmts(sc, st.Else)
		case *ast.ReturnStmt:
			if st.Value == nil {
				if sc.handler.Result != nil {
					c.errorf(st.Pos(), "handler %s must return a %s value", sc.handler.Name, sc.handler.Result.Name)
				}
				continue
			}
			if sc.handler.Result == nil {
				c.errorf(st.Pos(), "handler %s has no return type", sc.handler.Name)
			}
			vt := c.checkExpr(sc, st.Value)
			if vt.Kind != KScalar {
				c.errorf(st.Value.Pos(), "return value must be scalar, got %s", vt)
			}
		case *ast.ExprStmt:
			c.checkExpr(sc, st.X)
		}
	}
}

func (c *checker) record(e ast.Expr, vt VType) VType {
	c.info.ExprTypes[e] = vt
	return vt
}

func scalar(t *Type) VType { return VType{Kind: KScalar, Scalar: t} }

func (c *checker) checkExpr(sc *scope, e ast.Expr) VType {
	switch x := e.(type) {
	case *ast.IntLit:
		return c.record(e, VType{Kind: KScalar})

	case *ast.StringLit:
		return c.record(e, VType{Kind: KScalar})

	case *ast.Ident:
		if t, ok := sc.params[x.Name]; ok {
			return c.record(e, scalar(t))
		}
		if _, ok := c.info.Consts[x.Name]; ok {
			return c.record(e, VType{Kind: KScalar})
		}
		if m, ok := c.info.Metas[x.Name]; ok {
			if !m.IsMap() {
				if m.Kind == SetValue {
					return c.record(e, VType{Kind: KSet, Elem: m.Elem, Meta: m})
				}
				return c.record(e, VType{Kind: KScalar, Scalar: m.Scalar, Meta: m})
			}
			return c.record(e, VType{Kind: KMapRef, Meta: m, Depth: 0})
		}
		c.errorf(x.Pos(), "undeclared identifier %s", x.Name)
		return c.record(e, VType{Kind: KScalar})

	case *ast.IndexExpr:
		base := c.checkExpr(sc, x.X)
		if base.Kind != KMapRef {
			c.errorf(x.Pos(), "cannot index %s", base)
			return c.record(e, VType{Kind: KScalar})
		}
		idx := c.checkExpr(sc, x.Index)
		if idx.Kind != KScalar {
			c.errorf(x.Index.Pos(), "map key must be scalar, got %s", idx)
		}
		m := base.Meta
		keyT := m.Keys[base.Depth]
		if idx.Scalar != nil && idx.Scalar != keyT && idx.Scalar.Prim != keyT.Prim {
			c.errorf(x.Index.Pos(), "map %s expects key of type %s, got %s", m.Name, keyT.Name, idx.Scalar.Name)
		}
		depth := base.Depth + 1
		if depth < len(m.Keys) {
			return c.record(e, VType{Kind: KMapRef, Meta: m, Depth: depth})
		}
		if m.Kind == SetValue {
			return c.record(e, VType{Kind: KSet, Elem: m.Elem, Meta: m})
		}
		return c.record(e, VType{Kind: KScalar, Scalar: m.Scalar, Meta: m})

	case *ast.AssignExpr:
		lhs := c.checkExpr(sc, x.LHS)
		rhs := c.checkExpr(sc, x.RHS)
		if !isMetaLeaf(x.LHS, lhs) {
			c.errorf(x.LHS.Pos(), "assignment target must be a metadata location")
		}
		switch lhs.Kind {
		case KScalar:
			if rhs.Kind != KScalar {
				c.errorf(x.RHS.Pos(), "cannot assign %s to scalar metadata", rhs)
			}
		case KSet:
			if rhs.Kind != KSet {
				c.errorf(x.RHS.Pos(), "cannot assign %s to set metadata", rhs)
			} else if rhs.Elem != nil && lhs.Elem != nil && rhs.Elem != lhs.Elem {
				c.errorf(x.RHS.Pos(), "set element type mismatch: %s vs %s", lhs.Elem.Name, rhs.Elem.Name)
			}
		default:
			c.errorf(x.LHS.Pos(), "cannot assign to %s", lhs)
		}
		return c.record(e, VType{Kind: KVoid})

	case *ast.UnaryExpr:
		vt := c.checkExpr(sc, x.X)
		if vt.Kind != KScalar {
			c.errorf(x.X.Pos(), "operand of %s must be scalar, got %s", x.Op, vt)
		}
		return c.record(e, VType{Kind: KScalar, Scalar: vt.Scalar})

	case *ast.BinaryExpr:
		xt := c.checkExpr(sc, x.X)
		yt := c.checkExpr(sc, x.Y)
		// & and | double as set intersection/union.
		if xt.Kind == KSet || yt.Kind == KSet {
			if x.Op != token.AND && x.Op != token.OR {
				c.errorf(x.Pos(), "operator %s not defined on sets", x.Op)
				return c.record(e, VType{Kind: KScalar})
			}
			if xt.Kind != KSet || yt.Kind != KSet {
				c.errorf(x.Pos(), "both operands of set %s must be sets", x.Op)
				return c.record(e, VType{Kind: KSet, Elem: firstElem(xt, yt)})
			}
			if xt.Elem != nil && yt.Elem != nil && xt.Elem != yt.Elem {
				c.errorf(x.Pos(), "set element type mismatch: %s vs %s", xt.Elem.Name, yt.Elem.Name)
			}
			return c.record(e, VType{Kind: KSet, Elem: firstElem(xt, yt)})
		}
		if xt.Kind != KScalar || yt.Kind != KScalar {
			c.errorf(x.Pos(), "operands of %s must be scalar", x.Op)
		}
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			return c.record(e, VType{Kind: KScalar})
		}
		st := xt.Scalar
		if st == nil {
			st = yt.Scalar
		}
		return c.record(e, VType{Kind: KScalar, Scalar: st})

	case *ast.MethodExpr:
		return c.record(e, c.checkMethod(sc, x))

	case *ast.CallExpr:
		return c.record(e, c.checkCall(sc, x))
	}
	c.errorf(e.Pos(), "unsupported expression")
	return c.record(e, VType{Kind: KScalar})
}

func firstElem(a, b VType) *Type {
	if a.Elem != nil {
		return a.Elem
	}
	return b.Elem
}

// isMetaLeaf reports whether e denotes a storable metadata location.
func isMetaLeaf(e ast.Expr, vt VType) bool {
	if vt.Meta == nil {
		return false
	}
	switch e.(type) {
	case *ast.IndexExpr:
		return vt.Kind == KScalar || vt.Kind == KSet
	case *ast.Ident:
		// global scalar/set object
		return vt.Kind == KScalar || vt.Kind == KSet
	}
	return false
}

func (c *checker) checkMethod(sc *scope, x *ast.MethodExpr) VType {
	recv := c.checkExpr(sc, x.Recv)
	argTypes := make([]VType, len(x.Args))
	for i, a := range x.Args {
		argTypes[i] = c.checkExpr(sc, a)
	}
	requireScalars := func() {
		for i, at := range argTypes {
			if at.Kind != KScalar {
				c.errorf(x.Args[i].Pos(), "argument %d of %s must be scalar", i+1, x.Name)
			}
		}
	}

	switch recv.Kind {
	case KSet:
		switch x.Name {
		case "add", "remove", "find":
			if len(x.Args) != 1 {
				c.errorf(x.Pos(), "set.%s takes exactly 1 argument", x.Name)
			}
			requireScalars()
			if x.Name == "find" {
				return VType{Kind: KScalar}
			}
			return VType{Kind: KVoid}
		case "size", "empty":
			if len(x.Args) != 0 {
				c.errorf(x.Pos(), "set.%s takes no arguments", x.Name)
			}
			return VType{Kind: KScalar}
		case "clear":
			if len(x.Args) != 0 {
				c.errorf(x.Pos(), "set.clear takes no arguments")
			}
			return VType{Kind: KVoid}
		}
		c.errorf(x.Pos(), "unknown set method %s", x.Name)
		return VType{Kind: KScalar}

	case KMapRef:
		m := recv.Meta
		if recv.Depth != len(m.Keys)-1 {
			// Range ops address the final key dimension.
			c.errorf(x.Pos(), "map method %s on %s requires all but the last key to be indexed", x.Name, m.Name)
		}
		switch x.Name {
		case "set":
			if len(x.Args) != 2 && len(x.Args) != 3 {
				c.errorf(x.Pos(), "map.set takes (k, v) or (k, v, n)")
			}
			requireScalars()
			if m.Kind != ScalarValue {
				c.errorf(x.Pos(), "map.set requires scalar-valued map %s", m.Name)
			}
			return VType{Kind: KVoid}
		case "get":
			if len(x.Args) != 1 && len(x.Args) != 2 {
				c.errorf(x.Pos(), "map.get takes (k) or (k, n)")
			}
			requireScalars()
			if m.Kind != ScalarValue {
				c.errorf(x.Pos(), "map.get requires scalar-valued map %s", m.Name)
			}
			return VType{Kind: KScalar, Scalar: m.Scalar, Meta: m}
		case "remove":
			if len(x.Args) != 1 {
				c.errorf(x.Pos(), "map.remove takes (k)")
			}
			requireScalars()
			return VType{Kind: KVoid}
		case "has":
			if len(x.Args) != 1 {
				c.errorf(x.Pos(), "map.has takes (k)")
			}
			requireScalars()
			return VType{Kind: KScalar}
		}
		c.errorf(x.Pos(), "unknown map method %s", x.Name)
		return VType{Kind: KScalar}
	}

	c.errorf(x.Pos(), "cannot call method %s on %s", x.Name, recv)
	return VType{Kind: KScalar}
}

func (c *checker) checkCall(sc *scope, x *ast.CallExpr) VType {
	switch x.Name {
	case BuiltinAssert:
		if len(x.Args) != 2 && len(x.Args) != 3 {
			c.errorf(x.Pos(), "alda_assert takes (expr, expected) with an optional message")
		}
		for i, a := range x.Args {
			at := c.checkExpr(sc, a)
			if _, isMsg := a.(*ast.StringLit); isMsg && i == 2 {
				continue
			}
			if at.Kind != KScalar {
				c.errorf(a.Pos(), "alda_assert argument must be scalar, got %s", at)
			}
		}
		return VType{Kind: KVoid}
	case BuiltinPtrOffset:
		if len(x.Args) != 2 {
			c.errorf(x.Pos(), "ptr_offset takes (ptr, n)")
		}
		for _, a := range x.Args {
			if at := c.checkExpr(sc, a); at.Kind != KScalar {
				c.errorf(a.Pos(), "ptr_offset argument must be scalar, got %s", at)
			}
		}
		return VType{Kind: KScalar}
	}
	// External function call (escape hatch, §3.3). All arguments must be
	// scalar; result is a 64-bit scalar.
	for _, a := range x.Args {
		if at := c.checkExpr(sc, a); at.Kind != KScalar {
			c.errorf(a.Pos(), "external call argument must be scalar, got %s", at)
		}
	}
	if !c.extSet[x.Name] {
		c.extSet[x.Name] = true
		c.info.Externals = append(c.info.Externals, x.Name)
	}
	return VType{Kind: KScalar}
}

// ---------------------------------------------------------------------------
// Insertion declarations

func (c *checker) checkInserts(prog *ast.Program) {
	for _, d := range prog.InsertDecls() {
		h, ok := c.info.Handlers[d.Handler]
		if !ok {
			c.errorf(d.Pos(), "insertion references undeclared handler %s", d.Handler)
			continue
		}
		hasAll := false
		for _, a := range d.Args {
			if a.Kind == ast.ArgAll {
				hasAll = true
			}
			if a.Kind == ast.ArgReturn && !d.After && d.PointKind == ast.FuncPoint {
				c.errorf(a.ArgPos, "$r is not available before the call in %s", d.Handler)
			}
		}
		if !hasAll && len(d.Args) != len(h.Params) {
			c.errorf(d.Pos(), "handler %s takes %d parameters but insertion passes %d arguments",
				d.Handler, len(h.Params), len(d.Args))
		}
		c.info.Inserts = append(c.info.Inserts, d)
	}
}
