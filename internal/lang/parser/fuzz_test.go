package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lang/printer"
)

// FuzzParse asserts two frontend invariants over arbitrary input:
// Parse never panics (it must reject malformed sources with errors),
// and for accepted sources the parse→print→parse round trip is a fixed
// point — the printer output re-parses to a program that prints
// identically. Seeded from the eight shipped .alda analyses (read from
// disk, like the printer tests, to keep this package frontend-only); a
// matching checked-in corpus lives in testdata/fuzz/FuzzParse so
// `go test -fuzz` starts from the same inputs even when the glob moves.
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob("../../analyses/*.alda")
	if err != nil || len(paths) == 0 {
		f.Fatalf("no .alda seeds found (glob err %v): fix the corpus wiring", err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	f.Add("analysis empty { }")
	f.Add("analysis m { meta addr2label: map<pointer, int64>; on LoadInst call check($a); func check(p: pointer) { alda_assert(1, 1); } }")
	f.Add("analysis bad { on on on")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse(src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out1 := printer.Print(prog)
		prog2, err := parser.Parse(out1)
		if err != nil {
			t.Fatalf("printer output does not re-parse: %v\n--- printed ---\n%s\n--- original ---\n%s", err, out1, src)
		}
		out2 := printer.Print(prog2)
		if out1 != out2 {
			t.Fatalf("print is not a fixed point\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	})
}
