package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang/ast"
)

// listing1 is the paper's Listing 1 (Eraser) verbatim modulo the named
// constants the original assumes.
const listing1 = `
const VIRGIN = 0
const EXCLUSIVE = 1
const SHARED = 2
const SHARED_MODIFIED = 3

address := pointer : sync
tid := threadid : 4
lid := lockid : 256
status := int8

thread2WLock = universe::map(tid, set(lid))
thread2Lock = universe::map(tid, set(lid))
addr2Lock = universe::map(address, universe::set(lid))
addr2Thread = universe::map(address, set(tid))
addr2Status = universe::map(address, status)

onLoad(address addr, tid t) {
    if (!addr2Thread[addr].find(t) && addr2Status[addr] != VIRGIN) {
        if (addr2Status[addr] == EXCLUSIVE) { addr2Status[addr] = SHARED; }
        addr2Thread[addr].add(t);
    }
    if (addr2Status[addr] > EXCLUSIVE) {
        addr2Lock[addr] = addr2Lock[addr] & thread2Lock[t];
    }
}

onStore(address addr, tid t) {
    if (!addr2Thread[addr].find(t)) {
        addr2Thread[addr].add(t);
        if (addr2Status[addr] == SHARED) { addr2Status[addr] = SHARED_MODIFIED; }
        if (addr2Status[addr] == EXCLUSIVE) { addr2Status[addr] = SHARED_MODIFIED; }
        if (addr2Status[addr] == VIRGIN) { addr2Status[addr] = EXCLUSIVE; }
    } else {
        if (addr2Status[addr] == SHARED) { addr2Status[addr] = SHARED_MODIFIED; }
    }
    if (addr2Status[addr] > EXCLUSIVE)
    { addr2Lock[addr] = addr2Lock[addr] & thread2WLock[t]; }
}

insert after LoadInst call onLoad($1, $t)
insert after StoreInst call onStore($2, $t)
`

// listing2 is the paper's Listing 2 (MemorySanitizer core) with the
// store-arg order corrected (the published listing transposes them).
const listing2 = `
// Type Declaration
address := pointer
size := int64
label := int64
value := int8
// Metadata Declaration
addr2label = universe::map(address, value)
addr2size = map(address, size)
// Event Handler Declaration
onMalloc(address ptr, size s) {
    addr2label.set(ptr, s, -1);
    addr2size[ptr] = s;
}
onFree(address ptr) {
    if (addr2size[ptr]) {
        addr2label.set(ptr, -1, addr2size[ptr]);
        addr2size[ptr] = 0;
    }
}
onAlloca(address ptr, size s)
{ addr2label.set(ptr, -1, s); }
onStore(address ptr, label l, size s)
{ addr2label.set(ptr, l, s); }
label onLoad(address ptr, size s)
{ return addr2label.get(ptr, s); }
onBranch(label l)
{ alda_assert( l, 0 ) ; }
// Insertion Point Declaration
insert after AllocaInst call onAlloca($r, sizeof($r))
insert after func free call onFree($1)
insert after func malloc call onMalloc($r, $1)
insert after LoadInst call onLoad($1, sizeof($r))
insert after StoreInst call onStore($2, $1.m, sizeof($1))
insert before BranchInst call onBranch($1.m)
`

func TestParseListing1(t *testing.T) {
	prog, err := Parse(listing1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := len(prog.ConstDecls()); got != 4 {
		t.Errorf("consts = %d", got)
	}
	if got := len(prog.TypeDecls()); got != 4 {
		t.Errorf("types = %d", got)
	}
	if got := len(prog.MetaDecls()); got != 5 {
		t.Errorf("metas = %d", got)
	}
	if got := len(prog.FuncDecls()); got != 2 {
		t.Errorf("funcs = %d", got)
	}
	if got := len(prog.InsertDecls()); got != 2 {
		t.Errorf("inserts = %d", got)
	}

	addr := prog.TypeDecls()[0]
	if addr.Name != "address" || addr.Prim != ast.Pointer || !addr.Sync {
		t.Errorf("address decl wrong: %+v", addr)
	}
	lid := prog.TypeDecls()[2]
	if lid.Domain != 256 {
		t.Errorf("lid domain = %d", lid.Domain)
	}

	a2l := prog.MetaDecls()[2]
	if !a2l.Type.IsMap || a2l.Type.Key != "address" || !a2l.Type.Value.IsSet {
		t.Errorf("addr2Lock shape wrong: %s", a2l.Type)
	}
	if a2l.Type.Spec != ast.Universe || a2l.Type.Value.Spec != ast.Universe {
		t.Errorf("addr2Lock universe specs wrong")
	}

	onLoad := prog.FuncDecls()[0]
	if onLoad.Name != "onLoad" || len(onLoad.Params) != 2 || onLoad.Result != "" {
		t.Errorf("onLoad signature wrong: %+v", onLoad)
	}
	// First statement is the if with a && and ! condition.
	ifs, ok := onLoad.Body[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("first stmt is %T", onLoad.Body[0])
	}
	if _, ok := ifs.Cond.(*ast.BinaryExpr); !ok {
		t.Fatalf("cond is %T", ifs.Cond)
	}

	ins := prog.InsertDecls()[1]
	if !ins.After || ins.PointKind != ast.InstPoint || ins.Point != "StoreInst" {
		t.Errorf("insert decl wrong: %+v", ins)
	}
	if len(ins.Args) != 2 || ins.Args[0].Kind != ast.ArgOperand || ins.Args[0].Index != 2 ||
		ins.Args[1].Kind != ast.ArgThread {
		t.Errorf("insert args wrong: %+v", ins.Args)
	}
}

func TestParseListing2(t *testing.T) {
	prog, err := Parse(listing2)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := len(prog.FuncDecls()); got != 6 {
		t.Errorf("funcs = %d", got)
	}
	// onLoad has a result type.
	var onLoad *ast.FuncDecl
	for _, f := range prog.FuncDecls() {
		if f.Name == "onLoad" {
			onLoad = f
		}
	}
	if onLoad == nil || onLoad.Result != "label" {
		t.Fatalf("onLoad result wrong: %+v", onLoad)
	}
	ret, ok := onLoad.Body[0].(*ast.ReturnStmt)
	if !ok {
		t.Fatalf("onLoad body[0] is %T", onLoad.Body[0])
	}
	if _, ok := ret.Value.(*ast.MethodExpr); !ok {
		t.Fatalf("return value is %T", ret.Value)
	}

	// insert args with sizeof and .m
	var store *ast.InsertDecl
	for _, d := range prog.InsertDecls() {
		if d.Handler == "onStore" {
			store = d
		}
	}
	if store == nil {
		t.Fatal("no onStore insert")
	}
	if !store.Args[1].Meta || store.Args[1].Index != 1 {
		t.Errorf("$1.m parsed wrong: %+v", store.Args[1])
	}
	if !store.Args[2].Sizeof || store.Args[2].Index != 1 {
		t.Errorf("sizeof($1) parsed wrong: %+v", store.Args[2])
	}
}

func TestPrecedence(t *testing.T) {
	prog := MustParse(`t := int64
f(t a, t b) { return a + b * 2 == a & b | 3; }`)
	ret := prog.FuncDecls()[0].Body[0].(*ast.ReturnStmt)
	// Top must be ==? No: precedence: * then & then + | at level 4...
	// a + (b*2) and (a&b): level check — == binds loosest of these.
	top, ok := ret.Value.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("top is %T", ret.Value)
	}
	if top.Op.String() != "==" {
		t.Fatalf("top op = %s", top.Op)
	}
}

func TestElseIfChain(t *testing.T) {
	prog := MustParse(`t := int64
f(t a) {
    if (a == 1) { a; } else if (a == 2) { a; } else { a; }
}`)
	ifs := prog.FuncDecls()[0].Body[0].(*ast.IfStmt)
	inner, ok := ifs.Else[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("else-if is %T", ifs.Else[0])
	}
	if len(inner.Else) != 1 {
		t.Fatal("final else missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"x := float32", "expected primitive type"},
		{"insert sideways LoadInst call f()", "expected 'before' or 'after'"},
		{"insert after BogusInst call f()", "unknown instruction insertion point"},
		{"t := int64\nf(t a) { if a { a; } }", "expected ("},
		{"insert after LoadInst call f($q)", "unknown call-arg"},
		{"t := int64 : 0", "domain must be positive"},
		{"m = map(k,)", "expected map, set or type name"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %q, want substring %q", c.src, err.Error(), c.want)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	// One broken declaration must not hide the next one.
	src := `x := float32
good := int64
f(good a) { return a; }`
	prog, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(prog.FuncDecls()) != 1 {
		t.Fatalf("recovery failed: funcs = %d", len(prog.FuncDecls()))
	}
}

// Property: the parser terminates without panicking on arbitrary input.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInsertPointNames(t *testing.T) {
	for _, p := range InstPoints() {
		if !IsInstPoint(p) {
			t.Errorf("%s not recognized", p)
		}
	}
	if IsInstPoint("NopeInst") {
		t.Error("NopeInst recognized")
	}
}
