// Package parser implements a recursive-descent parser for ALDA.
//
// The parser accepts the grammar of Figure 2 of the paper plus two
// extensions required to write the paper's own listings: `const`
// declarations for named states (Listing 1 uses VIRGIN/EXCLUSIVE/...)
// and `else` blocks on if statements. It produces position-tagged
// errors and recovers at statement boundaries so a single mistake does
// not hide the rest of the file.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/lexer"
	"repro/internal/lang/token"
)

// Error is a syntax error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty list of parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

type parser struct {
	toks   []token.Token
	pos    int
	errors ErrorList
}

// Parse parses an ALDA source file. On syntax errors it returns a
// partial program together with an ErrorList.
func Parse(src string) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(src)
	p := &parser{toks: toks}
	for _, le := range lexErrs {
		p.errors = append(p.errors, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	prog := p.parseProgram()
	if len(p.errors) > 0 {
		return prog, p.errors
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for embedded,
// test-covered analysis sources.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(format string, args ...any) {
	p.errors = append(p.errors, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

// syncTop skips tokens until a plausible start of a new top-level
// declaration.
func (p *parser) syncTop() {
	depth := 0
	for {
		switch p.cur().Kind {
		case token.EOF:
			return
		case token.LBRACE:
			depth++
		case token.RBRACE:
			if depth > 0 {
				depth--
			}
			p.next()
			if depth == 0 {
				return
			}
			continue
		case token.INSERT, token.CONST:
			if depth == 0 {
				return
			}
		case token.IDENT:
			if depth == 0 {
				switch p.peek().Kind {
				case token.DECLARE, token.ASSIGN:
					return
				}
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		nerr := len(p.errors)
		d := p.parseDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
		if len(p.errors) > nerr {
			p.syncTop()
		}
	}
	return prog
}

func (p *parser) parseDecl() ast.Decl {
	switch p.cur().Kind {
	case token.CONST:
		return p.parseConstDecl()
	case token.INSERT:
		return p.parseInsertDecl()
	case token.IDENT:
		switch p.peek().Kind {
		case token.DECLARE:
			return p.parseTypeDecl()
		case token.ASSIGN:
			return p.parseMetaDecl()
		default:
			return p.parseFuncDecl()
		}
	default:
		p.errorf("expected declaration, found %s", p.cur())
		p.next()
		return nil
	}
}

func (p *parser) parseInt() int64 {
	neg := p.accept(token.SUB)
	t := p.expect(token.INT)
	v, err := strconv.ParseInt(t.Lit, 0, 64)
	if err != nil {
		// Try as unsigned (e.g. 0xffffffffffffffff) then reinterpret.
		u, uerr := strconv.ParseUint(t.Lit, 0, 64)
		if uerr != nil {
			p.errorf("invalid integer literal %q", t.Lit)
			return 0
		}
		v = int64(u)
	}
	if neg {
		v = -v
	}
	return v
}

func (p *parser) parseTypeDecl() ast.Decl {
	name := p.expect(token.IDENT)
	p.expect(token.DECLARE)
	d := &ast.TypeDecl{NamePos: name.Pos, Name: name.Lit}
	switch t := p.cur(); t.Kind {
	case token.INT8:
		d.Prim = ast.Int8
	case token.INT16:
		d.Prim = ast.Int16
	case token.INT32:
		d.Prim = ast.Int32
	case token.INT64:
		d.Prim = ast.Int64
	case token.POINTER:
		d.Prim = ast.Pointer
	case token.LOCKID:
		d.Prim = ast.LockID
	case token.THREADID:
		d.Prim = ast.ThreadID
	default:
		p.errorf("expected primitive type, found %s", t)
		return d
	}
	p.next()
	for p.accept(token.COLON) {
		switch {
		case p.at(token.SYNC):
			p.next()
			d.Sync = true
		case p.at(token.INT):
			d.Domain = p.parseInt()
			if d.Domain <= 0 {
				p.errorf("type domain must be positive, got %d", d.Domain)
			}
		default:
			p.errorf("expected 'sync' or domain size after ':', found %s", p.cur())
			return d
		}
	}
	p.accept(token.SEMICOLON)
	return d
}

func (p *parser) parseConstDecl() ast.Decl {
	p.expect(token.CONST)
	name := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	v := p.parseInt()
	p.accept(token.SEMICOLON)
	return &ast.ConstDecl{NamePos: name.Pos, Name: name.Lit, Value: v}
}

func (p *parser) parseMetaDecl() ast.Decl {
	name := p.expect(token.IDENT)
	p.expect(token.ASSIGN)
	mt := p.parseMetaType()
	p.accept(token.SEMICOLON)
	return &ast.MetaDecl{NamePos: name.Pos, Name: name.Lit, Type: mt}
}

func (p *parser) parseMetaType() *ast.MetaType {
	mt := &ast.MetaType{}
	if p.at(token.UNIVERSE) || p.at(token.BOTTOM) {
		if p.cur().Kind == token.UNIVERSE {
			mt.Spec = ast.Universe
		} else {
			mt.Spec = ast.Bottom
		}
		p.next()
		p.expect(token.COLONPATH)
	}
	switch p.cur().Kind {
	case token.MAP:
		p.next()
		p.expect(token.LPAREN)
		key := p.expect(token.IDENT)
		p.expect(token.COMMA)
		val := p.parseMetaType()
		p.expect(token.RPAREN)
		mt.IsMap = true
		mt.Key = key.Lit
		mt.Value = val
	case token.SET:
		p.next()
		p.expect(token.LPAREN)
		elem := p.expect(token.IDENT)
		p.expect(token.RPAREN)
		mt.IsSet = true
		mt.Elem = elem.Lit
	case token.IDENT:
		mt.TypeName = p.next().Lit
	default:
		p.errorf("expected map, set or type name, found %s", p.cur())
	}
	return mt
}

func (p *parser) parseFuncDecl() ast.Decl {
	first := p.expect(token.IDENT)
	d := &ast.FuncDecl{NamePos: first.Pos}
	if p.at(token.IDENT) {
		d.Result = first.Lit
		d.Name = p.next().Lit
	} else {
		d.Name = first.Lit
	}
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		tname := p.expect(token.IDENT)
		pname := p.expect(token.IDENT)
		d.Params = append(d.Params, ast.Param{NamePos: pname.Pos, Type: tname.Lit, Name: pname.Lit})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	d.Body = p.parseBlock()
	return d
}

func (p *parser) parseBlock() []ast.Stmt {
	p.expect(token.LBRACE)
	var stmts []ast.Stmt
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		nerr := len(p.errors)
		s := p.parseStmt()
		if s != nil {
			stmts = append(stmts, s)
		}
		if len(p.errors) > nerr {
			p.syncStmt()
		}
	}
	p.expect(token.RBRACE)
	return stmts
}

// syncStmt skips to after the next ';' or to a '}' at the current level.
func (p *parser) syncStmt() {
	depth := 0
	for {
		switch p.cur().Kind {
		case token.EOF:
			return
		case token.SEMICOLON:
			p.next()
			if depth == 0 {
				return
			}
			continue
		case token.LBRACE:
			depth++
		case token.RBRACE:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.IF:
		return p.parseIf()
	case token.RETURN:
		pos := p.next().Pos
		var val ast.Expr
		if !p.at(token.SEMICOLON) && !p.at(token.RBRACE) {
			val = p.parseExpr()
		}
		p.accept(token.SEMICOLON)
		return &ast.ReturnStmt{RetPos: pos, Value: val}
	case token.SEMICOLON:
		p.next()
		return nil
	default:
		x := p.parseExprOrAssign()
		p.accept(token.SEMICOLON)
		if x == nil {
			return nil
		}
		return &ast.ExprStmt{X: x}
	}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	thenB := p.parseBlock()
	var elseB []ast.Stmt
	if p.accept(token.ELSE) {
		if p.at(token.IF) {
			elseB = []ast.Stmt{p.parseIf()}
		} else {
			elseB = p.parseBlock()
		}
	}
	return &ast.IfStmt{IfPos: pos, Cond: cond, Then: thenB, Else: elseB}
}

func (p *parser) parseExprOrAssign() ast.Expr {
	lhs := p.parseExpr()
	if p.accept(token.ASSIGN) {
		rhs := p.parseExpr()
		return &ast.AssignExpr{LHS: lhs, RHS: rhs}
	}
	return lhs
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := op.Precedence()
		if prec < minPrec || prec == 0 {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{X: x, Op: op, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.NOT:
		pos := p.next().Pos
		return &ast.UnaryExpr{OpPos: pos, Op: token.NOT, X: p.parseUnary()}
	case token.SUB:
		pos := p.next().Pos
		return &ast.UnaryExpr{OpPos: pos, Op: token.SUB, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBRACKET:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.DOT:
			p.next()
			// `set` is a keyword but also a legal method name
			// (Table 1: m.set(k, v, n)).
			var name token.Token
			if p.at(token.SET) {
				name = p.next()
				name.Lit = "set"
			} else {
				name = p.expect(token.IDENT)
			}
			p.expect(token.LPAREN)
			args := p.parseArgs()
			x = &ast.MethodExpr{Recv: x, Name: name.Lit, Args: args}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	var args []ast.Expr
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		args = append(args, p.parseExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	switch t := p.cur(); t.Kind {
	case token.IDENT:
		p.next()
		if p.accept(token.LPAREN) {
			args := p.parseArgs()
			return &ast.CallExpr{NamePos: t.Pos, Name: t.Lit, Args: args}
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(t.Lit, 0, 64)
			if uerr != nil {
				p.errorf("invalid integer literal %q", t.Lit)
			}
			v = int64(u)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.STRING:
		p.next()
		unq, err := strconv.Unquote(t.Lit)
		if err != nil {
			p.errorf("invalid string literal %s", t.Lit)
			unq = t.Lit
		}
		return &ast.StringLit{LitPos: t.Pos, Value: unq}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	default:
		p.errorf("expected expression, found %s", t)
		p.next()
		return &ast.IntLit{LitPos: t.Pos, Value: 0}
	}
}

// ---------------------------------------------------------------------------
// Insertion declarations

var instPoints = map[string]bool{
	"LoadInst":   true,
	"StoreInst":  true,
	"AllocaInst": true,
	"BranchInst": true,
	"CallInst":   true,
	"BinOpInst":  true,
	"CmpInst":    true,
	"LockInst":   true,
	"UnlockInst": true,
	"SpawnInst":  true,
	"JoinInst":   true,
	"RetInst":    true,
	// Pseudo-points: entry and exit of the whole program.
	"ProgramStart": true,
	"ProgramEnd":   true,
}

// IsInstPoint reports whether name is a recognized instruction insertion
// point.
func IsInstPoint(name string) bool { return instPoints[name] }

// InstPoints returns the recognized instruction insertion point names.
func InstPoints() []string {
	out := make([]string, 0, len(instPoints))
	for k := range instPoints {
		out = append(out, k)
	}
	return out
}

func (p *parser) parseInsertDecl() ast.Decl {
	pos := p.expect(token.INSERT).Pos
	d := &ast.InsertDecl{InsertPos: pos}
	switch {
	case p.accept(token.BEFORE):
		d.After = false
	case p.accept(token.AFTER):
		d.After = true
	default:
		p.errorf("expected 'before' or 'after', found %s", p.cur())
	}
	if p.accept(token.FUNC) {
		d.PointKind = ast.FuncPoint
		d.Point = p.expect(token.IDENT).Lit
	} else {
		name := p.expect(token.IDENT)
		d.PointKind = ast.InstPoint
		d.Point = name.Lit
		if !IsInstPoint(name.Lit) {
			p.errors = append(p.errors, &Error{Pos: name.Pos,
				Msg: fmt.Sprintf("unknown instruction insertion point %q", name.Lit)})
		}
	}
	p.expect(token.CALL)
	d.Handler = p.expect(token.IDENT).Lit
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		d.Args = append(d.Args, p.parseCallArg())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	p.accept(token.SEMICOLON)
	return d
}

func (p *parser) parseCallArg() ast.CallArg {
	pos := p.cur().Pos
	if p.at(token.SIZEOF) {
		p.next()
		p.expect(token.LPAREN)
		a := p.parseCallArgBase()
		p.expect(token.RPAREN)
		a.Sizeof = true
		a.ArgPos = pos
		return a
	}
	a := p.parseCallArgBase()
	a.ArgPos = pos
	if p.accept(token.DOT) {
		m := p.expect(token.IDENT)
		if m.Lit != "m" {
			p.errors = append(p.errors, &Error{Pos: m.Pos,
				Msg: fmt.Sprintf("expected .m (local metadata) suffix, found .%s", m.Lit)})
		}
		a.Meta = true
	}
	return a
}

func (p *parser) parseCallArgBase() ast.CallArg {
	p.expect(token.DOLLAR)
	switch t := p.cur(); t.Kind {
	case token.INT:
		p.next()
		n, err := strconv.Atoi(t.Lit)
		if err != nil || n < 1 {
			p.errorf("operand index must be a positive integer, got %q", t.Lit)
			n = 1
		}
		return ast.CallArg{Kind: ast.ArgOperand, Index: n}
	case token.IDENT:
		p.next()
		switch t.Lit {
		case "r":
			return ast.CallArg{Kind: ast.ArgReturn}
		case "t":
			return ast.CallArg{Kind: ast.ArgThread}
		case "p":
			return ast.CallArg{Kind: ast.ArgAll}
		}
		p.errorf("unknown call-arg $%s (want $<i>, $r, $t or $p)", t.Lit)
		return ast.CallArg{Kind: ast.ArgOperand, Index: 1}
	default:
		p.errorf("expected call-arg after $, found %s", t)
		return ast.CallArg{Kind: ast.ArgOperand, Index: 1}
	}
}
