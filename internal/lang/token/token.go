// Package token defines the lexical tokens of the ALDA language and
// source positions used across the frontend.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are contiguous between keywordBeg and
// keywordEnd so IsKeyword can test by range.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // onLoad, addr2Lock
	INT    // 12, -1, 0x1f
	STRING // "msg" (used by alda_assert messages and external calls)

	// Operators and delimiters.
	ASSIGN    // =
	DECLARE   // :=
	COLON     // :
	SEMICOLON // ;
	COMMA     // ,
	DOT       // .
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]

	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // & (set intersection / bitwise and)
	OR  // | (set union / bitwise or)
	XOR // ^

	SHL // <<
	SHR // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	DOLLAR    // $ (insertion call-arg prefix)
	COLONPATH // :: (universe:: / bottom::)

	keywordBeg
	// Declarations.
	CONST  // const
	INSERT // insert
	BEFORE // before
	AFTER  // after
	CALL   // call
	FUNC   // func
	RETURN // return
	IF     // if
	ELSE   // else

	// Primitive types.
	INT8     // int8
	INT16    // int16
	INT32    // int32
	INT64    // int64
	POINTER  // pointer
	LOCKID   // lockid
	THREADID // threadid

	// Metadata constructors and specifiers.
	MAP      // map
	SET      // set
	UNIVERSE // universe
	BOTTOM   // bottom
	SYNC     // sync
	SIZEOF   // sizeof
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INT:       "INT",
	STRING:    "STRING",
	ASSIGN:    "=",
	DECLARE:   ":=",
	COLON:     ":",
	SEMICOLON: ";",
	COMMA:     ",",
	DOT:       ".",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	LBRACKET:  "[",
	RBRACKET:  "]",
	ADD:       "+",
	SUB:       "-",
	MUL:       "*",
	QUO:       "/",
	REM:       "%",
	AND:       "&",
	OR:        "|",
	XOR:       "^",
	SHL:       "<<",
	SHR:       ">>",
	LAND:      "&&",
	LOR:       "||",
	NOT:       "!",
	EQL:       "==",
	NEQ:       "!=",
	LSS:       "<",
	LEQ:       "<=",
	GTR:       ">",
	GEQ:       ">=",
	DOLLAR:    "$",
	COLONPATH: "::",
	CONST:     "const",
	INSERT:    "insert",
	BEFORE:    "before",
	AFTER:     "after",
	CALL:      "call",
	FUNC:      "func",
	RETURN:    "return",
	IF:        "if",
	ELSE:      "else",
	INT8:      "int8",
	INT16:     "int16",
	INT32:     "int32",
	INT64:     "int64",
	POINTER:   "pointer",
	LOCKID:    "lockid",
	THREADID:  "threadid",
	MAP:       "map",
	SET:       "set",
	UNIVERSE:  "universe",
	BOTTOM:    "bottom",
	SYNC:      "sync",
	SIZEOF:    "sizeof",
}

// String returns the canonical spelling of the kind (or its name for
// classes like IDENT).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// IsPrimitiveType reports whether k names one of ALDA's six primitive
// types.
func (k Kind) IsPrimitiveType() bool {
	switch k {
	case INT8, INT16, INT32, INT64, POINTER, LOCKID, THREADID:
		return true
	}
	return false
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a line/column source position (1-based). A zero Pos is invalid.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is a lexeme with its kind and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, STRING, ILLEGAL
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, ILLEGAL:
		return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Lit, t.Pos)
	}
	return fmt.Sprintf("%s@%s", t.Kind, t.Pos)
}

// Precedence returns the binary-operator precedence for expression
// parsing, or 0 if k is not a binary operator. Mirrors C/Go ordering.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ, LSS, LEQ, GTR, GEQ:
		return 3
	case ADD, SUB, OR, XOR:
		return 4
	case MUL, QUO, REM, SHL, SHR, AND:
		return 5
	}
	return 0
}
