package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("map") != MAP || Lookup("sync") != SYNC || Lookup("int8") != INT8 {
		t.Fatal("keyword lookup broken")
	}
	if Lookup("foo") != IDENT {
		t.Fatal("non-keyword not IDENT")
	}
}

func TestIsKeywordAndPrimitive(t *testing.T) {
	for _, k := range []Kind{MAP, SET, SYNC, INSERT, IF, ELSE, SIZEOF, CONST} {
		if !k.IsKeyword() {
			t.Errorf("%v not keyword", k)
		}
	}
	if IDENT.IsKeyword() || ADD.IsKeyword() {
		t.Error("non-keyword classified as keyword")
	}
	for _, k := range []Kind{INT8, INT16, INT32, INT64, POINTER, LOCKID, THREADID} {
		if !k.IsPrimitiveType() {
			t.Errorf("%v not primitive", k)
		}
	}
	if MAP.IsPrimitiveType() {
		t.Error("map is not a primitive")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	if !(LOR.Precedence() < LAND.Precedence() &&
		LAND.Precedence() < EQL.Precedence() &&
		EQL.Precedence() < ADD.Precedence() &&
		ADD.Precedence() < MUL.Precedence()) {
		t.Fatal("precedence ordering wrong")
	}
	if LPAREN.Precedence() != 0 {
		t.Fatal("non-operator has precedence")
	}
	// & binds like *, | binds like + (C-ish but loop-free ALDA is fine
	// with this simplification and it matches the published examples).
	if AND.Precedence() != MUL.Precedence() || OR.Precedence() != ADD.Precedence() {
		t.Fatal("set-operator precedence wrong")
	}
}

func TestPosAndString(t *testing.T) {
	p := Pos{Line: 3, Col: 9}
	if p.String() != "3:9" || !p.IsValid() {
		t.Fatal("pos formatting")
	}
	var zero Pos
	if zero.IsValid() || zero.String() != "-" {
		t.Fatal("zero pos")
	}
	tok := Token{Kind: IDENT, Lit: "x", Pos: p}
	if tok.String() == "" {
		t.Fatal("token string empty")
	}
	if MAP.String() != "map" || ILLEGAL.String() != "ILLEGAL" {
		t.Fatal("kind strings")
	}
}
