package printer

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
)

const sample = `
const A = 1
address := pointer : sync
lid := lockid : 256
m = universe::map(address, universe::set(lid))
g = map(address, map(lid, address))

status h(address a, lid l, address b) {
    if (!m[a].find(l) && g[a][l] != A) {
        m[a].add(l);
    } else if (g[a][l] > 2) {
        g[a][l] = (a + b) * 2 - -l;
    } else {
        m[a] = m[a] & m[b];
        alda_assert(m[a].size(), 0, "boom");
    }
    return g[a][l] + helper(a, 3);
}

insert after LoadInst call h($1, $1, $1)
insert before func malloc call h($1, $2, sizeof($1))
insert after StoreInst call h($2, $1.m, $r)
`

func TestFormatIdempotent(t *testing.T) {
	once, err := Format(sample, parser.Parse)
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	twice, err := Format(once, parser.Parse)
	if err != nil {
		t.Fatalf("reformat: %v\n%s", err, once)
	}
	if once != twice {
		t.Fatalf("formatting not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	// The canonical form must parse to a program with the same shape.
	out, err := Format(sample, parser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := parser.Parse(sample)
	p2, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(p1.Decls) != len(p2.Decls) {
		t.Fatalf("decl count changed: %d vs %d", len(p1.Decls), len(p2.Decls))
	}
	for _, want := range []string{
		"address := pointer : sync",
		"lid := lockid : 256",
		"m[a] = m[a] & m[b]",
		"} else if (g[a][l] > 2) {",
		"insert after StoreInst call h($2, $1.m, $r)",
		"sizeof($1)",
		`alda_assert(m[a].size(), 0, "boom");`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatAllShippedAnalyses(t *testing.T) {
	// Every embedded analysis formats, reparses, and formats to a fixed
	// point. (Sources are fetched through the parser-facing embed in the
	// analyses package via the compiler's LOC path to avoid an import
	// cycle here; instead we just re-read them from disk.)
	for _, src := range shippedSources(t) {
		once, err := Format(src, parser.Parse)
		if err != nil {
			t.Fatalf("format: %v", err)
		}
		twice, err := Format(once, parser.Parse)
		if err != nil {
			t.Fatalf("reformat: %v", err)
		}
		if once != twice {
			t.Fatal("not idempotent on a shipped analysis")
		}
	}
}

func TestMinimalParentheses(t *testing.T) {
	src := `
t := int64
f(t a, t b) {
    g((a + b) * 2);
    g(a + b * 2);
    g((a + b) & (a - b));
}
`
	out, err := Format(src, parser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"g((a + b) * 2);",
		"g(a + b * 2);",
		"g((a + b) & (a - b));",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatErrors(t *testing.T) {
	if _, err := Format("x := float32", parser.Parse); err == nil {
		t.Fatal("expected parse error")
	}
}
