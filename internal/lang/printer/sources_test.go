package printer

import (
	"os"
	"path/filepath"
	"testing"
)

// shippedSources reads the embedded analyses' .alda files straight from
// the repository (importing internal/analyses here would be fine, but
// reading from disk keeps this package's dependencies frontend-only).
func shippedSources(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob("../../analyses/*.alda")
	if err != nil || len(paths) == 0 {
		t.Skipf("analysis sources not found: %v", err)
	}
	var out []string
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}
