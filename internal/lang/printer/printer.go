// Package printer renders ALDA ASTs back to canonical source text —
// the formatter behind cmd/aldafmt. Formatting is deterministic and
// idempotent: print(parse(print(parse(src)))) == print(parse(src)).
package printer

import (
	"fmt"
	"strings"

	"repro/internal/lang/ast"
)

// Print renders a program in canonical form: declarations in source
// order, four-space indentation, one statement per line, spaces around
// binary operators, and section-separating blank lines.
func Print(prog *ast.Program) string {
	p := &printer{}
	var prevKind string
	for _, d := range prog.Decls {
		kind := declKind(d)
		if prevKind != "" && kind != prevKind {
			p.nl()
		}
		p.decl(d)
		prevKind = kind
	}
	return p.b.String()
}

func declKind(d ast.Decl) string {
	switch d.(type) {
	case *ast.ConstDecl:
		return "const"
	case *ast.TypeDecl:
		return "type"
	case *ast.MetaDecl:
		return "meta"
	case *ast.FuncDecl:
		return "func"
	case *ast.InsertDecl:
		return "insert"
	}
	return "?"
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl()                       { p.b.WriteByte('\n') }
func (p *printer) line(s string)             { p.pad(); p.b.WriteString(s); p.nl() }
func (p *printer) pad()                      { p.b.WriteString(strings.Repeat("    ", p.indent)) }
func (p *printer) printf(f string, a ...any) { p.line(fmt.Sprintf(f, a...)) }

func (p *printer) decl(d ast.Decl) {
	switch x := d.(type) {
	case *ast.ConstDecl:
		p.printf("const %s = %d", x.Name, x.Value)
	case *ast.TypeDecl:
		s := fmt.Sprintf("%s := %s", x.Name, x.Prim)
		if x.Sync {
			s += " : sync"
		}
		if x.Domain > 0 {
			s += fmt.Sprintf(" : %d", x.Domain)
		}
		p.line(s)
	case *ast.MetaDecl:
		p.printf("%s = %s", x.Name, x.Type)
	case *ast.FuncDecl:
		p.funcDecl(x)
	case *ast.InsertDecl:
		p.insertDecl(x)
	}
}

func (p *printer) funcDecl(d *ast.FuncDecl) {
	var sig strings.Builder
	if d.Result != "" {
		sig.WriteString(d.Result)
		sig.WriteByte(' ')
	}
	sig.WriteString(d.Name)
	sig.WriteByte('(')
	for i, pr := range d.Params {
		if i > 0 {
			sig.WriteString(", ")
		}
		sig.WriteString(pr.Type + " " + pr.Name)
	}
	sig.WriteString(") {")
	p.line(sig.String())
	p.indent++
	p.stmts(d.Body)
	p.indent--
	p.line("}")
	p.nl()
}

func (p *printer) stmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.IfStmt:
		p.printf("if (%s) {", expr(x.Cond))
		p.indent++
		p.stmts(x.Then)
		p.indent--
		if len(x.Else) == 0 {
			p.line("}")
			return
		}
		// else-if chains render flat.
		if inner, ok := x.Else[0].(*ast.IfStmt); ok && len(x.Else) == 1 {
			p.pad()
			p.b.WriteString("} else ")
			p.ifTail(inner)
			return
		}
		p.line("} else {")
		p.indent++
		p.stmts(x.Else)
		p.indent--
		p.line("}")
	case *ast.ReturnStmt:
		if x.Value == nil {
			p.line("return;")
		} else {
			p.printf("return %s;", expr(x.Value))
		}
	case *ast.ExprStmt:
		p.printf("%s;", expr(x.X))
	}
}

// ifTail continues an `} else if ...` chain without re-indenting.
func (p *printer) ifTail(x *ast.IfStmt) {
	p.b.WriteString(fmt.Sprintf("if (%s) {\n", expr(x.Cond)))
	p.indent++
	p.stmts(x.Then)
	p.indent--
	if len(x.Else) == 0 {
		p.line("}")
		return
	}
	if inner, ok := x.Else[0].(*ast.IfStmt); ok && len(x.Else) == 1 {
		p.pad()
		p.b.WriteString("} else ")
		p.ifTail(inner)
		return
	}
	p.line("} else {")
	p.indent++
	p.stmts(x.Else)
	p.indent--
	p.line("}")
}

func (p *printer) insertDecl(d *ast.InsertDecl) {
	when := "before"
	if d.After {
		when = "after"
	}
	point := d.Point
	if d.PointKind == ast.FuncPoint {
		point = "func " + d.Point
	}
	args := make([]string, len(d.Args))
	for i, a := range d.Args {
		args[i] = callArg(a)
	}
	p.printf("insert %s %s call %s(%s)", when, point, d.Handler, strings.Join(args, ", "))
}

func callArg(a ast.CallArg) string {
	var base string
	switch a.Kind {
	case ast.ArgOperand:
		base = fmt.Sprintf("$%d", a.Index)
	case ast.ArgReturn:
		base = "$r"
	case ast.ArgThread:
		base = "$t"
	case ast.ArgAll:
		base = "$p"
	}
	if a.Sizeof {
		return "sizeof(" + base + ")"
	}
	if a.Meta {
		return base + ".m"
	}
	return base
}

// expr renders an expression with minimal parentheses: parens appear
// only where a child binds looser than (or equal to, on the right) its
// parent.
func expr(e ast.Expr) string { return exprPrec(e, 0) }

func exprPrec(e ast.Expr, parent int) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *ast.StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *ast.IndexExpr:
		return exprPrec(x.X, 9) + "[" + expr(x.Index) + "]"
	case *ast.MethodExpr:
		return exprPrec(x.Recv, 9) + "." + x.Name + "(" + argList(x.Args) + ")"
	case *ast.CallExpr:
		return x.Name + "(" + argList(x.Args) + ")"
	case *ast.UnaryExpr:
		return x.Op.String() + exprPrec(x.X, 8)
	case *ast.AssignExpr:
		return expr(x.LHS) + " = " + expr(x.RHS)
	case *ast.BinaryExpr:
		prec := x.Op.Precedence()
		s := exprPrec(x.X, prec-1) + " " + x.Op.String() + " " + exprPrec(x.Y, prec)
		if prec <= parent {
			return "(" + s + ")"
		}
		return s
	}
	return "?"
}

func argList(args []ast.Expr) string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = expr(a)
	}
	return strings.Join(out, ", ")
}

// Format parses-and-prints, reporting parse errors.
func Format(src string, parse func(string) (*ast.Program, error)) (string, error) {
	prog, err := parse(src)
	if err != nil {
		return "", err
	}
	return Print(prog), nil
}
