package ast

import "testing"

func TestMetaTypeString(t *testing.T) {
	mt := &MetaType{
		Spec:  Universe,
		IsMap: true,
		Key:   "address",
		Value: &MetaType{Spec: Universe, IsSet: true, Elem: "lid"},
	}
	if got := mt.String(); got != "universe::map(address, universe::set(lid))" {
		t.Fatalf("string = %q", got)
	}
	scalar := &MetaType{TypeName: "status"}
	if scalar.String() != "status" {
		t.Fatalf("scalar string = %q", scalar.String())
	}
}

func TestPrimType(t *testing.T) {
	if Int8.Bits() != 8 || Int16.Bits() != 16 || Int32.Bits() != 32 ||
		Int64.Bits() != 64 || Pointer.Bits() != 64 || LockID.Bits() != 64 {
		t.Fatal("bits wrong")
	}
	if Pointer.String() != "pointer" || ThreadID.String() != "threadid" {
		t.Fatal("names wrong")
	}
}

func TestDeclAccessors(t *testing.T) {
	p := &Program{Decls: []Decl{
		&TypeDecl{Name: "t"},
		&ConstDecl{Name: "C"},
		&MetaDecl{Name: "m", Type: &MetaType{TypeName: "t"}},
		&FuncDecl{Name: "f"},
		&InsertDecl{Handler: "f"},
	}}
	if len(p.TypeDecls()) != 1 || len(p.ConstDecls()) != 1 || len(p.MetaDecls()) != 1 ||
		len(p.FuncDecls()) != 1 || len(p.InsertDecls()) != 1 {
		t.Fatal("accessors miscount")
	}
}

func TestWalk(t *testing.T) {
	// m[a + 1].add(f(b)) — walk must visit every node once.
	e := &MethodExpr{
		Recv: &IndexExpr{
			X:     &Ident{Name: "m"},
			Index: &BinaryExpr{X: &Ident{Name: "a"}, Y: &IntLit{Value: 1}},
		},
		Name: "add",
		Args: []Expr{&CallExpr{Name: "f", Args: []Expr{&Ident{Name: "b"}}}},
	}
	count := 0
	Walk(e, func(Expr) { count++ })
	if count != 8 {
		t.Fatalf("walk visited %d nodes, want 8", count)
	}
}

func TestWalkStmts(t *testing.T) {
	stmts := []Stmt{
		&IfStmt{
			Cond: &Ident{Name: "c"},
			Then: []Stmt{&ExprStmt{X: &Ident{Name: "x"}}},
			Else: []Stmt{&ReturnStmt{Value: &Ident{Name: "y"}}},
		},
	}
	var names []string
	WalkStmts(stmts, func(e Expr) {
		if id, ok := e.(*Ident); ok {
			names = append(names, id.Name)
		}
	})
	if len(names) != 3 {
		t.Fatalf("visited idents: %v", names)
	}
}
