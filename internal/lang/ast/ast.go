// Package ast declares the abstract syntax tree for ALDA programs.
//
// The tree mirrors the grammar of Figure 2 in the paper: a program is a
// sequence of type declarations, metadata declarations, constant
// declarations, event-handler (function) declarations, and insertion
// declarations.
package ast

import (
	"strings"

	"repro/internal/lang/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Program and declarations

// Program is a parsed ALDA source file (possibly several concatenated
// analyses, per §6.4.2).
type Program struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// PrimType enumerates ALDA's primitive types.
type PrimType int

// Primitive types (§4.1).
const (
	Int8 PrimType = iota
	Int16
	Int32
	Int64
	Pointer
	LockID
	ThreadID
)

var primNames = [...]string{"int8", "int16", "int32", "int64", "pointer", "lockid", "threadid"}

func (p PrimType) String() string { return primNames[p] }

// Bits returns the storage width of the primitive in bits. Pointer,
// lockid and threadid are modeled as 64-bit.
func (p PrimType) Bits() int {
	switch p {
	case Int8:
		return 8
	case Int16:
		return 16
	case Int32:
		return 32
	}
	return 64
}

// TypeDecl is `name := prim (: sync)? (: N)?` — a named type with optional
// synchronization requirement and optional domain-size bound.
type TypeDecl struct {
	NamePos token.Pos
	Name    string
	Prim    PrimType
	Sync    bool
	Domain  int64 // 0 ⇒ unbounded
}

func (d *TypeDecl) Pos() token.Pos { return d.NamePos }
func (d *TypeDecl) declNode()      {}

// ConstDecl is `const NAME = intexpr` (extension; Listing 1 relies on
// named states such as VIRGIN/EXCLUSIVE).
type ConstDecl struct {
	NamePos token.Pos
	Name    string
	Value   int64
}

func (d *ConstDecl) Pos() token.Pos { return d.NamePos }
func (d *ConstDecl) declNode()      {}

// Specifier is the initial-state qualifier on a metadata declaration.
type Specifier int

// Initial-state specifiers (§4.2).
const (
	Bottom   Specifier = iota // empty / zero (also the ε default)
	Universe                  // initially contains the whole domain
)

func (s Specifier) String() string {
	if s == Universe {
		return "universe::"
	}
	return "bottom::"
}

// MetaType is the type of a metadata declaration: a named scalar type, a
// set, or a (possibly nested) map.
type MetaType struct {
	Spec Specifier

	// Exactly one of the following shapes:
	//  Scalar: TypeName != ""
	//  Set:    IsSet, Elem != ""
	//  Map:    IsMap, Key != "", Value != nil
	TypeName string
	IsSet    bool
	Elem     string
	IsMap    bool
	Key      string
	Value    *MetaType
}

// String renders the meta-type in source syntax.
func (m *MetaType) String() string {
	var b strings.Builder
	if m.Spec == Universe {
		b.WriteString("universe::")
	}
	switch {
	case m.IsMap:
		b.WriteString("map(")
		b.WriteString(m.Key)
		b.WriteString(", ")
		b.WriteString(m.Value.String())
		b.WriteString(")")
	case m.IsSet:
		b.WriteString("set(")
		b.WriteString(m.Elem)
		b.WriteString(")")
	default:
		b.WriteString(m.TypeName)
	}
	return b.String()
}

// MetaDecl is `name = metatype` — a global metadata object.
type MetaDecl struct {
	NamePos token.Pos
	Name    string
	Type    *MetaType
}

func (d *MetaDecl) Pos() token.Pos { return d.NamePos }
func (d *MetaDecl) declNode()      {}

// Param is an event-handler parameter.
type Param struct {
	NamePos token.Pos
	Type    string // named type
	Name    string
}

// FuncDecl is an event-handler declaration. Result is the optional return
// type name ("" for none).
type FuncDecl struct {
	NamePos token.Pos
	Result  string
	Name    string
	Params  []Param
	Body    []Stmt
}

func (d *FuncDecl) Pos() token.Pos { return d.NamePos }
func (d *FuncDecl) declNode()      {}

// InsertPointKind distinguishes instruction events from function-call
// events.
type InsertPointKind int

// Insertion point kinds.
const (
	InstPoint InsertPointKind = iota // LoadInst, StoreInst, ...
	FuncPoint                        // func malloc
)

// CallArgKind enumerates Table 2's call-arg syntax.
type CallArgKind int

// Call-arg base kinds.
const (
	ArgOperand CallArgKind = iota // $i   — i-th operand / parameter
	ArgReturn                     // $r   — return value
	ArgThread                     // $t   — current thread id
	ArgAll                        // $p   — all operands (expands)
)

// CallArg is one argument in an insertion declaration's call list:
// a base ($i/$r/$t/$p) optionally wrapped in sizeof(...) or suffixed .m
// (local metadata).
type CallArg struct {
	ArgPos token.Pos
	Kind   CallArgKind
	Index  int  // for ArgOperand: 1-based operand index
	Meta   bool // $X.m
	Sizeof bool // sizeof($X)
}

// InsertDecl is `insert (before|after) point call f(args)`.
type InsertDecl struct {
	InsertPos token.Pos
	After     bool // false ⇒ before
	PointKind InsertPointKind
	Point     string // instruction name (e.g. "LoadInst") or function name
	Handler   string
	Args      []CallArg
}

func (d *InsertDecl) Pos() token.Pos { return d.InsertPos }
func (d *InsertDecl) declNode()      {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement inside an event-handler body. ALDA permits only if
// statements, return statements and expression statements (§4.3).
type Stmt interface {
	Node
	stmtNode()
}

// IfStmt is `if (cond) { .. } (else { .. })?`. Else may be nil.
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  []Stmt
	Else  []Stmt
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (s *IfStmt) stmtNode()      {}

// ReturnStmt is `return expr?;`.
type ReturnStmt struct {
	RetPos token.Pos
	Value  Expr // may be nil
}

func (s *ReturnStmt) Pos() token.Pos { return s.RetPos }
func (s *ReturnStmt) stmtNode()      {}

// ExprStmt is an expression evaluated for effect (assignment, method
// call, external call).
type ExprStmt struct {
	X Expr
}

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *ExprStmt) stmtNode()      {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident refers to a parameter, metadata object, or named constant.
type Ident struct {
	NamePos token.Pos
	Name    string
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Ident) exprNode()      {}

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Pos
	Value  int64
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) exprNode()      {}

// StringLit is a string literal (external-call arguments only).
type StringLit struct {
	LitPos token.Pos
	Value  string // unquoted
}

func (e *StringLit) Pos() token.Pos { return e.LitPos }
func (e *StringLit) exprNode()      {}

// IndexExpr is `m[k]` — a metadata map lookup.
type IndexExpr struct {
	X     Expr // the map (Ident or nested IndexExpr)
	Index Expr
}

func (e *IndexExpr) Pos() token.Pos { return e.X.Pos() }
func (e *IndexExpr) exprNode()      {}

// CallExpr is `f(args)` — builtin (alda_assert, ptr_offset) or external
// function call.
type CallExpr struct {
	NamePos token.Pos
	Name    string
	Args    []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.NamePos }
func (e *CallExpr) exprNode()      {}

// MethodExpr is `recv.name(args)` — a map/set builtin method such as
// add, remove, find, set, get, size.
type MethodExpr struct {
	Recv Expr
	Name string
	Args []Expr
}

func (e *MethodExpr) Pos() token.Pos { return e.Recv.Pos() }
func (e *MethodExpr) exprNode()      {}

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind // NOT or SUB
	X     Expr
}

func (e *UnaryExpr) Pos() token.Pos { return e.OpPos }
func (e *UnaryExpr) exprNode()      {}

// BinaryExpr is `x op y` for arithmetic, comparison, logical, and
// set-union/intersection operators.
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()      {}

// AssignExpr is `lhs = rhs` where lhs is an IndexExpr (metadata store).
type AssignExpr struct {
	LHS Expr
	RHS Expr
}

func (e *AssignExpr) Pos() token.Pos { return e.LHS.Pos() }
func (e *AssignExpr) exprNode()      {}

// ---------------------------------------------------------------------------
// Helpers

// TypeDecls returns the program's type declarations in order.
func (p *Program) TypeDecls() []*TypeDecl {
	var out []*TypeDecl
	for _, d := range p.Decls {
		if t, ok := d.(*TypeDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// MetaDecls returns the program's metadata declarations in order.
func (p *Program) MetaDecls() []*MetaDecl {
	var out []*MetaDecl
	for _, d := range p.Decls {
		if t, ok := d.(*MetaDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// FuncDecls returns the program's handler declarations in order.
func (p *Program) FuncDecls() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range p.Decls {
		if t, ok := d.(*FuncDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// InsertDecls returns the program's insertion declarations in order.
func (p *Program) InsertDecls() []*InsertDecl {
	var out []*InsertDecl
	for _, d := range p.Decls {
		if t, ok := d.(*InsertDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// ConstDecls returns the program's constant declarations in order.
func (p *Program) ConstDecls() []*ConstDecl {
	var out []*ConstDecl
	for _, d := range p.Decls {
		if t, ok := d.(*ConstDecl); ok {
			out = append(out, t)
		}
	}
	return out
}

// Walk calls fn for every expression node reachable from e, parents
// before children.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *MethodExpr:
		Walk(x.Recv, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *UnaryExpr:
		Walk(x.X, fn)
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *AssignExpr:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	}
}

// WalkStmts calls walkExpr for every expression in the statement list and
// recurses into nested if bodies.
func WalkStmts(stmts []Stmt, walkExpr func(Expr)) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *IfStmt:
			Walk(st.Cond, walkExpr)
			WalkStmts(st.Then, walkExpr)
			WalkStmts(st.Else, walkExpr)
		case *ReturnStmt:
			Walk(st.Value, walkExpr)
		case *ExprStmt:
			Walk(st.X, walkExpr)
		}
	}
}
