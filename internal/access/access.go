// Package access implements ALDAcc's static analysis phase (§3.2.1):
// it identifies every metadata access site in every event handler,
// canonicalizes the key expressions so later phases can tell when two
// look-ups use the same key, and conservatively records accesses under
// branches as occurring (the paper's compiler "conservatively assumes
// all branches will occur").
//
// The results feed two optimizations: metadata co-location decisions
// (which maps are accessed together with equal keys) and metadata
// lookup CSE (§5.4).
package access

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/sema"
	"repro/internal/lang/token"
)

// Site is one metadata access in a handler body.
type Site struct {
	Meta *sema.MetaObj
	// KeyClasses canonicalizes each key expression in order. Impure keys
	// (containing calls) get a unique "!" class so they never CSE.
	KeyClasses []string
	// UnderBranch records whether the access sits inside an if body.
	UnderBranch bool
	// Write records whether the site stores (assignment LHS, add/remove,
	// set/fill).
	Write bool
}

// HandlerAccess is the access summary of one handler.
type HandlerAccess struct {
	Handler *sema.Handler
	Sites   []Site
}

// CoKey names a pair of metadata objects accessed with an equal key
// class in the same handler — the co-location signal.
type CoKey struct{ A, B string }

// Result is the whole-program access summary.
type Result struct {
	PerHandler map[string]*HandlerAccess
	// CoAccess counts, per metadata pair (A < B lexically), how many
	// handlers access both with the same key class.
	CoAccess map[CoKey]int
}

// Analyze runs the access analysis over every handler.
func Analyze(info *sema.Info) *Result {
	res := &Result{
		PerHandler: make(map[string]*HandlerAccess),
		CoAccess:   make(map[CoKey]int),
	}
	for _, h := range info.HandlerOrder {
		ha := &HandlerAccess{Handler: h}
		a := &analyzer{info: info, ha: ha, uniq: 0}
		a.stmts(h.Decl.Body, false)
		res.PerHandler[h.Name] = ha

		// Co-access: group this handler's sites by first key class.
		byClass := make(map[string]map[string]bool)
		for _, s := range ha.Sites {
			if len(s.KeyClasses) == 0 || strings.HasPrefix(s.KeyClasses[0], "!") {
				continue
			}
			set := byClass[s.KeyClasses[0]]
			if set == nil {
				set = make(map[string]bool)
				byClass[s.KeyClasses[0]] = set
			}
			set[s.Meta.Name] = true
		}
		for _, metas := range byClass {
			names := make([]string, 0, len(metas))
			for n := range metas {
				names = append(names, n)
			}
			sort.Strings(names)
			for i := 0; i < len(names); i++ {
				for j := i + 1; j < len(names); j++ {
					res.CoAccess[CoKey{names[i], names[j]}]++
				}
			}
		}
	}
	return res
}

type analyzer struct {
	info *sema.Info
	ha   *HandlerAccess
	uniq int
}

func (a *analyzer) stmts(stmts []ast.Stmt, underBranch bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.IfStmt:
			a.expr(st.Cond, underBranch, false)
			a.stmts(st.Then, true)
			a.stmts(st.Else, true)
		case *ast.ReturnStmt:
			if st.Value != nil {
				a.expr(st.Value, underBranch, false)
			}
		case *ast.ExprStmt:
			a.expr(st.X, underBranch, false)
		}
	}
}

// expr records access sites within e. write marks whether e is being
// stored to.
func (a *analyzer) expr(e ast.Expr, underBranch, write bool) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		// Record only leaf accesses: the full key chain.
		vt := a.info.ExprTypes[e]
		if vt.Meta != nil && vt.Kind != sema.KMapRef {
			keys := a.keyChain(x)
			a.ha.Sites = append(a.ha.Sites, Site{
				Meta:        vt.Meta,
				KeyClasses:  keys,
				UnderBranch: underBranch,
				Write:       write,
			})
		}
		// Keys themselves may contain accesses.
		a.expr(x.Index, underBranch, false)
		if inner, ok := x.X.(*ast.IndexExpr); ok {
			a.expr(inner.Index, underBranch, false)
		}
	case *ast.AssignExpr:
		a.expr(x.LHS, underBranch, true)
		a.expr(x.RHS, underBranch, false)
	case *ast.UnaryExpr:
		a.expr(x.X, underBranch, false)
	case *ast.BinaryExpr:
		a.expr(x.X, underBranch, false)
		a.expr(x.Y, underBranch, false)
	case *ast.MethodExpr:
		recvT := a.info.ExprTypes[x.Recv]
		isWrite := x.Name == "add" || x.Name == "remove" || x.Name == "set" || x.Name == "clear"
		switch recvT.Kind {
		case sema.KSet:
			a.expr(x.Recv, underBranch, isWrite)
		case sema.KMapRef:
			// map.set(k,...)/get(k,...): the key is the first argument.
			if len(x.Args) > 0 && recvT.Meta != nil {
				keys := a.recvKeyChain(x.Recv)
				keys = append(keys, a.classify(x.Args[0]))
				a.ha.Sites = append(a.ha.Sites, Site{
					Meta:        recvT.Meta,
					KeyClasses:  keys,
					UnderBranch: underBranch,
					Write:       isWrite,
				})
			}
		}
		for _, arg := range x.Args {
			a.expr(arg, underBranch, false)
		}
	case *ast.CallExpr:
		for _, arg := range x.Args {
			a.expr(arg, underBranch, false)
		}
	case *ast.Ident:
		vt := a.info.ExprTypes[e]
		if vt.Meta != nil && !vt.Meta.IsMap() {
			a.ha.Sites = append(a.ha.Sites, Site{
				Meta:        vt.Meta,
				UnderBranch: underBranch,
				Write:       write,
			})
		}
	}
}

// keyChain canonicalizes the index expressions of a full map access,
// outermost key first.
func (a *analyzer) keyChain(e *ast.IndexExpr) []string {
	var rev []string
	cur := ast.Expr(e)
	for {
		ix, ok := cur.(*ast.IndexExpr)
		if !ok {
			break
		}
		rev = append(rev, a.classify(ix.Index))
		cur = ix.X
	}
	// rev is innermost-first; reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// recvKeyChain canonicalizes the keys of a (possibly partially indexed)
// map receiver.
func (a *analyzer) recvKeyChain(e ast.Expr) []string {
	if ix, ok := e.(*ast.IndexExpr); ok {
		return a.keyChain(ix)
	}
	return nil
}

func (a *analyzer) classify(e ast.Expr) string {
	return Classify(a.info, e, &a.uniq)
}

// Classify returns the canonical class of a key expression. Two
// occurrences with the same class are guaranteed to evaluate to the same
// value within one handler invocation (handler bodies cannot mutate
// parameters, and metadata reads are treated as impure to stay sound).
// Impure expressions get a unique class starting with "!", drawn from
// the caller's counter.
func Classify(info *sema.Info, e ast.Expr, uniq *int) string {
	unique := func() string {
		*uniq++
		return fmt.Sprintf("!%d", *uniq)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Consts[x.Name]; ok {
			return fmt.Sprintf("c%d", v)
		}
		vt := info.ExprTypes[e]
		if vt.Meta != nil {
			return unique()
		}
		return "p:" + x.Name
	case *ast.IntLit:
		return fmt.Sprintf("c%d", x.Value)
	case *ast.UnaryExpr:
		inner := Classify(info, x.X, uniq)
		if strings.HasPrefix(inner, "!") {
			return inner
		}
		return x.Op.String() + inner
	case *ast.BinaryExpr:
		l, r := Classify(info, x.X, uniq), Classify(info, x.Y, uniq)
		if strings.HasPrefix(l, "!") || strings.HasPrefix(r, "!") {
			return unique()
		}
		return "(" + l + x.Op.String() + r + ")"
	case *ast.CallExpr:
		// ptr_offset with pure args is pure.
		if x.Name == sema.BuiltinPtrOffset && len(x.Args) == 2 {
			l, r := Classify(info, x.Args[0], uniq), Classify(info, x.Args[1], uniq)
			if !strings.HasPrefix(l, "!") && !strings.HasPrefix(r, "!") {
				return "(" + l + token.ADD.String() + r + ")"
			}
		}
		return unique()
	}
	return unique()
}
