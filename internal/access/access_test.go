package access

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lang/sema"
)

func analyze(t *testing.T, src string) (*sema.Info, *Result) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info, Analyze(info)
}

const src = `
address := pointer
tid := threadid : 8
v := int64
status = map(address, v)
owner = map(address, v)
other = map(tid, v)
h(address a, tid t) {
    status[a] = status[a] + 1;
    owner[a] = 2;
    if (status[a] > 1) {
        other[t] = 1;
    }
}
insert after LoadInst call h($1, $t)
`

func TestSites(t *testing.T) {
	_, res := analyze(t, src)
	ha := res.PerHandler["h"]
	if ha == nil {
		t.Fatal("no handler summary")
	}
	// status[a] write + read + read-under-branch, owner[a] write,
	// other[t] write.
	var statusSites, ownerSites, otherSites, writes, underBranch int
	for _, s := range ha.Sites {
		switch s.Meta.Name {
		case "status":
			statusSites++
		case "owner":
			ownerSites++
		case "other":
			otherSites++
		}
		if s.Write {
			writes++
		}
		if s.UnderBranch {
			underBranch++
		}
	}
	if statusSites != 3 || ownerSites != 1 || otherSites != 1 {
		t.Errorf("sites: status=%d owner=%d other=%d", statusSites, ownerSites, otherSites)
	}
	if writes != 3 {
		t.Errorf("writes = %d", writes)
	}
	if underBranch != 1 {
		t.Errorf("under-branch = %d", underBranch)
	}
}

func TestKeyClasses(t *testing.T) {
	_, res := analyze(t, src)
	ha := res.PerHandler["h"]
	classes := map[string]bool{}
	for _, s := range ha.Sites {
		if len(s.KeyClasses) == 1 {
			classes[s.KeyClasses[0]] = true
		}
	}
	if !classes["p:a"] || !classes["p:t"] {
		t.Errorf("classes: %v", classes)
	}
}

func TestCoAccess(t *testing.T) {
	_, res := analyze(t, src)
	// status and owner share key class p:a in handler h.
	if res.CoAccess[CoKey{"owner", "status"}] != 1 {
		t.Errorf("co-access: %v", res.CoAccess)
	}
	if res.CoAccess[CoKey{"other", "status"}] != 0 {
		t.Errorf("other should not co-access with status: %v", res.CoAccess)
	}
}

func TestClassifyPurity(t *testing.T) {
	info, _ := analyze(t, src)
	prog, _ := parser.Parse(`
address := pointer
v := int64
m = map(address, v)
n = map(v, v)
h(address a) {
    m[a + 8] = 1;
    m[a + 8] = 2;
    n[m[a]] = 3;
}
insert after LoadInst call h($1)
`)
	info2, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(info2)
	ha := res.PerHandler["h"]
	// The two m[a+8] sites share a class; the m[m[a]] site is impure.
	counts := map[string]int{}
	for _, s := range ha.Sites {
		counts[s.KeyClasses[0]]++
	}
	pureShared := 0
	impure := 0
	for c, n := range counts {
		if strings.HasPrefix(c, "!") {
			impure++
		} else if n >= 2 {
			pureShared = n
		}
	}
	if pureShared < 2 {
		t.Errorf("arith key not shared: %v", counts)
	}
	if impure == 0 {
		t.Errorf("metadata-dependent key not unique: %v", counts)
	}
	_ = info
}

func TestRangeMethodSites(t *testing.T) {
	_, res := analyze(t, `
address := pointer
size := int64
v := int8
m = map(address, v)
h(address p, size n) {
    m.set(p, 1, n);
    m.get(p, n);
}
insert after LoadInst call h($1, $1)
`)
	ha := res.PerHandler["h"]
	if len(ha.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(ha.Sites))
	}
	if !ha.Sites[0].Write || ha.Sites[1].Write {
		t.Errorf("write flags wrong: %+v", ha.Sites)
	}
}
