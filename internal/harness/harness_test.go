package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/workloads"
)

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{4, 9}); math.Abs(g-6) > 1e-9 {
		t.Fatalf("geomean(4,9) = %v", g)
	}
	if g := geomean([]float64{5}); math.Abs(g-5) > 1e-9 {
		t.Fatalf("geomean(5) = %v", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Fatalf("geomean with zero = %v", g)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "test table",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Workload: "w1", BaseWall: time.Millisecond, Overheads: []float64{2, 4}},
			{Workload: "w2", BaseWall: 2 * time.Millisecond, Overheads: []float64{4, 8}},
		},
	}
	tbl.computeAverages()
	if tbl.Averages[0] != 3 || tbl.Averages[1] != 6 {
		t.Fatalf("averages = %v", tbl.Averages)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"test table", "w1", "3.00x", "6.00x", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable3AndTable4(t *testing.T) {
	cfg := Config{Size: workloads.SizeTiny, Reps: 1}
	rows3, err := Table3(cfg)
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	if len(rows3) != 5 {
		t.Fatalf("table3 rows = %d", len(rows3))
	}
	// The gets() programs split the two implementations; the planted
	// bugs are caught by both.
	for _, r := range rows3 {
		switch r.Program {
		case "fmm", "barnes":
			if r.ALDAHit || !r.HandHit {
				t.Errorf("%s: alda=%v hand=%v", r.Program, r.ALDAHit, r.HandHit)
			}
		default:
			if !r.ALDAHit || !r.HandHit {
				t.Errorf("%s: alda=%v hand=%v", r.Program, r.ALDAHit, r.HandHit)
			}
		}
	}

	rows4, err := Table4(cfg)
	if err != nil {
		t.Fatalf("table4: %v", err)
	}
	if len(rows4) != 8 {
		t.Fatalf("table4 rows = %d", len(rows4))
	}
}

func TestLibSan(t *testing.T) {
	out, err := LibSan(Config{Size: workloads.SizeTiny, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("libsan cases = %d", len(out))
	}
	for _, r := range out {
		if !r.Found {
			t.Errorf("%s missed %s/%s", r.Sanitizer, r.Workload, r.Bug)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	var buf bytes.Buffer
	tbl, err := Fig4(Config{Size: workloads.SizeTiny, Reps: 1, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 || len(tbl.Columns) != 3 {
		t.Fatalf("fig4 shape: %d rows, %d cols", len(tbl.Rows), len(tbl.Columns))
	}
	for _, r := range tbl.Rows {
		for i, o := range r.Overheads {
			if o <= 0 {
				t.Errorf("%s col %d overhead %v", r.Workload, i, o)
			}
		}
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("missing title")
	}
}

func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	var buf bytes.Buffer
	tbl, err := Fig5(Config{Size: workloads.SizeTiny, Reps: 1, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 || len(tbl.Columns) != 7 {
		t.Fatalf("fig5 shape: %d rows, %d cols", len(tbl.Rows), len(tbl.Columns))
	}
	// Combined must beat the sum on average (the §6.4.2 claim).
	if tbl.Averages[6] >= tbl.Averages[4] {
		t.Errorf("combined (%0.2f) not faster than sum (%0.2f)", tbl.Averages[6], tbl.Averages[4])
	}
}

func TestPGOSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tbl, err := PGO(Config{Size: workloads.SizeTiny, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 || len(tbl.Columns) != 2 {
		t.Fatalf("pgo shape: %d rows %d cols", len(tbl.Rows), len(tbl.Columns))
	}
}

func TestMemSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Mem(Config{Size: workloads.SizeTiny, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("mem rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HandBytes == 0 || r.ALDABytes == 0 {
			t.Errorf("%s: zero footprint", r.Workload)
		}
		ratio := float64(r.ALDABytes) / float64(r.HandBytes)
		if r.PGOBytes > 0 {
			ratio = float64(r.PGOBytes) / float64(r.HandBytes)
		}
		if ratio > 2.5 {
			t.Errorf("%s: footprint ratio %.2f too far from parity", r.Workload, ratio)
		}
	}
}

func TestGranularitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tbl, err := Granularity(Config{Size: workloads.SizeTiny, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || len(tbl.Columns) != 4 {
		t.Fatalf("gran shape: %d rows %d cols", len(tbl.Rows), len(tbl.Columns))
	}
}

func TestFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tbl, err := Fig3(Config{Size: workloads.SizeTiny, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 20 || len(tbl.Columns) != 2 {
		t.Fatalf("fig3 shape: %d rows %d cols", len(tbl.Rows), len(tbl.Columns))
	}
	for _, r := range tbl.Rows {
		for i, o := range r.Overheads {
			if o <= 1.0 {
				t.Errorf("%s col %d: overhead %.2f <= 1 (instrumentation cannot be free)", r.Workload, i, o)
			}
		}
	}
}
