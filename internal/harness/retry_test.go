package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vm"
)

// TestRetryScheduleDeterministic: the schedule is a pure function of
// the policy — same seed, same waits, every time. No sleeping involved.
func TestRetryScheduleDeterministic(t *testing.T) {
	p := retryPolicy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Budget: 30 * time.Second, Seed: 42}
	var a, b []time.Duration
	for try := 0; try < 8; try++ {
		d1, ok1 := p.delay(try, 0)
		d2, ok2 := p.delay(try, 0)
		if !ok1 || !ok2 {
			t.Fatalf("try %d: schedule exhausted unexpectedly", try)
		}
		a, b = append(a, d1), append(b, d2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("try %d: schedule not deterministic (%v vs %v)", i, a[i], b[i])
		}
	}
}

// TestRetryJitterBounds: each wait lands in [d/2, d] for the pre-jitter
// doubling d, capped at Max — equal jitter keeps a floor under the
// backoff while decorrelating colliding cells.
func TestRetryJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	max := 2 * time.Second
	for seed := uint64(0); seed < 50; seed++ {
		p := retryPolicy{Base: base, Max: max, Seed: seed}
		for try := 0; try < 10; try++ {
			pre := base
			for i := 0; i < try; i++ {
				pre *= 2
				if pre >= max {
					pre = max
					break
				}
			}
			d, ok := p.delay(try, 0)
			if !ok {
				t.Fatalf("seed %d try %d: exhausted without a budget", seed, try)
			}
			if d < pre/2 || d > pre {
				t.Fatalf("seed %d try %d: delay %v outside [%v, %v]", seed, try, d, pre/2, pre)
			}
		}
	}
}

// TestRetryDistinctSeedsDecorrelate: two cells with different seeds
// must not share the identical schedule (the thundering-herd fix).
func TestRetryDistinctSeedsDecorrelate(t *testing.T) {
	p1 := retryPolicy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: cellRetrySeed("fig4", "fft/ALDAcc-full")}
	p2 := retryPolicy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: cellRetrySeed("fig4", "fft/base")}
	same := true
	for try := 0; try < 6; try++ {
		d1, _ := p1.delay(try, 0)
		d2, _ := p2.delay(try, 0)
		if d1 != d2 {
			same = false
		}
	}
	if same {
		t.Fatal("distinct cells produced identical jittered schedules")
	}
}

// TestRetryBudgetCutsSchedule: once the accumulated wait would cross
// the budget, the schedule reports exhaustion.
func TestRetryBudgetCutsSchedule(t *testing.T) {
	p := retryPolicy{Base: 100 * time.Millisecond, Max: time.Second, Budget: 300 * time.Millisecond, Seed: 7}
	var spent time.Duration
	waits := 0
	for try := 0; try < 100; try++ {
		d, ok := p.delay(try, spent)
		if !ok {
			break
		}
		spent += d
		waits++
	}
	if spent > p.Budget {
		t.Fatalf("schedule overspent its budget: %v > %v", spent, p.Budget)
	}
	if waits == 0 || waits >= 100 {
		t.Fatalf("waits = %d, want a small positive count bounded by the budget", waits)
	}
}

// TestRetryMaxBackoffCaps: the pre-jitter wait stops doubling at Max
// and never overflows even for absurd try counts.
func TestRetryMaxBackoffCaps(t *testing.T) {
	p := retryPolicy{Base: 100 * time.Millisecond, Max: time.Second, Seed: 3}
	for _, try := range []int{5, 20, 63, 200} {
		d, ok := p.delay(try, 0)
		if !ok {
			t.Fatalf("try %d: exhausted without a budget", try)
		}
		if d <= 0 || d > time.Second {
			t.Fatalf("try %d: delay %v outside (0, Max]", try, d)
		}
	}
	// No Max: deep tries must saturate, not wrap negative.
	pn := retryPolicy{Base: time.Second, Seed: 3}
	if d, ok := pn.delay(200, 0); !ok || d <= 0 {
		t.Fatalf("uncapped deep try: delay %v ok=%v, want positive", d, ok)
	}
}

// TestMeasureCellRetriesUseJitteredSchedule: the sweep path sleeps the
// policy's waits, verified through the clock seam without real sleeps.
func TestMeasureCellRetriesUseJitteredSchedule(t *testing.T) {
	var slept []time.Duration
	oldSleep := retrySleep
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	defer func() { retrySleep = oldSleep }()

	var attempts atomic.Int64
	cfg := Config{Virtual: true, Parallelism: 1, Retries: 3,
		RetryBackoff: 100 * time.Millisecond, Out: &bytes.Buffer{}, KeepGoing: true}
	_, err := cfg.withDefaults().runGrid(fakeGrid(func() (*vm.Result, error) {
		attempts.Add(1)
		return nil, &vm.RunError{Kind: vm.KindDeadline, Msg: "deadline exceeded"}
	}))
	if err != nil {
		t.Fatalf("KeepGoing grid aborted: %v", err)
	}
	if attempts.Load() != 4 {
		t.Fatalf("attempts = %d, want 4 (initial + 3 retries)", attempts.Load())
	}
	if len(slept) != 3 {
		t.Fatalf("sleeps = %d, want 3", len(slept))
	}
	for i, d := range slept {
		pre := 100 * time.Millisecond << i
		if d < pre/2 || d > pre {
			t.Fatalf("sleep %d = %v outside jitter window [%v, %v]", i, d, pre/2, pre)
		}
	}
}

// TestSweepDeadlineStopsRetries: a retry whose wait would cross the
// sweep deadline is abandoned immediately — the drain contract.
func TestSweepDeadlineStopsRetries(t *testing.T) {
	oldSleep := retrySleep
	retrySleep = func(d time.Duration) { t.Fatalf("slept %v past the sweep deadline", d) }
	defer func() { retrySleep = oldSleep }()

	var attempts atomic.Int64
	var buf bytes.Buffer
	cfg := Config{Virtual: true, Parallelism: 1, Retries: 5,
		RetryBackoff:  time.Hour, // any wait crosses the deadline below
		SweepDeadline: time.Now().Add(time.Millisecond),
		Out:           &buf, KeepGoing: true}
	_, err := cfg.withDefaults().runGrid(fakeGrid(func() (*vm.Result, error) {
		attempts.Add(1)
		return nil, &vm.RunError{Kind: vm.KindDeadline, Msg: "deadline exceeded"}
	}))
	if err != nil {
		t.Fatalf("KeepGoing grid aborted: %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry past the sweep deadline)", attempts.Load())
	}
	if !bytes.Contains(buf.Bytes(), []byte("ERR(Deadline)")) {
		t.Fatalf("abandoned cell did not degrade:\n%s", buf.String())
	}
}

// TestWriteFileAtomic: the atomic whole-file write lands complete
// contents and replaces an existing file in one step.
func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdr.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "two" {
		t.Fatalf("contents = %q, want %q", b, "two")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (no temp litter)", len(entries))
	}
}

// TestCheckpointWriterSyncBatching: appends survive the batched-sync
// discipline (records readable after close, explicit sync mid-stream
// legal), and the batch counter resets across syncs.
func TestCheckpointWriterSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	w, err := newCheckpointWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < checkpointSyncEvery+3; i++ {
		if err := w.append(checkpointRecord{Grid: "g", Cell: "c", Fp: "fp", WallNS: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := w.sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs, err := loadCheckpoint(path, "g", "fp")
	if err != nil {
		t.Fatal(err)
	}
	// Same cell key each time: the last record wins, proving the full
	// stream parsed.
	if rec, ok := recs["c"]; !ok || rec.WallNS != int64(checkpointSyncEvery+2) {
		t.Fatalf("resumed record = %+v ok=%v, want last append", recs["c"], ok)
	}
}
