package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestObsGoldenVirtual pins the -virtual observability surface byte for
// byte: the rendered attribution table and the deterministic metrics
// JSON for two tiny workloads. The VM is deterministic, so any drift
// here is a real behavior change (an opcode added to a hot path, a
// container picking a different impl, a hook firing more often), not
// noise — exactly the class of change that should show up in review.
func TestObsGoldenVirtual(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	cfg := Config{
		Size:        workloads.SizeTiny,
		Reps:        1,
		Out:         &buf,
		Parallelism: 1,
		Virtual:     true,
		Metrics:     reg,
		Opt:         core.RunOptions{Seed: 1},
	}
	if _, err := Attrib(cfg, "uaf", []string{"bzip2", "fft"}); err != nil {
		t.Fatalf("attrib: %v", err)
	}
	checkGolden(t, "attrib_uaf_tiny", buf.String())

	var js bytes.Buffer
	if err := reg.WriteJSON(&js, false); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	checkGolden(t, "metrics_uaf_tiny", js.String())
}

// TestMetricsPromGoldenVirtual pins the Prometheus text exposition of
// the same deterministic sweep: the format aldabench -metrics-out
// FILE.prom emits. The export is validated with the strict in-repo
// parser before pinning, so the golden can never encode an exposition
// a real scraper would reject.
func TestMetricsPromGoldenVirtual(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	cfg := Config{
		Size:        workloads.SizeTiny,
		Reps:        1,
		Out:         &buf,
		Parallelism: 1,
		Virtual:     true,
		Metrics:     reg,
		Opt:         core.RunOptions{Seed: 1},
	}
	if _, err := Attrib(cfg, "uaf", []string{"bzip2", "fft"}); err != nil {
		t.Fatalf("attrib: %v", err)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom, false); err != nil {
		t.Fatalf("metrics prom: %v", err)
	}
	if _, err := obs.ValidatePromText(prom.Bytes()); err != nil {
		t.Fatalf("exposition fails its own validator: %v", err)
	}
	checkGolden(t, "metrics_uaf_tiny_prom", prom.String())
}

// fig4Metrics runs Figure 4 at tiny/virtual with the given parallelism
// and checkpoint settings and returns the deterministic metrics export.
func fig4Metrics(t *testing.T, parallelism int, ckpt string, resume bool) string {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		Size:           workloads.SizeTiny,
		Reps:           1,
		Parallelism:    parallelism,
		Virtual:        true,
		Metrics:        reg,
		Opt:            core.RunOptions{Seed: 1},
		CheckpointPath: ckpt,
		Resume:         resume,
	}
	if _, err := Fig4(cfg); err != nil {
		t.Fatalf("fig4 (parallelism=%d resume=%v): %v", parallelism, resume, err)
	}
	var js bytes.Buffer
	if err := reg.WriteJSON(&js, false); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	return js.String()
}

// TestMetricsDeterministicAcrossModes asserts the deterministic counter
// export is byte-identical whether the sweep ran serially, fanned out
// across workers, or was interrupted and resumed from a truncated
// checkpoint — the shard-merge discipline is commutative addition, so
// scheduling must not leak into the numbers.
func TestMetricsDeterministicAcrossModes(t *testing.T) {
	serial := fig4Metrics(t, 1, "", false)

	if parallel := fig4Metrics(t, 8, "", false); parallel != serial {
		t.Errorf("parallel sweep metrics differ from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}

	ckpt := filepath.Join(t.TempDir(), "fig4.ckpt.jsonl")
	if full := fig4Metrics(t, 4, ckpt, false); full != serial {
		t.Errorf("checkpointing sweep metrics differ from serial:\n--- serial ---\n%s--- checkpointed ---\n%s", serial, full)
	}

	// Simulate an interrupted sweep: keep only the first few checkpoint
	// records, then resume. Resumed cells merge their recorded counts;
	// the rest re-run live.
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	var trunc []byte
	for i := 0; i < 7 && i < len(lines); i++ {
		trunc = append(trunc, lines[i]...)
	}
	if err := os.WriteFile(ckpt, trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	if resumed := fig4Metrics(t, 4, ckpt, true); resumed != serial {
		t.Errorf("resumed sweep metrics differ from serial:\n--- serial ---\n%s--- resumed ---\n%s", serial, resumed)
	}
}

// TestProfileRoundTripPGO is the -profile-out/-profile-in E2E: collect
// a profile, write it to disk, read it back, and check the PGO
// experiment renders the identical table whether it trains inline or
// consumes the file.
func TestProfileRoundTripPGO(t *testing.T) {
	static, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	train, err := workloads.Build("libquantum", workloads.SizeTiny)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	prof, err := core.CollectProfile(static, train, core.RunOptions{Seed: 1})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(prof.Counts) == 0 {
		t.Fatal("collected profile is empty")
	}

	path := filepath.Join(t.TempDir(), "msan.profile.json")
	if err := prof.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := compiler.ReadProfileFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(prof.Counts, loaded.Counts) {
		t.Fatalf("profile round trip mismatch:\nwrote %v\nread  %v", prof.Counts, loaded.Counts)
	}

	render := func(p *compiler.Profile) string {
		var buf bytes.Buffer
		cfg := Config{
			Size:        workloads.SizeTiny,
			Reps:        1,
			Out:         &buf,
			Parallelism: 4,
			Virtual:     true,
			Opt:         core.RunOptions{Seed: 1},
			PGOProfile:  p,
		}
		if _, err := PGO(cfg); err != nil {
			t.Fatalf("pgo (profile=%v): %v", p != nil, err)
		}
		return buf.String()
	}
	inline := render(nil)
	fromFile := render(loaded)
	if inline != fromFile {
		t.Errorf("PGO table differs between inline training and -profile-in:\n--- inline ---\n%s--- from file ---\n%s", inline, fromFile)
	}
}
