package harness

import (
	"bytes"
	"testing"

	"repro/internal/workloads"
)

// Virtual-table goldens over real experiment runs. Unlike the rendering
// goldens in golden_test.go (hand-built tables), these execute actual
// workload×analysis grids in Virtual mode and pin the byte-exact output
// — verdicts, step-derived timings and table layout. They are the
// regression gate for data-structure swaps: a container rewrite must
// not move a single step count, hook count or report, so these files
// must never need -update for a pure-optimization PR.
func virtualGridConfig() Config {
	return Config{
		Size:        workloads.SizeTiny,
		Virtual:     true,
		Parallelism: 4,
	}
}

func TestVirtualGoldenFig4(t *testing.T) {
	cfg := virtualGridConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if _, err := Fig4(cfg); err != nil {
		t.Fatalf("fig4: %v", err)
	}
	checkGolden(t, "virtual_fig4_tiny", buf.String())
}

func TestVirtualGoldenFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("combined-analysis grid is the slow one; skipped in -short")
	}
	cfg := virtualGridConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if _, err := Fig5(cfg); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	checkGolden(t, "virtual_fig5_tiny", buf.String())
}

func TestVirtualGoldenGranularity(t *testing.T) {
	cfg := virtualGridConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if _, err := Granularity(cfg); err != nil {
		t.Fatalf("gran: %v", err)
	}
	checkGolden(t, "virtual_gran_tiny", buf.String())
}
