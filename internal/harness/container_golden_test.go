package harness

import (
	"bytes"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// Virtual-table goldens over real experiment runs. Unlike the rendering
// goldens in golden_test.go (hand-built tables), these execute actual
// workload×analysis grids in Virtual mode and pin the byte-exact output
// — verdicts, step-derived timings and table layout. They are the
// regression gate for data-structure swaps: a container rewrite must
// not move a single step count, hook count or report, so these files
// must never need -update for a pure-optimization PR.
func virtualGridConfig() Config {
	return Config{
		Size:        workloads.SizeTiny,
		Virtual:     true,
		Parallelism: 4,
	}
}

func TestVirtualGoldenFig4(t *testing.T) {
	cfg := virtualGridConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if _, err := Fig4(cfg); err != nil {
		t.Fatalf("fig4: %v", err)
	}
	checkGolden(t, "virtual_fig4_tiny", buf.String())
}

func TestVirtualGoldenFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("combined-analysis grid is the slow one; skipped in -short")
	}
	cfg := virtualGridConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if _, err := Fig5(cfg); err != nil {
		t.Fatalf("fig5: %v", err)
	}
	checkGolden(t, "virtual_fig5_tiny", buf.String())
}

func TestVirtualGoldenGranularity(t *testing.T) {
	cfg := virtualGridConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	if _, err := Granularity(cfg); err != nil {
		t.Fatalf("gran: %v", err)
	}
	checkGolden(t, "virtual_gran_tiny", buf.String())
}

// TestVirtualGoldenThreadedEngine reruns the virtual grids under the
// closure-threaded execution tier and pins them against the SAME golden
// files the interpreter produced: virtual time is steps + 16·hooks and
// both counters are part of the tiers' determinism contract, so
// -engine=threaded must not move a byte of any rendered table. This is
// the harness-level engine differential — never -update these from a
// threaded run.
func TestVirtualGoldenThreadedEngine(t *testing.T) {
	grids := []struct {
		name   string
		golden string
		run    func(Config) error
	}{
		{"fig4", "virtual_fig4_tiny", func(c Config) error { _, err := Fig4(c); return err }},
		{"gran", "virtual_gran_tiny", func(c Config) error { _, err := Granularity(c); return err }},
	}
	for _, g := range grids {
		g := g
		t.Run(g.name, func(t *testing.T) {
			cfg := virtualGridConfig()
			cfg.Engine = vm.EngineThreaded
			var buf bytes.Buffer
			cfg.Out = &buf
			if err := g.run(cfg); err != nil {
				t.Fatalf("%s: %v", g.name, err)
			}
			checkGolden(t, g.golden, buf.String())
		})
	}
}
