package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/obs"
)

// Overhead attribution: instead of reporting one opaque overhead factor
// per workload (Figure 4's view), split each cell's instrumented-minus
// -baseline time into where it went — hook dispatch by event category,
// and residual dispatch/bookkeeping — plus the container traffic the
// hooks generated. Under -virtual the split is exact: virtual time is
// steps + 16·hookCalls by construction, so the hook portion is 16·calls
// and the residual is precisely the extra instructions instrumentation
// inserted. Under wall clock the hook portion comes from per-handler
// timing (Config.Opt.TimeHooks) and is clamped to the measured delta.

// attribCategories are the fixed hook-cost columns; hooks categorized
// "life" or "mixed" (and anything unknown) fold into "other".
var attribCategories = [...]string{"mem", "alloc", "sync", "call", "ctrl", "other"}

func attribCatIndex(cat string) int {
	for i, c := range attribCategories {
		if c == cat {
			return i
		}
	}
	return len(attribCategories) - 1
}

// AttribRow is one workload's overhead attribution.
type AttribRow struct {
	Program     string
	Base        time.Duration
	Inst        time.Duration
	Overhead    float64
	Hook        time.Duration                  // portion of the delta spent in hook handlers
	Dispatch    time.Duration                  // residual: inserted instructions, bookkeeping
	Shares      [len(attribCategories)]float64 // hook portion by category, percent
	GetPerKStep float64                        // container reads per 1000 instrumented steps
	SetPerKStep float64                        // container writes per 1000 instrumented steps
	Err         string                         // non-empty: a cell failed, rest of the row is void
}

// AttribTable is a rendered attribution report.
type AttribTable struct {
	Title   string
	Virtual bool
	Rows    []AttribRow
}

// DefaultAttribPrograms is the workload set -attrib measures when none
// is given.
func DefaultAttribPrograms() []string {
	return []string{"bzip2", "mcf", "fft", "sort", "memcached"}
}

// Attrib measures baseline and instrumented cells for each program and
// attributes the overhead. Cells fan out across Config.Parallelism like
// any grid; with Config.Metrics set the per-cell counters also merge
// into the registry, and virtual-mode tables are deterministic.
func Attrib(cfg Config, analysis string, programs []string) (*AttribTable, error) {
	cfg = cfg.withDefaults()
	if len(programs) == 0 {
		programs = DefaultAttribPrograms()
	}
	a, err := analyses.Compile(analysis, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	catOf := make(map[string]string)
	names := a.HandlerNames()
	for i, c := range a.HookCategories() {
		catOf[names[i]] = c
	}

	n := len(programs) * 2 // (base, inst) per program
	walls := make([]time.Duration, n)
	shards := make([]*obs.Shard, n)
	cellErrs := make([]error, n)
	err = cfg.forEachCell(n, func(i int) (err error) {
		program := programs[i/2]
		inst := i%2 == 1
		kind := "base"
		if inst {
			kind = "inst"
		}
		defer func() {
			if r := recover(); r != nil {
				err = &cellFailure{kind: "panic", msg: fmt.Sprintf("panic: %v", r)}
			}
			if err != nil {
				cellErrs[i] = err
				cfg.noteCell(nil, nil, 0, 0, err)
				err = fmt.Errorf("attrib %s/%s: %w", program, kind, err)
			}
		}()
		cc := cfg
		sh := obs.NewShard()
		cc.Opt.Metrics = sh
		cc.Opt.TimeHooks = !cfg.Virtual
		if cfg.Trace != nil {
			cc.Opt.Trace = cfg.Trace
			cc.Opt.TraceTID = int64(i)
		}
		var fn runnerFn
		if inst {
			fn, err = cc.runnerALDA(a, program)
		} else {
			fn, err = cc.runnerPlain(program)
		}
		if err != nil {
			return err
		}
		start := time.Now()
		w, _, err := cc.measure(fn)
		if cfg.Trace != nil {
			cfg.Trace.Span("harness", "attrib/"+program+"/"+kind, int64(i), start, time.Since(start))
		}
		if err != nil {
			return err
		}
		walls[i], shards[i] = w, sh
		cfg.noteCell(sh, nil, w, 0, nil)
		return nil
	})
	if err != nil && !cfg.KeepGoing {
		return nil, err
	}

	mode := "wall"
	if cfg.Virtual {
		mode = "virtual"
	}
	runs := uint64(1)
	if !cfg.Virtual {
		runs = uint64(cfg.Reps) + 1 // measure() runs warm-up + Reps
	}
	t := &AttribTable{
		Title:   fmt.Sprintf("Overhead attribution: %s (size=%s, %s)", analysis, cfg.Size, mode),
		Virtual: cfg.Virtual,
	}
	for pi, program := range programs {
		bi, ii := pi*2, pi*2+1
		if e := cellErrs[bi]; e != nil {
			t.Rows = append(t.Rows, AttribRow{Program: program, Err: errKindLabel(e)})
			continue
		}
		if e := cellErrs[ii]; e != nil {
			t.Rows = append(t.Rows, AttribRow{Program: program, Err: errKindLabel(e)})
			continue
		}
		row := attribRow(program, walls[bi], walls[ii], shards[ii], catOf, cfg.Virtual, runs)
		t.Rows = append(t.Rows, row)
	}
	t.Render(cfg.Out)
	return t, nil
}

// attribRow splits one program's measured delta using the instrumented
// cell's counters.
func attribRow(program string, base, inst time.Duration, sh *obs.Shard, catOf map[string]string, virtual bool, runs uint64) AttribRow {
	row := AttribRow{Program: program, Base: base, Inst: inst}
	if base > 0 {
		row.Overhead = float64(inst) / float64(base)
	}

	var callsByCat, nsByCat [len(attribCategories)]uint64
	var totalCalls, totalNS uint64
	for k, v := range sh.Counts {
		rest, ok := strings.CutPrefix(k, "vm.hook.")
		if !ok {
			continue
		}
		if name, ok := strings.CutSuffix(rest, ".calls"); ok {
			ci := attribCatIndex(catOf[name])
			callsByCat[ci] += v
			totalCalls += v
		}
	}
	for k, v := range sh.Volatile {
		rest, ok := strings.CutPrefix(k, "vm.hook.")
		if !ok {
			continue
		}
		if name, ok := strings.CutSuffix(rest, ".ns"); ok {
			ci := attribCatIndex(catOf[name])
			nsByCat[ci] += v
			totalNS += v
		}
	}

	delta := inst - base
	if delta < 0 {
		delta = 0
	}
	switch {
	case virtual:
		// Exact: virtualWall charges 16 units per dispatched hook.
		row.Hook = time.Duration(16 * totalCalls)
		if totalCalls > 0 {
			for i := range row.Shares {
				row.Shares[i] = 100 * float64(callsByCat[i]) / float64(totalCalls)
			}
		}
	case totalNS > 0:
		row.Hook = time.Duration(totalNS / runs)
		for i := range row.Shares {
			row.Shares[i] = 100 * float64(nsByCat[i]) / float64(totalNS)
		}
	case totalCalls > 0:
		// Hook timing unavailable: attribute the whole delta to hooks,
		// split by call counts.
		row.Hook = delta
		for i := range row.Shares {
			row.Shares[i] = 100 * float64(callsByCat[i]) / float64(totalCalls)
		}
	}
	if row.Hook > delta {
		row.Hook = delta // wall-clock noise can make timed hooks exceed the delta
	}
	row.Dispatch = delta - row.Hook

	instSteps := sh.Counts["vm.steps"] / runs
	var gets, sets uint64
	for k, v := range sh.Counts {
		rest, ok := strings.CutPrefix(k, "meta.")
		if !ok {
			continue
		}
		switch rest[strings.LastIndexByte(rest, '.')+1:] {
		case "get":
			gets += v
		case "set":
			sets += v
		}
	}
	if instSteps > 0 {
		row.GetPerKStep = 1000 * float64(gets/runs) / float64(instSteps)
		row.SetPerKStep = 1000 * float64(sets/runs) / float64(instSteps)
	}
	return row
}

// Render writes the attribution table as fixed-width text.
func (t *AttribTable) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-12s %12s %12s %9s %12s %12s", "program", "base", "inst", "overhead", "hooks", "dispatch")
	for _, c := range attribCategories {
		fmt.Fprintf(w, " %7s", c+"%")
	}
	fmt.Fprintf(w, " %8s %8s\n", "get/ks", "set/ks")
	for _, r := range t.Rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-12s %12s\n", r.Program, errCell(r.Err))
			continue
		}
		fmt.Fprintf(w, "%-12s %12s %12s %8.2fx %12s %12s",
			r.Program, r.Base, r.Inst, r.Overhead, r.Hook, r.Dispatch)
		for _, s := range r.Shares {
			fmt.Fprintf(w, " %6.1f%%", s)
		}
		fmt.Fprintf(w, " %8.1f %8.1f\n", r.GetPerKStep, r.SetPerKStep)
	}
	fmt.Fprintln(w)
}
