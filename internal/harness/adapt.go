package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Adaptive PGO — the closed loop over the §3.2.1 profile machinery. The
// PGO experiment measures a hand-wired train-then-recompile pipeline;
// this experiment closes the loop the way a deployment would run it:
// the adaptive column spends its first AdaptAfter programs as a
// profiling quantum (static layout plus access counters, the counter
// overhead measured honestly), then the collected profile is folded
// through AdaptOptions into a cached recompile and the adapted analysis
// is hot-swapped in for every remaining cell.
//
// The swap is deterministic and resume-safe by construction: the
// adapted analysis is a pure function of the training workloads and the
// bounded step budget, recomputed identically by whichever cell worker
// first needs it — at any parallelism, and on a resumed sweep that
// restored every profiling cell from its checkpoint.

// AdaptPrograms is the adaptive experiment's workload family: the
// MSan-shaped programs of the PGO study, training program first so the
// default one-program quantum trains on the same workload the PGO
// experiment does.
var AdaptPrograms = []string{"libquantum", "bzip2", "mcf", "hmmer", "fft", "sort", "memcached"}

// adaptAnalysis names the analysis the adaptive loop tunes. MSan is the
// paper's profile-guided showcase: its hot shadow map and cold
// allocation-size sidecar coalesce statically and split under profile.
const adaptAnalysis = "msan"

// adaptState resolves the adapted analysis exactly once per sweep;
// concurrent cell workers share the resolution through the Once, and
// the compile itself lands in the process-wide compile cache under the
// profile-hashed fingerprint.
type adaptState struct {
	once sync.Once
	a    *compiler.Analysis
	res  compiler.AdaptResult
	err  error
}

// resolve trains (or adopts cfg.PGOProfile), adapts, and compiles the
// swapped-in analysis. Training reruns the quantum programs at tiny
// size under the AdaptMaxSteps budget — cheap, bounded, and a pure
// function of the configuration, so a resumed or reordered sweep
// resolves to the identical analysis.
func (st *adaptState) resolve(c Config, static *compiler.Analysis, train []string) (*compiler.Analysis, compiler.AdaptResult, error) {
	st.once.Do(func() {
		prof := c.PGOProfile
		if prof == nil {
			merged := make(map[string]uint64)
			for _, w := range train {
				p, err := workloads.Build(w, workloads.SizeTiny)
				if err != nil {
					st.err = fmt.Errorf("adapt: build training workload %s: %w", w, err)
					return
				}
				opt := c.Opt
				opt.Metrics = nil
				if opt.MaxSteps == 0 || opt.MaxSteps > c.AdaptMaxSteps {
					opt.MaxSteps = c.AdaptMaxSteps
				}
				tp, err := core.CollectProfile(static, p, opt)
				if err != nil {
					st.err = fmt.Errorf("adapt: profiling quantum on %s: %w", w, err)
					return
				}
				for k, v := range tp.Counts {
					merged[k] += v
				}
			}
			prof = &compiler.Profile{Counts: merged}
		}
		st.res = static.Opts.AdaptOptions(prof)
		if !st.res.Changed {
			st.a = static
			return
		}
		st.a, st.err = analyses.Compile(adaptAnalysis, st.res.Opts)
	})
	return st.a, st.res, st.err
}

// Adapt measures the closed adaptive-PGO loop against the full static
// configuration and every fixed ablation point on the MSan workload
// family. With cfg.Adapt off the adaptive column is the no-swap control
// (static analysis throughout).
func Adapt(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	static, err := analyses.Compile(adaptAnalysis, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// A stale -profile-in (wrong analysis, renamed members) must not
	// silently perturb layout: degrade to static selection, loudly.
	if cfg.PGOProfile != nil {
		if err := cfg.PGOProfile.MatchesAnalysis(static); err != nil {
			fmt.Fprintf(cfg.Out, "warning: -profile-in %v: degrading to static selection\n", err)
			cfg.PGOProfile = &compiler.Profile{}
		}
	}
	fixedOpts := []struct {
		name string
		opts compiler.Options
	}{
		{"full", compiler.DefaultOptions()},
		{"nofuse", compiler.NoFuseOptions()},
		{"dsonly", compiler.DSOnlyOptions()},
		{"naive", compiler.NaiveOptions()},
	}
	fixed := make([]*compiler.Analysis, len(fixedOpts))
	names := make([]string, 0, len(fixedOpts)+1)
	for i, fo := range fixedOpts {
		if fixed[i], err = analyses.Compile(adaptAnalysis, fo.opts); err != nil {
			return nil, err
		}
		names = append(names, fo.name)
	}
	names = append(names, "adaptive")
	collectOpts := compiler.DefaultOptions()
	collectOpts.ProfileCollect = true
	profiling, err := analyses.Compile(adaptAnalysis, collectOpts)
	if err != nil {
		return nil, err
	}

	quantum := cfg.AdaptAfter
	if quantum > len(AdaptPrograms) {
		quantum = len(AdaptPrograms)
	}
	train := AdaptPrograms[:quantum]
	programIdx := make(map[string]int, len(AdaptPrograms))
	for i, w := range AdaptPrograms {
		programIdx[w] = i
	}
	st := &adaptState{}

	t, err := cfg.runGrid(gridSpec{
		name: "adapt",
		title: fmt.Sprintf("Adaptive PGO: profiling quantum + hot-swap vs static ablation points, ALDA MSan (size=%s, reps=%d, quantum=%d, swap=%v)",
			cfg.Size, cfg.Reps, quantum, cfg.Adapt),
		measured: names,
		programs: AdaptPrograms,
		runner: func(c Config, w string, col int) (runnerFn, error) {
			switch {
			case col < 0:
				return c.runnerPlain(w)
			case col < len(fixed):
				return c.runnerALDA(fixed[col], w)
			default: // adaptive column
				if !c.Adapt {
					return c.runnerALDA(static, w)
				}
				if programIdx[w] < quantum {
					return c.runnerALDA(profiling, w)
				}
				a, _, err := st.resolve(c, static, train)
				if err != nil {
					return nil, err
				}
				return c.runnerALDA(a, w)
			}
		},
	})
	if err != nil {
		return nil, err
	}

	// Deterministic post-table adaptation report. On a fully resumed
	// sweep no adapted cell forced the resolution, so force it here:
	// the decision log is part of the sweep's byte-identical output.
	if !cfg.Adapt {
		fmt.Fprintf(cfg.Out, "adaptive PGO: swap disabled (-adapt off); the adaptive column ran the static analysis\n\n")
		return t, nil
	}
	_, res, err := st.resolve(cfg, static, train)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Out, "adaptive PGO: quantum=%d program(s) [%s], then hot-swap for the remaining %d\n",
		quantum, strings.Join(train, " "), len(AdaptPrograms)-quantum)
	io.WriteString(cfg.Out, res.DecisionLog())
	fmt.Fprintln(cfg.Out)
	if cfg.Metrics != nil {
		cfg.Metrics.Add("harness.adapt.quantum_cells", uint64(quantum))
		if res.Changed {
			cfg.Metrics.Add("harness.adapt.swaps", 1)
		} else {
			cfg.Metrics.Add("harness.adapt.static_kept", 1)
		}
	}
	return t, nil
}
