package harness

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// tinyVirtual is the base configuration the robustness tests sweep
// under: deterministic virtual timing, so rendered bytes are exact.
func tinyVirtual(out *bytes.Buffer) Config {
	return Config{
		Size:        workloads.SizeTiny,
		Reps:        1,
		Virtual:     true,
		Parallelism: 4,
		Out:         out,
		KeepGoing:   true,
	}
}

// countERR returns how many degraded ERR(...) cells a rendered table
// contains.
func countERR(s string) int { return strings.Count(s, "ERR(") }

// TestFaultInjectedCellDegrades is the acceptance scenario: an injected
// nth-malloc fault in one cell yields a complete figure with exactly
// one ERR(LibFault) cell; every other cell still measures.
func TestFaultInjectedCellDegrades(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyVirtual(&buf)
	cfg.CellFaults = func(program, column string) vm.FaultSpec {
		if program == "fft" && column == "ALDAcc-full" {
			return vm.FaultSpec{MallocFailNth: 1}
		}
		return vm.FaultSpec{}
	}
	tbl, err := Fig4(cfg)
	if err != nil {
		t.Fatalf("KeepGoing sweep aborted: %v", err)
	}
	out := buf.String()
	if n := countERR(out); n != 1 {
		t.Fatalf("ERR cells = %d, want exactly 1\n%s", n, out)
	}
	if !strings.Contains(out, "ERR(LibFault)") {
		t.Fatalf("degraded cell lost its kind\n%s", out)
	}
	if len(tbl.Rows) != len(Fig4Programs) {
		t.Fatalf("rows = %d, want the full figure (%d)", len(tbl.Rows), len(Fig4Programs))
	}
	// The degraded column's average must still be computed from the
	// surviving eleven programs.
	if tbl.Averages[1] <= 0 {
		t.Fatalf("ALDAcc-full average lost to one degraded cell: %v", tbl.Averages)
	}
}

// TestHandlerPanicCellDegrades: a panicking analysis handler in one
// cell degrades to ERR(Trap) without killing the worker pool.
func TestHandlerPanicCellDegrades(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyVirtual(&buf)
	cfg.CellFaults = func(program, column string) vm.FaultSpec {
		if program == "lu_c" && column == "ALDAcc-ds-only" {
			return vm.FaultSpec{HandlerPanicNth: 1}
		}
		return vm.FaultSpec{}
	}
	if _, err := Fig4(cfg); err != nil {
		t.Fatalf("KeepGoing sweep aborted: %v", err)
	}
	out := buf.String()
	if n := countERR(out); n != 1 {
		t.Fatalf("ERR cells = %d, want exactly 1\n%s", n, out)
	}
	if !strings.Contains(out, "ERR(Trap)") {
		t.Fatalf("handler panic did not degrade as Trap\n%s", out)
	}
}

// TestBaseCellFaultDegradesRow: when the uninstrumented baseline cell
// fails, the row renders ERR in the base column and "-" for every
// overhead (a ratio against a failed denominator is meaningless).
func TestBaseCellFaultDegradesRow(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyVirtual(&buf)
	cfg.CellFaults = func(program, column string) vm.FaultSpec {
		if program == "radix" && column == "base" {
			return vm.FaultSpec{MallocFailNth: 1}
		}
		return vm.FaultSpec{}
	}
	if _, err := Fig4(cfg); err != nil {
		t.Fatalf("KeepGoing sweep aborted: %v", err)
	}
	out := buf.String()
	var radixLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "radix") {
			radixLine = l
		}
	}
	if !strings.Contains(radixLine, "ERR(LibFault)") || strings.Count(radixLine, " -") < 3 {
		t.Fatalf("degraded base row rendered wrong: %q", radixLine)
	}
}

// TestKeepGoingRunsAllCells pins the forEachCell satellite fix: with
// KeepGoing set, a failing cell no longer causes unstarted cells to be
// skipped, at any parallelism — and the lowest-indexed error is still
// reported.
func TestKeepGoingRunsAllCells(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		cfg := Config{Parallelism: parallelism, KeepGoing: true}
		var ran atomic.Int64
		err := cfg.forEachCell(16, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 11 {
				return errIndexed(i)
			}
			return nil
		})
		if got := ran.Load(); got != 16 {
			t.Errorf("parallelism=%d: ran %d cells, want all 16", parallelism, got)
		}
		if err == nil || err.Error() != errIndexed(3).Error() {
			t.Errorf("parallelism=%d: err = %v, want %v", parallelism, err, errIndexed(3))
		}
	}
}

// fakeGrid builds a minimal 1-program × 1-column grid whose measured
// cell behaves as fn dictates; the base cell always succeeds.
func fakeGrid(fn runnerFn) gridSpec {
	return gridSpec{
		name:     "fake",
		title:    "fake grid",
		measured: []string{"m"},
		programs: []string{"p"},
		runner: func(c Config, program string, col int) (runnerFn, error) {
			if col < 0 {
				return func() (*vm.Result, error) { return &vm.Result{Steps: 100}, nil }, nil
			}
			return fn, nil
		},
	}
}

// TestRetryableCellRecovers: a cell that fails with the retryable kind
// (Deadline) and then succeeds must land as a measured value, within
// the bounded retry budget.
func TestRetryableCellRecovers(t *testing.T) {
	var attempts atomic.Int64
	cfg := Config{Virtual: true, Parallelism: 1, Retries: 2, RetryBackoff: time.Millisecond, Out: &bytes.Buffer{}}
	tbl, err := cfg.withDefaults().runGrid(fakeGrid(func() (*vm.Result, error) {
		if attempts.Add(1) <= 2 {
			return nil, &vm.RunError{Kind: vm.KindDeadline, Msg: "deadline 1ms exceeded"}
		}
		return &vm.Result{Steps: 300}, nil
	}))
	if err != nil {
		t.Fatalf("retries did not rescue the cell: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (two retries)", attempts.Load())
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0].Overheads[0] != 3.0 {
		t.Fatalf("rescued cell mismeasured: %+v", tbl.Rows)
	}
}

// TestNonRetryableKindsFailFast: deterministic kinds are never retried
// — re-running a deterministic VM can only reproduce the failure.
func TestNonRetryableKindsFailFast(t *testing.T) {
	var attempts atomic.Int64
	cfg := Config{Virtual: true, Parallelism: 1, Retries: 5, RetryBackoff: time.Millisecond,
		KeepGoing: true, Out: &bytes.Buffer{}}
	_, err := cfg.withDefaults().runGrid(fakeGrid(func() (*vm.Result, error) {
		attempts.Add(1)
		return nil, &vm.RunError{Kind: vm.KindTrap, Msg: "bad store"}
	}))
	if err != nil {
		t.Fatalf("KeepGoing grid aborted: %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (Trap is not retryable)", attempts.Load())
	}
}

// TestRetryBudgetBounded: a cell that never stops timing out is
// degraded after exactly Retries extra attempts, not retried forever.
func TestRetryBudgetBounded(t *testing.T) {
	var attempts atomic.Int64
	var buf bytes.Buffer
	cfg := Config{Virtual: true, Parallelism: 1, Retries: 2, RetryBackoff: time.Millisecond,
		KeepGoing: true, Out: &buf}
	_, err := cfg.withDefaults().runGrid(fakeGrid(func() (*vm.Result, error) {
		attempts.Add(1)
		return nil, &vm.RunError{Kind: vm.KindDeadline, Msg: "deadline 1ms exceeded"}
	}))
	if err != nil {
		t.Fatalf("KeepGoing grid aborted: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", attempts.Load())
	}
	if !strings.Contains(buf.String(), "ERR(Deadline)") {
		t.Fatalf("exhausted retries did not degrade:\n%s", buf.String())
	}
}

// TestBuilderPanicDegrades: a panic while constructing a cell (not in
// the VM) is recovered per cell and renders as ERR(panic).
func TestBuilderPanicDegrades(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Virtual: true, Parallelism: 2, KeepGoing: true, Out: &buf}
	g := fakeGrid(nil)
	g.runner = func(c Config, program string, col int) (runnerFn, error) {
		if col == 0 {
			panic("builder exploded")
		}
		return func() (*vm.Result, error) { return &vm.Result{Steps: 100}, nil }, nil
	}
	if _, err := cfg.withDefaults().runGrid(g); err != nil {
		t.Fatalf("KeepGoing grid aborted: %v", err)
	}
	if !strings.Contains(buf.String(), "ERR(panic)") {
		t.Fatalf("builder panic not degraded:\n%s", buf.String())
	}
}

// TestSerialAbortPreserved: without KeepGoing the pre-existing
// first-error contract holds — the sweep aborts and returns the
// failing cell's error.
func TestSerialAbortPreserved(t *testing.T) {
	cfg := Config{Virtual: true, Parallelism: 1, Out: &bytes.Buffer{}}
	_, err := cfg.withDefaults().runGrid(fakeGrid(func() (*vm.Result, error) {
		return nil, &vm.RunError{Kind: vm.KindTrap, Msg: "bad store"}
	}))
	if err == nil || !strings.Contains(err.Error(), "fake p/m") {
		t.Fatalf("err = %v, want the failing cell's wrapped error", err)
	}
}
