package harness

import (
	"time"
)

// Retry scheduling for retryable cell failures (vm.KindDeadline). The
// PR 2 schedule was bare doubling; a fleet of cells retrying in
// lockstep after a shared stall re-collides on every attempt, and an
// uncapped schedule can hold a sweep (or a server drain) hostage to one
// flapping cell. The policy here fixes both: exponential growth capped
// per-wait, equal-jitter decorrelation drawn from a deterministic
// per-cell seed, and a hard budget on total time spent waiting.

// retryPolicy computes the wait schedule for one cell's retries. The
// schedule is a pure function of the policy, so tests assert it without
// sleeping.
type retryPolicy struct {
	// Base is the pre-jitter wait before the first retry; it doubles
	// per attempt.
	Base time.Duration
	// Max caps a single pre-jitter wait (0 = uncapped).
	Max time.Duration
	// Budget caps the total time spent waiting across all of one
	// cell's retries (0 = uncapped).
	Budget time.Duration
	// Seed decorrelates concurrent cells' schedules. The same seed
	// yields the identical schedule — retries stay reproducible.
	Seed uint64
}

// retrySplitmix is SplitMix64, the same mixer internal/vm/faults uses:
// cheap, stateless, and well distributed even for adjacent inputs.
func retrySplitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// delay returns the wait before retry try (0-based), given the total
// wait already spent on this cell. ok=false means the schedule is
// exhausted: the budget would be exceeded, so the caller should give up
// and surface the last error. Jitter is "equal jitter": the wait lands
// uniformly in [d/2, d] for pre-jitter wait d, keeping a floor under
// the backoff while spreading colliding retries apart.
func (p retryPolicy) delay(try int, spent time.Duration) (d time.Duration, ok bool) {
	d = p.Base
	// Shift with saturation: beyond 62 doublings any Duration overflows.
	for i := 0; i < try && i < 62; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			break
		}
		if d < 0 { // overflow
			d = 1 << 62
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if half := d / 2; half > 0 {
		span := uint64(half) + 1
		d = half + time.Duration(retrySplitmix(p.Seed+uint64(try))%span)
	}
	if p.Budget > 0 && spent+d > p.Budget {
		return 0, false
	}
	return d, true
}

// cellRetrySeed derives the jitter seed for one cell from its identity,
// so the schedule is deterministic per cell but decorrelated across
// cells.
func cellRetrySeed(grid, cell string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, s := range []string{grid, "/", cell} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return retrySplitmix(h)
}

// retrySleep and retryNow are the clock seams for the deterministic
// retry tests; production always uses the real clock.
var (
	retrySleep = time.Sleep
	retryNow   = time.Now
)
