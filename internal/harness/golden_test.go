package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden; -update
// rewrites the file instead, so figure-formatting changes land as
// reviewable diffs.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/harness -run TestTableGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: rendering differs from golden file (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestTableGoldenFigureStyle(t *testing.T) {
	tbl := &Table{
		Title:   "Figure N: hand-tuned vs ALDAcc (size=small, reps=3)",
		Columns: []string{"hand-tuned", "ALDAcc-full", "ALDAcc-ds-only"},
		Rows: []Row{
			{Workload: "fft", BaseWall: 1234567 * time.Nanosecond, Overheads: []float64{2.5, 2.21, 4.75}},
			{Workload: "lu_c", BaseWall: 987654321 * time.Nanosecond, Overheads: []float64{3, 2.8, 6.125}},
			{Workload: "radiosity", BaseWall: 42 * time.Microsecond, Overheads: []float64{11.99, 9.005, 25}},
		},
	}
	tbl.computeAverages()
	var buf bytes.Buffer
	tbl.Render(&buf)
	checkGolden(t, "table_figure_style", buf.String())
}

func TestTableGoldenDegradedCells(t *testing.T) {
	// Degraded cells: a measured cell that failed renders ERR(<kind>)
	// and is excluded from its column average; a failed baseline blanks
	// the whole row's overheads ("-" against a failed denominator).
	tbl := &Table{
		Title:   "degraded cells: ERR entries and a failed baseline",
		Columns: []string{"hand-tuned", "ALDAcc-full", "ALDAcc-ds-only"},
		Rows: []Row{
			{Workload: "fft", BaseWall: 1234567 * time.Nanosecond, Overheads: []float64{2.5, 0, 4.75},
				Errs: []string{"", "LibFault", ""}},
			{Workload: "lu_c", BaseWall: 987654321 * time.Nanosecond, Overheads: []float64{3, 2.8, 0},
				Errs: []string{"", "", "Trap"}},
			{Workload: "radix", BaseErr: "HeapLimit", Overheads: []float64{0, 0, 0},
				Errs: []string{"", "", ""}},
			{Workload: "radiosity", BaseWall: 42 * time.Microsecond, Overheads: []float64{11.99, 9.005, 25}},
		},
	}
	tbl.computeAverages()
	var buf bytes.Buffer
	tbl.Render(&buf)
	checkGolden(t, "table_degraded", buf.String())
}

func TestTableGoldenEdgeCases(t *testing.T) {
	// Zero and missing overheads: zeros are excluded from the per-column
	// average, short rows leave trailing columns unaveraged.
	tbl := &Table{
		Title:   "edge cases: zero overheads and ragged rows",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Workload: "w1", BaseWall: time.Millisecond, Overheads: []float64{0, 2}},
			{Workload: "w2", BaseWall: time.Second, Overheads: []float64{4}},
		},
	}
	tbl.computeAverages()
	var buf bytes.Buffer
	tbl.Render(&buf)
	checkGolden(t, "table_edge_cases", buf.String())
}
