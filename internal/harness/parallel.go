package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vm"
)

// Parallel grid execution. Every figure-shaped experiment is a grid of
// independent measurement cells — one workload crossed with one
// configuration (the uninstrumented baseline counts as a
// configuration). Cells share nothing mutable: each builds its own
// workload program, instruments it against the (shared, immutable)
// compiled analysis and runs it on a private vm.Machine, so they fan
// out across Config.Parallelism worker goroutines. Results land in a
// slice indexed by cell key, and the table is assembled in that fixed
// order afterwards — the rendered output is independent of worker
// interleaving.

// runnerFn produces one measured VM run.
type runnerFn = func() (*vm.Result, error)

// gridSpec declares a figure-shaped experiment.
type gridSpec struct {
	// name tags progress lines and error messages ("fig3").
	name  string
	title string
	// measured are the measured configuration columns, in order.
	measured []string
	// columns are the rendered column names; nil means the measured
	// columns render as-is. Use with finish to add derived columns.
	columns []string
	// finish maps one row's measured overheads to its rendered
	// overheads (nil ⇒ identity); used for derived columns like
	// Figure 5's "sum".
	finish func(measured []float64) []float64
	// programs are the workload rows, in render order.
	programs []string
	// runner builds the measurement closure for one cell. col is an
	// index into measured; col == -1 is the uninstrumented baseline.
	runner func(c Config, program string, col int) (runnerFn, error)
}

func (g *gridSpec) colName(col int) string {
	if col < 0 {
		return "base"
	}
	return g.measured[col]
}

// forEachCell runs f for every index in [0, n) across the configured
// worker count. All cells run to completion unless one fails; after a
// failure, cells that have not started yet are skipped and the error of
// the lowest-indexed failing cell is returned (matching what a serial
// sweep would have reported first).
func (c Config) forEachCell(n int, f func(i int) error) error {
	workers := c.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		failed   atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	cells := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range cells {
				if failed.Load() {
					continue
				}
				if err := f(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		cells <- i
	}
	close(cells)
	wg.Wait()
	return firstErr
}

// runGrid measures every cell of the grid, assembles the Table in row
// and column order, and renders it to c.Out.
func (c Config) runGrid(g gridSpec) (*Table, error) {
	stride := len(g.measured) + 1 // baseline + measured columns
	walls := make([]time.Duration, len(g.programs)*stride)
	err := c.forEachCell(len(walls), func(i int) error {
		program := g.programs[i/stride]
		col := i%stride - 1
		fn, err := g.runner(c, program, col)
		if err != nil {
			return fmt.Errorf("%s %s/%s: %w", g.name, program, g.colName(col), err)
		}
		start := time.Now()
		wall, _, err := c.measure(fn)
		if err != nil {
			return fmt.Errorf("%s %s/%s: %w", g.name, program, g.colName(col), err)
		}
		walls[i] = wall
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "[%s] %s/%s wall=%v elapsed=%v\n",
				g.name, program, g.colName(col),
				wall.Round(10*time.Microsecond), time.Since(start).Round(time.Millisecond))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	cols := g.columns
	if cols == nil {
		cols = g.measured
	}
	t := &Table{Title: g.title, Columns: cols}
	for wi, program := range g.programs {
		base := walls[wi*stride]
		measured := make([]float64, len(g.measured))
		for ci := range g.measured {
			measured[ci] = float64(walls[wi*stride+1+ci]) / float64(base)
		}
		if g.finish != nil {
			measured = g.finish(measured)
		}
		t.Rows = append(t.Rows, Row{Workload: program, BaseWall: base, Overheads: measured})
	}
	t.computeAverages()
	t.Render(c.Out)
	return t, nil
}
