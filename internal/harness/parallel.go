package harness

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Parallel grid execution. Every figure-shaped experiment is a grid of
// independent measurement cells — one workload crossed with one
// configuration (the uninstrumented baseline counts as a
// configuration). Cells share nothing mutable: each builds its own
// workload program, instruments it against the (shared, immutable)
// compiled analysis and runs it on a private vm.Machine, so they fan
// out across Config.Parallelism worker goroutines. Results land in a
// slice indexed by cell key, and the table is assembled in that fixed
// order afterwards — the rendered output is independent of worker
// interleaving.
//
// Fault tolerance: each cell runs behind recover(), failures carry the
// vm.RunError taxonomy, retryable kinds get bounded backoff retries,
// and with Config.KeepGoing a failed cell degrades to an ERR(<kind>)
// table entry instead of aborting the sweep. Completed cells stream to
// the JSONL checkpoint (Config.CheckpointPath) so an interrupted sweep
// resumes where it stopped.

// runnerFn produces one measured VM run.
type runnerFn = func() (*vm.Result, error)

// gridSpec declares a figure-shaped experiment.
type gridSpec struct {
	// name tags progress lines, error messages and checkpoint records
	// ("fig3").
	name  string
	title string
	// measured are the measured configuration columns, in order.
	measured []string
	// columns are the rendered column names; nil means the measured
	// columns render as-is. Use with finish to add derived columns.
	columns []string
	// finish maps one row's measured overheads to its rendered
	// overheads (nil ⇒ identity); used for derived columns like
	// Figure 5's "sum".
	finish func(measured []float64) []float64
	// finishErrs maps the measured columns' error labels to the
	// rendered columns' (nil ⇒ identity). Required whenever finish adds
	// derived columns, so a degraded input degrades its derivations.
	finishErrs func(measured []string) []string
	// programs are the workload rows, in render order.
	programs []string
	// runner builds the measurement closure for one cell. col is an
	// index into measured; col == -1 is the uninstrumented baseline.
	runner func(c Config, program string, col int) (runnerFn, error)
}

func (g *gridSpec) colName(col int) string {
	if col < 0 {
		return "base"
	}
	return g.measured[col]
}

// forEachCell runs f for every index in [0, n) across the configured
// worker count. Without KeepGoing, a failure skips cells that have not
// started yet and the error of the lowest-indexed failing cell is
// returned (matching what a serial sweep would have reported first).
// With KeepGoing, every cell runs regardless of failures; the
// lowest-indexed error is still returned so callers know the sweep
// degraded.
func (c Config) forEachCell(n int, f func(i int) error) error {
	workers := c.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				if !c.KeepGoing {
					return err
				}
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}
	var (
		failed   atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	cells := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range cells {
				if !c.KeepGoing && failed.Load() {
					continue
				}
				if err := f(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		cells <- i
	}
	close(cells)
	wg.Wait()
	return firstErr
}

// measureCell builds and measures one cell behind recover(), retrying
// retryable failures with exponential backoff. Panics out of workload
// builders, instrumentation or analysis handlers degrade to an error
// instead of killing the sweep's worker pool.
func (c Config) measureCell(g *gridSpec, program string, col int, sh *obs.Shard) (wall time.Duration, tries int, err error) {
	attempt := func() (w time.Duration, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &cellFailure{kind: "panic", msg: fmt.Sprintf("panic: %v", r)}
			}
		}()
		// A retried attempt starts from a clean shard so the merged
		// counters reflect the one attempt that succeeded. Reset is
		// nil-safe, so sweeps without metrics pay nothing here.
		sh.Reset()
		fn, err := g.runner(c, program, col)
		if err != nil {
			return 0, err
		}
		w, _, err = c.measure(fn)
		return w, err
	}
	policy := retryPolicy{
		Base:   c.RetryBackoff,
		Max:    c.RetryMaxBackoff,
		Budget: c.RetryBudget,
		Seed:   cellRetrySeed(g.name, program+"/"+g.colName(col)),
	}
	var spent time.Duration
	for try := 0; ; try++ {
		wall, err = attempt()
		if err == nil {
			return wall, try, nil
		}
		var re *vm.RunError
		if try >= c.Retries || !errors.As(err, &re) || !re.Retryable() {
			return 0, try, err
		}
		d, ok := policy.delay(try, spent)
		if !ok {
			// Retry budget exhausted: degrade with the last error rather
			// than wait out an unbounded schedule.
			return 0, try, err
		}
		if !c.SweepDeadline.IsZero() && retryNow().Add(d).After(c.SweepDeadline) {
			return 0, try, err
		}
		retrySleep(d)
		spent += d
	}
}

// noteCell folds one finished cell into the sweep-level registry:
// counter merges from the cell's shard (live cells) or its checkpoint
// record (resumed cells), the ok/err tallies, and the cell-wall
// histogram. Virtual cell walls are deterministic and feed a pinned
// histogram; wall-clock walls are volatile.
func (c Config) noteCell(shard *obs.Shard, counts map[string]uint64, wall time.Duration, tries int, err error) {
	r := c.Metrics
	if r == nil {
		return
	}
	if tries > 0 {
		r.AddVolatile("harness.cells.retries", uint64(tries))
	}
	if err != nil {
		r.Add("harness.cells.err."+errKindLabel(err), 1)
		return
	}
	if shard != nil {
		r.MergeShard(shard)
	}
	if counts != nil {
		r.MergeCounts(counts)
	}
	r.Add("harness.cells.ok", 1)
	if c.Virtual {
		r.Observe("harness.cell_wall", uint64(wall))
	} else {
		r.AddVolatile("harness.cell_wall_ns", uint64(wall))
	}
}

// lockedWriter serializes writes from concurrent worker goroutines.
// Config.Progress is an arbitrary io.Writer with no thread-safety
// contract of its own, so the grid wraps it before fanning out.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// runGrid measures every cell of the grid, assembles the Table in row
// and column order, and renders it to c.Out.
func (c Config) runGrid(g gridSpec) (*Table, error) {
	if c.Progress != nil {
		c.Progress = &lockedWriter{w: c.Progress}
	}
	stride := len(g.measured) + 1 // baseline + measured columns
	n := len(g.programs) * stride
	walls := make([]time.Duration, n)
	cellErrs := make([]error, n)
	fp := c.fingerprint()

	var resumed map[string]checkpointRecord
	if c.Resume && c.CheckpointPath != "" {
		var err error
		resumed, err = loadCheckpoint(c.CheckpointPath, g.name, fp)
		if err != nil {
			return nil, fmt.Errorf("%s: loading checkpoint: %w", g.name, err)
		}
	}
	var ckpt *checkpointWriter
	if c.CheckpointPath != "" {
		var err error
		ckpt, err = newCheckpointWriter(c.CheckpointPath)
		if err != nil {
			return nil, fmt.Errorf("%s: opening checkpoint: %w", g.name, err)
		}
		defer ckpt.close()
	}

	err := c.forEachCell(n, func(i int) error {
		program := g.programs[i/stride]
		col := i%stride - 1
		key := program + "/" + g.colName(col)

		if rec, ok := resumed[key]; ok {
			walls[i] = time.Duration(rec.WallNS)
			cellErrs[i] = restoreErr(rec)
			c.noteCell(nil, rec.Metrics, time.Duration(rec.WallNS), 0, cellErrs[i])
			if c.Metrics != nil {
				c.Metrics.AddVolatile("harness.checkpoint.resumed", 1)
			}
			if c.Progress != nil {
				fmt.Fprintf(c.Progress, "[%s] %s resumed from checkpoint\n", g.name, key)
			}
			if cellErrs[i] != nil {
				return fmt.Errorf("%s %s: %w", g.name, key, cellErrs[i])
			}
			return nil
		}

		cc := c
		if c.CellFaults != nil {
			cc.Opt.Faults = c.CellFaults(program, g.colName(col))
		}
		var shard *obs.Shard
		if c.Metrics != nil {
			shard = obs.NewShard()
			cc.Opt.Metrics = shard
			// Hook timing reads the clock per dispatch — useful for wall
			// attribution, poison for deterministic virtual counters.
			cc.Opt.TimeHooks = !c.Virtual
		}
		if c.Trace != nil {
			cc.Opt.Trace = c.Trace
			cc.Opt.TraceTID = int64(i)
		}
		start := time.Now()
		wall, tries, err := cc.measureCell(&g, program, col, shard)
		walls[i] = wall
		if c.Trace != nil {
			c.Trace.Span("harness", g.name+"/"+key, int64(i), start, time.Since(start))
		}
		if err != nil {
			cellErrs[i] = err
			c.noteCell(shard, nil, 0, tries, err)
			if ckpt != nil {
				ckpt.append(checkpointRecord{Grid: g.name, Cell: key, Fp: fp,
					ErrKind: errKindLabel(err), ErrMsg: err.Error()})
				if c.Metrics != nil {
					c.Metrics.AddVolatile("harness.checkpoint.appended", 1)
				}
			}
			if c.Progress != nil {
				fmt.Fprintf(c.Progress, "[%s] %s %s: %v\n", g.name, key, errCell(errKindLabel(err)), err)
			}
			return fmt.Errorf("%s %s: %w", g.name, key, err)
		}
		c.noteCell(shard, nil, wall, tries, nil)
		if ckpt != nil {
			rec := checkpointRecord{Grid: g.name, Cell: key, Fp: fp, WallNS: int64(wall)}
			if shard != nil {
				rec.Metrics = shard.Counts
			}
			ckpt.append(rec)
			if c.Metrics != nil {
				c.Metrics.AddVolatile("harness.checkpoint.appended", 1)
			}
		}
		if c.Progress != nil {
			fmt.Fprintf(c.Progress, "[%s] %s wall=%v elapsed=%v\n",
				g.name, key,
				wall.Round(10*time.Microsecond), time.Since(start).Round(time.Millisecond))
		}
		return nil
	})
	if err != nil && !c.KeepGoing {
		return nil, err
	}

	cols := g.columns
	if cols == nil {
		cols = g.measured
	}
	t := &Table{Title: g.title, Columns: cols}
	for wi, program := range g.programs {
		base := walls[wi*stride]
		baseErr := ""
		if e := cellErrs[wi*stride]; e != nil {
			baseErr = errKindLabel(e)
		}
		measured := make([]float64, len(g.measured))
		errLabels := make([]string, len(g.measured))
		degraded := false
		for ci := range g.measured {
			if e := cellErrs[wi*stride+1+ci]; e != nil {
				errLabels[ci] = errKindLabel(e)
				degraded = true
				continue
			}
			if baseErr == "" {
				measured[ci] = float64(walls[wi*stride+1+ci]) / float64(base)
			}
		}
		if g.finish != nil {
			measured = g.finish(measured)
			if g.finishErrs != nil {
				errLabels = g.finishErrs(errLabels)
			}
		}
		row := Row{Workload: program, BaseWall: base, Overheads: measured, BaseErr: baseErr}
		if degraded || baseErr != "" {
			row.Errs = errLabels
			if baseErr != "" {
				row.BaseWall = 0
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.computeAverages()
	t.Render(c.Out)
	return t, nil
}
