package harness

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestParallelTableDeterminism is the determinism regression test for
// the parallel harness: the same experiment grid, executed serially and
// with eight workers, must render byte-identical tables under virtual
// timing. Cells are keyed and aggregated in a fixed order, so the only
// way this fails is a cell producing different results depending on
// what runs next to it — exactly the shared-state bugs the -race tier
// hunts.
func TestParallelTableDeterminism(t *testing.T) {
	render := func(parallelism int) string {
		var buf bytes.Buffer
		cfg := Config{
			Size:        workloads.SizeTiny,
			Reps:        1,
			Virtual:     true,
			Parallelism: parallelism,
			Out:         &buf,
		}
		if _, err := Fig4(cfg); err != nil {
			t.Fatalf("Fig4 parallelism=%d: %v", parallelism, err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("Fig4 render differs between serial and parallel runs\n--- serial ---\n%s--- parallel=8 ---\n%s", serial, parallel)
	}
}

// TestParallelReportDeterminism runs the same workload+analysis cell
// serially and on eight concurrent goroutines and asserts every run
// files the identical vm.Report set. The cell is Eraser on radiosity
// with the race bug injected, so the report set is nonempty.
func TestParallelReportDeterminism(t *testing.T) {
	eraser, err := analyses.Compile("eraser", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	runCell := func() (string, error) {
		p, err := workloads.BuildBug("radiosity", workloads.SizeTiny, workloads.BugRace)
		if err != nil {
			return "", err
		}
		res, err := core.RunAnalysis(p, eraser, core.RunOptions{})
		if err != nil {
			return "", err
		}
		return vm.FormatReports(res.Reports), nil
	}

	want, err := runCell()
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		t.Fatal("expected a nonempty report set from eraser on radiosity+BugRace")
	}

	const workers = 8
	got := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = runCell()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("worker %d report set differs from serial run\n--- serial ---\n%s--- worker ---\n%s", i, want, got[i])
		}
	}
}

// TestForEachCellFirstError asserts the pool reports the error of the
// lowest-indexed failing cell, matching what a serial sweep would have
// hit first.
func TestForEachCellFirstError(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		cfg := Config{Parallelism: parallelism}
		err := cfg.forEachCell(16, func(i int) error {
			if i == 3 || i == 11 {
				return errIndexed(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("parallelism=%d: expected an error", parallelism)
		}
		// Serial execution stops at 3; parallel execution must also
		// surface 3 (11 can only fail if it started before 3 failed,
		// and 3 still wins the lowest-index pick).
		if err.Error() != errIndexed(3).Error() {
			t.Errorf("parallelism=%d: got %v, want %v", parallelism, err, errIndexed(3))
		}
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "cell failed" + string(rune('0'+int(e))) }
