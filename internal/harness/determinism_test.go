package harness

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestParallelTableDeterminism is the determinism regression test for
// the parallel harness: the same experiment grid, executed serially and
// with eight workers, must render byte-identical tables under virtual
// timing. Cells are keyed and aggregated in a fixed order, so the only
// way this fails is a cell producing different results depending on
// what runs next to it — exactly the shared-state bugs the -race tier
// hunts.
func TestParallelTableDeterminism(t *testing.T) {
	render := func(parallelism int) string {
		var buf bytes.Buffer
		cfg := Config{
			Size:        workloads.SizeTiny,
			Reps:        1,
			Virtual:     true,
			Parallelism: parallelism,
			Out:         &buf,
		}
		if _, err := Fig4(cfg); err != nil {
			t.Fatalf("Fig4 parallelism=%d: %v", parallelism, err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("Fig4 render differs between serial and parallel runs\n--- serial ---\n%s--- parallel=8 ---\n%s", serial, parallel)
	}
}

// TestParallelReportDeterminism runs the same workload+analysis cell
// serially and on eight concurrent goroutines and asserts every run
// files the identical vm.Report set. The cell is Eraser on radiosity
// with the race bug injected, so the report set is nonempty.
func TestParallelReportDeterminism(t *testing.T) {
	eraser, err := analyses.Compile("eraser", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	runCell := func() (string, error) {
		p, err := workloads.BuildBug("radiosity", workloads.SizeTiny, workloads.BugRace)
		if err != nil {
			return "", err
		}
		res, err := core.RunAnalysis(p, eraser, core.RunOptions{})
		if err != nil {
			return "", err
		}
		return vm.FormatReports(res.Reports), nil
	}

	want, err := runCell()
	if err != nil {
		t.Fatal(err)
	}
	if want == "" {
		t.Fatal("expected a nonempty report set from eraser on radiosity+BugRace")
	}

	const workers = 8
	got := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = runCell()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("worker %d report set differs from serial run\n--- serial ---\n%s--- worker ---\n%s", i, want, got[i])
		}
	}
}

// TestForEachCellFirstError asserts the pool reports the error of the
// lowest-indexed failing cell, matching what a serial sweep would have
// hit first.
func TestForEachCellFirstError(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		cfg := Config{Parallelism: parallelism}
		err := cfg.forEachCell(16, func(i int) error {
			if i == 3 || i == 11 {
				return errIndexed(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("parallelism=%d: expected an error", parallelism)
		}
		// Serial execution stops at 3; parallel execution must also
		// surface 3 (11 can only fail if it started before 3 failed,
		// and 3 still wins the lowest-index pick).
		if err.Error() != errIndexed(3).Error() {
			t.Errorf("parallelism=%d: got %v, want %v", parallelism, err, errIndexed(3))
		}
	}
}

type errIndexed int

func (e errIndexed) Error() string { return "cell failed" + string(rune('0'+int(e))) }

// TestCheckpointResumeByteIdentical is the interruption regression
// test: a sweep checkpointed to JSONL, "killed" after N completed cells
// (the checkpoint truncated to its first N records, exactly what a
// mid-grid kill leaves behind), and resumed with Resume must render a
// table byte-identical to an uninterrupted run — and must actually skip
// the N restored cells rather than re-measuring them.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	render := func(path string, resume bool, progress io.Writer) string {
		var buf bytes.Buffer
		cfg := Config{
			Size:           workloads.SizeTiny,
			Reps:           1,
			Virtual:        true,
			Parallelism:    4,
			Out:            &buf,
			KeepGoing:      true,
			CheckpointPath: path,
			Resume:         resume,
			Progress:       progress,
		}
		if _, err := Fig4(cfg); err != nil {
			t.Fatalf("Fig4 (resume=%v): %v", resume, err)
		}
		return buf.String()
	}

	clean := render("", false, nil)
	full := render(ckpt, false, nil)
	if full != clean {
		t.Fatalf("checkpointing changed the rendered table\n--- clean ---\n%s--- checkpointed ---\n%s", clean, full)
	}

	// Simulate the kill: keep only the first 7 completed-cell records.
	const keep = 7
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) <= keep {
		t.Fatalf("checkpoint has only %d records", len(lines))
	}
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:keep], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	resumed := render(ckpt, true, &progress)
	if resumed != clean {
		t.Errorf("resumed render differs from uninterrupted run\n--- clean ---\n%s--- resumed ---\n%s", clean, resumed)
	}
	if n := strings.Count(progress.String(), "resumed from checkpoint"); n != keep {
		t.Errorf("resumed %d cells from the truncated checkpoint, want %d", n, keep)
	}
}

// TestCheckpointTornTrailingRecord: a kill mid-write leaves a torn last
// line; resume must skip it (and re-measure that cell) instead of
// failing or restoring garbage.
func TestCheckpointTornTrailingRecord(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	render := func(resume bool) string {
		var buf bytes.Buffer
		cfg := Config{
			Size: workloads.SizeTiny, Reps: 1, Virtual: true, Parallelism: 1,
			Out: &buf, KeepGoing: true, CheckpointPath: ckpt, Resume: resume,
		}
		if _, err := Fig4(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	clean := render(false)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	torn := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2] // half a record, no newline
	if err := os.WriteFile(ckpt, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	if resumed := render(true); resumed != clean {
		t.Errorf("torn checkpoint corrupted the resumed table\n--- clean ---\n%s--- resumed ---\n%s", clean, resumed)
	}
}

// TestCheckpointFingerprintMismatchIgnored: records written under a
// different measurement configuration must not be restored.
func TestCheckpointFingerprintMismatchIgnored(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := newCheckpointWriter(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(checkpointRecord{Grid: "fig4", Cell: "fft/base", Fp: "size=large reps=9 seed=2 virtual=false", WallNS: 42}); err != nil {
		t.Fatal(err)
	}
	w.close()
	cfg := Config{Size: workloads.SizeTiny, Reps: 1, Virtual: true}
	got, err := loadCheckpoint(ckpt, "fig4", cfg.fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("restored %d stale records, want 0", len(got))
	}
}

// TestCheckpointRestoresDegradedCells: a degraded cell recorded in the
// checkpoint resumes as the same ERR(<kind>) entry without re-running
// the faulty cell.
func TestCheckpointRestoresDegradedCells(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	render := func(resume bool, faults func(string, string) vm.FaultSpec) string {
		var buf bytes.Buffer
		cfg := Config{
			Size: workloads.SizeTiny, Reps: 1, Virtual: true, Parallelism: 4,
			Out: &buf, KeepGoing: true, CheckpointPath: ckpt, Resume: resume,
			CellFaults: faults,
		}
		if _, err := Fig4(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	faulty := func(program, column string) vm.FaultSpec {
		if program == "fft" && column == "ALDAcc-full" {
			return vm.FaultSpec{MallocFailNth: 1}
		}
		return vm.FaultSpec{}
	}
	first := render(false, faulty)
	// Resume WITHOUT the fault config: the ERR cell must come back from
	// the checkpoint, proving it was restored rather than re-injected.
	resumed := render(true, nil)
	if first != resumed {
		t.Errorf("degraded cell not restored from checkpoint\n--- first ---\n%s--- resumed ---\n%s", first, resumed)
	}
	if !strings.Contains(resumed, "ERR(LibFault)") {
		t.Errorf("resumed table lost the degraded cell\n%s", resumed)
	}
}
