package harness

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Record/replay experiment: each workload's uninstrumented run is
// recorded once into TraceDir as a compressed trace, then every
// analysis runs twice per workload — live (the program re-executes
// under instrumentation) and trace-driven (the replay tier sources the
// schedule, load values and library results from the recorded stream
// and only the analysis hooks do new work). The replay column is the
// paper's offline-analysis story: record once, analyze many times
// without paying for the environment again.

// ReplayPrograms is the replay experiment's workload set: a mix of the
// single-threaded SPEC-style rows and the multi-threaded Splash2 /
// real-world rows, so the trace stream carries both straight-line load
// traffic and scheduler quanta with lock churn.
var ReplayPrograms = []string{"fft", "lu_c", "radix", "memcached", "sort", "bzip2"}

// ReplayAnalyses is the analysis axis the recorded trace fans across:
// one per hook shape (per-access shadow, lockset, def-use).
var ReplayAnalyses = []string{"uaf", "eraser", "msan"}

// tracePath is the on-disk location of one workload's recorded trace.
func (c Config) tracePath(w string) string {
	return filepath.Join(c.TraceDir, w+".trc")
}

// ensureTraces records any missing workload traces into TraceDir (one
// plain run each, written atomically). With TraceRecord off a missing
// trace is an error: a -trace-in directory is expected to be complete.
// Runs before the grid computes its checkpoint fingerprint, so freshly
// recorded traces participate in it.
func (c Config) ensureTraces(programs []string) error {
	if c.TraceDir == "" {
		return fmt.Errorf("harness: replay experiment needs Config.TraceDir (-trace-out or -trace-in)")
	}
	if err := os.MkdirAll(c.TraceDir, 0o755); err != nil {
		return err
	}
	for _, w := range programs {
		path := c.tracePath(w)
		if _, err := os.Stat(path); err == nil {
			continue
		}
		if !c.TraceRecord {
			return fmt.Errorf("harness: missing recorded trace %s (record it with -trace-out)", path)
		}
		p, err := workloads.Build(w, c.Size)
		if err != nil {
			return fmt.Errorf("harness: building %s for trace recording: %w", w, err)
		}
		data, _, err := core.RecordTrace(p, c.Opt)
		if err != nil {
			// A verdict-grade failure still yields a complete trace whose
			// terminal reproduces it at replay; only infrastructure errors
			// abort recording.
			var re *vm.RunError
			if !errors.As(err, &re) {
				return fmt.Errorf("harness: recording %s: %w", w, err)
			}
		}
		if err := WriteFileAtomic(path, data, 0o644); err != nil {
			return fmt.Errorf("harness: writing %s: %w", path, err)
		}
	}
	return nil
}

// traceHash fingerprints the recorded traces a sweep measures against:
// FNV-64a over the sorted *.trc names and contents of TraceDir. Part of
// the checkpoint fingerprint, so -resume rejects cells checkpointed
// against traces that have since been regenerated or corrupted.
func (c Config) traceHash() uint64 {
	h := fnv.New64a()
	entries, err := os.ReadDir(c.TraceDir)
	if err != nil {
		return 0
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trc") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
		data, err := os.ReadFile(filepath.Join(c.TraceDir, n))
		if err != nil {
			continue
		}
		h.Write(data)
	}
	return h.Sum64()
}

// traceCache memoizes decoded trace files across the grid's cells (one
// workload's trace replays into every analysis column) keyed by path
// plus the file's stat identity, so a regenerated file is re-decoded.
var traceCache = struct {
	mu sync.Mutex
	m  map[traceKey]*trace.Trace
}{m: map[traceKey]*trace.Trace{}}

type traceKey struct {
	path string
	size int64
	mod  int64
}

func loadTraceFile(path string) (*trace.Trace, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	key := traceKey{path: path, size: st.Size(), mod: st.ModTime().UnixNano()}
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	if tr := traceCache.m[key]; tr != nil {
		return tr, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	traceCache.m[key] = tr
	return tr, nil
}

// runnerReplay builds the trace-driven runner for a compiled analysis
// on a workload: the instrumented program replays the workload's
// recorded plain trace instead of re-executing live.
func (c Config) runnerReplay(a *compiler.Analysis, name string) (runnerFn, error) {
	p, err := workloads.Build(name, c.Size)
	if err != nil {
		return nil, err
	}
	inst, err := instrument.Apply(p, a)
	if err != nil {
		return nil, err
	}
	tr, err := loadTraceFile(c.tracePath(name))
	if err != nil {
		return nil, err
	}
	opt := c.Opt
	opt.ReplayTrace = tr
	return func() (*vm.Result, error) { return core.RunInstrumented(inst, a, opt) }, nil
}

// Replay measures live analysis runs against trace-driven replay runs
// of the same analyses, normalized to the uninstrumented baseline. The
// trailing summary line reports the average replay saving per analysis.
func Replay(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if err := cfg.ensureTraces(ReplayPrograms); err != nil {
		return nil, err
	}
	var compiled []*compiler.Analysis
	var measured []string
	for _, n := range ReplayAnalyses {
		a, err := analyses.Compile(n, compiler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		compiled = append(compiled, a)
		measured = append(measured, n+"-live", n+"-replay")
	}
	t, err := cfg.runGrid(gridSpec{
		name:     "replay",
		title:    fmt.Sprintf("Record/replay: live analysis vs trace-driven replay (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: measured,
		programs: ReplayPrograms,
		runner: func(c Config, w string, col int) (runnerFn, error) {
			if col < 0 {
				return c.runnerPlain(w)
			}
			a := compiled[col/2]
			if col%2 == 0 {
				return c.runnerALDA(a, w)
			}
			return c.runnerReplay(a, w)
		},
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ReplayAnalyses {
		live, rep := t.Averages[2*i], t.Averages[2*i+1]
		if live > 0 && rep > 0 {
			fmt.Fprintf(cfg.Out, "replay saving %-8s %.1f%% of the live analysis run\n", n, (1-rep/live)*100)
		}
	}
	fmt.Fprintln(cfg.Out)
	return t, nil
}
