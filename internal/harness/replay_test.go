package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workloads"
)

// replayTestConfig is the deterministic tiny sweep the replay tests
// share: virtual timing makes re-measured and resumed tables
// byte-identical.
func replayTestConfig(dir string) Config {
	return Config{
		Size:        workloads.SizeTiny,
		Virtual:     true,
		Parallelism: 4,
		KeepGoing:   true,
		TraceDir:    filepath.Join(dir, "traces"),
		TraceRecord: true,
	}
}

// TestReplayExperiment runs the record/replay grid end to end: traces
// recorded on first use, every cell green, and a second run (traces
// already on disk, TraceRecord off) renders byte-identically.
func TestReplayExperiment(t *testing.T) {
	dir := t.TempDir()
	cfg := replayTestConfig(dir)
	var out1 bytes.Buffer
	cfg.Out = &out1
	t1, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != len(ReplayPrograms) {
		t.Fatalf("rows: got %d, want %d", len(t1.Rows), len(ReplayPrograms))
	}
	for _, r := range t1.Rows {
		if r.BaseErr != "" {
			t.Fatalf("%s: degraded baseline: %s", r.Workload, r.BaseErr)
		}
		for ci, e := range r.Errs {
			if e != "" {
				t.Fatalf("%s/%s: degraded cell: %s", r.Workload, t1.Columns[ci], e)
			}
		}
	}
	for _, w := range ReplayPrograms {
		if _, err := os.Stat(cfg.tracePath(w)); err != nil {
			t.Fatalf("trace not recorded: %v", err)
		}
	}

	cfg2 := cfg
	cfg2.TraceRecord = false // the directory is complete now
	var out2 bytes.Buffer
	cfg2.Out = &out2
	if _, err := Replay(cfg2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("virtual replay sweep is not reproducible\n--- first:\n%s\n--- second:\n%s", out1.String(), out2.String())
	}
}

// TestReplayMissingTrace: with TraceRecord off, a missing trace is a
// sweep-level error naming the file, not a degraded cell.
func TestReplayMissingTrace(t *testing.T) {
	dir := t.TempDir()
	cfg := replayTestConfig(dir)
	cfg.TraceRecord = false
	_, err := Replay(cfg)
	if err == nil || !strings.Contains(err.Error(), "missing recorded trace") {
		t.Fatalf("want missing-trace error, got %v", err)
	}
}

// TestResumeRejectsStaleTrace is the checkpoint-staleness regression:
// the fingerprint must incorporate the trace file contents, so a
// checkpoint written against one set of traces is rejected (cells
// re-measure) once a trace is mutated, instead of silently restoring
// measurements of a stream that no longer exists.
func TestResumeRejectsStaleTrace(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.jsonl")
	cfg := replayTestConfig(dir)
	cfg.CheckpointPath = ckpt
	if _, err := Replay(cfg); err != nil {
		t.Fatal(err)
	}
	fpBefore := cfg.withDefaults().fingerprint()
	recs, err := loadCheckpoint(ckpt, "replay", fpBefore)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(ReplayPrograms) * (2*len(ReplayAnalyses) + 1)
	if len(recs) != wantCells {
		t.Fatalf("checkpointed cells: got %d, want %d", len(recs), wantCells)
	}

	// An untouched resume restores every cell.
	var progress bytes.Buffer
	res := cfg
	res.Resume = true
	res.Progress = &progress
	if _, err := Replay(res); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(progress.String(), "resumed from checkpoint"); got != wantCells {
		t.Fatalf("untouched resume restored %d cells, want %d", got, wantCells)
	}

	// Mutate one byte of one recorded trace: the fingerprint must
	// change, and the old records must stop matching.
	path := cfg.tracePath(ReplayPrograms[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fpAfter := cfg.withDefaults().fingerprint()
	if fpAfter == fpBefore {
		t.Fatal("fingerprint ignores trace contents")
	}
	recs, err = loadCheckpoint(ckpt, "replay", fpAfter)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("stale-trace checkpoint still matches %d cells", len(recs))
	}

	// And a resumed sweep against the mutated trace re-measures: no
	// cell may restore from the stale checkpoint.
	progress.Reset()
	if _, err := Replay(res); err != nil {
		// Degraded cells are fine here (the mutated stream may diverge);
		// restoring stale measurements is not.
		t.Logf("resumed sweep degraded (expected with a corrupted trace): %v", err)
	}
	if got := strings.Count(progress.String(), "resumed from checkpoint"); got != 0 {
		t.Fatalf("stale-trace resume restored %d cells from the checkpoint", got)
	}
}
