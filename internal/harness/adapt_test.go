package harness

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

// fixedAdaptProfile is the pinned training profile for the golden and
// determinism tests: addr2label hot, addr2size cold (16 < 4096/16), the
// split the adaptive pass must decide.
func fixedAdaptProfile() *compiler.Profile {
	return &compiler.Profile{Counts: map[string]uint64{"addr2label": 4096, "addr2size": 16}}
}

// TestAdaptiveTableGolden pins the adaptive -virtual table AND the
// adaptation decision log for a fixed profile, and asserts the render
// is byte-identical between serial and 8-way parallel sweeps — the
// hot-swap must not make cell results order-dependent.
func TestAdaptiveTableGolden(t *testing.T) {
	render := func(parallelism int) string {
		var buf bytes.Buffer
		cfg := Config{
			Size:        workloads.SizeTiny,
			Reps:        1,
			Virtual:     true,
			Parallelism: parallelism,
			Out:         &buf,
			Adapt:       true,
			PGOProfile:  fixedAdaptProfile(),
		}
		if _, err := Adapt(cfg); err != nil {
			t.Fatalf("Adapt parallelism=%d: %v", parallelism, err)
		}
		return buf.String()
	}
	serial := render(1)
	if parallel := render(8); parallel != serial {
		t.Errorf("adaptive render differs between serial and parallel runs\n--- serial ---\n%s--- parallel=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "split-cold addr2size") {
		t.Errorf("output lacks the cold-split decision\n%s", serial)
	}
	checkGolden(t, "adapt_virtual", serial)
}

// TestAdaptiveResumeMidSwap: a sweep checkpointed and killed BEFORE any
// hot-swapped cell completed (truncated to the profiling-quantum
// prefix) must resume to a byte-identical table — the resumed sweep
// re-derives the same profile, the same adaptation decisions, and the
// same adapted analysis.
func TestAdaptiveResumeMidSwap(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "adapt.jsonl")
	render := func(path string, resume bool, parallelism int, progress io.Writer) string {
		var buf bytes.Buffer
		cfg := Config{
			Size: workloads.SizeTiny, Reps: 1, Virtual: true, Parallelism: parallelism,
			Out: &buf, KeepGoing: true, CheckpointPath: path, Resume: resume,
			Adapt: true, Progress: progress,
		}
		if _, err := Adapt(cfg); err != nil {
			t.Fatalf("Adapt (resume=%v): %v", resume, err)
		}
		return buf.String()
	}
	clean := render("", false, 4, nil)
	// Serial run: cells complete in index order, so the checkpoint's
	// record order is the grid order and a prefix cut lands exactly
	// "before the swap".
	full := render(ckpt, false, 1, nil)
	if full != clean {
		t.Fatalf("checkpointing changed the rendered output\n--- clean ---\n%s--- checkpointed ---\n%s", clean, full)
	}

	// Keep the first program's cells plus the next baseline: everything
	// recorded so far ran static or profiling layouts — the hot swap has
	// not happened yet.
	const keep = 7
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) <= keep {
		t.Fatalf("checkpoint has only %d records", len(lines))
	}
	if err := os.WriteFile(ckpt, []byte(strings.Join(lines[:keep], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	resumed := render(ckpt, true, 4, &progress)
	if resumed != clean {
		t.Errorf("mid-swap resume differs from uninterrupted run\n--- clean ---\n%s--- resumed ---\n%s", clean, resumed)
	}
	if n := strings.Count(progress.String(), "resumed from checkpoint"); n != keep {
		t.Errorf("resumed %d cells from the truncated checkpoint, want %d", n, keep)
	}
}

// TestAdaptiveConcurrentSwap is the -race proof that concurrent cells
// share one adapted CachedCompile entry during the swap: 8 workers race
// into the hot swap, and a second identical sweep (fresh adaptState,
// same fingerprint) performs zero additional compiles — every adapted
// cell of both sweeps used the one cached entry.
func TestAdaptiveConcurrentSwap(t *testing.T) {
	compiler.ResetCompileCache()
	defer compiler.ResetCompileCache()
	run := func() string {
		var buf bytes.Buffer
		cfg := Config{
			Size: workloads.SizeTiny, Reps: 1, Virtual: true, Parallelism: 8,
			Out: &buf, Adapt: true,
		}
		if _, err := Adapt(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	_, m1, _ := compiler.CompileCacheStats()
	second := run()
	_, m2, _ := compiler.CompileCacheStats()
	if second != first {
		t.Errorf("adaptive sweep not deterministic across runs\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if m2 != m1 {
		t.Errorf("second sweep recompiled (misses %d -> %d): the adapted compile did not hit the cache", m1, m2)
	}
	if !strings.Contains(first, "re-select") {
		t.Errorf("trained adaptation did not re-select layout\n%s", first)
	}
}

// TestAdaptiveStaleProfileDegrades: a -profile-in profile naming
// members the analysis does not have must degrade to static selection
// with a warning, in both the Adapt and PGO experiments.
func TestAdaptiveStaleProfileDegrades(t *testing.T) {
	stale := &compiler.Profile{Counts: map[string]uint64{"addr2label": 4096, "lockset": 16}}
	renderAdapt := func(p *compiler.Profile) string {
		var buf bytes.Buffer
		cfg := Config{
			Size: workloads.SizeTiny, Reps: 1, Virtual: true, Parallelism: 4,
			Out: &buf, Adapt: true, PGOProfile: p,
		}
		if _, err := Adapt(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	got := renderAdapt(stale)
	if !strings.Contains(got, "warning: -profile-in") || !strings.Contains(got, "lockset") {
		t.Errorf("stale profile did not warn\n%s", got)
	}
	if !strings.Contains(got, "static cost model retained") {
		t.Errorf("stale profile did not degrade to static selection\n%s", got)
	}
	// Apart from the warning line, the degraded sweep must equal one
	// run with an explicitly empty profile (pure static selection).
	want := renderAdapt(&compiler.Profile{})
	if i := strings.IndexByte(got, '\n'); i < 0 || got[i+1:] != want {
		t.Errorf("degraded sweep differs from static selection\n--- degraded ---\n%s--- static ---\n%s", got, want)
	}

	// Same contract on the PGO experiment's -profile-in path.
	renderPGO := func(p *compiler.Profile) string {
		var buf bytes.Buffer
		cfg := Config{
			Size: workloads.SizeTiny, Reps: 1, Virtual: true, Parallelism: 4,
			Out: &buf, PGOProfile: p,
		}
		if _, err := PGO(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	gotPGO := renderPGO(stale)
	if !strings.Contains(gotPGO, "warning: -profile-in") {
		t.Errorf("PGO with stale profile did not warn\n%s", gotPGO)
	}
	wantPGO := renderPGO(&compiler.Profile{})
	if i := strings.IndexByte(gotPGO, '\n'); i < 0 || gotPGO[i+1:] != wantPGO {
		t.Errorf("PGO degraded sweep differs from empty-profile run\n--- degraded ---\n%s--- empty ---\n%s", gotPGO, wantPGO)
	}
}
