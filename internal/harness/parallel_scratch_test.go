package harness

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/workloads"
)

// TestConcurrentCellsSharedCompile is the race-detector coverage for
// the pooled-scratch hot path: eight concurrent cells share one
// CachedCompile analysis (whose compiled handler closures capture
// preallocated scratch buffers) while each cell gets its own Runtime
// and Machine (whose threads pool hook-argument and shadow slices).
// Under `make race` this proves the pools are per-runtime/per-thread,
// not accidentally shared through the memoized Analysis. Verdicts must
// also match a serial rerun of the same cells exactly.
func TestConcurrentCellsSharedCompile(t *testing.T) {
	a, err := analyses.Compile("uaf", compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	progs := []string{"fft", "lu", "radix", "barnes", "ocean", "radiosity", "raytrace", "volrend"}

	runCells := func(parallel bool) []string {
		out := make([]string, len(progs))
		var wg sync.WaitGroup
		for i, name := range progs {
			cell := func(i int, name string) {
				defer wg.Done()
				p, err := workloads.BuildBug(name, workloads.SizeTiny, workloads.BugUAF)
				if err != nil {
					out[i] = "builderr: " + err.Error()
					return
				}
				res, err := core.RunAnalysis(p, a, core.RunOptions{Seed: int64(i) + 1})
				if err != nil {
					out[i] = "runerr: " + err.Error()
					return
				}
				out[i] = fmt.Sprintf("%s: %d reports", name, len(res.Reports))
			}
			wg.Add(1)
			if parallel {
				go cell(i, name)
			} else {
				cell(i, name)
			}
		}
		wg.Wait()
		return out
	}

	concurrent := runCells(true)
	serial := runCells(false)
	for i := range progs {
		if concurrent[i] != serial[i] {
			t.Errorf("cell %s diverges: concurrent %q vs serial %q", progs[i], concurrent[i], serial[i])
		}
		if concurrent[i] == fmt.Sprintf("%s: 0 reports", progs[i]) {
			t.Errorf("cell %s: planted UAF not reported", progs[i])
		}
	}
}
