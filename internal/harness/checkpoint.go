package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/vm"
)

// Cell checkpointing: every completed measurement cell appends one
// JSONL record, so a killed sweep loses at most the cells in flight.
// Records carry a config fingerprint; -resume replays only records
// whose grid, cell and fingerprint match, restoring the measured wall
// (or the degraded error) verbatim. Under -virtual the restored values
// equal what a re-measurement would produce, so a resumed sweep renders
// byte-identical to an uninterrupted one.

// checkpointRecord is one completed cell.
type checkpointRecord struct {
	Grid    string `json:"grid"`
	Cell    string `json:"cell"` // "<program>/<column>"
	Fp      string `json:"fp"`
	WallNS  int64  `json:"wall_ns"`
	ErrKind string `json:"err_kind,omitempty"`
	ErrMsg  string `json:"err_msg,omitempty"`
	// Metrics carries the cell's deterministic observability counters
	// when the sweep ran with Config.Metrics, so a resumed sweep merges
	// the identical counts a re-measurement would have produced.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// fingerprint ties checkpoint records to the measurement parameters
// that determine a cell's value; a stale checkpoint from a different
// configuration is ignored rather than poisoning the resumed table.
func (c Config) fingerprint() string {
	// metrics participates because it changes what a record must carry:
	// a checkpoint written without counters cannot resume a metrics
	// sweep (the resumed cells would silently contribute nothing).
	fp := fmt.Sprintf("size=%s reps=%d seed=%d virtual=%v metrics=%v engine=%s",
		c.Size, c.Reps, c.Opt.Seed, c.Virtual, c.Metrics != nil, c.Opt.Engine)
	if c.TraceDir != "" {
		// Replay cells measure whatever stream is on disk: bind the
		// checkpoint to the trace bytes so a regenerated or mutated
		// trace invalidates cells recorded against the old one.
		fp += fmt.Sprintf(" trace=%016x", c.traceHash())
	}
	if c.Adapt {
		// Adaptive cells depend on the quantum configuration and, when
		// a -profile-in file replaces the training run, on the profile
		// itself; a checkpoint from a different adaptation must not
		// resume into this sweep. Gated on Adapt so every existing
		// non-adaptive checkpoint stays valid.
		fp += fmt.Sprintf(" adapt=%d/%d", c.AdaptAfter, c.AdaptMaxSteps)
		if c.PGOProfile != nil {
			fp += fmt.Sprintf(" aprof=%016x", c.PGOProfile.Hash())
		}
	}
	return fp
}

// checkpointSyncEvery batches fsync: every Nth appended record forces
// the file to stable storage. Between syncs a power loss can drop at
// most the unsynced tail — each record is still a single write, so the
// surviving prefix plus at most one torn line is all a reader ever
// sees, and loadCheckpoint tolerates the torn line.
const checkpointSyncEvery = 8

// checkpointWriter appends records to the checkpoint file; safe for the
// concurrent cell workers. Writes are durable: appended records are
// fsynced in small batches and on close, so a machine crash (not just a
// process kill) loses at most the last few cells.
type checkpointWriter struct {
	mu      sync.Mutex
	f       *os.File
	pending int // records appended since the last sync
}

func newCheckpointWriter(path string) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

func (w *checkpointWriter) append(rec checkpointRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(b); err != nil { // one line per write: a kill never tears a record
		return err
	}
	w.pending++
	if w.pending >= checkpointSyncEvery {
		w.pending = 0
		return w.f.Sync()
	}
	return nil
}

// sync flushes any unsynced records to stable storage.
func (w *checkpointWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pending == 0 {
		return nil
	}
	w.pending = 0
	return w.f.Sync()
}

func (w *checkpointWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pending > 0 {
		w.pending = 0
		w.f.Sync()
	}
	return w.f.Close()
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place — a crash leaves
// either the old file or the complete new one, never a torn prefix.
// The harness uses it for whole-file artifacts (metrics exports,
// journal headers) whose readers cannot tolerate partial contents the
// way the JSONL record streams can.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := "."
	if i := lastSlash(path); i >= 0 {
		dir = path[:i+1]
	}
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// loadCheckpoint reads the records of path that match the grid and
// fingerprint, keyed by cell. A missing file is an empty resume, not an
// error (first run with -resume -checkpoint is legal); a torn trailing
// line (the kill arrived mid-write) is skipped.
func loadCheckpoint(path, grid, fp string) (map[string]checkpointRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]checkpointRecord{}, nil
		}
		return nil, err
	}
	defer f.Close()
	out := map[string]checkpointRecord{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec checkpointRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn or foreign line
		}
		if rec.Grid == grid && rec.Fp == fp {
			out[rec.Cell] = rec
		}
	}
	return out, sc.Err()
}

// restoreErr rehydrates a checkpointed degraded cell into an error that
// renders with the same kind label as the live failure did.
func restoreErr(rec checkpointRecord) error {
	if rec.ErrKind == "" {
		return nil
	}
	if k, ok := vm.ParseKind(rec.ErrKind); ok {
		return &vm.RunError{Kind: k, Msg: rec.ErrMsg}
	}
	return &cellFailure{kind: rec.ErrKind, msg: rec.ErrMsg}
}

// cellFailure is a non-VM cell error (builder failure, handler panic
// outside the VM) with the kind label it renders under.
type cellFailure struct {
	kind string
	msg  string
}

func (e *cellFailure) Error() string { return e.msg }

// errKindLabel maps a cell error to its degraded-cell label: the
// RunError kind name, a preserved checkpoint label, or "fail" for
// untyped errors (build failures and the like).
func errKindLabel(err error) string {
	var re *vm.RunError
	if errors.As(err, &re) {
		return re.Kind.String()
	}
	var cf *cellFailure
	if errors.As(err, &cf) {
		return cf.kind
	}
	return "fail"
}
