package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analyses"
	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Fig3Programs is the paper's Figure 3 program list: SPECInt minus gcc,
// Splash2 minus the four programs excluded for uninitialized-memory
// reports, plus the four real-world programs.
var Fig3Programs = []string{
	"bzip2", "gobmk", "h264ref", "hmmer", "libquantum", "mcf", "perlbench", "sjeng",
	"fft", "lu_c", "lu_nc", "radix", "cholesky", "raytrace", "water_ns", "radiosity",
	"memcached", "sort", "ffmpeg", "nginx",
}

// Fig4Programs is the full Splash2 suite of Figure 4.
var Fig4Programs = []string{
	"fft", "lu_c", "lu_nc", "radix", "cholesky", "barnes", "fmm",
	"ocean", "raytrace", "water_ns", "volrend", "radiosity",
}

// Fig5Programs is Figure 5's list: Splash2 plus the multi-threadable
// real-world programs (the paper excludes SPEC and nginx).
var Fig5Programs = append(append([]string{}, Fig4Programs...), "memcached", "sort", "ffmpeg")

// Fig3 compares the hand-tuned MemorySanitizer with ALDA MSan across
// the 20-program suite (normalized overhead; Figure 3).
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	msan, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return cfg.runGrid(gridSpec{
		name:     "fig3",
		title:    fmt.Sprintf("Figure 3: LLVM-style hand-tuned MSan vs ALDA MSan (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: []string{"hand-MSan", "ALDAcc-MSan"},
		programs: Fig3Programs,
		runner: func(c Config, w string, col int) (runnerFn, error) {
			switch col {
			case -1:
				return c.runnerPlain(w)
			case 0:
				return c.runnerBaseline(func() baselines.Baseline { return baselines.NewMSan(1 << 28) }, w)
			default:
				return c.runnerALDA(msan, w)
			}
		},
	})
}

// Fig4 compares hand-tuned Eraser, ALDAcc-full Eraser and the
// ALDAcc-ds-only ablation on Splash2 (Figure 4).
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	full, err := analyses.Compile("eraser", compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	dsOnly, err := analyses.Compile("eraser", compiler.DSOnlyOptions())
	if err != nil {
		return nil, err
	}
	return cfg.runGrid(gridSpec{
		name:     "fig4",
		title:    fmt.Sprintf("Figure 4: hand-tuned Eraser vs ALDAcc Eraser on Splash2 (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: []string{"hand-tuned", "ALDAcc-full", "ALDAcc-ds-only"},
		programs: Fig4Programs,
		runner: func(c Config, w string, col int) (runnerFn, error) {
			switch col {
			case -1:
				return c.runnerPlain(w)
			case 0:
				return c.runnerBaseline(func() baselines.Baseline { return baselines.NewEraser() }, w)
			case 1:
				return c.runnerALDA(full, w)
			default:
				return c.runnerALDA(dsOnly, w)
			}
		},
	})
}

// Fig5 runs Eraser, FastTrack, UAF and index taint-tracking
// individually (overheads summed) and combined (one concatenated
// analysis), reporting the combined-analysis speedup (Figure 5).
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	parts := []string{"eraser", "fasttrack", "uaf", "tainttrack"}
	var individual []*compiler.Analysis
	for _, n := range parts {
		a, err := analyses.Compile(n, compiler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		individual = append(individual, a)
	}
	combined, err := analyses.CompileCombined(compiler.DefaultOptions(), parts...)
	if err != nil {
		return nil, err
	}
	noFuseOpts := compiler.DefaultOptions()
	noFuseOpts.FuseHandlers = false
	combinedNoFuse, err := analyses.CompileCombined(noFuseOpts, parts...)
	if err != nil {
		return nil, err
	}
	t, err := cfg.runGrid(gridSpec{
		name:     "fig5",
		title:    fmt.Sprintf("Figure 5: individual analyses (summed) vs combined analysis (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: []string{"eraser", "fasttrack", "uaf", "indexTT", "comb-nofuse", "combined"},
		columns:  []string{"eraser", "fasttrack", "uaf", "indexTT", "sum", "comb-nofuse", "combined"},
		finish: func(m []float64) []float64 {
			sum := m[0] + m[1] + m[2] + m[3]
			return []float64{m[0], m[1], m[2], m[3], sum, m[4], m[5]}
		},
		finishErrs: func(e []string) []string {
			// The derived sum is degraded if any of its inputs is.
			sumErr := ""
			for _, k := range e[:4] {
				if k != "" {
					sumErr = k
					break
				}
			}
			return []string{e[0], e[1], e[2], e[3], sumErr, e[4], e[5]}
		},
		programs: Fig5Programs,
		runner: func(c Config, w string, col int) (runnerFn, error) {
			switch {
			case col < 0:
				return c.runnerPlain(w)
			case col < len(individual):
				return c.runnerALDA(individual[col], w)
			case col == len(individual):
				return c.runnerALDA(combinedNoFuse, w)
			default:
				return c.runnerALDA(combined, w)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if len(t.Averages) == 7 && t.Averages[4] > 0 {
		fmt.Fprintf(cfg.Out, "combined-analysis speedup vs running individually: %.1f%% (%.1f%% without handler fusion)\n\n",
			(1-t.Averages[6]/t.Averages[4])*100, (1-t.Averages[5]/t.Averages[4])*100)
	}
	return t, nil
}

// Table3Row is one error-report validation row.
type Table3Row struct {
	Program  string
	Location string
	ALDAHit  bool
	HandHit  bool
	Notes    string
}

// Table3 reruns the MSan error-report validation: three planted true
// positives caught by both implementations, and the two gets() false
// positives unique to the hand-tuned (LLVM-style) MSan.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	msan, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cases := []struct {
		workload string
		bug      workloads.Bug
		notes    string
	}{
		{"fmm", workloads.BugNone, "gets() parameter read: hand MSan lacks the interceptor -> false positive"},
		{"barnes", workloads.BugNone, "gets() parameter read: hand MSan lacks the interceptor -> false positive"},
		{"ocean", workloads.BugUninit, "true uninitialized grid read, reported by both"},
		{"volrend", workloads.BugUninit, "true uninitialized opacity-table read, reported by both"},
		{"gcc", workloads.BugUninit, "true uninitialized bitmap read, reported by both"},
	}
	var rows []Table3Row
	for _, c := range cases {
		p, err := workloads.BuildBug(c.workload, cfg.Size, c.bug)
		if err != nil {
			return nil, err
		}
		inst, err := core.RunAnalysis(p, msan, cfg.Opt)
		if err != nil {
			return nil, err
		}
		hand, err := core.RunBaseline(p, func() baselines.Baseline { return baselines.NewMSan(1 << 28) }, cfg.Opt)
		if err != nil {
			return nil, err
		}
		loc := "-"
		if len(hand.Reports) > 0 {
			loc = hand.Reports[0].Where
		}
		if len(inst.Reports) > 0 {
			loc = inst.Reports[0].Where
		}
		rows = append(rows, Table3Row{
			Program:  c.workload,
			Location: loc,
			ALDAHit:  len(inst.Reports) > 0,
			HandHit:  len(hand.Reports) > 0,
			Notes:    c.notes,
		})
	}
	fmt.Fprintln(cfg.Out, "Table 3: MSan error-report validation")
	fmt.Fprintf(cfg.Out, "%-10s %-22s %-10s %-10s %s\n", "program", "location", "ALDA-MSan", "hand-MSan", "notes")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-10s %-22s %-10v %-10v %s\n", r.Program, r.Location, r.ALDAHit, r.HandHit, r.Notes)
	}
	fmt.Fprintln(cfg.Out)
	return rows, nil
}

// Table4Row is one analysis's line-count entry.
type Table4Row struct {
	Name string
	LOC  int
}

// Table4 reports ALDA line counts for the eight analyses (Table 4 lists
// six plus the two library sanitizers of §6.4.1), alongside the
// hand-tuned comparator sizes the paper cites.
func Table4(cfg Config) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table4Row
	for _, name := range analyses.Names() {
		src, err := analyses.Source(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{Name: name, LOC: compiler.CountLOC(src)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	fmt.Fprintln(cfg.Out, "Table 4: analysis sizes in lines of ALDA")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-14s %5d LOC\n", r.Name, r.LOC)
	}
	fmt.Fprintln(cfg.Out, "reference comparators from the paper: LLVM MSan 8146 LOC (C++), hand-tuned Eraser 690 LOC")
	fmt.Fprintln(cfg.Out)
	return rows, nil
}

// LibSanResult is one §6.4.1 bug-detection outcome.
type LibSanResult struct {
	Sanitizer string
	Workload  string
	Bug       workloads.Bug
	Found     bool
	Message   string
}

// LibSan reruns §6.4.1: SSLSan on the memcached and nginx bugs, ZlibSan
// on the ffmpeg bug.
func LibSan(cfg Config) ([]LibSanResult, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		san, workload string
		bug           workloads.Bug
		want          string
	}{
		{"sslsan", "memcached", workloads.BugSSLLeak, "leak"},
		{"sslsan", "memcached", workloads.BugSSLShutdown, "without SSL_shutdown"},
		{"sslsan", "nginx", workloads.BugSSLShutdown, "without SSL_shutdown"},
		{"zlibsan", "ffmpeg", workloads.BugZlibUninit, "uninitialized z_stream"},
	}
	var out []LibSanResult
	fmt.Fprintln(cfg.Out, "Section 6.4.1: library-specific sanitizers on real-world bug classes")
	for _, c := range cases {
		a, err := analyses.Compile(c.san, compiler.DefaultOptions())
		if err != nil {
			return nil, err
		}
		p, err := workloads.BuildBug(c.workload, cfg.Size, c.bug)
		if err != nil {
			return nil, err
		}
		res, err := core.RunAnalysis(p, a, cfg.Opt)
		if err != nil {
			return nil, err
		}
		found := false
		msg := ""
		for _, r := range res.Reports {
			if strings.Contains(r.Message, c.want) {
				found = true
				msg = r.String()
				break
			}
		}
		out = append(out, LibSanResult{Sanitizer: c.san, Workload: c.workload, Bug: c.bug, Found: found, Message: msg})
		fmt.Fprintf(cfg.Out, "%-8s on %-10s bug=%-13s found=%v  %s\n", c.san, c.workload, c.bug, found, msg)
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// PGO measures profile-guided coalescing (§3.2.1's future work) on
// MSan: statically, addr2label and addr2size share the address key and
// coalesce; a profiling run shows addr2size is cold (touched only at
// malloc/free), so the recompile splits it out, halving the hot shadow
// entry.
func PGO(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	static, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// Train on one representative workload, apply everywhere — the
	// usual PGO deployment shape. A profile loaded from disk
	// (-profile-in) replaces the inline training run; the deterministic
	// VM makes the two routes produce the same profile. A stale profile
	// (collected against a different analysis) degrades to static
	// selection with a warning — its counts name members this compile
	// does not have, so applying it would be layout roulette.
	prof := cfg.PGOProfile
	if prof != nil {
		if err := prof.MatchesAnalysis(static); err != nil {
			fmt.Fprintf(cfg.Out, "warning: -profile-in %v: degrading to static selection\n", err)
			prof = &compiler.Profile{}
		}
	}
	if prof == nil {
		train, err := workloads.Build("libquantum", workloads.SizeTiny)
		if err != nil {
			return nil, err
		}
		prof, err = core.CollectProfile(static, train, cfg.Opt)
		if err != nil {
			return nil, err
		}
	}
	pgo, err := core.RecompileWithProfile(static, prof)
	if err != nil {
		return nil, err
	}
	return cfg.runGrid(gridSpec{
		name:     "pgo",
		title:    fmt.Sprintf("PGO: static vs profile-guided coalescing, ALDA MSan (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: []string{"static", "pgo"},
		programs: []string{"bzip2", "libquantum", "mcf", "hmmer", "fft", "sort", "memcached"},
		runner: func(c Config, w string, col int) (runnerFn, error) {
			switch col {
			case -1:
				return c.runnerPlain(w)
			case 0:
				return c.runnerALDA(static, w)
			default:
				return c.runnerALDA(pgo, w)
			}
		},
	})
}

// Ablate measures Eraser under finer optimization combinations than
// Figure 4: full, CSE off, coalescing off, both off (ds-only), and the
// naive configuration (hash maps + tree sets everywhere).
func Ablate(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	mk := func(coalesce, cse, smart bool) compiler.Options {
		o := compiler.DefaultOptions()
		o.Coalesce, o.CSE, o.SmartSelect = coalesce, cse, smart
		return o
	}
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"full", mk(true, true, true)},
		{"no-cse", mk(true, false, true)},
		{"no-coalesce", mk(false, true, true)},
		{"ds-only", mk(false, false, true)},
		{"naive", mk(false, false, false)},
	}
	var compiled []*compiler.Analysis
	var names []string
	for _, c := range configs {
		a, err := analyses.Compile("eraser", c.opts)
		if err != nil {
			return nil, err
		}
		compiled = append(compiled, a)
		names = append(names, c.name)
	}
	return cfg.runGrid(gridSpec{
		name:     "ablate",
		title:    fmt.Sprintf("Ablation: Eraser under ALDAcc optimization subsets (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: names,
		programs: []string{"fft", "lu_c", "radix", "water_ns", "radiosity"},
		runner: func(c Config, w string, col int) (runnerFn, error) {
			if col < 0 {
				return c.runnerPlain(w)
			}
			return c.runnerALDA(compiled[col], w)
		},
	})
}

// ensure vm import is used in signatures above
var _ = vm.FormatReports

// MemRow is one memory-footprint measurement (bytes of analysis
// metadata after a run).
type MemRow struct {
	Workload  string
	HandBytes uint64
	ALDABytes uint64
	// PGOBytes is set for the MSan rows: footprint after profile-guided
	// coalescing splits the cold sidecar back out.
	PGOBytes uint64
}

// Mem reruns §6.2's memory comparison: metadata footprint of the
// hand-tuned implementations vs the ALDAcc-compiled ones, measured at
// the end of one run. MSan compares on single-threaded programs, Eraser
// on Splash2.
func Mem(cfg Config) ([]MemRow, error) {
	cfg = cfg.withDefaults()
	var out []MemRow

	measureALDA := func(a *compiler.Analysis, w string) (uint64, error) {
		p, err := workloads.Build(w, cfg.Size)
		if err != nil {
			return 0, err
		}
		inst, err := instrument.Apply(p, a)
		if err != nil {
			return 0, err
		}
		rt, err := a.NewRuntime()
		if err != nil {
			return 0, err
		}
		m, err := vm.New(inst, vm.Config{TrackShadow: a.NeedShadow, Seed: cfg.Opt.Seed})
		if err != nil {
			return 0, err
		}
		m.Handlers = rt.Handlers()
		if _, err := m.Run(); err != nil {
			return 0, err
		}
		return rt.MetadataBytes(), nil
	}
	measureHand := func(b baselines.Baseline, w string) (uint64, error) {
		p, err := workloads.Build(w, cfg.Size)
		if err != nil {
			return 0, err
		}
		inst, err := baselines.InstrumentBaseline(p, b)
		if err != nil {
			return 0, err
		}
		m, err := vm.New(inst, vm.Config{TrackShadow: b.NeedShadow(), Seed: cfg.Opt.Seed})
		if err != nil {
			return 0, err
		}
		m.Handlers = b.Handlers()
		if _, err := m.Run(); err != nil {
			return 0, err
		}
		return b.Footprint(), nil
	}

	fmt.Fprintln(cfg.Out, "Memory: analysis metadata footprint after one run (hand-tuned vs ALDAcc)")
	msan, err := analyses.Compile("msan", compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// Static coalescing folds the cold addr2size sidecar into the hot
	// shadow entry (2 words); the PGO recompile splits it back out, so
	// measure both.
	train, err := workloads.Build("libquantum", workloads.SizeTiny)
	if err != nil {
		return nil, err
	}
	prof, err := core.CollectProfile(msan, train, cfg.Opt)
	if err != nil {
		return nil, err
	}
	msanPGO, err := core.RecompileWithProfile(msan, prof)
	if err != nil {
		return nil, err
	}
	for _, w := range []string{"bzip2", "libquantum", "memcached", "sort"} {
		hb, err := measureHand(baselines.NewMSan(1<<28), w)
		if err != nil {
			return nil, err
		}
		ab, err := measureALDA(msan, w)
		if err != nil {
			return nil, err
		}
		pb, err := measureALDA(msanPGO, w)
		if err != nil {
			return nil, err
		}
		out = append(out, MemRow{Workload: "msan/" + w, HandBytes: hb, ALDABytes: ab, PGOBytes: pb})
	}
	eraser, err := analyses.Compile("eraser", compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for _, w := range []string{"fft", "lu_c", "water_ns", "radiosity"} {
		hb, err := measureHand(baselines.NewEraser(), w)
		if err != nil {
			return nil, err
		}
		ab, err := measureALDA(eraser, w)
		if err != nil {
			return nil, err
		}
		out = append(out, MemRow{Workload: "eraser/" + w, HandBytes: hb, ALDABytes: ab})
	}
	for _, r := range out {
		ratio := float64(r.ALDABytes) / float64(r.HandBytes)
		if r.PGOBytes > 0 {
			fmt.Fprintf(cfg.Out, "%-18s hand=%10d B  alda=%10d B  ratio=%.2f  alda+pgo=%10d B  ratio=%.2f\n",
				r.Workload, r.HandBytes, r.ALDABytes, ratio, r.PGOBytes, float64(r.PGOBytes)/float64(r.HandBytes))
			continue
		}
		fmt.Fprintf(cfg.Out, "%-18s hand=%10d B  alda=%10d B  ratio=%.2f\n",
			r.Workload, r.HandBytes, r.ALDABytes, ratio)
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// Granularity sweeps the metadata granularity (§5.1: byte,
// quarter-word, half-word, word) for the use-after-free checker. Finer
// granularity is more precise (see the byte-granularity facade test)
// and costs more range work per allocation event.
func Granularity(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	grans := []int{1, 2, 4, 8}
	var compiled []*compiler.Analysis
	var names []string
	for _, g := range grans {
		opts := compiler.DefaultOptions()
		opts.Granularity = g
		a, err := analyses.Compile("uaf", opts)
		if err != nil {
			return nil, err
		}
		compiled = append(compiled, a)
		names = append(names, fmt.Sprintf("g=%dB", g))
	}
	return cfg.runGrid(gridSpec{
		name:     "gran",
		title:    fmt.Sprintf("Granularity sweep (§5.1): UAF checker at byte/quarter/half/word (size=%s, reps=%d)", cfg.Size, cfg.Reps),
		measured: names,
		programs: []string{"memcached", "sort", "bzip2", "mcf"},
		runner: func(c Config, w string, col int) (runnerFn, error) {
			if col < 0 {
				return c.runnerPlain(w)
			}
			return c.runnerALDA(compiled[col], w)
		},
	})
}
