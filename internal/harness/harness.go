// Package harness reruns the paper's evaluation (§6): it measures
// normalized overheads the way the paper does (repeated runs, first
// discarded as warm-up, geometric mean of the rest) and renders each
// table and figure of the evaluation section as text.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Config controls experiment execution.
type Config struct {
	// Size scales the workloads (default SizeSmall).
	Size workloads.Size
	// Reps is the number of measured repetitions per configuration
	// (default 3). One extra warm-up run is discarded, matching the
	// paper's "six runs, geomean of the later five" protocol scaled
	// down.
	Reps int
	// Opt is the VM configuration.
	Opt core.RunOptions
	// Engine selects the VM execution tier every cell runs under
	// (default the interpreter). withDefaults stamps it into Opt, and it
	// participates in the checkpoint fingerprint: tiers are observably
	// identical under -virtual, but a wall-clock checkpoint written by
	// one tier must not resume into a sweep measuring the other.
	Engine vm.Engine
	// Out receives rendered tables (nil ⇒ io.Discard).
	Out io.Writer
	// Parallelism is the number of worker goroutines that independent
	// measurement cells (one workload × one configuration, baseline
	// included) fan out across: 1 serializes, 0 or negative means
	// GOMAXPROCS. Each cell builds its own program and vm.Machine, and
	// results are aggregated by cell key in a fixed order, so the
	// rendered tables have the same shape and row/column order at any
	// parallelism — and are byte-identical when Virtual is set.
	Parallelism int
	// Virtual replaces measured wall-clock with a deterministic virtual
	// time derived from retired instructions and dispatched hooks. The
	// VM is deterministic, so a cell then reports the identical duration
	// on every run regardless of machine load or parallelism; the
	// determinism regression tests rely on this. One rep suffices in
	// virtual mode, so Reps is ignored.
	Virtual bool
	// Progress receives one line per completed measurement cell (nil ⇒
	// no progress output). Cells complete in nondeterministic order
	// under parallelism, so keep Progress separate from Out.
	Progress io.Writer
	// KeepGoing degrades failed cells instead of aborting the sweep: a
	// cell whose run fails (a vm.RunError, a build error, or a panic in
	// workload construction) renders as ERR(<kind>) and every other
	// cell still runs. Off, the sweep keeps the serial first-error
	// behavior: the lowest-indexed failure aborts it.
	KeepGoing bool
	// Retries re-measures a cell up to this many extra times when its
	// failure is retryable (vm.KindDeadline — the one load-dependent
	// kind). The wait between attempts starts at RetryBackoff (default
	// 100ms) and doubles, capped per-wait at RetryMaxBackoff (default
	// 2s) with deterministic equal-jitter decorrelation, and capped in
	// total at RetryBudget (default 30s) so a flapping cell cannot
	// stall a sweep — or a server drain — indefinitely.
	Retries         int
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	RetryBudget     time.Duration
	// SweepDeadline, when non-zero, is the absolute instant the sweep
	// must wind down by: a retry whose backoff wait would cross it is
	// abandoned and the cell degrades with its last error. Set by
	// drain paths that need the sweep to finish promptly.
	SweepDeadline time.Time
	// CheckpointPath appends one JSONL record per completed cell
	// (degraded cells included) to this file. Empty disables
	// checkpointing.
	CheckpointPath string
	// Resume loads CheckpointPath before the sweep and skips every cell
	// already recorded under the same grid and config fingerprint,
	// restoring its measurement (or degraded error) verbatim — an
	// interrupted -virtual sweep resumes byte-identical.
	Resume bool
	// CellFaults selects the fault-injection spec for a cell (nil ⇒
	// none). column is the rendered column name, "base" for the
	// uninstrumented baseline.
	CellFaults func(program, column string) vm.FaultSpec
	// Metrics, when non-nil, collects per-cell observability counters
	// into this registry: each cell runs with a private obs.Shard that
	// merges in on completion, so serial, parallel and resumed sweeps
	// accumulate identical deterministic counters. Wall-clock sweeps
	// additionally record per-hook nanoseconds (volatile counters).
	Metrics *obs.Registry
	// Trace, when non-nil, receives Chrome trace_event spans: one per
	// harness cell plus the VM quanta and fault instants inside it,
	// tagged with the cell index as the trace tid.
	Trace *obs.Trace
	// PGOProfile, when non-nil, replaces the PGO and Adapt experiments'
	// inline training runs with a previously collected profile
	// (-profile-in). A profile that does not match the measured analysis
	// degrades to static selection with a warning instead of silently
	// perturbing layout with stale counts.
	PGOProfile *compiler.Profile
	// Adapt enables the adaptive-PGO hot swap (-adapt): the Adapt
	// experiment's adaptive column runs its first AdaptAfter programs as
	// a profiling quantum (static layout plus access counters, measured
	// honestly), then recompiles through the compile cache with the
	// collected profile folded into the fingerprint and swaps the
	// adapted analysis in for every remaining cell. Off, the adaptive
	// column is the no-swap control (static analysis throughout).
	Adapt bool
	// AdaptAfter is the profiling-quantum length in programs (default 1).
	AdaptAfter int
	// AdaptMaxSteps bounds each training run the swap recomputes from
	// (default 1<<20 VM steps) — the quantum must stay a bounded
	// fraction of the sweep regardless of workload size.
	AdaptMaxSteps uint64
	// TraceDir is the directory of recorded plain-run traces
	// (<workload>.trc) the replay experiment measures against. The
	// checkpoint fingerprint hashes the trace contents, so -resume
	// rejects checkpoints written against different trace bytes.
	TraceDir string
	// TraceRecord permits recording missing traces into TraceDir
	// (-trace-out); off, a missing trace fails the sweep (-trace-in
	// expects a complete directory).
	TraceRecord bool
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Engine != vm.EngineInterp {
		c.Opt.Engine = c.Engine
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.RetryMaxBackoff <= 0 {
		c.RetryMaxBackoff = 2 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 30 * time.Second
	}
	if c.AdaptAfter <= 0 {
		c.AdaptAfter = 1
	}
	if c.AdaptMaxSteps == 0 {
		c.AdaptMaxSteps = 1 << 20
	}
	return c
}

// virtualWall converts a deterministic run summary into virtual time:
// one unit per retired instruction plus a fixed charge per dispatched
// analysis event (handler bodies run in Go, outside the step count).
func virtualWall(res *vm.Result) time.Duration {
	return time.Duration(res.Steps + 16*res.HookCalls)
}

// wallOf returns the duration measure() minimizes for one run.
func (c Config) wallOf(res *vm.Result) time.Duration {
	if c.Virtual {
		return virtualWall(res)
	}
	return res.Wall
}

// geomean returns the geometric mean of xs (0 for empty).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// measure runs fn Reps+1 times, discards the first run as warm-up, and
// returns the minimum wall time of the rest along with the last result.
// The paper geomeans five native runs; on a shared, contended machine
// the minimum is the robust estimator of the workload's intrinsic cost
// (OS noise only ever adds time), and since both the baseline and the
// instrumented run use it, normalized overheads stay comparable.
func (c Config) measure(fn func() (*vm.Result, error)) (time.Duration, *vm.Result, error) {
	if c.Virtual {
		// Virtual time is a pure function of the deterministic run, so
		// repetitions and warm-up would measure the same number again.
		res, err := fn()
		if err != nil {
			return 0, nil, err
		}
		return virtualWall(res), res, nil
	}
	best := time.Duration(0)
	var last *vm.Result
	for i := 0; i <= c.Reps; i++ {
		res, err := fn()
		if err != nil {
			return 0, nil, err
		}
		if i > 0 && (best == 0 || res.Wall < best) {
			best = res.Wall
		}
		last = res
	}
	return best, last, nil
}

// runnerPlain builds the uninstrumented runner for a workload.
func (c Config) runnerPlain(name string) (func() (*vm.Result, error), error) {
	p, err := workloads.Build(name, c.Size)
	if err != nil {
		return nil, err
	}
	return func() (*vm.Result, error) { return core.RunPlain(p, c.Opt) }, nil
}

// runnerALDA builds the runner for a compiled ALDA analysis on a
// workload; the program is instrumented once, runtimes are fresh per
// run.
func (c Config) runnerALDA(a *compiler.Analysis, name string) (func() (*vm.Result, error), error) {
	p, err := workloads.Build(name, c.Size)
	if err != nil {
		return nil, err
	}
	inst, err := instrument.Apply(p, a)
	if err != nil {
		return nil, err
	}
	return func() (*vm.Result, error) { return core.RunInstrumented(inst, a, c.Opt) }, nil
}

// runnerBaseline builds the runner for a hand-tuned baseline.
func (c Config) runnerBaseline(factory func() baselines.Baseline, name string) (func() (*vm.Result, error), error) {
	p, err := workloads.Build(name, c.Size)
	if err != nil {
		return nil, err
	}
	return func() (*vm.Result, error) { return core.RunBaseline(p, factory, c.Opt) }, nil
}

// Row is one workload's measurements across configurations.
type Row struct {
	Workload  string
	BaseWall  time.Duration
	Overheads []float64 // parallel to the experiment's column names
	// Errs marks degraded cells: Errs[i] non-empty means column i's run
	// failed with that error-kind label and Overheads[i] is meaningless.
	// Nil when every cell succeeded.
	Errs []string
	// BaseErr marks a degraded baseline cell; the row's overheads are
	// then undefined (rendered as "-").
	BaseErr string
}

// errCell renders a degraded cell: the kind label wrapped in ERR(...).
func errCell(kind string) string { return "ERR(" + kind + ")" }

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string // overhead column names
	Rows    []Row
	// Averages holds the per-column average overhead (arithmetic mean,
	// like the paper's "on average 2.21x").
	Averages []float64
}

func (t *Table) computeAverages() {
	t.Averages = make([]float64, len(t.Columns))
	for ci := range t.Columns {
		s, n := 0.0, 0
		for _, r := range t.Rows {
			if r.BaseErr != "" || (ci < len(r.Errs) && r.Errs[ci] != "") {
				continue // degraded cells don't pollute the average
			}
			if ci < len(r.Overheads) && r.Overheads[ci] > 0 {
				s += r.Overheads[ci]
				n++
			}
		}
		if n > 0 {
			t.Averages[ci] = s / float64(n)
		}
	}
}

// Render writes the table as fixed-width text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-12s %12s", "program", "base")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		if r.BaseErr != "" {
			fmt.Fprintf(w, "%-12s %12s", r.Workload, errCell(r.BaseErr))
		} else {
			fmt.Fprintf(w, "%-12s %12s", r.Workload, r.BaseWall.Round(10*time.Microsecond))
		}
		for ci, o := range r.Overheads {
			switch {
			case ci < len(r.Errs) && r.Errs[ci] != "":
				fmt.Fprintf(w, " %14s", errCell(r.Errs[ci]))
			case r.BaseErr != "":
				fmt.Fprintf(w, " %14s", "-")
			default:
				fmt.Fprintf(w, " %13.2fx", o)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s %12s", "average", "")
	for _, a := range t.Averages {
		fmt.Fprintf(w, " %13.2fx", a)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}
