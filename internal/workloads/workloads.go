// Package workloads provides deterministic MIR workload generators
// named after the paper's benchmark suite: SPECInt 2006-like
// single-threaded kernels, Splash2-like multi-threaded kernels, and the
// four real-world programs (memcached, nginx, sort, ffmpeg). Each
// generator mimics the dominant instruction and memory-access profile
// of its namesake at laptop scale; several support the bug injections
// that Table 3 and §6.4 validate against.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/mir"
)

// Size scales a workload's iteration counts.
type Size int

// Workload sizes. Tiny is for unit tests, Small for integration tests,
// Medium for benchmarks.
const (
	SizeTiny Size = iota
	SizeSmall
	SizeMedium
	SizeLarge
)

func (s Size) String() string {
	switch s {
	case SizeTiny:
		return "tiny"
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	}
	return "large"
}

// scale returns base multiplied by the size factor.
func (s Size) scale(base int64) int64 {
	switch s {
	case SizeTiny:
		return base
	case SizeSmall:
		return base * 4
	case SizeMedium:
		return base * 24
	default:
		return base * 96
	}
}

// Bug selects an injected defect.
type Bug int

// Injectable bugs.
const (
	BugNone Bug = iota
	// BugUninit plants a read of never-initialized memory whose value
	// reaches a branch (Table 3's true positives: gcc, ocean_c, volrend).
	BugUninit
	// BugSSLLeak drops an SSL handle without freeing it (memcached #538).
	BugSSLLeak
	// BugSSLShutdown frees a connected SSL handle without SSL_shutdown
	// (memcached TLS shutdown, nginx SSL shutdown handling).
	BugSSLShutdown
	// BugZlibUninit runs inflate on a z_stream that was never
	// initialized (ffmpeg's removed unused z_stream).
	BugZlibUninit
	// BugUAF stores through a freed pointer.
	BugUAF
	// BugRace removes the lock around a shared counter.
	BugRace
	// BugTaint uses input-derived bytes as an array index.
	BugTaint
)

func (b Bug) String() string {
	switch b {
	case BugNone:
		return "none"
	case BugUninit:
		return "uninit"
	case BugSSLLeak:
		return "ssl-leak"
	case BugSSLShutdown:
		return "ssl-shutdown"
	case BugZlibUninit:
		return "zlib-uninit"
	case BugUAF:
		return "uaf"
	case BugRace:
		return "race"
	case BugTaint:
		return "taint"
	}
	return fmt.Sprintf("bug(%d)", int(b))
}

// Spec describes one workload generator.
type Spec struct {
	Name    string
	Suite   string // "specint", "splash2", "realworld"
	Threads int    // worker threads spawned (0 = single-threaded)
	Bugs    []Bug  // supported injections besides BugNone
	build   func(size Size, bug Bug) *mir.Program
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Suite returns the names in one suite, sorted.
func Suite(suite string) []string {
	var out []string
	for n, s := range registry {
		if s.Suite == suite {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Get returns a workload spec.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return s, nil
}

// Build generates the clean program for a workload.
func Build(name string, size Size) (*mir.Program, error) {
	return BuildBug(name, size, BugNone)
}

// BuildBug generates a workload with an injected bug.
func BuildBug(name string, size Size, bug Bug) (*mir.Program, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	if bug != BugNone {
		ok := false
		for _, b := range s.Bugs {
			if b == bug {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("workloads: %s does not support bug %s", name, bug)
		}
	}
	p := s.build(size, bug)
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return p, nil
}

// MustBuild is Build for known-good names (panics on error).
func MustBuild(name string, size Size) *mir.Program {
	p, err := Build(name, size)
	if err != nil {
		panic(err)
	}
	return p
}

// ---------------------------------------------------------------------------
// Shared emission helpers

// xorshiftInline emits a deterministic PRNG step: state' register from
// state, plus the drawn value. Using inline arithmetic (not the rand()
// library call) keeps the instruction mix arithmetic-heavy like the
// originals.
func xorshiftInline(b *mir.FuncBuilder, state mir.Reg) mir.Reg {
	x1 := b.Bin(mir.OpShl, mir.R(state), mir.C(13))
	x2 := b.Bin(mir.OpXor, mir.R(state), mir.R(x1))
	x3 := b.Bin(mir.OpShr, mir.R(x2), mir.C(7))
	x4 := b.Bin(mir.OpXor, mir.R(x2), mir.R(x3))
	x5 := b.Bin(mir.OpShl, mir.R(x4), mir.C(17))
	x6 := b.Bin(mir.OpXor, mir.R(x4), mir.R(x5))
	return x6
}

// initArraySeq emits a loop storing f-style values (i*mult+add) into an
// n-element word array at base.
func initArraySeq(b *mir.FuncBuilder, base mir.Reg, n int64, mult, add int64) {
	b.Loop(mir.C(n), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		addr := b.Add(mir.R(base), mir.R(off))
		v1 := b.Mul(mir.R(i), mir.C(mult))
		v2 := b.Add(mir.R(v1), mir.C(add))
		b.Store(mir.R(addr), mir.R(v2), 8)
	})
}

// initBytes emits a loop storing ((i*mult+add) & 0xff) bytes into an
// n-byte array at base.
func initBytes(b *mir.FuncBuilder, base mir.Reg, n int64, mult, add int64) {
	b.Loop(mir.C(n), func(i mir.Reg) {
		addr := b.Add(mir.R(base), mir.R(i))
		v1 := b.Mul(mir.R(i), mir.C(mult))
		v2 := b.Add(mir.R(v1), mir.C(add))
		v3 := b.Bin(mir.OpAnd, mir.R(v2), mir.C(0xff))
		b.Store(mir.R(addr), mir.R(v3), 1)
	})
}

// sumArray emits a loop summing an n-element word array; returns the
// address of the stack slot holding the sum.
func sumArray(b *mir.FuncBuilder, base mir.Reg, n int64) mir.Reg {
	acc := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(acc), mir.R(z), 8)
	b.Loop(mir.C(n), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		addr := b.Add(mir.R(base), mir.R(off))
		v := b.Load(mir.R(addr), 8)
		s := b.Load(mir.R(acc), 8)
		ns := b.Add(mir.R(s), mir.R(v))
		b.Store(mir.R(acc), mir.R(ns), 8)
	})
	return acc
}

// spawnJoinWorkers emits: spawn nw calls of fn(args..., w) for worker
// index w, then join them all. fn must take len(args)+1 parameters.
func spawnJoinWorkers(b *mir.FuncBuilder, fn string, nw int, args ...mir.Operand) {
	handles := make([]mir.Reg, nw)
	for w := 0; w < nw; w++ {
		wargs := append(append([]mir.Operand{}, args...), mir.C(int64(w)))
		handles[w] = b.Spawn(fn, wargs...)
	}
	for _, h := range handles {
		b.Join(mir.R(h))
	}
}
