package workloads

import "repro/internal/mir"

// SPECInt 2006-like single-threaded kernels. Each mimics the dominant
// access pattern of its namesake: bzip2's byte-wise transform tables,
// gobmk's recursive game-tree search, h264ref's block SAD scans,
// hmmer's dynamic-programming bands, libquantum's long streaming array
// passes, mcf's pointer-chasing network simplex, perlbench's hash-table
// churn, sjeng's move-table search, and gcc's bitmap dataflow sets
// (with the sbitmap uninitialized read of Table 3 as its injectable
// bug).

func init() {
	register(&Spec{Name: "bzip2", Suite: "specint", build: buildBzip2})
	register(&Spec{Name: "gobmk", Suite: "specint", build: buildGobmk})
	register(&Spec{Name: "h264ref", Suite: "specint", build: buildH264ref})
	register(&Spec{Name: "hmmer", Suite: "specint", build: buildHmmer})
	register(&Spec{Name: "libquantum", Suite: "specint", build: buildLibquantum})
	register(&Spec{Name: "mcf", Suite: "specint", build: buildMcf})
	register(&Spec{Name: "perlbench", Suite: "specint", build: buildPerlbench})
	register(&Spec{Name: "sjeng", Suite: "specint", build: buildSjeng})
	register(&Spec{Name: "gcc", Suite: "specint", Bugs: []Bug{BugUninit}, build: buildGcc})
}

// bzip2: run-length + move-to-front transform over a byte buffer.
func buildBzip2(size Size, bug Bug) *mir.Program {
	n := size.scale(4096)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	src := b.Call("malloc", mir.C(n))
	dst := b.Call("malloc", mir.C(n))
	mtf := b.Call("malloc", mir.C(256*8))
	initBytes(b, src, n, 137, 17)
	initArraySeq(b, mtf, 256, 1, 0)

	// Move-to-front-ish pass: for each input byte, look up its table
	// slot, rotate the low entries, store the rank.
	b.Loop(mir.C(n), func(i mir.Reg) {
		sa := b.Add(mir.R(src), mir.R(i))
		c := b.Load(mir.R(sa), 1)
		slot := b.Bin(mir.OpAnd, mir.R(c), mir.C(255))
		off := b.Mul(mir.R(slot), mir.C(8))
		ta := b.Add(mir.R(mtf), mir.R(off))
		rank := b.Load(mir.R(ta), 8)
		// new rank = (rank + i) mod 256 — keeps table churning
		nr1 := b.Add(mir.R(rank), mir.R(i))
		nr := b.Bin(mir.OpAnd, mir.R(nr1), mir.C(255))
		b.Store(mir.R(ta), mir.R(nr), 8)
		da := b.Add(mir.R(dst), mir.R(i))
		b.Store(mir.R(da), mir.R(nr), 1)
	})

	// RLE pass over dst.
	runs := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(runs), mir.R(z), 8)
	b.Loop(mir.C(n-1), func(i mir.Reg) {
		a1 := b.Add(mir.R(dst), mir.R(i))
		v1 := b.Load(mir.R(a1), 1)
		i2 := b.Add(mir.R(i), mir.C(1))
		a2 := b.Add(mir.R(dst), mir.R(i2))
		v2 := b.Load(mir.R(a2), 1)
		eq := b.Bin(mir.OpEq, mir.R(v1), mir.R(v2))
		inc := b.NewBlock()
		done := b.NewBlock()
		b.CondBr(mir.R(eq), inc, done)
		b.SetBlock(inc)
		r := b.Load(mir.R(runs), 8)
		r2 := b.Add(mir.R(r), mir.C(1))
		b.Store(mir.R(runs), mir.R(r2), 8)
		b.Br(done)
		b.SetBlock(done)
	})

	r := b.Load(mir.R(runs), 8)
	b.CallVoid("print_i64", mir.R(r))
	b.CallVoid("free", mir.R(src))
	b.CallVoid("free", mir.R(dst))
	b.CallVoid("free", mir.R(mtf))
	b.RetVal(mir.C(0))
	return p
}

// gobmk: recursive minimax over a small board with an evaluation table.
func buildGobmk(size Size, bug Bug) *mir.Program {
	rounds := size.scale(12)
	p := mir.NewProgram()

	// search(board, depth, seed) -> score
	s := p.NewFunc("search", 3)
	board, depth, seed := s.Param(0), s.Param(1), s.Param(2)
	leaf := s.NewBlock()
	rec := s.NewBlock()
	isLeaf := s.Bin(mir.OpLe, mir.R(depth), mir.C(0))
	s.CondBr(mir.R(isLeaf), leaf, rec)

	s.SetBlock(leaf)
	// Evaluate: sum 8 board cells picked by the seed.
	acc := s.Alloca(8)
	z := s.Const(0)
	s.Store(mir.R(acc), mir.R(z), 8)
	s.Loop(mir.C(8), func(i mir.Reg) {
		h1 := s.Mul(mir.R(seed), mir.C(31))
		h2 := s.Add(mir.R(h1), mir.R(i))
		idx := s.Bin(mir.OpAnd, mir.R(h2), mir.C(63))
		off := s.Mul(mir.R(idx), mir.C(8))
		addr := s.Add(mir.R(board), mir.R(off))
		v := s.Load(mir.R(addr), 8)
		a := s.Load(mir.R(acc), 8)
		a2 := s.Add(mir.R(a), mir.R(v))
		s.Store(mir.R(acc), mir.R(a2), 8)
	})
	res := s.Load(mir.R(acc), 8)
	s.RetVal(mir.R(res))

	s.SetBlock(rec)
	d2 := s.Sub(mir.R(depth), mir.C(1))
	best := s.Alloca(8)
	neg := s.Const(-1 << 40)
	s.Store(mir.R(best), mir.R(neg), 8)
	s.Loop(mir.C(4), func(mv mir.Reg) {
		ns1 := s.Mul(mir.R(seed), mir.C(1103515245))
		ns2 := s.Add(mir.R(ns1), mir.R(mv))
		// Make the move: bump a board cell.
		idx := s.Bin(mir.OpAnd, mir.R(ns2), mir.C(63))
		off := s.Mul(mir.R(idx), mir.C(8))
		addr := s.Add(mir.R(board), mir.R(off))
		old := s.Load(mir.R(addr), 8)
		upd := s.Add(mir.R(old), mir.C(1))
		s.Store(mir.R(addr), mir.R(upd), 8)
		sc := s.Call("search", mir.R(board), mir.R(d2), mir.R(ns2))
		// Undo.
		s.Store(mir.R(addr), mir.R(old), 8)
		cur := s.Load(mir.R(best), 8)
		gt := s.Bin(mir.OpGt, mir.R(sc), mir.R(cur))
		take := s.NewBlock()
		skip := s.NewBlock()
		s.CondBr(mir.R(gt), take, skip)
		s.SetBlock(take)
		s.Store(mir.R(best), mir.R(sc), 8)
		s.Br(skip)
		s.SetBlock(skip)
	})
	out := s.Load(mir.R(best), 8)
	s.RetVal(mir.R(out))

	b := p.NewFunc("main", 0)
	boardM := b.Call("malloc", mir.C(64*8))
	initArraySeq(b, boardM, 64, 7, 3)
	total := b.Alloca(8)
	z0 := b.Const(0)
	b.Store(mir.R(total), mir.R(z0), 8)
	b.Loop(mir.C(rounds), func(r mir.Reg) {
		sc := b.Call("search", mir.R(boardM), mir.C(5), mir.R(r))
		t := b.Load(mir.R(total), 8)
		t2 := b.Add(mir.R(t), mir.R(sc))
		b.Store(mir.R(total), mir.R(t2), 8)
	})
	t := b.Load(mir.R(total), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(boardM))
	b.RetVal(mir.C(0))
	return p
}

// h264ref: block-based SAD over two byte frames.
func buildH264ref(size Size, bug Bug) *mir.Program {
	const w, h = 128, 64
	frames := size.scale(2)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	cur := b.Call("malloc", mir.C(w*h))
	ref := b.Call("malloc", mir.C(w*h))
	initBytes(b, cur, w*h, 31, 7)
	initBytes(b, ref, w*h, 29, 11)

	best := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(best), mir.R(z), 8)

	b.Loop(mir.C(frames), func(f mir.Reg) {
		// For each 8x8 block position (coarse grid), compute SAD.
		b.Loop(mir.C((w/8)*(h/8)), func(blk mir.Reg) {
			bx1 := b.Bin(mir.OpRem, mir.R(blk), mir.C(w/8))
			bx := b.Mul(mir.R(bx1), mir.C(8))
			by1 := b.Bin(mir.OpDiv, mir.R(blk), mir.C(w/8))
			by := b.Mul(mir.R(by1), mir.C(8))
			b.Loop(mir.C(64), func(px mir.Reg) {
				dx := b.Bin(mir.OpAnd, mir.R(px), mir.C(7))
				dy := b.Bin(mir.OpShr, mir.R(px), mir.C(3))
				x := b.Add(mir.R(bx), mir.R(dx))
				y := b.Add(mir.R(by), mir.R(dy))
				row := b.Mul(mir.R(y), mir.C(w))
				idx := b.Add(mir.R(row), mir.R(x))
				ca := b.Add(mir.R(cur), mir.R(idx))
				ra := b.Add(mir.R(ref), mir.R(idx))
				cv := b.Load(mir.R(ca), 1)
				rv := b.Load(mir.R(ra), 1)
				d := b.Sub(mir.R(cv), mir.R(rv))
				ad := b.Call("abs64", mir.R(d))
				s := b.Load(mir.R(best), 8)
				s2 := b.Add(mir.R(s), mir.R(ad))
				b.Store(mir.R(best), mir.R(s2), 8)
			})
		})
	})

	t := b.Load(mir.R(best), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(cur))
	b.CallVoid("free", mir.R(ref))
	b.RetVal(mir.C(0))
	return p
}

// hmmer: banded dynamic programming over three score rows.
func buildHmmer(size Size, bug Bug) *mir.Program {
	const cols = 256
	rows := size.scale(48)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	m := b.Call("malloc", mir.C(cols*8))
	ins := b.Call("malloc", mir.C(cols*8))
	del := b.Call("malloc", mir.C(cols*8))
	initArraySeq(b, m, cols, 3, 1)
	initArraySeq(b, ins, cols, 5, 2)
	initArraySeq(b, del, cols, 7, 4)

	b.Loop(mir.C(rows), func(r mir.Reg) {
		b.Loop(mir.C(cols-1), func(cIdx mir.Reg) {
			c := b.Add(mir.R(cIdx), mir.C(1))
			prev := b.Sub(mir.R(c), mir.C(1))
			po := b.Mul(mir.R(prev), mir.C(8))
			co := b.Mul(mir.R(c), mir.C(8))

			ma := b.Add(mir.R(m), mir.R(po))
			ia := b.Add(mir.R(ins), mir.R(po))
			da := b.Add(mir.R(del), mir.R(co))

			mv := b.Load(mir.R(ma), 8)
			iv := b.Load(mir.R(ia), 8)
			dv := b.Load(mir.R(da), 8)

			// max3 + emission score
			mi := b.Bin(mir.OpGt, mir.R(mv), mir.R(iv))
			t1 := b.NewBlock()
			t2 := b.NewBlock()
			t3 := b.NewBlock()
			tmp := b.Alloca(8)
			b.CondBr(mir.R(mi), t1, t2)
			b.SetBlock(t1)
			b.Store(mir.R(tmp), mir.R(mv), 8)
			b.Br(t3)
			b.SetBlock(t2)
			b.Store(mir.R(tmp), mir.R(iv), 8)
			b.Br(t3)
			b.SetBlock(t3)
			hi := b.Load(mir.R(tmp), 8)
			hi2cmp := b.Bin(mir.OpGt, mir.R(dv), mir.R(hi))
			t4 := b.NewBlock()
			t5 := b.NewBlock()
			b.CondBr(mir.R(hi2cmp), t4, t5)
			b.SetBlock(t4)
			b.Store(mir.R(tmp), mir.R(dv), 8)
			b.Br(t5)
			b.SetBlock(t5)
			sc := b.Load(mir.R(tmp), 8)
			em1 := b.Mul(mir.R(r), mir.C(13))
			em2 := b.Add(mir.R(em1), mir.R(c))
			em := b.Bin(mir.OpAnd, mir.R(em2), mir.C(31))
			ns := b.Add(mir.R(sc), mir.R(em))

			mwa := b.Add(mir.R(m), mir.R(co))
			b.Store(mir.R(mwa), mir.R(ns), 8)
			iv2 := b.Add(mir.R(ns), mir.C(-2))
			iwa := b.Add(mir.R(ins), mir.R(co))
			b.Store(mir.R(iwa), mir.R(iv2), 8)
			dv2 := b.Add(mir.R(ns), mir.C(-3))
			dwa := b.Add(mir.R(del), mir.R(co))
			b.Store(mir.R(dwa), mir.R(dv2), 8)
		})
	})

	sum := sumArray(b, m, cols)
	t := b.Load(mir.R(sum), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(m))
	b.CallVoid("free", mir.R(ins))
	b.CallVoid("free", mir.R(del))
	b.RetVal(mir.C(0))
	return p
}

// libquantum: long streaming passes toggling "qubit" amplitudes — the
// benchmark whose cache behavior separates MSan layouts in Figure 3.
func buildLibquantum(size Size, bug Bug) *mir.Program {
	n := size.scale(8192)
	passes := int64(12)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	reg := b.Call("malloc", mir.C(n*8))
	initArraySeq(b, reg, n, 2654435761, 1)

	b.Loop(mir.C(passes), func(pass mir.Reg) {
		mask := b.Bin(mir.OpShl, mir.C(1), mir.R(pass))
		b.Loop(mir.C(n), func(i mir.Reg) {
			off := b.Mul(mir.R(i), mir.C(8))
			addr := b.Add(mir.R(reg), mir.R(off))
			v := b.Load(mir.R(addr), 8)
			v2 := b.Bin(mir.OpXor, mir.R(v), mir.R(mask))
			v3 := b.Add(mir.R(v2), mir.C(1))
			b.Store(mir.R(addr), mir.R(v3), 8)
		})
	})

	sum := sumArray(b, reg, n)
	t := b.Load(mir.R(sum), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(reg))
	b.RetVal(mir.C(0))
	return p
}

// mcf: pointer-chasing over a linked network of nodes.
func buildMcf(size Size, bug Bug) *mir.Program {
	nodes := size.scale(2048)
	hops := size.scale(8192)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	// Node: [next(8) cost(8)] = 16 bytes.
	arena := b.Call("malloc", mir.C(nodes*16))
	// Link node i -> (i*7+3) mod nodes, pseudo-random permutation walk.
	b.Loop(mir.C(nodes), func(i mir.Reg) {
		n1 := b.Mul(mir.R(i), mir.C(7))
		n2 := b.Add(mir.R(n1), mir.C(3))
		nxt := b.Bin(mir.OpRem, mir.R(n2), mir.C(nodes))
		no := b.Mul(mir.R(nxt), mir.C(16))
		naddr := b.Add(mir.R(arena), mir.R(no))
		io := b.Mul(mir.R(i), mir.C(16))
		iaddr := b.Add(mir.R(arena), mir.R(io))
		b.Store(mir.R(iaddr), mir.R(naddr), 8)
		cost := b.Bin(mir.OpAnd, mir.R(i), mir.C(1023))
		ca := b.Add(mir.R(iaddr), mir.C(8))
		b.Store(mir.R(ca), mir.R(cost), 8)
	})

	// Chase the chain accumulating costs and relaxing them.
	cur := b.Alloca(8)
	b.Store(mir.R(cur), mir.R(arena), 8)
	total := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(total), mir.R(z), 8)
	b.Loop(mir.C(hops), func(i mir.Reg) {
		c := b.Load(mir.R(cur), 8)
		ca := b.Add(mir.R(c), mir.C(8))
		cost := b.Load(mir.R(ca), 8)
		t := b.Load(mir.R(total), 8)
		t2 := b.Add(mir.R(t), mir.R(cost))
		b.Store(mir.R(total), mir.R(t2), 8)
		// Relax: cost = (cost*3+1)/2
		c1 := b.Mul(mir.R(cost), mir.C(3))
		c2 := b.Add(mir.R(c1), mir.C(1))
		c3 := b.Bin(mir.OpDiv, mir.R(c2), mir.C(2))
		c4 := b.Bin(mir.OpAnd, mir.R(c3), mir.C(4095))
		b.Store(mir.R(ca), mir.R(c4), 8)
		nxt := b.Load(mir.R(c), 8)
		b.Store(mir.R(cur), mir.R(nxt), 8)
	})

	t := b.Load(mir.R(total), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(arena))
	b.RetVal(mir.C(0))
	return p
}

// perlbench: hash-table insert/lookup churn with collision chains.
func buildPerlbench(size Size, bug Bug) *mir.Program {
	const buckets = 512
	ops := size.scale(4096)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	// Bucket: one word (value of last insert); chain modeled by probing.
	table := b.Call("calloc", mir.C(buckets), mir.C(8))
	hits := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(hits), mir.R(z), 8)

	seedVar := b.Alloca(8)
	one := b.Const(0x9E3779B9)
	b.Store(mir.R(seedVar), mir.R(one), 8)

	b.Loop(mir.C(ops), func(i mir.Reg) {
		sv := b.Load(mir.R(seedVar), 8)
		s2 := xorshiftInline(b, sv)
		b.Store(mir.R(seedVar), mir.R(s2), 8)
		keyh := b.Bin(mir.OpAnd, mir.R(s2), mir.C(buckets-1))
		// Linear probe up to 4 slots.
		b.Loop(mir.C(4), func(probe mir.Reg) {
			idx1 := b.Add(mir.R(keyh), mir.R(probe))
			idx := b.Bin(mir.OpAnd, mir.R(idx1), mir.C(buckets-1))
			off := b.Mul(mir.R(idx), mir.C(8))
			addr := b.Add(mir.R(table), mir.R(off))
			v := b.Load(mir.R(addr), 8)
			isZero := b.Bin(mir.OpEq, mir.R(v), mir.C(0))
			ins := b.NewBlock()
			found := b.NewBlock()
			done := b.NewBlock()
			b.CondBr(mir.R(isZero), ins, found)
			b.SetBlock(ins)
			b.Store(mir.R(addr), mir.R(s2), 8)
			b.Br(done)
			b.SetBlock(found)
			hv := b.Load(mir.R(hits), 8)
			hv2 := b.Add(mir.R(hv), mir.C(1))
			b.Store(mir.R(hits), mir.R(hv2), 8)
			b.Br(done)
			b.SetBlock(done)
		})
		// Periodically clear a random bucket (delete).
		del := b.Bin(mir.OpAnd, mir.R(i), mir.C(7))
		isDel := b.Bin(mir.OpEq, mir.R(del), mir.C(0))
		dob := b.NewBlock()
		skip := b.NewBlock()
		b.CondBr(mir.R(isDel), dob, skip)
		b.SetBlock(dob)
		di := b.Bin(mir.OpAnd, mir.R(s2), mir.C(buckets-1))
		doff := b.Mul(mir.R(di), mir.C(8))
		daddr := b.Add(mir.R(table), mir.R(doff))
		zz := b.Const(0)
		b.Store(mir.R(daddr), mir.R(zz), 8)
		b.Br(skip)
		b.SetBlock(skip)
	})

	t := b.Load(mir.R(hits), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(table))
	b.RetVal(mir.C(0))
	return p
}

// sjeng: alpha-beta-ish search using history tables.
func buildSjeng(size Size, bug Bug) *mir.Program {
	rounds := size.scale(16)
	p := mir.NewProgram()

	// probe(tbl, key, depth) -> score
	s := p.NewFunc("probe", 3)
	tbl, key, depth := s.Param(0), s.Param(1), s.Param(2)
	leaf := s.NewBlock()
	rec := s.NewBlock()
	done := s.Bin(mir.OpLe, mir.R(depth), mir.C(0))
	s.CondBr(mir.R(done), leaf, rec)
	s.SetBlock(leaf)
	idx := s.Bin(mir.OpAnd, mir.R(key), mir.C(255))
	off := s.Mul(mir.R(idx), mir.C(8))
	addr := s.Add(mir.R(tbl), mir.R(off))
	v := s.Load(mir.R(addr), 8)
	s.RetVal(mir.R(v))
	s.SetBlock(rec)
	d2 := s.Sub(mir.R(depth), mir.C(1))
	k1 := s.Mul(mir.R(key), mir.C(6364136223846793005))
	k2 := s.Add(mir.R(k1), mir.C(1442695040888963407))
	a := s.Call("probe", mir.R(tbl), mir.R(k2), mir.R(d2))
	k3 := s.Bin(mir.OpXor, mir.R(k2), mir.C(0x55555555))
	c := s.Call("probe", mir.R(tbl), mir.R(k3), mir.R(d2))
	// history update
	hidx := s.Bin(mir.OpAnd, mir.R(k2), mir.C(255))
	hoff := s.Mul(mir.R(hidx), mir.C(8))
	haddr := s.Add(mir.R(tbl), mir.R(hoff))
	hv := s.Load(mir.R(haddr), 8)
	hv2 := s.Add(mir.R(hv), mir.C(1))
	s.Store(mir.R(haddr), mir.R(hv2), 8)
	sum := s.Add(mir.R(a), mir.R(c))
	sub := s.Sub(mir.R(sum), mir.R(hv))
	s.RetVal(mir.R(sub))

	b := p.NewFunc("main", 0)
	tblm := b.Call("malloc", mir.C(256*8))
	initArraySeq(b, tblm, 256, 11, 5)
	total := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(total), mir.R(z), 8)
	b.Loop(mir.C(rounds), func(r mir.Reg) {
		sc := b.Call("probe", mir.R(tblm), mir.R(r), mir.C(7))
		t := b.Load(mir.R(total), 8)
		t2 := b.Add(mir.R(t), mir.R(sc))
		b.Store(mir.R(total), mir.R(t2), 8)
	})
	t := b.Load(mir.R(total), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(tblm))
	b.RetVal(mir.C(0))
	return p
}

// gcc: bitmap (sbitmap) dataflow over basic blocks; the injectable bug
// reads a bitmap word that was never initialized and branches on it —
// Table 3's sbitmap.c:349.
func buildGcc(size Size, bug Bug) *mir.Program {
	const words = 64
	blocks := size.scale(128)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	gen := b.Call("malloc", mir.C(words*8))
	kill := b.Call("malloc", mir.C(words*8))
	in := b.Call("malloc", mir.C(words*8))
	out := b.Call("malloc", mir.C(words*8))
	initArraySeq(b, gen, words, 0x9E37, 1)
	initArraySeq(b, kill, words, 0x85EB, 2)
	initArraySeq(b, in, words, 3, 0)
	if bug != BugUninit {
		initArraySeq(b, out, words, 0, 0)
	} else {
		// Leave out[] uninitialized — the dataflow loop reads it below.
		_ = out
	}

	changed := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(changed), mir.R(z), 8)

	b.Loop(mir.C(blocks), func(blk mir.Reg) {
		b.Loop(mir.C(words), func(w mir.Reg) {
			off := b.Mul(mir.R(w), mir.C(8))
			ga := b.Add(mir.R(gen), mir.R(off))
			ka := b.Add(mir.R(kill), mir.R(off))
			ia := b.Add(mir.R(in), mir.R(off))
			oa := b.Add(mir.R(out), mir.R(off))
			gv := b.Load(mir.R(ga), 8)
			kv := b.Load(mir.R(ka), 8)
			iv := b.Load(mir.R(ia), 8)
			ov := b.Load(mir.R(oa), 8) // uninitialized on first pass when bug injected
			nk := b.Bin(mir.OpAnd, mir.R(iv), mir.R(kv))
			nv1 := b.Bin(mir.OpXor, mir.R(iv), mir.R(nk))
			nv := b.Bin(mir.OpOr, mir.R(nv1), mir.R(gv))
			diff := b.Bin(mir.OpNe, mir.R(nv), mir.R(ov))
			upd := b.NewBlock()
			skip := b.NewBlock()
			b.CondBr(mir.R(diff), upd, skip)
			b.SetBlock(upd)
			b.Store(mir.R(oa), mir.R(nv), 8)
			cv := b.Load(mir.R(changed), 8)
			cv2 := b.Add(mir.R(cv), mir.C(1))
			b.Store(mir.R(changed), mir.R(cv2), 8)
			b.Br(skip)
			b.SetBlock(skip)
		})
	})

	t := b.Load(mir.R(changed), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(gen))
	b.CallVoid("free", mir.R(kill))
	b.CallVoid("free", mir.R(in))
	b.CallVoid("free", mir.R(out))
	b.RetVal(mir.C(0))
	return p
}
