package workloads

import "repro/internal/mir"

// Real-world program models: a memcached-like KV server and an
// nginx-like request server (both speaking the modeled OpenSSL library,
// carrying the §6.4.1 bug injections), a multi-threaded merge sort, and
// an ffmpeg-like codec loop over the modeled Zlib.

func init() {
	register(&Spec{Name: "memcached", Suite: "realworld", Threads: nWorkers,
		Bugs: []Bug{BugSSLLeak, BugSSLShutdown, BugUAF}, build: buildMemcached})
	register(&Spec{Name: "nginx", Suite: "realworld", Threads: nWorkers,
		Bugs: []Bug{BugSSLShutdown}, build: buildNginx})
	register(&Spec{Name: "sort", Suite: "realworld", Threads: nWorkers, build: buildSort})
	register(&Spec{Name: "ffmpeg", Suite: "realworld",
		Bugs: []Bug{BugZlibUninit, BugTaint}, build: buildFFmpeg})
}

// memcached: hash-table KV store, per-bucket item allocation churn,
// four workers each serving a TLS connection.
func buildMemcached(size Size, bug Bug) *mir.Program {
	const buckets = 256
	ops := size.scale(512)
	p := mir.NewProgram()

	// worker(table, lock, ctx, ops, w)
	w := p.NewFunc("mcWorker", 5)
	table, lock, ctx, opsR, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4)

	ssl := w.Call("SSL_new", mir.R(ctx))
	w.CallVoid("SSL_set_fd", mir.R(ssl), mir.R(wid))
	w.CallVoid("SSL_connect", mir.R(ssl))
	buf := w.Call("malloc", mir.C(64))

	acc := w.Alloca(8)
	z := w.Const(0)
	w.Store(mir.R(acc), mir.R(z), 8)

	w.Loop(mir.R(opsR), func(i mir.Reg) {
		n := w.Call("SSL_read", mir.R(ssl), mir.R(buf), mir.C(16))
		_ = n
		req := w.Load(mir.R(buf), 8)
		mix1 := w.Mul(mir.R(req), mir.C(2654435761))
		mix2 := w.Add(mir.R(mix1), mir.R(i))
		op := w.Bin(mir.OpAnd, mir.R(mix2), mir.C(3))
		h1 := w.Bin(mir.OpShr, mir.R(mix2), mir.C(2))
		h := w.Bin(mir.OpAnd, mir.R(h1), mir.C(buckets-1))
		slotOff := w.Mul(mir.R(h), mir.C(8))
		slot := w.Add(mir.R(table), mir.R(slotOff))

		w.Lock(mir.R(lock))
		isSet := w.Bin(mir.OpEq, mir.R(op), mir.C(0))
		setB := w.NewBlock()
		getB := w.NewBlock()
		unlockB := w.NewBlock()
		w.CondBr(mir.R(isSet), setB, getB)

		// SET: replace the item.
		w.SetBlock(setB)
		old := w.Load(mir.R(slot), 8)
		haveOld := w.Bin(mir.OpNe, mir.R(old), mir.C(0))
		freeB := w.NewBlock()
		allocB := w.NewBlock()
		w.CondBr(mir.R(haveOld), freeB, allocB)
		w.SetBlock(freeB)
		w.CallVoid("free", mir.R(old))
		w.Br(allocB)
		w.SetBlock(allocB)
		item := w.Call("malloc", mir.C(16))
		w.Store(mir.R(item), mir.R(mix2), 8)
		va := w.Add(mir.R(item), mir.C(8))
		vv := w.Mul(mir.R(mix2), mir.C(31))
		w.Store(mir.R(va), mir.R(vv), 8)
		w.Store(mir.R(slot), mir.R(item), 8)
		w.Br(unlockB)

		// GET / DELETE.
		w.SetBlock(getB)
		it := w.Load(mir.R(slot), 8)
		have := w.Bin(mir.OpNe, mir.R(it), mir.C(0))
		useB := w.NewBlock()
		w.CondBr(mir.R(have), useB, unlockB)
		w.SetBlock(useB)
		isDel := w.Bin(mir.OpEq, mir.R(op), mir.C(3))
		delB := w.NewBlock()
		readB := w.NewBlock()
		w.CondBr(mir.R(isDel), delB, readB)
		w.SetBlock(delB)
		w.CallVoid("free", mir.R(it))
		if bug == BugUAF {
			// Stale read of the freed item's value (lost-update bug).
			sva := w.Add(mir.R(it), mir.C(8))
			sv := w.Load(mir.R(sva), 8)
			a0 := w.Load(mir.R(acc), 8)
			a1 := w.Add(mir.R(a0), mir.R(sv))
			w.Store(mir.R(acc), mir.R(a1), 8)
		}
		zz := w.Const(0)
		w.Store(mir.R(slot), mir.R(zz), 8)
		w.Br(unlockB)
		w.SetBlock(readB)
		rva := w.Add(mir.R(it), mir.C(8))
		rv := w.Load(mir.R(rva), 8)
		a0 := w.Load(mir.R(acc), 8)
		a1 := w.Add(mir.R(a0), mir.R(rv))
		w.Store(mir.R(acc), mir.R(a1), 8)
		w.Br(unlockB)

		w.SetBlock(unlockB)
		w.Unlock(mir.R(lock))
	})

	av := w.Load(mir.R(acc), 8)
	w.Store(mir.R(buf), mir.R(av), 8)
	w.CallVoid("SSL_write", mir.R(ssl), mir.R(buf), mir.C(8))
	switch bug {
	case BugSSLLeak:
		// Connection close path forgets the handle entirely
		// (memcached/memcached#538).
	case BugSSLShutdown:
		// Free without shutdown (memcached TLS shutdown misuse).
		w.CallVoid("SSL_free", mir.R(ssl))
	default:
		w.CallVoid("SSL_shutdown", mir.R(ssl))
		w.CallVoid("SSL_free", mir.R(ssl))
	}
	w.CallVoid("free", mir.R(buf))
	w.Ret()

	b := p.NewFunc("main", 0)
	ctxM := b.Call("SSL_CTX_new")
	tableM := b.Call("calloc", mir.C(buckets), mir.C(8))
	lockM := b.Call("malloc", mir.C(8))
	spawnJoinWorkers(b, "mcWorker", nWorkers, mir.R(tableM), mir.R(lockM), mir.R(ctxM), mir.C(ops))
	// Drain the tableM: free remaining items.
	b.Loop(mir.C(buckets), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		slot := b.Add(mir.R(tableM), mir.R(off))
		it := b.Load(mir.R(slot), 8)
		have := b.Bin(mir.OpNe, mir.R(it), mir.C(0))
		freeB := b.NewBlock()
		next := b.NewBlock()
		b.CondBr(mir.R(have), freeB, next)
		b.SetBlock(freeB)
		b.CallVoid("free", mir.R(it))
		b.Br(next)
		b.SetBlock(next)
	})
	b.CallVoid("free", mir.R(tableM))
	b.CallVoid("free", mir.R(lockM))
	b.CallVoid("SSL_CTX_free", mir.R(ctxM))
	b.RetVal(mir.C(0))
	return p
}

// nginx: TLS request/response loop with a routing table; the bug
// variant's error path frees the connection without SSL_shutdown
// (nginx's "fixed shutdown handling" commit).
func buildNginx(size Size, bug Bug) *mir.Program {
	const routes = 64
	conns := size.scale(64)
	p := mir.NewProgram()

	// worker(routeTbl, hits, lock, ctx, conns, w)
	w := p.NewFunc("ngWorker", 6)
	routeTbl, hits, lock, ctx, cc, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4), w.Param(5)
	perW := w.Bin(mir.OpDiv, mir.R(cc), mir.C(nWorkers))
	buf := w.Call("malloc", mir.C(128))
	w.Loop(mir.R(perW), func(i mir.Reg) {
		ssl := w.Call("SSL_new", mir.R(ctx))
		w.CallVoid("SSL_set_fd", mir.R(wid), mir.R(i))
		w.CallVoid("SSL_accept", mir.R(ssl))
		n := w.Call("SSL_read", mir.R(ssl), mir.R(buf), mir.C(64))
		// Parse: hash the request bytes.
		hv := w.Alloca(8)
		seed := w.Const(5381)
		w.Store(mir.R(hv), mir.R(seed), 8)
		w.Loop(mir.R(n), func(j mir.Reg) {
			ba := w.Add(mir.R(buf), mir.R(j))
			c := w.Load(mir.R(ba), 1)
			h0 := w.Load(mir.R(hv), 8)
			h1 := w.Mul(mir.R(h0), mir.C(33))
			h2 := w.Add(mir.R(h1), mir.R(c))
			w.Store(mir.R(hv), mir.R(h2), 8)
		})
		h := w.Load(mir.R(hv), 8)
		route := w.Bin(mir.OpAnd, mir.R(h), mir.C(routes-1))
		ro := w.Mul(mir.R(route), mir.C(8))
		ra := w.Add(mir.R(routeTbl), mir.R(ro))
		status := w.Load(mir.R(ra), 8)

		// Error path: routes with status 0 are "bad requests"; each
		// worker's first connection also exercises it (a handshake
		// warm-up failure), keeping the path deterministic at any size.
		isErr0 := w.Bin(mir.OpEq, mir.R(status), mir.C(0))
		isFirst := w.Bin(mir.OpEq, mir.R(i), mir.C(0))
		isErr := w.Bin(mir.OpOr, mir.R(isErr0), mir.R(isFirst))
		errB := w.NewBlock()
		okB := w.NewBlock()
		doneB := w.NewBlock()
		w.CondBr(mir.R(isErr), errB, okB)
		w.SetBlock(errB)
		if bug == BugSSLShutdown {
			// The buggy error path tears the connection down without
			// SSL_shutdown.
			w.CallVoid("SSL_free", mir.R(ssl))
		} else {
			w.CallVoid("SSL_shutdown", mir.R(ssl))
			w.CallVoid("SSL_free", mir.R(ssl))
		}
		w.Br(doneB)
		w.SetBlock(okB)
		w.Store(mir.R(buf), mir.R(status), 8)
		w.CallVoid("SSL_write", mir.R(ssl), mir.R(buf), mir.C(32))
		w.Lock(mir.R(lock))
		hcur := w.Load(mir.R(hits), 8)
		hnew := w.Add(mir.R(hcur), mir.C(1))
		w.Store(mir.R(hits), mir.R(hnew), 8)
		w.Unlock(mir.R(lock))
		w.CallVoid("SSL_shutdown", mir.R(ssl))
		w.CallVoid("SSL_free", mir.R(ssl))
		w.Br(doneB)
		w.SetBlock(doneB)
	})
	w.CallVoid("free", mir.R(buf))
	w.Ret()

	b := p.NewFunc("main", 0)
	ctxM := b.Call("SSL_CTX_new")
	routeTblM := b.Call("malloc", mir.C(routes*8))
	// Route statuses 0..7 (0 = error route).
	b.Loop(mir.C(routes), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		a := b.Add(mir.R(routeTblM), mir.R(off))
		st := b.Bin(mir.OpAnd, mir.R(i), mir.C(7))
		b.Store(mir.R(a), mir.R(st), 8)
	})
	hitsM := b.Call("calloc", mir.C(1), mir.C(8))
	lockM := b.Call("malloc", mir.C(8))
	spawnJoinWorkers(b, "ngWorker", nWorkers, mir.R(routeTblM), mir.R(hitsM), mir.R(lockM), mir.R(ctxM), mir.C(conns))
	t := b.Load(mir.R(hitsM), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(routeTblM))
	b.CallVoid("free", mir.R(hitsM))
	b.CallVoid("free", mir.R(lockM))
	b.CallVoid("SSL_CTX_free", mir.R(ctxM))
	b.RetVal(mir.C(0))
	return p
}

// sort: four workers shell-sort their quarters, then main merges.
func buildSort(size Size, bug Bug) *mir.Program {
	n := size.scale(512)
	p := mir.NewProgram()

	// worker(arr, n, w): shell sort of the owned quarter.
	w := p.NewFunc("sortWorker", 3)
	arr, nn, wid := w.Param(0), w.Param(1), w.Param(2)
	chunk := w.Bin(mir.OpDiv, mir.R(nn), mir.C(nWorkers))
	base := w.Mul(mir.R(wid), mir.R(chunk))
	// Gaps 7, 3, 1.
	for _, gap := range []int64{7, 3, 1} {
		w.Loop(mir.R(chunk), func(i mir.Reg) {
			ok := w.Bin(mir.OpGe, mir.R(i), mir.C(gap))
			doB := w.NewBlock()
			skipB := w.NewBlock()
			w.CondBr(mir.R(ok), doB, skipB)
			w.SetBlock(doB)
			// One insertion step: compare a[base+i-gap] and a[base+i],
			// swap if out of order; repeated loop passes converge.
			i1 := w.Add(mir.R(base), mir.R(i))
			i0 := w.Sub(mir.R(i1), mir.C(gap))
			o1 := w.Mul(mir.R(i1), mir.C(8))
			o0 := w.Mul(mir.R(i0), mir.C(8))
			a1 := w.Add(mir.R(arr), mir.R(o1))
			a0 := w.Add(mir.R(arr), mir.R(o0))
			v1 := w.Load(mir.R(a1), 8)
			v0 := w.Load(mir.R(a0), 8)
			gt := w.Bin(mir.OpGt, mir.R(v0), mir.R(v1))
			swapB := w.NewBlock()
			w.CondBr(mir.R(gt), swapB, skipB)
			w.SetBlock(swapB)
			w.Store(mir.R(a0), mir.R(v1), 8)
			w.Store(mir.R(a1), mir.R(v0), 8)
			w.Br(skipB)
			w.SetBlock(skipB)
		})
	}
	w.Ret()

	b := p.NewFunc("main", 0)
	arrM := b.Call("malloc", mir.C(n*8))
	initArraySeq(b, arrM, n, 2654435761, 97)
	// A few sorting rounds (bubble-of-shell passes).
	rounds := int64(6)
	b.Loop(mir.C(rounds), func(r mir.Reg) {
		spawnJoinWorkers(b, "sortWorker", nWorkers, mir.R(arrM), mir.C(n))
	})
	// Merge quarters into dst by repeated min-scan of the 4 heads.
	dst := b.Call("malloc", mir.C(n*8))
	heads := b.Alloca(nWorkers * 8)
	for i := int64(0); i < nWorkers; i++ {
		hv := b.Const(i * (n / nWorkers))
		ha := b.Add(mir.R(heads), mir.C(i*8))
		b.Store(mir.R(ha), mir.R(hv), 8)
	}
	b.Loop(mir.C(n), func(outIdx mir.Reg) {
		bestV := b.Alloca(8)
		bestW := b.Alloca(8)
		maxv := b.Const(1 << 62)
		b.Store(mir.R(bestV), mir.R(maxv), 8)
		m1 := b.Const(-1)
		b.Store(mir.R(bestW), mir.R(m1), 8)
		b.Loop(mir.C(nWorkers), func(q mir.Reg) {
			hoff := b.Mul(mir.R(q), mir.C(8))
			ha := b.Add(mir.R(heads), mir.R(hoff))
			hv := b.Load(mir.R(ha), 8)
			limit1 := b.Add(mir.R(q), mir.C(1))
			limit := b.Mul(mir.R(limit1), mir.C(n/nWorkers))
			inRange := b.Bin(mir.OpLt, mir.R(hv), mir.R(limit))
			chk := b.NewBlock()
			next := b.NewBlock()
			b.CondBr(mir.R(inRange), chk, next)
			b.SetBlock(chk)
			ao := b.Mul(mir.R(hv), mir.C(8))
			aa := b.Add(mir.R(arrM), mir.R(ao))
			av := b.Load(mir.R(aa), 8)
			bv := b.Load(mir.R(bestV), 8)
			lt := b.Bin(mir.OpLt, mir.R(av), mir.R(bv))
			takeB := b.NewBlock()
			b.CondBr(mir.R(lt), takeB, next)
			b.SetBlock(takeB)
			b.Store(mir.R(bestV), mir.R(av), 8)
			b.Store(mir.R(bestW), mir.R(q), 8)
			b.Br(next)
			b.SetBlock(next)
		})
		// Advance the winning head and emit.
		bw := b.Load(mir.R(bestW), 8)
		valid := b.Bin(mir.OpGe, mir.R(bw), mir.C(0))
		emitB := b.NewBlock()
		after := b.NewBlock()
		b.CondBr(mir.R(valid), emitB, after)
		b.SetBlock(emitB)
		bo := b.Mul(mir.R(bw), mir.C(8))
		ha := b.Add(mir.R(heads), mir.R(bo))
		hv := b.Load(mir.R(ha), 8)
		hv2 := b.Add(mir.R(hv), mir.C(1))
		b.Store(mir.R(ha), mir.R(hv2), 8)
		bv := b.Load(mir.R(bestV), 8)
		do := b.Mul(mir.R(outIdx), mir.C(8))
		da := b.Add(mir.R(dst), mir.R(do))
		b.Store(mir.R(da), mir.R(bv), 8)
		b.Br(after)
		b.SetBlock(after)
	})
	emitChecksumAndFree(b, dst, n, arrM, dst)
	return p
}

// ffmpeg: frame transform + zlib deflate loop; the bug variant inflates
// through a z_stream that was never initialized (the removed unused
// z_stream), and the taint variant indexes a quantization table with an
// input byte.
func buildFFmpeg(size Size, bug Bug) *mir.Program {
	const frameBytes = 1024
	frames := size.scale(8)
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)

	src := b.Call("malloc", mir.C(frameBytes))
	coef := b.Call("malloc", mir.C(frameBytes))
	outBuf := b.Call("malloc", mir.C(frameBytes))
	strm := b.Call("malloc", mir.C(48))
	b.CallVoid("memset", mir.R(strm), mir.C(0), mir.C(48))
	b.CallVoid("deflateInit", mir.R(strm))
	qtab := b.Call("malloc", mir.C(256*8))
	initArraySeq(b, qtab, 256, 13, 1)
	initBytes(b, src, frameBytes, 41, 3)

	totalOut := b.Alloca(8)
	z := b.Const(0)
	b.Store(mir.R(totalOut), mir.R(z), 8)

	b.Loop(mir.C(frames), func(f mir.Reg) {
		// "DCT": difference-transform each 8-byte row then quantize.
		b.Loop(mir.C(frameBytes-1), func(i mir.Reg) {
			a0 := b.Add(mir.R(src), mir.R(i))
			i1 := b.Add(mir.R(i), mir.C(1))
			a1 := b.Add(mir.R(src), mir.R(i1))
			v0 := b.Load(mir.R(a0), 1)
			v1 := b.Load(mir.R(a1), 1)
			d := b.Sub(mir.R(v1), mir.R(v0))
			qi := b.Bin(mir.OpAnd, mir.R(d), mir.C(255))
			qo := b.Mul(mir.R(qi), mir.C(8))
			qa := b.Add(mir.R(qtab), mir.R(qo))
			qv := b.Load(mir.R(qa), 8)
			quant := b.Bin(mir.OpAnd, mir.R(qv), mir.C(255))
			ca := b.Add(mir.R(coef), mir.R(i))
			b.Store(mir.R(ca), mir.R(quant), 1)
		})
		last := b.Add(mir.R(coef), mir.C(frameBytes-1))
		zz := b.Const(0)
		b.Store(mir.R(last), mir.R(zz), 1)

		// Compress the coefficients.
		b.Store(mir.R(strm), mir.R(coef), 8) // next_in
		ai := b.Add(mir.R(strm), mir.C(8))
		ci := b.Const(frameBytes)
		b.Store(mir.R(ai), mir.R(ci), 8) // avail_in
		no := b.Add(mir.R(strm), mir.C(16))
		b.Store(mir.R(no), mir.R(outBuf), 8) // next_out
		ao := b.Add(mir.R(strm), mir.C(24))
		co := b.Const(frameBytes)
		b.Store(mir.R(ao), mir.R(co), 8) // avail_out
		b.CallVoid("deflate", mir.R(strm), mir.C(4))
		to := b.Add(mir.R(strm), mir.C(32))
		tv := b.Load(mir.R(to), 8)
		cur := b.Load(mir.R(totalOut), 8)
		cur2 := b.Add(mir.R(cur), mir.R(tv))
		b.Store(mir.R(totalOut), mir.R(cur2), 8)

		// Mutate the frame for the next round.
		b.Loop(mir.C(frameBytes/8), func(i mir.Reg) {
			off := b.Mul(mir.R(i), mir.C(8))
			a := b.Add(mir.R(src), mir.R(off))
			v := b.Load(mir.R(a), 8)
			v2 := b.Mul(mir.R(v), mir.C(6364136223846793005))
			v3 := b.Add(mir.R(v2), mir.C(1442695040888963407))
			b.Store(mir.R(a), mir.R(v3), 8)
		})
	})

	if bug == BugZlibUninit {
		// The "unused z_stream": declared, never initialized, yet pumped
		// once on a cold path.
		strayStrm := b.Call("malloc", mir.C(48))
		b.CallVoid("memset", mir.R(strayStrm), mir.C(0), mir.C(48))
		b.CallVoid("inflate", mir.R(strayStrm), mir.C(0))
		b.CallVoid("free", mir.R(strayStrm))
	}
	if bug == BugTaint {
		// Input-controlled index into the quantization table.
		inBuf := b.Call("malloc", mir.C(32))
		g := b.Call("gets", mir.R(inBuf))
		c0 := b.Load(mir.R(g), 1)
		qo := b.Mul(mir.R(c0), mir.C(8))
		qa := b.Add(mir.R(qtab), mir.R(qo))
		qv := b.Load(mir.R(qa), 8)
		b.CallVoid("print_i64", mir.R(qv))
		b.CallVoid("free", mir.R(inBuf))
	}

	b.CallVoid("deflateEnd", mir.R(strm))
	t := b.Load(mir.R(totalOut), 8)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(src))
	b.CallVoid("free", mir.R(coef))
	b.CallVoid("free", mir.R(outBuf))
	b.CallVoid("free", mir.R(strm))
	b.CallVoid("free", mir.R(qtab))
	b.RetVal(mir.C(0))
	return p
}
