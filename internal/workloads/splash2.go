package workloads

import "repro/internal/mir"

// Splash2-like multi-threaded kernels. Four worker threads split each
// phase; shared state is partitioned or lock-protected the way the
// originals are, and two programs (barnes, fmm) read their parameters
// with gets() — the source of LLVM MSan's false positives in Table 3.
// ocean and volrend carry the table's true uninitialized reads as
// injectable bugs.

const nWorkers = 4

func init() {
	register(&Spec{Name: "fft", Suite: "splash2", Threads: nWorkers, build: buildFFT})
	register(&Spec{Name: "lu_c", Suite: "splash2", Threads: nWorkers, build: buildLU(true)})
	register(&Spec{Name: "lu_nc", Suite: "splash2", Threads: nWorkers, build: buildLU(false)})
	register(&Spec{Name: "radix", Suite: "splash2", Threads: nWorkers, build: buildRadix})
	register(&Spec{Name: "cholesky", Suite: "splash2", Threads: nWorkers, build: buildCholesky})
	register(&Spec{Name: "barnes", Suite: "splash2", Threads: nWorkers, build: buildBarnes})
	register(&Spec{Name: "fmm", Suite: "splash2", Threads: nWorkers, build: buildFMM})
	register(&Spec{Name: "ocean", Suite: "splash2", Threads: nWorkers, Bugs: []Bug{BugUninit}, build: buildOcean})
	register(&Spec{Name: "raytrace", Suite: "splash2", Threads: nWorkers, build: buildRaytrace})
	register(&Spec{Name: "water_ns", Suite: "splash2", Threads: nWorkers, build: buildWaterNS})
	register(&Spec{Name: "volrend", Suite: "splash2", Threads: nWorkers, Bugs: []Bug{BugUninit}, build: buildVolrend})
	register(&Spec{Name: "radiosity", Suite: "splash2", Threads: nWorkers, Bugs: []Bug{BugRace}, build: buildRadiosity})
}

// emitChecksumAndFree finishes main: sum an array, print, free buffers.
func emitChecksumAndFree(b *mir.FuncBuilder, arr mir.Reg, n int64, frees ...mir.Reg) {
	sum := sumArray(b, arr, n)
	t := b.Load(mir.R(sum), 8)
	b.CallVoid("print_i64", mir.R(t))
	for _, f := range frees {
		b.CallVoid("free", mir.R(f))
	}
	b.RetVal(mir.C(0))
}

// fft: per-phase butterfly passes, workers own disjoint halves each
// phase; a lock-protected global amplitude accumulator models the
// barrier-time reduction.
func buildFFT(size Size, bug Bug) *mir.Program {
	n := size.scale(1024) // elements (power-of-two-ish chunks)
	p := mir.NewProgram()

	// worker(data, acc, lock, n, phase, w)
	w := p.NewFunc("fftWorker", 6)
	data, acc, lock, nn, phase, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4), w.Param(5)
	chunk := w.Bin(mir.OpDiv, mir.R(nn), mir.C(nWorkers))
	base := w.Mul(mir.R(wid), mir.R(chunk))
	local := w.Alloca(8)
	z := w.Const(0)
	w.Store(mir.R(local), mir.R(z), 8)
	half := w.Bin(mir.OpDiv, mir.R(chunk), mir.C(2))
	w.Loop(mir.R(half), func(i mir.Reg) {
		// Butterfly: pair (base+i, base+(i+stride)%chunk); the stride
		// doubles with the phase, the modulus keeps the partner inside
		// this worker's chunk.
		stride1 := w.Bin(mir.OpShl, mir.C(1), mir.R(phase))
		stride := w.Bin(mir.OpRem, mir.R(stride1), mir.R(half))
		i1 := w.Add(mir.R(base), mir.R(i))
		j1 := w.Add(mir.R(i), mir.R(stride))
		j2 := w.Bin(mir.OpRem, mir.R(j1), mir.R(chunk))
		i2 := w.Add(mir.R(base), mir.R(j2))
		o1 := w.Mul(mir.R(i1), mir.C(8))
		o2 := w.Mul(mir.R(i2), mir.C(8))
		a1 := w.Add(mir.R(data), mir.R(o1))
		a2 := w.Add(mir.R(data), mir.R(o2))
		v1 := w.Load(mir.R(a1), 8)
		v2 := w.Load(mir.R(a2), 8)
		s := w.Add(mir.R(v1), mir.R(v2))
		d := w.Sub(mir.R(v1), mir.R(v2))
		w.Store(mir.R(a1), mir.R(s), 8)
		w.Store(mir.R(a2), mir.R(d), 8)
		lv := w.Load(mir.R(local), 8)
		lv2 := w.Add(mir.R(lv), mir.R(s))
		w.Store(mir.R(local), mir.R(lv2), 8)
	})
	// Reduce into the shared accumulator under the lock.
	w.Lock(mir.R(lock))
	av := w.Load(mir.R(acc), 8)
	lv := w.Load(mir.R(local), 8)
	av2 := w.Add(mir.R(av), mir.R(lv))
	w.Store(mir.R(acc), mir.R(av2), 8)
	w.Unlock(mir.R(lock))
	w.Ret()

	b := p.NewFunc("main", 0)
	dataM := b.Call("malloc", mir.C(n*8))
	initArraySeq(b, dataM, n, 16807, 1)
	accm := b.Call("malloc", mir.C(8))
	z0 := b.Const(0)
	b.Store(mir.R(accm), mir.R(z0), 8)
	lockm := b.Call("malloc", mir.C(8))
	for phase := int64(0); phase < 4; phase++ {
		spawnJoinWorkers(b, "fftWorker", nWorkers,
			mir.R(dataM), mir.R(accm), mir.R(lockm), mir.C(n), mir.C(phase))
	}
	emitChecksumAndFree(b, dataM, n, dataM, accm, lockm)
	return p
}

// lu: blocked factorization sweep. Contiguous (lu_c) walks rows in
// row-major order; non-contiguous (lu_nc) walks column-major, the cache
// -hostile variant.
func buildLU(contiguous bool) func(Size, Bug) *mir.Program {
	return func(size Size, bug Bug) *mir.Program {
		dim := int64(64)
		sweeps := size.scale(2)
		p := mir.NewProgram()

		// worker(mat, dim, reps, w): each rep eliminates the rows it owns
		// below a rotating pivot. Scaling lives inside the worker so the
		// thread count stays fixed at any workload size.
		w := p.NewFunc("luWorker", 4)
		mat, dimr, reps, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3)
		w.Loop(mir.R(reps), func(rep mir.Reg) {
			k := w.Bin(mir.OpRem, mir.R(rep), mir.R(dimr))
			w.Loop(mir.R(dimr), func(r mir.Reg) {
				own := w.Bin(mir.OpRem, mir.R(r), mir.C(nWorkers))
				mine := w.Bin(mir.OpEq, mir.R(own), mir.R(wid))
				below := w.Bin(mir.OpGt, mir.R(r), mir.R(k))
				both := w.Bin(mir.OpAnd, mir.R(mine), mir.R(below))
				doB := w.NewBlock()
				skipB := w.NewBlock()
				w.CondBr(mir.R(both), doB, skipB)
				w.SetBlock(doB)
				w.Loop(mir.R(dimr), func(c mir.Reg) {
					var idx, pidx mir.Reg
					if contiguous {
						r1 := w.Mul(mir.R(r), mir.R(dimr))
						idx = w.Add(mir.R(r1), mir.R(c))
						p1 := w.Mul(mir.R(k), mir.R(dimr))
						pidx = w.Add(mir.R(p1), mir.R(c))
					} else {
						c1 := w.Mul(mir.R(c), mir.R(dimr))
						idx = w.Add(mir.R(c1), mir.R(r))
						pidx = w.Add(mir.R(c1), mir.R(k))
					}
					off := w.Mul(mir.R(idx), mir.C(8))
					poff := w.Mul(mir.R(pidx), mir.C(8))
					addr := w.Add(mir.R(mat), mir.R(off))
					paddr := w.Add(mir.R(mat), mir.R(poff))
					v := w.Load(mir.R(addr), 8)
					pv := w.Load(mir.R(paddr), 8)
					f1 := w.Bin(mir.OpShr, mir.R(pv), mir.C(3))
					nv := w.Sub(mir.R(v), mir.R(f1))
					w.Store(mir.R(addr), mir.R(nv), 8)
				})
				w.Br(skipB)
				w.SetBlock(skipB)
			})
		})
		w.Ret()

		b := p.NewFunc("main", 0)
		matM := b.Call("malloc", mir.C(dim*dim*8))
		initArraySeq(b, matM, dim*dim, 48271, 7)
		spawnJoinWorkers(b, "luWorker", nWorkers, mir.R(matM), mir.C(dim), mir.C(sweeps))
		emitChecksumAndFree(b, matM, dim*dim, matM)
		return p
	}
}

// radix: per-pass histogram under a lock, then scatter by digit.
func buildRadix(size Size, bug Bug) *mir.Program {
	n := size.scale(1024)
	p := mir.NewProgram()

	// worker(src, dst, hist, lock, n, shift, w)
	w := p.NewFunc("radixWorker", 7)
	src, dst, hist, lock, nn, shift, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4), w.Param(5), w.Param(6)
	chunk := w.Bin(mir.OpDiv, mir.R(nn), mir.C(nWorkers))
	base := w.Mul(mir.R(wid), mir.R(chunk))
	// Local histogram on the stack.
	localH := w.Alloca(16 * 8)
	w.Loop(mir.C(16), func(i mir.Reg) {
		off := w.Mul(mir.R(i), mir.C(8))
		a := w.Add(mir.R(localH), mir.R(off))
		z := w.Const(0)
		w.Store(mir.R(a), mir.R(z), 8)
	})
	w.Loop(mir.R(chunk), func(i mir.Reg) {
		idx := w.Add(mir.R(base), mir.R(i))
		off := w.Mul(mir.R(idx), mir.C(8))
		a := w.Add(mir.R(src), mir.R(off))
		v := w.Load(mir.R(a), 8)
		d1 := w.Bin(mir.OpShr, mir.R(v), mir.R(shift))
		d := w.Bin(mir.OpAnd, mir.R(d1), mir.C(15))
		ho := w.Mul(mir.R(d), mir.C(8))
		ha := w.Add(mir.R(localH), mir.R(ho))
		hv := w.Load(mir.R(ha), 8)
		hv2 := w.Add(mir.R(hv), mir.C(1))
		w.Store(mir.R(ha), mir.R(hv2), 8)
		// Scatter into dst at a per-worker region ordered by digit.
		do1 := w.Mul(mir.R(d), mir.R(chunk))
		do2 := w.Bin(mir.OpDiv, mir.R(do1), mir.C(16))
		do3 := w.Add(mir.R(do2), mir.R(base))
		do4 := w.Add(mir.R(do3), mir.R(hv))
		do5 := w.Bin(mir.OpRem, mir.R(do4), mir.R(nn))
		doff := w.Mul(mir.R(do5), mir.C(8))
		da := w.Add(mir.R(dst), mir.R(doff))
		w.Store(mir.R(da), mir.R(v), 8)
	})
	// Merge local histogram into the shared one under the lock.
	w.Lock(mir.R(lock))
	w.Loop(mir.C(16), func(i mir.Reg) {
		off := w.Mul(mir.R(i), mir.C(8))
		la := w.Add(mir.R(localH), mir.R(off))
		ga := w.Add(mir.R(hist), mir.R(off))
		lv := w.Load(mir.R(la), 8)
		gv := w.Load(mir.R(ga), 8)
		s := w.Add(mir.R(gv), mir.R(lv))
		w.Store(mir.R(ga), mir.R(s), 8)
	})
	w.Unlock(mir.R(lock))
	w.Ret()

	b := p.NewFunc("main", 0)
	srcM := b.Call("malloc", mir.C(n*8))
	dstM := b.Call("calloc", mir.C(n), mir.C(8))
	histM := b.Call("calloc", mir.C(16), mir.C(8))
	lockM := b.Call("malloc", mir.C(8))
	initArraySeq(b, srcM, n, 2654435761, 3)
	for pass := int64(0); pass < 4; pass++ {
		spawnJoinWorkers(b, "radixWorker", nWorkers,
			mir.R(srcM), mir.R(dstM), mir.R(histM), mir.R(lockM), mir.C(n), mir.C(pass*4))
	}
	emitChecksumAndFree(b, histM, 16, srcM, dstM, histM, lockM)
	return p
}

// cholesky: lower-triangular sweep with integer square-root updates.
func buildCholesky(size Size, bug Bug) *mir.Program {
	dim := int64(48)
	sweeps := size.scale(2)
	p := mir.NewProgram()

	// worker(mat, dim, reps, w)
	w := p.NewFunc("cholWorker", 4)
	mat, dimr, reps, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3)
	w.Loop(mir.R(reps), func(rep mir.Reg) {
		w.Loop(mir.R(dimr), func(r mir.Reg) {
			own := w.Bin(mir.OpRem, mir.R(r), mir.C(nWorkers))
			mine := w.Bin(mir.OpEq, mir.R(own), mir.R(wid))
			doB := w.NewBlock()
			skipB := w.NewBlock()
			w.CondBr(mir.R(mine), doB, skipB)
			w.SetBlock(doB)
			// Only the lower triangle: c in [0, r].
			cnt := w.Add(mir.R(r), mir.C(1))
			w.Loop(mir.R(cnt), func(c mir.Reg) {
				r1 := w.Mul(mir.R(r), mir.R(dimr))
				idx := w.Add(mir.R(r1), mir.R(c))
				off := w.Mul(mir.R(idx), mir.C(8))
				addr := w.Add(mir.R(mat), mir.R(off))
				v := w.Load(mir.R(addr), 8)
				// Integer "sqrt-ish" halving of the diagonal influence.
				dg1 := w.Mul(mir.R(c), mir.R(dimr))
				dgi := w.Add(mir.R(dg1), mir.R(c))
				dgo := w.Mul(mir.R(dgi), mir.C(8))
				dga := w.Add(mir.R(mat), mir.R(dgo))
				dgv := w.Load(mir.R(dga), 8)
				h := w.Bin(mir.OpShr, mir.R(dgv), mir.C(4))
				nv := w.Sub(mir.R(v), mir.R(h))
				w.Store(mir.R(addr), mir.R(nv), 8)
			})
			w.Br(skipB)
			w.SetBlock(skipB)
		})
	})
	w.Ret()

	b := p.NewFunc("main", 0)
	matM := b.Call("malloc", mir.C(dim*dim*8))
	initArraySeq(b, matM, dim*dim, 69621, 13)
	spawnJoinWorkers(b, "cholWorker", nWorkers, mir.R(matM), mir.C(dim), mir.C(sweeps))
	emitChecksumAndFree(b, matM, dim*dim, matM)
	return p
}

// nbody builds barnes/fmm: pairwise force accumulation over bodies.
// Both read their parameters with gets() (getparam.c / fmm.c in
// Table 3); fmm adds a coarse "multipole" cell pass.
func nbody(withCells bool) func(Size, Bug) *mir.Program {
	return func(size Size, bug Bug) *mir.Program {
		bodies := size.scale(96)
		p := mir.NewProgram()

		// worker(pos, force, n, w)
		w := p.NewFunc("nbodyWorker", 4)
		pos, force, nn, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3)
		w.Loop(mir.R(nn), func(i mir.Reg) {
			own := w.Bin(mir.OpRem, mir.R(i), mir.C(nWorkers))
			mine := w.Bin(mir.OpEq, mir.R(own), mir.R(wid))
			doB := w.NewBlock()
			skipB := w.NewBlock()
			w.CondBr(mir.R(mine), doB, skipB)
			w.SetBlock(doB)
			io := w.Mul(mir.R(i), mir.C(8))
			ia := w.Add(mir.R(pos), mir.R(io))
			xi := w.Load(mir.R(ia), 8)
			accv := w.Alloca(8)
			z := w.Const(0)
			w.Store(mir.R(accv), mir.R(z), 8)
			w.Loop(mir.R(nn), func(j mir.Reg) {
				jo := w.Mul(mir.R(j), mir.C(8))
				ja := w.Add(mir.R(pos), mir.R(jo))
				xj := w.Load(mir.R(ja), 8)
				d := w.Sub(mir.R(xi), mir.R(xj))
				ad := w.Call("abs64", mir.R(d))
				ad1 := w.Add(mir.R(ad), mir.C(1))
				f := w.Bin(mir.OpDiv, mir.C(1<<16), mir.R(ad1))
				av := w.Load(mir.R(accv), 8)
				av2 := w.Add(mir.R(av), mir.R(f))
				w.Store(mir.R(accv), mir.R(av2), 8)
			})
			fv := w.Load(mir.R(accv), 8)
			fa := w.Add(mir.R(force), mir.R(io))
			w.Store(mir.R(fa), mir.R(fv), 8)
			w.Br(skipB)
			w.SetBlock(skipB)
		})
		w.Ret()

		b := p.NewFunc("main", 0)
		// Read simulation parameters with gets() — the Table 3 FP source:
		// instruction-level MSan never sees the library write the buffer.
		param := b.Call("malloc", mir.C(32))
		got := b.Call("gets", mir.R(param))
		c0 := b.Load(mir.R(got), 1)
		// Branch on the parameter byte: scale factor 1 or 2.
		odd := b.Bin(mir.OpAnd, mir.R(c0), mir.C(1))
		scaleV := b.Alloca(8)
		one := b.Const(1)
		b.Store(mir.R(scaleV), mir.R(one), 8)
		two := b.NewBlock()
		cont := b.NewBlock()
		b.CondBr(mir.R(odd), two, cont)
		b.SetBlock(two)
		twoC := b.Const(2)
		b.Store(mir.R(scaleV), mir.R(twoC), 8)
		b.Br(cont)
		b.SetBlock(cont)

		posM := b.Call("malloc", mir.C(bodies*8))
		forceM := b.Call("calloc", mir.C(bodies), mir.C(8))
		initArraySeq(b, posM, bodies, 10007, 23)

		spawnJoinWorkers(b, "nbodyWorker", nWorkers, mir.R(posM), mir.R(forceM), mir.C(bodies))

		if withCells {
			// fmm: coarse cell aggregation pass (multipole flavor).
			cells := b.Call("calloc", mir.C(16), mir.C(8))
			b.Loop(mir.C(bodies), func(i mir.Reg) {
				io := b.Mul(mir.R(i), mir.C(8))
				fa := b.Add(mir.R(forceM), mir.R(io))
				fv := b.Load(mir.R(fa), 8)
				cell := b.Bin(mir.OpAnd, mir.R(i), mir.C(15))
				co := b.Mul(mir.R(cell), mir.C(8))
				ca := b.Add(mir.R(cells), mir.R(co))
				cv := b.Load(mir.R(ca), 8)
				cv2 := b.Add(mir.R(cv), mir.R(fv))
				b.Store(mir.R(ca), mir.R(cv2), 8)
			})
			b.CallVoid("free", mir.R(cells))
		}

		sc := b.Load(mir.R(scaleV), 8)
		b.CallVoid("print_i64", mir.R(sc))
		emitChecksumAndFree(b, forceM, bodies, param, posM, forceM)
		return p
	}
}

func buildBarnes(size Size, bug Bug) *mir.Program { return nbody(false)(size, bug) }
func buildFMM(size Size, bug Bug) *mir.Program    { return nbody(true)(size, bug) }

// ocean: red-black grid stencil. The injectable bug skips initializing
// the last interior row (multi.c:261's uninitialized grid read).
func buildOcean(size Size, bug Bug) *mir.Program {
	const dim = 64
	iters := size.scale(4)
	p := mir.NewProgram()

	// worker(grid, dim, iters, w): each iteration alternates the
	// red/black color, all inside one thread per worker.
	w := p.NewFunc("oceanWorker", 4)
	grid, dimr, itersP, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3)
	interior := w.Sub(mir.R(dimr), mir.C(2))
	w.Loop(mir.R(itersP), func(it mir.Reg) {
		color := w.Bin(mir.OpAnd, mir.R(it), mir.C(1))
		w.Loop(mir.R(interior), func(rIdx mir.Reg) {
			r := w.Add(mir.R(rIdx), mir.C(1))
			own := w.Bin(mir.OpRem, mir.R(r), mir.C(nWorkers))
			mine := w.Bin(mir.OpEq, mir.R(own), mir.R(wid))
			doB := w.NewBlock()
			skipB := w.NewBlock()
			w.CondBr(mir.R(mine), doB, skipB)
			w.SetBlock(doB)
			w.Loop(mir.R(interior), func(cIdx mir.Reg) {
				c := w.Add(mir.R(cIdx), mir.C(1))
				rc := w.Add(mir.R(r), mir.R(c))
				par := w.Bin(mir.OpAnd, mir.R(rc), mir.C(1))
				match := w.Bin(mir.OpEq, mir.R(par), mir.R(color))
				upd := w.NewBlock()
				skip2 := w.NewBlock()
				w.CondBr(mir.R(match), upd, skip2)
				w.SetBlock(upd)
				r0 := w.Mul(mir.R(r), mir.R(dimr))
				idx := w.Add(mir.R(r0), mir.R(c))
				off := w.Mul(mir.R(idx), mir.C(8))
				up := w.Sub(mir.R(idx), mir.R(dimr))
				dn := w.Add(mir.R(idx), mir.R(dimr))
				lf := w.Sub(mir.R(idx), mir.C(1))
				rt := w.Add(mir.R(idx), mir.C(1))
				upo := w.Mul(mir.R(up), mir.C(8))
				dno := w.Mul(mir.R(dn), mir.C(8))
				lfo := w.Mul(mir.R(lf), mir.C(8))
				rto := w.Mul(mir.R(rt), mir.C(8))
				ua := w.Add(mir.R(grid), mir.R(upo))
				da := w.Add(mir.R(grid), mir.R(dno))
				la := w.Add(mir.R(grid), mir.R(lfo))
				ra := w.Add(mir.R(grid), mir.R(rto))
				ca := w.Add(mir.R(grid), mir.R(off))
				uv := w.Load(mir.R(ua), 8)
				dv := w.Load(mir.R(da), 8)
				lv := w.Load(mir.R(la), 8)
				rv := w.Load(mir.R(ra), 8)
				s1 := w.Add(mir.R(uv), mir.R(dv))
				s2 := w.Add(mir.R(lv), mir.R(rv))
				s3 := w.Add(mir.R(s1), mir.R(s2))
				avg := w.Bin(mir.OpShr, mir.R(s3), mir.C(2))
				w.Store(mir.R(ca), mir.R(avg), 8)
				w.Br(skip2)
				w.SetBlock(skip2)
			})
			w.Br(skipB)
			w.SetBlock(skipB)
		})
	})
	w.Ret()

	b := p.NewFunc("main", 0)
	gridM := b.Call("malloc", mir.C(dim*dim*8))
	initRows := int64(dim)
	if bug == BugUninit {
		initRows = dim - 2 // leave the last two rows uninitialized
	}
	initArraySeq(b, gridM, initRows*dim, 31, 7)
	spawnJoinWorkers(b, "oceanWorker", nWorkers, mir.R(gridM), mir.C(dim), mir.C(iters))
	// Checksum reads the whole gridM (reaches uninitialized cells when
	// the bug is planted) and branches on it.
	sum := sumArray(b, gridM, dim*dim)
	t := b.Load(mir.R(sum), 8)
	isNeg := b.Bin(mir.OpLt, mir.R(t), mir.C(0))
	nb := b.NewBlock()
	done := b.NewBlock()
	b.CondBr(mir.R(isNeg), nb, done)
	b.SetBlock(nb)
	b.CallVoid("print_i64", mir.C(-1))
	b.Br(done)
	b.SetBlock(done)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(gridM))
	b.RetVal(mir.C(0))
	return p
}

// raytrace: read-only shared scene, per-thread ray bounces, lock-merged
// result image.
func buildRaytrace(size Size, bug Bug) *mir.Program {
	rays := size.scale(512)
	const sceneN = 256
	p := mir.NewProgram()

	// worker(scene, img, lock, rays, w)
	w := p.NewFunc("rayWorker", 5)
	scene, img, lock, rr, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4)
	perW := w.Bin(mir.OpDiv, mir.R(rr), mir.C(nWorkers))
	w.Loop(mir.R(perW), func(i mir.Reg) {
		// A ray: start from seed, bounce 6 times through scene cells.
		seed0 := w.Mul(mir.R(wid), mir.C(7919))
		seed1 := w.Add(mir.R(seed0), mir.R(i))
		cursor := w.Alloca(8)
		w.Store(mir.R(cursor), mir.R(seed1), 8)
		energy := w.Alloca(8)
		full := w.Const(1 << 20)
		w.Store(mir.R(energy), mir.R(full), 8)
		w.Loop(mir.C(6), func(bounce mir.Reg) {
			cv := w.Load(mir.R(cursor), 8)
			h1 := w.Mul(mir.R(cv), mir.C(1103515245))
			h2 := w.Add(mir.R(h1), mir.C(12345))
			w.Store(mir.R(cursor), mir.R(h2), 8)
			cell := w.Bin(mir.OpAnd, mir.R(h2), mir.C(sceneN-1))
			co := w.Mul(mir.R(cell), mir.C(8))
			ca := w.Add(mir.R(scene), mir.R(co))
			refl := w.Load(mir.R(ca), 8)
			ev := w.Load(mir.R(energy), 8)
			e1 := w.Mul(mir.R(ev), mir.R(refl))
			e2 := w.Bin(mir.OpShr, mir.R(e1), mir.C(8))
			e3 := w.Bin(mir.OpAnd, mir.R(e2), mir.C((1<<20)-1))
			w.Store(mir.R(energy), mir.R(e3), 8)
		})
		// Deposit into the shared image under the lock.
		ev := w.Load(mir.R(energy), 8)
		px := w.Bin(mir.OpAnd, mir.R(i), mir.C(63))
		po := w.Mul(mir.R(px), mir.C(8))
		pa := w.Add(mir.R(img), mir.R(po))
		w.Lock(mir.R(lock))
		old := w.Load(mir.R(pa), 8)
		nv := w.Add(mir.R(old), mir.R(ev))
		w.Store(mir.R(pa), mir.R(nv), 8)
		w.Unlock(mir.R(lock))
	})
	w.Ret()

	b := p.NewFunc("main", 0)
	sceneM := b.Call("malloc", mir.C(sceneN*8))
	initArraySeq(b, sceneM, sceneN, 167, 90) // reflectivity 90..255-ish
	imgM := b.Call("calloc", mir.C(64), mir.C(8))
	lockM := b.Call("malloc", mir.C(8))
	spawnJoinWorkers(b, "rayWorker", nWorkers, mir.R(sceneM), mir.R(imgM), mir.R(lockM), mir.C(rays))
	emitChecksumAndFree(b, imgM, 64, sceneM, imgM, lockM)
	return p
}

// water_ns: molecule pairs within a cutoff, per-molecule locks — the
// lock-operation-heavy workload.
func buildWaterNS(size Size, bug Bug) *mir.Program {
	mols := int64(64)
	steps := size.scale(3)
	p := mir.NewProgram()

	// worker(pos, vel, locks, mols, steps, w): each worker updates its
	// molecules against all others, locking the target molecule's lock
	// word while writing; steps scale the work inside the thread.
	w := p.NewFunc("waterWorker", 6)
	pos, vel, locks, mm, stepsP, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4), w.Param(5)
	w.Loop(mir.R(stepsP), func(st mir.Reg) {
		w.Loop(mir.R(mm), func(i mir.Reg) {
			own := w.Bin(mir.OpRem, mir.R(i), mir.C(nWorkers))
			mine := w.Bin(mir.OpEq, mir.R(own), mir.R(wid))
			doB := w.NewBlock()
			skipB := w.NewBlock()
			w.CondBr(mir.R(mine), doB, skipB)
			w.SetBlock(doB)
			io := w.Mul(mir.R(i), mir.C(8))
			pa := w.Add(mir.R(pos), mir.R(io))
			xi := w.Load(mir.R(pa), 8)
			w.Loop(mir.R(mm), func(j mir.Reg) {
				jo := w.Mul(mir.R(j), mir.C(8))
				pja := w.Add(mir.R(pos), mir.R(jo))
				xj := w.Load(mir.R(pja), 8)
				d := w.Sub(mir.R(xi), mir.R(xj))
				ad := w.Call("abs64", mir.R(d))
				near := w.Bin(mir.OpLt, mir.R(ad), mir.C(1<<12))
				hit := w.NewBlock()
				skip2 := w.NewBlock()
				w.CondBr(mir.R(near), hit, skip2)
				w.SetBlock(hit)
				// Update molecule i's velocity under its lock.
				la := w.Add(mir.R(locks), mir.R(io))
				w.Lock(mir.R(la))
				va := w.Add(mir.R(vel), mir.R(io))
				vv := w.Load(mir.R(va), 8)
				imp := w.Bin(mir.OpShr, mir.R(ad), mir.C(6))
				nv := w.Add(mir.R(vv), mir.R(imp))
				w.Store(mir.R(va), mir.R(nv), 8)
				w.Unlock(mir.R(la))
				w.Br(skip2)
				w.SetBlock(skip2)
			})
			w.Br(skipB)
			w.SetBlock(skipB)
		})
	})
	w.Ret()

	b := p.NewFunc("main", 0)
	posM := b.Call("malloc", mir.C(mols*8))
	velM := b.Call("calloc", mir.C(mols), mir.C(8))
	locksM := b.Call("malloc", mir.C(mols*8))
	initArraySeq(b, posM, mols, 524287, 11)
	spawnJoinWorkers(b, "waterWorker", nWorkers, mir.R(posM), mir.R(velM), mir.R(locksM), mir.C(mols), mir.C(steps))
	emitChecksumAndFree(b, velM, mols, posM, velM, locksM)
	return p
}

// volrend: ray-cast sampling through a byte volume; the injectable bug
// leaves the opacity table's tail uninitialized (main.c:503).
func buildVolrend(size Size, bug Bug) *mir.Program {
	const volSide = 32 // 32^3 byte volume
	rays := size.scale(256)
	p := mir.NewProgram()

	// worker(vol, opac, out, rays, w)
	w := p.NewFunc("volWorker", 5)
	vol, opac, out, rr, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4)
	perW := w.Bin(mir.OpDiv, mir.R(rr), mir.C(nWorkers))
	w.Loop(mir.R(perW), func(i mir.Reg) {
		seed0 := w.Mul(mir.R(wid), mir.C(40503))
		seed := w.Add(mir.R(seed0), mir.R(i))
		acc := w.Alloca(8)
		z := w.Const(0)
		w.Store(mir.R(acc), mir.R(z), 8)
		w.Loop(mir.C(16), func(step mir.Reg) {
			s1 := w.Mul(mir.R(seed), mir.C(48271))
			s2 := w.Add(mir.R(s1), mir.R(step))
			vidx := w.Bin(mir.OpAnd, mir.R(s2), mir.C(volSide*volSide*volSide-1))
			va := w.Add(mir.R(vol), mir.R(vidx))
			den := w.Load(mir.R(va), 1)
			oa := w.Add(mir.R(opac), mir.R(den))
			op := w.Load(mir.R(oa), 1)
			av := w.Load(mir.R(acc), 8)
			contrib := w.Mul(mir.R(op), mir.C(3))
			av2 := w.Add(mir.R(av), mir.R(contrib))
			w.Store(mir.R(acc), mir.R(av2), 8)
		})
		av := w.Load(mir.R(acc), 8)
		px := w.Bin(mir.OpAnd, mir.R(i), mir.C(63))
		po0 := w.Mul(mir.R(px), mir.C(nWorkers))
		po1 := w.Add(mir.R(po0), mir.R(wid))
		po := w.Mul(mir.R(po1), mir.C(8))
		pa := w.Add(mir.R(out), mir.R(po))
		old := w.Load(mir.R(pa), 8)
		nv := w.Add(mir.R(old), mir.R(av))
		w.Store(mir.R(pa), mir.R(nv), 8)
	})
	w.Ret()

	b := p.NewFunc("main", 0)
	volM := b.Call("malloc", mir.C(volSide*volSide*volSide))
	initBytes(b, volM, volSide*volSide*volSide, 73, 5)
	opacM := b.Call("malloc", mir.C(256))
	opacInit := int64(256)
	if bug == BugUninit {
		opacInit = 128 // opacity table half-initialized: dense voxels hit the tail
	}
	initBytes(b, opacM, opacInit, 3, 1)
	outM := b.Call("calloc", mir.C(64*nWorkers), mir.C(8))
	spawnJoinWorkers(b, "volWorker", nWorkers, mir.R(volM), mir.R(opacM), mir.R(outM), mir.C(rays))
	// Branch on the rendered checksum (drives the MSan report for the
	// uninitialized opacity tail).
	sum := sumArray(b, outM, 64*nWorkers)
	t := b.Load(mir.R(sum), 8)
	big := b.Bin(mir.OpGt, mir.R(t), mir.C(1<<30))
	yes := b.NewBlock()
	done := b.NewBlock()
	b.CondBr(mir.R(big), yes, done)
	b.SetBlock(yes)
	b.CallVoid("print_i64", mir.C(1))
	b.Br(done)
	b.SetBlock(done)
	b.CallVoid("print_i64", mir.R(t))
	b.CallVoid("free", mir.R(volM))
	b.CallVoid("free", mir.R(opacM))
	b.CallVoid("free", mir.R(outM))
	b.RetVal(mir.C(0))
	return p
}

// radiosity: a task queue under one lock, workers pull patch indices and
// redistribute energy. The race variant updates the shared total
// without the lock.
func buildRadiosity(size Size, bug Bug) *mir.Program {
	patches := size.scale(192)
	p := mir.NewProgram()

	// worker(energy, queue, total, lock, n, w)
	w := p.NewFunc("radWorker", 6)
	energy, queue, total, lock, nn, wid := w.Param(0), w.Param(1), w.Param(2), w.Param(3), w.Param(4), w.Param(5)
	_ = wid
	done := w.Alloca(8)
	z := w.Const(0)
	w.Store(mir.R(done), mir.R(z), 8)
	loop := w.NewBlock()
	body := w.NewBlock()
	exit := w.NewBlock()
	w.Br(loop)
	w.SetBlock(loop)
	dv := w.Load(mir.R(done), 8)
	cont := w.Bin(mir.OpEq, mir.R(dv), mir.C(0))
	w.CondBr(mir.R(cont), body, exit)
	w.SetBlock(body)
	// Pop a task index under the lock.
	w.Lock(mir.R(lock))
	qv := w.Load(mir.R(queue), 8)
	hasWork := w.Bin(mir.OpLt, mir.R(qv), mir.R(nn))
	take := w.NewBlock()
	empty := w.NewBlock()
	after := w.NewBlock()
	taskVar := w.Alloca(8)
	w.CondBr(mir.R(hasWork), take, empty)
	w.SetBlock(take)
	q2 := w.Add(mir.R(qv), mir.C(1))
	w.Store(mir.R(queue), mir.R(q2), 8)
	w.Store(mir.R(taskVar), mir.R(qv), 8)
	w.Br(after)
	w.SetBlock(empty)
	m1 := w.Const(-1)
	w.Store(mir.R(taskVar), mir.R(m1), 8)
	one := w.Const(1)
	w.Store(mir.R(done), mir.R(one), 8)
	w.Br(after)
	w.SetBlock(after)
	w.Unlock(mir.R(lock))
	tv := w.Load(mir.R(taskVar), 8)
	valid := w.Bin(mir.OpGe, mir.R(tv), mir.C(0))
	work := w.NewBlock()
	w.CondBr(mir.R(valid), work, loop)
	w.SetBlock(work)
	// Redistribute: energy[task] spreads to 4 neighbors.
	to := w.Mul(mir.R(tv), mir.C(8))
	ta := w.Add(mir.R(energy), mir.R(to))
	ev := w.Load(mir.R(ta), 8)
	share := w.Bin(mir.OpShr, mir.R(ev), mir.C(2))
	w.Loop(mir.C(4), func(k mir.Reg) {
		n1 := w.Mul(mir.R(tv), mir.C(5))
		n2 := w.Add(mir.R(n1), mir.R(k))
		ni := w.Bin(mir.OpRem, mir.R(n2), mir.R(nn))
		no := w.Mul(mir.R(ni), mir.C(8))
		na := w.Add(mir.R(energy), mir.R(no))
		w.Lock(mir.R(na))
		nv := w.Load(mir.R(na), 8)
		nv2 := w.Add(mir.R(nv), mir.R(share))
		w.Store(mir.R(na), mir.R(nv2), 8)
		w.Unlock(mir.R(na))
	})
	// Update the global running total.
	if bug == BugRace {
		gv := w.Load(mir.R(total), 8)
		gv2 := w.Add(mir.R(gv), mir.R(share))
		w.Store(mir.R(total), mir.R(gv2), 8)
	} else {
		w.Lock(mir.R(lock))
		gv := w.Load(mir.R(total), 8)
		gv2 := w.Add(mir.R(gv), mir.R(share))
		w.Store(mir.R(total), mir.R(gv2), 8)
		w.Unlock(mir.R(lock))
	}
	w.Br(loop)
	w.SetBlock(exit)
	w.Ret()

	b := p.NewFunc("main", 0)
	energyM := b.Call("malloc", mir.C(patches*8))
	initArraySeq(b, energyM, patches, 997, 64)
	queueM := b.Call("calloc", mir.C(1), mir.C(8))
	totalM := b.Call("calloc", mir.C(1), mir.C(8))
	lockM := b.Call("malloc", mir.C(8))
	spawnJoinWorkers(b, "radWorker", nWorkers, mir.R(energyM), mir.R(queueM), mir.R(totalM), mir.R(lockM), mir.C(patches))
	t := b.Load(mir.R(totalM), 8)
	b.CallVoid("print_i64", mir.R(t))
	emitChecksumAndFree(b, energyM, patches, energyM, queueM, totalM, lockM)
	return p
}
