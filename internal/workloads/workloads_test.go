package workloads

import (
	"testing"

	"repro/internal/mir"
	"repro/internal/vm"
)

func runTiny(t *testing.T, name string, bug Bug) *vm.Result {
	t.Helper()
	p, err := BuildBug(name, SizeTiny, bug)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	m, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatalf("link %s: %v", name, err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runTiny(t, name, BugNone)
			if res.Exit != 0 {
				t.Fatalf("%s exited %d", name, res.Exit)
			}
			if res.Steps == 0 {
				t.Fatalf("%s retired no instructions", name)
			}
			spec, _ := Get(name)
			if spec.Threads > 0 && res.Threads < spec.Threads {
				t.Fatalf("%s spawned %d threads, want >= %d", name, res.Threads, spec.Threads)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"fft", "memcached", "radiosity", "bzip2"} {
		a := runTiny(t, name, BugNone)
		b := runTiny(t, name, BugNone)
		if a.Steps != b.Steps {
			t.Errorf("%s: steps differ across runs: %d vs %d", name, a.Steps, b.Steps)
		}
	}
}

func TestBugVariantsRun(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		for _, bug := range spec.Bugs {
			res := runTiny(t, name, bug)
			if res.Steps == 0 {
				t.Errorf("%s/%s retired no instructions", name, bug)
			}
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Build("nope", SizeTiny); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if _, err := BuildBug("fft", SizeTiny, BugSSLLeak); err == nil {
		t.Fatal("expected error for unsupported bug")
	}
}

func TestSuites(t *testing.T) {
	if got := len(Suite("specint")); got != 9 {
		t.Errorf("specint suite has %d entries, want 9", got)
	}
	if got := len(Suite("splash2")); got != 12 {
		t.Errorf("splash2 suite has %d entries, want 12", got)
	}
	if got := len(Suite("realworld")); got != 4 {
		t.Errorf("realworld suite has %d entries, want 4", got)
	}
}

// Every workload program must round-trip through the MIR text format:
// print -> parse -> print identically and still verify. This pins the
// printer and parser against the full instruction vocabulary the
// generators use.
func TestWorkloadsRoundTripMIRText(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := MustBuild(name, SizeTiny)
			text1 := p.String()
			q, err := mir.ParseText(text1)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if text2 := q.String(); text2 != text1 {
				t.Fatal("round trip diverged")
			}
			if err := q.Verify(); err != nil {
				t.Fatalf("verify after round trip: %v", err)
			}
		})
	}
}

// The MIR optimizer must preserve every workload's observable behavior
// (exit value) while strictly reducing executed instructions.
func TestOptimizerPreservesWorkloadBehavior(t *testing.T) {
	for _, name := range []string{"bzip2", "gobmk", "mcf", "fft", "radiosity", "memcached", "ffmpeg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			plain := MustBuild(name, SizeTiny)
			opt := MustBuild(name, SizeTiny)
			removed := mir.Optimize(opt)
			if err := opt.Verify(); err != nil {
				t.Fatalf("optimized program invalid: %v", err)
			}
			r1 := runProg(t, plain)
			r2 := runProg(t, opt)
			if r1.Exit != r2.Exit {
				t.Fatalf("exit changed: %d vs %d", r1.Exit, r2.Exit)
			}
			if removed > 0 && r2.Steps >= r1.Steps {
				t.Fatalf("optimizer removed %d instrs but steps did not drop (%d vs %d)",
					removed, r1.Steps, r2.Steps)
			}
		})
	}
}

func runProg(t *testing.T, p *mir.Program) *vm.Result {
	t.Helper()
	m, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}
