package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestMintTraceIDDeterministicAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for seq := uint64(0); seq < 10000; seq++ {
		id := MintTraceID(seq)
		if !strings.HasPrefix(id, "t-") || len(id) != 18 {
			t.Fatalf("malformed trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q at seq %d", id, seq)
		}
		seen[id] = true
		if id != MintTraceID(seq) {
			t.Fatalf("MintTraceID(%d) unstable", seq)
		}
	}
}

func TestSpanStoreStructureDeterministicAcrossOrder(t *testing.T) {
	build := func(order []int) []TraceExport {
		s := NewSpanStore(100)
		for _, i := range order {
			tid := MintTraceID(uint64(i))
			s.Append(tid, "accepted", 0, int64(i)*3)
			s.Append(tid, "executed", uint64(100+i), int64(i)*7)
			s.Append(tid, "done", 0, 1)
		}
		return s.Snapshot(false)
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{4, 2, 0, 3, 1})
	ja, _ := jsonMarshal(a)
	jb, _ := jsonMarshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("span structure depends on insertion order:\n%s\n---\n%s", ja, jb)
	}
	// Volatile snapshot must carry the wall times.
	s := NewSpanStore(10)
	s.Append("t-x", "accepted", 0, 42)
	vol := s.Snapshot(true)
	if vol[0].Stages[0].WallUS != 42 {
		t.Fatalf("volatile snapshot dropped wall time: %+v", vol)
	}
	det := s.Snapshot(false)
	if det[0].Stages[0].WallUS != 0 {
		t.Fatalf("deterministic snapshot leaked wall time: %+v", det)
	}
}

func jsonMarshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	_, err := fmt.Fprintf(&buf, "%+v", v)
	return buf.Bytes(), err
}

func TestSpanStoreBounded(t *testing.T) {
	s := NewSpanStore(8)
	for i := 0; i < 1000; i++ {
		tid := MintTraceID(uint64(i))
		s.Append(tid, "accepted", 0, 0)
		s.Append(tid, "done", 0, 0)
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("store holds %d traces, want 8", got)
	}
	// The newest traces survive; the oldest are gone.
	if s.Stages(MintTraceID(999)) == nil {
		t.Fatal("newest trace evicted")
	}
	if s.Stages(MintTraceID(0)) != nil {
		t.Fatal("oldest trace not evicted")
	}
}

func TestSpanStoreConcurrent(t *testing.T) {
	s := NewSpanStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tid := MintTraceID(uint64(g*1000 + i))
				s.Append(tid, "accepted", 0, 0)
				s.Append(tid, "done", uint64(i), 0)
				_ = s.Snapshot(false)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 64 {
		t.Fatalf("bound violated: %d traces", s.Len())
	}
}

func TestFlightRecorderRingAndDrop(t *testing.T) {
	f := NewFlightRecorder(2, 16)
	for i := 0; i < 50; i++ {
		f.Record(0, FlightEvent{Stage: "executed", Detail: fmt.Sprintf("job%d", i)})
	}
	f.Record(1, FlightEvent{Stage: "accepted"})
	f.Record(f.ControlShard(), FlightEvent{Stage: "recovery"})
	f.Record(99, FlightEvent{Stage: "overflowed-shard"}) // folds into control

	snap := f.Snapshot("test")
	if len(snap.Shards) != 3 {
		t.Fatalf("want 3 rings (2 workers + control), got %d", len(snap.Shards))
	}
	s0 := snap.Shards[0]
	if s0.Total != 50 || s0.Dropped != 34 || len(s0.Events) != 16 {
		t.Fatalf("ring 0: total=%d dropped=%d events=%d", s0.Total, s0.Dropped, len(s0.Events))
	}
	// Oldest-to-newest order, and the newest event is job49.
	if s0.Events[0].Detail != "job34" || s0.Events[15].Detail != "job49" {
		t.Fatalf("ring order wrong: first=%q last=%q", s0.Events[0].Detail, s0.Events[15].Detail)
	}
	for i := 1; i < len(s0.Events); i++ {
		if s0.Events[i].Seq != s0.Events[i-1].Seq+1 {
			t.Fatal("ring seq not monotone")
		}
	}
	ctl := snap.Shards[f.ControlShard()]
	if len(ctl.Events) != 2 || ctl.Events[1].Stage != "overflowed-shard" {
		t.Fatalf("control ring wrong: %+v", ctl.Events)
	}
}

func TestFlightRecorderSnapshotToFile(t *testing.T) {
	f := NewFlightRecorder(1, 16)
	f.Record(0, FlightEvent{Trace: "t-1", Stage: "done"})
	path := t.TempDir() + "/flight.json"
	if err := f.SnapshotToFile(path, "unit"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf, "unit"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"reason": "unit"`) || !strings.Contains(buf.String(), `"t-1"`) {
		t.Fatalf("snapshot content wrong:\n%s", buf.String())
	}
}

func TestFlightRecordZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(1, 64)
	ev := FlightEvent{Trace: "t-0000000000000000", Stage: "executed", Virtual: 123}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(0, ev)
	})
	if allocs != 0 {
		t.Fatalf("FlightRecorder.Record allocates %v times per call, want 0", allocs)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(4, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(g%5, FlightEvent{Stage: "executed", Virtual: uint64(i)})
			}
			_ = f.Snapshot("race")
		}(g)
	}
	wg.Wait()
}
