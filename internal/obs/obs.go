// Package obs is the runtime observability layer: a metrics registry
// of counters and histograms fed by the VM dispatch loop, the metadata
// containers, the compiler and the benchmark harness, plus a Chrome
// trace_event emitter (trace.go).
//
// Two collection disciplines keep the hot path honest:
//
//   - The VM and the containers count unconditionally into plain struct
//     fields (no branches, no atomics, no allocation — a Machine and a
//     Container are single-goroutine by construction). Those fields are
//     flattened into a Shard once, after the run.
//   - Anything that reads the wall clock or writes bytes (per-hook
//     timing, trace spans) hides behind a nil-guarded pointer or flag,
//     so the disabled path stays allocation-free — the
//     testing.AllocsPerRun proofs in internal/perf pin this.
//
// Counters are split into a deterministic section and a volatile one.
// Deterministic counters are pure functions of (program, analysis,
// seed): opcode counts, hook dispatches, container traffic. Under the
// harness's -virtual mode their merged JSON export is byte-identical
// across serial, parallel and resumed sweeps, so it can be
// golden-pinned. Volatile counters (nanosecond timings, retry counts,
// cache hit totals subject to process-level memoization) are exported
// separately and never pinned.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"strings"
	"sync"
)

// Shard accumulates one run's (or one harness cell's) counters before
// they are merged into a Registry. A Shard is single-goroutine — each
// cell owns its own — which is what makes the merged totals
// order-independent: merging is commutative addition, so serial and
// parallel sweeps produce identical registries.
type Shard struct {
	Counts   map[string]uint64
	Volatile map[string]uint64
}

// NewShard returns an empty shard.
func NewShard() *Shard {
	return &Shard{Counts: map[string]uint64{}, Volatile: map[string]uint64{}}
}

// Add increments a deterministic counter.
func (s *Shard) Add(name string, v uint64) { s.Counts[name] += v }

// AddVolatile increments a volatile (timing-like) counter.
func (s *Shard) AddVolatile(name string, v uint64) { s.Volatile[name] += v }

// Reset clears the shard for a retry attempt, so a cell that fails and
// re-runs contributes exactly one attempt's counters. Nil-safe.
func (s *Shard) Reset() {
	if s == nil {
		return
	}
	clear(s.Counts)
	clear(s.Volatile)
}

// hist is a power-of-two-bucket histogram: bucket i counts values v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds
// zeros). Coarse, allocation-free, and deterministic for deterministic
// inputs.
type hist struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
}

// Registry is the merge target for shards plus a home for
// harness-level counters and histograms. Safe for concurrent use.
//
// Beyond the PR-5 deterministic/volatile counter split, a registry
// holds three live-serving families: gauges (point-in-time levels such
// as queue depth — always volatile by nature), volatile histograms
// (wall-clock latency distributions), and the original deterministic
// histograms. The deterministic export (includeVolatile false) never
// contains gauges or volatile histograms, which is what keeps the
// golden-pinned -virtual exports stable.
type Registry struct {
	mu       sync.Mutex
	counts   map[string]uint64
	volatile map[string]uint64
	gauges   map[string]int64
	hists    map[string]*hist
	vhists   map[string]*hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts:   map[string]uint64{},
		volatile: map[string]uint64{},
		gauges:   map[string]int64{},
		hists:    map[string]*hist{},
		vhists:   map[string]*hist{},
	}
}

// Add increments a deterministic counter.
func (r *Registry) Add(name string, v uint64) {
	r.mu.Lock()
	r.counts[name] += v
	r.mu.Unlock()
}

// AddVolatile increments a volatile counter.
func (r *Registry) AddVolatile(name string, v uint64) {
	r.mu.Lock()
	r.volatile[name] += v
	r.mu.Unlock()
}

// Observe records a value into a deterministic histogram.
func (r *Registry) Observe(name string, v uint64) {
	r.mu.Lock()
	observeLocked(r.hists, name, v)
	r.mu.Unlock()
}

// ObserveVolatile records a value into a volatile histogram — the home
// for wall-clock latencies, which must never leak into the
// deterministic export.
func (r *Registry) ObserveVolatile(name string, v uint64) {
	r.mu.Lock()
	observeLocked(r.vhists, name, v)
	r.mu.Unlock()
}

func observeLocked(m map[string]*hist, name string, v uint64) {
	h := m[name]
	if h == nil {
		h = &hist{}
		m[name] = h
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
}

// SetGauge records a point-in-time level (queue depth, in-flight jobs).
// Gauges are volatile: they appear only in the includeVolatile export.
func (r *Registry) SetGauge(name string, v int64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge returns a gauge's current value.
func (r *Registry) Gauge(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// ClearGauges drops every gauge whose name starts with prefix — the
// scrape-time reset for label-like gauge families (per-tenant in-flight)
// whose members come and go.
func (r *Registry) ClearGauges(prefix string) {
	r.mu.Lock()
	for k := range r.gauges {
		if strings.HasPrefix(k, prefix) {
			delete(r.gauges, k)
		}
	}
	r.mu.Unlock()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of a histogram by
// linear interpolation inside its power-of-two bucket. Checks the
// deterministic histograms first, then the volatile ones. The second
// return is false when the histogram does not exist or is empty.
func (r *Registry) Quantile(name string, q float64) (float64, bool) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = r.vhists[name]
	}
	r.mu.Unlock()
	if h == nil || h.count == 0 {
		return 0, false
	}
	return h.quantile(q), true
}

// quantile is the nearest-rank estimate with linear interpolation
// within the winning bucket's [2^(i-1), 2^i) value range.
func (h *hist) quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := bucketBounds(i)
			if next == cum {
				return lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(64)
	return hi
}

// bucketBounds returns bucket i's value range [lo, hi): bucket 0 holds
// zeros, bucket i>0 holds 2^(i-1) <= v < 2^i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	lo = float64(uint64(1) << (i - 1))
	if i >= 64 {
		return lo, 2 * lo
	}
	return lo, float64(uint64(1) << i)
}

// MergeShard folds a completed shard into the registry.
func (r *Registry) MergeShard(s *Shard) {
	if s == nil {
		return
	}
	r.mu.Lock()
	for k, v := range s.Counts {
		r.counts[k] += v
	}
	for k, v := range s.Volatile {
		r.volatile[k] += v
	}
	r.mu.Unlock()
}

// MergeCounts folds a checkpointed deterministic-counter map into the
// registry — the resume path's replacement for re-running the cell.
func (r *Registry) MergeCounts(m map[string]uint64) {
	r.mu.Lock()
	for k, v := range m {
		r.counts[k] += v
	}
	r.mu.Unlock()
}

// Counter returns a deterministic counter's current value.
func (r *Registry) Counter(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// HistExport is a histogram's JSON shape. Bucket keys are "le_2^NN"
// with a fixed-width exponent so lexicographic key order (what
// encoding/json emits for maps) is numeric order.
type HistExport struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

// Export is the registry's JSON shape. encoding/json sorts map keys,
// so marshaling an Export is deterministic for deterministic contents.
// Gauges and volatile histograms only appear in the includeVolatile
// export, so pre-existing deterministic goldens are byte-stable.
type Export struct {
	Counters           map[string]uint64     `json:"counters"`
	Histograms         map[string]HistExport `json:"histograms,omitempty"`
	Volatile           map[string]uint64     `json:"volatile,omitempty"`
	Gauges             map[string]int64      `json:"gauges,omitempty"`
	VolatileHistograms map[string]HistExport `json:"volatile_histograms,omitempty"`
}

// bucketLabel renders bucket index i (0..64) as its upper-bound label.
func bucketLabel(i int) string {
	return "le_2^" + string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
}

// Export snapshots the registry. With includeVolatile false only the
// deterministic counters and histograms are present — the form the
// golden tests pin.
func (r *Registry) Export(includeVolatile bool) Export {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := Export{Counters: make(map[string]uint64, len(r.counts))}
	for k, v := range r.counts {
		e.Counters[k] = v
	}
	if len(r.hists) > 0 {
		e.Histograms = make(map[string]HistExport, len(r.hists))
		for k, h := range r.hists {
			e.Histograms[k] = h.export()
		}
	}
	if includeVolatile && len(r.volatile) > 0 {
		e.Volatile = make(map[string]uint64, len(r.volatile))
		for k, v := range r.volatile {
			e.Volatile[k] = v
		}
	}
	if includeVolatile && len(r.gauges) > 0 {
		e.Gauges = make(map[string]int64, len(r.gauges))
		for k, v := range r.gauges {
			e.Gauges[k] = v
		}
	}
	if includeVolatile && len(r.vhists) > 0 {
		e.VolatileHistograms = make(map[string]HistExport, len(r.vhists))
		for k, h := range r.vhists {
			e.VolatileHistograms[k] = h.export()
		}
	}
	return e
}

func (h *hist) export() HistExport {
	he := HistExport{Count: h.count, Sum: h.sum, Buckets: map[string]uint64{}}
	for i, c := range h.buckets {
		if c != 0 {
			he.Buckets[bucketLabel(i)] = c
		}
	}
	return he
}

// WriteJSON writes the registry as indented JSON with sorted keys —
// byte-identical for identical deterministic contents when
// includeVolatile is false.
func (r *Registry) WriteJSON(w io.Writer, includeVolatile bool) error {
	b, err := json.MarshalIndent(r.Export(includeVolatile), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
