package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryMergeOrderIndependent pins the property the harness
// depends on: merging the same shards in any order, from any number of
// goroutines, yields the same deterministic export.
func TestRegistryMergeOrderIndependent(t *testing.T) {
	mkShards := func() []*Shard {
		var out []*Shard
		for i := 0; i < 8; i++ {
			s := NewShard()
			s.Add("vm.steps", uint64(100*i+1))
			s.Add("vm.hook.onLoad.calls", uint64(i))
			s.AddVolatile("vm.hook.onLoad.ns", uint64(1000*i))
			out = append(out, s)
		}
		return out
	}
	export := func(shards []*Shard, parallel bool) string {
		r := NewRegistry()
		if parallel {
			var wg sync.WaitGroup
			for _, s := range shards {
				wg.Add(1)
				go func(s *Shard) { defer wg.Done(); r.MergeShard(s) }(s)
			}
			wg.Wait()
		} else {
			for i := len(shards) - 1; i >= 0; i-- {
				r.MergeShard(shards[i])
			}
		}
		var b bytes.Buffer
		if err := r.WriteJSON(&b, false); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := export(mkShards(), false)
	par := export(mkShards(), true)
	if serial != par {
		t.Fatalf("merge order changed deterministic export:\n%s\nvs\n%s", serial, par)
	}
	if !strings.Contains(serial, "\"vm.steps\": 2808") {
		t.Fatalf("unexpected merged total:\n%s", serial)
	}
	if strings.Contains(serial, "ns") {
		t.Fatalf("volatile counter leaked into deterministic export:\n%s", serial)
	}
}

func TestShardReset(t *testing.T) {
	s := NewShard()
	s.Add("a", 3)
	s.AddVolatile("b", 4)
	s.Reset()
	if len(s.Counts) != 0 || len(s.Volatile) != 0 {
		t.Fatalf("reset left counters: %v %v", s.Counts, s.Volatile)
	}
	var nilShard *Shard
	nilShard.Reset() // must not panic
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	for _, v := range []uint64{0, 1, 2, 3, 1024} {
		r.Observe("h", v)
	}
	e := r.Export(false)
	h, ok := e.Histograms["h"]
	if !ok {
		t.Fatal("histogram missing from export")
	}
	if h.Count != 5 || h.Sum != 1030 {
		t.Fatalf("count=%d sum=%d", h.Count, h.Sum)
	}
	// 0 → bucket le_2^00, 1 → le_2^01, 2..3 → le_2^02, 1024 → le_2^11.
	want := map[string]uint64{"le_2^00": 1, "le_2^01": 1, "le_2^02": 2, "le_2^11": 1}
	for k, v := range want {
		if h.Buckets[k] != v {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", k, h.Buckets[k], v, h.Buckets)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	start := time.Now()
	tr.Span("vm", "quantum", 3, start, 42*time.Microsecond, "tid", "0", "steps", "97")
	tr.Instant("vm", "fault.malloc_null", 3)
	tr.Span("harness", `cell "quoted/odd"`, 1, start, time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, buf.String())
	}
	if n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}
	if !strings.Contains(buf.String(), `"steps":"97"`) {
		t.Fatalf("span args missing:\n%s", buf.String())
	}
}

func TestTraceCapReportsDrops(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.max = 2
	for i := 0; i < 5; i++ {
		tr.Instant("t", "e", 0)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("capped trace does not parse: %v", err)
	}
	if n != 3 { // 2 events + the dropped-count instant
		t.Fatalf("got %d events, want 3", n)
	}
	if !strings.Contains(buf.String(), `"dropped":"3"`) {
		t.Fatalf("dropped summary missing:\n%s", buf.String())
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Span("a", "b", 0, time.Now(), 0)
	tr.Instant("a", "b", 0)
}
