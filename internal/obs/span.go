package obs

// Per-job lifecycle spans for the serving tier. A trace is a job's
// identity across its whole life — minted at admission, returned to the
// client, written into the journal, preserved across crash recovery —
// and its spans are the ordered pipeline stages the job passed through
// (accepted → queued → compiled → executed → journaled → done/error).
//
// The store follows the PR-5 deterministic/volatile split: span
// *structure* (trace IDs, stage names, stage order, virtual costs) is a
// pure function of the submitted work and therefore byte-identical
// across serial, parallel and recovered runs; wall-clock stage timings
// are volatile and only appear in the includeVolatile export. The
// store is bounded: beyond Cap traces the oldest trace is evicted
// whole, so a long-lived server holds a sliding window, not a leak.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// MintTraceID derives a job's trace ID from its admission sequence
// number. The mapping is the splitmix64 finalizer — bijective on
// uint64, so distinct sequence numbers always yield distinct IDs — and
// deterministic, so a recovered job re-admitted at the same sequence
// number reclaims the same identity even from a journal predating the
// tid field.
func MintTraceID(seq uint64) string {
	z := seq ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return fmt.Sprintf("t-%016x", z)
}

// SpanStage is one pipeline stage within a trace. Wall microseconds are
// volatile; everything else is deterministic structure.
type SpanStage struct {
	Stage   string `json:"stage"`
	Virtual uint64 `json:"virtual,omitempty"`
	WallUS  int64  `json:"wall_us,omitempty"`
}

// TraceExport is one trace's exported span chain.
type TraceExport struct {
	Trace  string      `json:"trace"`
	Stages []SpanStage `json:"stages"`
}

// SpanStore is a bounded, concurrency-safe trace → stage-chain map.
type SpanStore struct {
	mu     sync.Mutex
	cap    int
	traces map[string]*traceEntry
	order  []string // insertion order for FIFO eviction
	head   int      // first live index in order
}

type traceEntry struct {
	stages []SpanStage
}

// NewSpanStore returns a store bounded to cap traces (minimum 1).
func NewSpanStore(capacity int) *SpanStore {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanStore{cap: capacity, traces: make(map[string]*traceEntry, capacity)}
}

// Append records one stage against a trace, creating the trace on
// first use and evicting the oldest trace when the bound is exceeded.
func (s *SpanStore) Append(trace, stage string, virtual uint64, wallUS int64) {
	s.mu.Lock()
	e := s.traces[trace]
	if e == nil {
		if len(s.traces) >= s.cap {
			// Evict the oldest still-live trace.
			for s.head < len(s.order) {
				old := s.order[s.head]
				s.head++
				if _, ok := s.traces[old]; ok {
					delete(s.traces, old)
					break
				}
			}
			// Compact the order slice once the dead prefix dominates.
			if s.head > len(s.order)/2 && s.head > 64 {
				s.order = append(s.order[:0], s.order[s.head:]...)
				s.head = 0
			}
		}
		e = &traceEntry{}
		s.traces[trace] = e
		s.order = append(s.order, trace)
	}
	e.stages = append(e.stages, SpanStage{Stage: stage, Virtual: virtual, WallUS: wallUS})
	s.mu.Unlock()
}

// Len reports the number of live traces.
func (s *SpanStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// Stages returns a copy of one trace's stage chain (nil if unknown).
func (s *SpanStore) Stages(trace string) []SpanStage {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.traces[trace]
	if e == nil {
		return nil
	}
	out := make([]SpanStage, len(e.stages))
	copy(out, e.stages)
	return out
}

// Snapshot exports every live trace sorted by trace ID. With
// includeVolatile false the wall-clock fields are zeroed, leaving only
// the deterministic structure — the form the determinism tests compare
// across serial and parallel runs.
func (s *SpanStore) Snapshot(includeVolatile bool) []TraceExport {
	s.mu.Lock()
	out := make([]TraceExport, 0, len(s.traces))
	for trace, e := range s.traces {
		te := TraceExport{Trace: trace, Stages: make([]SpanStage, len(e.stages))}
		copy(te.Stages, e.stages)
		if !includeVolatile {
			for i := range te.Stages {
				te.Stages[i].WallUS = 0
			}
		}
		out = append(out, te)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Trace < out[j].Trace })
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s *SpanStore) WriteJSON(w io.Writer, includeVolatile bool) error {
	b, err := json.MarshalIndent(s.Snapshot(includeVolatile), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
