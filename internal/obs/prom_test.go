package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.jobs.accepted": "serve_jobs_accepted",
		"vm.steps":            "vm_steps",
		"9lives":              "_lives",
		"a:b_c9":              "a:b_c9",
		"":                    "_",
		"weird name/slash":    "weird_name_slash",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromBasicAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Add("serve.jobs.accepted", 7)
	r.Add("serve.jobs.failed.StepLimit", 2)
	r.Add("serve.jobs.failed.Trap", 1)
	r.AddVolatile("serve.cache.hits", 5)
	r.SetGauge("serve.queue.depth.0", 3)
	r.Observe("vm.steps.per.job", 100)
	r.Observe("vm.steps.per.job", 3)
	r.ObserveVolatile("serve.latency.wall_us.submit", 1500)

	rules := []PromRule{
		{Prefix: "serve.jobs.failed.", Metric: "alda_serve_jobs_failed_total", Label: "kind"},
		{Prefix: "serve.queue.depth.", Metric: "alda_serve_queue_depth", Label: "shard"},
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf, true, rules...); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE alda_serve_jobs_failed_total counter",
		`alda_serve_jobs_failed_total{kind="StepLimit"} 2`,
		`alda_serve_jobs_failed_total{kind="Trap"} 1`,
		"# TYPE alda_serve_queue_depth gauge",
		`alda_serve_queue_depth{shard="0"} 3`,
		"serve_jobs_accepted 7",
		"serve_cache_hits 5",
		"# TYPE vm_steps_per_job histogram",
		`vm_steps_per_job_bucket{le="+Inf"} 2`,
		"vm_steps_per_job_sum 103",
		"vm_steps_per_job_count 2",
		"# TYPE serve_latency_wall_us_submit histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	n, err := ValidatePromText(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidatePromText: %v\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("no samples parsed")
	}
}

func TestWritePromDeterministicExcludesVolatile(t *testing.T) {
	r := NewRegistry()
	r.Add("det.counter", 1)
	r.AddVolatile("vol.counter", 9)
	r.SetGauge("some.gauge", 4)
	r.ObserveVolatile("vol.hist", 10)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "det_counter 1") {
		t.Errorf("deterministic counter missing:\n%s", out)
	}
	for _, banned := range []string{"vol_counter", "some_gauge", "vol_hist"} {
		if strings.Contains(out, banned) {
			t.Errorf("volatile item %q leaked into deterministic exposition:\n%s", banned, out)
		}
	}
}

func TestWritePromByteStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insert in different orders; output must be identical.
		keys := []string{"b.two", "a.one", "c.three.X", "c.three.Y"}
		for _, k := range keys {
			r.Add(k, uint64(len(k)))
		}
		r.Observe("h.one", 5)
		r.Observe("h.one", 700)
		return r
	}
	rules := []PromRule{{Prefix: "c.three.", Metric: "c_three_total", Label: "kind"}}
	var b1, b2 bytes.Buffer
	if err := build().WriteProm(&b1, false, rules...); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteProm(&b2, false, rules...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("exposition not byte-stable:\n%s\n---\n%s", b1.String(), b2.String())
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	// values 0 (bucket 0), 1 (bucket 1), 3 (bucket 2), 1000 (bucket 10)
	for _, v := range []uint64{0, 1, 3, 1000} {
		r.Observe("h", v)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="0"} 1`,
		`h_bucket{le="1"} 2`,
		`h_bucket{le="3"} 3`,
		`h_bucket{le="1023"} 4`,
		`h_bucket{le="+Inf"} 4`,
		"h_sum 1004",
		"h_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := ValidatePromText(buf.Bytes()); err != nil {
		t.Fatalf("validator rejected own output: %v", err)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Add(`kinds.a"b\c`, 1)
	var buf bytes.Buffer
	rules := []PromRule{{Prefix: "kinds.", Metric: "kinds_total", Label: "kind"}}
	if err := r.WriteProm(&buf, false, rules...); err != nil {
		t.Fatal(err)
	}
	want := `kinds_total{kind="a\"b\\c"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("missing %q in:\n%s", want, buf.String())
	}
	if _, err := ValidatePromText(buf.Bytes()); err != nil {
		t.Fatalf("validator rejected escaped output: %v", err)
	}
}

func TestValidatePromTextRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "foo 1\n# TYPE foo counter\n",
		"duplicate TYPE":     "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"duplicate series":   "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"negative counter":   "# TYPE foo counter\nfoo -1\n",
		"bad metric name":    "# TYPE foo counter\n9oo 1\n",
		"bad value":          "# TYPE foo counter\nfoo abc\n",
		"unterminated label": "# TYPE foo counter\nfoo{a=\"x 1\n",
		"unknown type":       "# TYPE foo widget\nfoo 1\n",
		"non-contiguous family": "# TYPE foo counter\n# TYPE bar counter\n" +
			"foo 1\nbar 1\nfoo{x=\"1\"} 1\n",
		"histogram missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"histogram non-monotone": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for name, text := range cases {
		if _, err := ValidatePromText([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted invalid input:\n%s", name, text)
		}
	}
	// Sanity: a correct document passes.
	good := "# TYPE foo counter\nfoo 1\nfoo{a=\"b\"} 2\n# TYPE g gauge\ng -5\n"
	if n, err := ValidatePromText([]byte(good)); err != nil || n != 3 {
		t.Fatalf("good doc: n=%d err=%v", n, err)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.ObserveVolatile("lat", uint64(i+1)) // values 1..100
	}
	p50, ok := r.Quantile("lat", 0.5)
	if !ok {
		t.Fatal("quantile missing")
	}
	// Power-of-two buckets are coarse: p50 of 1..100 should land within
	// the [32,64) or [64,128) region.
	if p50 < 16 || p50 > 128 {
		t.Errorf("p50 = %v, want within [16,128]", p50)
	}
	p99, ok := r.Quantile("lat", 0.99)
	if !ok || p99 < p50 {
		t.Errorf("p99 = %v (ok=%v), want >= p50 %v", p99, ok, p50)
	}
	if _, ok := r.Quantile("nope", 0.5); ok {
		t.Error("quantile of missing histogram reported ok")
	}
}
