package obs

// Prometheus text exposition (format 0.0.4) for the registry, with no
// external dependency: a small writer plus a deliberately strict parser
// the tests and the CI smoke step validate scrapes with.
//
// The registry's flat dotted counter names map to Prometheus in two
// ways. By default a key is sanitized wholesale ("serve.jobs.accepted"
// → "serve_jobs_accepted"). A PromRule instead folds a whole dotted
// family into one labeled metric: the rule {"serve.jobs.failed.",
// "alda_serve_jobs_failed_total", "kind"} turns every
// "serve.jobs.failed.<Kind>" counter into a sample of
// alda_serve_jobs_failed_total{kind="<Kind>"} — which is how
// vm.RunError kinds, analysis names, tenants, shards and pipeline
// stages become labels without the hot path ever seeing a label pair.
//
// Histograms render as proper Prometheus histograms: the power-of-two
// bucket i (holding v with bits.Len64(v) == i, i.e. v <= 2^i - 1)
// becomes the cumulative bucket le="2^i - 1"; empty buckets are elided
// (cumulative counts stay valid), and the mandatory le="+Inf" bucket,
// _sum and _count close each series.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// PromRule maps a dotted-counter prefix onto one labeled metric family:
// a registry key Prefix+rest becomes a sample of Metric{Label="rest"}.
// Rules apply to counters, gauges and histograms alike; the first
// matching rule wins.
type PromRule struct {
	Prefix string
	Metric string
	Label  string
}

// PromName sanitizes s into a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*, with every illegal byte mapped to '_'.
func PromName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promSample is one rendered sample: an optional single label pair plus
// a value. Histogram families carry the full bucket array instead.
type promSample struct {
	labelKey, labelVal string
	value              uint64
	gaugeVal           int64
	isGauge            bool
	hist               *hist
}

// promFamily collects one metric family before rendering.
type promFamily struct {
	name    string
	typ     string // "counter" | "gauge" | "histogram"
	samples []promSample
}

// resolve applies the rule set to a registry key.
func resolveProm(key string, rules []PromRule) (name, labelKey, labelVal string) {
	for _, r := range rules {
		if rest, ok := strings.CutPrefix(key, r.Prefix); ok && rest != "" {
			return r.Metric, r.Label, rest
		}
	}
	return PromName(key), "", ""
}

// WriteProm writes the registry in the Prometheus text exposition
// format. With includeVolatile false only deterministic counters and
// histograms are written — under the harness's -virtual mode that
// export is byte-identical run to run and golden-pinnable, the same
// contract as WriteJSON. Output is fully sorted (families by name,
// samples by label value), so identical contents render identically.
func (r *Registry) WriteProm(w io.Writer, includeVolatile bool, rules ...PromRule) error {
	r.mu.Lock()
	fams := map[string]*promFamily{}
	addScalar := func(key, typ string, cv uint64, gv int64) {
		name, lk, lv := resolveProm(key, rules)
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		f.samples = append(f.samples, promSample{
			labelKey: lk, labelVal: lv,
			value: cv, gaugeVal: gv, isGauge: typ == "gauge",
		})
	}
	for k, v := range r.counts {
		addScalar(k, "counter", v, 0)
	}
	if includeVolatile {
		for k, v := range r.volatile {
			addScalar(k, "counter", v, 0)
		}
		for k, v := range r.gauges {
			addScalar(k, "gauge", 0, v)
		}
	}
	addHist := func(key string, h *hist) {
		name, lk, lv := resolveProm(key, rules)
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: "histogram"}
			fams[name] = f
		}
		snap := *h
		f.samples = append(f.samples, promSample{labelKey: lk, labelVal: lv, hist: &snap})
	}
	for k, h := range r.hists {
		addHist(k, h)
	}
	if includeVolatile {
		for k, h := range r.vhists {
			addHist(k, h)
		}
	}
	r.mu.Unlock()

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	var b []byte
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labelVal < f.samples[j].labelVal })
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, s := range f.samples {
			if s.hist != nil {
				b = appendPromHist(b, f.name, s)
				continue
			}
			b = append(b, f.name...)
			b = appendPromLabels(b, s.labelKey, s.labelVal, "", "")
			b = append(b, ' ')
			if s.isGauge {
				b = strconv.AppendInt(b, s.gaugeVal, 10)
			} else {
				b = strconv.AppendUint(b, s.value, 10)
			}
			b = append(b, '\n')
		}
	}
	_, err := w.Write(b)
	return err
}

// appendPromLabels renders up to two label pairs (family label + le).
func appendPromLabels(b []byte, k1, v1, k2, v2 string) []byte {
	if k1 == "" && k2 == "" {
		return b
	}
	b = append(b, '{')
	wrote := false
	if k1 != "" {
		b = append(b, k1...)
		b = append(b, `="`...)
		b = append(b, promEscape(v1)...)
		b = append(b, '"')
		wrote = true
	}
	if k2 != "" {
		if wrote {
			b = append(b, ',')
		}
		b = append(b, k2...)
		b = append(b, `="`...)
		b = append(b, promEscape(v2)...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return b
}

// bucketLE renders bucket i's inclusive upper bound (2^i - 1).
func bucketLE(i int) string {
	if i >= 64 {
		return "18446744073709551615"
	}
	return strconv.FormatUint(uint64(1)<<i-1, 10)
}

// appendPromHist renders one histogram series: cumulative buckets at
// the non-empty change points, the mandatory +Inf bucket, _sum, _count.
func appendPromHist(b []byte, name string, s promSample) []byte {
	h := s.hist
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendPromLabels(b, s.labelKey, s.labelVal, "le", bucketLE(i))
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_bucket"...)
	b = appendPromLabels(b, s.labelKey, s.labelVal, "le", "+Inf")
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.count, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = appendPromLabels(b, s.labelKey, s.labelVal, "", "")
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.sum, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = appendPromLabels(b, s.labelKey, s.labelVal, "", "")
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.count, 10)
	b = append(b, '\n')
	return b
}

// ---------------------------------------------------------------------
// Strict parser — the validation half of the exposition contract.

// promMetricName matches a legal metric or label name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// parsedSample is one decoded exposition line.
type parsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromSample decodes `name[{labels}] value` strictly.
func parsePromSample(line string) (parsedSample, error) {
	s := parsedSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value separator")
	}
	s.name = line[:i]
	if !validPromName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQ := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQ && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQ = !inQ
			case !inQ && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		body := rest[1:end]
		for body != "" {
			eq := strings.Index(body, "=")
			if eq < 0 {
				return s, fmt.Errorf("label without '='")
			}
			key := body[:eq]
			if !validPromName(key) {
				return s, fmt.Errorf("invalid label name %q", key)
			}
			if len(body) <= eq+1 || body[eq+1] != '"' {
				return s, fmt.Errorf("label %q value not quoted", key)
			}
			val, rem, err := scanPromQuoted(body[eq+1:])
			if err != nil {
				return s, fmt.Errorf("label %q: %v", key, err)
			}
			if _, dup := s.labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q", key)
			}
			s.labels[key] = val
			body = strings.TrimPrefix(rem, ",")
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return s, fmt.Errorf("missing value")
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		return s, fmt.Errorf("trailing garbage after value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.value = v
	if len(fields) == 2 { // optional timestamp
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// scanPromQuoted decodes a quoted, escaped label value and returns the
// remainder of the input after the closing quote.
func scanPromQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i+1])
			}
			i++
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// labelsKey canonicalizes a label set (minus le) for duplicate and
// histogram-series grouping.
func labelsKey(labels map[string]string, dropLE bool) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if dropLE && k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// histSeries accumulates one histogram label-set's samples for the
// consistency checks.
type histSeries struct {
	les      []float64
	counts   []float64
	infSeen  bool
	infVal   float64
	sumSeen  bool
	cntSeen  bool
	countVal float64
}

// ValidatePromText strictly parses a Prometheus text exposition and
// returns the number of samples. Beyond line-level syntax it enforces
// the family contract: TYPE before samples, all samples of a family
// contiguous, no duplicate series, counters non-negative, and for every
// histogram series monotone cumulative buckets sorted by le, a +Inf
// bucket, and _count equal to the +Inf bucket.
func ValidatePromText(b []byte) (int, error) {
	types := map[string]string{}
	closed := map[string]bool{} // families whose sample block has ended
	current := ""
	seen := map[string]bool{} // name + full labels → duplicate check
	hists := map[string]*histSeries{}
	n := 0

	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(name, suf); ok && types[s] == "histogram" {
				return s
			}
		}
		return name
	}

	lines := strings.Split(string(b), "\n")
	for ln, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return n, fmt.Errorf("line %d: malformed TYPE line", ln+1)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return n, fmt.Errorf("line %d: TYPE for invalid name %q", ln+1, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return n, fmt.Errorf("line %d: unknown type %q", ln+1, typ)
				}
				if _, dup := types[name]; dup {
					return n, fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				types[name] = typ
			}
			continue // HELP and comments are free-form
		}
		s, err := parsePromSample(line)
		if err != nil {
			return n, fmt.Errorf("line %d: %v", ln+1, err)
		}
		n++
		fam := base(s.name)
		typ, typed := types[fam]
		if !typed {
			return n, fmt.Errorf("line %d: sample %q precedes its TYPE line", ln+1, s.name)
		}
		if fam != current {
			if closed[fam] {
				return n, fmt.Errorf("line %d: family %q samples are not contiguous", ln+1, fam)
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		full := s.name + "|" + labelsKey(s.labels, false)
		if seen[full] {
			return n, fmt.Errorf("line %d: duplicate series %q", ln+1, line)
		}
		seen[full] = true
		if typ == "counter" && s.value < 0 {
			return n, fmt.Errorf("line %d: negative counter %q", ln+1, line)
		}
		if typ == "histogram" {
			key := fam + "|" + labelsKey(s.labels, true)
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{}
				hists[key] = hs
			}
			switch {
			case strings.HasSuffix(s.name, "_bucket"):
				le, ok := s.labels["le"]
				if !ok {
					return n, fmt.Errorf("line %d: histogram bucket without le", ln+1)
				}
				if le == "+Inf" {
					hs.infSeen = true
					hs.infVal = s.value
					break
				}
				lev, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return n, fmt.Errorf("line %d: bad le %q", ln+1, le)
				}
				hs.les = append(hs.les, lev)
				hs.counts = append(hs.counts, s.value)
			case strings.HasSuffix(s.name, "_sum"):
				hs.sumSeen = true
			case strings.HasSuffix(s.name, "_count"):
				hs.cntSeen = true
				hs.countVal = s.value
			default:
				return n, fmt.Errorf("line %d: bare sample %q for histogram family", ln+1, s.name)
			}
		}
	}
	for key, hs := range hists {
		if !hs.infSeen {
			return n, fmt.Errorf("histogram series %q missing +Inf bucket", key)
		}
		if !hs.sumSeen || !hs.cntSeen {
			return n, fmt.Errorf("histogram series %q missing _sum or _count", key)
		}
		if hs.countVal != hs.infVal {
			return n, fmt.Errorf("histogram series %q: _count %v != +Inf bucket %v", key, hs.countVal, hs.infVal)
		}
		for i := 1; i < len(hs.les); i++ {
			if hs.les[i] <= hs.les[i-1] {
				return n, fmt.Errorf("histogram series %q: le not increasing", key)
			}
			if hs.counts[i] < hs.counts[i-1] {
				return n, fmt.Errorf("histogram series %q: cumulative counts decrease", key)
			}
		}
		if len(hs.counts) > 0 && hs.infVal < hs.counts[len(hs.counts)-1] {
			return n, fmt.Errorf("histogram series %q: +Inf below last bucket", key)
		}
	}
	return n, nil
}

// ValidatePromFile is ValidatePromText over a file path.
func ValidatePromFile(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return ValidatePromText(b)
}
