package obs

// FlightRecorder is the post-mortem half of the observability layer: a
// fixed-size ring of recent span/event records per worker shard, always
// on, O(1) and allocation-free to record into. The rings are dumped on
// demand (GET /debug/flight), and snapshotted to a file automatically
// when the journal degrades, a chaos fault fires, or the process takes
// SIGQUIT — so a failed chaos/soak run leaves behind the last few
// hundred events per shard instead of nothing.

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// FlightEvent is one ring record. Seq is a per-shard monotonic
// sequence number, so a dump shows how much history the ring dropped.
type FlightEvent struct {
	Seq     uint64 `json:"seq"`
	Trace   string `json:"trace,omitempty"`
	Stage   string `json:"stage"`
	Detail  string `json:"detail,omitempty"`
	Virtual uint64 `json:"virtual,omitempty"`
	WallUS  int64  `json:"wall_us,omitempty"`
}

// flightRing is one shard's fixed ring. Each ring has its own lock so
// worker shards never contend with each other.
type flightRing struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next uint64 // total records ever written; buf index is next % len
}

// FlightRecorder holds one ring per worker shard plus one control ring
// (index Shards()) for server-level events: recovery, degradation,
// chaos faults, adapt epochs.
type FlightRecorder struct {
	rings []flightRing
	size  int
}

// FlightSnapshot is the dump shape: per-ring event lists in
// oldest-to-newest order, plus how many records each ring dropped.
type FlightSnapshot struct {
	TakenAt string        `json:"taken_at,omitempty"`
	Reason  string        `json:"reason,omitempty"`
	Shards  []FlightShard `json:"shards"`
}

// FlightShard is one ring's dump.
type FlightShard struct {
	Shard   int           `json:"shard"`
	Total   uint64        `json:"total"`
	Dropped uint64        `json:"dropped"`
	Events  []FlightEvent `json:"events"`
}

// NewFlightRecorder builds a recorder with shards worker rings plus one
// control ring, each holding ringSize events (minimum 16).
func NewFlightRecorder(shards, ringSize int) *FlightRecorder {
	if shards < 1 {
		shards = 1
	}
	if ringSize < 16 {
		ringSize = 16
	}
	f := &FlightRecorder{rings: make([]flightRing, shards+1), size: ringSize}
	for i := range f.rings {
		f.rings[i].buf = make([]FlightEvent, ringSize)
	}
	return f
}

// ControlShard is the ring index for server-level (non-worker) events.
func (f *FlightRecorder) ControlShard() int { return len(f.rings) - 1 }

// Record appends one event to a shard's ring — O(1), no allocation
// beyond the strings the caller already holds. Out-of-range shards are
// folded into the control ring rather than dropped.
func (f *FlightRecorder) Record(shard int, ev FlightEvent) {
	if f == nil {
		return
	}
	if shard < 0 || shard >= len(f.rings) {
		shard = f.ControlShard()
	}
	r := &f.rings[shard]
	r.mu.Lock()
	ev.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// Snapshot copies every ring in oldest-to-newest order.
func (f *FlightRecorder) Snapshot(reason string) FlightSnapshot {
	snap := FlightSnapshot{
		TakenAt: time.Now().UTC().Format(time.RFC3339Nano),
		Reason:  reason,
		Shards:  make([]FlightShard, len(f.rings)),
	}
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		total := r.next
		n := total
		if n > uint64(len(r.buf)) {
			n = uint64(len(r.buf))
		}
		events := make([]FlightEvent, 0, n)
		start := total - n
		for s := start; s < total; s++ {
			events = append(events, r.buf[s%uint64(len(r.buf))])
		}
		r.mu.Unlock()
		snap.Shards[i] = FlightShard{Shard: i, Total: total, Dropped: start, Events: events}
	}
	return snap
}

// WriteSnapshot writes a snapshot as indented JSON.
func (f *FlightRecorder) WriteSnapshot(w io.Writer, reason string) error {
	b, err := json.MarshalIndent(f.Snapshot(reason), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SnapshotToFile dumps the rings to path (atomically via a temp file in
// the same directory, so a crash mid-dump never leaves a torn file).
func (f *FlightRecorder) SnapshotToFile(path, reason string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".flight-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := f.WriteSnapshot(tmp, reason); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// dirOf is filepath.Dir without pulling the import for one call site.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}
