package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Trace emits Chrome trace_event JSON — a JSON array of event objects,
// one per line, loadable in chrome://tracing or Perfetto. Spans are
// "X" (complete) events with microsecond ts/dur relative to the trace
// start; instants are thread-scoped "i" events. Safe for concurrent
// use; the event line is built in a reused buffer under the lock, so a
// span costs O(1) amortized allocation on the emitting path.
//
// Traces are bounded: past MaxEvents further events are counted, not
// written, and Close appends a trace.dropped instant carrying the
// count — a truncated trace says so instead of looking complete.
type Trace struct {
	mu      sync.Mutex
	w       *bufio.Writer
	f       *os.File // owned file when created via CreateTrace
	start   time.Time
	n       int
	max     int
	dropped uint64
	buf     []byte
	err     error
	closed  bool
}

// DefaultMaxEvents bounds a trace's event count (~150 MB of JSON at
// typical span sizes).
const DefaultMaxEvents = 1 << 20

// NewTrace starts a trace writing to w.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{w: bufio.NewWriterSize(w, 1<<16), start: time.Now(), max: DefaultMaxEvents}
	_, t.err = t.w.WriteString("[")
	return t
}

// CreateTrace starts a trace writing to a new file at path.
func CreateTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTrace(f)
	t.f = f
	return t, nil
}

// micros renders d as microseconds with fractional part.
func (t *Trace) appendMicros(d time.Duration) {
	t.buf = strconv.AppendFloat(t.buf, float64(d.Nanoseconds())/1e3, 'f', 3, 64)
}

// event writes one line. kv pairs land under "args" as quoted strings.
func (t *Trace) event(ph byte, cat, name string, tid int64, start time.Time, dur time.Duration, kv []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	if t.n >= t.max {
		t.dropped++
		return
	}
	t.writeEventLocked(ph, cat, name, tid, start, dur, kv)
}

func (t *Trace) writeEventLocked(ph byte, cat, name string, tid int64, start time.Time, dur time.Duration, kv []string) {
	b := t.buf[:0]
	if t.n > 0 {
		b = append(b, ',')
	}
	b = append(b, "\n{\"ph\":\""...)
	b = append(b, ph)
	b = append(b, "\",\"pid\":1,\"tid\":"...)
	b = strconv.AppendInt(b, tid, 10)
	b = append(b, ",\"ts\":"...)
	t.buf = b
	ts := start.Sub(t.start)
	if ts < 0 {
		ts = 0
	}
	t.appendMicros(ts)
	b = t.buf
	if ph == 'X' {
		b = append(b, ",\"dur\":"...)
		t.buf = b
		t.appendMicros(dur)
		b = t.buf
	}
	if ph == 'i' {
		b = append(b, ",\"s\":\"t\""...)
	}
	b = append(b, ",\"cat\":"...)
	b = strconv.AppendQuote(b, cat)
	b = append(b, ",\"name\":"...)
	b = strconv.AppendQuote(b, name)
	if len(kv) >= 2 {
		b = append(b, ",\"args\":{"...)
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, kv[i])
			b = append(b, ':')
			b = strconv.AppendQuote(b, kv[i+1])
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	t.buf = b
	_, err := t.w.Write(b)
	if err != nil {
		t.err = err
		return
	}
	t.n++
}

// Span emits a complete ("X") event covering [start, start+dur].
func (t *Trace) Span(cat, name string, tid int64, start time.Time, dur time.Duration, kv ...string) {
	if t == nil {
		return
	}
	t.event('X', cat, name, tid, start, dur, kv)
}

// Instant emits a thread-scoped instant ("i") event at now.
func (t *Trace) Instant(cat, name string, tid int64, kv ...string) {
	if t == nil {
		return
	}
	t.event('i', cat, name, tid, time.Now(), 0, kv)
}

// Events returns the number of events written so far.
func (t *Trace) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close terminates the JSON array (appending a trace.dropped instant
// first if the event cap was hit) and flushes/closes the destination.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.dropped > 0 && t.err == nil {
		t.writeEventLocked('i', "trace", "trace.dropped", 0, time.Now(), 0,
			[]string{"dropped", strconv.FormatUint(t.dropped, 10)})
	}
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]\n")
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.f != nil {
		if err := t.f.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// ValidateTrace parses a trace produced by Close and returns its event
// count — the self-check behind aldabench -trace and the CI smoke step.
func ValidateTrace(r io.Reader) (int, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		return 0, fmt.Errorf("obs: trace is not a JSON event array: %w", err)
	}
	for i, e := range events {
		if _, ok := e["ph"].(string); !ok {
			return 0, fmt.Errorf("obs: trace event %d has no ph field", i)
		}
	}
	return len(events), nil
}

// ValidateTraceFile is ValidateTrace over a file path.
func ValidateTraceFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ValidateTrace(f)
}
