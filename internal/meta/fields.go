package meta

// Bit-packed scalar fields within entry word slices. The compiler's
// metadata-layout phase assigns each scalar member of a coalesced group a
// (bit offset, bit width) within the entry; these helpers implement the
// loads and stores. Fields never straddle a word boundary — the layout
// phase pads to the next word when a field would — so each access is a
// single shift/mask.

// LoadField reads a width-bit unsigned field at bit offset off.
func LoadField(words []uint64, off, width uint) uint64 {
	w := words[off>>6]
	w >>= off & 63
	if width >= 64 {
		return w
	}
	return w & ((uint64(1) << width) - 1)
}

// StoreField writes the low width bits of v at bit offset off.
func StoreField(words []uint64, off, width uint, v uint64) {
	i := off >> 6
	sh := off & 63
	if width >= 64 {
		words[i] = v
		return
	}
	mask := ((uint64(1) << width) - 1) << sh
	words[i] = (words[i] &^ mask) | ((v << sh) & mask)
}

// SignExtend interprets the low width bits of v as a two's-complement
// value and extends it to 64 bits. Analyses store labels like -1; loads
// must observe the same value they stored regardless of field width.
func SignExtend(v uint64, width uint) uint64 {
	if width >= 64 {
		return v
	}
	sh := 64 - width
	return uint64(int64(v<<sh) >> sh)
}

// Truncate keeps the low width bits of v.
func Truncate(v uint64, width uint) uint64 {
	if width >= 64 {
		return v
	}
	return v & ((uint64(1) << width) - 1)
}
