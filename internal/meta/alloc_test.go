package meta

import "testing"

// Zero-allocation guarantees for the steady-state container hot path:
// once a key's entry is materialized, Get (Peek+LoadField) and Set
// (Entry+StoreField) must not allocate. This is the property the
// flat-arena rewrite exists to provide — a regression here reintroduces
// per-access garbage on every instrumented memory access.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, fn); avg != 0 {
		t.Errorf("%s: %v allocs per steady-state op, want 0", name, avg)
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	tmpl := []uint64{0, 0}
	keys := make([]uint64, 512)
	x := uint64(12345)
	for i := range keys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys[i] = x % (1 << 20)
	}

	type tc struct {
		name  string
		entry func(key uint64) []uint64
		peek  func(key uint64) []uint64
	}
	am := NewArrayMap(1<<20, 2, tmpl)
	sm := NewShadowMap(1<<20, 2, tmpl)
	pt := NewPageTableMap(2, tmpl)
	hm := NewHashMap(2, tmpl)
	cases := []tc{
		{"ArrayMap", am.Entry, am.Peek},
		{"ShadowMap", sm.Entry, sm.Peek},
		{"PageTableMap", pt.Entry, pt.Peek},
		{"HashMap", hm.Entry, hm.Peek},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, k := range keys {
				c.entry(k) // materialize
			}
			i := 0
			assertZeroAllocs(t, c.name+"/set", func() {
				StoreField(c.entry(keys[i%len(keys)]), 0, 64, uint64(i))
				i++
			})
			var acc uint64
			assertZeroAllocs(t, c.name+"/get", func() {
				if e := c.peek(keys[i%len(keys)]); e != nil {
					acc += LoadField(e, 0, 64)
				}
				i++
			})
			_ = acc
		})
	}

	t.Run("HashMap2", func(t *testing.T) {
		h2 := NewHashMap2(2, tmpl)
		for i, k := range keys {
			h2.Entry(k, uint64(i%64))
		}
		i := 0
		assertZeroAllocs(t, "HashMap2/set", func() {
			StoreField(h2.Entry(keys[i%len(keys)], uint64(i%64)), 0, 64, uint64(i))
			i++
		})
		var acc uint64
		assertZeroAllocs(t, "HashMap2/get", func() {
			if e := h2.Peek(keys[i%len(keys)], uint64(i%64)); e != nil {
				acc += LoadField(e, 0, 64)
			}
			i++
		})
		_ = acc
	})
}
