package meta

// Container is the uniform interface over the four map structures the
// compiler selects among. Keys are pre-normalized by the caller: for
// address-keyed maps the key is the granule index (address >> granule
// shift); for small-domain maps it is the raw value.
//
// Entry returns the value words for a key, materializing the entry from
// the group's init template if needed. Peek returns nil instead of
// materializing. Fill and RangeOr are the range operations behind ALDA's
// map.set(k, v, n) and map.get(k, n) builtins, specialized per container
// so offset shadow memory gets its fast path.
type Container interface {
	Entry(key uint64) []uint64
	Peek(key uint64) []uint64
	Fill(key, n uint64, off, width uint, v uint64)
	RangeOr(key, n uint64, off, width uint) uint64
	Remove(key uint64)
	ForEach(fn func(key uint64, entry []uint64))
	// Lookups returns the number of Entry/Peek/Fill/RangeOr calls served,
	// for the aldaexplain tool and tests.
	Lookups() uint64
	// Bytes returns the container's current metadata storage in bytes
	// (backing arrays, materialized chunks/pages, hash entries) — the
	// quantity behind the paper's §6.2 memory-footprint comparison.
	Bytes() uint64
	// Stats returns the container's operation counters (obs layer).
	Stats() Stats
}

// Stats are per-container operation counters, the source of the obs
// layer's meta.* metrics. They are plain field increments on paths the
// container already executes — allocation-free, always on, and
// deterministic for a deterministic access sequence. Nested calls
// count at every level (ArrayMap.Fill calls Entry per key, so a Fill
// over n keys also adds n to Entries), matching Lookups' accounting.
type Stats struct {
	Entries     uint64 // Entry calls (get-or-materialize)
	Peeks       uint64 // Peek calls (presence-preserving reads)
	Fills       uint64 // Fill calls (range/field stores)
	Ranges      uint64 // RangeOr calls (range/field reads)
	Removes     uint64 // Remove calls
	Iters       uint64 // ForEach traversals
	Rehashes    uint64 // hash-arena growths that moved live entries
	CacheHits   uint64 // last-chunk/last-page inline-cache hits
	CacheMisses uint64 // inline-cache misses (directory walks)
}

// Gets sums read-side traffic.
func (s Stats) Gets() uint64 { return s.Entries + s.Peeks + s.Ranges }

// Sets sums write-side traffic.
func (s Stats) Sets() uint64 { return s.Fills + s.Removes }

// lookups is the legacy Lookups() value — one per Entry/Peek/Fill/
// RangeOr call. Every such call increments exactly one of these four
// counters, so Lookups is derived rather than maintained as a fifth
// field: the hot paths pay one increment, not two.
func (s Stats) lookups() uint64 { return s.Entries + s.Peeks + s.Fills + s.Ranges }

func templateIsZero(t []uint64) bool {
	for _, w := range t {
		if w != 0 {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// ArrayMap — direct-indexed storage for small bounded key domains
// ("ALDAcc prefers an array for maps of limited domain size", §5.3).

// ArrayMap stores domain × entryWords words contiguously and indexes
// directly. Keys are taken modulo the domain for memory safety; bounded
// domains are a language-level contract (§3.1.2) that sema enforces when
// it can.
type ArrayMap struct {
	words    []uint64
	ew       int
	domain   uint64
	touched  []bool
	template []uint64
	stats    Stats // cold relative to the fields above; keep it last
}

// NewArrayMap returns an ArrayMap over a bounded key domain with entries
// initialized from template (nil ⇒ zero).
func NewArrayMap(domain int64, entryWords int, template []uint64) *ArrayMap {
	m := &ArrayMap{
		words:    make([]uint64, int(domain)*entryWords),
		ew:       entryWords,
		domain:   uint64(domain),
		touched:  make([]bool, domain),
		template: template,
	}
	if template != nil && !templateIsZero(template) {
		for k := int64(0); k < domain; k++ {
			copy(m.words[int(k)*entryWords:], template)
		}
	}
	return m
}

func (m *ArrayMap) slot(key uint64) int { return int(key%m.domain) * m.ew }

// Entry returns the entry words for key.
func (m *ArrayMap) Entry(key uint64) []uint64 {
	m.stats.Entries++
	i := m.slot(key)
	m.touched[key%m.domain] = true
	return m.words[i : i+m.ew : i+m.ew]
}

// Peek returns the entry words without marking the key live.
func (m *ArrayMap) Peek(key uint64) []uint64 {
	m.stats.Peeks++
	if !m.touched[key%m.domain] {
		return nil
	}
	i := m.slot(key)
	return m.words[i : i+m.ew : i+m.ew]
}

// Fill sets the field on n consecutive keys starting at key.
func (m *ArrayMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.stats.Fills++
	for i := uint64(0); i < n; i++ {
		e := m.Entry(key + i)
		StoreField(e, off, width, v)
	}
}

// RangeOr ORs the field over n consecutive keys starting at key.
func (m *ArrayMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.stats.Ranges++
	var acc uint64
	for i := uint64(0); i < n; i++ {
		acc |= LoadField(m.Entry(key+i), off, width)
	}
	return acc
}

// Remove resets the entry to the template.
func (m *ArrayMap) Remove(key uint64) {
	m.stats.Removes++
	i := m.slot(key)
	e := m.words[i : i+m.ew]
	if m.template != nil {
		copy(e, m.template)
	} else {
		for j := range e {
			e[j] = 0
		}
	}
	m.touched[key%m.domain] = false
}

// ForEach visits every touched entry.
func (m *ArrayMap) ForEach(fn func(key uint64, entry []uint64)) {
	m.stats.Iters++
	for k := uint64(0); k < m.domain; k++ {
		if m.touched[k] {
			i := int(k) * m.ew
			fn(k, m.words[i:i+m.ew])
		}
	}
}

// Lookups returns the lookup counter.
func (m *ArrayMap) Lookups() uint64 { return m.stats.lookups() }

// Stats returns the operation counters.
func (m *ArrayMap) Stats() Stats { return m.stats }

// Bytes returns the backing storage size.
func (m *ArrayMap) Bytes() uint64 { return uint64(len(m.words))*8 + uint64(len(m.touched)) }

// ---------------------------------------------------------------------------
// ShadowMap — offset-based shadow memory (§5.3). Chunked flat arrays with
// pure array indexing on the fast path: chunk pointer + offset, no
// hashing and no presence probes beyond a nil chunk check. Memory is
// proportional to the touched address range.

const (
	shadowChunkBits = 16 // 65536 entries per chunk
	shadowChunkSize = 1 << shadowChunkBits
	shadowChunkMask = shadowChunkSize - 1
)

// ShadowMap maps a bounded granule-index space to entries.
type ShadowMap struct {
	chunks   [][]uint64
	ew       int
	keyMask  uint64
	template []uint64
	zeroTmpl bool

	// one-entry software TLB: program accesses streak within a page, so
	// the common case skips the chunk-directory load entirely. Chunks
	// never move once materialized, so the cache never goes stale.
	lastCI    uint64
	lastChunk []uint64

	stats Stats // cold relative to the fields above; keep it last
}

// NewShadowMap returns a shadow map covering maxKeys granule indices
// (rounded up to a power of two); keys are masked into range.
func NewShadowMap(maxKeys uint64, entryWords int, template []uint64) *ShadowMap {
	size := uint64(1)
	for size < maxKeys {
		size <<= 1
	}
	nchunks := (size + shadowChunkSize - 1) >> shadowChunkBits
	return &ShadowMap{
		chunks:   make([][]uint64, nchunks),
		ew:       entryWords,
		keyMask:  size - 1,
		template: template,
		zeroTmpl: template == nil || templateIsZero(template),
		lastCI:   ^uint64(0),
	}
}

func (m *ShadowMap) chunk(ci uint64) []uint64 {
	if ci == m.lastCI {
		m.stats.CacheHits++
		return m.lastChunk
	}
	m.stats.CacheMisses++
	c := m.chunks[ci]
	if c == nil {
		c = make([]uint64, shadowChunkSize*m.ew)
		if !m.zeroTmpl {
			for i := 0; i < shadowChunkSize; i++ {
				copy(c[i*m.ew:], m.template)
			}
		}
		m.chunks[ci] = c
	}
	m.lastCI, m.lastChunk = ci, c
	return c
}

// peekChunk is chunk() without materialization (nil when absent).
func (m *ShadowMap) peekChunk(ci uint64) []uint64 {
	if ci == m.lastCI {
		m.stats.CacheHits++
		return m.lastChunk
	}
	m.stats.CacheMisses++
	c := m.chunks[ci]
	if c != nil {
		m.lastCI, m.lastChunk = ci, c
	}
	return c
}

// Entry returns the entry words for key.
func (m *ShadowMap) Entry(key uint64) []uint64 {
	m.stats.Entries++
	key &= m.keyMask
	c := m.chunk(key >> shadowChunkBits)
	i := int(key&shadowChunkMask) * m.ew
	return c[i : i+m.ew : i+m.ew]
}

// Peek returns the entry words if the chunk is materialized.
func (m *ShadowMap) Peek(key uint64) []uint64 {
	m.stats.Peeks++
	key &= m.keyMask
	c := m.peekChunk(key >> shadowChunkBits)
	if c == nil {
		return nil
	}
	i := int(key&shadowChunkMask) * m.ew
	return c[i : i+m.ew : i+m.ew]
}

// Fill sets the field on n consecutive keys starting at key, walking
// chunks directly. The single-key case — a word-or-smaller program
// access at default granularity — takes a fast path.
func (m *ShadowMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.stats.Fills++
	if n == 1 {
		key &= m.keyMask
		c := m.chunk(key >> shadowChunkBits)
		i := int(key&shadowChunkMask) * m.ew
		StoreField(c[i:i+m.ew], off, width, v)
		return
	}
	for n > 0 {
		k := key & m.keyMask
		c := m.chunk(k >> shadowChunkBits)
		in := k & shadowChunkMask
		run := shadowChunkSize - in
		if run > n {
			run = n
		}
		base := int(in) * m.ew
		for i := uint64(0); i < run; i++ {
			StoreField(c[base:base+m.ew], off, width, v)
			base += m.ew
		}
		key += run
		n -= run
	}
}

// RangeOr ORs the field over n consecutive keys.
func (m *ShadowMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.stats.Ranges++
	if n == 1 {
		key &= m.keyMask
		c := m.peekChunk(key >> shadowChunkBits)
		if c == nil {
			if m.zeroTmpl {
				return 0
			}
			return LoadField(m.template, off, width)
		}
		i := int(key&shadowChunkMask) * m.ew
		return LoadField(c[i:i+m.ew], off, width)
	}
	var acc uint64
	for n > 0 {
		k := key & m.keyMask
		ci := k >> shadowChunkBits
		in := k & shadowChunkMask
		run := shadowChunkSize - in
		if run > n {
			run = n
		}
		c := m.chunks[ci]
		if c == nil {
			if !m.zeroTmpl {
				acc |= LoadField(m.template, off, width)
			}
		} else {
			base := int(in) * m.ew
			for i := uint64(0); i < run; i++ {
				acc |= LoadField(c[base:base+m.ew], off, width)
				base += m.ew
			}
		}
		key += run
		n -= run
	}
	return acc
}

// Remove resets the entry to the template.
func (m *ShadowMap) Remove(key uint64) {
	m.stats.Removes++
	key &= m.keyMask
	c := m.chunks[key>>shadowChunkBits]
	if c == nil {
		return
	}
	i := int(key&shadowChunkMask) * m.ew
	e := c[i : i+m.ew]
	if m.template != nil {
		copy(e, m.template)
	} else {
		for j := range e {
			e[j] = 0
		}
	}
}

// ForEach visits every entry in materialized chunks.
func (m *ShadowMap) ForEach(fn func(key uint64, entry []uint64)) {
	m.stats.Iters++
	for ci, c := range m.chunks {
		if c == nil {
			continue
		}
		for i := 0; i < shadowChunkSize; i++ {
			base := i * m.ew
			fn(uint64(ci)<<shadowChunkBits|uint64(i), c[base:base+m.ew])
		}
	}
}

// Lookups returns the lookup counter.
func (m *ShadowMap) Lookups() uint64 { return m.stats.lookups() }

// Stats returns the operation counters.
func (m *ShadowMap) Stats() Stats { return m.stats }

// Bytes returns the size of materialized chunks.
func (m *ShadowMap) Bytes() uint64 {
	var n uint64
	for _, c := range m.chunks {
		if c != nil {
			n += uint64(len(c)) * 8
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// PageTableMap — two-level structure with a hashed directory (§5.3's
// memory-efficient choice for high shadow factors). Each lookup pays a
// hash probe into the directory plus an index into the page.

const (
	pageBits = 12 // 4096 entries per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// PageTableMap maps arbitrary uint64 keys to entries via a directory of
// lazily-allocated pages.
type PageTableMap struct {
	dir      map[uint64][]uint64
	ew       int
	template []uint64
	zeroTmpl bool

	// one-entry inline cache: page-table walks in real shadow-memory
	// systems cache the last directory hit, and it is what makes the
	// page table competitive on sequential access.
	lastPI   uint64
	lastPage []uint64

	stats Stats // cold relative to the fields above; keep it last
}

// NewPageTableMap returns an empty page-table map.
func NewPageTableMap(entryWords int, template []uint64) *PageTableMap {
	return &PageTableMap{
		dir:      make(map[uint64][]uint64),
		ew:       entryWords,
		template: template,
		zeroTmpl: template == nil || templateIsZero(template),
		lastPI:   ^uint64(0),
	}
}

func (m *PageTableMap) page(pi uint64) []uint64 {
	if pi == m.lastPI {
		m.stats.CacheHits++
		return m.lastPage
	}
	m.stats.CacheMisses++
	p, ok := m.dir[pi]
	if !ok {
		p = make([]uint64, pageSize*m.ew)
		if !m.zeroTmpl {
			for i := 0; i < pageSize; i++ {
				copy(p[i*m.ew:], m.template)
			}
		}
		m.dir[pi] = p
	}
	m.lastPI, m.lastPage = pi, p
	return p
}

// Entry returns the entry words for key.
func (m *PageTableMap) Entry(key uint64) []uint64 {
	m.stats.Entries++
	p := m.page(key >> pageBits)
	i := int(key&pageMask) * m.ew
	return p[i : i+m.ew : i+m.ew]
}

// Peek returns the entry words if the page exists.
func (m *PageTableMap) Peek(key uint64) []uint64 {
	m.stats.Peeks++
	pi := key >> pageBits
	var p []uint64
	if pi == m.lastPI {
		m.stats.CacheHits++
		p = m.lastPage
	} else {
		m.stats.CacheMisses++
		p = m.dir[pi]
	}
	if p == nil {
		return nil
	}
	i := int(key&pageMask) * m.ew
	return p[i : i+m.ew : i+m.ew]
}

// Fill sets the field on n consecutive keys starting at key.
func (m *PageTableMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.stats.Fills++
	if n == 1 {
		p := m.page(key >> pageBits)
		i := int(key&pageMask) * m.ew
		StoreField(p[i:i+m.ew], off, width, v)
		return
	}
	for n > 0 {
		p := m.page(key >> pageBits)
		in := key & pageMask
		run := uint64(pageSize) - in
		if run > n {
			run = n
		}
		base := int(in) * m.ew
		for i := uint64(0); i < run; i++ {
			StoreField(p[base:base+m.ew], off, width, v)
			base += m.ew
		}
		key += run
		n -= run
	}
}

// RangeOr ORs the field over n consecutive keys.
func (m *PageTableMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.stats.Ranges++
	if n == 1 {
		pi := key >> pageBits
		var p []uint64
		if pi == m.lastPI {
			m.stats.CacheHits++
			p = m.lastPage
		} else {
			m.stats.CacheMisses++
			p = m.dir[pi]
		}
		if p == nil {
			if m.zeroTmpl {
				return 0
			}
			return LoadField(m.template, off, width)
		}
		i := int(key&pageMask) * m.ew
		return LoadField(p[i:i+m.ew], off, width)
	}
	var acc uint64
	for n > 0 {
		pi := key >> pageBits
		in := key & pageMask
		run := uint64(pageSize) - in
		if run > n {
			run = n
		}
		var p []uint64
		if pi == m.lastPI {
			p = m.lastPage
		} else {
			p = m.dir[pi]
		}
		if p == nil {
			if !m.zeroTmpl {
				acc |= LoadField(m.template, off, width)
			}
		} else {
			base := int(in) * m.ew
			for i := uint64(0); i < run; i++ {
				acc |= LoadField(p[base:base+m.ew], off, width)
				base += m.ew
			}
		}
		key += run
		n -= run
	}
	return acc
}

// Remove resets the entry to the template.
func (m *PageTableMap) Remove(key uint64) {
	m.stats.Removes++
	pi := key >> pageBits
	p := m.dir[pi]
	if p == nil {
		return
	}
	i := int(key&pageMask) * m.ew
	e := p[i : i+m.ew]
	if m.template != nil {
		copy(e, m.template)
	} else {
		for j := range e {
			e[j] = 0
		}
	}
}

// ForEach visits every entry in materialized pages.
func (m *PageTableMap) ForEach(fn func(key uint64, entry []uint64)) {
	m.stats.Iters++
	for pi, p := range m.dir {
		for i := 0; i < pageSize; i++ {
			base := i * m.ew
			fn(pi<<pageBits|uint64(i), p[base:base+m.ew])
		}
	}
}

// Lookups returns the lookup counter.
func (m *PageTableMap) Lookups() uint64 { return m.stats.lookups() }

// Stats returns the operation counters.
func (m *PageTableMap) Stats() Stats { return m.stats }

// Bytes returns the size of materialized pages plus directory overhead.
func (m *PageTableMap) Bytes() uint64 {
	var n uint64
	for _, p := range m.dir {
		n += uint64(len(p)) * 8
	}
	return n + uint64(len(m.dir))*16
}

// ---------------------------------------------------------------------------
// HashMap — the generic fallback for sparse, unbounded key spaces.
//
// Open-addressing table with the entries inline in a single flat
// []uint64 arena: slot i occupies stride = 1+entryWords words, key
// first. Linear probing is tombstone-free — Remove back-shifts the
// probe chain — and growth doubles the arena and rehashes in place-ish,
// so steady-state Entry/Peek allocate nothing and touch one or two
// cache lines instead of a Go-map bucket walk plus a per-entry slice.
//
// Because entries live inline, a rehash (growth or a back-shifting
// Remove) moves them: entry slices returned before the rehash keep
// their pre-rehash values but are detached from the live arena. Gen()
// counts rehashes so callers that cache entry views (the compiler's
// lookup-CSE slots) can revalidate; values survive a rehash verbatim,
// so stale *reads* are safe — only writes must go through a
// post-rehash view.

const hashMul = 0x9E3779B97F4A7C15 // 2^64 / phi (Fibonacci hashing)

// HashMap maps arbitrary uint64 keys to entries.
type HashMap struct {
	arena    []uint64 // nslots * stride words: key, entry...
	used     []uint64 // occupancy bitmap, one bit per slot
	mask     uint64   // nslots - 1
	shift    uint     // 64 - log2(nslots)
	count    uint64
	growAt   uint64 // rehash threshold (7/8 load)
	ew       int
	stride   int
	gen      uint64
	template []uint64
	zeroTmpl bool
	stats    Stats // cold relative to the fields above; keep it last
}

const hashMinSlots = 8

// NewHashMap returns an empty hash map.
func NewHashMap(entryWords int, template []uint64) *HashMap {
	m := &HashMap{
		ew:       entryWords,
		stride:   1 + entryWords,
		template: template,
		zeroTmpl: template == nil || templateIsZero(template),
	}
	m.resize(hashMinSlots)
	return m
}

func (m *HashMap) resize(nslots uint64) {
	old := m.arena
	if old != nil {
		m.stats.Rehashes++
	}
	oldUsed := m.used
	oldMask := m.mask
	m.arena = make([]uint64, nslots*uint64(m.stride))
	m.used = make([]uint64, (nslots+63)/64)
	m.mask = nslots - 1
	m.shift = 64 - log2u(nslots)
	m.growAt = nslots - nslots/4
	m.gen++
	if old == nil {
		return
	}
	stride := uint64(m.stride)
	for i := uint64(0); i <= oldMask; i++ {
		if oldUsed[i>>6]&(1<<(i&63)) == 0 {
			continue
		}
		src := old[i*stride : i*stride+stride]
		j := (src[0] * hashMul) >> m.shift
		for m.used[j>>6]&(1<<(j&63)) != 0 {
			j = (j + 1) & m.mask
		}
		m.used[j>>6] |= 1 << (j & 63)
		copy(m.arena[j*stride:], src)
	}
}

func log2u(n uint64) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func (m *HashMap) isUsed(i uint64) bool { return m.used[i>>6]&(1<<(i&63)) != 0 }

// find probes for key: (slot, true) when present, else the insertion
// slot and false.
func (m *HashMap) find(key uint64) (uint64, bool) {
	i := (key * hashMul) >> m.shift
	for {
		if !m.isUsed(i) {
			return i, false
		}
		if m.arena[i*uint64(m.stride)] == key {
			return i, true
		}
		i = (i + 1) & m.mask
	}
}

// insert claims slot i for key with a template-filled entry. The caller
// has already verified key is absent and i is its probe-derived free
// slot.
func (m *HashMap) insert(i, key uint64) []uint64 {
	if m.count >= m.growAt {
		m.resize((m.mask + 1) * 2)
		i, _ = m.find(key)
	}
	m.used[i>>6] |= 1 << (i & 63)
	m.count++
	base := i * uint64(m.stride)
	m.arena[base] = key
	e := m.arena[base+1 : base+1+uint64(m.ew) : base+1+uint64(m.ew)]
	if m.zeroTmpl {
		for j := range e {
			e[j] = 0
		}
	} else {
		copy(e, m.template)
	}
	return e
}

// Entry returns the entry words for key, creating from template.
func (m *HashMap) Entry(key uint64) []uint64 {
	m.stats.Entries++
	i, ok := m.find(key)
	if !ok {
		return m.insert(i, key)
	}
	base := i*uint64(m.stride) + 1
	return m.arena[base : base+uint64(m.ew) : base+uint64(m.ew)]
}

// Peek returns the entry words or nil, never materializing.
func (m *HashMap) Peek(key uint64) []uint64 {
	m.stats.Peeks++
	i, ok := m.find(key)
	if !ok {
		return nil
	}
	base := i*uint64(m.stride) + 1
	return m.arena[base : base+uint64(m.ew) : base+uint64(m.ew)]
}

// Fill sets the field on n consecutive keys.
func (m *HashMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.stats.Fills++
	for i := uint64(0); i < n; i++ {
		StoreField(m.Entry(key+i), off, width, v)
	}
}

// RangeOr ORs the field over n consecutive keys.
func (m *HashMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.stats.Ranges++
	var acc uint64
	tmplV := uint64(0)
	if !m.zeroTmpl {
		tmplV = LoadField(m.template, off, width)
	}
	for i := uint64(0); i < n; i++ {
		if s, ok := m.find(key + i); ok {
			base := s*uint64(m.stride) + 1
			acc |= LoadField(m.arena[base:base+uint64(m.ew)], off, width)
		} else {
			acc |= tmplV
		}
	}
	return acc
}

// Remove deletes the entry, back-shifting the probe chain so no
// tombstones accumulate (Knuth 6.4 algorithm R).
func (m *HashMap) Remove(key uint64) {
	m.stats.Removes++
	i, ok := m.find(key)
	if !ok {
		return
	}
	m.count--
	m.gen++
	stride := uint64(m.stride)
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.isUsed(j) {
			break
		}
		home := (m.arena[j*stride] * hashMul) >> m.shift
		// Slot j may fill the hole at i only if i lies on j's probe path,
		// i.e. cyclically within [home, j).
		if (j-home)&m.mask >= (j-i)&m.mask {
			copy(m.arena[i*stride:i*stride+stride], m.arena[j*stride:j*stride+stride])
			i = j
		}
	}
	m.used[i>>6] &^= 1 << (i & 63)
}

// ForEach visits every entry in slot order (deterministic, unlike the
// former Go-map backing; callers must stay order-insensitive anyway).
func (m *HashMap) ForEach(fn func(key uint64, entry []uint64)) {
	m.stats.Iters++
	stride := uint64(m.stride)
	for i := uint64(0); i <= m.mask; i++ {
		if m.isUsed(i) {
			base := i * stride
			fn(m.arena[base], m.arena[base+1:base+stride])
		}
	}
}

// Lookups returns the lookup counter.
func (m *HashMap) Lookups() uint64 { return m.stats.lookups() }

// Stats returns the operation counters.
func (m *HashMap) Stats() Stats { return m.stats }

// Len returns the number of live entries.
func (m *HashMap) Len() int { return int(m.count) }

// Gen returns the rehash generation; entry slices obtained at an older
// generation are detached from the live arena (stale for writes).
func (m *HashMap) Gen() uint64 { return m.gen }

// Bytes returns the arena plus occupancy bitmap.
func (m *HashMap) Bytes() uint64 {
	return uint64(len(m.arena))*8 + uint64(len(m.used))*8
}

// ---------------------------------------------------------------------------
// HashMap2 — composite two-key fallback used when a nested map has two
// unbounded key dimensions (e.g. map(pointer, map(pointer, v))). Same
// flat-arena open addressing as HashMap with stride = 2+entryWords.

// HashMap2 maps key pairs to entries.
type HashMap2 struct {
	arena    []uint64 // nslots * stride words: key1, key2, entry...
	used     []uint64
	mask     uint64
	shift    uint
	count    uint64
	growAt   uint64
	ew       int
	stride   int
	gen      uint64
	template []uint64
	zeroTmpl bool
	stats    Stats // cold relative to the fields above; keep it last
}

// NewHashMap2 returns an empty two-key hash map.
func NewHashMap2(entryWords int, template []uint64) *HashMap2 {
	m := &HashMap2{
		ew:       entryWords,
		stride:   2 + entryWords,
		template: template,
		zeroTmpl: template == nil || templateIsZero(template),
	}
	m.resize(hashMinSlots)
	return m
}

// hash2 mixes a key pair (splitmix64-style finalizer over the
// Fibonacci-spread first key).
func hash2(k1, k2 uint64) uint64 {
	h := k1*hashMul ^ (k2+hashMul)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func (m *HashMap2) resize(nslots uint64) {
	old := m.arena
	if old != nil {
		m.stats.Rehashes++
	}
	oldUsed := m.used
	oldMask := m.mask
	m.arena = make([]uint64, nslots*uint64(m.stride))
	m.used = make([]uint64, (nslots+63)/64)
	m.mask = nslots - 1
	m.shift = 64 - log2u(nslots)
	m.growAt = nslots - nslots/4
	m.gen++
	if old == nil {
		return
	}
	stride := uint64(m.stride)
	for i := uint64(0); i <= oldMask; i++ {
		if oldUsed[i>>6]&(1<<(i&63)) == 0 {
			continue
		}
		src := old[i*stride : i*stride+stride]
		j := hash2(src[0], src[1]) >> m.shift
		for m.used[j>>6]&(1<<(j&63)) != 0 {
			j = (j + 1) & m.mask
		}
		m.used[j>>6] |= 1 << (j & 63)
		copy(m.arena[j*stride:], src)
	}
}

func (m *HashMap2) isUsed(i uint64) bool { return m.used[i>>6]&(1<<(i&63)) != 0 }

func (m *HashMap2) find(k1, k2 uint64) (uint64, bool) {
	i := hash2(k1, k2) >> m.shift
	stride := uint64(m.stride)
	for {
		if !m.isUsed(i) {
			return i, false
		}
		if m.arena[i*stride] == k1 && m.arena[i*stride+1] == k2 {
			return i, true
		}
		i = (i + 1) & m.mask
	}
}

// Entry returns the entry words for (k1, k2), creating from template.
func (m *HashMap2) Entry(k1, k2 uint64) []uint64 {
	m.stats.Entries++
	i, ok := m.find(k1, k2)
	if !ok {
		if m.count >= m.growAt {
			m.resize((m.mask + 1) * 2)
			i, _ = m.find(k1, k2)
		}
		m.used[i>>6] |= 1 << (i & 63)
		m.count++
		base := i * uint64(m.stride)
		m.arena[base] = k1
		m.arena[base+1] = k2
		e := m.arena[base+2 : base+2+uint64(m.ew) : base+2+uint64(m.ew)]
		if m.zeroTmpl {
			for j := range e {
				e[j] = 0
			}
		} else {
			copy(e, m.template)
		}
		return e
	}
	base := i*uint64(m.stride) + 2
	return m.arena[base : base+uint64(m.ew) : base+uint64(m.ew)]
}

// Peek returns the entry words or nil, never materializing.
func (m *HashMap2) Peek(k1, k2 uint64) []uint64 {
	m.stats.Peeks++
	i, ok := m.find(k1, k2)
	if !ok {
		return nil
	}
	base := i*uint64(m.stride) + 2
	return m.arena[base : base+uint64(m.ew) : base+uint64(m.ew)]
}

// ForEach visits every entry in slot order.
func (m *HashMap2) ForEach(fn func(k1, k2 uint64, entry []uint64)) {
	m.stats.Iters++
	stride := uint64(m.stride)
	for i := uint64(0); i <= m.mask; i++ {
		if m.isUsed(i) {
			base := i * stride
			fn(m.arena[base], m.arena[base+1], m.arena[base+2:base+stride])
		}
	}
}

// Lookups returns the lookup counter.
func (m *HashMap2) Lookups() uint64 { return m.stats.lookups() }

// Stats returns the operation counters.
func (m *HashMap2) Stats() Stats { return m.stats }

// Len returns the number of live entries.
func (m *HashMap2) Len() int { return int(m.count) }

// Gen returns the rehash generation (see HashMap.Gen).
func (m *HashMap2) Gen() uint64 { return m.gen }

// Bytes returns the arena plus occupancy bitmap.
func (m *HashMap2) Bytes() uint64 {
	return uint64(len(m.arena))*8 + uint64(len(m.used))*8
}

// Compile-time interface checks.
var (
	_ Container = (*ArrayMap)(nil)
	_ Container = (*ShadowMap)(nil)
	_ Container = (*PageTableMap)(nil)
	_ Container = (*HashMap)(nil)
)
