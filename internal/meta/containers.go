package meta

// Container is the uniform interface over the four map structures the
// compiler selects among. Keys are pre-normalized by the caller: for
// address-keyed maps the key is the granule index (address >> granule
// shift); for small-domain maps it is the raw value.
//
// Entry returns the value words for a key, materializing the entry from
// the group's init template if needed. Peek returns nil instead of
// materializing. Fill and RangeOr are the range operations behind ALDA's
// map.set(k, v, n) and map.get(k, n) builtins, specialized per container
// so offset shadow memory gets its fast path.
type Container interface {
	Entry(key uint64) []uint64
	Peek(key uint64) []uint64
	Fill(key, n uint64, off, width uint, v uint64)
	RangeOr(key, n uint64, off, width uint) uint64
	Remove(key uint64)
	ForEach(fn func(key uint64, entry []uint64))
	// Lookups returns the number of Entry/Peek/Fill/RangeOr calls served,
	// for the aldaexplain tool and tests.
	Lookups() uint64
	// Bytes returns the container's current metadata storage in bytes
	// (backing arrays, materialized chunks/pages, hash entries) — the
	// quantity behind the paper's §6.2 memory-footprint comparison.
	Bytes() uint64
}

func templateIsZero(t []uint64) bool {
	for _, w := range t {
		if w != 0 {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// ArrayMap — direct-indexed storage for small bounded key domains
// ("ALDAcc prefers an array for maps of limited domain size", §5.3).

// ArrayMap stores domain × entryWords words contiguously and indexes
// directly. Keys are taken modulo the domain for memory safety; bounded
// domains are a language-level contract (§3.1.2) that sema enforces when
// it can.
type ArrayMap struct {
	words    []uint64
	ew       int
	domain   uint64
	lookups  uint64
	touched  []bool
	template []uint64
}

// NewArrayMap returns an ArrayMap over a bounded key domain with entries
// initialized from template (nil ⇒ zero).
func NewArrayMap(domain int64, entryWords int, template []uint64) *ArrayMap {
	m := &ArrayMap{
		words:    make([]uint64, int(domain)*entryWords),
		ew:       entryWords,
		domain:   uint64(domain),
		touched:  make([]bool, domain),
		template: template,
	}
	if template != nil && !templateIsZero(template) {
		for k := int64(0); k < domain; k++ {
			copy(m.words[int(k)*entryWords:], template)
		}
	}
	return m
}

func (m *ArrayMap) slot(key uint64) int { return int(key%m.domain) * m.ew }

// Entry returns the entry words for key.
func (m *ArrayMap) Entry(key uint64) []uint64 {
	m.lookups++
	i := m.slot(key)
	m.touched[key%m.domain] = true
	return m.words[i : i+m.ew : i+m.ew]
}

// Peek returns the entry words without marking the key live.
func (m *ArrayMap) Peek(key uint64) []uint64 {
	m.lookups++
	if !m.touched[key%m.domain] {
		return nil
	}
	i := m.slot(key)
	return m.words[i : i+m.ew : i+m.ew]
}

// Fill sets the field on n consecutive keys starting at key.
func (m *ArrayMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.lookups++
	for i := uint64(0); i < n; i++ {
		e := m.Entry(key + i)
		StoreField(e, off, width, v)
	}
}

// RangeOr ORs the field over n consecutive keys starting at key.
func (m *ArrayMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.lookups++
	var acc uint64
	for i := uint64(0); i < n; i++ {
		acc |= LoadField(m.Entry(key+i), off, width)
	}
	return acc
}

// Remove resets the entry to the template.
func (m *ArrayMap) Remove(key uint64) {
	i := m.slot(key)
	e := m.words[i : i+m.ew]
	if m.template != nil {
		copy(e, m.template)
	} else {
		for j := range e {
			e[j] = 0
		}
	}
	m.touched[key%m.domain] = false
}

// ForEach visits every touched entry.
func (m *ArrayMap) ForEach(fn func(key uint64, entry []uint64)) {
	for k := uint64(0); k < m.domain; k++ {
		if m.touched[k] {
			i := int(k) * m.ew
			fn(k, m.words[i:i+m.ew])
		}
	}
}

// Lookups returns the lookup counter.
func (m *ArrayMap) Lookups() uint64 { return m.lookups }

// Bytes returns the backing storage size.
func (m *ArrayMap) Bytes() uint64 { return uint64(len(m.words))*8 + uint64(len(m.touched)) }

// ---------------------------------------------------------------------------
// ShadowMap — offset-based shadow memory (§5.3). Chunked flat arrays with
// pure array indexing on the fast path: chunk pointer + offset, no
// hashing and no presence probes beyond a nil chunk check. Memory is
// proportional to the touched address range.

const (
	shadowChunkBits = 16 // 65536 entries per chunk
	shadowChunkSize = 1 << shadowChunkBits
	shadowChunkMask = shadowChunkSize - 1
)

// ShadowMap maps a bounded granule-index space to entries.
type ShadowMap struct {
	chunks   [][]uint64
	ew       int
	keyMask  uint64
	lookups  uint64
	template []uint64
	zeroTmpl bool
}

// NewShadowMap returns a shadow map covering maxKeys granule indices
// (rounded up to a power of two); keys are masked into range.
func NewShadowMap(maxKeys uint64, entryWords int, template []uint64) *ShadowMap {
	size := uint64(1)
	for size < maxKeys {
		size <<= 1
	}
	nchunks := (size + shadowChunkSize - 1) >> shadowChunkBits
	return &ShadowMap{
		chunks:   make([][]uint64, nchunks),
		ew:       entryWords,
		keyMask:  size - 1,
		template: template,
		zeroTmpl: template == nil || templateIsZero(template),
	}
}

func (m *ShadowMap) chunk(ci uint64) []uint64 {
	c := m.chunks[ci]
	if c == nil {
		c = make([]uint64, shadowChunkSize*m.ew)
		if !m.zeroTmpl {
			for i := 0; i < shadowChunkSize; i++ {
				copy(c[i*m.ew:], m.template)
			}
		}
		m.chunks[ci] = c
	}
	return c
}

// Entry returns the entry words for key.
func (m *ShadowMap) Entry(key uint64) []uint64 {
	m.lookups++
	key &= m.keyMask
	c := m.chunk(key >> shadowChunkBits)
	i := int(key&shadowChunkMask) * m.ew
	return c[i : i+m.ew : i+m.ew]
}

// Peek returns the entry words if the chunk is materialized.
func (m *ShadowMap) Peek(key uint64) []uint64 {
	m.lookups++
	key &= m.keyMask
	c := m.chunks[key>>shadowChunkBits]
	if c == nil {
		return nil
	}
	i := int(key&shadowChunkMask) * m.ew
	return c[i : i+m.ew : i+m.ew]
}

// Fill sets the field on n consecutive keys starting at key, walking
// chunks directly. The single-key case — a word-or-smaller program
// access at default granularity — takes a fast path.
func (m *ShadowMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.lookups++
	if n == 1 {
		key &= m.keyMask
		c := m.chunk(key >> shadowChunkBits)
		i := int(key&shadowChunkMask) * m.ew
		StoreField(c[i:i+m.ew], off, width, v)
		return
	}
	for n > 0 {
		k := key & m.keyMask
		c := m.chunk(k >> shadowChunkBits)
		in := k & shadowChunkMask
		run := shadowChunkSize - in
		if run > n {
			run = n
		}
		base := int(in) * m.ew
		for i := uint64(0); i < run; i++ {
			StoreField(c[base:base+m.ew], off, width, v)
			base += m.ew
		}
		key += run
		n -= run
	}
}

// RangeOr ORs the field over n consecutive keys.
func (m *ShadowMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.lookups++
	if n == 1 {
		key &= m.keyMask
		c := m.chunks[key>>shadowChunkBits]
		if c == nil {
			if m.zeroTmpl {
				return 0
			}
			return LoadField(m.template, off, width)
		}
		i := int(key&shadowChunkMask) * m.ew
		return LoadField(c[i:i+m.ew], off, width)
	}
	var acc uint64
	for n > 0 {
		k := key & m.keyMask
		ci := k >> shadowChunkBits
		in := k & shadowChunkMask
		run := shadowChunkSize - in
		if run > n {
			run = n
		}
		c := m.chunks[ci]
		if c == nil {
			if !m.zeroTmpl {
				acc |= LoadField(m.template, off, width)
			}
		} else {
			base := int(in) * m.ew
			for i := uint64(0); i < run; i++ {
				acc |= LoadField(c[base:base+m.ew], off, width)
				base += m.ew
			}
		}
		key += run
		n -= run
	}
	return acc
}

// Remove resets the entry to the template.
func (m *ShadowMap) Remove(key uint64) {
	key &= m.keyMask
	c := m.chunks[key>>shadowChunkBits]
	if c == nil {
		return
	}
	i := int(key&shadowChunkMask) * m.ew
	e := c[i : i+m.ew]
	if m.template != nil {
		copy(e, m.template)
	} else {
		for j := range e {
			e[j] = 0
		}
	}
}

// ForEach visits every entry in materialized chunks.
func (m *ShadowMap) ForEach(fn func(key uint64, entry []uint64)) {
	for ci, c := range m.chunks {
		if c == nil {
			continue
		}
		for i := 0; i < shadowChunkSize; i++ {
			base := i * m.ew
			fn(uint64(ci)<<shadowChunkBits|uint64(i), c[base:base+m.ew])
		}
	}
}

// Lookups returns the lookup counter.
func (m *ShadowMap) Lookups() uint64 { return m.lookups }

// Bytes returns the size of materialized chunks.
func (m *ShadowMap) Bytes() uint64 {
	var n uint64
	for _, c := range m.chunks {
		if c != nil {
			n += uint64(len(c)) * 8
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// PageTableMap — two-level structure with a hashed directory (§5.3's
// memory-efficient choice for high shadow factors). Each lookup pays a
// hash probe into the directory plus an index into the page.

const (
	pageBits = 12 // 4096 entries per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// PageTableMap maps arbitrary uint64 keys to entries via a directory of
// lazily-allocated pages.
type PageTableMap struct {
	dir      map[uint64][]uint64
	ew       int
	lookups  uint64
	template []uint64
	zeroTmpl bool

	// one-entry inline cache: page-table walks in real shadow-memory
	// systems cache the last directory hit, and it is what makes the
	// page table competitive on sequential access.
	lastPI   uint64
	lastPage []uint64
}

// NewPageTableMap returns an empty page-table map.
func NewPageTableMap(entryWords int, template []uint64) *PageTableMap {
	return &PageTableMap{
		dir:      make(map[uint64][]uint64),
		ew:       entryWords,
		template: template,
		zeroTmpl: template == nil || templateIsZero(template),
		lastPI:   ^uint64(0),
	}
}

func (m *PageTableMap) page(pi uint64) []uint64 {
	if pi == m.lastPI {
		return m.lastPage
	}
	p, ok := m.dir[pi]
	if !ok {
		p = make([]uint64, pageSize*m.ew)
		if !m.zeroTmpl {
			for i := 0; i < pageSize; i++ {
				copy(p[i*m.ew:], m.template)
			}
		}
		m.dir[pi] = p
	}
	m.lastPI, m.lastPage = pi, p
	return p
}

// Entry returns the entry words for key.
func (m *PageTableMap) Entry(key uint64) []uint64 {
	m.lookups++
	p := m.page(key >> pageBits)
	i := int(key&pageMask) * m.ew
	return p[i : i+m.ew : i+m.ew]
}

// Peek returns the entry words if the page exists.
func (m *PageTableMap) Peek(key uint64) []uint64 {
	m.lookups++
	pi := key >> pageBits
	var p []uint64
	if pi == m.lastPI {
		p = m.lastPage
	} else {
		p = m.dir[pi]
	}
	if p == nil {
		return nil
	}
	i := int(key&pageMask) * m.ew
	return p[i : i+m.ew : i+m.ew]
}

// Fill sets the field on n consecutive keys starting at key.
func (m *PageTableMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.lookups++
	if n == 1 {
		p := m.page(key >> pageBits)
		i := int(key&pageMask) * m.ew
		StoreField(p[i:i+m.ew], off, width, v)
		return
	}
	for n > 0 {
		p := m.page(key >> pageBits)
		in := key & pageMask
		run := uint64(pageSize) - in
		if run > n {
			run = n
		}
		base := int(in) * m.ew
		for i := uint64(0); i < run; i++ {
			StoreField(p[base:base+m.ew], off, width, v)
			base += m.ew
		}
		key += run
		n -= run
	}
}

// RangeOr ORs the field over n consecutive keys.
func (m *PageTableMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.lookups++
	if n == 1 {
		pi := key >> pageBits
		var p []uint64
		if pi == m.lastPI {
			p = m.lastPage
		} else {
			p = m.dir[pi]
		}
		if p == nil {
			if m.zeroTmpl {
				return 0
			}
			return LoadField(m.template, off, width)
		}
		i := int(key&pageMask) * m.ew
		return LoadField(p[i:i+m.ew], off, width)
	}
	var acc uint64
	for n > 0 {
		pi := key >> pageBits
		in := key & pageMask
		run := uint64(pageSize) - in
		if run > n {
			run = n
		}
		var p []uint64
		if pi == m.lastPI {
			p = m.lastPage
		} else {
			p = m.dir[pi]
		}
		if p == nil {
			if !m.zeroTmpl {
				acc |= LoadField(m.template, off, width)
			}
		} else {
			base := int(in) * m.ew
			for i := uint64(0); i < run; i++ {
				acc |= LoadField(p[base:base+m.ew], off, width)
				base += m.ew
			}
		}
		key += run
		n -= run
	}
	return acc
}

// Remove resets the entry to the template.
func (m *PageTableMap) Remove(key uint64) {
	pi := key >> pageBits
	p := m.dir[pi]
	if p == nil {
		return
	}
	i := int(key&pageMask) * m.ew
	e := p[i : i+m.ew]
	if m.template != nil {
		copy(e, m.template)
	} else {
		for j := range e {
			e[j] = 0
		}
	}
}

// ForEach visits every entry in materialized pages.
func (m *PageTableMap) ForEach(fn func(key uint64, entry []uint64)) {
	for pi, p := range m.dir {
		for i := 0; i < pageSize; i++ {
			base := i * m.ew
			fn(pi<<pageBits|uint64(i), p[base:base+m.ew])
		}
	}
}

// Lookups returns the lookup counter.
func (m *PageTableMap) Lookups() uint64 { return m.lookups }

// Bytes returns the size of materialized pages plus directory overhead.
func (m *PageTableMap) Bytes() uint64 {
	var n uint64
	for _, p := range m.dir {
		n += uint64(len(p)) * 8
	}
	return n + uint64(len(m.dir))*16
}

// ---------------------------------------------------------------------------
// HashMap — the generic fallback for sparse, unbounded key spaces.

// HashMap maps arbitrary keys to entries via a Go map.
type HashMap struct {
	m        map[uint64][]uint64
	ew       int
	lookups  uint64
	template []uint64
}

// NewHashMap returns an empty hash map.
func NewHashMap(entryWords int, template []uint64) *HashMap {
	return &HashMap{m: make(map[uint64][]uint64), ew: entryWords, template: template}
}

// Entry returns the entry words for key, creating from template.
func (m *HashMap) Entry(key uint64) []uint64 {
	m.lookups++
	e, ok := m.m[key]
	if !ok {
		e = make([]uint64, m.ew)
		if m.template != nil {
			copy(e, m.template)
		}
		m.m[key] = e
	}
	return e
}

// Peek returns the entry words or nil.
func (m *HashMap) Peek(key uint64) []uint64 {
	m.lookups++
	return m.m[key]
}

// Fill sets the field on n consecutive keys.
func (m *HashMap) Fill(key, n uint64, off, width uint, v uint64) {
	m.lookups++
	for i := uint64(0); i < n; i++ {
		StoreField(m.Entry(key+i), off, width, v)
	}
}

// RangeOr ORs the field over n consecutive keys.
func (m *HashMap) RangeOr(key, n uint64, off, width uint) uint64 {
	m.lookups++
	var acc uint64
	tmplV := uint64(0)
	if m.template != nil {
		tmplV = LoadField(m.template, off, width)
	}
	for i := uint64(0); i < n; i++ {
		if e, ok := m.m[key+i]; ok {
			acc |= LoadField(e, off, width)
		} else {
			acc |= tmplV
		}
	}
	return acc
}

// Remove deletes the entry.
func (m *HashMap) Remove(key uint64) { delete(m.m, key) }

// ForEach visits every entry.
func (m *HashMap) ForEach(fn func(key uint64, entry []uint64)) {
	for k, e := range m.m {
		fn(k, e)
	}
}

// Lookups returns the lookup counter.
func (m *HashMap) Lookups() uint64 { return m.lookups }

// Bytes returns entry storage plus hash-table overhead.
func (m *HashMap) Bytes() uint64 {
	return uint64(len(m.m)) * (uint64(m.ew)*8 + 32)
}

// ---------------------------------------------------------------------------
// HashMap2 — composite two-key fallback used when a nested map has two
// unbounded key dimensions (e.g. map(pointer, map(pointer, v))).

// HashMap2 maps key pairs to entries.
type HashMap2 struct {
	m        map[[2]uint64][]uint64
	ew       int
	lookups  uint64
	template []uint64
}

// NewHashMap2 returns an empty two-key hash map.
func NewHashMap2(entryWords int, template []uint64) *HashMap2 {
	return &HashMap2{m: make(map[[2]uint64][]uint64), ew: entryWords, template: template}
}

// Entry returns the entry words for (k1, k2), creating from template.
func (m *HashMap2) Entry(k1, k2 uint64) []uint64 {
	m.lookups++
	k := [2]uint64{k1, k2}
	e, ok := m.m[k]
	if !ok {
		e = make([]uint64, m.ew)
		if m.template != nil {
			copy(e, m.template)
		}
		m.m[k] = e
	}
	return e
}

// Lookups returns the lookup counter.
func (m *HashMap2) Lookups() uint64 { return m.lookups }

// Bytes returns entry storage plus hash-table overhead.
func (m *HashMap2) Bytes() uint64 {
	return uint64(len(m.m)) * (uint64(m.ew)*8 + 40)
}

// Compile-time interface checks.
var (
	_ Container = (*ArrayMap)(nil)
	_ Container = (*ShadowMap)(nil)
	_ Container = (*PageTableMap)(nil)
	_ Container = (*HashMap)(nil)
)
