package meta

// llrb is a left-leaning red-black tree over uint64 keys, the ordered
// backbone of TreeSet. It implements insert, delete, lookup, min, and
// in-order iteration with the classic Sedgewick recursive formulation.

type llrbNode struct {
	key         uint64
	left, right *llrbNode
	red         bool
	size        int // subtree size, maintained for O(1) Len
}

type llrb struct {
	root *llrbNode
}

func isRed(n *llrbNode) bool { return n != nil && n.red }

func nodeSize(n *llrbNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *llrbNode) fix() *llrbNode {
	n.size = 1 + nodeSize(n.left) + nodeSize(n.right)
	return n
}

func rotateLeft(h *llrbNode) *llrbNode {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	h.fix()
	return x.fix()
}

func rotateRight(h *llrbNode) *llrbNode {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	h.fix()
	return x.fix()
}

func flipColors(h *llrbNode) {
	h.red = !h.red
	if h.left != nil {
		h.left.red = !h.left.red
	}
	if h.right != nil {
		h.right.red = !h.right.red
	}
}

func (t *llrb) Len() int { return nodeSize(t.root) }

func (t *llrb) Contains(key uint64) bool {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

func (t *llrb) Insert(key uint64) {
	t.root = insert(t.root, key)
	t.root.red = false
}

func insert(h *llrbNode, key uint64) *llrbNode {
	if h == nil {
		return &llrbNode{key: key, red: true, size: 1}
	}
	switch {
	case key < h.key:
		h.left = insert(h.left, key)
	case key > h.key:
		h.right = insert(h.right, key)
	default:
		return h // already present
	}
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h.fix()
}

func moveRedLeft(h *llrbNode) *llrbNode {
	flipColors(h)
	if h.right != nil && isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *llrbNode) *llrbNode {
	flipColors(h)
	if h.left != nil && isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func fixUp(h *llrbNode) *llrbNode {
	if isRed(h.right) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h.fix()
}

func minNode(h *llrbNode) *llrbNode {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin(h *llrbNode) *llrbNode {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// Delete removes key if present and reports whether it was found.
func (t *llrb) Delete(key uint64) bool {
	if !t.Contains(key) {
		return false
	}
	t.root = deleteNode(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	return true
}

func deleteNode(h *llrbNode, key uint64) *llrbNode {
	if key < h.key {
		if !isRed(h.left) && h.left != nil && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = deleteNode(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if h.right != nil && !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			m := minNode(h.right)
			h.key = m.key
			h.right = deleteMin(h.right)
		} else {
			h.right = deleteNode(h.right, key)
		}
	}
	return fixUp(h)
}

// Walk visits keys in ascending order; fn returning false stops the walk.
func (t *llrb) Walk(fn func(uint64) bool) { walk(t.root, fn) }

func walk(n *llrbNode, fn func(uint64) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.key) {
		return false
	}
	return walk(n.right, fn)
}
