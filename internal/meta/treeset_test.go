package meta

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLLRBBasic(t *testing.T) {
	var tr llrb
	keys := []uint64{5, 3, 8, 1, 4, 7, 9, 2, 6, 0}
	for i, k := range keys {
		tr.Insert(k)
		if tr.Len() != i+1 {
			t.Fatalf("len after %d inserts = %d", i+1, tr.Len())
		}
	}
	tr.Insert(5) // duplicate
	if tr.Len() != 10 {
		t.Fatalf("duplicate insert changed len to %d", tr.Len())
	}
	// In-order walk must be sorted.
	var prev int64 = -1
	tr.Walk(func(k uint64) bool {
		if int64(k) <= prev {
			t.Fatalf("walk out of order: %d after %d", k, prev)
		}
		prev = int64(k)
		return true
	})
	if !tr.Delete(5) || tr.Contains(5) {
		t.Fatal("delete 5 failed")
	}
	if tr.Delete(100) {
		t.Fatal("delete of absent key returned true")
	}
	if tr.Len() != 9 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
}

func TestLLRBWalkEarlyStop(t *testing.T) {
	var tr llrb
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i)
	}
	n := 0
	tr.Walk(func(k uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("walk visited %d, want 10", n)
	}
}

// Property: the LLRB agrees with a map under random insert/delete.
func TestLLRBQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		var tr llrb
		ref := make(map[uint64]bool)
		for _, op := range ops {
			k := uint64(op) % 128
			if op%2 == 0 {
				tr.Insert(k)
				ref[k] = true
			} else {
				tr.Delete(k)
				delete(ref, k)
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		for k := uint64(0); k < 128; k++ {
			if tr.Contains(k) != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTreeSetComplementSemantics(t *testing.T) {
	u := NewUniverseTreeSet()
	if !u.Find(42) || !u.Find(1<<60) {
		t.Fatal("universe must contain everything")
	}
	if u.Empty() {
		t.Fatal("universe is not empty")
	}
	if u.Size() != -1 {
		t.Fatalf("universe size = %d, want -1", u.Size())
	}
	u.Remove(42)
	if u.Find(42) {
		t.Fatal("removed element still present")
	}
	if !u.Find(43) {
		t.Fatal("unrelated element vanished")
	}
	u.Add(42)
	if !u.Find(42) {
		t.Fatal("re-added element missing")
	}
}

func TestTreeSetClone(t *testing.T) {
	s := NewTreeSet()
	s.Add(1)
	s.Add(2)
	c := s.Clone()
	c.Add(3)
	if s.Find(3) {
		t.Fatal("clone aliases original")
	}
	if !c.Find(1) || !c.Find(2) {
		t.Fatal("clone lost elements")
	}

	u := NewUniverseTreeSet()
	u.Remove(9)
	cu := u.Clone()
	if cu.Find(9) || !cu.Find(10) {
		t.Fatal("complement clone wrong")
	}
}

// refSet models a set over a small universe [0, n) with explicit
// membership, the oracle for complement algebra.
type refSet [64]bool

func refFromTree(s *TreeSet) refSet {
	var r refSet
	for i := range r {
		r[i] = s.Find(uint64(i))
	}
	return r
}

// Property: Intersect and Union are correct for all four
// normal/complement form combinations.
func TestTreeSetAlgebraQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func() *TreeSet {
		var s *TreeSet
		if rng.Intn(2) == 0 {
			s = NewTreeSet()
		} else {
			s = NewUniverseTreeSet()
		}
		for i := 0; i < 10; i++ {
			e := uint64(rng.Intn(64))
			if rng.Intn(2) == 0 {
				s.Add(e)
			} else {
				s.Remove(e)
			}
		}
		return s
	}
	for trial := 0; trial < 500; trial++ {
		a, b := build(), build()
		ra, rb := refFromTree(a), refFromTree(b)
		ri := refFromTree(Intersect(a, b))
		ru := refFromTree(Union(a, b))
		for e := 0; e < 64; e++ {
			if ri[e] != (ra[e] && rb[e]) {
				t.Fatalf("trial %d: intersect wrong at %d (a=%v b=%v)", trial, e, ra[e], rb[e])
			}
			if ru[e] != (ra[e] || rb[e]) {
				t.Fatalf("trial %d: union wrong at %d", trial, e)
			}
		}
	}
}

func TestTreeSetElems(t *testing.T) {
	s := NewTreeSet()
	for _, e := range []uint64{9, 1, 5} {
		s.Add(e)
	}
	got := s.Elems()
	want := []uint64{1, 5, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("elems = %v, want %v", got, want)
	}
	s.Clear()
	if !s.Empty() || s.Size() != 0 {
		t.Fatal("clear failed")
	}
}
