// Package meta implements the runtime metadata containers that the
// ALDAcc compiler selects among: fixed-domain bit-vector sets, dynamic
// tree sets with universe/complement support, and four map containers
// (array, offset shadow memory, page table, hash) that associate program
// values with metadata entries.
//
// Entries are flat []uint64 word slices; scalar members are bit-packed
// fields within the words and set members are either inline bit-vectors
// or handles into a tree-set arena. The compiler decides the layout; this
// package supplies the mechanics.
package meta

import "math/bits"

// BitWords returns the number of uint64 words needed for a bit-vector
// over a domain of n elements.
func BitWords(n int64) int { return int((n + 63) / 64) }

// BitSet operations over a []uint64 slice interpreted as a bit-vector
// with the given domain size. The final partial word keeps its unused
// high bits zero (for normal sets) or one only transiently; all mutation
// helpers re-mask so Count and Empty stay exact.

// bitMaskLast returns the valid-bit mask for the last word of a domain.
func bitMaskLast(domain int64) uint64 {
	r := uint(domain % 64)
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << r) - 1
}

// BitAdd sets element e.
func BitAdd(w []uint64, e uint64) {
	i := e >> 6
	if i < uint64(len(w)) {
		w[i] |= 1 << (e & 63)
	}
}

// BitRemove clears element e.
func BitRemove(w []uint64, e uint64) {
	i := e >> 6
	if i < uint64(len(w)) {
		w[i] &^= 1 << (e & 63)
	}
}

// BitFind reports whether element e is present.
func BitFind(w []uint64, e uint64) bool {
	i := e >> 6
	return i < uint64(len(w)) && w[i]&(1<<(e&63)) != 0
}

// BitCount returns the population count.
func BitCount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// BitEmpty reports whether no element is present.
func BitEmpty(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return false
		}
	}
	return true
}

// BitAnd stores x ∩ y into dst. All slices must have equal length.
func BitAnd(dst, x, y []uint64) {
	for i := range dst {
		dst[i] = x[i] & y[i]
	}
}

// BitOr stores x ∪ y into dst.
func BitOr(dst, x, y []uint64) {
	for i := range dst {
		dst[i] = x[i] | y[i]
	}
}

// BitCopy copies src into dst.
func BitCopy(dst, src []uint64) { copy(dst, src) }

// BitClear empties the set.
func BitClear(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// BitFillUniverse sets every element of the domain.
func BitFillUniverse(w []uint64, domain int64) {
	for i := range w {
		w[i] = ^uint64(0)
	}
	if len(w) > 0 {
		w[len(w)-1] = bitMaskLast(domain)
	}
}

// BitElems appends the elements of the set to dst in ascending order.
func BitElems(dst []uint64, w []uint64) []uint64 {
	for i, x := range w {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			dst = append(dst, uint64(i*64+b))
			x &= x - 1
		}
	}
	return dst
}
