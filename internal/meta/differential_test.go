package meta

import (
	"sort"
	"testing"
)

// Differential test: drive the same operation sequence through the
// fixed-domain bit-vector set, the tree set, and a plain-map oracle and
// assert identical observable behavior (membership, cardinality,
// emptiness, iteration order of Elems). The compiler picks between
// these representations per analysis (§5.3), so they must be
// behaviorally interchangeable on a shared domain.

const diffDomain = 193 // odd, spans four 64-bit words with a ragged tail

type diffOracle map[uint64]bool

func (o diffOracle) elems() []uint64 {
	out := make([]uint64, 0, len(o))
	for e := range o {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// applyOp decodes one (op, element) pair and applies it to all three
// sets, failing on any observable divergence.
func applyOp(t *testing.T, step int, op, raw uint64, bits []uint64, tree *TreeSet, oracle diffOracle) {
	t.Helper()
	e := raw % diffDomain
	switch op % 4 {
	case 0: // insert
		BitAdd(bits, e)
		tree.Add(e)
		oracle[e] = true
	case 1: // remove
		BitRemove(bits, e)
		tree.Remove(e)
		delete(oracle, e)
	case 2: // contains
		want := oracle[e]
		if got := BitFind(bits, e); got != want {
			t.Fatalf("step %d: bitset Find(%d) = %v, oracle %v", step, e, got, want)
		}
		if got := tree.Find(e); got != want {
			t.Fatalf("step %d: treeset Find(%d) = %v, oracle %v", step, e, got, want)
		}
	default: // iterate + aggregate queries
		want := oracle.elems()
		gotBits := BitElems(nil, bits)
		if len(gotBits) != len(want) {
			t.Fatalf("step %d: bitset has %d elems, oracle %d", step, len(gotBits), len(want))
		}
		gotTree := tree.Elems()
		if len(gotTree) != len(want) {
			t.Fatalf("step %d: treeset has %d elems, oracle %d", step, len(gotTree), len(want))
		}
		for i := range want {
			if gotBits[i] != want[i] || gotTree[i] != want[i] {
				t.Fatalf("step %d: elems diverge at %d: bitset=%d treeset=%d oracle=%d",
					step, i, gotBits[i], gotTree[i], want[i])
			}
		}
		if BitCount(bits) != len(want) || tree.Size() != len(want) {
			t.Fatalf("step %d: counts diverge: bitset=%d treeset=%d oracle=%d",
				step, BitCount(bits), tree.Size(), len(want))
		}
		if BitEmpty(bits) != (len(want) == 0) || tree.Empty() != (len(want) == 0) {
			t.Fatalf("step %d: emptiness diverges", step)
		}
	}
}

// applyHashOps drives the same (op, key) byte stream through the
// open-addressing HashMap/HashMap2 and plain-map oracles: insert,
// overwrite, delete (backward-shift), growth well past the initial
// capacity, and order-insensitive iteration. Entry views are used
// immediately and never retained across operations — the container
// contract after the flat-arena rewrite (rehashes detach old views).
func applyHashOps(t *testing.T, ops []byte) {
	t.Helper()
	hm := NewHashMap(2, []uint64{7, 0})
	h2 := NewHashMap2(1, nil)
	oracle := map[uint64]uint64{}
	oracle2 := map[[2]uint64]uint64{}
	for i := 0; i+1 < len(ops); i += 2 {
		op, raw := ops[i], uint64(ops[i+1])
		// Spread raw bytes over sparse 64-bit keys so probe sequences
		// collide only via the real hash, and growth is exercised (256
		// distinct keys cross several doublings from 8 slots).
		key := raw * 0x9E3779B97F4A7C15
		k2 := raw & 3
		val := uint64(i)*2654435761 + 1
		switch op % 4 {
		case 0: // insert or overwrite
			e := hm.Entry(key)
			if oracle[key] == 0 && e[0] != 7 {
				t.Fatalf("step %d: fresh entry not template-filled: %v", i/2, e)
			}
			StoreField(e, 0, 64, val)
			oracle[key] = val
			StoreField(h2.Entry(key, k2), 0, 64, val)
			oracle2[[2]uint64{key, k2}] = val
		case 1: // delete
			hm.Remove(key)
			delete(oracle, key)
		case 2: // lookup
			e := hm.Peek(key)
			want, ok := oracle[key]
			if ok != (e != nil) {
				t.Fatalf("step %d: Peek(%#x) present=%v, oracle %v", i/2, key, e != nil, ok)
			}
			if ok && LoadField(e, 0, 64) != want {
				t.Fatalf("step %d: Peek(%#x) = %d, oracle %d", i/2, key, LoadField(e, 0, 64), want)
			}
			e2 := h2.Peek(key, k2)
			want2, ok2 := oracle2[[2]uint64{key, k2}]
			if ok2 != (e2 != nil) || (ok2 && e2[0] != want2) {
				t.Fatalf("step %d: HashMap2 Peek diverges from oracle", i/2)
			}
		default: // iterate, order-insensitive
			if hm.Len() != len(oracle) {
				t.Fatalf("step %d: Len %d, oracle %d", i/2, hm.Len(), len(oracle))
			}
			seen := map[uint64]uint64{}
			hm.ForEach(func(k uint64, e []uint64) { seen[k] = LoadField(e, 0, 64) })
			if len(seen) != len(oracle) {
				t.Fatalf("step %d: ForEach visited %d entries, oracle %d", i/2, len(seen), len(oracle))
			}
			for k, v := range oracle {
				if seen[k] != v {
					t.Fatalf("step %d: ForEach[%#x] = %d, oracle %d", i/2, k, seen[k], v)
				}
			}
			if h2.Len() != len(oracle2) {
				t.Fatalf("step %d: HashMap2 Len %d, oracle %d", i/2, h2.Len(), len(oracle2))
			}
		}
	}
	// Every surviving key must still be reachable with its last value.
	for k, v := range oracle {
		e := hm.Peek(k)
		if e == nil || LoadField(e, 0, 64) != v {
			t.Fatalf("final: key %#x lost or corrupted after op sequence", k)
		}
	}
	seen2 := map[[2]uint64]uint64{}
	h2.ForEach(func(a, b uint64, e []uint64) { seen2[[2]uint64{a, b}] = e[0] })
	if len(seen2) != len(oracle2) {
		t.Fatalf("final: HashMap2 ForEach visited %d, oracle %d", len(seen2), len(oracle2))
	}
	for k, v := range oracle2 {
		if seen2[k] != v {
			t.Fatalf("final: HashMap2 pair %v lost or corrupted", k)
		}
	}
}

func TestDifferentialHashContainers(t *testing.T) {
	for _, seed := range []uint64{1, 0xdeadbeef, 42, 7777777} {
		rng := seed*0x9E3779B97F4A7C15 | 1
		ops := make([]byte, 8192)
		for i := range ops {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			ops[i] = byte(rng)
		}
		applyHashOps(t, ops)
	}
}

// TestHashMapGrowthAndDrain pins the edges the random streams can miss:
// monotone growth across many doublings, then a full drain through
// backward-shift deletion back to empty.
func TestHashMapGrowthAndDrain(t *testing.T) {
	hm := NewHashMap(1, nil)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		StoreField(hm.Entry(i*0x9E3779B97F4A7C15), 0, 64, i+1)
	}
	if hm.Len() != n {
		t.Fatalf("Len = %d after %d inserts", hm.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		e := hm.Peek(i * 0x9E3779B97F4A7C15)
		if e == nil || e[0] != i+1 {
			t.Fatalf("key %d lost across growth", i)
		}
	}
	gen := hm.Gen()
	if gen == 0 {
		t.Fatal("growth did not advance the rehash generation")
	}
	for i := uint64(0); i < n; i++ {
		hm.Remove(i * 0x9E3779B97F4A7C15)
	}
	if hm.Len() != 0 {
		t.Fatalf("Len = %d after full drain", hm.Len())
	}
	hm.ForEach(func(k uint64, _ []uint64) { t.Fatalf("drained map still visits key %#x", k) })
	if hm.Gen() <= gen {
		t.Fatal("removal did not advance the rehash generation")
	}
}

func TestDifferentialSetContainers(t *testing.T) {
	for _, seed := range []uint64{1, 0xdeadbeef, 42, 7777777} {
		bits := make([]uint64, BitWords(diffDomain))
		tree := NewTreeSet()
		oracle := diffOracle{}
		rng := seed*0x9E3779B97F4A7C15 | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for step := 0; step < 5000; step++ {
			applyOp(t, step, next(), next(), bits, tree, oracle)
		}
		// Final drain: remove everything and confirm all three agree on
		// the empty set.
		for _, e := range oracle.elems() {
			BitRemove(bits, e)
			tree.Remove(e)
		}
		if !BitEmpty(bits) || tree.Size() != 0 {
			t.Fatalf("seed %d: drain left bitset empty=%v treeset size=%d", seed, BitEmpty(bits), tree.Size())
		}
	}
}

// FuzzSetContainers feeds arbitrary byte strings as op sequences: each
// pair of bytes is one (op, element) instruction. The same stream
// drives both the set representations (bitset/treeset/map-oracle) and
// the open-addressing hash tables (HashMap/HashMap2 vs map oracles).
func FuzzSetContainers(f *testing.F) {
	f.Add([]byte{0, 5, 2, 5, 1, 5, 2, 5, 3, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 3, 0, 1, 2, 3, 0})
	// Hash-table-shaped seeds: grow-then-drain, overwrite churn on one
	// probe chain, delete/reinsert alternation (backward-shift stress).
	f.Add([]byte{
		0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8, 0, 9, 0, 10,
		1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 3, 0, 2, 6, 2, 1,
	})
	f.Add([]byte{0, 11, 0, 11, 0, 11, 2, 11, 1, 11, 2, 11, 0, 11, 3, 0})
	f.Add([]byte{0, 0xff, 1, 0xff, 0, 0xff, 1, 0xff, 0, 0xfe, 1, 0xfe, 3, 0, 2, 0xff})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		bits := make([]uint64, BitWords(diffDomain))
		tree := NewTreeSet()
		oracle := diffOracle{}
		for i := 0; i+1 < len(ops); i += 2 {
			applyOp(t, i/2, uint64(ops[i]), uint64(ops[i+1]), bits, tree, oracle)
		}
		applyHashOps(t, ops)
	})
}
