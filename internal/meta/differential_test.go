package meta

import (
	"sort"
	"testing"
)

// Differential test: drive the same operation sequence through the
// fixed-domain bit-vector set, the tree set, and a plain-map oracle and
// assert identical observable behavior (membership, cardinality,
// emptiness, iteration order of Elems). The compiler picks between
// these representations per analysis (§5.3), so they must be
// behaviorally interchangeable on a shared domain.

const diffDomain = 193 // odd, spans four 64-bit words with a ragged tail

type diffOracle map[uint64]bool

func (o diffOracle) elems() []uint64 {
	out := make([]uint64, 0, len(o))
	for e := range o {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// applyOp decodes one (op, element) pair and applies it to all three
// sets, failing on any observable divergence.
func applyOp(t *testing.T, step int, op, raw uint64, bits []uint64, tree *TreeSet, oracle diffOracle) {
	t.Helper()
	e := raw % diffDomain
	switch op % 4 {
	case 0: // insert
		BitAdd(bits, e)
		tree.Add(e)
		oracle[e] = true
	case 1: // remove
		BitRemove(bits, e)
		tree.Remove(e)
		delete(oracle, e)
	case 2: // contains
		want := oracle[e]
		if got := BitFind(bits, e); got != want {
			t.Fatalf("step %d: bitset Find(%d) = %v, oracle %v", step, e, got, want)
		}
		if got := tree.Find(e); got != want {
			t.Fatalf("step %d: treeset Find(%d) = %v, oracle %v", step, e, got, want)
		}
	default: // iterate + aggregate queries
		want := oracle.elems()
		gotBits := BitElems(nil, bits)
		if len(gotBits) != len(want) {
			t.Fatalf("step %d: bitset has %d elems, oracle %d", step, len(gotBits), len(want))
		}
		gotTree := tree.Elems()
		if len(gotTree) != len(want) {
			t.Fatalf("step %d: treeset has %d elems, oracle %d", step, len(gotTree), len(want))
		}
		for i := range want {
			if gotBits[i] != want[i] || gotTree[i] != want[i] {
				t.Fatalf("step %d: elems diverge at %d: bitset=%d treeset=%d oracle=%d",
					step, i, gotBits[i], gotTree[i], want[i])
			}
		}
		if BitCount(bits) != len(want) || tree.Size() != len(want) {
			t.Fatalf("step %d: counts diverge: bitset=%d treeset=%d oracle=%d",
				step, BitCount(bits), tree.Size(), len(want))
		}
		if BitEmpty(bits) != (len(want) == 0) || tree.Empty() != (len(want) == 0) {
			t.Fatalf("step %d: emptiness diverges", step)
		}
	}
}

func TestDifferentialSetContainers(t *testing.T) {
	for _, seed := range []uint64{1, 0xdeadbeef, 42, 7777777} {
		bits := make([]uint64, BitWords(diffDomain))
		tree := NewTreeSet()
		oracle := diffOracle{}
		rng := seed*0x9E3779B97F4A7C15 | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for step := 0; step < 5000; step++ {
			applyOp(t, step, next(), next(), bits, tree, oracle)
		}
		// Final drain: remove everything and confirm all three agree on
		// the empty set.
		for _, e := range oracle.elems() {
			BitRemove(bits, e)
			tree.Remove(e)
		}
		if !BitEmpty(bits) || tree.Size() != 0 {
			t.Fatalf("seed %d: drain left bitset empty=%v treeset size=%d", seed, BitEmpty(bits), tree.Size())
		}
	}
}

// FuzzSetContainers feeds arbitrary byte strings as op sequences: each
// pair of bytes is one (op, element) instruction.
func FuzzSetContainers(f *testing.F) {
	f.Add([]byte{0, 5, 2, 5, 1, 5, 2, 5, 3, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 3, 0, 1, 2, 3, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		bits := make([]uint64, BitWords(diffDomain))
		tree := NewTreeSet()
		oracle := diffOracle{}
		for i := 0; i+1 < len(ops); i += 2 {
			applyOp(t, i/2, uint64(ops[i]), uint64(ops[i+1]), bits, tree, oracle)
		}
	})
}
