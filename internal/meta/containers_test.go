package meta

import (
	"math/rand"
	"testing"
)

func TestFieldsRoundTrip(t *testing.T) {
	words := make([]uint64, 4)
	StoreField(words, 0, 8, 0xAB)
	StoreField(words, 8, 8, 0xCD)
	StoreField(words, 16, 16, 0xBEEF)
	StoreField(words, 64, 64, ^uint64(0))
	StoreField(words, 130, 2, 3)
	if got := LoadField(words, 0, 8); got != 0xAB {
		t.Errorf("field@0 = %#x", got)
	}
	if got := LoadField(words, 8, 8); got != 0xCD {
		t.Errorf("field@8 = %#x", got)
	}
	if got := LoadField(words, 16, 16); got != 0xBEEF {
		t.Errorf("field@16 = %#x", got)
	}
	if got := LoadField(words, 64, 64); got != ^uint64(0) {
		t.Errorf("field@64 = %#x", got)
	}
	if got := LoadField(words, 130, 2); got != 3 {
		t.Errorf("field@130 = %#x", got)
	}
	// Overwrite must not disturb neighbors.
	StoreField(words, 8, 8, 0x11)
	if LoadField(words, 0, 8) != 0xAB || LoadField(words, 16, 16) != 0xBEEF {
		t.Error("store disturbed neighboring fields")
	}
}

func TestSignExtendTruncate(t *testing.T) {
	if got := SignExtend(0xFF, 8); int64(got) != -1 {
		t.Errorf("SignExtend(0xFF, 8) = %d", int64(got))
	}
	if got := SignExtend(0x7F, 8); got != 127 {
		t.Errorf("SignExtend(0x7F, 8) = %d", got)
	}
	if got := SignExtend(5, 64); got != 5 {
		t.Errorf("SignExtend(5, 64) = %d", got)
	}
	if got := Truncate(0x1FF, 8); got != 0xFF {
		t.Errorf("Truncate = %#x", got)
	}
	if got := Truncate(^uint64(0), 64); got != ^uint64(0) {
		t.Errorf("Truncate 64 = %#x", got)
	}
}

// refContainer is the oracle: a map of key -> entry copy.
type refContainer struct {
	m    map[uint64][]uint64
	ew   int
	tmpl []uint64
}

func newRef(ew int, tmpl []uint64) *refContainer {
	return &refContainer{m: make(map[uint64][]uint64), ew: ew, tmpl: tmpl}
}

func (r *refContainer) entry(key uint64) []uint64 {
	e, ok := r.m[key]
	if !ok {
		e = make([]uint64, r.ew)
		copy(e, r.tmpl)
		r.m[key] = e
	}
	return e
}

func (r *refContainer) fill(key, n uint64, off, width uint, v uint64) {
	for i := uint64(0); i < n; i++ {
		StoreField(r.entry(key+i), off, width, v)
	}
}

func (r *refContainer) rangeOr(key, n uint64, off, width uint) uint64 {
	var acc uint64
	tv := uint64(0)
	if r.tmpl != nil {
		tv = LoadField(r.tmpl, off, width)
	}
	for i := uint64(0); i < n; i++ {
		if e, ok := r.m[key+i]; ok {
			acc |= LoadField(e, off, width)
		} else {
			acc |= tv
		}
	}
	return acc
}

// containersUnderTest builds all four implementations over the same
// parameters (keys are confined to [0, maxKey)).
func containersUnderTest(ew int, tmpl []uint64, maxKey uint64) map[string]Container {
	return map[string]Container{
		"array":     NewArrayMap(int64(maxKey), ew, tmpl),
		"shadow":    NewShadowMap(maxKey, ew, tmpl),
		"pagetable": NewPageTableMap(ew, tmpl),
		"hash":      NewHashMap(ew, tmpl),
	}
}

// Property: every container implementation agrees with the reference
// model under random mixed operations, with both zero and non-zero
// (universe-style) templates.
func TestContainersAgainstReference(t *testing.T) {
	const maxKey = 1 << 14
	for _, tc := range []struct {
		name string
		ew   int
		tmpl []uint64
	}{
		{"1word-zero", 1, nil},
		{"2word-universe", 2, []uint64{^uint64(0), 0x00FF}},
		{"3word-zero", 3, []uint64{0, 0, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for name, c := range containersUnderTest(tc.ew, tc.tmpl, maxKey) {
				rng := rand.New(rand.NewSource(42))
				ref := newRef(tc.ew, tc.tmpl)
				for i := 0; i < 3000; i++ {
					key := uint64(rng.Intn(maxKey - 64))
					off := uint(rng.Intn(tc.ew)) * 64
					width := uint(8 << rng.Intn(4)) // 8,16,32,64
					switch rng.Intn(5) {
					case 0: // point write via Entry
						v := rng.Uint64()
						StoreField(c.Entry(key), off, width, v)
						StoreField(ref.entry(key), off, width, v)
					case 1: // point read
						got := LoadField(c.Entry(key), off, width)
						want := LoadField(ref.entry(key), off, width)
						if got != want {
							t.Fatalf("%s: entry read at %d: got %#x want %#x", name, key, got, want)
						}
					case 2: // range fill
						n := uint64(rng.Intn(80) + 1)
						v := rng.Uint64()
						c.Fill(key, n, off, width, v)
						ref.fill(key, n, off, width, v)
					case 3: // range or
						n := uint64(rng.Intn(80) + 1)
						got := c.RangeOr(key, n, off, width)
						want := ref.rangeOr(key, n, off, width)
						if got != want {
							t.Fatalf("%s: rangeOr(%d,%d): got %#x want %#x", name, key, n, got, want)
						}
					case 4: // remove
						c.Remove(key)
						if e, ok := ref.m[key]; ok {
							copy(e, ref.tmpl)
							for j := len(ref.tmpl); j < tc.ew; j++ {
								e[j] = 0
							}
						}
					}
				}
			}
		})
	}
}

func TestContainerPeek(t *testing.T) {
	for name, c := range containersUnderTest(1, nil, 1<<12) {
		if e := c.Peek(100); e != nil && name != "array" {
			// array materializes eagerly but reports untouched as nil too
			t.Errorf("%s: peek of untouched key returned entry", name)
		}
		StoreField(c.Entry(100), 0, 64, 7)
		e := c.Peek(100)
		if e == nil || e[0] != 7 {
			t.Errorf("%s: peek after write = %v", name, e)
		}
	}
}

func TestContainerForEach(t *testing.T) {
	for name, c := range containersUnderTest(1, nil, 1<<12) {
		StoreField(c.Entry(5), 0, 64, 50)
		StoreField(c.Entry(9), 0, 64, 90)
		sum := uint64(0)
		cnt := 0
		c.ForEach(func(k uint64, e []uint64) {
			if e[0] != 0 {
				sum += e[0]
				cnt++
			}
		})
		if sum != 140 || cnt != 2 {
			t.Errorf("%s: foreach sum=%d cnt=%d", name, sum, cnt)
		}
	}
}

func TestContainerLookupCounters(t *testing.T) {
	c := NewShadowMap(1<<12, 1, nil)
	c.Entry(1)
	c.Fill(2, 4, 0, 64, 9)
	c.RangeOr(2, 4, 0, 64)
	if c.Lookups() != 3 {
		t.Errorf("lookups = %d, want 3", c.Lookups())
	}
}

func TestHashMap2(t *testing.T) {
	m := NewHashMap2(2, []uint64{7, 0})
	e := m.Entry(1, 2)
	if e[0] != 7 {
		t.Fatalf("template not applied: %v", e)
	}
	e[1] = 99
	if m.Entry(1, 2)[1] != 99 {
		t.Fatal("entry not stable")
	}
	if m.Entry(2, 1)[1] == 99 {
		t.Fatal("key order ignored")
	}
	if m.Lookups() != 3 {
		t.Fatalf("lookups = %d", m.Lookups())
	}
}

func TestShadowMapKeyMasking(t *testing.T) {
	m := NewShadowMap(1<<10, 1, nil)
	// Keys beyond the range wrap rather than panic.
	e := m.Entry(1 << 40)
	e[0] = 5
	if m.Entry((1 << 40) & (1<<10 - 1))[0] != 5 {
		t.Fatal("masked key does not alias")
	}
}
