package meta

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWords(t *testing.T) {
	cases := []struct {
		domain int64
		words  int
	}{
		{1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {256, 4}, {4096, 64},
	}
	for _, c := range cases {
		if got := BitWords(c.domain); got != c.words {
			t.Errorf("BitWords(%d) = %d, want %d", c.domain, got, c.words)
		}
	}
}

func TestBitSetBasic(t *testing.T) {
	const domain = 200
	w := make([]uint64, BitWords(domain))
	if !BitEmpty(w) {
		t.Fatal("new set not empty")
	}
	BitAdd(w, 0)
	BitAdd(w, 63)
	BitAdd(w, 64)
	BitAdd(w, 199)
	if BitCount(w) != 4 {
		t.Fatalf("count = %d, want 4", BitCount(w))
	}
	for _, e := range []uint64{0, 63, 64, 199} {
		if !BitFind(w, e) {
			t.Errorf("missing element %d", e)
		}
	}
	if BitFind(w, 1) || BitFind(w, 100) {
		t.Error("found absent element")
	}
	BitRemove(w, 63)
	if BitFind(w, 63) || BitCount(w) != 3 {
		t.Error("remove failed")
	}
	BitClear(w)
	if !BitEmpty(w) {
		t.Error("clear failed")
	}
}

func TestBitFillUniverse(t *testing.T) {
	for _, domain := range []int64{1, 7, 64, 65, 100, 128, 256} {
		w := make([]uint64, BitWords(domain))
		BitFillUniverse(w, domain)
		if got := BitCount(w); got != int(domain) {
			t.Errorf("domain %d: universe count = %d", domain, got)
		}
		for e := int64(0); e < domain; e++ {
			if !BitFind(w, uint64(e)) {
				t.Errorf("domain %d: missing %d", domain, e)
			}
		}
	}
}

func TestBitOutOfRangeIgnored(t *testing.T) {
	w := make([]uint64, 2)
	BitAdd(w, 1<<20) // beyond the slice: must not panic or corrupt
	if !BitEmpty(w) {
		t.Error("out-of-range add mutated the set")
	}
	if BitFind(w, 1<<20) {
		t.Error("out-of-range find returned true")
	}
	BitRemove(w, 1<<20)
}

// Property: bit-vector set operations agree with a map-based reference
// model under random operation sequences.
func TestBitSetQuick(t *testing.T) {
	const domain = 300
	f := func(ops []uint16) bool {
		w := make([]uint64, BitWords(domain))
		ref := make(map[uint64]bool)
		for _, op := range ops {
			e := uint64(op) % domain
			switch op % 3 {
			case 0:
				BitAdd(w, e)
				ref[e] = true
			case 1:
				BitRemove(w, e)
				delete(ref, e)
			case 2:
				if BitFind(w, e) != ref[e] {
					return false
				}
			}
		}
		if BitCount(w) != len(ref) {
			return false
		}
		return BitEmpty(w) == (len(ref) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: And/Or match set intersection/union on the reference model.
func TestBitAndOrQuick(t *testing.T) {
	const domain = 190
	words := BitWords(domain)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := make([]uint64, words)
		b := make([]uint64, words)
		refA := make(map[uint64]bool)
		refB := make(map[uint64]bool)
		for i := 0; i < 50; i++ {
			ea := uint64(rng.Intn(domain))
			eb := uint64(rng.Intn(domain))
			BitAdd(a, ea)
			refA[ea] = true
			BitAdd(b, eb)
			refB[eb] = true
		}
		and := make([]uint64, words)
		or := make([]uint64, words)
		BitAnd(and, a, b)
		BitOr(or, a, b)
		for e := uint64(0); e < domain; e++ {
			if BitFind(and, e) != (refA[e] && refB[e]) {
				t.Fatalf("trial %d: intersection wrong at %d", trial, e)
			}
			if BitFind(or, e) != (refA[e] || refB[e]) {
				t.Fatalf("trial %d: union wrong at %d", trial, e)
			}
		}
	}
}

func TestBitElems(t *testing.T) {
	w := make([]uint64, 4)
	for _, e := range []uint64{3, 64, 65, 200} {
		BitAdd(w, e)
	}
	got := BitElems(nil, w)
	want := []uint64{3, 64, 65, 200}
	if len(got) != len(want) {
		t.Fatalf("elems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elems = %v, want %v", got, want)
		}
	}
}
