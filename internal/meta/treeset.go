package meta

// TreeSet is the dynamically-sized set representation ALDAcc falls back
// to when a set's domain is unbounded or too large for an inline
// bit-vector (§5.3: "when a set is not of fixed size ... ALDAcc defaults
// to a tree-based set as they are the most flexible").
//
// To support `universe::` initial states over unbounded domains, a
// TreeSet can be in *complement* form: Complement == true means the set
// contains every element of the domain except Items. The full set
// algebra (add/remove/find/union/intersection) is closed over both
// forms, so `U ∩ S` works without materializing U.
type TreeSet struct {
	Complement bool
	items      llrb
}

// NewTreeSet returns an empty set.
func NewTreeSet() *TreeSet { return &TreeSet{} }

// NewUniverseTreeSet returns the universe set (complement of empty).
func NewUniverseTreeSet() *TreeSet { return &TreeSet{Complement: true} }

// Add inserts e.
func (s *TreeSet) Add(e uint64) {
	if s.Complement {
		s.items.Delete(e) // no longer excluded
		return
	}
	s.items.Insert(e)
}

// Remove deletes e.
func (s *TreeSet) Remove(e uint64) {
	if s.Complement {
		s.items.Insert(e) // now excluded
		return
	}
	s.items.Delete(e)
}

// Find reports membership.
func (s *TreeSet) Find(e uint64) bool {
	if s.Complement {
		return !s.items.Contains(e)
	}
	return s.items.Contains(e)
}

// Empty reports whether the set has no elements. A complement set is
// empty only over a finite domain, which TreeSet does not track, so a
// complement set is never empty.
func (s *TreeSet) Empty() bool {
	if s.Complement {
		return false
	}
	return s.items.Len() == 0
}

// Size returns the number of elements for normal sets, and -1 for
// complement (infinite) sets.
func (s *TreeSet) Size() int {
	if s.Complement {
		return -1
	}
	return s.items.Len()
}

// Clear empties the set in place.
func (s *TreeSet) Clear() {
	s.Complement = false
	s.items = llrb{}
}

// Clone returns a deep copy.
func (s *TreeSet) Clone() *TreeSet {
	out := &TreeSet{Complement: s.Complement}
	s.items.Walk(func(e uint64) bool {
		out.items.Insert(e)
		return true
	})
	return out
}

// Elems returns the explicitly tracked elements in ascending order (the
// members for a normal set, the exclusions for a complement set).
func (s *TreeSet) Elems() []uint64 {
	out := make([]uint64, 0, s.items.Len())
	s.items.Walk(func(e uint64) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Intersect returns a ∩ b as a new set.
func Intersect(a, b *TreeSet) *TreeSet {
	switch {
	case !a.Complement && !b.Complement:
		out := NewTreeSet()
		small, big := a, b
		if small.items.Len() > big.items.Len() {
			small, big = big, small
		}
		small.items.Walk(func(e uint64) bool {
			if big.items.Contains(e) {
				out.items.Insert(e)
			}
			return true
		})
		return out
	case !a.Complement && b.Complement:
		out := NewTreeSet()
		a.items.Walk(func(e uint64) bool {
			if !b.items.Contains(e) {
				out.items.Insert(e)
			}
			return true
		})
		return out
	case a.Complement && !b.Complement:
		return Intersect(b, a)
	default: // both complements: ¬A ∩ ¬B = ¬(A ∪ B)
		out := NewUniverseTreeSet()
		a.items.Walk(func(e uint64) bool {
			out.items.Insert(e)
			return true
		})
		b.items.Walk(func(e uint64) bool {
			out.items.Insert(e)
			return true
		})
		return out
	}
}

// Union returns a ∪ b as a new set.
func Union(a, b *TreeSet) *TreeSet {
	switch {
	case !a.Complement && !b.Complement:
		out := a.Clone()
		b.items.Walk(func(e uint64) bool {
			out.items.Insert(e)
			return true
		})
		return out
	case !a.Complement && b.Complement:
		// A ∪ ¬B = ¬(B \ A)
		out := NewUniverseTreeSet()
		b.items.Walk(func(e uint64) bool {
			if !a.items.Contains(e) {
				out.items.Insert(e)
			}
			return true
		})
		return out
	case a.Complement && !b.Complement:
		return Union(b, a)
	default: // ¬A ∪ ¬B = ¬(A ∩ B)
		out := NewUniverseTreeSet()
		a.items.Walk(func(e uint64) bool {
			if b.items.Contains(e) {
				out.items.Insert(e)
			}
			return true
		})
		return out
	}
}
