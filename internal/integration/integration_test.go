// Package integration holds the end-to-end validation ladder of
// DESIGN.md §7: every analysis compiled and run on bug/no-bug workload
// pairs, plus the differential checks against the hand-tuned baselines
// (the reproduction's analogue of §6.2's "we ran MSan's unit tests on
// our ALDA MSan and verified the outputs were correct").
package integration

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/analyses"
	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

var opt = core.RunOptions{}

func runALDA(t *testing.T, analysis, workload string, size workloads.Size, bug workloads.Bug) *vm.Result {
	t.Helper()
	a, err := analyses.Compile(analysis, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile %s: %v", analysis, err)
	}
	p, err := workloads.BuildBug(workload, size, bug)
	if err != nil {
		t.Fatalf("build %s: %v", workload, err)
	}
	res, err := core.RunAnalysis(p, a, opt)
	if err != nil {
		t.Fatalf("run %s on %s: %v", analysis, workload, err)
	}
	return res
}

func reportLocs(rs []*vm.Report) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Message+"@"+r.Where)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// MSan

// The Figure 3 program list must be MSan-clean (no reports): that is
// the paper's precondition for including them in the performance
// comparison.
func TestMSanCleanOnFig3Programs(t *testing.T) {
	progs := []string{
		"bzip2", "gobmk", "h264ref", "hmmer", "libquantum", "mcf", "perlbench", "sjeng",
		"fft", "lu_c", "lu_nc", "radix", "cholesky", "raytrace", "water_ns", "radiosity",
		"memcached", "sort", "ffmpeg", "nginx",
	}
	for _, w := range progs {
		w := w
		t.Run(w, func(t *testing.T) {
			res := runALDA(t, "msan", w, workloads.SizeTiny, workloads.BugNone)
			if len(res.Reports) != 0 {
				t.Fatalf("ALDA MSan reported on clean %s:\n%s", w, vm.FormatReports(res.Reports))
			}
		})
	}
}

// Table 3: planted uninitialized reads are caught by both MSan
// implementations; gets()-sourced reads are false positives only for
// the hand-tuned MSan (no gets interceptor).
func TestMSanTable3(t *testing.T) {
	type tc struct {
		workload string
		bug      workloads.Bug
		aldaHits bool
		handHits bool
	}
	cases := []tc{
		{"gcc", workloads.BugUninit, true, true},
		{"ocean", workloads.BugUninit, true, true},
		{"volrend", workloads.BugUninit, true, true},
		{"barnes", workloads.BugNone, false, true}, // gets false positive
		{"fmm", workloads.BugNone, false, true},    // gets false positive
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload, func(t *testing.T) {
			alda := runALDA(t, "msan", c.workload, workloads.SizeTiny, c.bug)
			if got := len(alda.Reports) > 0; got != c.aldaHits {
				t.Errorf("ALDA MSan on %s: reports=%v want %v\n%s",
					c.workload, got, c.aldaHits, vm.FormatReports(alda.Reports))
			}

			p, err := workloads.BuildBug(c.workload, workloads.SizeTiny, c.bug)
			if err != nil {
				t.Fatal(err)
			}
			hand, err := core.RunBaseline(p, func() baselines.Baseline {
				return baselines.NewMSan(1 << 28)
			}, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(hand.Reports) > 0; got != c.handHits {
				t.Errorf("hand MSan on %s: reports=%v want %v\n%s",
					c.workload, got, c.handHits, vm.FormatReports(hand.Reports))
			}
		})
	}
}

// Differential: on every Figure 3 program the two MSans agree on the
// exact report locations (empty here, by the cleanliness test) and on
// the planted-bug programs they agree on the buggy location.
func TestMSanDifferentialOnBugs(t *testing.T) {
	for _, w := range []string{"gcc", "ocean", "volrend"} {
		w := w
		t.Run(w, func(t *testing.T) {
			alda := runALDA(t, "msan", w, workloads.SizeTiny, workloads.BugUninit)
			p, _ := workloads.BuildBug(w, workloads.SizeTiny, workloads.BugUninit)
			hand, err := core.RunBaseline(p, func() baselines.Baseline {
				return baselines.NewMSan(1 << 28)
			}, opt)
			if err != nil {
				t.Fatal(err)
			}
			al := reportLocs(alda.Reports)
			hl := reportLocs(hand.Reports)
			if len(al) != len(hl) {
				t.Fatalf("report count mismatch: alda=%v hand=%v", al, hl)
			}
			for i := range al {
				// Same program location; analysis names/messages match too
				// because both use the canonical MSan message.
				aw := al[i][strings.Index(al[i], "@"):]
				hw := hl[i][strings.Index(hl[i], "@"):]
				if aw != hw {
					t.Errorf("location mismatch: %s vs %s", al[i], hl[i])
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Eraser / FastTrack

// Differential: hand-tuned Eraser and ALDA Eraser implement the same
// algorithm, so their race-report location sets must be identical on
// every Splash2 program.
func TestEraserDifferential(t *testing.T) {
	for _, w := range workloads.Suite("splash2") {
		w := w
		t.Run(w, func(t *testing.T) {
			alda := runALDA(t, "eraser", w, workloads.SizeTiny, workloads.BugNone)
			p, _ := workloads.Build(w, workloads.SizeTiny)
			hand, err := core.RunBaseline(p, func() baselines.Baseline {
				return baselines.NewEraser()
			}, opt)
			if err != nil {
				t.Fatal(err)
			}
			al := reportLocs(alda.Reports)
			hl := reportLocs(hand.Reports)
			if len(al) != len(hl) {
				t.Fatalf("report sets differ:\nalda: %v\nhand: %v", al, hl)
			}
			for i := range al {
				ai := al[i][strings.Index(al[i], "@"):]
				hi := hl[i][strings.Index(hl[i], "@"):]
				if ai != hi {
					t.Errorf("race location mismatch: %s vs %s", al[i], hl[i])
				}
			}
		})
	}
}

// The radiosity race variant must be caught by Eraser and FastTrack,
// and by neither on the lock-protected variant... Eraser may report
// lockset-refinement false positives on other programs; what we pin
// down is the differential on the injected bug.
func TestRaceDetectionOnInjectedRace(t *testing.T) {
	for _, an := range []string{"eraser", "fasttrack"} {
		an := an
		t.Run(an, func(t *testing.T) {
			clean := runALDA(t, an, "radiosity", workloads.SizeTiny, workloads.BugNone)
			buggy := runALDA(t, an, "radiosity", workloads.SizeTiny, workloads.BugRace)
			if len(buggy.Reports) <= len(clean.Reports) {
				t.Errorf("%s: race variant got %d reports, clean %d — expected strictly more",
					an, len(buggy.Reports), len(clean.Reports))
			}
		})
	}
}

// ---------------------------------------------------------------------------
// UAF / taint

func TestUAFOnMemcached(t *testing.T) {
	clean := runALDA(t, "uaf", "memcached", workloads.SizeTiny, workloads.BugNone)
	if len(clean.Reports) != 0 {
		t.Fatalf("UAF reported on clean memcached:\n%s", vm.FormatReports(clean.Reports))
	}
	buggy := runALDA(t, "uaf", "memcached", workloads.SizeTiny, workloads.BugUAF)
	if len(buggy.Reports) == 0 {
		t.Fatal("UAF missed the injected use-after-free")
	}
	if !strings.Contains(buggy.Reports[0].Message, "use after free") {
		t.Fatalf("unexpected report: %v", buggy.Reports[0])
	}
}

func TestTaintOnFFmpeg(t *testing.T) {
	clean := runALDA(t, "tainttrack", "ffmpeg", workloads.SizeTiny, workloads.BugNone)
	if len(clean.Reports) != 0 {
		t.Fatalf("taint reported on clean ffmpeg:\n%s", vm.FormatReports(clean.Reports))
	}
	buggy := runALDA(t, "tainttrack", "ffmpeg", workloads.SizeTiny, workloads.BugTaint)
	if len(buggy.Reports) == 0 {
		t.Fatal("taint tracking missed the input-derived index")
	}
}

// ---------------------------------------------------------------------------
// Library sanitizers (§6.4.1)

func TestSSLSanFindsPaperBugs(t *testing.T) {
	type tc struct {
		workload string
		bug      workloads.Bug
		want     string
	}
	cases := []tc{
		{"memcached", workloads.BugSSLLeak, "leak"},
		{"memcached", workloads.BugSSLShutdown, "without SSL_shutdown"},
		{"nginx", workloads.BugSSLShutdown, "without SSL_shutdown"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload+"/"+c.bug.String(), func(t *testing.T) {
			clean := runALDA(t, "sslsan", c.workload, workloads.SizeTiny, workloads.BugNone)
			if len(clean.Reports) != 0 {
				t.Fatalf("SSLSan reported on clean %s:\n%s", c.workload, vm.FormatReports(clean.Reports))
			}
			buggy := runALDA(t, "sslsan", c.workload, workloads.SizeTiny, c.bug)
			found := false
			for _, r := range buggy.Reports {
				if strings.Contains(r.Message, c.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("SSLSan missed %q on %s/%s; got:\n%s",
					c.want, c.workload, c.bug, vm.FormatReports(buggy.Reports))
			}
		})
	}
}

func TestZlibSanFindsFFmpegBug(t *testing.T) {
	clean := runALDA(t, "zlibsan", "ffmpeg", workloads.SizeTiny, workloads.BugNone)
	if len(clean.Reports) != 0 {
		t.Fatalf("ZlibSan reported on clean ffmpeg:\n%s", vm.FormatReports(clean.Reports))
	}
	buggy := runALDA(t, "zlibsan", "ffmpeg", workloads.SizeTiny, workloads.BugZlibUninit)
	if len(buggy.Reports) == 0 {
		t.Fatal("ZlibSan missed the uninitialized z_stream")
	}
	if !strings.Contains(buggy.Reports[0].Message, "uninitialized z_stream") {
		t.Fatalf("unexpected report: %v", buggy.Reports[0])
	}
}

// ---------------------------------------------------------------------------
// Combined analysis (§6.4.2)

func TestCombinedAnalysisConcatenates(t *testing.T) {
	a, err := analyses.CompileCombined(compiler.DefaultOptions(),
		"eraser", "fasttrack", "uaf", "tainttrack")
	if err != nil {
		t.Fatalf("combined compile: %v", err)
	}
	p, err := workloads.Build("fft", workloads.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunAnalysis(p, a, opt)
	if err != nil {
		t.Fatalf("combined run: %v", err)
	}
	if res.HookCalls == 0 {
		t.Fatal("combined analysis dispatched no hooks")
	}
}

// The combined analysis finds the same injected bugs its components
// find individually.
func TestCombinedFindsComponentBugs(t *testing.T) {
	a, err := analyses.CompileCombined(compiler.DefaultOptions(), "eraser", "uaf")
	if err != nil {
		t.Fatal(err)
	}
	p, err := workloads.BuildBug("memcached", workloads.SizeTiny, workloads.BugUAF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunAnalysis(p, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Reports {
		if strings.Contains(r.Message, "use after free") {
			found = true
		}
	}
	if !found {
		t.Fatalf("combined eraser+uaf missed the UAF; got:\n%s", vm.FormatReports(res.Reports))
	}
}

// ---------------------------------------------------------------------------
// Optimization-equivalence: every compiler configuration produces the
// same analysis behavior, only different speed.

func TestOptimizationConfigsAgree(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts compiler.Options
	}{
		{"full", compiler.DefaultOptions()},
		{"ds-only", compiler.DSOnlyOptions()},
		{"naive", compiler.NaiveOptions()},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			a, err := analyses.Compile("eraser", cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			p, _ := workloads.BuildBug("radiosity", workloads.SizeTiny, workloads.BugRace)
			res, err := core.RunAnalysis(p, a, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Reports) == 0 {
				t.Errorf("%s config missed the injected race", cfg.name)
			}
		})
	}
}

// The grand unified analysis: the shipped analyses concatenated into
// one compilation (the §6.4.2 mechanism at full width). MSan and taint
// tracking both produce local metadata at LoadInst and therefore cannot
// coexist (one shadow register per instruction — the compiler rejects
// the pair); everything else combines. Each component must still catch
// its own bug class.
func TestAllEightAnalysesCombined(t *testing.T) {
	// First: the conflicting pair is a clean compile error, not silent
	// shadow clobbering.
	if _, err := analyses.CompileCombined(compiler.DefaultOptions(), "msan", "tainttrack"); err == nil ||
		!strings.Contains(err.Error(), "shadow") {
		t.Fatalf("msan+tainttrack must be rejected, got %v", err)
	}

	var all []string
	for _, n := range analyses.Names() {
		if n != "tainttrack" {
			all = append(all, n)
		}
	}
	a, err := analyses.CompileCombined(compiler.DefaultOptions(), all...)
	if err != nil {
		t.Fatalf("compile all %d: %v", len(all), err)
	}
	if len(a.Fused) == 0 {
		t.Error("expected fused hooks in the combined analysis")
	}

	find := func(res *vm.Result, want string) bool {
		for _, r := range res.Reports {
			if strings.Contains(r.Message, want) {
				return true
			}
		}
		return false
	}

	for _, c := range []struct {
		workload string
		bug      workloads.Bug
		want     string
	}{
		{"memcached", workloads.BugUAF, "use after free"},
		{"memcached", workloads.BugSSLLeak, "leak"},
		{"ffmpeg", workloads.BugZlibUninit, "uninitialized z_stream"},
		{"gcc", workloads.BugUninit, "uninitialized value"},
	} {
		p, err := workloads.BuildBug(c.workload, workloads.SizeTiny, c.bug)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunAnalysis(p, a, opt)
		if err != nil {
			t.Fatalf("run all-8 on %s/%s: %v", c.workload, c.bug, err)
		}
		if !find(res, c.want) {
			t.Errorf("all-8 combined missed %q on %s/%s; got:\n%s",
				c.want, c.workload, c.bug, vm.FormatReports(res.Reports))
		}
	}
}
