package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Replay conformance axis: a run replayed from a recorded trace must be
// observably equivalent to the live run, across the full ablation
// matrix. Two properties, matching the two recording modes:
//
//   - "replay": the workload's plain trace is recorded once and fanned
//     out across every configuration leg (including the threaded-tier
//     twins — replay always executes on the replay tier, so this is
//     also the replay-vs-threaded differential). The plain schedule is
//     an interleaving no live scheduler seed produces once hooks are
//     woven in, so the comparison uses the schedule-invariant
//     projection: SiteCanon reports, exit value, error kind.
//
//   - "replay-exact": the reference configuration records its own
//     instrumented run and replays it. Same configuration, same
//     schedule — the outcome must be byte-identical, occurrence counts
//     included.

// plainTrace records (and memoizes) the workload program's
// uninstrumented run as a replay trace. A verdict-grade failure of the
// plain run is fine: the trace's terminal reproduces it at replay, and
// the live legs fail identically.
func (r *Runner) plainTrace(p *mir.Program, seed int64) (*trace.Trace, error) {
	r.traceMu.Lock()
	tr := r.traces[p]
	r.traceMu.Unlock()
	if tr != nil {
		return tr, nil
	}
	data, _, err := core.RecordTrace(p, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps})
	if err != nil {
		var re *vm.RunError
		if !errors.As(err, &re) {
			return nil, fmt.Errorf("conformance: record plain trace: %w", err)
		}
	}
	tr, derr := trace.Decode(data)
	if derr != nil {
		return nil, fmt.Errorf("conformance: recorded trace does not decode: %w", derr)
	}
	r.traceMu.Lock()
	r.traces[p] = tr
	r.traceMu.Unlock()
	return tr, nil
}

// siteOutcome is the schedule-invariant outcome projection the fanned
// replay legs are compared under.
type siteOutcome struct {
	site    string
	exit    uint64
	errKind string
}

func (o siteOutcome) String() string {
	return fmt.Sprintf("exit=%d err=%q reports:\n%s", o.exit, o.errKind, o.site)
}

func siteOutcomeOf(res *vm.Result, err error) (siteOutcome, error) {
	var o siteOutcome
	if err != nil {
		re, ok := err.(*vm.RunError)
		if !ok {
			return o, err
		}
		o.errKind = re.Kind.String()
		return o, nil
	}
	o.site = SiteCanon(res.Reports)
	o.exit = res.Exit
	return o, nil
}

// CheckReplay verifies the replay axis for one analysis across every
// applicable configuration leg.
func (r *Runner) CheckReplay(w *Workload, name string) ([]Mismatch, error) {
	var ms []Mismatch
	cfgs := configsFor(w)
	seed := r.SchedSeeds[0]
	tr, err := r.plainTrace(w.Prog, seed)
	if err != nil {
		return nil, err
	}

	for _, c := range cfgs {
		a, err := r.analysis(name, c.Opts)
		if err != nil {
			return nil, err
		}
		live, err := siteOutcomeOf(core.RunAnalysis(w.Prog, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps}))
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s live: %w", w.Name, name, c.Name, err)
		}
		rep, err := siteOutcomeOf(core.RunAnalysis(w.Prog, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps, ReplayTrace: tr}))
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s replay: %w", w.Name, name, c.Name, err)
		}
		if rep != live {
			ms = append(ms, Mismatch{
				Workload: w.Name, Seed: w.Seed, Analysis: name,
				Property: "replay", Ref: c.Name + "-live", Got: c.Name + "-replay",
				Detail: "--- live:\n" + live.String() + "\n--- replay:\n" + rep.String(),
			})
		}
	}

	// Byte-identical leg: record the reference configuration's own
	// instrumented run, replay it, compare the full outcome.
	a, err := r.analysis(name, cfgs[0].Opts)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	recO, err := outcomeOf(core.RunAnalysis(w.Prog, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps, TraceSink: &buf}))
	if err != nil {
		return nil, fmt.Errorf("%s/%s record: %w", w.Name, name, err)
	}
	itr, derr := trace.Decode(buf.Bytes())
	if derr != nil {
		return nil, fmt.Errorf("%s/%s: instrumented trace does not decode: %w", w.Name, name, derr)
	}
	repO, err := outcomeOf(core.RunAnalysis(w.Prog, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps, ReplayTrace: itr}))
	if err != nil {
		return nil, fmt.Errorf("%s/%s replay-exact: %w", w.Name, name, err)
	}
	if !repO.equal(recO) {
		ms = append(ms, Mismatch{
			Workload: w.Name, Seed: w.Seed, Analysis: name,
			Property: "replay-exact", Ref: cfgs[0].Name + "-record", Got: cfgs[0].Name + "-replay",
			Detail: diff(recO, repO),
		})
	}
	return ms, nil
}

// ReplayCorruptionFails is the shrinker predicate for trace-robustness
// reproducers: record the candidate program's plain trace, flip one
// deterministically-chosen bit, and report whether replaying the
// mutilated stream surfaces a typed error — a trace.DecodeError at
// decode, or a replay-divergence / corrupt-trace verdict at run time.
// Candidates where the flip lands in dead payload (replay succeeds
// cleanly) or that cannot even record return false, so Shrink treats
// them as "does not reproduce".
func (r *Runner) ReplayCorruptionFails(p *mir.Program, seed int64) bool {
	data, _, err := core.RecordTrace(p, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps})
	if err != nil {
		return false
	}
	if len(data) == 0 {
		return false
	}
	// Flip a bit past the header, mid-stream: position derives only
	// from the trace length, so the same candidate always mutates the
	// same way.
	pos := len(data) / 2
	data[pos] ^= 0x10
	tr, derr := trace.Decode(data)
	if derr != nil {
		var de *trace.DecodeError
		return errors.As(derr, &de) // typed decode rejection reproduces
	}
	_, rerr := core.RunPlain(p, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps, ReplayTrace: tr})
	if rerr == nil {
		return false
	}
	var re *vm.RunError
	if !errors.As(rerr, &re) {
		return false
	}
	return strings.Contains(re.Msg, "replay divergence") || strings.Contains(re.Msg, "corrupt trace")
}
