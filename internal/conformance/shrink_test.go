package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/mir"
)

// perturbedFails builds the fail predicate for the deliberately broken
// compiler: uaf's verdicts must differ between DefaultOptions (where
// coalescing exists for the perturbed template hook to corrupt) and
// DSOnlyOptions.
func perturbedFails(r *Runner) func(*mir.Program) bool {
	full := compiler.DefaultOptions()
	dsonly := compiler.DSOnlyOptions()
	return func(p *mir.Program) bool {
		a, err1 := r.RunProg(p, "uaf", full, 1)
		b, err2 := r.RunProg(p, "uaf", dsonly, 1)
		return err1 == nil && err2 == nil && !a.equal(b)
	}
}

// TestShrinkerCatchesPerturbedCoalescing is the acceptance check for
// the whole loop: a deliberately broken optimization (coalesced group
// templates perturbed through the test-only compiler hook) must be
// (a) caught by the differential runner and (b) shrunk to a tiny
// reproducer.
func TestShrinkerCatchesPerturbedCoalescing(t *testing.T) {
	compiler.TestPerturbCoalescedTemplates = true
	defer func() { compiler.TestPerturbCoalescedTemplates = false }()
	// Fresh runner: its compile memo must only ever see the perturbed
	// compiler (and the process-global compile cache is never used by
	// conformance, so the poison stays contained).
	r := NewRunner()

	w := GenerateCfg(7, GenConfig{Actions: 12, Uniform: true, Bugs: true})
	ms, err := r.CheckAnalysis(w, "uaf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("perturbed coalescing not caught by the differential runner")
	}

	fails := perturbedFails(r)
	if !fails(w.Prog) {
		t.Fatal("fail predicate does not reproduce on the full workload")
	}
	shrunk := Shrink(w.Prog, fails)
	if !fails(shrunk) {
		t.Fatal("shrunk program no longer fails")
	}
	if err := shrunk.Verify(); err != nil {
		t.Fatalf("shrunk program fails verification: %v", err)
	}
	if n := shrunk.InstrCount(); n > 20 {
		t.Fatalf("shrunk to %d instructions, want <= 20:\n%s", n, shrunk.String())
	}
	t.Logf("shrunk to %d instructions:\n%s", shrunk.InstrCount(), shrunk.String())

	// The reproducer must survive the testdata round trip.
	dir := t.TempDir()
	path, err := WriteRepro(dir, ms[0], shrunk)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mir.ParseText(string(data))
	if err != nil {
		t.Fatalf("repro does not re-parse: %v", err)
	}
	if !fails(back) {
		t.Fatal("re-parsed repro no longer fails")
	}
}

// TestShrinkBudget: the shrinker must terminate even when everything
// "fails" (a pathological predicate), bounded by its budget.
func TestShrinkBudget(t *testing.T) {
	w := GenerateCfg(11, GenConfig{Actions: 20, Uniform: true})
	n := 0
	shrunk := Shrink(w.Prog, func(p *mir.Program) bool { n++; return true })
	if n > 3100 {
		t.Fatalf("budget not enforced: %d candidate evaluations", n)
	}
	// Everything non-terminator can go.
	if got := len(deletable(shrunk)); got != 0 {
		t.Fatalf("all-fail predicate should shrink to terminators only, %d left:\n%s", got, shrunk.String())
	}
}

// TestRepros replays every checked-in reproducer: each one documents a
// bug that is now fixed, so the full conformance invariants must hold
// on it (ablation across all analyses, and schedule invariance, the
// property the first checked-in repro was reduced from).
func TestRepros(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repros", "*.mir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in reproducers found")
	}
	r := NewRunner()
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			p, err := mir.ParseText(string(data))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			w := &Workload{
				Name:     strings.TrimSuffix(filepath.Base(f), ".mir"),
				Prog:     p,
				Threaded: true, // replay schedule invariance too
			}
			ms, err := r.Check(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				t.Errorf("%s", m)
			}
		})
	}
}
