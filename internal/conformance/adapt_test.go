package conformance

import (
	"os"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/mir"
)

// adaptConformAnalyses are the adaptive axis's analyses: the
// profile-guided showcase (msan: hot shadow map + cold size sidecar),
// a pure-shadow analysis (uaf) and a map-heavy one with external calls
// (fasttrack). Every shipped analysis runs the static axes in
// TestConform; the adaptive axis needs the container-shape classes,
// not the full roster.
var adaptConformAnalyses = []string{"msan", "uaf", "fasttrack"}

// TestAdaptConform is the adaptive-PGO conformance sweep (`make
// adapt-conform` runs it at 200 seeds): for every generated workload,
// adapting to the workload's own profile must not change any verdict,
// on either engine, and neither must the profiling build that collects
// the profile.
func TestAdaptConform(t *testing.T) {
	r := NewRunner()
	for seed := uint64(0); seed < uint64(*conformSeeds); seed++ {
		seed := seed
		w := Generate(seed)
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, name := range adaptConformAnalyses {
				ms, err := r.CheckAdaptive(w, name)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range ms {
					t.Errorf("%s", m)
				}
			}
		})
	}
}

// adaptivePerturbedFails builds the shrinker fail predicate for the
// perturbed adapted compiler: uaf's verdicts under the (perturbed)
// profile-adapted compile must differ from the static full build. The
// adapted options — and with them the training profile — stay FIXED
// while ddmin shrinks the program: the divergence is a property of the
// adapted compile, and recomputing the profile from ever-smaller
// candidates would chase a moving target.
func adaptivePerturbedFails(t *testing.T, r *Runner, adapted compiler.Options) func(*mir.Program) bool {
	t.Helper()
	src, err := analyses.Source("uaf")
	if err != nil {
		t.Fatal(err)
	}
	a, err := compiler.Compile(src, adapted) // compiled once, perturbed
	if err != nil {
		t.Fatal(err)
	}
	analyses.RegisterExternals(a)
	full := compiler.DefaultOptions()
	return func(p *mir.Program) bool {
		ref, err1 := r.RunProg(p, "uaf", full, 1)
		res, rerr := core.RunAnalysis(p, a, core.RunOptions{Seed: 1, MaxSteps: r.MaxSteps})
		got, err2 := outcomeOf(res, rerr)
		return err1 == nil && err2 == nil && !got.equal(ref)
	}
}

// TestShrinkAdaptiveDivergence closes the debugging loop for the new
// axis: a deliberately broken adapted compile (profile-carrying group
// templates perturbed through the test-only hook) must be caught by
// CheckAdaptive and shrunk to a tiny reproducer that survives the
// testdata round trip.
func TestShrinkAdaptiveDivergence(t *testing.T) {
	// Seed 3 is the smallest shape whose uaf profile has a genuinely
	// cold member (allocSize: 3 accesses vs freed's 151), so the
	// adaptation performs a real cold split for the hook to corrupt.
	// uaf is the verdict-sensitive target: the perturbed template marks
	// untouched granules freed, so every load asserts.
	w := GenerateCfg(3, GenConfig{Actions: 12, Uniform: true, Bugs: true})

	// Train on the unperturbed compiler: the profile (and the Changed
	// adaptation it induces) is the fixture the perturbation corrupts.
	prof, err := NewRunner().profileOf(w, "uaf")
	if err != nil {
		t.Fatal(err)
	}
	ares := compiler.DefaultOptions().AdaptOptions(prof)
	if !ares.Changed {
		t.Fatalf("training workload produced no cold split; profile: %v", prof)
	}

	compiler.TestPerturbAdaptedTemplates = true
	defer func() { compiler.TestPerturbAdaptedTemplates = false }()
	// Fresh runner: its memo must only ever see the perturbed compiler,
	// and conformance never touches the process-global compile cache.
	r := NewRunner()

	ms, err := r.CheckAdaptive(w, "uaf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("perturbed adapted templates not caught by the adaptive axis")
	}

	fails := adaptivePerturbedFails(t, r, ares.Opts)
	if !fails(w.Prog) {
		t.Fatal("fail predicate does not reproduce on the full workload")
	}
	shrunk := Shrink(w.Prog, fails)
	if !fails(shrunk) {
		t.Fatal("shrunk program no longer fails")
	}
	if err := shrunk.Verify(); err != nil {
		t.Fatalf("shrunk program fails verification: %v", err)
	}
	if n := shrunk.InstrCount(); n > 20 {
		t.Fatalf("shrunk to %d instructions, want <= 20:\n%s", n, shrunk.String())
	}
	t.Logf("shrunk to %d instructions:\n%s", shrunk.InstrCount(), shrunk.String())

	dir := t.TempDir()
	path, err := WriteRepro(dir, ms[0], shrunk)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mir.ParseText(string(data))
	if err != nil {
		t.Fatalf("repro does not re-parse: %v", err)
	}
	if !fails(back) {
		t.Fatal("re-parsed repro no longer fails")
	}
}
