package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/mir"
)

// Shrink delta-debugs a failing program down to a minimal reproducer:
// the smallest program (it can find) for which fails still returns
// true. fails must treat every infrastructure error as "does not fail"
// so candidates that trap or stop compiling are simply rejected.
//
// Three reduction passes run to a fixpoint:
//
//   - drop whole functions that are no longer referenced
//   - ddmin over non-terminator instructions (deleting an instruction
//     is always register-safe: unwritten registers read 0, so Verify
//     keeps passing and the VM stays deterministic)
//   - shrink constants (halve immediates and allocation sizes, keeping
//     sizes word-multiples)
//
// The fails budget caps total candidate evaluations so a pathological
// predicate cannot hang a test run.
func Shrink(p *mir.Program, fails func(*mir.Program) bool) *mir.Program {
	s := &shrinker{fails: fails, budget: 3000}
	cur := p.Clone()
	for {
		changed := false
		if c, ok := s.dropFuncs(cur); ok {
			cur, changed = c, true
		}
		if c, ok := s.ddminInstrs(cur); ok {
			cur, changed = c, true
		}
		if c, ok := s.shrinkConsts(cur); ok {
			cur, changed = c, true
		}
		if !changed || s.budget <= 0 {
			return cur
		}
	}
}

type shrinker struct {
	fails  func(*mir.Program) bool
	budget int
}

func (s *shrinker) try(p *mir.Program) bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	if p.Verify() != nil {
		return false
	}
	return s.fails(p)
}

// dropFuncs removes non-entry functions that nothing references.
func (s *shrinker) dropFuncs(p *mir.Program) (*mir.Program, bool) {
	refs := make(map[string]int)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Callee != "" {
					refs[in.Callee]++
				}
			}
		}
	}
	changed := false
	cur := p
	var names []string
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == p.Entry || refs[name] > 0 {
			continue
		}
		cand := cur.Clone()
		delete(cand.Funcs, name)
		if s.try(cand) {
			cur, changed = cand, true
		}
	}
	return cur, changed
}

// instrPos addresses one instruction.
type instrPos struct {
	fn    string
	block int
	idx   int
}

// deletable lists non-terminator instruction positions in a stable
// order.
func deletable(p *mir.Program) []instrPos {
	var names []string
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []instrPos
	for _, name := range names {
		f := p.Funcs[name]
		for bi, b := range f.Blocks {
			for ii, in := range b.Instrs {
				if in.Op.IsTerminator() {
					continue
				}
				out = append(out, instrPos{name, bi, ii})
			}
		}
	}
	return out
}

// without rebuilds the program with the given positions removed.
func without(p *mir.Program, drop map[instrPos]bool) *mir.Program {
	out := p.Clone()
	for name, f := range out.Funcs {
		for bi := range f.Blocks {
			kept := f.Blocks[bi].Instrs[:0]
			for ii, in := range f.Blocks[bi].Instrs {
				if !drop[instrPos{name, bi, ii}] {
					kept = append(kept, in)
				}
			}
			f.Blocks[bi].Instrs = kept
		}
	}
	return out
}

// ddminInstrs is the classic ddmin loop over deletable instructions:
// try removing chunks, halving the chunk size until single
// instructions.
func (s *shrinker) ddminInstrs(p *mir.Program) (*mir.Program, bool) {
	cur := p
	changed := false
	for chunk := len(deletable(cur)) / 2; chunk >= 1; {
		items := deletable(cur)
		removedAny := false
		for lo := 0; lo < len(items); lo += chunk {
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			drop := make(map[instrPos]bool, hi-lo)
			for _, pos := range items[lo:hi] {
				drop[pos] = true
			}
			cand := without(cur, drop)
			if s.try(cand) {
				cur, changed, removedAny = cand, true, true
				// Positions shifted; restart this granularity.
				break
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return cur, changed
}

// shrinkConsts halves OpConst immediates and OpAlloca sizes (keeping
// allocation sizes positive word multiples).
func (s *shrinker) shrinkConsts(p *mir.Program) (*mir.Program, bool) {
	cur := p
	changed := false
	for {
		improved := false
		for _, name := range funcNames(cur) {
			f := cur.Funcs[name]
			for bi := range f.Blocks {
				for ii := range f.Blocks[bi].Instrs {
					in := &f.Blocks[bi].Instrs[ii]
					var next int64
					switch {
					case in.Op == mir.OpConst && in.Imm > 1:
						next = in.Imm / 2
					case in.Op == mir.OpAlloca && in.Imm > 8:
						next = (in.Imm / 2) &^ 7
						if next < 8 {
							next = 8
						}
					default:
						continue
					}
					cand := cur.Clone()
					cand.Funcs[name].Blocks[bi].Instrs[ii].Imm = next
					if s.try(cand) {
						cur, changed, improved = cand, true, true
					}
				}
			}
		}
		if !improved {
			return cur, changed
		}
	}
}

func funcNames(p *mir.Program) []string {
	var names []string
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteRepro stores a shrunk reproducer as round-trippable MIR text
// with a comment header describing the broken invariant. The parser
// skips comments, so the file re-loads with mir.ParseText.
func WriteRepro(dir string, m Mismatch, shrunk *mir.Program) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// conformance reproducer: %s property broken\n", m.Property)
	fmt.Fprintf(&b, "// workload %s (seed %d), analysis %s, %s vs %s\n", m.Workload, m.Seed, m.Analysis, m.Ref, m.Got)
	fmt.Fprintf(&b, "// reproduce: go test ./internal/conformance -run TestRepros\n")
	b.WriteString(shrunk.String())
	name := fmt.Sprintf("%s_%s_%s.mir", m.Workload, m.Analysis, m.Property)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
