package conformance

import (
	"flag"
	"testing"
)

// -conform-seeds scales the sweep: tier-1 `go test` uses a small fixed
// corpus; `make conform` runs 200; a nightly job can go higher. Seeds
// are 0..N-1, so every sweep is a superset of the smaller ones.
var conformSeeds = flag.Int("conform-seeds", 24, "number of generated workloads for TestConform")

// TestConform is the differential sweep: every generated workload,
// every shipped analysis, every applicable ablation configuration,
// plus oracle legs and schedule invariance for threaded workloads.
func TestConform(t *testing.T) {
	r := NewRunner()
	for seed := uint64(0); seed < uint64(*conformSeeds); seed++ {
		seed := seed
		w := Generate(seed)
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			ms, err := r.Check(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				t.Errorf("%s", m)
			}
		})
	}
}

// TestConformCombined covers the fusion and union metamorphic
// properties on a slice of the corpus (the combined analysis compiles
// once; per-workload cost is instrumentation + runs).
func TestConformCombined(t *testing.T) {
	r := NewRunner()
	n := uint64(*conformSeeds) / 2
	if n == 0 {
		n = 1
	}
	for seed := uint64(0); seed < n; seed++ {
		seed := seed
		w := Generate(seed)
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			ms, err := r.CheckCombined(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				t.Errorf("%s", m)
			}
		})
	}
}
