package conformance

import (
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/mir"
)

// replayAnalyses is the analysis set the replay axis sweeps. A subset
// of the shipped analyses with distinct hook shapes (per-access,
// lockset, alloc/free) keeps the default sweep inside tier-1 budget;
// `make replay-conform` widens the seed count instead.
var replayAnalyses = []string{"uaf", "eraser", "msan"}

// TestReplayConform is the replay differential sweep: every generated
// workload, recorded once plain and replayed across every applicable
// ablation configuration (fanned), plus the byte-identical
// same-configuration record/replay leg.
func TestReplayConform(t *testing.T) {
	r := NewRunner()
	for seed := uint64(0); seed < uint64(*conformSeeds); seed++ {
		seed := seed
		w := Generate(seed)
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, name := range replayAnalyses {
				ms, err := r.CheckReplay(w, name)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range ms {
					t.Errorf("%s", m)
				}
			}
		})
	}
}

// TestConcurrentReplay is the -race proof for the shared-trace
// contract: one decoded Trace feeds 8 concurrent replay machines
// across 4 cached analyses (each Cursor owns its predictor state; the
// Trace itself is read-only after decode). Every replay of the same
// analysis must produce the identical outcome.
func TestConcurrentReplay(t *testing.T) {
	r := NewRunner()
	w := Generate(5)
	tr, err := r.plainTrace(w.Prog, r.SchedSeeds[0])
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"uaf", "eraser", "msan", "tainttrack"}
	const goroutines = 8
	outs := make([]siteOutcome, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, aerr := r.analysis(names[i%len(names)], compiler.DefaultOptions())
			if aerr != nil {
				errs[i] = aerr
				return
			}
			outs[i], errs[i] = siteOutcomeOf(core.RunAnalysis(w.Prog, a,
				core.RunOptions{Seed: r.SchedSeeds[0], MaxSteps: r.MaxSteps, ReplayTrace: tr}))
		}()
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if ref := outs[i%len(names)]; outs[i] != ref {
			t.Errorf("goroutine %d (%s) disagrees with first replay of same analysis:\n--- first:\n%s\n--- got:\n%s",
				i, names[i%len(names)], ref, outs[i])
		}
	}
}

// TestShrinkReplayDivergence extends the ddmin shrinker to
// trace-robustness reproducers: find a workload whose corrupted trace
// surfaces a typed replay error, shrink the program under that
// predicate, and require the minimized program to still reproduce (and
// still verify).
func TestShrinkReplayDivergence(t *testing.T) {
	r := NewRunner()
	seed := r.SchedSeeds[0]
	var prog *mir.Program
	for ws := uint64(0); ws < 32; ws++ {
		w := Generate(ws)
		if r.ReplayCorruptionFails(w.Prog, seed) {
			prog = w.Prog
			break
		}
	}
	if prog == nil {
		t.Fatal("no workload in 32 seeds reproduces a typed replay-corruption error")
	}
	shrunk := Shrink(prog, func(p *mir.Program) bool {
		return r.ReplayCorruptionFails(p, seed)
	})
	if err := shrunk.Verify(); err != nil {
		t.Fatalf("shrunk program fails verification: %v", err)
	}
	if !r.ReplayCorruptionFails(shrunk, seed) {
		t.Fatal("shrunk program no longer reproduces the typed replay error")
	}
	if is, was := instrCount(shrunk), instrCount(prog); is > was {
		t.Errorf("shrink grew the program: %d -> %d instructions", was, is)
	}
}

func instrCount(p *mir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
