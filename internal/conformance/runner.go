package conformance

import (
	"fmt"
	"sync"

	"repro/internal/analyses"
	"repro/internal/baselines"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/trace"
	"repro/internal/vm"
)

// CombinedNames is the paper's §6.4.2 four-way combination — the one
// set of shipped analyses with no shadow-result conflict (msan and
// tainttrack both claim the load result and cannot combine).
var CombinedNames = []string{"eraser", "fasttrack", "uaf", "tainttrack"}

// oracles maps analysis names to their hand-written counterparts in
// internal/baselines. Oracle verdicts are the third leg of the
// cross-check: ALDA compilation and hand implementation must agree.
var oracles = map[string]func() baselines.Baseline{
	"eraser": func() baselines.Baseline { return baselines.NewEraser() },
	"msan":   func() baselines.Baseline { return baselines.NewMSan(1 << 28) },
	"uaf":    func() baselines.Baseline { return baselines.NewUAF() },
}

// Mismatch is one broken invariant: the same workload under the same
// analysis produced different verdicts under two configurations (or
// disagreed with its oracle / its combined form / itself under another
// schedule seed).
type Mismatch struct {
	Workload string
	Seed     uint64
	Analysis string
	Property string // "ablation", "oracle", "schedule", "fusion", "union", "replay", "replay-exact"
	Ref, Got string // configuration (or leg) names
	Detail   string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("%s/%s %s: %s vs %s:\n%s", m.Workload, m.Analysis, m.Property, m.Ref, m.Got, m.Detail)
}

// outcome is everything a configuration must reproduce byte-identically.
type outcome struct {
	canon   string // Canon of the report set
	verdict string // VerdictCanon (for oracle legs)
	exit    uint64
	errKind string // RunError kind name, "" on success
}

func (o outcome) String() string {
	return fmt.Sprintf("exit=%d err=%q reports:\n%s", o.exit, o.errKind, o.canon)
}

func (o outcome) equal(p outcome) bool {
	return o.canon == p.canon && o.exit == p.exit && o.errKind == p.errKind
}

func diff(ref, got outcome) string {
	return "--- ref:\n" + ref.String() + "\n--- got:\n" + got.String()
}

// Runner executes workloads across the ablation matrix. It memoizes
// compilation locally instead of using compiler.CachedCompile: the
// process-wide cache keys on Options.Fingerprint only, and conformance
// tests deliberately perturb compilation through test-only hooks the
// fingerprint knows nothing about — a poisoned global cache would leak
// into every other test in the process. Create a fresh Runner after
// toggling any compiler test hook.
type Runner struct {
	// SchedSeeds are the VM scheduler seeds for the schedule-invariance
	// property; SchedSeeds[0] is the seed every other check runs under.
	SchedSeeds []int64
	// MaxSteps bounds every VM execution. Generated workloads finish in
	// thousands of steps, so the default (4M) leaves three orders of
	// magnitude of headroom — enough that instrumentation overhead can
	// never push a legitimate workload over the cap in one config but
	// not another — while shrinker candidates that accidentally build
	// infinite loops fail fast with a deterministic StepLimit error
	// instead of hanging the test binary.
	MaxSteps uint64

	mu       sync.Mutex
	compiled map[string]*compiler.Analysis

	// traces memoizes each workload program's plain recorded trace (one
	// record per workload, fanned out across every replay leg).
	traceMu sync.Mutex
	traces  map[*mir.Program]*trace.Trace
}

// NewRunner returns a Runner with the default schedule seeds.
func NewRunner() *Runner {
	return &Runner{
		SchedSeeds: []int64{1, 7, 1337},
		MaxSteps:   4 << 20,
		compiled:   make(map[string]*compiler.Analysis),
		traces:     make(map[*mir.Program]*trace.Trace),
	}
}

func (r *Runner) analysis(name string, opts compiler.Options) (*compiler.Analysis, error) {
	key := name + "\x00" + opts.Fingerprint()
	r.mu.Lock()
	a := r.compiled[key]
	r.mu.Unlock()
	if a != nil {
		return a, nil
	}
	src, err := analyses.Source(name)
	if err != nil {
		return nil, err
	}
	a, err = compiler.Compile(src, opts)
	if err != nil {
		return nil, fmt.Errorf("conformance: compile %s: %w", name, err)
	}
	analyses.RegisterExternals(a)
	r.mu.Lock()
	r.compiled[key] = a
	r.mu.Unlock()
	return a, nil
}

// combined compiles the concatenation of names under opts (memoized
// like single analyses).
func (r *Runner) combined(opts compiler.Options, names ...string) (*compiler.Analysis, error) {
	key := "combined"
	for _, n := range names {
		key += "+" + n
	}
	key += "\x00" + opts.Fingerprint()
	r.mu.Lock()
	a := r.compiled[key]
	r.mu.Unlock()
	if a != nil {
		return a, nil
	}
	src, err := analyses.Combined(names...)
	if err != nil {
		return nil, err
	}
	a, err = compiler.Compile(src, opts)
	if err != nil {
		return nil, fmt.Errorf("conformance: compile combined: %w", err)
	}
	analyses.RegisterExternals(a)
	r.mu.Lock()
	r.compiled[key] = a
	r.mu.Unlock()
	return a, nil
}

func outcomeOf(res *vm.Result, err error) (outcome, error) {
	var o outcome
	if err != nil {
		re, ok := err.(*vm.RunError)
		if !ok {
			return o, err // infrastructure failure, not a VM verdict
		}
		o.errKind = re.Kind.String()
		return o, nil
	}
	o.canon = Canon(res.Reports)
	o.verdict = VerdictCanon(res.Reports)
	o.exit = res.Exit
	return o, nil
}

// RunProg executes an arbitrary program under one compiled analysis
// configuration — the building block for Check and for shrinker fail
// predicates.
func (r *Runner) RunProg(p *mir.Program, name string, opts compiler.Options, seed int64) (outcome, error) {
	a, err := r.analysis(name, opts)
	if err != nil {
		return outcome{}, err
	}
	res, rerr := core.RunAnalysis(p, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps})
	return outcomeOf(res, rerr)
}

// runOne executes w under one compiled analysis configuration.
func (r *Runner) runOne(w *Workload, name string, opts compiler.Options, seed int64) (outcome, error) {
	o, err := r.RunProg(w.Prog, name, opts, seed)
	if err != nil {
		return o, fmt.Errorf("%s/%s: %w", w.Name, name, err)
	}
	return o, nil
}

// runOracle executes w under a hand-written baseline.
func (r *Runner) runOracle(w *Workload, name string, seed int64) (outcome, error) {
	res, rerr := core.RunBaseline(w.Prog, oracles[name], core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps})
	o, err := outcomeOf(res, rerr)
	if err != nil {
		return o, fmt.Errorf("%s/%s-oracle: %w", w.Name, name, err)
	}
	return o, nil
}

// configsFor returns the ablation matrix applicable to w: granularity
// variants only make sense for word-aligned (Uniform) workloads.
func configsFor(w *Workload) []compiler.NamedOptions {
	all := compiler.AblationMatrix()
	if w.Uniform {
		return all
	}
	var out []compiler.NamedOptions
	for _, c := range all {
		if !c.GranularityVariant {
			out = append(out, c)
		}
	}
	return out
}

// CheckAnalysis runs w under every configuration of one analysis plus
// its oracle (if any) and returns the broken invariants.
func (r *Runner) CheckAnalysis(w *Workload, name string) ([]Mismatch, error) {
	var ms []Mismatch
	cfgs := configsFor(w)
	seed := r.SchedSeeds[0]

	ref, err := r.runOne(w, name, cfgs[0].Opts, seed)
	if err != nil {
		return nil, err
	}
	for _, c := range cfgs[1:] {
		got, err := r.runOne(w, name, c.Opts, seed)
		if err != nil {
			return nil, err
		}
		if !got.equal(ref) {
			ms = append(ms, Mismatch{
				Workload: w.Name, Seed: w.Seed, Analysis: name,
				Property: "ablation", Ref: cfgs[0].Name, Got: c.Name,
				Detail: diff(ref, got),
			})
		}
	}

	if factory := oracles[name]; factory != nil {
		oo, err := r.runOracle(w, name, seed)
		if err != nil {
			return nil, err
		}
		if oo.verdict != ref.verdict || oo.exit != ref.exit || oo.errKind != ref.errKind {
			ms = append(ms, Mismatch{
				Workload: w.Name, Seed: w.Seed, Analysis: name,
				Property: "oracle", Ref: cfgs[0].Name, Got: name + "-hand",
				Detail: "--- alda:\n" + ref.verdict + "\n--- hand:\n" + oo.verdict +
					fmt.Sprintf("\n(exit %d vs %d, err %q vs %q)", ref.exit, oo.exit, ref.errKind, oo.errKind),
			})
		}
	}
	return ms, nil
}

// CheckSchedules asserts schedule-seed invariance: generated workloads
// are race-free by construction, so every scheduler seed must yield the
// same verdicts and exit value.
func (r *Runner) CheckSchedules(w *Workload, name string) ([]Mismatch, error) {
	var ms []Mismatch
	opts := compiler.DefaultOptions()
	ref, err := r.runOne(w, name, opts, r.SchedSeeds[0])
	if err != nil {
		return nil, err
	}
	for _, s := range r.SchedSeeds[1:] {
		got, err := r.runOne(w, name, opts, s)
		if err != nil {
			return nil, err
		}
		if !got.equal(ref) {
			ms = append(ms, Mismatch{
				Workload: w.Name, Seed: w.Seed, Analysis: name,
				Property: "schedule",
				Ref:      fmt.Sprintf("vmseed=%d", r.SchedSeeds[0]),
				Got:      fmt.Sprintf("vmseed=%d", s),
				Detail:   diff(ref, got),
			})
		}
	}
	return ms, nil
}

// CheckCombined asserts the two combined-analysis properties of §6.4.2:
// the fused combination equals the unfused one (fusion is transparent),
// and the combination reports exactly the union of its parts.
func (r *Runner) CheckCombined(w *Workload) ([]Mismatch, error) {
	var ms []Mismatch
	seed := r.SchedSeeds[0]
	runCombined := func(opts compiler.Options) (outcome, error) {
		a, err := r.combined(opts, CombinedNames...)
		if err != nil {
			return outcome{}, err
		}
		res, rerr := core.RunAnalysis(w.Prog, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps})
		o, err := outcomeOf(res, rerr)
		if err != nil {
			return o, fmt.Errorf("%s/combined: %w", w.Name, err)
		}
		return o, nil
	}

	ref, err := runCombined(compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	for _, c := range []compiler.NamedOptions{
		{Name: "nofuse", Opts: compiler.NoFuseOptions()},
		{Name: "dsonly", Opts: compiler.DSOnlyOptions()},
	} {
		got, err := runCombined(c.Opts)
		if err != nil {
			return nil, err
		}
		if !got.equal(ref) {
			ms = append(ms, Mismatch{
				Workload: w.Name, Seed: w.Seed, Analysis: "combined",
				Property: "fusion", Ref: "full", Got: c.Name,
				Detail: diff(ref, got),
			})
		}
	}

	var parts []string
	for _, name := range CombinedNames {
		o, err := r.runOne(w, name, compiler.DefaultOptions(), seed)
		if err != nil {
			return nil, err
		}
		parts = append(parts, o.canon)
	}
	if union := mergeCanon(parts...); union != ref.canon {
		ms = append(ms, Mismatch{
			Workload: w.Name, Seed: w.Seed, Analysis: "combined",
			Property: "union", Ref: "combined", Got: "union-of-singles",
			Detail: "--- combined:\n" + ref.canon + "\n--- union:\n" + union,
		})
	}
	return ms, nil
}

// Check runs every conformance property of one workload across the
// given analyses (all shipped analyses when names is empty).
func (r *Runner) Check(w *Workload, names ...string) ([]Mismatch, error) {
	if len(names) == 0 {
		names = analyses.Names()
	}
	var ms []Mismatch
	for _, name := range names {
		m, err := r.CheckAnalysis(w, name)
		if err != nil {
			return ms, err
		}
		ms = append(ms, m...)
		if w.Threaded {
			m, err = r.CheckSchedules(w, name)
			if err != nil {
				return ms, err
			}
			ms = append(ms, m...)
		}
	}
	return ms, nil
}
