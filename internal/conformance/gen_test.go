package conformance

import (
	"testing"

	"repro/internal/core"
)

// TestGenerateDeterministic: same seed, byte-identical program text.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := Generate(seed)
		b := Generate(seed)
		if a.Prog.String() != b.Prog.String() {
			t.Fatalf("seed %d: non-deterministic generation", seed)
		}
		if a.Cfg != b.Cfg || a.Uniform != b.Uniform {
			t.Fatalf("seed %d: non-deterministic shape", seed)
		}
	}
}

// TestGenerateVerifies: every generated program is verifier-clean and
// runs to completion uninstrumented.
func TestGenerateVerifies(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		w := Generate(seed)
		if err := w.Prog.Verify(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.Prog.String())
		}
		res, err := core.RunPlain(w.Prog, core.RunOptions{Seed: 1})
		if err != nil {
			t.Fatalf("seed %d: plain run failed: %v\n%s", seed, err, w.Prog.String())
		}
		if res.Steps == 0 {
			t.Fatalf("seed %d: empty program", seed)
		}
	}
}

// TestGenerateExitDeterministic: the exit checksum must not depend on
// the scheduler seed (the generator's race-freedom discipline).
func TestGenerateExitDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		w := Generate(seed)
		if !w.Threaded {
			continue
		}
		r1, err := core.RunPlain(w.Prog, core.RunOptions{Seed: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := core.RunPlain(w.Prog, core.RunOptions{Seed: 99})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r1.Exit != r2.Exit {
			t.Fatalf("seed %d: exit differs across schedules: %d vs %d\n%s",
				seed, r1.Exit, r2.Exit, w.Prog.String())
		}
	}
}

// TestGenerateShapes: the seed stream must exercise every generator
// dimension (threads, bugs, uniform and mixed-width) within a modest
// seed range, or conformance coverage silently narrows.
func TestGenerateShapes(t *testing.T) {
	var threaded, bugged, uniform, mixed int
	for seed := uint64(0); seed < 200; seed++ {
		w := Generate(seed)
		if w.Threaded {
			threaded++
		}
		if len(w.Bugs) > 0 {
			bugged++
		}
		if w.Uniform {
			uniform++
		} else {
			mixed++
		}
	}
	for name, n := range map[string]int{
		"threaded": threaded, "bugged": bugged, "uniform": uniform, "mixed": mixed,
	} {
		if n < 20 {
			t.Errorf("shape %s hit only %d/200 seeds", name, n)
		}
	}
}
