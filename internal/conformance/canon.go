package conformance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vm"
)

// Canon serializes a report set to a canonical byte-comparable form:
// one line per distinct finding, sorted. The projection keeps what the
// compilation configuration must preserve — which assertion fired, with
// what values, at which function/block, how many times — and drops what
// it legitimately changes: pc (hook insertion shifts instruction
// indices), Step (fused hooks execute in fewer steps) and the pc-bearing
// Where/Trace strings.
func Canon(reports []*vm.Report) string {
	lines := make([]string, len(reports))
	for i, r := range reports {
		lines[i] = fmt.Sprintf("%s|%s|%d|%d|%s|b%d|x%d",
			r.Analysis, r.Message, int64(r.Got), int64(r.Expected), r.Fn, r.Block, r.Count)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// VerdictCanon is Canon minus the analysis name — the projection for
// comparing an ALDA analysis against its hand-written oracle, which
// files reports under its own name ("uaf-hand") but must agree on
// everything else: message, values, site and count.
func VerdictCanon(reports []*vm.Report) string {
	lines := make([]string, len(reports))
	for i, r := range reports {
		lines[i] = fmt.Sprintf("%s|%d|%d|%s|b%d|x%d",
			r.Message, int64(r.Got), int64(r.Expected), r.Fn, r.Block, r.Count)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// SiteCanon is Canon minus the occurrence count — the projection that
// survives a schedule change. Replaying the plain program's trace into
// an instrumented clone is such a change: hook dispatches ride quanta
// framed without them, an interleaving no live scheduler seed
// produces, so report sites, messages and values are preserved but
// occurrence tallies on racy sites are not. Same-configuration replay
// needs no projection at all — it is byte-identical.
func SiteCanon(reports []*vm.Report) string {
	lines := make([]string, len(reports))
	for i, r := range reports {
		lines[i] = fmt.Sprintf("%s|%s|%d|%d|%s|b%d",
			r.Analysis, r.Message, int64(r.Got), int64(r.Expected), r.Fn, r.Block)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// mergeCanon unions canonical report sets (the fusion-vs-separate
// equivalence: a combined analysis must report exactly the union of its
// parts, and handler names are unique per analysis, so plain line-merge
// is the union).
func mergeCanon(canons ...string) string {
	var lines []string
	for _, c := range canons {
		if c == "" {
			continue
		}
		lines = append(lines, strings.Split(c, "\n")...)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
