package conformance

import (
	"errors"
	"fmt"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/mir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// The adaptive axis closes the adaptive-PGO loop as a conformance
// property: for any workload, profiling it, folding its own profile
// through compiler.AdaptOptions, and running the adapted recompile
// must reproduce the static full configuration's outcome byte for
// byte — reports, exit value and error kind — on both execution
// engines. The profiling build itself (access counters enabled) is a
// third leg under the same identity, so neither half of the adaptive
// loop can perturb verdicts.

// adaptEngineConfigs are the static references the adaptive legs must
// match, one per execution tier.
func adaptEngineConfigs() []compiler.NamedOptions {
	return []compiler.NamedOptions{
		{Name: "full", Opts: compiler.DefaultOptions()},
		{Name: "full-thr", Opts: compiler.DefaultOptions().WithEngine(vm.EngineThreaded)},
	}
}

// profileOf collects w's per-member access profile for one analysis by
// running the ProfileCollect build with a private metrics shard. The
// collecting build is memoized through the Runner's local compile memo
// (never the process-wide cache: conformance perturbs compilation via
// test hooks the global fingerprint knows nothing about). A run that
// dies with a VM verdict (trap, budget) yields the empty profile — the
// adaptive loop degrades to static selection exactly as the harness
// does for unusable profiles.
func (r *Runner) profileOf(w *Workload, name string) (*compiler.Profile, error) {
	opts := compiler.DefaultOptions()
	opts.ProfileCollect = true
	a, err := r.analysis(name, opts)
	if err != nil {
		return nil, err
	}
	sh := obs.NewShard()
	_, rerr := core.RunAnalysis(w.Prog, a, core.RunOptions{
		Seed: r.SchedSeeds[0], MaxSteps: r.MaxSteps, Metrics: sh,
	})
	if rerr != nil {
		var re *vm.RunError
		if !errors.As(rerr, &re) {
			return nil, fmt.Errorf("%s/%s profile: %w", w.Name, name, rerr)
		}
		return &compiler.Profile{}, nil
	}
	return compiler.ProfileFromCounts(sh.Counts), nil
}

// runAdapted compiles and runs a profile-carrying configuration
// WITHOUT memoizing it: adapted options embed a per-workload profile
// hash, so memoizing them would grow the Runner's compile memo without
// bound across a 200-seed sweep or a long fuzz run. Each adapted
// compile is used exactly once here; callers that reuse one (the
// shrinker's fail predicate) compile it themselves.
func (r *Runner) runAdapted(p *mir.Program, name string, opts compiler.Options, seed int64) (outcome, error) {
	src, err := analyses.Source(name)
	if err != nil {
		return outcome{}, err
	}
	a, err := compiler.Compile(src, opts)
	if err != nil {
		return outcome{}, fmt.Errorf("conformance: compile adapted %s: %w", name, err)
	}
	analyses.RegisterExternals(a)
	res, rerr := core.RunAnalysis(p, a, core.RunOptions{Seed: seed, MaxSteps: r.MaxSteps})
	return outcomeOf(res, rerr)
}

// CheckAdaptive runs the adaptive conformance axis for one workload and
// one analysis: static reference vs profiling build vs profile-adapted
// recompile, on both engines.
func (r *Runner) CheckAdaptive(w *Workload, name string) ([]Mismatch, error) {
	var ms []Mismatch
	seed := r.SchedSeeds[0]
	prof, err := r.profileOf(w, name)
	if err != nil {
		return nil, err
	}
	for i, c := range adaptEngineConfigs() {
		ref, err := r.runOne(w, name, c.Opts, seed)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// The profiling build (counters on, layout static) must not
			// perturb verdicts either — it runs real traffic during the
			// harness's and server's quantum. Engine-independent, so one
			// leg suffices.
			collect := c.Opts
			collect.ProfileCollect = true
			got, err := r.runOne(w, name, collect, seed)
			if err != nil {
				return nil, err
			}
			if !got.equal(ref) {
				ms = append(ms, Mismatch{
					Workload: w.Name, Seed: w.Seed, Analysis: name,
					Property: "adaptive", Ref: c.Name, Got: c.Name + "-collect",
					Detail: diff(ref, got),
				})
			}
		}
		ares := c.Opts.AdaptOptions(prof)
		if !ares.Changed {
			// No cold member: the adapted options fingerprint-equal the
			// static ones, so the leg is the reference by construction.
			continue
		}
		got, err := r.runAdapted(w.Prog, name, ares.Opts, seed)
		if err != nil {
			return nil, err
		}
		if !got.equal(ref) {
			ms = append(ms, Mismatch{
				Workload: w.Name, Seed: w.Seed, Analysis: name,
				Property: "adaptive", Ref: c.Name, Got: c.Name + "-adapted",
				Detail: diff(ref, got),
			})
		}
	}
	return ms, nil
}
