// Package conformance is the differential conformance harness: a
// seeded, deterministic MIR program generator plus a runner that
// executes every generated workload under every shipped analysis at
// every ALDAcc ablation configuration (and, for word-aligned
// workloads, every metadata granularity), asserting that the verdicts
// — canonicalized report sets, run-error kinds and exit values — are
// identical everywhere. ALDAcc's optimizations must change layout and
// speed, never meaning (§5, Figure 4); this package is the executable
// form of that claim.
package conformance

import (
	"fmt"

	"repro/internal/mir"
)

// rng is SplitMix64 — the repo's standard deterministic stream.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) n(n int) int         { return int(r.next() % uint64(n)) }
func (r *rng) chance(pct int) bool { return r.n(100) < pct }
func (r *rng) pick(ns ...int) int  { return ns[r.n(len(ns))] }

// BugKind is a deterministic defect the generator can plant. Every bug
// is observable by at least one shipped analysis and produces the same
// verdict at every configuration — bugs exercise the reporting path,
// they don't break invariance. There is deliberately no data-race bug:
// racy programs have schedule-dependent verdicts, and instrumentation
// shifts scheduling points, so races would (correctly) break
// cross-configuration comparison.
type BugKind int

// Plantable bugs.
const (
	BugUAF        BugKind = iota // heap load after free (uaf)
	BugUninit                    // branch on uninitialized heap word (msan)
	BugTaint                     // gets-derived value used as address (tainttrack)
	BugSSLMisuse                 // SSL_free without SSL_shutdown (sslsan)
	BugSSLLeak                   // SSL handle/ctx never freed (sslsan)
	BugZlibUninit                // deflate on uninitialized z_stream (zlibsan)
	BugMixedWidth                // mixed-width access, non-uniform only (strictalias)
	numBugKinds
)

var bugNames = [...]string{"uaf", "uninit", "taint", "ssl-misuse", "ssl-leak", "zlib-uninit", "mixed-width"}

func (k BugKind) String() string { return bugNames[k] }

// GenConfig shapes one generated workload.
type GenConfig struct {
	// Actions is the number of random main-body actions (allocations,
	// accesses, loops, diamonds, library sessions).
	Actions int
	// Threads adds race-free spawn/join/lock patterns.
	Threads bool
	// Bugs plants 1–2 deterministic defects.
	Bugs bool
	// Uniform restricts the program to 8-byte-aligned word accesses and
	// word-multiple allocation sizes, the discipline under which
	// analysis verdicts are invariant across metadata granularities
	// (sub-word accesses key different granules at different
	// granularities, so mixed-width programs are pinned to the default
	// granularity).
	Uniform bool
}

// Workload is one generated program plus the properties the runner
// needs to know which invariants apply.
type Workload struct {
	Name     string
	Seed     uint64
	Cfg      GenConfig
	Prog     *mir.Program
	Uniform  bool // safe for the granularity sweep
	Threaded bool
	Bugs     []BugKind
}

// Generate derives a workload shape from the seed and builds it. Same
// seed, same program — byte for byte.
func Generate(seed uint64) *Workload {
	r := newRng(seed)
	cfg := GenConfig{
		Actions: 6 + r.n(18),
		Threads: r.chance(40),
		Bugs:    r.chance(50),
		Uniform: r.chance(60),
	}
	return GenerateCfg(seed, cfg)
}

// GenerateCfg builds a workload with an explicit shape. The rng is
// re-derived from the seed, so (seed, cfg) fully determines the
// program.
func GenerateCfg(seed uint64, cfg GenConfig) *Workload {
	g := &gen{
		r:   newRng(seed ^ 0xa5a5a5a5deadbeef),
		p:   mir.NewProgram(),
		cfg: cfg,
	}
	g.b = g.p.NewFunc("main", 0)
	g.build()
	w := &Workload{
		Name:     fmt.Sprintf("w%016x", seed),
		Seed:     seed,
		Cfg:      cfg,
		Prog:     g.p,
		Uniform:  cfg.Uniform,
		Threaded: cfg.Threads,
		Bugs:     g.bugs,
	}
	return w
}

// galloc is a generated allocation the builder can target.
type galloc struct {
	reg   mir.Reg
	size  int64
	heap  bool
	freed bool
	gets  bool // holds gets() content: reads stay inside [0,16)
}

type gen struct {
	r   *rng
	p   *mir.Program
	b   *mir.FuncBuilder
	cfg GenConfig

	allocs []*galloc
	vals   []mir.Reg // clean (untainted, initialized) value registers
	sums   []mir.Reg // folded into the exit checksum
	bugs   []BugKind

	nWorkers int
}

func (g *gen) build() {
	b := g.b
	// Seed the value pool so every action has operands.
	g.vals = append(g.vals, b.Const(int64(g.r.n(1000))+1), b.Const(int64(g.r.n(97))+3))

	for i := 0; i < g.cfg.Actions; i++ {
		g.action()
	}
	if g.cfg.Threads {
		g.threadSection()
	}
	if g.cfg.Bugs {
		g.plantBugs()
	}

	// Exit checksum: fold every collected value; the runner compares
	// Result.Exit across configurations, so any value-level divergence
	// (not just report divergence) is caught.
	acc := b.Const(0)
	for _, v := range g.sums {
		acc = b.Add(mir.R(acc), mir.R(v))
	}
	b.RetVal(mir.R(acc))
}

// ---------------------------------------------------------------------------
// Value and allocation plumbing

func (g *gen) val() mir.Reg { return g.vals[g.r.n(len(g.vals))] }

func (g *gen) pushVal(v mir.Reg) {
	g.vals = append(g.vals, v)
	if g.r.chance(50) {
		g.sums = append(g.sums, v)
	}
}

// sizeFor picks an allocation size: always a multiple of 8 (the heap is
// 16-aligned, so word-multiple sizes keep granules from straddling
// allocations at any granularity), between 8 and 64 bytes.
func (g *gen) sizeFor() int64 { return int64(1+g.r.n(8)) * 8 }

// initAlloc fully initializes an allocation immediately — the
// discipline that keeps msan quiet and granularity irrelevant for
// clean memory. Heap blocks sometimes use memset (exercising the
// transfer-function handlers); everything else uses word stores.
func (g *gen) initAlloc(a *galloc) {
	b := g.b
	if a.heap && g.r.chance(40) {
		b.CallVoid("memset", mir.R(a.reg), mir.C(0), mir.C(a.size))
		return
	}
	for off := int64(0); off < a.size; off += 8 {
		p := b.Add(mir.R(a.reg), mir.C(off))
		b.Store(mir.R(p), mir.C(int64(g.r.n(128))), 8)
	}
}

// newAlloc emits a fresh initialized allocation.
func (g *gen) newAlloc(heap bool) *galloc {
	b := g.b
	size := g.sizeFor()
	a := &galloc{size: size, heap: heap}
	if !heap {
		a.reg = b.Alloca(size)
		g.initAlloc(a)
	} else {
		switch g.r.n(3) {
		case 0: // calloc arrives zeroed and unpoisoned
			a.reg = b.Call("calloc", mir.C(size/8), mir.C(8))
		default:
			a.reg = b.Call("malloc", mir.C(size))
			g.initAlloc(a)
		}
	}
	g.allocs = append(g.allocs, a)
	return a
}

// liveAlloc picks a live allocation of at least minSize bytes,
// creating one if none fits.
func (g *gen) liveAlloc(minSize int64) *galloc {
	var fit []*galloc
	for _, a := range g.allocs {
		if !a.freed && a.size >= minSize {
			fit = append(fit, a)
		}
	}
	if len(fit) == 0 {
		for {
			a := g.newAlloc(g.r.chance(60))
			if a.size >= minSize {
				return a
			}
		}
	}
	return fit[g.r.n(len(fit))]
}

// wordOff picks an 8-aligned in-bounds offset; gets-content buffers
// stay inside the deterministic first 16 bytes.
func (g *gen) wordOff(a *galloc) int64 {
	limit := a.size
	if a.gets && limit > 16 {
		limit = 16
	}
	return int64(g.r.n(int(limit/8))) * 8
}

func (g *gen) addrAt(a *galloc, off int64) mir.Reg {
	if off == 0 && g.r.chance(50) {
		return a.reg
	}
	return g.b.Add(mir.R(a.reg), mir.C(off))
}

// ---------------------------------------------------------------------------
// Actions

func (g *gen) action() {
	switch g.r.n(12) {
	case 0:
		g.newAlloc(false)
	case 1:
		g.newAlloc(true)
	case 2:
		g.actFree()
	case 3, 4:
		g.actStore()
	case 5, 6:
		g.actLoad()
	case 7:
		g.actArith()
	case 8:
		g.actLoop()
	case 9:
		g.actDiamond()
	case 10:
		g.actLibSession()
	case 11:
		g.actMemcpy()
	}
}

func (g *gen) actFree() {
	var heaps []*galloc
	for _, a := range g.allocs {
		// gets buffers stay live: the taint bug needs one, and keeping
		// them out of the freelist keeps their content region stable.
		if a.heap && !a.freed && !a.gets {
			heaps = append(heaps, a)
		}
	}
	if len(heaps) == 0 {
		return
	}
	a := heaps[g.r.n(len(heaps))]
	g.b.CallVoid("free", mir.R(a.reg))
	a.freed = true
}

// accessWidth picks an access width and a compatibly-aligned offset.
// Uniform workloads always access full words.
func (g *gen) accessWidth(a *galloc) (uint8, int64) {
	if g.cfg.Uniform {
		return 8, g.wordOff(a)
	}
	w := uint8(g.r.pick(1, 2, 4, 8))
	base := g.wordOff(a)
	slot := int64(0)
	if w < 8 {
		slot = int64(g.r.n(int(8/int64(w)))) * int64(w)
	}
	return w, base + slot
}

func (g *gen) actStore() {
	a := g.liveAlloc(8)
	w, off := g.accessWidth(a)
	p := g.addrAt(a, off)
	g.b.Store(mir.R(p), mir.R(g.val()), w)
}

func (g *gen) actLoad() {
	a := g.liveAlloc(8)
	w, off := g.accessWidth(a)
	p := g.addrAt(a, off)
	v := g.b.Load(mir.R(p), w)
	// Values read out of gets content are tainted: they must never flow
	// into an address or they would trip tainttrack's sink in "clean"
	// programs, so they go straight to the checksum instead of the
	// reusable value pool.
	if a.gets {
		g.sums = append(g.sums, v)
		return
	}
	g.pushVal(v)
}

func (g *gen) actArith() {
	b := g.b
	ops := []mir.Op{mir.OpAdd, mir.OpSub, mir.OpMul, mir.OpXor, mir.OpAnd, mir.OpOr}
	v := b.Bin(ops[g.r.n(len(ops))], mir.R(g.val()), mir.R(g.val()))
	g.pushVal(v)
}

// actLoop walks an array: for i in [0,words) { a[i] = i*k; s += a[i] }.
func (g *gen) actLoop() {
	b := g.b
	a := g.liveAlloc(16)
	words := a.size / 8
	if a.gets && words > 2 {
		words = 2
	}
	k := int64(g.r.n(9)) + 1
	cell := b.Alloca(8)
	b.Store(mir.R(cell), mir.C(0), 8)
	b.Loop(mir.C(words), func(i mir.Reg) {
		off := b.Mul(mir.R(i), mir.C(8))
		p := b.Add(mir.R(a.reg), mir.R(off))
		v := b.Mul(mir.R(i), mir.C(k))
		b.Store(mir.R(p), mir.R(v), 8)
		got := b.Load(mir.R(p), 8)
		s := b.Load(mir.R(cell), 8)
		s2 := b.Add(mir.R(s), mir.R(got))
		b.Store(mir.R(cell), mir.R(s2), 8)
	})
	sum := b.Load(mir.R(cell), 8)
	g.pushVal(sum)
}

// actDiamond branches on a clean comparison and stores a different
// constant on each arm.
func (g *gen) actDiamond() {
	b := g.b
	a := g.liveAlloc(8)
	off := g.wordOff(a)
	cond := b.Bin(mir.OpLt, mir.R(g.val()), mir.C(int64(g.r.n(500))))
	b.If(mir.R(cond), func() {
		p := g.addrAt(a, off)
		b.Store(mir.R(p), mir.C(11), 8)
	}, func() {
		p := g.addrAt(a, off)
		b.Store(mir.R(p), mir.C(22), 8)
	})
	p := b.Add(mir.R(a.reg), mir.C(off))
	g.pushVal(b.Load(mir.R(p), 8))
}

func (g *gen) actMemcpy() {
	b := g.b
	dst := g.liveAlloc(16)
	src := g.liveAlloc(16)
	if dst == src {
		return
	}
	n := dst.size
	if src.size < n {
		n = src.size
	}
	b.CallVoid("memcpy", mir.R(dst.reg), mir.R(src.reg), mir.C(n))
	if src.gets {
		// The copy moved input-derived bytes; cap reads like a gets buf.
		dst.gets = true
	}
}

// ---------------------------------------------------------------------------
// Library sessions

func (g *gen) actLibSession() {
	switch g.r.n(3) {
	case 0:
		g.getsSession()
	case 1:
		g.sslSession(true, true)
	case 2:
		g.zlibSession(true)
	}
}

// getsSession reads 16 deterministic input bytes + NUL into a buffer.
// Only main ever calls gets: the input cursor advances per call, so the
// call order must not depend on the schedule.
func (g *gen) getsSession() *galloc {
	a := g.liveAlloc(24)
	g.b.Call("gets", mir.R(a.reg)) // result register feeds the $r hooks
	a.gets = true
	if !g.cfg.Uniform {
		n := g.b.Call("strlen", mir.R(a.reg))
		g.pushVal(n)
	}
	return a
}

// sslSession runs a full OpenSSL client lifecycle; shutdown/free can be
// skipped by the SSL bug planters.
func (g *gen) sslSession(shutdown, free bool) {
	b := g.b
	ctx := b.Call("SSL_CTX_new")
	h := b.Call("SSL_new", mir.R(ctx))
	b.CallVoid("SSL_set_fd", mir.R(h), mir.C(3))
	if g.r.chance(50) {
		b.CallVoid("SSL_connect", mir.R(h))
	} else {
		b.CallVoid("SSL_accept", mir.R(h))
	}
	buf := g.liveAlloc(16)
	n := b.Call("SSL_read", mir.R(h), mir.R(buf.reg), mir.C(16))
	g.sums = append(g.sums, n)
	b.CallVoid("SSL_write", mir.R(h), mir.R(buf.reg), mir.C(16))
	// SSL_read overwrote the buffer with handle-derived raw bytes; the
	// model writes them without store hooks, so treat like gets content
	// (deterministic, but don't reuse loaded values as clean).
	buf.gets = true
	if shutdown {
		b.CallVoid("SSL_shutdown", mir.R(h))
	}
	if free {
		b.CallVoid("SSL_free", mir.R(h))
		b.CallVoid("SSL_CTX_free", mir.R(ctx))
	}
}

// zlibSession compresses an initialized buffer through the modeled
// deflate/inflate interface. init=false leaves the stream
// uninitialized for zlibsan's bug.
func (g *gen) zlibSession(init bool) {
	b := g.b
	const zStreamSize = 40 // vm.ZStreamSize
	strm := b.Alloca(zStreamSize)
	in := g.liveAlloc(32)
	out := g.liveAlloc(32)
	inflate := g.r.chance(50)

	// Field writes also initialize the stream memory for msan.
	store := func(off int64, v mir.Operand) {
		p := b.Add(mir.R(strm), mir.C(off))
		b.Store(mir.R(p), v, 8)
	}
	store(0, mir.R(in.reg))   // next_in
	store(8, mir.C(16))       // avail_in
	store(16, mir.R(out.reg)) // next_out
	store(24, mir.C(32))      // avail_out
	store(32, mir.C(0))       // total_out

	name := "deflate"
	if inflate {
		name = "inflate"
	}
	if init {
		b.CallVoid(name+"Init", mir.R(strm))
	}
	rc := b.Call(name, mir.R(strm))
	g.sums = append(g.sums, rc)
	p := b.Add(mir.R(strm), mir.C(32))
	total := b.Load(mir.R(p), 8)
	g.pushVal(total)
	if init {
		b.CallVoid(name+"End", mir.R(strm))
	}
	// The model wrote raw bytes into out; cap like gets content.
	out.gets = true
}

// ---------------------------------------------------------------------------
// Threads: race-free by construction. Racy programs have
// schedule-dependent verdicts and instrumentation shifts scheduling
// points, so only patterns whose per-granule access order is fixed (or
// whose verdict is order-independent) keep the cross-config and
// cross-seed invariants sound:
//
//   - disjoint: workers own disjoint slices of a shared calloc'd array
//   - counter:  workers increment one cell under a lock (lockset never
//     empties, so Eraser stays quiet in every schedule)
//   - handoff:  main initializes, one worker takes over after spawn
//     (Eraser's textbook init-then-handoff false positive — a
//     deterministic report, identical in every schedule and config)

func (g *gen) newWorker(nparams int) (*mir.FuncBuilder, string) {
	name := fmt.Sprintf("worker%d", g.nWorkers)
	g.nWorkers++
	return g.p.NewFunc(name, nparams), name
}

func (g *gen) threadSection() {
	switch g.r.n(3) {
	case 0:
		g.threadsDisjoint()
	case 1:
		g.threadsCounter()
	case 2:
		g.threadsHandoff()
	}
}

func (g *gen) threadsDisjoint() {
	b := g.b
	nw := 1 + g.r.n(3)
	words := int64(4 + g.r.n(5))

	w, name := g.newWorker(1)
	base := w.Param(0)
	cell := w.Alloca(8)
	w.Store(mir.R(cell), mir.C(0), 8)
	w.Loop(mir.C(words), func(i mir.Reg) {
		off := w.Mul(mir.R(i), mir.C(8))
		p := w.Add(mir.R(base), mir.R(off))
		v := w.Mul(mir.R(i), mir.C(3))
		v2 := w.Add(mir.R(v), mir.C(7))
		w.Store(mir.R(p), mir.R(v2), 8)
		got := w.Load(mir.R(p), 8)
		s := w.Load(mir.R(cell), 8)
		s2 := w.Add(mir.R(s), mir.R(got))
		w.Store(mir.R(cell), mir.R(s2), 8)
	})
	sum := w.Load(mir.R(cell), 8)
	w.Store(mir.R(base), mir.R(sum), 8) // publish into own slice head
	w.Ret()

	shared := b.Call("calloc", mir.C(int64(nw)*words), mir.C(8))
	var handles []mir.Reg
	for i := 0; i < nw; i++ {
		slice := b.Add(mir.R(shared), mir.C(int64(i)*words*8))
		handles = append(handles, b.Spawn(name, mir.R(slice)))
	}
	for _, h := range handles {
		b.Join(mir.R(h))
	}
	for i := 0; i < nw; i++ {
		p := b.Add(mir.R(shared), mir.C(int64(i)*words*8))
		g.sums = append(g.sums, b.Load(mir.R(p), 8))
	}
}

func (g *gen) threadsCounter() {
	b := g.b
	iters := int64(8 + g.r.n(24))

	w, name := g.newWorker(2)
	cell, lock := w.Param(0), w.Param(1)
	w.Loop(mir.C(iters), func(i mir.Reg) {
		w.Lock(mir.R(lock))
		v := w.Load(mir.R(cell), 8)
		v2 := w.Add(mir.R(v), mir.C(1))
		w.Store(mir.R(cell), mir.R(v2), 8)
		w.Unlock(mir.R(lock))
	})
	w.Ret()

	cellM := b.Call("calloc", mir.C(1), mir.C(8))
	lockM := b.Call("malloc", mir.C(8))
	h1 := b.Spawn(name, mir.R(cellM), mir.R(lockM))
	h2 := b.Spawn(name, mir.R(cellM), mir.R(lockM))
	b.Join(mir.R(h1))
	b.Join(mir.R(h2))
	b.Lock(mir.R(lockM))
	total := b.Load(mir.R(cellM), 8)
	b.Unlock(mir.R(lockM))
	g.sums = append(g.sums, total)
}

func (g *gen) threadsHandoff() {
	b := g.b
	words := int64(2 + g.r.n(3))

	w, name := g.newWorker(1)
	buf := w.Param(0)
	w.Loop(mir.C(words), func(i mir.Reg) {
		off := w.Mul(mir.R(i), mir.C(8))
		p := w.Add(mir.R(buf), mir.R(off))
		v := w.Load(mir.R(p), 8)
		v2 := w.Add(mir.R(v), mir.C(5))
		w.Store(mir.R(p), mir.R(v2), 8)
	})
	w.Ret()

	bufM := b.Call("malloc", mir.C(words*8))
	for off := int64(0); off < words*8; off += 8 {
		p := b.Add(mir.R(bufM), mir.C(off))
		b.Store(mir.R(p), mir.C(off+1), 8)
	}
	h := b.Spawn(name, mir.R(bufM))
	b.Join(mir.R(h))
	p := b.Add(mir.R(bufM), mir.C(0))
	g.sums = append(g.sums, b.Load(mir.R(p), 8))
}

// ---------------------------------------------------------------------------
// Bug planting. Runs last so later allocations can't recycle a freed
// block out from under the use-after-free site.

func (g *gen) plantBugs() {
	kinds := []BugKind{BugUAF, BugUninit, BugTaint, BugSSLMisuse, BugSSLLeak, BugZlibUninit}
	if !g.cfg.Uniform {
		kinds = append(kinds, BugMixedWidth)
	}
	n := 1 + g.r.n(2)
	for i := 0; i < n && len(kinds) > 0; i++ {
		k := g.r.n(len(kinds))
		kind := kinds[k]
		kinds = append(kinds[:k], kinds[k+1:]...)
		g.plantBug(kind)
		g.bugs = append(g.bugs, kind)
	}
}

func (g *gen) plantBug(kind BugKind) {
	b := g.b
	switch kind {
	case BugUAF:
		size := g.sizeFor()
		buf := b.Call("malloc", mir.C(size))
		g.initAlloc(&galloc{reg: buf, size: size, heap: true})
		b.CallVoid("free", mir.R(buf))
		off := int64(g.r.n(int(size/8))) * 8
		p := b.Add(mir.R(buf), mir.C(off))
		if g.r.chance(50) {
			g.sums = append(g.sums, b.Load(mir.R(p), 8))
		} else {
			b.Store(mir.R(p), mir.C(99), 8)
		}
	case BugUninit:
		buf := b.Call("malloc", mir.C(16))
		v := b.Load(mir.R(buf), 8)
		scratch := b.Alloca(8)
		b.Store(mir.R(scratch), mir.C(0), 8)
		b.If(mir.R(v), func() {
			b.Store(mir.R(scratch), mir.C(1), 8)
		}, nil)
		g.sums = append(g.sums, b.Load(mir.R(scratch), 8))
		b.CallVoid("free", mir.R(buf))
	case BugTaint:
		in := g.getsSession()
		t := b.Load(mir.R(in.reg), 8) // tainted word
		big := g.liveAlloc(64)
		off := b.Bin(mir.OpAnd, mir.R(t), mir.C(0x38)) // 0..56, word-aligned
		p := b.Add(mir.R(big.reg), mir.R(off))
		if g.r.chance(50) {
			g.sums = append(g.sums, b.Load(mir.R(p), 8))
		} else {
			b.Store(mir.R(p), mir.C(5), 8)
		}
	case BugSSLMisuse:
		g.sslSession(false, true) // free without shutdown
	case BugSSLLeak:
		g.sslSession(true, false) // never freed: reported at ProgramEnd
	case BugZlibUninit:
		g.zlibSession(false)
	case BugMixedWidth:
		a := g.liveAlloc(8)
		g.pushVal(b.Load(mir.R(a.reg), 8))
		g.pushVal(b.Load(mir.R(a.reg), 4))
	}
}
