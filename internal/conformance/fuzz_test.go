package conformance

import (
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/vm"
)

// fuzzRunner is shared across fuzz iterations: compilation is the
// expensive part and the compiled-analysis memo is seed-independent.
var (
	fuzzOnce   sync.Once
	fuzzShared *Runner
)

func fuzzR() *Runner {
	fuzzOnce.Do(func() { fuzzShared = NewRunner() })
	return fuzzShared
}

// fuzzConfigs is a trimmed ablation matrix for fuzzing throughput: the
// two extremes, the layout-only middle, and the closure-threaded
// execution tier of the full configuration (the engine differential —
// same compiled analysis, different dispatch). The full matrix
// (including granularity sweeps and fusion) runs in TestConform; the
// fuzzer's job is to explore generator seeds, not configurations.
var fuzzConfigs = []compiler.NamedOptions{
	{Name: "full", Opts: compiler.DefaultOptions()},
	{Name: "full-thr", Opts: compiler.DefaultOptions().WithEngine(vm.EngineThreaded)},
	{Name: "dsonly", Opts: compiler.DSOnlyOptions()},
	{Name: "naive", Opts: compiler.NaiveOptions()},
}

// fuzzAnalyses covers each handler shape class once: map-heavy with
// external calls (fasttrack), pure-shadow bit analysis (uaf), state
// machine over heap objects (sslsan), and value propagation
// (tainttrack).
var fuzzAnalyses = []string{"fasttrack", "uaf", "sslsan", "tainttrack"}

// FuzzConformance feeds arbitrary generator seeds through a trimmed
// differential check: every analysis must produce identical verdicts
// at every optimization level. The generator maps any uint64 to a
// verifier-clean workload, so the whole seed space is valid input.
func FuzzConformance(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(22))   // shape that exposed the fasttrack join bug
	f.Add(uint64(1337)) // threaded + uniform
	// Engine-differential shapes: the threaded tier fuses pure runs and
	// superinstruction chains, so the corpus pins workloads that branch
	// into fused blocks, report from a hook mid-chain, and expire the
	// scheduler quantum inside a fused run.
	f.Add(uint64(38))  // single-threaded, bug report mid-chain — chain replay must match exactly
	f.Add(uint64(62))  // multi-threaded + uniform: branchy fused blocks under the granularity sweep
	f.Add(uint64(179)) // largest multi-threaded reporter: quantum expiry inside chains at every switch
	// Adaptive-leg shapes: msan profiles with a genuinely cold addr2size
	// member, so AdaptOptions performs a real cold split and the adapted
	// recompile is a different layout than the static reference.
	f.Add(uint64(3))  // single-threaded + zlib-uninit bug: adapted layout must reproduce the reports
	f.Add(uint64(4))  // multi-threaded, sub-word accesses, ssl-misuse bug
	f.Add(uint64(21)) // multi-threaded with two planted bugs (uaf + zlib-uninit)
	f.Fuzz(func(t *testing.T, seed uint64) {
		w := Generate(seed)
		r := fuzzR()
		vmSeed := r.SchedSeeds[0]
		for _, name := range fuzzAnalyses {
			ref, err := r.runOne(w, name, fuzzConfigs[0].Opts, vmSeed)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range fuzzConfigs[1:] {
				got, err := r.runOne(w, name, c.Opts, vmSeed)
				if err != nil {
					t.Fatal(err)
				}
				if !got.equal(ref) {
					t.Errorf("%s/%s ablation: %s vs %s:\n%s",
						w.Name, name, fuzzConfigs[0].Name, c.Name, diff(ref, got))
				}
			}
		}
		// Adaptive leg (msan only — the profile-guided showcase; one
		// analysis keeps the adapted compiles, which are never memoized,
		// from dominating fuzz throughput): the workload's own profile
		// folds through AdaptOptions and the adapted recompile must
		// reproduce the static verdict on both engines.
		prof, err := r.profileOf(w, "msan")
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range fuzzConfigs[:2] { // full, full-thr
			ares := c.Opts.AdaptOptions(prof)
			if !ares.Changed {
				continue // fingerprint-identical to the static build
			}
			ref, err := r.runOne(w, "msan", c.Opts, vmSeed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.runAdapted(w.Prog, "msan", ares.Opts, vmSeed)
			if err != nil {
				t.Fatal(err)
			}
			if !got.equal(ref) {
				t.Errorf("%s/msan adaptive: %s vs %s-adapted:\n%s",
					w.Name, c.Name, c.Name, diff(ref, got))
			}
		}
	})
}
