package baselines

import (
	"repro/internal/compiler"
	"repro/internal/lang/ast"
	"repro/internal/vm"
)

// UAF is a hand-tuned use-after-free checker, the oracle counterpart of
// uaf.alda: free poisons every granule of the block, malloc/calloc
// un-poison (which also handles allocator address reuse), and every
// load/store asserts its first granule is not poisoned. Hand-picked data
// structures the way an expert would build it without ALDA: one freed
// bit per 8-byte granule in a two-level page table of bit-vectors (the
// eraser-hand page idiom, 64× denser since the payload is one bit), and
// allocation sizes in a sidecar hash map.
type UAF struct {
	pages map[uint64]*uafPage
	sizes map[uint64]uint64
	// one-entry page cache
	lastPI   uint64
	lastPage *uafPage
}

const uafPageBits = 1 << 15 // granule bits per page (32 KiB of program bytes)

type uafPage struct {
	freed [uafPageBits / 64]uint64
}

// NewUAF returns a fresh hand-tuned use-after-free checker for one run.
func NewUAF() *UAF {
	return &UAF{
		pages:  make(map[uint64]*uafPage),
		sizes:  make(map[uint64]uint64),
		lastPI: ^uint64(0),
	}
}

// Name identifies the baseline.
func (u *UAF) Name() string { return "uaf-hand" }

// NeedShadow reports that UAF does not use register metadata.
func (u *UAF) NeedShadow() bool { return false }

// Footprint returns the page-table storage plus the sidecar size map.
func (u *UAF) Footprint() uint64 {
	var n uint64
	for range u.pages {
		n += uafPageBits/8 + 16
	}
	n += uint64(len(u.sizes)) * 48
	return n
}

func (u *UAF) page(pi uint64, create bool) *uafPage {
	if pi == u.lastPI {
		return u.lastPage
	}
	pg := u.pages[pi]
	if pg == nil {
		if !create {
			return nil
		}
		pg = &uafPage{}
		u.pages[pi] = pg
	}
	u.lastPI, u.lastPage = pi, pg
	return pg
}

// mark sets (poison=true) or clears the freed bit of every granule in
// [addr, addr+n).
func (u *UAF) mark(addr, n uint64, poison bool) {
	if n == 0 {
		return
	}
	for g, end := addr>>3, (addr+n-1)>>3; g <= end; g++ {
		pg := u.page(g/uafPageBits, poison)
		if pg == nil { // clearing never-touched granules is a no-op
			continue
		}
		idx := g % uafPageBits
		if poison {
			pg.freed[idx/64] |= 1 << (idx % 64)
		} else {
			pg.freed[idx/64] &^= 1 << (idx % 64)
		}
	}
}

func (u *UAF) freedBit(addr uint64) uint64 {
	g := addr >> 3
	pg := u.page(g/uafPageBits, false)
	if pg == nil {
		return 0
	}
	idx := g % uafPageBits
	return (pg.freed[idx/64] >> (idx % 64)) & 1
}

// Handler table indices.
const (
	uafMalloc = iota
	uafCalloc
	uafFree
	uafLoad
	uafStore
	uafN
)

// Handlers returns the hook table.
func (u *UAF) Handlers() []vm.HandlerFn {
	h := make([]vm.HandlerFn, uafN)
	h[uafMalloc] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		ptr, n := a[0], a[1]
		u.mark(ptr, n, false)
		u.sizes[ptr] = n
		return 0
	}
	h[uafCalloc] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		ptr, n := a[0], a[1]*a[2]
		u.mark(ptr, n, false)
		u.sizes[ptr] = n
		return 0
	}
	h[uafFree] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		ptr := a[0]
		if n := u.sizes[ptr]; n != 0 {
			u.mark(ptr, n, true)
			delete(u.sizes, ptr)
		}
		return 0
	}
	h[uafLoad] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		if f := u.freedBit(a[0]); f != 0 {
			m.Report("uaf-hand", "use after free (read)", f, 0)
		}
		return 0
	}
	h[uafStore] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		if f := u.freedBit(a[0]); f != 0 {
			m.Report("uaf-hand", "use after free (write)", f, 0)
		}
		return 0
	}
	return h
}

// Rules returns the insertion rules — the same five points uaf.alda
// instruments, so verdicts are directly comparable.
func (u *UAF) Rules() []compiler.Rule {
	return []compiler.Rule{
		{Kind: compiler.MatchCallee, Callee: "malloc", After: true, HandlerID: uafMalloc,
			HandlerName: "uafMalloc", Args: []ast.CallArg{retArg(), opArg(1)}},
		{Kind: compiler.MatchCallee, Callee: "calloc", After: true, HandlerID: uafCalloc,
			HandlerName: "uafCalloc", Args: []ast.CallArg{retArg(), opArg(1), opArg(2)}},
		{Kind: compiler.MatchCallee, Callee: "free", After: false, HandlerID: uafFree,
			HandlerName: "uafFree", Args: []ast.CallArg{opArg(1)}},
		{Kind: compiler.MatchLoad, After: false, HandlerID: uafLoad,
			HandlerName: "uafLoad", Args: []ast.CallArg{opArg(1)}},
		{Kind: compiler.MatchStore, After: false, HandlerID: uafStore,
			HandlerName: "uafStore", Args: []ast.CallArg{opArg(2)}},
	}
}
