package baselines

import (
	"strings"
	"testing"

	"repro/internal/mir"
)

func TestHandUAFTable(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *mir.FuncBuilder)
		// want maps expected report message → expected count; programs
		// not listed under a message must not report it.
		want map[string]int
	}{
		{
			name: "clean-lifecycle",
			build: func(b *mir.FuncBuilder) {
				buf := b.Call("malloc", mir.C(16))
				b.Store(mir.R(buf), mir.C(7), 8)
				b.Load(mir.R(buf), 8)
				b.CallVoid("free", mir.R(buf))
			},
			want: map[string]int{},
		},
		{
			name: "read-after-free",
			build: func(b *mir.FuncBuilder) {
				buf := b.Call("malloc", mir.C(16))
				b.Store(mir.R(buf), mir.C(7), 8)
				b.CallVoid("free", mir.R(buf))
				b.Load(mir.R(buf), 8)
			},
			want: map[string]int{"use after free (read)": 1},
		},
		{
			name: "write-after-free",
			build: func(b *mir.FuncBuilder) {
				buf := b.Call("malloc", mir.C(16))
				b.CallVoid("free", mir.R(buf))
				b.Store(mir.R(buf), mir.C(1), 8)
			},
			want: map[string]int{"use after free (write)": 1},
		},
		{
			name: "interior-pointer-read",
			build: func(b *mir.FuncBuilder) {
				buf := b.Call("malloc", mir.C(32))
				b.CallVoid("free", mir.R(buf))
				p := b.Add(mir.R(buf), mir.C(24))
				b.Load(mir.R(p), 8)
			},
			want: map[string]int{"use after free (read)": 1},
		},
		{
			name: "calloc-then-uaf",
			build: func(b *mir.FuncBuilder) {
				buf := b.Call("calloc", mir.C(4), mir.C(8))
				b.Load(mir.R(buf), 8)
				b.CallVoid("free", mir.R(buf))
				b.Load(mir.R(buf), 8)
			},
			want: map[string]int{"use after free (read)": 1},
		},
		{
			name: "allocator-reuse-unpoisons",
			build: func(b *mir.FuncBuilder) {
				// The VM's size-class freelist is LIFO, so the second
				// malloc reuses the freed block; the new allocation must
				// read clean.
				buf := b.Call("malloc", mir.C(16))
				b.CallVoid("free", mir.R(buf))
				buf2 := b.Call("malloc", mir.C(16))
				b.Store(mir.R(buf2), mir.C(1), 8)
				b.Load(mir.R(buf2), 8)
			},
			want: map[string]int{},
		},
		{
			name: "looped-uaf-deduplicates",
			build: func(b *mir.FuncBuilder) {
				buf := b.Call("malloc", mir.C(8))
				b.CallVoid("free", mir.R(buf))
				b.Loop(mir.C(10), func(i mir.Reg) {
					b.Load(mir.R(buf), 8)
				})
			},
			want: map[string]int{"use after free (read)": 10},
		},
		{
			name: "stack-memory-never-freed",
			build: func(b *mir.FuncBuilder) {
				s := b.Alloca(16)
				b.Store(mir.R(s), mir.C(3), 8)
				b.Load(mir.R(s), 8)
			},
			want: map[string]int{},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			tc.build(b)
			b.RetVal(mir.C(0))
			if err := p.Verify(); err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}

			res := runWith(t, p, NewUAF())
			got := map[string]int{}
			for _, r := range res.Reports {
				if !strings.HasPrefix(r.Message, "use after free") {
					t.Errorf("unexpected report: %v", r)
					continue
				}
				got[r.Message] += r.Count
				if r.Got != 1 || r.Expected != 0 {
					t.Errorf("%s: got/expected = %d/%d, want 1/0 to match uaf.alda",
						r.Message, r.Got, r.Expected)
				}
			}
			for msg, n := range tc.want {
				if got[msg] != n {
					t.Errorf("message %q: count %d, want %d", msg, got[msg], n)
				}
				delete(got, msg)
			}
			for msg, n := range got {
				t.Errorf("unwanted message %q (count %d)", msg, n)
			}
		})
	}
}

func TestHandUAFName(t *testing.T) {
	u := NewUAF()
	if u.Name() != "uaf-hand" || u.NeedShadow() {
		t.Fatal("identity wrong")
	}
	if u.Footprint() != 0 {
		t.Fatal("fresh instance should have empty footprint")
	}
}
