// Package baselines contains the hand-tuned comparator analyses of the
// paper's evaluation: a hand-optimized MemorySanitizer modeled on LLVM
// MSan (Figure 3) and a hand-optimized Eraser with hash-based lock
// interning, static state-transition tables and hand-picked data
// structures (Figure 4, §6.2).
//
// Baselines are written directly against the raw hook interface — Go
// handler functions plus explicit insertion rules — exactly the way an
// expert would build an analysis without ALDA. Each instance is
// single-run: construct, instrument, run.
package baselines

import (
	"repro/internal/compiler"
	"repro/internal/instrument"
	"repro/internal/lang/ast"
	"repro/internal/meta"
	"repro/internal/mir"
	"repro/internal/vm"
)

func applyRules(p *mir.Program, rules []compiler.Rule) (*mir.Program, error) {
	return instrument.ApplyRules(p, rules)
}

// Baseline is a hand-tuned analysis instance.
type Baseline interface {
	Name() string
	Rules() []compiler.Rule
	Handlers() []vm.HandlerFn
	NeedShadow() bool
	// Footprint returns the analysis's metadata storage in bytes after a
	// run (§6.2's memory comparison).
	Footprint() uint64
}

// Call-arg constructors shared by the baselines' insertion rules (the
// same Table 2 vocabulary ALDA programs use).
func opArg(i int) ast.CallArg  { return ast.CallArg{Kind: ast.ArgOperand, Index: i} }
func opMeta(i int) ast.CallArg { return ast.CallArg{Kind: ast.ArgOperand, Index: i, Meta: true} }
func opSize(i int) ast.CallArg { return ast.CallArg{Kind: ast.ArgOperand, Index: i, Sizeof: true} }
func retArg() ast.CallArg      { return ast.CallArg{Kind: ast.ArgReturn} }
func retSize() ast.CallArg     { return ast.CallArg{Kind: ast.ArgReturn, Sizeof: true} }
func tidArg() ast.CallArg      { return ast.CallArg{Kind: ast.ArgThread} }

// ---------------------------------------------------------------------------
// Hand-tuned MemorySanitizer

// MSan is the hand-tuned MemorySanitizer. Its shadow is a flat
// offset-based shadow memory with one poison byte per 8-byte granule —
// the layout LLVM MSan uses — and allocation sizes ride in a sidecar
// map. Deliberately (Table 3) it has no gets() interceptor.
type MSan struct {
	shadow *meta.ShadowMap // 1 word per granule, template poisoned
	sizes  map[uint64]uint64
}

// NewMSan returns a fresh hand-tuned MSan for one run over the given
// simulated address-space size.
func NewMSan(addrSpace uint64) *MSan {
	tmpl := []uint64{^uint64(0)} // unknown memory is poisoned
	return &MSan{
		shadow: meta.NewShadowMap(addrSpace>>3, 1, tmpl),
		sizes:  make(map[uint64]uint64),
	}
}

// Name identifies the baseline.
func (s *MSan) Name() string { return "msan-hand" }

// NeedShadow reports that MSan tracks register metadata.
func (s *MSan) NeedShadow() bool { return true }

// Footprint returns shadow plus sidecar storage.
func (s *MSan) Footprint() uint64 {
	return s.shadow.Bytes() + uint64(len(s.sizes))*48
}

func (s *MSan) poison(addr, n uint64, label uint64) {
	if n == 0 {
		return
	}
	start := addr >> 3
	end := (addr + n - 1) >> 3
	s.shadow.Fill(start, end-start+1, 0, 64, label)
}

func (s *MSan) loadLabel(addr, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	start := addr >> 3
	end := (addr + n - 1) >> 3
	return s.shadow.RangeOr(start, end-start+1, 0, 64)
}

// Handler table indices.
const (
	msanMalloc = iota
	msanCalloc
	msanFree
	msanAlloca
	msanStore
	msanLoad
	msanBranch
	msanMemset
	msanMemcpy
	msanSSLRead
	msanN
)

// Handlers returns the hook table.
func (s *MSan) Handlers() []vm.HandlerFn {
	h := make([]vm.HandlerFn, msanN)
	h[msanMalloc] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		ptr, n := a[0], a[1]
		s.poison(ptr, n, ^uint64(0))
		s.sizes[ptr] = n
		return 0
	}
	h[msanCalloc] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		ptr, n := a[0], a[1]*a[2]
		s.poison(ptr, n, 0)
		s.sizes[ptr] = n
		return 0
	}
	h[msanFree] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		ptr := a[0]
		if n, ok := s.sizes[ptr]; ok {
			s.poison(ptr, n, ^uint64(0))
			delete(s.sizes, ptr)
		}
		return 0
	}
	h[msanAlloca] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		s.poison(a[0], a[1], ^uint64(0))
		return 0
	}
	h[msanStore] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		// a = [addr, valueShadow, size]
		s.poison(a[0], a[2], a[1])
		return 0
	}
	h[msanLoad] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		return s.loadLabel(a[0], a[1])
	}
	h[msanBranch] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		if a[0] != 0 {
			m.Report("msan-hand", "use of uninitialized value", a[0], 0)
		}
		return 0
	}
	h[msanMemset] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		s.poison(a[0], a[2], 0)
		return 0
	}
	h[msanMemcpy] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		s.poison(a[0], a[2], s.loadLabel(a[1], a[2]))
		return 0
	}
	h[msanSSLRead] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		s.poison(a[0], a[1], 0)
		return 0
	}
	return h
}

// Rules returns the insertion rules. Note the absence of a gets rule —
// LLVM MSan does not intercept gets (Table 3).
func (s *MSan) Rules() []compiler.Rule {
	return []compiler.Rule{
		{Kind: compiler.MatchCallee, Callee: "malloc", After: true, HandlerID: msanMalloc,
			HandlerName: "msanMalloc", Args: []ast.CallArg{retArg(), opArg(1)}},
		{Kind: compiler.MatchCallee, Callee: "calloc", After: true, HandlerID: msanCalloc,
			HandlerName: "msanCalloc", Args: []ast.CallArg{retArg(), opArg(1), opArg(2)}},
		{Kind: compiler.MatchCallee, Callee: "free", After: false, HandlerID: msanFree,
			HandlerName: "msanFree", Args: []ast.CallArg{opArg(1)}},
		{Kind: compiler.MatchAlloca, After: true, HandlerID: msanAlloca,
			HandlerName: "msanAlloca", Args: []ast.CallArg{retArg(), retSize()}},
		{Kind: compiler.MatchStore, After: false, HandlerID: msanStore, UsesMeta: true,
			HandlerName: "msanStore", Args: []ast.CallArg{opArg(2), opMeta(1), opSize(1)}},
		{Kind: compiler.MatchLoad, After: true, HandlerID: msanLoad, HasResult: true,
			HandlerName: "msanLoad", Args: []ast.CallArg{opArg(1), retSize()}},
		{Kind: compiler.MatchCondBr, After: false, HandlerID: msanBranch, UsesMeta: true,
			HandlerName: "msanBranch", Args: []ast.CallArg{opMeta(1)}},
		{Kind: compiler.MatchCallee, Callee: "memset", After: true, HandlerID: msanMemset,
			HandlerName: "msanMemset", Args: []ast.CallArg{opArg(1), opArg(2), opArg(3)}},
		{Kind: compiler.MatchCallee, Callee: "memcpy", After: true, HandlerID: msanMemcpy,
			HandlerName: "msanMemcpy", Args: []ast.CallArg{opArg(1), opArg(2), opArg(3)}},
		{Kind: compiler.MatchCallee, Callee: "SSL_read", After: true, HandlerID: msanSSLRead,
			HandlerName: "msanSSLRead", Args: []ast.CallArg{opArg(2), opArg(3)}},
	}
}

// InstrumentBaseline weaves any baseline into a program.
func InstrumentBaseline(p *mir.Program, b Baseline) (*mir.Program, error) {
	return applyRules(p, b.Rules())
}
