package baselines

import (
	"sync"

	"repro/internal/compiler"
	"repro/internal/lang/ast"
	"repro/internal/vm"
)

// Eraser is the hand-tuned Eraser of §6.2: "we optimized Eraser with
// hash-based locking operations, static tables to represent state
// transformations, and careful data-structure selection."
//
//   - Lock identifiers are interned through a hash table into dense ids
//     so locksets are 4-word bit-vectors (256 locks).
//   - Per-address metadata is one cache-aligned struct (status byte,
//     64-thread bit-vector, 4-word candidate lockset) in a hand-written
//     two-level page table — one lookup per access.
//   - The Virgin/Exclusive/Shared/Shared-Modified transitions come from
//     static tables indexed by the current status.
type Eraser struct {
	mu sync.Mutex // the analysis-global lock ("address := pointer : sync")

	lockIDs map[uint64]uint64 // hash-based lock interning
	// Per-thread locksets (all locks + write locks).
	threadLock  [64][4]uint64
	threadWLock [64][4]uint64

	pages map[uint64]*eraserPage
	// one-entry page cache
	lastPI   uint64
	lastPage *eraserPage
}

const (
	eVirgin = iota
	eExclusive
	eShared
	eSharedModified
)

// Static state-transition tables: next status for a load / store by a
// new thread, and for a store by a known thread.
var (
	eraserLoadNewThread  = [4]uint8{eVirgin, eShared, eShared, eSharedModified}
	eraserStoreNewThread = [4]uint8{eExclusive, eSharedModified, eSharedModified, eSharedModified}
	eraserStoreKnown     = [4]uint8{eVirgin, eExclusive, eSharedModified, eSharedModified}
)

type eraserEntry struct {
	status  uint8
	threads uint64
	locks   [4]uint64
}

const eraserPageSize = 4096

type eraserPage struct {
	entries [eraserPageSize]eraserEntry
	present [eraserPageSize / 64]uint64
}

// NewEraser returns a fresh hand-tuned Eraser for one run.
func NewEraser() *Eraser {
	return &Eraser{
		lockIDs: make(map[uint64]uint64),
		pages:   make(map[uint64]*eraserPage),
		lastPI:  ^uint64(0),
	}
}

// Name identifies the baseline.
func (e *Eraser) Name() string { return "eraser-hand" }

// NeedShadow reports that Eraser does not use register metadata.
func (e *Eraser) NeedShadow() bool { return false }

// Footprint returns the page-table storage plus the lock-interning and
// per-thread tables.
func (e *Eraser) Footprint() uint64 {
	var n uint64
	for range e.pages {
		n += eraserPageSize*48 + eraserPageSize/8 + 16
	}
	n += uint64(len(e.lockIDs)) * 48
	n += uint64(len(e.threadLock)+len(e.threadWLock)) * 32
	return n
}

func (e *Eraser) internLock(l uint64) uint64 {
	if id, ok := e.lockIDs[l]; ok {
		return id
	}
	id := uint64(len(e.lockIDs)) & 255
	e.lockIDs[l] = id
	return id
}

// entry returns the metadata entry for an address granule, initializing
// the candidate lockset to the universe on first touch.
func (e *Eraser) entry(addr uint64) *eraserEntry {
	g := addr >> 3
	pi := g / eraserPageSize
	var pg *eraserPage
	if pi == e.lastPI {
		pg = e.lastPage
	} else {
		pg = e.pages[pi]
		if pg == nil {
			pg = &eraserPage{}
			e.pages[pi] = pg
		}
		e.lastPI, e.lastPage = pi, pg
	}
	idx := g % eraserPageSize
	if pg.present[idx/64]&(1<<(idx%64)) == 0 {
		pg.present[idx/64] |= 1 << (idx % 64)
		ent := &pg.entries[idx]
		ent.locks = [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)} // universe
	}
	return &pg.entries[idx]
}

func lsEmpty(ls *[4]uint64) bool {
	return ls[0]|ls[1]|ls[2]|ls[3] == 0
}

func lsAnd(dst, src *[4]uint64) {
	dst[0] &= src[0]
	dst[1] &= src[1]
	dst[2] &= src[2]
	dst[3] &= src[3]
}

// Handler table indices.
const (
	eraserLock = iota
	eraserUnlock
	eraserLoad
	eraserStore
	eraserHN
)

// Handlers returns the hook table.
func (e *Eraser) Handlers() []vm.HandlerFn {
	h := make([]vm.HandlerFn, eraserHN)
	h[eraserLock] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		e.mu.Lock()
		id := e.internLock(a[0])
		t := a[1] & 63
		e.threadLock[t][id/64] |= 1 << (id % 64)
		e.threadWLock[t][id/64] |= 1 << (id % 64)
		e.mu.Unlock()
		return 0
	}
	h[eraserUnlock] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		e.mu.Lock()
		id := e.internLock(a[0])
		t := a[1] & 63
		e.threadLock[t][id/64] &^= 1 << (id % 64)
		e.threadWLock[t][id/64] &^= 1 << (id % 64)
		e.mu.Unlock()
		return 0
	}
	h[eraserLoad] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		e.mu.Lock()
		ent := e.entry(a[0])
		t := a[1] & 63
		bit := uint64(1) << (t % 64)
		if ent.threads&bit == 0 && ent.status != eVirgin {
			ent.status = eraserLoadNewThread[ent.status]
			ent.threads |= bit
		}
		if ent.status > eExclusive {
			lsAnd(&ent.locks, &e.threadLock[t])
			if ent.status == eSharedModified && lsEmpty(&ent.locks) {
				m.Report("eraser-hand", "data race: unprotected read", 1, 0)
			}
		}
		e.mu.Unlock()
		return 0
	}
	h[eraserStore] = func(m *vm.Machine, tid uint64, a []uint64) uint64 {
		e.mu.Lock()
		ent := e.entry(a[0])
		t := a[1] & 63
		bit := uint64(1) << (t % 64)
		if ent.threads&bit == 0 {
			ent.threads |= bit
			ent.status = eraserStoreNewThread[ent.status]
		} else {
			ent.status = eraserStoreKnown[ent.status]
		}
		if ent.status > eExclusive {
			lsAnd(&ent.locks, &e.threadWLock[t])
			if ent.status == eSharedModified && lsEmpty(&ent.locks) {
				m.Report("eraser-hand", "data race: unprotected write", 1, 0)
			}
		}
		e.mu.Unlock()
		return 0
	}
	return h
}

// Rules returns the insertion rules (the same four points Listing 1
// instruments).
func (e *Eraser) Rules() []compiler.Rule {
	return []compiler.Rule{
		{Kind: compiler.MatchLock, After: true, HandlerID: eraserLock,
			HandlerName: "eraserLock", Args: []ast.CallArg{opArg(1), tidArg()}},
		{Kind: compiler.MatchUnlock, After: false, HandlerID: eraserUnlock,
			HandlerName: "eraserUnlock", Args: []ast.CallArg{opArg(1), tidArg()}},
		{Kind: compiler.MatchLoad, After: true, HandlerID: eraserLoad,
			HandlerName: "eraserLoad", Args: []ast.CallArg{opArg(1), tidArg()}},
		{Kind: compiler.MatchStore, After: true, HandlerID: eraserStore,
			HandlerName: "eraserStore", Args: []ast.CallArg{opArg(2), tidArg()}},
	}
}
