package baselines

import (
	"testing"

	"repro/internal/mir"
	"repro/internal/vm"
)

func runWith(t *testing.T, p *mir.Program, b Baseline) *vm.Result {
	t.Helper()
	inst, err := InstrumentBaseline(p, b)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	m, err := vm.New(inst, vm.Config{TrackShadow: b.NeedShadow()})
	if err != nil {
		t.Fatal(err)
	}
	m.Handlers = b.Handlers()
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHandMSanDetectsUninit(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(16))
	v := b.Load(mir.R(buf), 8) // uninitialized read
	t1 := b.NewBlock()
	b.CondBr(mir.R(v), t1, t1) // branch on it
	b.SetBlock(t1)
	b.RetVal(mir.C(0))

	res := runWith(t, p, NewMSan(1<<28))
	if len(res.Reports) != 1 {
		t.Fatalf("reports: %v", res.Reports)
	}
}

func TestHandMSanCleanAfterInit(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(16))
	b.Store(mir.R(buf), mir.C(1), 8)
	v := b.Load(mir.R(buf), 8)
	t1 := b.NewBlock()
	b.CondBr(mir.R(v), t1, t1)
	b.SetBlock(t1)
	b.RetVal(mir.C(0))

	res := runWith(t, p, NewMSan(1<<28))
	if len(res.Reports) != 0 {
		t.Fatalf("false positive: %v", res.Reports)
	}
}

func TestHandMSanGetsFalsePositive(t *testing.T) {
	// gets() initializes the buffer but hand MSan has no interceptor:
	// the branch on its bytes must (falsely) report.
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(32))
	g := b.Call("gets", mir.R(buf))
	v := b.Load(mir.R(g), 1)
	t1 := b.NewBlock()
	b.CondBr(mir.R(v), t1, t1)
	b.SetBlock(t1)
	b.RetVal(mir.C(0))

	res := runWith(t, p, NewMSan(1<<28))
	if len(res.Reports) != 1 {
		t.Fatalf("expected the gets false positive, got: %v", res.Reports)
	}
}

func TestHandEraserStateMachine(t *testing.T) {
	// One thread alone never races.
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(8))
	b.Store(mir.R(buf), mir.C(1), 8)
	b.Load(mir.R(buf), 8)
	b.Store(mir.R(buf), mir.C(2), 8)
	b.RetVal(mir.C(0))
	res := runWith(t, p, NewEraser())
	if len(res.Reports) != 0 {
		t.Fatalf("single-thread false positive: %v", res.Reports)
	}
}

func raceProg(locked bool) *mir.Program {
	p := mir.NewProgram()
	w := p.NewFunc("worker", 2)
	cell, lock := w.Param(0), w.Param(1)
	w.Loop(mir.C(50), func(i mir.Reg) {
		if locked {
			w.Lock(mir.R(lock))
		}
		v := w.Load(mir.R(cell), 8)
		v2 := w.Add(mir.R(v), mir.C(1))
		w.Store(mir.R(cell), mir.R(v2), 8)
		if locked {
			w.Unlock(mir.R(lock))
		}
	})
	w.Ret()
	b := p.NewFunc("main", 0)
	cell2 := b.Call("calloc", mir.C(1), mir.C(8))
	lock2 := b.Call("malloc", mir.C(8))
	h1 := b.Spawn("worker", mir.R(cell2), mir.R(lock2))
	h2 := b.Spawn("worker", mir.R(cell2), mir.R(lock2))
	b.Join(mir.R(h1))
	b.Join(mir.R(h2))
	b.RetVal(mir.C(0))
	return p
}

func TestHandEraserRace(t *testing.T) {
	res := runWith(t, raceProg(false), NewEraser())
	if len(res.Reports) == 0 {
		t.Fatal("missed a textbook unprotected shared counter")
	}
	res = runWith(t, raceProg(true), NewEraser())
	for _, r := range res.Reports {
		// The shared cell is consistently locked; any report would be on
		// it (the loop variables are thread-local).
		t.Errorf("lock-protected counter reported: %v", r)
	}
}

func TestLockInterning(t *testing.T) {
	e := NewEraser()
	a := e.internLock(0xdeadbeef)
	b := e.internLock(0xdeadbeef)
	c := e.internLock(0xcafe)
	if a != b {
		t.Fatal("same lock interned differently")
	}
	if a == c {
		t.Fatal("different locks collided immediately")
	}
}

func TestBaselineNames(t *testing.T) {
	if NewMSan(1<<20).Name() != "msan-hand" || NewEraser().Name() != "eraser-hand" {
		t.Fatal("names wrong")
	}
	if !NewMSan(1<<20).NeedShadow() || NewEraser().NeedShadow() {
		t.Fatal("shadow requirements wrong")
	}
}
