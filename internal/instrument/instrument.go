// Package instrument implements ALDAcc's event-handler insertion phase
// (§3.2.4, §5.5): it walks a MIR program, matches each instruction
// against the compiled analysis's insertion rules, and splices OpHook
// instructions with fully resolved argument specs ($i, $r, $t, $p,
// $X.m, sizeof($X) per Table 2).
//
// Instrumentation never mutates the input program; it returns an
// instrumented clone. Programs instrumented with an analysis that uses
// local metadata must run on a VM with TrackShadow enabled
// (Analysis.NeedShadow says so); the VM then also performs the
// automatic shadow propagation through arithmetic that §5.5 calls
// "function-local tracking".
package instrument

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/lang/ast"
	"repro/internal/mir"
)

// Apply returns an instrumented clone of prog.
func Apply(prog *mir.Program, a *compiler.Analysis) (*mir.Program, error) {
	return ApplyRules(prog, a.Rules)
}

// ApplyRules instruments prog with an explicit rule set. Hand-tuned
// baseline analyses use this entry point directly: they construct rules
// against their own Go handler tables without going through ALDA.
func ApplyRules(prog *mir.Program, rules []compiler.Rule) (*mir.Program, error) {
	out := prog.Clone()
	for name, f := range out.Funcs {
		isEntry := name == out.Entry
		for bi := range f.Blocks {
			blk := &f.Blocks[bi]
			var res []mir.Instr
			for ii := range blk.Instrs {
				in := blk.Instrs[ii]
				var before, after []mir.Instr
				for ri := range rules {
					r := &rules[ri]
					if !matches(r, &in, isEntry, bi == 0 && ii == 0) {
						continue
					}
					hook, err := resolveHook(r, &in)
					if err != nil {
						return nil, fmt.Errorf("instrument: %s in %s: %w", r.HandlerName, name, err)
					}
					hi := mir.Instr{Op: mir.OpHook, Dst: mir.NoReg, Hook: hook}
					// "after" on a terminator means after the instruction's
					// effects but before control transfer.
					if r.After && !in.Op.IsTerminator() {
						after = append(after, hi)
					} else if r.After && in.Op.IsTerminator() {
						before = append(before, hi)
					} else {
						before = append(before, hi)
					}
				}
				res = append(res, before...)
				res = append(res, in)
				res = append(res, after...)
			}
			blk.Instrs = res
		}
	}
	return out, nil
}

// matches reports whether rule r applies to instruction in. first marks
// the very first instruction of the entry function (ProgramStart);
// isEntry marks entry-function returns (ProgramEnd).
func matches(r *compiler.Rule, in *mir.Instr, isEntry, first bool) bool {
	switch r.Kind {
	case compiler.MatchLoad:
		return in.Op == mir.OpLoad
	case compiler.MatchStore:
		return in.Op == mir.OpStore
	case compiler.MatchAlloca:
		return in.Op == mir.OpAlloca
	case compiler.MatchCondBr:
		return in.Op == mir.OpCondBr
	case compiler.MatchAnyCall:
		return in.Op == mir.OpCall
	case compiler.MatchCallee:
		return in.Op == mir.OpCall && in.Callee == r.Callee
	case compiler.MatchBinOp:
		return in.Op.IsBinOp()
	case compiler.MatchCmp:
		return in.Op.IsCmp()
	case compiler.MatchLock:
		return in.Op == mir.OpLock
	case compiler.MatchUnlock:
		return in.Op == mir.OpUnlock
	case compiler.MatchSpawn:
		return in.Op == mir.OpSpawn
	case compiler.MatchJoin:
		return in.Op == mir.OpJoin
	case compiler.MatchRet:
		return in.Op == mir.OpRet || in.Op == mir.OpRetVal
	case compiler.MatchProgramStart:
		return first
	case compiler.MatchProgramEnd:
		return isEntry && (in.Op == mir.OpRet || in.Op == mir.OpRetVal)
	}
	return false
}

// resolveHook lowers the rule's call-args against a concrete
// instruction.
func resolveHook(r *compiler.Rule, in *mir.Instr) (*mir.HookRef, error) {
	ops := mir.Operands(in)
	h := &mir.HookRef{HandlerID: r.HandlerID, MetaDst: mir.NoReg, Name: r.HandlerName}

	appendOperand := func(i int, meta, sizeof bool) error {
		if sizeof {
			h.Args = append(h.Args, mir.HookArg{Kind: mir.HookConst, Const: mir.SizeOfOperand(in, i)})
			return nil
		}
		if i < 1 || i > len(ops) {
			if r.Kind == compiler.MatchAnyCall {
				// Generic call instrumentation tolerates shorter arg lists.
				h.Args = append(h.Args, mir.HookArg{Kind: mir.HookConst, Const: 0})
				return nil
			}
			return fmt.Errorf("$%d out of range: instruction %s has %d operands", i, in.Op, len(ops))
		}
		o := ops[i-1]
		if o.IsConst {
			if meta {
				h.Args = append(h.Args, mir.HookArg{Kind: mir.HookConst, Const: 0})
			} else {
				h.Args = append(h.Args, mir.HookArg{Kind: mir.HookConst, Const: o.Const})
			}
			return nil
		}
		kind := mir.HookReg
		if meta {
			kind = mir.HookRegMeta
		}
		h.Args = append(h.Args, mir.HookArg{Kind: kind, Reg: o.Reg})
		return nil
	}

	for _, a := range r.Args {
		switch a.Kind {
		case ast.ArgThread:
			h.Args = append(h.Args, mir.HookArg{Kind: mir.HookThread})
		case ast.ArgAll:
			for i := 1; i <= len(ops); i++ {
				if err := appendOperand(i, a.Meta, a.Sizeof); err != nil {
					return nil, err
				}
			}
		case ast.ArgOperand:
			if err := appendOperand(a.Index, a.Meta, a.Sizeof); err != nil {
				return nil, err
			}
		case ast.ArgReturn:
			if a.Sizeof {
				h.Args = append(h.Args, mir.HookArg{Kind: mir.HookConst, Const: mir.SizeOfResult(in)})
				continue
			}
			if !r.After {
				return nil, fmt.Errorf("$r requires an 'after' insertion")
			}
			if !hasDst(in) {
				return nil, fmt.Errorf("$r on instruction %s which produces no value", in.Op)
			}
			kind := mir.HookReg
			if a.Meta {
				kind = mir.HookRegMeta
			}
			h.Args = append(h.Args, mir.HookArg{Kind: kind, Reg: in.Dst})
		}
	}

	if r.HasResult && r.After && hasDst(in) {
		h.MetaDst = in.Dst
	}
	return h, nil
}

func hasDst(in *mir.Instr) bool {
	switch in.Op {
	case mir.OpConst, mir.OpMov, mir.OpLoad, mir.OpAlloca, mir.OpSpawn:
		return true
	case mir.OpCall:
		return in.Dst != mir.NoReg
	}
	return in.Op.IsBinOp() || in.Op.IsCmp()
}
