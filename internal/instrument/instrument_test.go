package instrument

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/lang/ast"
	"repro/internal/mir"
)

func buildProg() *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(16))
	v := b.Load(mir.R(buf), 8)
	b.Store(mir.R(buf), mir.R(v), 4)
	t1 := b.NewBlock()
	b.CondBr(mir.R(v), t1, t1)
	b.SetBlock(t1)
	b.CallVoid("free", mir.R(buf))
	b.RetVal(mir.C(0))
	return p
}

// hooksIn collects (handler name, position) of hooks in a function.
func hooksIn(f *mir.Func) []string {
	var out []string
	for bi := range f.Blocks {
		for ii, in := range f.Blocks[bi].Instrs {
			if in.Op == mir.OpHook {
				var prev, next string
				if ii > 0 {
					prev = f.Blocks[bi].Instrs[ii-1].Op.String()
				}
				if ii+1 < len(f.Blocks[bi].Instrs) {
					next = f.Blocks[bi].Instrs[ii+1].Op.String()
				}
				out = append(out, in.Hook.Name+":"+prev+"/"+next)
			}
		}
	}
	return out
}

func op(i int) ast.CallArg   { return ast.CallArg{Kind: ast.ArgOperand, Index: i} }
func opM(i int) ast.CallArg  { return ast.CallArg{Kind: ast.ArgOperand, Index: i, Meta: true} }
func ret() ast.CallArg       { return ast.CallArg{Kind: ast.ArgReturn} }
func retSz() ast.CallArg     { return ast.CallArg{Kind: ast.ArgReturn, Sizeof: true} }
func thread() ast.CallArg    { return ast.CallArg{Kind: ast.ArgThread} }
func allArgs() ast.CallArg   { return ast.CallArg{Kind: ast.ArgAll} }
func opSz(i int) ast.CallArg { return ast.CallArg{Kind: ast.ArgOperand, Index: i, Sizeof: true} }

func TestPlacementBeforeAfter(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchLoad, After: true, HandlerID: 0, HandlerName: "afterLoad", Args: []ast.CallArg{op(1)}},
		{Kind: compiler.MatchStore, After: false, HandlerID: 1, HandlerName: "beforeStore", Args: []ast.CallArg{op(2)}},
		{Kind: compiler.MatchCondBr, After: false, HandlerID: 2, HandlerName: "beforeBr", Args: []ast.CallArg{op(1)}},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatal(err)
	}
	hooks := hooksIn(out.Funcs["main"])
	want := []string{"afterLoad:load/", "beforeStore:/store", "beforeBr:/condbr"}
	if len(hooks) != 3 {
		t.Fatalf("hooks: %v", hooks)
	}
	for i, w := range want {
		if !strings.HasPrefix(hooks[i], strings.Split(w, "/")[0]) {
			t.Errorf("hook %d = %s, want prefix %s", i, hooks[i], w)
		}
	}
	// "before store" must sit directly before the store.
	if !strings.Contains(hooks[1], "/store") {
		t.Errorf("store hook misplaced: %s", hooks[1])
	}
	// Original program untouched.
	orig := buildProg()
	if orig.InstrCount() == out.InstrCount() {
		t.Error("instrumentation added no instructions")
	}
}

func TestCalleeMatch(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchCallee, Callee: "malloc", After: true, HandlerID: 0,
			HandlerName: "onMalloc", Args: []ast.CallArg{ret(), op(1)}},
		{Kind: compiler.MatchCallee, Callee: "free", After: false, HandlerID: 1,
			HandlerName: "onFree", Args: []ast.CallArg{op(1)}},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatal(err)
	}
	hooks := hooksIn(out.Funcs["main"])
	if len(hooks) != 2 {
		t.Fatalf("hooks: %v", hooks)
	}
}

func TestArgResolution(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchStore, After: false, HandlerID: 0, HandlerName: "h",
			Args: []ast.CallArg{op(1), opM(1), op(2), opSz(1), thread()}, UsesMeta: true},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatal(err)
	}
	var hook *mir.HookRef
	for _, blk := range out.Funcs["main"].Blocks {
		for _, in := range blk.Instrs {
			if in.Op == mir.OpHook {
				hook = in.Hook
			}
		}
	}
	if hook == nil {
		t.Fatal("no hook")
	}
	// store.4 [buf] = v: $1 = v (value), $2 = buf (address)
	args := hook.Args
	if len(args) != 5 {
		t.Fatalf("args: %+v", args)
	}
	if args[0].Kind != mir.HookReg {
		t.Errorf("$1 kind = %v", args[0].Kind)
	}
	if args[1].Kind != mir.HookRegMeta || args[1].Reg != args[0].Reg {
		t.Errorf("$1.m = %+v", args[1])
	}
	if args[2].Kind != mir.HookReg {
		t.Errorf("$2 kind = %v", args[2].Kind)
	}
	if args[3].Kind != mir.HookConst || args[3].Const != 4 {
		t.Errorf("sizeof($1) = %+v", args[3])
	}
	if args[4].Kind != mir.HookThread {
		t.Errorf("$t = %+v", args[4])
	}
}

func TestReturnMetaDst(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchLoad, After: true, HandlerID: 0, HandlerName: "onLoad",
			Args: []ast.CallArg{op(1), retSz()}, HasResult: true},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range out.Funcs["main"].Blocks {
		for _, in := range blk.Instrs {
			if in.Op == mir.OpHook {
				if in.Hook.MetaDst == mir.NoReg {
					t.Fatal("MetaDst not set for result handler")
				}
				if in.Hook.Args[1].Kind != mir.HookConst || in.Hook.Args[1].Const != 8 {
					t.Fatalf("sizeof($r) = %+v", in.Hook.Args[1])
				}
				return
			}
		}
	}
	t.Fatal("no hook found")
}

func TestDollarPExpansion(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchCallee, Callee: "malloc", After: false, HandlerID: 0,
			HandlerName: "h", Args: []ast.CallArg{allArgs()}},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range out.Funcs["main"].Blocks {
		for _, in := range blk.Instrs {
			if in.Op == mir.OpHook {
				if len(in.Hook.Args) != 1 {
					t.Fatalf("$p expanded to %d args, want 1 (malloc arity)", len(in.Hook.Args))
				}
				if in.Hook.Args[0].Kind != mir.HookConst || in.Hook.Args[0].Const != 16 {
					t.Fatalf("arg = %+v", in.Hook.Args[0])
				}
				return
			}
		}
	}
	t.Fatal("no hook")
}

func TestProgramStartEnd(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchProgramStart, After: false, HandlerID: 0, HandlerName: "start"},
		{Kind: compiler.MatchProgramEnd, After: false, HandlerID: 1, HandlerName: "end"},
	}
	p := buildProg()
	// Add a helper function whose rets must NOT get end hooks.
	fb := p.NewFunc("helper", 0)
	fb.Ret()
	out, err := ApplyRules(p, rules)
	if err != nil {
		t.Fatal(err)
	}
	main := out.Funcs["main"]
	if main.Blocks[0].Instrs[0].Op != mir.OpHook || main.Blocks[0].Instrs[0].Hook.Name != "start" {
		t.Fatal("ProgramStart hook not first")
	}
	endHooks := 0
	for _, h := range hooksIn(main) {
		if strings.HasPrefix(h, "end:") {
			endHooks++
		}
	}
	if endHooks != 1 {
		t.Fatalf("end hooks in main = %d", endHooks)
	}
	for _, h := range hooksIn(out.Funcs["helper"]) {
		if strings.HasPrefix(h, "end:") {
			t.Fatal("end hook leaked into helper")
		}
	}
}

func TestErrors(t *testing.T) {
	t.Run("out of range operand", func(t *testing.T) {
		rules := []compiler.Rule{
			{Kind: compiler.MatchCallee, Callee: "free", After: false, HandlerID: 0,
				HandlerName: "h", Args: []ast.CallArg{op(5)}},
		}
		if _, err := ApplyRules(buildProg(), rules); err == nil ||
			!strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("$r on before", func(t *testing.T) {
		rules := []compiler.Rule{
			{Kind: compiler.MatchLoad, After: false, HandlerID: 0,
				HandlerName: "h", Args: []ast.CallArg{ret()}},
		}
		if _, err := ApplyRules(buildProg(), rules); err == nil ||
			!strings.Contains(err.Error(), "after") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("$r on store", func(t *testing.T) {
		rules := []compiler.Rule{
			{Kind: compiler.MatchStore, After: true, HandlerID: 0,
				HandlerName: "h", Args: []ast.CallArg{ret()}},
		}
		if _, err := ApplyRules(buildProg(), rules); err == nil ||
			!strings.Contains(err.Error(), "produces no value") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestAnyCallToleratesShortArgLists(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchAnyCall, After: false, HandlerID: 0,
			HandlerName: "h", Args: []ast.CallArg{op(3)}},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatalf("generic call rule must tolerate short arg lists: %v", err)
	}
	found := false
	for _, blk := range out.Funcs["main"].Blocks {
		for _, in := range blk.Instrs {
			if in.Op == mir.OpHook && in.Hook.Args[0].Kind == mir.HookConst {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("missing padded hook arg")
	}
}

func TestInstrumentedProgramStillVerifies(t *testing.T) {
	rules := []compiler.Rule{
		{Kind: compiler.MatchLoad, After: true, HandlerID: 0, HandlerName: "h", Args: []ast.CallArg{op(1)}},
		{Kind: compiler.MatchRet, After: false, HandlerID: 0, HandlerName: "h2"},
	}
	out, err := ApplyRules(buildProg(), rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Verify(); err != nil {
		t.Fatalf("instrumented program fails verify: %v", err)
	}
}
