package vm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/mir"
)

// wantKind asserts err is a *RunError of the given taxonomy kind —
// the typed replacement for matching message substrings.
func wantKind(t *testing.T, err error, kind ErrKind) *RunError {
	t.Helper()
	if err == nil {
		t.Fatalf("expected a %s error, got nil", kind)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T (%v), want *RunError", err, err)
	}
	if re.Kind != kind {
		t.Fatalf("error kind %s (%v), want %s", re.Kind, re, kind)
	}
	return re
}

func run(t *testing.T, p *mir.Program, cfg Config) *Result {
	t.Helper()
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m, err := New(p, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// exprProg builds main() { return <expr built by f> }.
func exprProg(f func(b *mir.FuncBuilder) mir.Reg) *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	r := f(b)
	b.RetVal(mir.R(r))
	return p
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		name string
		op   mir.Op
		a, b int64
		want int64
	}{
		{"add", mir.OpAdd, 3, 4, 7},
		{"sub", mir.OpSub, 3, 4, -1},
		{"mul", mir.OpMul, -3, 4, -12},
		{"div", mir.OpDiv, -7, 2, -3},
		{"div0", mir.OpDiv, 5, 0, 0},
		{"rem", mir.OpRem, -7, 2, -1},
		{"rem0", mir.OpRem, 5, 0, 0},
		{"and", mir.OpAnd, 0b1100, 0b1010, 0b1000},
		{"or", mir.OpOr, 0b1100, 0b1010, 0b1110},
		{"xor", mir.OpXor, 0b1100, 0b1010, 0b0110},
		{"shl", mir.OpShl, 1, 10, 1024},
		{"shr", mir.OpShr, 1024, 10, 1},
		{"shl-mask", mir.OpShl, 1, 64, 1}, // shift counts mask to 6 bits
		{"lt-signed", mir.OpLt, -1, 1, 1},
		{"gt-signed", mir.OpGt, -1, 1, 0},
		{"eq", mir.OpEq, 5, 5, 1},
		{"ne", mir.OpNe, 5, 5, 0},
		{"le", mir.OpLe, -5, -5, 1},
		{"ge", mir.OpGe, -6, -5, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
				return b.Bin(c.op, mir.C(c.a), mir.C(c.b))
			}), Config{})
			if int64(res.Exit) != c.want {
				t.Fatalf("%s(%d, %d) = %d, want %d", c.op, c.a, c.b, int64(res.Exit), c.want)
			}
		})
	}
}

func TestMemorySizes(t *testing.T) {
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		buf := b.Alloca(16)
		// Write bytes 0..7, read back a word.
		for i := int64(0); i < 8; i++ {
			a := b.Add(mir.R(buf), mir.C(i))
			b.Store(mir.R(a), mir.C(i+1), 1)
		}
		w := b.Load(mir.R(buf), 8)
		// Little-endian: 0x0807060504030201
		want := b.Const(0x0807060504030201)
		return b.Bin(mir.OpEq, mir.R(w), mir.R(want))
	}), Config{})
	if res.Exit != 1 {
		t.Fatal("byte/word aliasing wrong")
	}

	res = run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		buf := b.Alloca(8)
		b.Store(mir.R(buf), mir.C(0x11223344), 4)
		a4 := b.Add(mir.R(buf), mir.C(4))
		b.Store(mir.R(a4), mir.C(0x55667788), 4)
		lo := b.Load(mir.R(buf), 4)
		hi := b.Load(mir.R(a4), 4)
		s := b.Bin(mir.OpShl, mir.R(hi), mir.C(32))
		return b.Bin(mir.OpOr, mir.R(s), mir.R(lo))
	}), Config{})
	if res.Exit != 0x5566778811223344 {
		t.Fatalf("4-byte halves = %#x", res.Exit)
	}
}

func TestHeapReuseAfterFree(t *testing.T) {
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		a1 := b.Call("malloc", mir.C(32))
		b.CallVoid("free", mir.R(a1))
		a2 := b.Call("malloc", mir.C(32))
		return b.Bin(mir.OpEq, mir.R(a1), mir.R(a2))
	}), Config{})
	if res.Exit != 1 {
		t.Fatal("freed block not reused (UAF would be unobservable)")
	}
}

func TestCallsAndRecursion(t *testing.T) {
	p := mir.NewProgram()
	fib := p.NewFunc("fib", 1)
	n := fib.Param(0)
	base := fib.NewBlock()
	rec := fib.NewBlock()
	c := fib.Bin(mir.OpLe, mir.R(n), mir.C(1))
	fib.CondBr(mir.R(c), base, rec)
	fib.SetBlock(base)
	fib.RetVal(mir.R(n))
	fib.SetBlock(rec)
	n1 := fib.Sub(mir.R(n), mir.C(1))
	n2 := fib.Sub(mir.R(n), mir.C(2))
	f1 := fib.Call("fib", mir.R(n1))
	f2 := fib.Call("fib", mir.R(n2))
	s := fib.Add(mir.R(f1), mir.R(f2))
	fib.RetVal(mir.R(s))

	b := p.NewFunc("main", 0)
	r := b.Call("fib", mir.C(15))
	b.RetVal(mir.R(r))

	res := run(t, p, Config{})
	if res.Exit != 610 {
		t.Fatalf("fib(15) = %d", res.Exit)
	}
}

func TestThreadsAndLocks(t *testing.T) {
	p := mir.NewProgram()
	w := p.NewFunc("worker", 2)
	acc, lock := w.Param(0), w.Param(1)
	w.Loop(mir.C(100), func(i mir.Reg) {
		w.Lock(mir.R(lock))
		v := w.Load(mir.R(acc), 8)
		v2 := w.Add(mir.R(v), mir.C(1))
		w.Store(mir.R(acc), mir.R(v2), 8)
		w.Unlock(mir.R(lock))
	})
	w.Ret()

	b := p.NewFunc("main", 0)
	acc2 := b.Call("calloc", mir.C(1), mir.C(8))
	lock2 := b.Call("malloc", mir.C(8))
	var hs []mir.Reg
	for i := 0; i < 4; i++ {
		hs = append(hs, b.Spawn("worker", mir.R(acc2), mir.R(lock2)))
	}
	for _, h := range hs {
		b.Join(mir.R(h))
	}
	v := b.Load(mir.R(acc2), 8)
	b.RetVal(mir.R(v))

	res := run(t, p, Config{Quantum: 7}) // small quantum forces interleaving
	if res.Exit != 400 {
		t.Fatalf("locked counter = %d, want 400", res.Exit)
	}
	if res.Threads != 5 {
		t.Fatalf("threads = %d", res.Threads)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	build := func() *mir.Program {
		p := mir.NewProgram()
		w := p.NewFunc("worker", 1)
		arr := w.Param(0)
		w.Loop(mir.C(50), func(i mir.Reg) {
			v := w.Load(mir.R(arr), 8)
			v2 := w.Add(mir.R(v), mir.C(1))
			w.Store(mir.R(arr), mir.R(v2), 8) // intentionally racy
		})
		w.Ret()
		b := p.NewFunc("main", 0)
		arr2 := b.Call("calloc", mir.C(1), mir.C(8))
		h1 := b.Spawn("worker", mir.R(arr2))
		h2 := b.Spawn("worker", mir.R(arr2))
		b.Join(mir.R(h1))
		b.Join(mir.R(h2))
		v := b.Load(mir.R(arr2), 8)
		b.RetVal(mir.R(v))
		return p
	}
	r1 := run(t, build(), Config{Seed: 3, Quantum: 5})
	r2 := run(t, build(), Config{Seed: 3, Quantum: 5})
	if r1.Exit != r2.Exit || r1.Steps != r2.Steps {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", r1.Exit, r1.Steps, r2.Exit, r2.Steps)
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	l := b.Call("malloc", mir.C(8))
	b.Lock(mir.R(l))
	b.Lock(mir.R(l)) // self-deadlock (recursive lock)
	b.Ret()
	m, _ := New(p, Config{})
	_, err := m.Run()
	re := wantKind(t, err, KindTrap)
	if !strings.Contains(re.Msg, "recursive lock") {
		t.Fatalf("msg = %q", re.Msg)
	}
}

func TestUnlockNotHeld(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	l := b.Const(7)
	b.Unlock(mir.R(l))
	b.Ret()
	m, _ := New(p, Config{})
	_, err := m.Run()
	wantKind(t, err, KindTrap)
}

func TestBlockedLockDeadlock(t *testing.T) {
	// Worker holds the lock forever; main blocks on it — when only
	// blocked threads remain the VM reports a deadlock.
	p := mir.NewProgram()
	w := p.NewFunc("worker", 1)
	w.Lock(mir.R(w.Param(0)))
	loop := w.NewBlock()
	w.Br(loop)
	w.SetBlock(loop)
	w.Br(loop) // spin forever holding the lock
	b := p.NewFunc("main", 0)
	l := b.Call("malloc", mir.C(8))
	b.Spawn("worker", mir.R(l))
	// Burn enough instructions for the scheduler to hand the worker its
	// first slice (and the lock) before main tries to take it.
	b.Loop(mir.C(200), func(i mir.Reg) { b.Add(mir.R(i), mir.C(1)) })
	b.Lock(mir.R(l))
	b.Ret()
	m, _ := New(p, Config{MaxSteps: 100000})
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected an error (deadlock or step cap)")
	}
}

func TestStepLimit(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	m, _ := New(p, Config{MaxSteps: 1000})
	_, err := m.Run()
	wantKind(t, err, KindStepLimit)
}

func TestUnresolvedCallee(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	b.Call("no_such_function")
	b.Ret()
	if _, err := New(p, Config{}); err == nil || !strings.Contains(err.Error(), "unresolved callee") {
		t.Fatalf("err = %v", err)
	}
}

func TestHookDispatchAndShadow(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	x := b.Const(5)
	y := b.Const(6)
	sum := b.Add(mir.R(x), mir.R(y))
	f := b.Func()
	// Hand-plant a hook after the add: handler receives (sum value,
	// tid) and its return value lands in sum's shadow register.
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, mir.Instr{
		Op: mir.OpHook, Dst: mir.NoReg,
		Hook: &mir.HookRef{
			HandlerID: 0,
			Args: []mir.HookArg{
				{Kind: mir.HookReg, Reg: sum},
				{Kind: mir.HookThread},
				{Kind: mir.HookConst, Const: 9},
			},
			MetaDst: sum,
			Name:    "testHook",
		},
	})
	// Propagate shadow: z = sum + 1 must carry the shadow.
	z := b.Add(mir.R(sum), mir.C(1))
	// Second hook reads z's shadow.
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, mir.Instr{
		Op: mir.OpHook, Dst: mir.NoReg,
		Hook: &mir.HookRef{
			HandlerID: 1,
			Args:      []mir.HookArg{{Kind: mir.HookRegMeta, Reg: z}},
			MetaDst:   mir.NoReg,
			Name:      "checkHook",
		},
	})
	b.RetVal(mir.R(z))

	var got []uint64
	var gotShadow uint64
	m, err := New(p, Config{TrackShadow: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Handlers = []HandlerFn{
		func(m *Machine, tid uint64, args []uint64) uint64 {
			got = append(got, args...)
			return 0xAB // becomes sum's shadow
		},
		func(m *Machine, tid uint64, args []uint64) uint64 {
			gotShadow = args[0]
			return 0
		},
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 12 {
		t.Fatalf("exit = %d", res.Exit)
	}
	if len(got) != 3 || got[0] != 11 || got[1] != 0 || got[2] != 9 {
		t.Fatalf("hook args = %v", got)
	}
	if gotShadow != 0xAB {
		t.Fatalf("shadow did not propagate through add: %#x", gotShadow)
	}
	if res.HookCalls != 2 {
		t.Fatalf("hook calls = %d", res.HookCalls)
	}
}

func TestLibcModels(t *testing.T) {
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		// memset + memcpy + strlen + gets round trip.
		a := b.Call("malloc", mir.C(64))
		c := b.Call("malloc", mir.C(64))
		b.CallVoid("memset", mir.R(a), mir.C('x'), mir.C(10))
		zero := b.Add(mir.R(a), mir.C(10))
		b.Store(mir.R(zero), mir.C(0), 1)
		n1 := b.Call("strlen", mir.R(a)) // 10
		b.CallVoid("memcpy", mir.R(c), mir.R(a), mir.C(11))
		n2 := b.Call("strlen", mir.R(c)) // 10
		g := b.Call("gets", mir.R(a))
		n3 := b.Call("strlen", mir.R(g)) // 16
		s1 := b.Add(mir.R(n1), mir.R(n2))
		return b.Add(mir.R(s1), mir.R(n3))
	}), Config{})
	if res.Exit != 36 {
		t.Fatalf("libc round trip = %d, want 36", res.Exit)
	}
}

func TestSSLModel(t *testing.T) {
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		ctx := b.Call("SSL_CTX_new")
		ssl := b.Call("SSL_new", mir.R(ctx))
		r0 := b.Call("SSL_read", mir.R(ssl), mir.C(0), mir.C(4)) // not connected: -1
		b.CallVoid("SSL_connect", mir.R(ssl))
		buf := b.Call("malloc", mir.C(16))
		r1 := b.Call("SSL_read", mir.R(ssl), mir.R(buf), mir.C(8)) // 8
		b.CallVoid("SSL_shutdown", mir.R(ssl))
		b.CallVoid("SSL_free", mir.R(ssl))
		neg := b.Bin(mir.OpLt, mir.R(r0), mir.C(0))
		s := b.Add(mir.R(r1), mir.R(neg))
		return s
	}), Config{})
	if res.Exit != 9 {
		t.Fatalf("ssl model = %d, want 9", res.Exit)
	}
}

func TestZlibModel(t *testing.T) {
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		strm := b.Call("calloc", mir.C(1), mir.C(48))
		in := b.Call("malloc", mir.C(64))
		out := b.Call("malloc", mir.C(64))
		b.CallVoid("memset", mir.R(in), mir.C(7), mir.C(64))
		b.CallVoid("deflateInit", mir.R(strm))
		b.Store(mir.R(strm), mir.R(in), 8)
		ai := b.Add(mir.R(strm), mir.C(8))
		b.Store(mir.R(ai), mir.C(64), 8)
		no := b.Add(mir.R(strm), mir.C(16))
		b.Store(mir.R(no), mir.R(out), 8)
		ao := b.Add(mir.R(strm), mir.C(24))
		b.Store(mir.R(ao), mir.C(64), 8)
		b.CallVoid("deflate", mir.R(strm), mir.C(4))
		to := b.Add(mir.R(strm), mir.C(32))
		total := b.Load(mir.R(to), 8) // 64/2 = 32
		b.CallVoid("deflateEnd", mir.R(strm))
		return total
	}), Config{})
	if res.Exit != 32 {
		t.Fatalf("deflate produced %d bytes, want 32", res.Exit)
	}
}

func TestReportDedup(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	b.Loop(mir.C(10), func(i mir.Reg) {
		x := b.Add(mir.R(i), mir.C(0))
		f := b.Func()
		f.Blocks[b.CurBlock()].Instrs = append(f.Blocks[b.CurBlock()].Instrs, mir.Instr{
			Op: mir.OpHook, Dst: mir.NoReg,
			Hook: &mir.HookRef{HandlerID: 0, Args: []mir.HookArg{{Kind: mir.HookReg, Reg: x}}, MetaDst: mir.NoReg, Name: "h"},
		})
	})
	b.Ret()
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Handlers = []HandlerFn{func(m *Machine, tid uint64, args []uint64) uint64 {
		m.Report("test", "same site", args[0], 0)
		return 0
	}}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 (deduped)", len(res.Reports))
	}
	if res.Reports[0].Count != 10 {
		t.Fatalf("count = %d, want 10", res.Reports[0].Count)
	}
	if !strings.Contains(res.Reports[0].String(), "same site") {
		t.Fatalf("report string: %v", res.Reports[0])
	}
}

func TestOutOfRangeMemoryFails(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	big := b.Const(1 << 60)
	b.Load(mir.R(big), 8)
	b.Ret()
	m, _ := New(p, Config{})
	_, err := m.Run()
	re := wantKind(t, err, KindTrap)
	if len(re.Backtrace) == 0 {
		t.Fatal("trap lost its backtrace")
	}
	if !strings.Contains(err.Error(), "vm:") {
		t.Fatalf("error rendering: %v", err)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	p := mir.NewProgram()
	f := p.NewFunc("rec", 0)
	f.Alloca(1 << 12)
	f.CallVoid("rec")
	f.Ret()
	b := p.NewFunc("main", 0)
	b.CallVoid("rec")
	b.Ret()
	m, _ := New(p, Config{})
	_, err := m.Run()
	re := wantKind(t, err, KindTrap)
	if !strings.Contains(re.Msg, "stack overflow") {
		t.Fatalf("msg = %q", re.Msg)
	}
}

func TestGetsDeterministic(t *testing.T) {
	prog := func() *mir.Program {
		return exprProg(func(b *mir.FuncBuilder) mir.Reg {
			buf := b.Call("malloc", mir.C(32))
			g := b.Call("gets", mir.R(buf))
			return b.Load(mir.R(g), 8)
		})
	}
	r1 := run(t, prog(), Config{})
	r2 := run(t, prog(), Config{})
	if r1.Exit != r2.Exit {
		t.Fatal("gets not deterministic")
	}
}

func TestHeapBudgetEnforced(t *testing.T) {
	// 1 KiB budget; the third 400-byte allocation must trip it long
	// before the 256 MiB address space would.
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	b.Loop(mir.C(4), func(i mir.Reg) {
		b.Call("malloc", mir.C(400))
	})
	b.Ret()
	m, _ := New(p, Config{MaxHeapBytes: 1024})
	_, err := m.Run()
	wantKind(t, err, KindHeapLimit)
}

func TestHeapBudgetCountsLiveBytesOnly(t *testing.T) {
	// Alloc/free churn far beyond the budget total must succeed: the
	// budget bounds live bytes, not cumulative allocations.
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		b.Loop(mir.C(64), func(i mir.Reg) {
			a := b.Call("malloc", mir.C(400))
			b.CallVoid("free", mir.R(a))
		})
		return b.Const(7)
	}), Config{MaxHeapBytes: 1024})
	if res.Exit != 7 {
		t.Fatalf("exit = %d", res.Exit)
	}
}

func TestDeadlineEnforced(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	m, _ := New(p, Config{Deadline: 20 * time.Millisecond})
	_, err := m.Run()
	re := wantKind(t, err, KindDeadline)
	if !re.Retryable() {
		t.Fatal("deadline misses must be retryable (load-dependent)")
	}
}

func TestOnlyDeadlineRetryable(t *testing.T) {
	for kind, want := range map[ErrKind]bool{
		KindTrap: false, KindStepLimit: false, KindHeapLimit: false,
		KindDeadline: true, KindLibFault: false,
	} {
		if got := (&RunError{Kind: kind}).Retryable(); got != want {
			t.Errorf("Retryable(%s) = %v, want %v", kind, got, want)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []ErrKind{KindTrap, KindStepLimit, KindHeapLimit, KindDeadline, KindLibFault} {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind accepted garbage")
	}
}

func TestInjectedMallocFault(t *testing.T) {
	prog := func() *mir.Program {
		return exprProg(func(b *mir.FuncBuilder) mir.Reg {
			a := b.Call("malloc", mir.C(8))
			c := b.Call("malloc", mir.C(8))
			d := b.Call("malloc", mir.C(8))
			s := b.Add(mir.R(a), mir.R(c))
			return b.Add(mir.R(s), mir.R(d))
		})
	}
	// Unfaulted control run.
	run(t, prog(), Config{})
	// Fault the second allocation; the run fails with LibFault, and the
	// failure is deterministic: same spec, same step count.
	steps := make([]uint64, 2)
	for i := range steps {
		m, err := New(prog(), Config{Faults: FaultSpec{MallocFailNth: 2}})
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := m.Run()
		re := wantKind(t, rerr, KindLibFault)
		if !strings.Contains(re.Msg, "allocation #2") {
			t.Fatalf("msg = %q", re.Msg)
		}
		steps[i] = m.Steps()
	}
	if steps[0] != steps[1] {
		t.Fatalf("injected fault not deterministic: %d vs %d steps", steps[0], steps[1])
	}
}

func TestInjectedHandlerPanicRecovered(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	x := b.Const(1)
	f := b.Func()
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, mir.Instr{
		Op: mir.OpHook, Dst: mir.NoReg,
		Hook: &mir.HookRef{HandlerID: 0, Args: []mir.HookArg{{Kind: mir.HookReg, Reg: x}}, MetaDst: mir.NoReg, Name: "h"},
	})
	b.Ret()
	m, err := New(p, Config{Faults: FaultSpec{HandlerPanicNth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m.Handlers = []HandlerFn{func(m *Machine, tid uint64, args []uint64) uint64 { return 0 }}
	_, rerr := m.Run()
	re := wantKind(t, rerr, KindTrap)
	if !strings.Contains(re.Msg, "injected fault: handler panic") {
		t.Fatalf("msg = %q", re.Msg)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	// A genuinely panicking handler (broken analysis code) must surface
	// as a KindTrap RunError, not kill the process.
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	x := b.Const(1)
	f := b.Func()
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, mir.Instr{
		Op: mir.OpHook, Dst: mir.NoReg,
		Hook: &mir.HookRef{HandlerID: 0, Args: []mir.HookArg{{Kind: mir.HookReg, Reg: x}}, MetaDst: mir.NoReg, Name: "h"},
	})
	b.Ret()
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Handlers = []HandlerFn{func(m *Machine, tid uint64, args []uint64) uint64 {
		var s []int
		return uint64(s[3]) // index out of range
	}}
	_, rerr := m.Run()
	re := wantKind(t, rerr, KindTrap)
	if !strings.Contains(re.Msg, "panic in handler") {
		t.Fatalf("msg = %q", re.Msg)
	}
}

func TestSchedPerturbDeterministicAndDistinct(t *testing.T) {
	// A racy counter: perturbation may change the final value, but the
	// same perturbation must reproduce the identical run.
	build := func() *mir.Program {
		p := mir.NewProgram()
		w := p.NewFunc("worker", 1)
		arr := w.Param(0)
		w.Loop(mir.C(50), func(i mir.Reg) {
			v := w.Load(mir.R(arr), 8)
			v2 := w.Add(mir.R(v), mir.C(1))
			w.Store(mir.R(arr), mir.R(v2), 8)
		})
		w.Ret()
		b := p.NewFunc("main", 0)
		arr2 := b.Call("calloc", mir.C(1), mir.C(8))
		h1 := b.Spawn("worker", mir.R(arr2))
		h2 := b.Spawn("worker", mir.R(arr2))
		b.Join(mir.R(h1))
		b.Join(mir.R(h2))
		v := b.Load(mir.R(arr2), 8)
		b.RetVal(mir.R(v))
		return p
	}
	at := func(perturb uint64) *Result {
		return run(t, build(), Config{Seed: 3, Quantum: 5, Faults: FaultSpec{SchedPerturb: perturb}})
	}
	a1, a2 := at(12345), at(12345)
	if a1.Exit != a2.Exit || a1.Steps != a2.Steps {
		t.Fatalf("same perturbation diverged: %d/%d vs %d/%d", a1.Exit, a1.Steps, a2.Exit, a2.Steps)
	}
	base := at(0)
	distinct := false
	for p := uint64(1); p <= 8 && !distinct; p++ {
		r := at(p * 7919)
		distinct = r.Exit != base.Exit || r.Steps != base.Steps
	}
	if !distinct {
		t.Error("no perturbation changed the racy interleaving at all")
	}
}

func TestStraddlingSubWordLoadTraps(t *testing.T) {
	// A 4-byte load at offset 6 of an 8-aligned buffer crosses its
	// containing 64-bit word. The old behavior silently shifted within
	// one word and returned bytes from the wrong locations; it must
	// trap instead.
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Alloca(16)
	a := b.Add(mir.R(buf), mir.C(6))
	b.Load(mir.R(a), 4)
	b.Ret()
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m, _ := New(p, Config{})
	_, err := m.Run()
	re := wantKind(t, err, KindTrap)
	if !strings.Contains(re.Msg, "straddles") {
		t.Fatalf("trap message %q, want straddle diagnostic", re.Msg)
	}

	// Aligned sub-word loads and full-word loads at any alignment
	// within a word stay legal.
	res := run(t, exprProg(func(b *mir.FuncBuilder) mir.Reg {
		buf := b.Alloca(16)
		b.Store(mir.R(buf), mir.C(0x1122334455667788), 8)
		a4 := b.Add(mir.R(buf), mir.C(4))
		return b.Load(mir.R(a4), 4)
	}), Config{})
	if res.Exit != 0x11223344 {
		t.Fatalf("aligned 4-byte load = %#x, want 0x11223344", res.Exit)
	}
}
