// Package vm executes MIR programs in a deterministic simulated
// environment: a flat 64-bit byte-addressable address space, a heap
// allocator that reuses freed addresses, simulated threads interleaved
// by a seeded round-robin scheduler, locks, and modeled C / OpenSSL /
// Zlib libraries.
//
// The VM is the stand-in for native execution of LLVM-instrumented
// binaries: analyses attach through OpHook instructions spliced in by
// package instrument, and every performance experiment measures wall
// time of vm.Machine.Run with and without those hooks.
package vm

import (
	"fmt"
	"io"
	"time"

	"repro/internal/mir"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config controls a Machine.
type Config struct {
	// Engine selects the execution tier. The zero value is the
	// switch-dispatch interpreter; EngineThreaded builds closure-threaded
	// code at Start. Both tiers are observably identical — verdicts,
	// exit codes, counters, schedules — which conformance enforces.
	Engine Engine
	// AddrSpace is the simulated byte address-space size (rounded up to a
	// power of two). Default 1<<28 (256 MiB).
	AddrSpace uint64
	// Quantum is the scheduler slice in instructions. Default 64.
	Quantum int
	// Seed drives scheduler jitter and the modeled rand(). Default 1.
	Seed int64
	// MaxSteps aborts runaway programs. Default 4e9.
	MaxSteps uint64
	// TrackShadow enables per-frame shadow registers (local metadata,
	// §5.5). The instrumenter sets this when an analysis uses $X.m or
	// handler return values.
	TrackShadow bool
	// StackSize is the per-thread stack region in bytes. Default 1<<19.
	StackSize uint64
	// MaxThreads bounds total threads over the run. Default 128.
	MaxThreads int
	// MaxHeapBytes bounds live simulated-heap bytes (size-class rounded).
	// 0 means no budget beyond the address space itself. Exceeding it
	// fails the run with KindHeapLimit instead of letting one runaway
	// workload eat the whole address space.
	MaxHeapBytes uint64
	// Deadline bounds the wall-clock time of the interpret loop. 0 means
	// no deadline. Exceeding it fails the run with KindDeadline — the
	// only nondeterministic budget, so leave it 0 when byte-identical
	// reruns matter.
	Deadline time.Duration
	// Faults requests deterministic fault injection (see the faults
	// sub-package for seed-derived plans). Zero value injects nothing.
	Faults FaultSpec
	// Stdout receives modeled print output; nil discards it.
	Stdout io.Writer
	// TimeHooks accumulates per-handler cumulative wall-clock ns,
	// surfaced by Metrics. Off (the default), the dispatch loop never
	// reads the clock around handlers; virtual-timing runs leave it off
	// so their metrics stay deterministic.
	TimeHooks bool
	// Trace, when non-nil, receives Chrome trace_event spans for
	// scheduler quanta and instant events for injected faults. Nil
	// emits nothing and costs one pointer test per quantum.
	Trace *obs.Trace
	// TraceTID tags this machine's trace events (the harness uses the
	// measurement-cell index).
	TraceTID int64
	// TraceSink, when non-nil, records the run as a compressed replay
	// trace (package trace): load values, library results and scheduler
	// quanta, batched per quantum and finalized with the run's terminal
	// state. Record mode is interpreter-only and incompatible with
	// Replay.
	TraceSink io.Writer
	// Replay, when non-nil, re-executes a recorded trace instead of
	// running live: the machine takes its schedule, load values and
	// library results from the stream while dispatching hooks into the
	// installed Handlers. Forces EngineReplay. The Trace may be shared
	// by concurrent machines — it is read-only during replay.
	Replay *trace.Trace
}

// FaultSpec requests deterministic fault injection. The injection
// points are counted in machine-deterministic units (allocations, hook
// dispatches), so a given spec reproduces the identical failure on
// every run with the same seed and program.
type FaultSpec struct {
	// MallocFailNth makes the nth heap allocation (1-based, counted
	// across malloc/calloc and allocating library models) return NULL
	// and fail the run with KindLibFault. 0 = off.
	MallocFailNth uint64
	// HandlerPanicNth makes the nth analysis-hook dispatch (1-based)
	// panic inside the handler; Run recovers it into a KindTrap
	// RunError. 0 = off.
	HandlerPanicNth uint64
	// SchedPerturb perturbs the scheduler RNG, deterministically
	// shifting thread interleavings without failing the run. 0 = off.
	SchedPerturb uint64
}

// Zero reports whether the spec injects nothing.
func (f FaultSpec) Zero() bool { return f == FaultSpec{} }

func (c Config) withDefaults() Config {
	if c.AddrSpace == 0 {
		c.AddrSpace = 1 << 28
	}
	// Round up to power of two.
	s := uint64(1)
	for s < c.AddrSpace {
		s <<= 1
	}
	c.AddrSpace = s
	if c.Quantum <= 0 {
		c.Quantum = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 4e9
	}
	if c.StackSize == 0 {
		c.StackSize = 1 << 19
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 128
	}
	return c
}

// HandlerFn is a compiled analysis event handler. args follow the
// insertion declaration's call-arg list; the return value feeds the
// hooked instruction's shadow register when the handler has a result.
type HandlerFn func(m *Machine, tid uint64, args []uint64) uint64

// Result summarizes a completed run.
type Result struct {
	Steps     uint64        // instructions retired
	HookCalls uint64        // analysis events dispatched
	Wall      time.Duration // wall-clock of the interpret loop
	Exit      uint64        // value returned by main (0 if none)
	Reports   []*Report     // analysis reports, first-seen order
	Threads   int           // total threads ever spawned
}

type lockState struct {
	held  bool
	owner int
}

// Machine executes one program. A Machine is single-use: construct, set
// Handlers/AtExit if instrumented, call Run once.
type Machine struct {
	cfg   Config
	prog  *mir.Program
	funcs []*linkedFunc
	idx   map[string]int

	mem   memory
	heap  heap
	locks map[uint64]*lockState

	threads []*thread
	nlive   int
	cur     *thread

	rng        uint64
	steps      uint64
	hookCalls  uint64
	allocCount uint64 // heap allocations performed (fault-injection clock)

	// Observability counters. Always on: plain field increments on
	// paths the loop already executes, so the disabled-observability
	// path stays branch- and allocation-free (internal/perf pins this
	// with AllocsPerRun), and the counts are deterministic for a given
	// program and seed. Only hookNS — the one clock-reading collector —
	// is gated, behind Config.TimeHooks.
	opCounts    [mir.NumOps]uint64
	hookPer     []uint64 // per-HandlerID dispatch counts, sized at Start
	hookNS      []uint64 // per-HandlerID cumulative handler ns (TimeHooks)
	ctxSwitches uint64   // quantum grants that changed the running thread
	quanta      uint64   // scheduler slices executed
	faultsFired uint64   // injected fault-plan firings
	lastRun     int      // last thread granted a quantum

	// Interpret-loop scheduler state, split out of Run so that
	// Start/RunQuantum/Finish can drive the loop one slice at a time.
	main     *thread
	runStart time.Time
	rr       int // round-robin cursor
	dlTick   int // slices until the next wall-clock check

	// tx is the threaded tier's reusable execution context; non-nil iff
	// the machine started with EngineThreaded (it doubles as the engine
	// dispatch flag on the quantum path).
	tx *texec

	// rec is the trace recorder (non-nil iff Config.TraceSink); rp is
	// the replay state (non-nil iff Config.Replay). Like tx, each
	// doubles as its mode's dispatch flag.
	rec        *recorder
	rp         *replayState
	traceStats trace.Stats

	// Handlers is the analysis handler table indexed by HookRef.HandlerID.
	Handlers []HandlerFn
	// AtExit callbacks run after main returns (analysis finalization).
	AtExit []func(m *Machine)

	reports   []*Report
	reportIdx map[reportKey]*Report

	libs      map[string]LibFn
	libsOwned bool // libs is a private clone, not the shared stdlib table
	ssl       sslWorld
	zlib      zlibWorld

	// ext holds per-machine state for analysis external functions,
	// keyed by analysis name. Compiled analyses are shared (and cached)
	// across concurrently running Machines, so externals must not keep
	// run state in closures; they park it here instead.
	ext map[string]any

	inputCursor uint64 // deterministic "stdin" for gets()

	err *RunError
}

type linkedInstr struct {
	mir.Instr
	UserFn int   // resolved user function index, or -1
	Lib    LibFn // resolved library model, or nil
}

type linkedFunc struct {
	name     string
	nparams  int
	nregs    int
	blocks   [][]linkedInstr
	threaded []tBlock // closure-threaded code, built at Start for EngineThreaded
}

// New links a program into a machine. The program must already Verify.
func New(prog *mir.Program, cfg Config) (*Machine, error) {
	m := &Machine{
		cfg:       cfg.withDefaults(),
		prog:      prog,
		idx:       make(map[string]int, len(prog.Funcs)),
		locks:     make(map[uint64]*lockState),
		reportIdx: make(map[reportKey]*Report),
	}
	m.rng = uint64(m.cfg.Seed)*0x9E3779B97F4A7C15 | 1
	if p := m.cfg.Faults.SchedPerturb; p != 0 {
		// Deterministically shift the scheduler's jitter stream without
		// losing the |1 non-zero guarantee.
		m.rng = (m.rng ^ p*0xBF58476D1CE4E5B9) | 1
	}
	if m.cfg.Replay != nil {
		if m.cfg.TraceSink != nil {
			return nil, fmt.Errorf("vm: TraceSink and Replay are mutually exclusive")
		}
		if fp := TraceFingerprint(prog); fp != m.cfg.Replay.ProgFP {
			return nil, fmt.Errorf("vm: replay trace was recorded against a different program (fingerprint %#x, trace has %#x)", fp, m.cfg.Replay.ProgFP)
		}
		m.cfg.Engine = EngineReplay
		m.rp = &replayState{cur: m.cfg.Replay.Cursor()}
	} else if m.cfg.Engine == EngineReplay {
		return nil, fmt.Errorf("vm: EngineReplay requires Config.Replay")
	}
	if m.cfg.TraceSink != nil {
		if m.cfg.Engine == EngineThreaded {
			return nil, fmt.Errorf("vm: trace recording is interpreter-only (EngineThreaded set)")
		}
		m.rec = &recorder{w: trace.NewWriter(m.cfg.TraceSink, TraceFingerprint(prog), m.cfg.Seed, m.cfg.Quantum)}
	}
	m.libs = stdlibTable()
	m.ssl.init()
	m.zlib.init()
	m.mem.init(m.cfg.AddrSpace)
	m.heap.init(heapBase, m.cfg.AddrSpace-uint64(m.cfg.MaxThreads)*m.cfg.StackSize)

	// Stable function indexing: entry first, then sorted later arrivals
	// is unnecessary — map iteration order doesn't matter because calls
	// resolve by name.
	names := make([]string, 0, len(prog.Funcs))
	for n := range prog.Funcs {
		names = append(names, n)
	}
	for _, n := range names {
		m.idx[n] = -1 // reserve
	}
	i := 0
	for _, n := range names {
		m.idx[n] = i
		i++
	}
	m.funcs = make([]*linkedFunc, len(names))
	for _, n := range names {
		f := prog.Funcs[n]
		lf := &linkedFunc{name: n, nparams: f.NParams, nregs: f.NRegs, blocks: make([][]linkedInstr, len(f.Blocks))}
		for bi := range f.Blocks {
			src := f.Blocks[bi].Instrs
			dst := make([]linkedInstr, len(src))
			for ii := range src {
				dst[ii] = linkedInstr{Instr: src[ii], UserFn: -1}
				if src[ii].Op == mir.OpCall || src[ii].Op == mir.OpSpawn {
					if _, ok := prog.Funcs[src[ii].Callee]; ok {
						dst[ii].UserFn = m.idx[src[ii].Callee]
					} else if lib, ok := m.libs[src[ii].Callee]; ok {
						dst[ii].Lib = lib
					} else {
						return nil, fmt.Errorf("vm: unresolved callee %q in %s", src[ii].Callee, n)
					}
					if src[ii].Op == mir.OpSpawn && dst[ii].UserFn < 0 {
						return nil, fmt.Errorf("vm: spawn target %q in %s is not a user function", src[ii].Callee, n)
					}
				}
			}
			lf.blocks[bi] = dst
		}
		m.funcs[m.idx[n]] = lf
	}
	if _, ok := m.idx[prog.Entry]; !ok {
		return nil, fmt.Errorf("vm: entry %q not found", prog.Entry)
	}
	return m, nil
}

// Steps returns instructions retired so far (valid during hooks).
func (m *Machine) Steps() uint64 { return m.steps }

// Rand returns the next value of the machine's deterministic xorshift
// generator (shared with the modeled rand() library call).
func (m *Machine) Rand() uint64 {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	return x
}

// failf records the first fault of the run with its taxonomy kind;
// later faults (usually cascades of the first) are dropped.
func (m *Machine) failf(kind ErrKind, format string, args ...any) {
	if m.err == nil {
		m.err = &RunError{Kind: kind, Msg: fmt.Sprintf(format, args...), Backtrace: m.Backtrace()}
	}
}

// heapAlloc is the budget- and fault-checked allocation path every
// allocating library model goes through. It returns 0 after recording
// a typed failure when the allocation cannot be satisfied.
func (m *Machine) heapAlloc(n uint64, what string) uint64 {
	m.allocCount++
	if f := m.cfg.Faults.MallocFailNth; f != 0 && m.allocCount == f {
		m.faultsFired++
		m.cfg.Trace.Instant("vm", "fault.malloc_null", m.cfg.TraceTID)
		m.failf(KindLibFault, "injected fault: allocation #%d (%s, %d bytes) returns NULL", f, what, n)
		return 0
	}
	if max := m.cfg.MaxHeapBytes; max != 0 && m.heap.live+sizeClass(n) > max {
		m.failf(KindHeapLimit, "heap budget %d bytes exceeded (%s, %d bytes, %d live)", max, what, n, m.heap.live)
		return 0
	}
	a := m.heap.alloc(n)
	if a == 0 {
		m.failf(KindHeapLimit, "out of simulated heap (%s, %d bytes)", what, n)
	} else if m.rec != nil {
		// Replay re-drives the (deterministic) allocator from this event
		// so address reuse and live-byte accounting stay exact without
		// re-executing the library model that allocated.
		m.rec.w.Alloc(a, n)
	}
	return a
}

// heapFree is heapAlloc's counterpart: every library model that
// releases heap memory goes through it so record mode captures the
// event for replay's allocator mirror.
func (m *Machine) heapFree(a uint64) {
	m.heap.release(a)
	if m.rec != nil {
		m.rec.w.Free(a)
	}
}

// Backtrace renders the current thread's call stack, innermost first.
func (m *Machine) Backtrace() []string {
	if m.cur == nil {
		return nil
	}
	t := m.cur
	out := make([]string, 0, len(t.frames))
	for i := len(t.frames) - 1; i >= 0; i-- {
		fr := &t.frames[i]
		out = append(out, fmt.Sprintf("%s@b%d:%d", fr.fn.name, fr.block, fr.pc))
	}
	return out
}

// ExtState returns the machine's state slot for key, creating it with
// init on first use. A Machine runs on one goroutine, so no locking is
// needed; the slot dies with the machine, so externals never leak state
// across runs.
func (m *Machine) ExtState(key string, init func() any) any {
	if m.ext == nil {
		m.ext = make(map[string]any)
	}
	s, ok := m.ext[key]
	if !ok {
		s = init()
		m.ext[key] = s
	}
	return s
}

// MachineMetrics is the observability snapshot of one run: the
// dispatch loop's always-on counters. The slices alias the machine's
// internal state — read them after the run, don't hold them across one.
type MachineMetrics struct {
	Ops         []uint64 // per-opcode retired counts, indexed by mir.Op
	HookCalls   []uint64 // per-HandlerID dispatch counts
	HookNS      []uint64 // per-HandlerID cumulative handler wall ns (nil unless Config.TimeHooks)
	CtxSwitches uint64   // quantum grants that changed the running thread
	Quanta      uint64   // scheduler slices executed
	FaultsFired uint64   // injected fault-plan firings
}

// Metrics returns the run's observability counters. Everything except
// HookNS is deterministic for a given program, seed and fault plan.
func (m *Machine) Metrics() MachineMetrics {
	return MachineMetrics{
		Ops:         m.opCounts[:],
		HookCalls:   m.hookPer,
		HookNS:      m.hookNS,
		CtxSwitches: m.ctxSwitches,
		Quanta:      m.quanta,
		FaultsFired: m.faultsFired,
	}
}

// CurrentTID returns the id of the thread being executed (valid during
// hooks and library calls).
func (m *Machine) CurrentTID() uint64 {
	if m.cur == nil {
		return 0
	}
	return uint64(m.cur.id)
}
