package vm

import (
	"fmt"
	"time"

	"repro/internal/mir"
	"repro/internal/trace"
)

// Replay tier (EngineReplay): re-executes a run from a recorded trace
// without re-executing the program's environment. The interpreter loop
// runs for real — registers, frames, stack pointers, branches, lock
// state, thread lifecycle and hook dispatch are all computed live, so
// hook arguments, report keys and backtraces come out exactly as a
// live run produces them — but the three external inputs are taken
// from the stream instead:
//
//   - the scheduler's quantum decisions (which thread, how many steps),
//   - load values (the memory model is never consulted; stores are
//     no-ops),
//   - library results (model bodies, including rand() and the
//     allocation fault clocks, are skipped entirely).
//
// Every recorded event doubles as a divergence check: addresses and
// operands recomputed at replay must match what the recording observed,
// and any mismatch fails the run with a typed "replay divergence"
// error rather than silently drifting. Replaying a trace recorded from
// the same instrumented program is step- and counter-exact; replaying
// the plain program's trace into an instrumented clone preserves the
// non-hook instruction schedule and drives the analysis's hooks live.

// replayState is the per-machine replay context. The *trace.Trace it
// cursors over may be shared with concurrent machines; all mutable
// state lives here.
type replayState struct {
	cur *trace.Cursor
}

// divergef fails the run with a replay-divergence trap. Divergence is
// deliberately KindTrap, not a new error kind: it is a verdict about
// this run, and downstream degraded-cell handling already knows traps.
func (m *Machine) divergef(format string, args ...any) {
	m.failf(KindTrap, "replay divergence: %s", fmt.Sprintf(format, args...))
}

// applyRecordedFail reproduces the recorded run's terminal failure.
func (m *Machine) applyRecordedFail(rec trace.Rec) {
	k, ok := ParseKind(rec.FailKind)
	if !ok {
		k = KindTrap
	}
	m.failf(k, "%s", rec.FailMsg)
}

// replayNext fetches the next event of the current batch, expecting
// kind want. Heap alloc/free events are consumed transparently: they
// re-drive the (deterministic) heap allocator so HeapSizeOf and
// address reuse stay exact, and assert the allocator reproduced the
// recorded addresses. Returns ok=false with m.err set on divergence,
// corruption, or when the stream ends in the recorded run's failure
// terminal (which is then applied verbatim).
func (m *Machine) replayNext(want trace.EvKind) (trace.Event, bool) {
	for {
		ev, err := m.rp.cur.Next()
		if err == trace.ErrBatchDrained {
			// The recording died mid-quantum: the only legal next record
			// is its failure terminal, reproduced here.
			rec, rerr := m.rp.cur.NextRecord()
			if rerr == nil && rec.Kind == trace.RecFail {
				m.applyRecordedFail(rec)
			} else {
				m.divergef("event stream exhausted awaiting %v", want)
			}
			return trace.Event{}, false
		}
		if err != nil {
			m.divergef("corrupt trace: %v", err)
			return trace.Event{}, false
		}
		switch ev.Kind {
		case trace.EvAlloc:
			if a := m.heap.alloc(ev.Val); a != ev.Addr {
				m.divergef("allocator produced %#x, trace recorded %#x", a, ev.Addr)
				return trace.Event{}, false
			}
			continue
		case trace.EvFree:
			m.heap.release(ev.Addr)
			continue
		}
		if ev.Kind != want {
			m.divergef("next event is %v, want %v", ev.Kind, want)
			return trace.Event{}, false
		}
		return ev, true
	}
}

// replayQuantum is RunQuantum's replay tier: instead of picking a
// runnable thread and rolling a jittered slice, it takes both from the
// next batch record. Scheduler accounting (quanta, context switches)
// mirrors the live path so counters stay exact.
func (m *Machine) replayQuantum() bool {
	rec, err := m.rp.cur.NextRecord()
	if err != nil {
		m.divergef("reading next record: %v", err)
		return false
	}
	switch rec.Kind {
	case trace.RecFail:
		m.applyRecordedFail(rec)
		return false
	case trace.RecEnd:
		m.divergef("trace ended (exit %d) while main thread still running", rec.Exit)
		return false
	}
	if rec.Tid < 0 || rec.Tid >= len(m.threads) {
		m.divergef("quantum for unknown thread %d", rec.Tid)
		return false
	}
	t := m.threads[rec.Tid]
	if t.state != tRunnable {
		m.divergef("quantum granted to non-runnable thread %d", rec.Tid)
		return false
	}
	m.rr = rec.Tid + 1
	m.quanta++
	if rec.Tid != m.lastRun {
		m.ctxSwitches++
		m.lastRun = rec.Tid
	}
	m.execReplay(t, rec.PSteps, rec.THooks)
	return m.err == nil && m.main.state != tDone
}

// replayCheckTerminal validates the stream's terminal once the main
// thread has returned: the recorded run must have ended the same way.
func (m *Machine) replayCheckTerminal() {
	rec, err := m.rp.cur.NextRecord()
	if err != nil {
		m.divergef("missing terminal record: %v", err)
		return
	}
	switch rec.Kind {
	case trace.RecEnd:
		if rec.Exit != m.main.retVal {
			m.divergef("exit value %d, trace recorded %d", m.main.retVal, rec.Exit)
		}
	case trace.RecFail:
		m.divergef("recorded run failed (%s: %s) but replay completed", rec.FailKind, rec.FailMsg)
	default:
		m.divergef("unreplayed quanta remain after main returned")
	}
}

// execReplay runs one recorded quantum on t: psteps non-hook
// instructions plus thooks trailing hook dispatches. Hooks encountered
// while psteps remain execute freely (they consumed live quantum
// budget, but the batch shape already accounts for that); once psteps
// is exhausted, each remaining dispatch draws down thooks and the
// quantum ends exactly where the live one did. A trace recorded from
// the plain program always carries thooks=0, and the same rule then
// ends every quantum on its non-hook boundary.
//
// The loop is the interpreter's (exec.go runThread) with the memory,
// library and RNG touch points swapped for trace events; keep the two
// in sync when instruction semantics change.
func (m *Machine) execReplay(t *thread, psteps, thooks uint64) {
	m.cur = t
	tid := uint64(t.id)

frameLoop:
	for t.state == tRunnable && m.err == nil {
		fr := &t.frames[len(t.frames)-1]
		regs := t.regSlab[fr.regBase : fr.regBase+fr.fn.nregs]
		var shadow []uint64
		track := m.cfg.TrackShadow
		if track {
			shadow = t.shadowSlab[fr.regBase : fr.regBase+fr.fn.nregs]
		}
		code := fr.fn.blocks

		for {
			ins := &code[fr.block][fr.pc]
			if ins.Op == mir.OpHook {
				if psteps == 0 {
					if thooks == 0 {
						return // quantum boundary
					}
					thooks--
				}
			} else {
				if psteps == 0 {
					return // quantum boundary (leftover thooks defer to the next grant)
				}
				psteps--
			}
			m.steps++
			m.opCounts[ins.Op]++

			switch ins.Op {
			case mir.OpConst:
				regs[ins.Dst] = uint64(ins.Imm)
				if track {
					shadow[ins.Dst] = 0
				}
			case mir.OpMov:
				regs[ins.Dst] = opVal(regs, ins.A)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A)
				}
			case mir.OpAdd:
				regs[ins.Dst] = opVal(regs, ins.A) + opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpSub:
				regs[ins.Dst] = opVal(regs, ins.A) - opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpMul:
				regs[ins.Dst] = opVal(regs, ins.A) * opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpDiv:
				b := int64(opVal(regs, ins.B))
				if b == 0 {
					regs[ins.Dst] = 0
				} else {
					regs[ins.Dst] = uint64(int64(opVal(regs, ins.A)) / b)
				}
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpRem:
				b := int64(opVal(regs, ins.B))
				if b == 0 {
					regs[ins.Dst] = 0
				} else {
					regs[ins.Dst] = uint64(int64(opVal(regs, ins.A)) % b)
				}
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpAnd:
				regs[ins.Dst] = opVal(regs, ins.A) & opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpOr:
				regs[ins.Dst] = opVal(regs, ins.A) | opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpXor:
				regs[ins.Dst] = opVal(regs, ins.A) ^ opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpShl:
				regs[ins.Dst] = opVal(regs, ins.A) << (opVal(regs, ins.B) & 63)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpShr:
				regs[ins.Dst] = opVal(regs, ins.A) >> (opVal(regs, ins.B) & 63)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpEq, mir.OpNe, mir.OpLt, mir.OpLe, mir.OpGt, mir.OpGe:
				a, b := int64(opVal(regs, ins.A)), int64(opVal(regs, ins.B))
				var r bool
				switch ins.Op {
				case mir.OpEq:
					r = a == b
				case mir.OpNe:
					r = a != b
				case mir.OpLt:
					r = a < b
				case mir.OpLe:
					r = a <= b
				case mir.OpGt:
					r = a > b
				default:
					r = a >= b
				}
				if r {
					regs[ins.Dst] = 1
				} else {
					regs[ins.Dst] = 0
				}
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}

			case mir.OpLoad:
				a := opVal(regs, ins.A)
				if a > m.mem.byteMask {
					m.failf(KindTrap, "load from out-of-range address %#x", a)
					return
				}
				if straddles(a, ins.Size) {
					m.failf(KindTrap, "%d-byte load at %#x straddles a word boundary", ins.Size, a)
					return
				}
				ev, ok := m.replayNext(trace.EvLoad)
				if !ok {
					return
				}
				if ev.Addr != a {
					m.divergef("load address %#x, trace recorded %#x", a, ev.Addr)
					return
				}
				regs[ins.Dst] = ev.Val
				if track {
					shadow[ins.Dst] = 0
				}
			case mir.OpStore:
				a := opVal(regs, ins.A)
				if a > m.mem.byteMask {
					m.failf(KindTrap, "store to out-of-range address %#x", a)
					return
				}
				ev, ok := m.replayNext(trace.EvStore)
				if !ok {
					return
				}
				if ev.Addr != a {
					m.divergef("store address %#x, trace recorded %#x", a, ev.Addr)
					return
				}
				// The store itself is a no-op: loads carry their values.

			case mir.OpAlloca:
				sz := (uint64(ins.Imm) + 7) &^ 7
				if t.sp-sz < t.stackLow {
					m.failf(KindTrap, "stack overflow in %s", fr.fn.name)
					return
				}
				t.sp -= sz
				regs[ins.Dst] = t.sp
				if track {
					shadow[ins.Dst] = 0
				}

			case mir.OpBr:
				fr.block = ins.Target
				fr.pc = 0
				continue
			case mir.OpCondBr:
				if opVal(regs, ins.A) != 0 {
					fr.block = ins.Target
				} else {
					fr.block = ins.Else
				}
				fr.pc = 0
				continue

			case mir.OpCall:
				if ins.UserFn >= 0 {
					args := t.libArgs[:0]
					for _, a := range ins.Args {
						args = append(args, opVal(regs, a))
					}
					var shs []uint64
					if track {
						shs = t.libShs[:0]
						for _, a := range ins.Args {
							shs = append(shs, opSh(shadow, a))
						}
					}
					fr.pc++ // resume after the call
					m.pushFrame(t, ins.UserFn, args, shs, ins.Dst)
					continue frameLoop
				}
				// Library call: the model body is skipped; its result (and
				// any allocator traffic it produced) comes from the trace.
				ev, ok := m.replayNext(trace.EvLib)
				if !ok {
					return
				}
				if ins.Dst != mir.NoReg {
					regs[ins.Dst] = ev.Val
					if track {
						shadow[ins.Dst] = 0
					}
				}

			case mir.OpRet, mir.OpRetVal:
				if ins.Op == mir.OpRetVal {
					t.retVal = opVal(regs, ins.A)
					if track {
						t.retShadow = opSh(shadow, ins.A)
					} else {
						t.retShadow = 0
					}
				} else {
					t.retVal, t.retShadow = 0, 0
				}
				t.sp = fr.savedSP
				retReg := fr.retReg
				t.frames = t.frames[:len(t.frames)-1]
				if len(t.frames) == 0 {
					t.state = tDone
					m.nlive--
					m.wakeJoiners(t.id)
					return
				}
				if retReg != mir.NoReg {
					parent := &t.frames[len(t.frames)-1]
					t.regSlab[parent.regBase+int(retReg)] = t.retVal
					if track {
						t.shadowSlab[parent.regBase+int(retReg)] = t.retShadow
					}
				}
				continue frameLoop

			case mir.OpLock:
				v := opVal(regs, ins.A)
				ev, ok := m.replayNext(trace.EvLock)
				if !ok {
					return
				}
				if ev.Addr != v {
					m.divergef("lock %#x, trace recorded %#x", v, ev.Addr)
					return
				}
				l := m.locks[v]
				if l == nil {
					l = &lockState{}
					m.locks[v] = l
				}
				if !l.held {
					l.held = true
					l.owner = t.id
				} else if l.owner == t.id {
					m.failf(KindTrap, "recursive lock %#x by thread %d", v, t.id)
					return
				} else {
					t.state = tBlockedLock
					t.waitLock = v
					return // retry this instruction when woken
				}
			case mir.OpUnlock:
				v := opVal(regs, ins.A)
				ev, ok := m.replayNext(trace.EvUnlock)
				if !ok {
					return
				}
				if ev.Addr != v {
					m.divergef("unlock %#x, trace recorded %#x", v, ev.Addr)
					return
				}
				l := m.locks[v]
				if l == nil || !l.held || l.owner != t.id {
					m.failf(KindTrap, "unlock of lock %#x not held by thread %d", v, t.id)
					return
				}
				l.held = false
				m.wakeLockWaiters(v)

			case mir.OpSpawn:
				args := t.libArgs[:0]
				for _, a := range ins.Args {
					args = append(args, opVal(regs, a))
				}
				var shs []uint64
				if track {
					shs = t.libShs[:0]
					for _, a := range ins.Args {
						shs = append(shs, opSh(shadow, a))
					}
				}
				nt := m.newThread(ins.UserFn, args, shs)
				if m.err != nil {
					return
				}
				ev, ok := m.replayNext(trace.EvSpawn)
				if !ok {
					return
				}
				if ev.Val != uint64(nt.id) {
					m.divergef("spawned thread %d, trace recorded %d", nt.id, ev.Val)
					return
				}
				regs[ins.Dst] = uint64(nt.id)
				if track {
					shadow[ins.Dst] = 0
				}
				m.cur = t // newThread does not switch execution
			case mir.OpJoin:
				target := int(opVal(regs, ins.A))
				ev, ok := m.replayNext(trace.EvJoin)
				if !ok {
					return
				}
				if ev.Val != uint64(target) {
					m.divergef("join on thread %d, trace recorded %d", target, ev.Val)
					return
				}
				if target < 0 || target >= len(m.threads) {
					m.failf(KindTrap, "join on invalid thread handle %d", target)
					return
				}
				if m.threads[target].state != tDone {
					t.state = tBlockedJoin
					t.joinTarget = target
					return // retry when woken
				}

			case mir.OpHook:
				h := ins.Hook
				args := t.hookArgs[:0]
				for _, a := range h.Args {
					switch a.Kind {
					case mir.HookConst:
						args = append(args, uint64(a.Const))
					case mir.HookReg:
						args = append(args, regs[a.Reg])
					case mir.HookRegMeta:
						if track {
							args = append(args, shadow[a.Reg])
						} else {
							args = append(args, 0)
						}
					case mir.HookThread:
						args = append(args, tid)
					}
				}
				m.hookCalls++
				m.hookPer[h.HandlerID]++
				if f := m.cfg.Faults.HandlerPanicNth; f != 0 && m.hookCalls == f {
					m.faultsFired++
					m.cfg.Trace.Instant("vm", "fault.handler_panic", m.cfg.TraceTID)
					panic(fmt.Sprintf("injected fault: handler panic at hook dispatch #%d (%s)", f, h.Name))
				}
				var r uint64
				if m.hookNS != nil {
					t0 := time.Now()
					r = m.Handlers[h.HandlerID](m, tid, args)
					m.hookNS[h.HandlerID] += uint64(time.Since(t0))
				} else {
					r = m.Handlers[h.HandlerID](m, tid, args)
				}
				if h.MetaDst != mir.NoReg && track {
					shadow[h.MetaDst] = r
				}

			case mir.OpNop:
				// nothing
			default:
				m.failf(KindTrap, "invalid opcode %s", ins.Op)
				return
			}
			fr.pc++
		}
	}
}
