package vm

import (
	"fmt"
	"strings"
)

// Report is an analysis finding (an alda_assert failure or a
// baseline-analysis detection). Repeated findings at the same source
// location are deduplicated with a count, the way sanitizers suppress
// duplicate reports.
type Report struct {
	Analysis string // handler or analysis name
	Message  string
	Got      uint64
	Expected uint64
	Where    string   // innermost program frame
	Trace    []string // full backtrace, innermost first
	Count    int
	Step     uint64 // machine step of first occurrence

	// Fn and Block locate the finding structurally. Unlike Where they
	// exclude the pc, which instrumentation shifts as hooks are
	// inserted, so differential checkers can compare finding sites
	// across compilation configurations.
	Fn    string
	Block int
}

// reportKey identifies a finding site for deduplication without
// allocating.
type reportKey struct {
	analysis, message string
	fn                string
	block, pc         int
}

func (r *Report) String() string {
	return fmt.Sprintf("[%s] %s (got=%d want=%d) at %s x%d",
		r.Analysis, r.Message, int64(r.Got), int64(r.Expected), r.Where, r.Count)
}

// Report files an analysis finding against the current execution point.
// The duplicate fast path is allocation-free: analyses like Eraser can
// fire the same report millions of times.
func (m *Machine) Report(analysis, message string, got, expected uint64) {
	var key reportKey
	key.analysis, key.message = analysis, message
	if m.cur != nil && len(m.cur.frames) > 0 {
		fr := &m.cur.frames[len(m.cur.frames)-1]
		key.fn, key.block, key.pc = fr.fn.name, fr.block, fr.pc
	} else {
		key.fn = "<exit>"
	}
	if r, ok := m.reportIdx[key]; ok {
		r.Count++
		return
	}
	trace := m.Backtrace()
	where := "<exit>"
	if len(trace) > 0 {
		where = trace[0]
	}
	r := &Report{
		Analysis: analysis,
		Message:  message,
		Got:      got,
		Expected: expected,
		Where:    where,
		Trace:    trace,
		Count:    1,
		Step:     m.steps,
		Fn:       key.fn,
		Block:    key.block,
	}
	m.reportIdx[key] = r
	m.reports = append(m.reports, r)
}

// Reports returns findings filed so far (also available on Result).
func (m *Machine) Reports() []*Report { return m.reports }

// FormatReports renders reports one per line; convenient for tests and
// the CLI.
func FormatReports(rs []*Report) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
