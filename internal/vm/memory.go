package vm

// Simulated memory: a byte-addressable space stored as lazily-allocated
// chunks of 64-bit words, plus a heap allocator with size-class
// freelists so freed addresses are reused (which is what makes
// use-after-free observable to analyses).

const (
	memChunkBits  = 15 // 32768 words = 256 KiB per chunk
	memChunkWords = 1 << memChunkBits
	memChunkMask  = memChunkWords - 1

	// heapBase leaves a small unmapped-feeling low region (null page and
	// friends); the heap grows upward from here.
	heapBase uint64 = 1 << 16
)

type memory struct {
	chunks   [][]uint64
	wordMask uint64 // (addrSpace>>3)-1
	byteMask uint64
}

func (m *memory) init(addrSpace uint64) {
	words := addrSpace >> 3
	m.chunks = make([][]uint64, (words+memChunkWords-1)>>memChunkBits)
	m.wordMask = words - 1
	m.byteMask = addrSpace - 1
}

func (m *memory) chunk(ci uint64) []uint64 {
	c := m.chunks[ci]
	if c == nil {
		c = make([]uint64, memChunkWords)
		m.chunks[ci] = c
	}
	return c
}

// loadWord reads the aligned 64-bit word containing byte address addr.
func (m *memory) loadWord(addr uint64) uint64 {
	w := (addr >> 3) & m.wordMask
	c := m.chunks[w>>memChunkBits]
	if c == nil {
		return 0
	}
	return c[w&memChunkMask]
}

func (m *memory) storeWord(addr uint64, v uint64) {
	w := (addr >> 3) & m.wordMask
	m.chunk(w >> memChunkBits)[w&memChunkMask] = v
}

// straddles reports whether a size-byte access at addr crosses out of
// its containing 64-bit word. load shifts within one word only, so a
// straddling sub-word read would silently return bytes from the wrong
// locations; the VM traps on it instead (KindTrap RunError).
func straddles(addr uint64, size uint8) bool {
	return size != 8 && (addr&7)+uint64(size) > 8
}

// load reads size bytes (1, 2, 4 or 8) at addr, little-endian within the
// containing word. Sub-word accesses must not straddle a word boundary;
// workload builders keep natural alignment so they never do, and OpLoad
// traps (straddles) before calling here.
func (m *memory) load(addr uint64, size uint8) uint64 {
	w := m.loadWord(addr)
	if size == 8 {
		return w
	}
	sh := (addr & 7) * 8
	switch size {
	case 1:
		return (w >> sh) & 0xff
	case 2:
		return (w >> sh) & 0xffff
	default: // 4
		return (w >> sh) & 0xffffffff
	}
}

func (m *memory) store(addr uint64, v uint64, size uint8) {
	if size == 8 {
		m.storeWord(addr, v)
		return
	}
	w := (addr >> 3) & m.wordMask
	c := m.chunk(w >> memChunkBits)
	i := w & memChunkMask
	sh := (addr & 7) * 8
	var mask uint64
	switch size {
	case 1:
		mask = 0xff << sh
	case 2:
		mask = 0xffff << sh
	default:
		mask = 0xffffffff << sh
	}
	c[i] = (c[i] &^ mask) | ((v << sh) & mask)
}

// ---------------------------------------------------------------------------
// Heap

const heapAlign = 16

type heap struct {
	next  uint64
	limit uint64
	live  uint64              // bytes in live allocations (size-class rounded)
	free  map[uint64][]uint64 // size class -> freed addresses (LIFO)
	sizes map[uint64]uint64   // live allocation -> size
}

func (h *heap) init(base, limit uint64) {
	h.next = base
	h.limit = limit
	h.free = make(map[uint64][]uint64)
	h.sizes = make(map[uint64]uint64)
}

func sizeClass(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + heapAlign - 1) &^ (heapAlign - 1)
}

// alloc returns a heapAlign-aligned block of at least n bytes, reusing a
// freed block of the same class when available. Returns 0 on exhaustion.
func (h *heap) alloc(n uint64) uint64 {
	cls := sizeClass(n)
	if lst := h.free[cls]; len(lst) > 0 {
		a := lst[len(lst)-1]
		h.free[cls] = lst[:len(lst)-1]
		h.sizes[a] = cls
		h.live += cls
		return a
	}
	if h.next+cls > h.limit {
		return 0
	}
	a := h.next
	h.next += cls
	h.sizes[a] = cls
	h.live += cls
	return a
}

// release frees a block; double or foreign frees are ignored (the
// analyses are what detect those). Returns the block size, 0 if unknown.
func (h *heap) release(a uint64) uint64 {
	cls, ok := h.sizes[a]
	if !ok {
		return 0
	}
	delete(h.sizes, a)
	h.free[cls] = append(h.free[cls], a)
	h.live -= cls
	return cls
}

// sizeOf returns the live allocation size of a, or 0.
func (h *heap) sizeOf(a uint64) uint64 { return h.sizes[a] }
