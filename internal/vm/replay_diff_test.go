// Record/replay differentials: a run recorded to a compressed trace
// and replayed back must be observably identical to the live run. Two
// contracts are pinned here. Same-configuration replay (the trace
// recorded from the instrumented program itself) is exact to the
// counter: steps, per-opcode retirements, hook dispatches, scheduler
// quanta and context switches all match, across fault injections and
// resource-budget trips. Cross-analysis replay (the plain program's
// trace driving an instrumented clone) preserves the verdict — exit
// value, canonical reports, error kind — against both live tiers.
package vm_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/vm/faults"
	"repro/internal/workloads"
)

func mustDecode(t *testing.T, data []byte) *trace.Trace {
	t.Helper()
	tr, err := trace.Decode(data)
	if err != nil {
		t.Fatalf("decode recorded trace: %v", err)
	}
	return tr
}

// detMetrics filters a shard down to its deterministic, replay-exact
// keys: everything except the trace stream's own stats (present only
// on the recording run).
func detMetrics(s *obs.Shard) string {
	keys := make([]string, 0, len(s.Counts))
	for k := range s.Counts {
		if strings.HasPrefix(k, "vm.trace.") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d\n", k, s.Counts[k])
	}
	return sb.String()
}

// recordReplaySame runs one analysis cell three ways — live, recording,
// replaying the recording — and asserts all three outcomes (and, on
// success, the full deterministic metric sets of live vs replay) are
// identical.
func recordReplaySame(t *testing.T, analysis, workload string, bug workloads.Bug, opt core.RunOptions) {
	t.Helper()
	a := compileCached(t, analysis)
	prog, err := workloads.BuildBug(workload, workloads.SizeTiny, bug)
	if err != nil {
		t.Fatalf("build %s(%s): %v", workload, bug, err)
	}

	liveSh := obs.NewShard()
	liveOpt := opt
	liveOpt.Metrics = liveSh
	liveOut, ierr := outcomeOf(core.RunAnalysis(prog, a, liveOpt))
	if ierr != nil {
		t.Fatalf("live: %v", ierr)
	}

	var buf bytes.Buffer
	recOpt := opt
	recOpt.TraceSink = &buf
	recOut, ierr := outcomeOf(core.RunAnalysis(prog, a, recOpt))
	if ierr != nil {
		t.Fatalf("record: %v", ierr)
	}
	if recOut != liveOut {
		t.Fatalf("recording perturbed the run\n--- live:\n%s\n--- recording:\n%s", liveOut, recOut)
	}

	repSh := obs.NewShard()
	repOpt := opt
	repOpt.ReplayTrace = mustDecode(t, buf.Bytes())
	repOpt.Metrics = repSh
	repOut, ierr := outcomeOf(core.RunAnalysis(prog, a, repOpt))
	if ierr != nil {
		t.Fatalf("replay: %v", ierr)
	}
	if repOut != liveOut {
		t.Errorf("replay diverged from live\n--- live:\n%s\n--- replay:\n%s", liveOut, repOut)
	}
	if liveOut.errKind == "" {
		if lm, rm := detMetrics(liveSh), detMetrics(repSh); lm != rm {
			t.Errorf("replay metrics differ from live\n--- live:\n%s\n--- replay:\n%s", lm, rm)
		}
	}
}

// TestReplayExactSameConfig: same-configuration replay is
// counter-exact across representative analysis/workload cells,
// including multi-threaded workloads and planted bugs.
func TestReplayExactSameConfig(t *testing.T) {
	opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20}
	cases := []struct {
		analysis, workload string
		bug                workloads.Bug
	}{
		{"uaf", "memcached", workloads.BugUAF},
		{"eraser", "radiosity", workloads.BugNone},
		{"sslsan", "memcached", workloads.BugSSLLeak},
		{"msan", "gcc", workloads.BugUninit},
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload+"/"+c.bug.String()+"/"+c.analysis, func(t *testing.T) {
			t.Parallel()
			recordReplaySame(t, c.analysis, c.workload, c.bug, opt)
		})
	}
}

// TestReplayFaultSeeds: the deterministic fault plans of seeds 1, 20
// and 23 (one of each mode — malloc failure, handler panic, scheduler
// perturbation) must replay to the identical outcome: faults that fire
// live at replay (handler panics) fire at the same dispatch, faults
// baked into the recording (malloc NULL, perturbed schedules) reproduce
// from the stream.
func TestReplayFaultSeeds(t *testing.T) {
	for _, seed := range []int64{1, 20, 23} {
		seed := seed
		plan := faults.FromSeed(seed)
		t.Run(fmt.Sprintf("seed-%d-%s", seed, plan.Mode), func(t *testing.T) {
			t.Parallel()
			opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20, Faults: plan.Spec()}
			recordReplaySame(t, "uaf", "memcached", workloads.BugNone, opt)
			recordReplaySame(t, "eraser", "radiosity", workloads.BugNone, opt)
		})
	}
}

// TestReplayBudgetTrips: ERR(kind) cells — resource budgets tripping
// the run — replay to the identical error kind and message.
func TestReplayBudgetTrips(t *testing.T) {
	t.Run("heap", func(t *testing.T) {
		opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20, MaxHeapBytes: 1 << 8}
		recordReplaySame(t, "uaf", "memcached", workloads.BugNone, opt)
	})
	t.Run("steps", func(t *testing.T) {
		opt := core.RunOptions{Seed: 1, MaxSteps: 1 << 10}
		recordReplaySame(t, "uaf", "memcached", workloads.BugNone, opt)
	})
}

// verdict is the schedule-invariant slice of an outcome — what
// cross-analysis replay (plain trace, instrumented replay) preserves.
// A plain-schedule replay is an interleaving no live scheduler seed
// produces (hooks ride the quanta for free), so occurrence tallies on
// racy sites may shift; the count-stripped conformance.SiteCanon plus
// exit and error kind is the stable projection.
type verdict struct {
	exit    uint64
	reports string
	errKind string
}

func verdictOf(res *vm.Result, err error) (verdict, error) {
	if err != nil {
		var re *vm.RunError
		if errors.As(err, &re) {
			return verdict{errKind: re.Kind.String()}, nil
		}
		return verdict{}, err
	}
	return verdict{exit: res.Exit, reports: conformance.SiteCanon(res.Reports)}, nil
}

// TestReplayCrossAnalysis: one plain trace recorded per workload, then
// replayed into instrumented clones under several analyses. The replay
// verdict must match the live verdict of both execution tiers.
func TestReplayCrossAnalysis(t *testing.T) {
	opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20}
	for _, wl := range []struct {
		workload string
		bug      workloads.Bug
	}{
		{"memcached", workloads.BugUAF},
		{"fft", workloads.BugNone},
	} {
		wl := wl
		t.Run(wl.workload+"/"+wl.bug.String(), func(t *testing.T) {
			t.Parallel()
			prog, err := workloads.BuildBug(wl.workload, workloads.SizeTiny, wl.bug)
			if err != nil {
				t.Fatal(err)
			}
			data, _, err := core.RecordTrace(prog, opt)
			if err != nil {
				t.Fatalf("record plain: %v", err)
			}
			tr := mustDecode(t, data)
			for _, analysis := range []string{"uaf", "eraser"} {
				a := compileCached(t, analysis)
				liveV, ierr := verdictOf(core.RunAnalysis(prog, a, opt))
				if ierr != nil {
					t.Fatalf("%s live: %v", analysis, ierr)
				}
				for _, eng := range engines() {
					o := opt
					o.Engine = eng
					v, ierr := verdictOf(core.RunAnalysis(prog, a, o))
					if ierr != nil {
						t.Fatalf("%s %s: %v", analysis, eng, ierr)
					}
					if v != liveV {
						t.Fatalf("%s: live tiers disagree", analysis)
					}
				}
				repOpt := opt
				repOpt.ReplayTrace = tr
				repV, ierr := verdictOf(core.RunAnalysis(prog, a, repOpt))
				if ierr != nil {
					t.Fatalf("%s replay: %v", analysis, ierr)
				}
				if repV != liveV {
					t.Errorf("%s: replay verdict diverged\n--- live:\n%+v\n--- replay:\n%+v",
						analysis, liveV, repV)
				}
			}
		})
	}
}

// TestReplayFingerprintMismatch: a trace recorded against one program
// must be rejected (as a construction error, not a run verdict) when
// replayed against another.
func TestReplayFingerprintMismatch(t *testing.T) {
	opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20}
	fft, err := workloads.Build("fft", workloads.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := workloads.Build("lu_c", workloads.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := core.RecordTrace(fft, opt)
	if err != nil {
		t.Fatal(err)
	}
	repOpt := opt
	repOpt.ReplayTrace = mustDecode(t, data)
	_, rerr := core.RunPlain(lu, repOpt)
	if rerr == nil {
		t.Fatal("replaying fft's trace into lu_c succeeded")
	}
	var re *vm.RunError
	if errors.As(rerr, &re) {
		t.Fatalf("fingerprint mismatch surfaced as a run verdict: %v", rerr)
	}
	if !strings.Contains(rerr.Error(), "fingerprint") {
		t.Fatalf("unexpected error: %v", rerr)
	}
}
