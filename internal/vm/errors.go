package vm

import (
	"encoding/json"
	"fmt"
)

// ErrKind classifies a RunError. The harness keys retry and degraded
// -rendering decisions off the kind, never off message substrings, so
// messages stay free to carry diagnostic detail.
type ErrKind uint8

const (
	// KindTrap is a program fault the VM detected: out-of-range memory,
	// lock misuse, stack overflow, invalid opcode, thread-limit breach,
	// deadlock — and panics escaping analysis handlers, which the VM
	// converts to errors rather than letting them kill the process.
	KindTrap ErrKind = iota
	// KindStepLimit is the Config.MaxSteps budget running out.
	KindStepLimit
	// KindHeapLimit is simulated-heap exhaustion: either the address
	// space itself or the Config.MaxHeapBytes budget.
	KindHeapLimit
	// KindDeadline is the Config.Deadline wall-clock budget running out.
	KindDeadline
	// KindLibFault is a fault raised inside a modeled library call:
	// libc-model misuse (unterminated strlen input) or an injected
	// library fault (FaultSpec.MallocFailNth).
	KindLibFault
)

var kindNames = [...]string{
	KindTrap:      "Trap",
	KindStepLimit: "StepLimit",
	KindHeapLimit: "HeapLimit",
	KindDeadline:  "Deadline",
	KindLibFault:  "LibFault",
}

func (k ErrKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("ErrKind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its stable label ("Trap",
// "StepLimit", ...), not its numeric value: harness checkpoint records
// and metrics labels must survive kinds being added or reordered.
func (k ErrKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind label written by MarshalJSON.
func (k *ErrKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, ok := ParseKind(s)
	if !ok {
		return fmt.Errorf("vm: unknown error kind %q", s)
	}
	*k = p
	return nil
}

// ParseKind maps a kind name (as produced by ErrKind.String) back to
// the kind; used when rehydrating checkpointed cell errors.
func ParseKind(s string) (ErrKind, bool) {
	for k, n := range kindNames {
		if n == s {
			return ErrKind(k), true
		}
	}
	return 0, false
}

// RunError is a fault detected by the VM (bad memory access, deadlock,
// an exhausted resource budget, a library fault) with its kind and a
// backtrace of the faulting thread.
type RunError struct {
	Kind      ErrKind
	Msg       string
	Backtrace []string
}

func (e *RunError) Error() string { return "vm: " + e.Msg }

// KindLabel returns the stable string label of the error's kind — the
// identifier used in harness JSONL checkpoint records and metrics
// labels, decodable with ParseKind regardless of enum evolution.
func (e *RunError) KindLabel() string { return e.Kind.String() }

// Retryable reports whether re-running the machine could plausibly
// succeed. The VM is deterministic, so only the wall-clock deadline —
// the one budget that depends on host load rather than program
// behavior — is worth retrying.
func (e *RunError) Retryable() bool { return e.Kind == KindDeadline }
