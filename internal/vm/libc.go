package vm

import (
	"fmt"
	"sync"
)

// LibFn models an external library function (§5.6.2). Library bodies
// execute atomically — the paper's analogue is code in non-instrumented
// shared objects, which is exactly what gives rise to MSan's gets()
// false positive in Table 3: memory effects inside a library are
// invisible to instruction-level instrumentation and analyses must
// handle the call boundary instead.
type LibFn func(m *Machine, t *thread, args []uint64) uint64

func arg(args []uint64, i int) uint64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

// The stdlib table is built once per process and shared by every
// Machine: LibFn bodies are stateless (all mutable state lives on the
// Machine passed in), so concurrent Machines can read the same map.
// Machines that override entries via RegisterLib get a private
// copy-on-write clone.
var (
	stdlibOnce   sync.Once
	stdlibShared map[string]LibFn
)

func stdlibTable() map[string]LibFn {
	stdlibOnce.Do(func() { stdlibShared = buildStdlibTable() })
	return stdlibShared
}

func buildStdlibTable() map[string]LibFn {
	libs := map[string]LibFn{
		"malloc": func(m *Machine, t *thread, args []uint64) uint64 {
			return m.heapAlloc(arg(args, 0), "malloc")
		},
		"calloc": func(m *Machine, t *thread, args []uint64) uint64 {
			n := arg(args, 0) * arg(args, 1)
			a := m.heapAlloc(n, "calloc")
			if a == 0 {
				return 0
			}
			for i := uint64(0); i < n; i += 8 {
				m.mem.storeWord(a+i, 0)
			}
			return a
		},
		"free": func(m *Machine, t *thread, args []uint64) uint64 {
			m.heapFree(arg(args, 0))
			return 0
		},
		"memset": func(m *Machine, t *thread, args []uint64) uint64 {
			p, v, n := arg(args, 0), arg(args, 1)&0xff, arg(args, 2)
			word := v * 0x0101010101010101
			i := uint64(0)
			for ; i+8 <= n && (p+i)&7 == 0; i += 8 {
				m.mem.storeWord(p+i, word)
			}
			for ; i < n; i++ {
				m.mem.store(p+i, v, 1)
			}
			return p
		},
		"memcpy": func(m *Machine, t *thread, args []uint64) uint64 {
			d, s, n := arg(args, 0), arg(args, 1), arg(args, 2)
			i := uint64(0)
			for ; i+8 <= n && (d+i)&7 == 0 && (s+i)&7 == 0; i += 8 {
				m.mem.storeWord(d+i, m.mem.loadWord(s+i))
			}
			for ; i < n; i++ {
				m.mem.store(d+i, m.mem.load(s+i, 1), 1)
			}
			return d
		},
		// gets writes a line of modeled input into the buffer. The line is
		// 16 deterministic bytes plus a NUL.
		"gets": func(m *Machine, t *thread, args []uint64) uint64 {
			p := arg(args, 0)
			for i := uint64(0); i < 16; i++ {
				m.mem.store(p+i, 'a'+(m.inputCursor+i)%26, 1)
			}
			m.mem.store(p+16, 0, 1)
			m.inputCursor += 16
			return p
		},
		"strlen": func(m *Machine, t *thread, args []uint64) uint64 {
			p := arg(args, 0)
			for i := uint64(0); i < 1<<16; i++ {
				if m.mem.load(p+i, 1) == 0 {
					return i
				}
			}
			m.failf(KindLibFault, "strlen: unterminated string at %#x", arg(args, 0))
			return 0
		},
		"rand": func(m *Machine, t *thread, args []uint64) uint64 {
			return m.Rand() & 0x7fffffff
		},
		"print_i64": func(m *Machine, t *thread, args []uint64) uint64 {
			if m.cfg.Stdout != nil {
				fmt.Fprintf(m.cfg.Stdout, "%d\n", int64(arg(args, 0)))
			}
			return 0
		},
		"abs64": func(m *Machine, t *thread, args []uint64) uint64 {
			v := int64(arg(args, 0))
			if v < 0 {
				v = -v
			}
			return uint64(v)
		},
	}
	registerSSL(libs)
	registerZlib(libs)
	return libs
}

// RegisterLib installs (or overrides) a library model before Run; used
// by tests and custom workloads. The machine's table starts as the
// process-wide shared stdlib table, so the first registration clones it
// rather than mutating state visible to concurrently running Machines.
func (m *Machine) RegisterLib(name string, fn LibFn) {
	if !m.libsOwned {
		clone := make(map[string]LibFn, len(m.libs)+1)
		for k, v := range m.libs {
			clone[k] = v
		}
		m.libs = clone
		m.libsOwned = true
	}
	m.libs[name] = fn
}

// LoadMem reads size bytes at addr; exposed to analysis runtimes and
// baselines (the "slow metadata reading interface" of §5.6.2).
func (m *Machine) LoadMem(addr uint64, size uint8) uint64 { return m.mem.load(addr, size) }

// StoreMem writes size bytes at addr.
func (m *Machine) StoreMem(addr uint64, v uint64, size uint8) { m.mem.store(addr, v, size) }

// HeapSizeOf returns the live allocation size containing exactly addr,
// or 0 — the allocator metadata a native runtime would expose.
func (m *Machine) HeapSizeOf(addr uint64) uint64 { return m.heap.sizeOf(addr) }

// AddrSpace returns the simulated address-space size in bytes.
func (m *Machine) AddrSpace() uint64 { return m.cfg.AddrSpace }
