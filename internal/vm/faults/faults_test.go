package faults

import (
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// -seeds selects the fault seeds the injection suite runs under;
// `make faults` pins three fixed seeds here.
var seedsFlag = flag.String("seeds", "1,2,3", "comma-separated fault-injection seeds")

func suiteSeeds(t *testing.T) []int64 {
	t.Helper()
	var out []int64
	for _, f := range strings.Split(*seedsFlag, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad -seeds entry %q: %v", f, err)
		}
		out = append(out, s)
	}
	return out
}

func TestFromSeedDeterministic(t *testing.T) {
	for s := int64(-5); s < 100; s++ {
		if FromSeed(s) != FromSeed(s) {
			t.Fatalf("seed %d expands differently across calls", s)
		}
	}
}

func TestFromSeedCoversAllModes(t *testing.T) {
	seen := map[Mode]bool{}
	for s := int64(0); s < 64; s++ {
		seen[FromSeed(s).Mode] = true
	}
	for _, m := range []Mode{MallocFail, HandlerPanic, SchedPerturb} {
		if !seen[m] {
			t.Errorf("no seed in 0..63 selects mode %s", m)
		}
	}
}

// outcome flattens one faulted cell run into a comparable string.
func outcome(res *vm.Result, err error) string {
	if err == nil {
		return fmt.Sprintf("ok steps=%d hooks=%d exit=%d", res.Steps, res.HookCalls, res.Exit)
	}
	var re *vm.RunError
	if errors.As(err, &re) {
		return fmt.Sprintf("err kind=%s msg=%s", re.Kind, re.Msg)
	}
	return "err untyped " + err.Error()
}

// wantedKind returns the RunError kind a fault mode must produce when
// its injection point fires, and whether any failure is allowed at all.
func wantedKind(m Mode) (vm.ErrKind, bool) {
	switch m {
	case MallocFail:
		return vm.KindLibFault, true
	case HandlerPanic:
		return vm.KindTrap, true
	default:
		return 0, false // perturbation must not fail the run
	}
}

// TestFaultSuite is the fault-injection suite behind `make faults`: for
// every -seeds entry it runs an instrumented workload cell under the
// seed's plan and asserts (a) the outcome is either success or a typed
// RunError of the plan's kind — never an untyped error or a process
// panic — and (b) the outcome is identical when re-run, i.e. the
// injection is deterministic.
func TestFaultSuite(t *testing.T) {
	uaf, err := analyses.Compile("uaf", compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range suiteSeeds(t) {
		plan := FromSeed(seed)
		t.Run(plan.String(), func(t *testing.T) {
			runOnce := func() string {
				p, err := workloads.Build("fft", workloads.SizeTiny)
				if err != nil {
					t.Fatal(err)
				}
				res, rerr := core.RunAnalysis(p, uaf, core.RunOptions{Faults: plan.Spec()})
				return outcome(res, rerr)
			}
			first := runOnce()
			if second := runOnce(); second != first {
				t.Fatalf("seed %d not deterministic:\n  %s\n  %s", seed, first, second)
			}
			if strings.HasPrefix(first, "err") {
				kind, mayFail := wantedKind(plan.Mode)
				if !mayFail {
					t.Fatalf("%s plan failed the run: %s", plan.Mode, first)
				}
				if want := "err kind=" + kind.String(); !strings.HasPrefix(first, want) {
					t.Fatalf("outcome %q, want prefix %q", first, want)
				}
			}
			t.Logf("%s -> %s", plan, first)
		})
	}
}

// TestMallocFaultAlwaysFires pins one explicit malloc-fail plan against
// a workload known to allocate, so the suite can't silently pass by
// never reaching any injection point.
func TestMallocFaultAlwaysFires(t *testing.T) {
	p, err := workloads.Build("fft", workloads.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := core.RunPlain(p, core.RunOptions{Faults: vm.FaultSpec{MallocFailNth: 1}})
	var re *vm.RunError
	if !errors.As(rerr, &re) || re.Kind != vm.KindLibFault {
		t.Fatalf("err = %v, want KindLibFault RunError", rerr)
	}
}
