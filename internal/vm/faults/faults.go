// Package faults derives deterministic fault-injection plans for the
// VM from compact integer seeds. A plan picks one fault mode — the nth
// heap allocation returning NULL, the nth analysis-hook dispatch
// panicking, or a scheduler perturbation — plus its injection point,
// all as pure functions of the seed. The same seed therefore reproduces
// the identical failure on every run, which is what lets the harness's
// degraded paths (ERR cells, retry, resume) be tested instead of merely
// hoped for.
package faults

import (
	"fmt"

	"repro/internal/vm"
)

// Mode is the fault family a plan injects.
type Mode uint8

const (
	// MallocFail: the nth heap allocation returns NULL and the run fails
	// with vm.KindLibFault.
	MallocFail Mode = iota
	// HandlerPanic: the nth hook dispatch panics inside the handler; the
	// VM recovers it into a vm.KindTrap error.
	HandlerPanic
	// SchedPerturb: the scheduler RNG is perturbed — interleavings shift
	// deterministically but the run still completes. Exercises the
	// adversity-without-failure path.
	SchedPerturb
)

func (m Mode) String() string {
	switch m {
	case MallocFail:
		return "malloc-fail"
	case HandlerPanic:
		return "handler-panic"
	case SchedPerturb:
		return "sched-perturb"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Plan is one derived injection plan.
type Plan struct {
	Seed int64
	Mode Mode
	// Nth is the injection point (allocation or hook-dispatch ordinal)
	// for the failing modes, or the RNG perturbation for SchedPerturb.
	Nth uint64
}

// Spec renders the plan as the vm.Config fault request.
func (p Plan) Spec() vm.FaultSpec {
	switch p.Mode {
	case MallocFail:
		return vm.FaultSpec{MallocFailNth: p.Nth}
	case HandlerPanic:
		return vm.FaultSpec{HandlerPanicNth: p.Nth}
	default:
		return vm.FaultSpec{SchedPerturb: p.Nth}
	}
}

func (p Plan) String() string {
	return fmt.Sprintf("seed=%d %s nth=%d", p.Seed, p.Mode, p.Nth)
}

// splitmix is SplitMix64 — a tiny, well-mixed expansion of the seed so
// adjacent seeds land on unrelated (mode, nth) pairs.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// FromSeed expands a seed into its injection plan. Injection points are
// kept small (1..64) so even tiny workloads reach them; a plan that
// names an ordinal past the end of a run simply never fires, which is
// itself a valid (fault-free) member of the suite.
func FromSeed(seed int64) Plan {
	x := splitmix(uint64(seed))
	p := Plan{Seed: seed, Mode: Mode(x % 3), Nth: 1 + (x>>8)%64}
	if p.Mode == SchedPerturb {
		// Perturbations are full-width: they reseed jitter, not an ordinal.
		p.Nth = splitmix(x) | 1
	}
	return p
}

// Seeds expands a set of seeds into plans (the shape `make faults` and
// the harness's -fault-seed flag consume).
func Seeds(seeds ...int64) []Plan {
	out := make([]Plan, len(seeds))
	for i, s := range seeds {
		out[i] = FromSeed(s)
	}
	return out
}
