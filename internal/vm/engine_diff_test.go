// Analysis-level engine differentials: the closure-threaded tier must
// be observably identical to the interpreter not just on the vm
// package's micro-programs but across the full stack — real compiled
// ALDA analyses, every shipped workload generator, the planted-bug
// variants the paper validates against, deterministic fault injection,
// and resource-budget trips. This file is package vm_test because it
// drives the tiers through internal/analyses and internal/core, which
// the vm package itself must not import.
package vm_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/analyses"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/vm/faults"
	"repro/internal/workloads"
)

// diffOutcome is everything a run must reproduce byte-identically
// across execution tiers: the deterministic result fields on success,
// the RunError kind (and message — trips are deterministic too) on
// failure.
type diffOutcome struct {
	steps, hooks uint64
	exit         uint64
	reports      string
	errKind      string
	errMsg       string
}

func (o diffOutcome) String() string {
	if o.errKind != "" {
		return fmt.Sprintf("ERR(%s): %s", o.errKind, o.errMsg)
	}
	return fmt.Sprintf("steps=%d hooks=%d exit=%d reports:\n%s", o.steps, o.hooks, o.exit, o.reports)
}

func outcomeOf(res *vm.Result, err error) (diffOutcome, error) {
	var o diffOutcome
	if err != nil {
		var re *vm.RunError
		if !errors.As(err, &re) {
			return o, err
		}
		o.errKind = re.Kind.String()
		o.errMsg = re.Msg
		return o, nil
	}
	o.steps = res.Steps
	o.hooks = res.HookCalls
	o.exit = res.Exit
	o.reports = vm.FormatReports(res.Reports)
	return o, nil
}

// compileCached compiles an analysis once per test binary (the
// process-wide compile cache memoizes by options fingerprint).
func compileCached(t *testing.T, name string) *compiler.Analysis {
	t.Helper()
	a, err := analyses.Compile(name, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return a
}

func engines() [2]vm.Engine { return [2]vm.Engine{vm.EngineInterp, vm.EngineThreaded} }

// diffAnalysis is the core differential: build the workload once, run
// it under the analysis with each engine, compare.
func diffAnalysis(t *testing.T, analysis, workload string, bug workloads.Bug, opt core.RunOptions) diffOutcome {
	t.Helper()
	a := compileCached(t, analysis)
	prog, err := workloads.BuildBug(workload, workloads.SizeTiny, bug)
	if err != nil {
		t.Fatalf("build %s(%s): %v", workload, bug, err)
	}
	var got [2]diffOutcome
	for i, eng := range engines() {
		o := opt
		o.Engine = eng
		res, rerr := core.RunAnalysis(prog, a, o)
		out, ierr := outcomeOf(res, rerr)
		if ierr != nil {
			t.Fatalf("%s/%s/%s: %v", workload, bug, eng, ierr)
		}
		got[i] = out
	}
	if got[0] != got[1] {
		t.Errorf("%s under %s: engines disagree\n--- interp:\n%s\n--- threaded:\n%s",
			workload, analysis, got[0], got[1])
	}
	return got[0]
}

// TestEngineDiffWorkloads sweeps every shipped workload generator at
// size tiny under a per-access analysis: retired steps, hook
// dispatches, exit values and reports must match between tiers.
func TestEngineDiffWorkloads(t *testing.T) {
	opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			diffAnalysis(t, "uaf", name, workloads.BugNone, opt)
		})
	}
}

// TestEngineDiffPlantedBugs pairs each planted defect with the analysis
// that detects it: both tiers must produce the identical (non-empty)
// report set.
func TestEngineDiffPlantedBugs(t *testing.T) {
	opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20}
	cases := []struct {
		analysis, workload string
		bug                workloads.Bug
	}{
		{"uaf", "memcached", workloads.BugUAF},
		{"msan", "gcc", workloads.BugUninit},
		{"msan", "ocean", workloads.BugUninit},
		{"msan", "volrend", workloads.BugUninit},
		{"tainttrack", "ffmpeg", workloads.BugTaint},
		{"sslsan", "memcached", workloads.BugSSLLeak},
		{"sslsan", "memcached", workloads.BugSSLShutdown},
		{"sslsan", "nginx", workloads.BugSSLShutdown},
		{"zlibsan", "ffmpeg", workloads.BugZlibUninit},
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload+"/"+c.bug.String()+"/"+c.analysis, func(t *testing.T) {
			t.Parallel()
			o := diffAnalysis(t, c.analysis, c.workload, c.bug, opt)
			if o.errKind == "" && o.reports == "" {
				t.Errorf("planted %s in %s: no reports from %s under either engine", c.bug, c.workload, c.analysis)
			}
		})
	}
}

// TestEngineDiffFaultSeeds replays the deterministic fault plans of
// seeds 1, 20 and 23 (malloc failure, handler panic, scheduler
// perturbation — one of each mode) under both tiers: a fault that
// degrades the interp run to ERR(kind) must degrade the threaded run to
// the same kind at the same point.
func TestEngineDiffFaultSeeds(t *testing.T) {
	for _, seed := range []int64{1, 20, 23} {
		seed := seed
		plan := faults.FromSeed(seed)
		t.Run(fmt.Sprintf("seed-%d-%s", seed, plan.Mode), func(t *testing.T) {
			t.Parallel()
			opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20, Faults: plan.Spec()}
			diffAnalysis(t, "uaf", "memcached", workloads.BugNone, opt)
			diffAnalysis(t, "eraser", "radiosity", workloads.BugNone, opt)
		})
	}
}

// TestEngineDiffBudgetTrips forces resource-budget failures: the
// degraded ERR(kind) cells the harness renders must match across
// engines — heap and step trips deterministically (same kind, same
// message), the wall-clock deadline by kind.
func TestEngineDiffBudgetTrips(t *testing.T) {
	t.Run("heap", func(t *testing.T) {
		opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20, MaxHeapBytes: 1 << 8}
		o := diffAnalysis(t, "uaf", "memcached", workloads.BugNone, opt)
		if o.errKind != vm.KindHeapLimit.String() {
			t.Errorf("heap budget: got %q, want ERR(%s)", o.errKind, vm.KindHeapLimit)
		}
	})
	t.Run("steps", func(t *testing.T) {
		opt := core.RunOptions{Seed: 1, MaxSteps: 1 << 10}
		o := diffAnalysis(t, "uaf", "memcached", workloads.BugNone, opt)
		if o.errKind != vm.KindStepLimit.String() {
			t.Errorf("step budget: got %q, want ERR(%s)", o.errKind, vm.KindStepLimit)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		a := compileCached(t, "uaf")
		prog, err := workloads.Build("memcached", workloads.SizeTiny)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range engines() {
			opt := core.RunOptions{Seed: 1, MaxSteps: 64 << 20, Deadline: time.Nanosecond, Engine: eng}
			_, rerr := core.RunAnalysis(prog, a, opt)
			var re *vm.RunError
			if !errors.As(rerr, &re) || re.Kind != vm.KindDeadline {
				t.Errorf("%s: 1ns deadline: got %v, want ERR(%s)", eng, rerr, vm.KindDeadline)
			}
		}
	})
}

// TestThreadedConcurrentCells is the -race proof for the threaded
// tier's sharing model: one cached threaded-engine analysis (shared,
// immutable after compile) feeds 8 concurrent measurement cells, each
// with its own instrumented program, runtime and machine — the shape of
// a parallel harness sweep. Every cell must produce the identical
// outcome, and the race detector must stay quiet.
func TestThreadedConcurrentCells(t *testing.T) {
	a, err := analyses.Compile("uaf", compiler.DefaultOptions().WithEngine(vm.EngineThreaded))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workloads.Build("memcached", workloads.SizeTiny)
	if err != nil {
		t.Fatal(err)
	}
	const cells = 8
	outs := make([]diffOutcome, cells)
	errs := make([]error, cells)
	done := make(chan int, cells)
	for i := 0; i < cells; i++ {
		go func(i int) {
			defer func() { done <- i }()
			res, rerr := core.RunAnalysis(prog, a, core.RunOptions{Seed: 1, MaxSteps: 64 << 20})
			outs[i], errs[i] = outcomeOf(res, rerr)
		}(i)
	}
	for i := 0; i < cells; i++ {
		<-done
	}
	for i := 0; i < cells; i++ {
		if errs[i] != nil {
			t.Fatalf("cell %d: %v", i, errs[i])
		}
		if outs[i] != outs[0] {
			t.Errorf("cell %d disagrees with cell 0:\n--- cell %d:\n%s\n--- cell 0:\n%s", i, i, outs[i], outs[0])
		}
	}
}
