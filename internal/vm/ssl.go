package vm

// Modeled OpenSSL subset. The model maintains per-handle connection
// state and performs the memory effects (SSL_read fills the caller's
// buffer) but deliberately tolerates misuse — detecting leaks, missing
// shutdowns and use-after-free is SSLSan's job (§6.4.1), not the
// library's.

type sslConnState uint8

const (
	sslCreated sslConnState = iota
	sslConnected
	sslShutdown
)

type sslWorld struct {
	ctxs  map[uint64]bool
	conns map[uint64]sslConnState
}

func (w *sslWorld) init() {
	w.ctxs = make(map[uint64]bool)
	w.conns = make(map[uint64]sslConnState)
}

func registerSSL(libs map[string]LibFn) {
	libs["SSL_CTX_new"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h := m.heapAlloc(32, "SSL_CTX_new")
		if h == 0 {
			return 0
		}
		m.ssl.ctxs[h] = true
		return h
	}
	libs["SSL_CTX_free"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h := arg(args, 0)
		delete(m.ssl.ctxs, h)
		m.heapFree(h)
		return 0
	}
	libs["SSL_new"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h := m.heapAlloc(64, "SSL_new")
		if h == 0 {
			return 0
		}
		m.ssl.conns[h] = sslCreated
		return h
	}
	libs["SSL_set_fd"] = func(m *Machine, t *thread, args []uint64) uint64 { return 1 }
	libs["SSL_connect"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h := arg(args, 0)
		if _, ok := m.ssl.conns[h]; !ok {
			return ^uint64(0) // -1: not a live connection
		}
		m.ssl.conns[h] = sslConnected
		return 1
	}
	libs["SSL_accept"] = libs["SSL_connect"]
	libs["SSL_read"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h, buf, n := arg(args, 0), arg(args, 1), arg(args, 2)
		if st, ok := m.ssl.conns[h]; !ok || st != sslConnected {
			return ^uint64(0)
		}
		if n > 256 {
			n = 256
		}
		for i := uint64(0); i < n; i++ {
			m.mem.store(buf+i, (h+i)&0xff, 1)
		}
		return n
	}
	libs["SSL_write"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h, buf, n := arg(args, 0), arg(args, 1), arg(args, 2)
		if st, ok := m.ssl.conns[h]; !ok || st != sslConnected {
			return ^uint64(0)
		}
		var sum uint64
		for i := uint64(0); i < n && i < 256; i++ {
			sum += m.mem.load(buf+i, 1)
		}
		_ = sum
		return n
	}
	libs["SSL_shutdown"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h := arg(args, 0)
		if _, ok := m.ssl.conns[h]; !ok {
			return ^uint64(0)
		}
		m.ssl.conns[h] = sslShutdown
		return 1
	}
	libs["SSL_free"] = func(m *Machine, t *thread, args []uint64) uint64 {
		h := arg(args, 0)
		delete(m.ssl.conns, h)
		m.heapFree(h)
		return 0
	}
	libs["SSL_get_error"] = func(m *Machine, t *thread, args []uint64) uint64 { return 0 }
}
