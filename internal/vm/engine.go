package vm

import "fmt"

// Engine selects a Machine's execution tier. Both tiers execute the
// identical abstract machine — same instruction semantics, same
// scheduler quantum stream, same observability counters, same fault
// clocks — and differ only in how dispatch is paid for: EngineInterp
// decodes one instruction per switch iteration, while EngineThreaded
// pre-binds each basic block into chains of closures
// (superinstructions) when the machine starts. Conformance asserts the
// two tiers are byte-identical in everything observable; perf shows
// they are not in wall time.
type Engine uint8

const (
	// EngineInterp is the switch-dispatch interpreter, the default.
	EngineInterp Engine = iota
	// EngineThreaded executes closure-threaded code built at Start:
	// runs of pure register instructions become compact micro-ops
	// retired by a lean loop with batched step accounting, and
	// side-effecting instructions become pre-bound closures with their
	// operands, handler functions and library models resolved once.
	EngineThreaded
	// EngineReplay re-executes a run from a recorded trace
	// (Config.Replay): register arithmetic, control flow, locks and
	// hook dispatch run live, while load values, library results and
	// the scheduler's quantum stream come from the trace — the memory
	// model, library bodies and scheduler RNG are skipped entirely.
	// Against a same-configuration recording it is step-exact; against
	// the plain program's recording it drives any instrumented clone.
	EngineReplay
)

var engineNames = [...]string{"interp", "threaded", "replay"}

func (e Engine) String() string {
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine maps the CLI spelling to an Engine. The empty string is
// the default tier, so flag plumbing can pass values through untouched.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "interp":
		return EngineInterp, nil
	case "threaded":
		return EngineThreaded, nil
	case "replay":
		return EngineReplay, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want interp, threaded or replay)", s)
}
