package vm

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/mir"
)

type tstate uint8

const (
	tRunnable tstate = iota
	tBlockedLock
	tBlockedJoin
	tDone
)

type frame struct {
	fn      *linkedFunc
	regBase int
	block   int
	pc      int
	retReg  mir.Reg // destination register in the caller's frame
	savedSP uint64
}

type thread struct {
	id         int
	state      tstate
	waitLock   uint64
	joinTarget int

	frames     []frame
	regSlab    []uint64
	shadowSlab []uint64

	sp       uint64
	stackLow uint64

	retVal    uint64
	retShadow uint64

	hookArgs []uint64
	libArgs  []uint64
	libShs   []uint64
}

// opVal and opSh resolve instruction operands against a frame's register
// and shadow windows. Free functions (not closures) so the dispatch loop
// allocates nothing per frame.
func opVal(regs []uint64, o mir.Operand) uint64 {
	if o.IsConst {
		return uint64(o.Const)
	}
	return regs[o.Reg]
}

func opSh(shadow []uint64, o mir.Operand) uint64 {
	if o.IsConst {
		return 0
	}
	return shadow[o.Reg]
}

func (m *Machine) newThread(fnIdx int, args, shadows []uint64) *thread {
	id := len(m.threads)
	if id >= m.cfg.MaxThreads {
		m.failf(KindTrap, "thread limit %d exceeded", m.cfg.MaxThreads)
		return nil
	}
	top := m.cfg.AddrSpace - uint64(id)*m.cfg.StackSize
	t := &thread{
		id:       id,
		sp:       top,
		stackLow: top - m.cfg.StackSize,
		hookArgs: make([]uint64, 16),
		libArgs:  make([]uint64, 16),
		libShs:   make([]uint64, 16),
	}
	m.threads = append(m.threads, t)
	m.nlive++
	m.pushFrame(t, fnIdx, args, shadows, mir.NoReg)
	return t
}

func (m *Machine) pushFrame(t *thread, fnIdx int, args, shadows []uint64, retReg mir.Reg) {
	fn := m.funcs[fnIdx]
	base := 0
	if n := len(t.frames); n > 0 {
		base = t.frames[n-1].regBase + t.frames[n-1].fn.nregs
	}
	need := base + fn.nregs
	for len(t.regSlab) < need {
		t.regSlab = append(t.regSlab, make([]uint64, 256)...)
	}
	regs := t.regSlab[base : base+fn.nregs]
	for i := range regs {
		regs[i] = 0
	}
	copy(regs, args)
	if m.cfg.TrackShadow {
		for len(t.shadowSlab) < need {
			t.shadowSlab = append(t.shadowSlab, make([]uint64, 256)...)
		}
		sh := t.shadowSlab[base : base+fn.nregs]
		for i := range sh {
			sh[i] = 0
		}
		copy(sh, shadows)
	}
	t.frames = append(t.frames, frame{fn: fn, regBase: base, retReg: retReg, savedSP: t.sp})
	if len(t.frames) > 1<<14 {
		m.failf(KindTrap, "call stack overflow in %s", fn.name)
	}
}

// Run executes the program to completion of its main thread and returns
// the result. Run may be called once per Machine.
//
// Panics raised inside analysis handlers (which are arbitrary Go code,
// compiler-generated or hand-written) are recovered here and surface as
// a KindTrap RunError, so one broken analysis cannot kill a process
// that is sweeping many machines.
func (m *Machine) Run() (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.failf(KindTrap, "panic in handler or VM: %v", r)
			// Finalize a recording so the trace replays up to the exact
			// panicking dispatch (Finish, which normally finalizes, is
			// skipped on this path).
			m.finishRecord()
			res, err = nil, m.err
		}
	}()
	if err := m.Start(); err != nil {
		return nil, err
	}
	for m.RunQuantum() {
	}
	return m.Finish()
}

// Start creates the main thread and arms the scheduler without
// executing any instructions. Together with RunQuantum and Finish it
// exposes the interpret loop one scheduler slice at a time, so
// benchmarks and allocation tests can measure steady-state slices in
// isolation. Run is equivalent to Start, RunQuantum until false, Finish
// — with the handler-panic recovery that only Run provides.
func (m *Machine) Start() error {
	m.main = m.newThread(m.idx[m.prog.Entry], nil, nil)
	if m.err != nil {
		return m.err
	}
	m.runStart = time.Now()
	m.rr = 0
	m.dlTick = 0
	m.lastRun = -1
	m.hookPer = make([]uint64, len(m.Handlers))
	if m.cfg.TimeHooks {
		m.hookNS = make([]uint64, len(m.Handlers))
	}
	if m.cfg.Engine == EngineThreaded {
		// Handlers must be installed before Start: hook closures bind
		// their handler function here, once, instead of per dispatch.
		m.buildThreaded()
		m.tx = &texec{m: m}
	}
	return nil
}

// RunQuantum executes one jittered scheduler slice on the next runnable
// thread and reports whether the program is still running. It returns
// false once the main thread finishes or the run fails; callers then
// collect the outcome with Finish. Unlike Run, handler panics are not
// recovered here.
func (m *Machine) RunQuantum() bool {
	main := m.main
	if m.err != nil || main == nil || main.state == tDone {
		return false
	}
	if m.steps > m.cfg.MaxSteps {
		m.failf(KindStepLimit, "step limit %d exceeded", m.cfg.MaxSteps)
		return false
	}
	if m.cfg.Deadline > 0 {
		// Checking the clock every slice would dominate short quanta;
		// every 128 slices (~8k instructions) keeps the granularity
		// far below any sensible deadline.
		if m.dlTick--; m.dlTick <= 0 {
			m.dlTick = 128
			if time.Since(m.runStart) > m.cfg.Deadline {
				m.failf(KindDeadline, "deadline %v exceeded after %d steps", m.cfg.Deadline, m.steps)
				return false
			}
		}
	}
	if m.rp != nil {
		// Replay tier: the schedule comes from the trace, not the RNG.
		return m.replayQuantum()
	}
	// Pick the next runnable thread at or after the cursor.
	n := len(m.threads)
	picked := -1
	for i := 0; i < n; i++ {
		c := (m.rr + i) % n
		if m.threads[c].state == tRunnable {
			picked = c
			break
		}
	}
	if picked < 0 {
		m.cur = main
		m.failf(KindTrap, "deadlock: no runnable threads")
		return false
	}
	m.rr = picked + 1
	m.quanta++
	if picked != m.lastRun {
		m.ctxSwitches++
		m.lastRun = picked
	}
	q := m.cfg.Quantum/2 + int(m.Rand()%uint64(m.cfg.Quantum)) + 1
	if r := m.rec; r != nil {
		r.curTid = picked
	}
	if tr := m.cfg.Trace; tr != nil {
		q0 := time.Now()
		steps0 := m.steps
		m.exec(m.threads[picked], q)
		tr.Span("vm", "quantum", m.cfg.TraceTID, q0, time.Since(q0),
			"tid", strconv.Itoa(picked),
			"steps", strconv.FormatUint(m.steps-steps0, 10))
	} else {
		m.exec(m.threads[picked], q)
	}
	if r := m.rec; r != nil {
		r.endBatch()
	}
	return m.err == nil && main.state != tDone
}

// Finish runs AtExit finalizers and assembles the Result after the
// interpret loop has stopped (RunQuantum returned false).
func (m *Machine) Finish() (*Result, error) {
	wall := time.Since(m.runStart)
	m.finishRecord()
	if m.err != nil {
		return nil, m.err
	}
	if m.rp != nil {
		// The stream must end in a matching terminal: leftover quanta or
		// a recorded failure that replay sailed past are divergence.
		m.replayCheckTerminal()
		if m.err != nil {
			return nil, m.err
		}
	}
	m.cur = m.main
	for _, fn := range m.AtExit {
		fn(m)
	}
	return &Result{
		Steps:     m.steps,
		HookCalls: m.hookCalls,
		Wall:      wall,
		Exit:      m.main.retVal,
		Reports:   m.reports,
		Threads:   len(m.threads),
	}, nil
}

// exec runs one scheduler slice on the machine's execution tier.
func (m *Machine) exec(t *thread, quantum int) {
	if m.tx != nil {
		m.runThreaded(t, quantum)
		return
	}
	m.runThread(t, quantum)
}

func (m *Machine) runThread(t *thread, quantum int) {
	m.cur = t
	tid := uint64(t.id)

frameLoop:
	for quantum > 0 && t.state == tRunnable && m.err == nil {
		fr := &t.frames[len(t.frames)-1]
		regs := t.regSlab[fr.regBase : fr.regBase+fr.fn.nregs]
		var shadow []uint64
		track := m.cfg.TrackShadow
		if track {
			shadow = t.shadowSlab[fr.regBase : fr.regBase+fr.fn.nregs]
		}
		code := fr.fn.blocks

		for quantum > 0 {
			ins := &code[fr.block][fr.pc]
			m.steps++
			m.opCounts[ins.Op]++
			quantum--
			if r := m.rec; r != nil {
				r.step(ins.Op == mir.OpHook)
			}

			switch ins.Op {
			case mir.OpConst:
				regs[ins.Dst] = uint64(ins.Imm)
				if track {
					shadow[ins.Dst] = 0
				}
			case mir.OpMov:
				regs[ins.Dst] = opVal(regs, ins.A)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A)
				}
			case mir.OpAdd:
				regs[ins.Dst] = opVal(regs, ins.A) + opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpSub:
				regs[ins.Dst] = opVal(regs, ins.A) - opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpMul:
				regs[ins.Dst] = opVal(regs, ins.A) * opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpDiv:
				b := int64(opVal(regs, ins.B))
				if b == 0 {
					regs[ins.Dst] = 0
				} else {
					regs[ins.Dst] = uint64(int64(opVal(regs, ins.A)) / b)
				}
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpRem:
				b := int64(opVal(regs, ins.B))
				if b == 0 {
					regs[ins.Dst] = 0
				} else {
					regs[ins.Dst] = uint64(int64(opVal(regs, ins.A)) % b)
				}
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpAnd:
				regs[ins.Dst] = opVal(regs, ins.A) & opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpOr:
				regs[ins.Dst] = opVal(regs, ins.A) | opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpXor:
				regs[ins.Dst] = opVal(regs, ins.A) ^ opVal(regs, ins.B)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpShl:
				regs[ins.Dst] = opVal(regs, ins.A) << (opVal(regs, ins.B) & 63)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpShr:
				regs[ins.Dst] = opVal(regs, ins.A) >> (opVal(regs, ins.B) & 63)
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}
			case mir.OpEq, mir.OpNe, mir.OpLt, mir.OpLe, mir.OpGt, mir.OpGe:
				a, b := int64(opVal(regs, ins.A)), int64(opVal(regs, ins.B))
				var r bool
				switch ins.Op {
				case mir.OpEq:
					r = a == b
				case mir.OpNe:
					r = a != b
				case mir.OpLt:
					r = a < b
				case mir.OpLe:
					r = a <= b
				case mir.OpGt:
					r = a > b
				default:
					r = a >= b
				}
				if r {
					regs[ins.Dst] = 1
				} else {
					regs[ins.Dst] = 0
				}
				if track {
					shadow[ins.Dst] = opSh(shadow, ins.A) | opSh(shadow, ins.B)
				}

			case mir.OpLoad:
				a := opVal(regs, ins.A)
				if a > m.mem.byteMask {
					m.failf(KindTrap, "load from out-of-range address %#x", a)
					return
				}
				if straddles(a, ins.Size) {
					m.failf(KindTrap, "%d-byte load at %#x straddles a word boundary", ins.Size, a)
					return
				}
				v := m.mem.load(a, ins.Size)
				regs[ins.Dst] = v
				if track {
					shadow[ins.Dst] = 0
				}
				if r := m.rec; r != nil {
					r.w.Load(a, v)
				}
			case mir.OpStore:
				a := opVal(regs, ins.A)
				if a > m.mem.byteMask {
					m.failf(KindTrap, "store to out-of-range address %#x", a)
					return
				}
				m.mem.store(a, opVal(regs, ins.B), ins.Size)
				if r := m.rec; r != nil {
					r.w.Store(a)
				}

			case mir.OpAlloca:
				sz := (uint64(ins.Imm) + 7) &^ 7
				if t.sp-sz < t.stackLow {
					m.failf(KindTrap, "stack overflow in %s", fr.fn.name)
					return
				}
				t.sp -= sz
				regs[ins.Dst] = t.sp
				if track {
					shadow[ins.Dst] = 0
				}

			case mir.OpBr:
				fr.block = ins.Target
				fr.pc = 0
				continue
			case mir.OpCondBr:
				if opVal(regs, ins.A) != 0 {
					fr.block = ins.Target
				} else {
					fr.block = ins.Else
				}
				fr.pc = 0
				continue

			case mir.OpCall:
				if ins.UserFn >= 0 {
					args := t.libArgs[:0]
					for _, a := range ins.Args {
						args = append(args, opVal(regs, a))
					}
					var shs []uint64
					if track {
						// Pooled: pushFrame copies into the callee's slab
						// before this buffer is reused.
						shs = t.libShs[:0]
						for _, a := range ins.Args {
							shs = append(shs, opSh(shadow, a))
						}
					}
					fr.pc++ // resume after the call
					m.pushFrame(t, ins.UserFn, args, shs, ins.Dst)
					continue frameLoop
				}
				args := t.libArgs[:0]
				for _, a := range ins.Args {
					args = append(args, opVal(regs, a))
				}
				r := ins.Lib(m, t, args)
				if ins.Dst != mir.NoReg {
					regs[ins.Dst] = r
					if track {
						shadow[ins.Dst] = 0
					}
				}
				if m.err != nil {
					return
				}
				if rc := m.rec; rc != nil {
					// Recorded only on success: a failing library call ends
					// the trace with its terminal record instead, and replay
					// reproduces it on the drained stream.
					rc.w.Lib(r)
				}

			case mir.OpRet, mir.OpRetVal:
				if ins.Op == mir.OpRetVal {
					t.retVal = opVal(regs, ins.A)
					if track {
						t.retShadow = opSh(shadow, ins.A)
					} else {
						t.retShadow = 0
					}
				} else {
					t.retVal, t.retShadow = 0, 0
				}
				t.sp = fr.savedSP
				retReg := fr.retReg
				t.frames = t.frames[:len(t.frames)-1]
				if len(t.frames) == 0 {
					t.state = tDone
					m.nlive--
					m.wakeJoiners(t.id)
					return
				}
				if retReg != mir.NoReg {
					parent := &t.frames[len(t.frames)-1]
					t.regSlab[parent.regBase+int(retReg)] = t.retVal
					if track {
						t.shadowSlab[parent.regBase+int(retReg)] = t.retShadow
					}
				}
				continue frameLoop

			case mir.OpLock:
				v := opVal(regs, ins.A)
				if r := m.rec; r != nil {
					// Every attempt is recorded, including ones that block:
					// the retry after wake re-executes the instruction and
					// records again, keeping replay's step count aligned.
					r.w.Lock(v)
				}
				l := m.locks[v]
				if l == nil {
					l = &lockState{}
					m.locks[v] = l
				}
				if !l.held {
					l.held = true
					l.owner = t.id
				} else if l.owner == t.id {
					m.failf(KindTrap, "recursive lock %#x by thread %d", v, t.id)
					return
				} else {
					t.state = tBlockedLock
					t.waitLock = v
					return // retry this instruction when woken
				}
			case mir.OpUnlock:
				v := opVal(regs, ins.A)
				if r := m.rec; r != nil {
					r.w.Unlock(v)
				}
				l := m.locks[v]
				if l == nil || !l.held || l.owner != t.id {
					m.failf(KindTrap, "unlock of lock %#x not held by thread %d", v, t.id)
					return
				}
				l.held = false
				m.wakeLockWaiters(v)

			case mir.OpSpawn:
				args := t.libArgs[:0]
				for _, a := range ins.Args {
					args = append(args, opVal(regs, a))
				}
				var shs []uint64
				if track {
					shs = t.libShs[:0]
					for _, a := range ins.Args {
						shs = append(shs, opSh(shadow, a))
					}
				}
				nt := m.newThread(ins.UserFn, args, shs)
				if m.err != nil {
					return
				}
				if r := m.rec; r != nil {
					r.w.Spawn(uint64(nt.id))
				}
				regs[ins.Dst] = uint64(nt.id)
				if track {
					shadow[ins.Dst] = 0
				}
				m.cur = t // newThread does not switch execution
			case mir.OpJoin:
				target := int(opVal(regs, ins.A))
				if r := m.rec; r != nil {
					r.w.Join(uint64(target))
				}
				if target < 0 || target >= len(m.threads) {
					m.failf(KindTrap, "join on invalid thread handle %d", target)
					return
				}
				if m.threads[target].state != tDone {
					t.state = tBlockedJoin
					t.joinTarget = target
					return // retry when woken
				}

			case mir.OpHook:
				h := ins.Hook
				args := t.hookArgs[:0]
				for _, a := range h.Args {
					switch a.Kind {
					case mir.HookConst:
						args = append(args, uint64(a.Const))
					case mir.HookReg:
						args = append(args, regs[a.Reg])
					case mir.HookRegMeta:
						if track {
							args = append(args, shadow[a.Reg])
						} else {
							args = append(args, 0)
						}
					case mir.HookThread:
						args = append(args, tid)
					}
				}
				m.hookCalls++
				m.hookPer[h.HandlerID]++
				if f := m.cfg.Faults.HandlerPanicNth; f != 0 && m.hookCalls == f {
					m.faultsFired++
					m.cfg.Trace.Instant("vm", "fault.handler_panic", m.cfg.TraceTID)
					panic(fmt.Sprintf("injected fault: handler panic at hook dispatch #%d (%s)", f, h.Name))
				}
				var r uint64
				if m.hookNS != nil {
					t0 := time.Now()
					r = m.Handlers[h.HandlerID](m, tid, args)
					m.hookNS[h.HandlerID] += uint64(time.Since(t0))
				} else {
					r = m.Handlers[h.HandlerID](m, tid, args)
				}
				if h.MetaDst != mir.NoReg && track {
					shadow[h.MetaDst] = r
				}

			case mir.OpNop:
				// nothing
			default:
				m.failf(KindTrap, "invalid opcode %s", ins.Op)
				return
			}
			fr.pc++
		}
		return
	}
}

func (m *Machine) wakeLockWaiters(lock uint64) {
	for _, t := range m.threads {
		if t.state == tBlockedLock && t.waitLock == lock {
			t.state = tRunnable
		}
	}
}

func (m *Machine) wakeJoiners(doneID int) {
	for _, t := range m.threads {
		if t.state == tBlockedJoin && t.joinTarget == doneID {
			t.state = tRunnable
		}
	}
}
