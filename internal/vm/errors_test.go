package vm

import (
	"encoding/json"
	"testing"
)

// TestErrKindJSONRoundTrip pins the checkpoint/metrics contract: kinds
// serialize as stable labels, every label parses back, and an unknown
// label is a loud error instead of a silently-wrong kind.
func TestErrKindJSONRoundTrip(t *testing.T) {
	for k := KindTrap; k <= KindLibFault; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if string(b) != `"`+k.String()+`"` {
			t.Fatalf("kind %v marshals as %s, want its label", k, b)
		}
		var back ErrKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", k, err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %v", k, back)
		}
	}
	var k ErrKind
	if err := json.Unmarshal([]byte(`"NoSuchKind"`), &k); err == nil {
		t.Fatal("unknown kind label unmarshaled without error")
	}
}

func TestRunErrorKindLabel(t *testing.T) {
	e := &RunError{Kind: KindHeapLimit, Msg: "boom"}
	if e.KindLabel() != "HeapLimit" {
		t.Fatalf("KindLabel = %q", e.KindLabel())
	}
	b, err := json.Marshal(struct {
		Kind ErrKind `json:"kind"`
	}{e.Kind})
	if err != nil || string(b) != `{"kind":"HeapLimit"}` {
		t.Fatalf("embedded kind marshals as %s (err %v)", b, err)
	}
}
