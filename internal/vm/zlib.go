package vm

// Modeled Zlib subset operating on a z_stream-like struct in simulated
// memory:
//
//	offset 0:  next_in   (pointer)
//	offset 8:  avail_in  (bytes)
//	offset 16: next_out  (pointer)
//	offset 24: avail_out (bytes)
//	offset 32: total_out (bytes, written by the model)
//
// As with SSL, the model tolerates misuse (inflate on an uninitialized
// stream simply consumes nothing) because detecting misuse is ZlibSan's
// job.

type zstreamState uint8

const (
	zNone zstreamState = iota
	zDeflate
	zInflate
)

type zlibWorld struct {
	streams map[uint64]zstreamState
}

func (w *zlibWorld) init() { w.streams = make(map[uint64]zstreamState) }

const (
	zOffNextIn   = 0
	zOffAvailIn  = 8
	zOffNextOut  = 16
	zOffAvailOut = 24
	zOffTotalOut = 32

	// ZStreamSize is the modeled sizeof(z_stream).
	ZStreamSize = 40
)

func registerZlib(libs map[string]LibFn) {
	libs["deflateInit"] = func(m *Machine, t *thread, args []uint64) uint64 {
		m.zlib.streams[arg(args, 0)] = zDeflate
		return 0
	}
	libs["inflateInit"] = func(m *Machine, t *thread, args []uint64) uint64 {
		m.zlib.streams[arg(args, 0)] = zInflate
		return 0
	}
	libs["deflate"] = func(m *Machine, t *thread, args []uint64) uint64 {
		return zlibPump(m, arg(args, 0), 2) // "compress": out = in/2
	}
	libs["inflate"] = func(m *Machine, t *thread, args []uint64) uint64 {
		return zlibPump(m, arg(args, 0), 1) // "decompress": out = in
	}
	libs["deflateEnd"] = func(m *Machine, t *thread, args []uint64) uint64 {
		delete(m.zlib.streams, arg(args, 0))
		return 0
	}
	libs["inflateEnd"] = libs["deflateEnd"]
}

// zlibPump moves bytes from next_in to next_out, shrinking by ratio.
// Returns 0 (Z_OK) or 1 (Z_STREAM_END when input is exhausted).
func zlibPump(m *Machine, strm uint64, ratio uint64) uint64 {
	if m.zlib.streams[strm] == zNone {
		return ^uint64(1) // Z_STREAM_ERROR
	}
	in := m.mem.loadWord(strm + zOffNextIn)
	availIn := m.mem.loadWord(strm + zOffAvailIn)
	out := m.mem.loadWord(strm + zOffNextOut)
	availOut := m.mem.loadWord(strm + zOffAvailOut)
	totalOut := m.mem.loadWord(strm + zOffTotalOut)

	produce := availIn / ratio
	if produce > availOut {
		produce = availOut
	}
	var csum uint64
	for i := uint64(0); i < availIn && i < 1<<16; i++ {
		csum += m.mem.load(in+i, 1)
	}
	for i := uint64(0); i < produce; i++ {
		m.mem.store(out+i, (csum+i)&0xff, 1)
	}
	m.mem.storeWord(strm+zOffNextIn, in+availIn)
	m.mem.storeWord(strm+zOffAvailIn, 0)
	m.mem.storeWord(strm+zOffNextOut, out+produce)
	m.mem.storeWord(strm+zOffAvailOut, availOut-produce)
	m.mem.storeWord(strm+zOffTotalOut, totalOut+produce)
	return 1 // Z_STREAM_END
}
