package vm

import (
	"sync"
	"testing"

	"repro/internal/mir"
)

// mallocLoopProg builds main() { p = malloc(64); memset(p, 0, 64);
// s = strlen(gets(p)); free(p); return s } — touches several shared
// stdlib table entries.
func mallocLoopProg() *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	sz := b.Const(64)
	ptr := b.Call("malloc", mir.R(sz))
	z := b.Const(0)
	b.Call("memset", mir.R(ptr), mir.R(z), mir.R(sz))
	line := b.Call("gets", mir.R(ptr))
	n := b.Call("strlen", mir.R(line))
	b.Call("free", mir.R(ptr))
	b.RetVal(mir.R(n))
	return p
}

// TestConcurrentMachinesSharedStdlib runs many Machines at once against
// the process-shared stdlib table; under -race this is the regression
// test for the lazily-built libc/ssl/zlib tables.
func TestConcurrentMachinesSharedStdlib(t *testing.T) {
	prog := mallocLoopProg()
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	exits := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := New(prog, Config{Seed: int64(i + 1)})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			res, err := m.Run()
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			exits[i] = res.Exit
		}(i)
	}
	wg.Wait()
	for i, e := range exits {
		if e != 16 {
			t.Errorf("worker %d: exit=%d, want 16 (gets writes 16 bytes)", i, e)
		}
	}
}

// TestRegisterLibCopyOnWrite asserts that overriding a library model on
// one Machine clones the table instead of mutating the shared one.
func TestRegisterLibCopyOnWrite(t *testing.T) {
	prog := mallocLoopProg()
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
	m1, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shared := stdlibTable()
	if len(m1.libs) != len(shared) {
		t.Fatalf("machine should start on the shared table")
	}
	// abs64 is pure: abs64() with no args returns 0; the override
	// returns 7, so behavior tells the tables apart deterministically.
	m1.RegisterLib("abs64", func(m *Machine, t *thread, args []uint64) uint64 { return 7 })
	if !m1.libsOwned {
		t.Fatal("RegisterLib should mark the table as owned")
	}
	// The shared table must be untouched — a second machine still sees
	// the original entry.
	if len(stdlibTable()) != len(shared) {
		t.Fatal("shared table size changed")
	}
	m2, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.libsOwned {
		t.Fatal("fresh machine should share the stdlib table")
	}
	if got := m2.libs["abs64"](m2, nil, nil); got != 0 {
		t.Errorf("override leaked into the shared table: abs64() = %d", got)
	}
	if got := m1.libs["abs64"](m1, nil, nil); got != 7 {
		t.Errorf("override not visible on the owning machine: got %d", got)
	}
}
