package vm

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/mir"
	"repro/internal/trace"
)

// Record mode: when Config.TraceSink is set, the interpreter emits the
// compressed event stream of package trace while it runs — the external
// inputs of the execution (load values, library results, scheduler
// quanta) that replay cannot re-derive. Everything else (arithmetic,
// addresses, lock state, hook dispatch) is recomputed at replay, so the
// recorder's hot-path cost is one nil check per instruction plus the
// per-event emits on loads, stores, sync ops and library calls.

// recorder tracks the in-flight quantum's shape for the trace writer.
type recorder struct {
	w *trace.Writer
	// psteps counts non-hook instructions retired in the current
	// quantum; trailing counts hook dispatches since the last non-hook
	// step. Together they pin the quantum boundary exactly (the
	// [step hook hook] vs [step][hook hook] ambiguity) without
	// referencing the instrumentation schema.
	psteps   uint64
	trailing uint64
	curTid   int
	done     bool
}

// step accounts one retired instruction.
func (r *recorder) step(isHook bool) {
	if isHook {
		r.trailing++
	} else {
		r.psteps++
		r.trailing = 0
	}
}

// endBatch closes the current quantum's batch.
func (r *recorder) endBatch() {
	r.w.EndBatch(r.curTid, r.psteps, r.trailing)
	r.psteps, r.trailing = 0, 0
}

// finish writes the terminal record and flushes. Safe to call more than
// once (Run's recover path and Finish both reach it); only the first
// call writes. A partial quantum interrupted by a failure (e.g. a
// handler panic unwinding past RunQuantum) is flushed first so the
// trace replays up to the exact failing instruction.
func (m *Machine) finishRecord() {
	r := m.rec
	if r == nil || r.done {
		return
	}
	r.done = true
	if r.psteps != 0 || r.trailing != 0 {
		r.endBatch()
	}
	if m.err != nil {
		r.w.Fail(m.err.Kind.String(), m.err.Msg)
	} else {
		exit := uint64(0)
		if m.main != nil {
			exit = m.main.retVal
		}
		r.w.End(exit)
	}
	m.traceStats = r.w.Stats()
	if err := r.w.Err(); err != nil && m.err == nil {
		m.failf(KindTrap, "trace sink write failed: %v", err)
	}
}

// TraceStats returns the recorder's stream statistics after a recorded
// run (zero value otherwise).
func (m *Machine) TraceStats() trace.Stats { return m.traceStats }

// TraceFingerprint hashes the replay-relevant structure of a program:
// every instruction except OpHook, in sorted-function, block, pc order.
// Instrumentation only splices OpHook instructions into blocks, so a
// plain program and every instrumented clone of it share a fingerprint
// — which is exactly the compatibility contract of a recorded trace
// (record once from the plain run, replay into any analysis).
func TraceFingerprint(p *mir.Program) uint64 {
	h := fnv.New64a()
	var buf [8 * binary.MaxVarintLen64]byte
	wv := func(vs ...int64) {
		b := buf[:0]
		for _, v := range vs {
			b = binary.AppendVarint(b, v)
		}
		h.Write(b)
	}
	wop := func(o mir.Operand) {
		if o.IsConst {
			wv(1, o.Const)
		} else {
			wv(0, int64(o.Reg))
		}
	}
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	// Insertion sort: the function count is tiny and this avoids an
	// import for one call site.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	h.Write([]byte(p.Entry))
	for _, n := range names {
		f := p.Funcs[n]
		h.Write([]byte(n))
		wv(int64(f.NParams), int64(f.NRegs), int64(len(f.Blocks)))
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				ins := &f.Blocks[bi].Instrs[ii]
				if ins.Op == mir.OpHook {
					continue
				}
				wv(int64(ins.Op), int64(ins.Dst), int64(ins.Size), ins.Imm,
					int64(ins.Target), int64(ins.Else), int64(len(ins.Args)))
				wop(ins.A)
				wop(ins.B)
				h.Write([]byte(ins.Callee))
				for _, a := range ins.Args {
					wop(a)
				}
			}
		}
	}
	return h.Sum64()
}
