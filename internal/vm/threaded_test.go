package vm

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/mir"
)

// runEngines runs the same program under both execution tiers and
// asserts that everything observable — result counters, exit value,
// reports (including their step-of-first-occurrence and backtraces),
// run-error kind/message/backtrace, per-opcode and scheduler metrics —
// is identical. It returns the interpreter's outcome.
func runEngines(t *testing.T, p *mir.Program, cfg Config, handlers func(m *Machine) []HandlerFn) (*Result, error) {
	t.Helper()
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	var results [2]*Result
	var errs [2]error
	var metrics [2]MachineMetrics
	for i, eng := range []Engine{EngineInterp, EngineThreaded} {
		c := cfg
		c.Engine = eng
		m, err := New(p, c)
		if err != nil {
			t.Fatalf("new (%s): %v", eng, err)
		}
		if handlers != nil {
			m.Handlers = handlers(m)
		}
		results[i], errs[i] = m.Run()
		metrics[i] = m.Metrics()
	}
	if (errs[0] == nil) != (errs[1] == nil) {
		t.Fatalf("engine error divergence: interp=%v threaded=%v", errs[0], errs[1])
	}
	if errs[0] != nil {
		var re0, re1 *RunError
		if !errors.As(errs[0], &re0) || !errors.As(errs[1], &re1) {
			t.Fatalf("non-RunError failure: interp=%v threaded=%v", errs[0], errs[1])
		}
		if re0.Kind != re1.Kind || re0.Msg != re1.Msg {
			t.Fatalf("RunError divergence:\n interp:   %s: %s\n threaded: %s: %s", re0.Kind, re0.Msg, re1.Kind, re1.Msg)
		}
		if !reflect.DeepEqual(re0.Backtrace, re1.Backtrace) {
			t.Fatalf("backtrace divergence:\n interp:   %v\n threaded: %v", re0.Backtrace, re1.Backtrace)
		}
	} else {
		r0, r1 := results[0], results[1]
		if r0.Steps != r1.Steps || r0.HookCalls != r1.HookCalls || r0.Exit != r1.Exit || r0.Threads != r1.Threads {
			t.Fatalf("result divergence:\n interp:   steps=%d hooks=%d exit=%d threads=%d\n threaded: steps=%d hooks=%d exit=%d threads=%d",
				r0.Steps, r0.HookCalls, r0.Exit, r0.Threads, r1.Steps, r1.HookCalls, r1.Exit, r1.Threads)
		}
		if len(r0.Reports) != len(r1.Reports) {
			t.Fatalf("report count divergence: interp=%d threaded=%d", len(r0.Reports), len(r1.Reports))
		}
		for i := range r0.Reports {
			if !reflect.DeepEqual(*r0.Reports[i], *r1.Reports[i]) {
				t.Fatalf("report %d divergence:\n interp:   %+v\n threaded: %+v", i, *r0.Reports[i], *r1.Reports[i])
			}
		}
	}
	m0, m1 := metrics[0], metrics[1]
	if !reflect.DeepEqual(m0.Ops, m1.Ops) {
		t.Fatalf("per-opcode count divergence:\n interp:   %v\n threaded: %v", m0.Ops, m1.Ops)
	}
	if !reflect.DeepEqual(m0.HookCalls, m1.HookCalls) {
		t.Fatalf("per-hook count divergence: interp=%v threaded=%v", m0.HookCalls, m1.HookCalls)
	}
	if m0.CtxSwitches != m1.CtxSwitches || m0.Quanta != m1.Quanta || m0.FaultsFired != m1.FaultsFired {
		t.Fatalf("scheduler metric divergence:\n interp:   ctx=%d quanta=%d faults=%d\n threaded: ctx=%d quanta=%d faults=%d",
			m0.CtxSwitches, m0.Quanta, m0.FaultsFired, m1.CtxSwitches, m1.Quanta, m1.FaultsFired)
	}
	return results[0], errs[0]
}

// mixProg builds a loop whose body is a long run of pure arithmetic in
// every operand shape the micro-op decoder specializes — reg-reg,
// reg-const, commuted const-reg, flipped const-reg compares, generic
// const-reg, full const folds, division by a maybe-zero register —
// feeding a store/load pair and a memory-carried accumulator. This is
// the canonical superinstruction fodder.
func mixProg(iters int64) *mir.Program {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(512))
	accAddr := b.Add(mir.R(buf), mir.C(256))
	b.Store(mir.R(accAddr), mir.C(0), 8)
	b.Loop(mir.C(iters), func(i mir.Reg) {
		x := b.Mul(mir.R(i), mir.C(0x9E37))          // RI
		y := b.Add(mir.C(7), mir.R(x))               // IR, commutes
		z := b.Bin(mir.OpSub, mir.C(1000), mir.R(y)) // IR, generic
		s := b.Bin(mir.OpShl, mir.R(x), mir.C(3))    // RI shift
		q := b.Bin(mir.OpShr, mir.C(-1), mir.R(i))   // IR, generic shift
		c1 := b.Bin(mir.OpLt, mir.C(5), mir.R(i))    // IR, flips to Gt
		c2 := b.Bin(mir.OpGe, mir.R(i), mir.C(3))    // RI compare
		d := b.Bin(mir.OpDiv, mir.R(z), mir.R(c2))   // RR div, divisor may be 0
		r := b.Bin(mir.OpRem, mir.R(q), mir.C(0))    // RI rem by zero
		f := b.Bin(mir.OpXor, mir.C(3), mir.C(5))    // const fold
		sum := b.Add(mir.R(c1), mir.R(d))
		sum = b.Add(mir.R(sum), mir.R(r))
		sum = b.Add(mir.R(sum), mir.R(f))
		sum = b.Add(mir.R(sum), mir.R(s))
		idx := b.Bin(mir.OpAnd, mir.R(i), mir.C(31))
		off := b.Mul(mir.R(idx), mir.C(8))
		addr := b.Add(mir.R(buf), mir.R(off))
		b.Store(mir.R(addr), mir.R(sum), 8)
		l := b.Load(mir.R(addr), 8)
		acc := b.Load(mir.R(accAddr), 8)
		acc2 := b.Add(mir.R(acc), mir.R(l))
		b.Store(mir.R(accAddr), mir.R(acc2), 8)
	})
	ret := b.Load(mir.R(accAddr), 8)
	b.CallVoid("free", mir.R(buf))
	b.RetVal(mir.R(ret))
	return p
}

func TestEngineDifferentialMix(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"shadow", Config{TrackShadow: true}},
		{"seed7", Config{Seed: 7}},
		{"quantum3", Config{Quantum: 3}}, // chains never fit: single-step fallback
		{"quantum17", Config{Quantum: 17}},
		{"quantum1024", Config{Quantum: 1024}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := runEngines(t, mixProg(20000), tc.cfg, nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Steps == 0 {
				t.Fatal("no steps retired")
			}
		})
	}
}

// TestEngineDifferentialBranchIntoChain drives a branch whose target
// block starts with a fused chain, from both the fallthrough and the
// taken edge, with data-dependent direction.
func TestEngineDifferentialBranchIntoChain(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	buf := b.Call("malloc", mir.C(64))
	b.Loop(mir.C(5000), func(i mir.Reg) {
		odd := b.Bin(mir.OpAnd, mir.R(i), mir.C(1))
		b.If(mir.R(odd), func() {
			// Long pure run: fuses into a chain entered by the taken edge.
			v := b.Mul(mir.R(i), mir.C(3))
			v = b.Add(mir.R(v), mir.C(11))
			v = b.Bin(mir.OpXor, mir.R(v), mir.C(0x5555))
			v = b.Bin(mir.OpShl, mir.R(v), mir.C(1))
			v = b.Bin(mir.OpShr, mir.R(v), mir.C(2))
			b.Store(mir.R(buf), mir.R(v), 8)
		}, func() {
			w := b.Add(mir.R(i), mir.C(1))
			b.Store(mir.R(buf), mir.R(w), 8)
		})
	})
	r := b.Load(mir.R(buf), 8)
	b.RetVal(mir.R(r))
	if _, err := runEngines(t, p, Config{}, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestEngineDifferentialTraps plants traps in the middle of would-be
// superinstructions: the trap step, message, backtrace pc and every
// counter up to the fault must match across tiers.
func TestEngineDifferentialTraps(t *testing.T) {
	cases := []struct {
		name string
		prog func() *mir.Program
		kind ErrKind
	}{
		{"load-out-of-range-mid-chain", func() *mir.Program {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			x := b.Const(3)
			y := b.Add(mir.R(x), mir.C(4))
			z := b.Mul(mir.R(y), mir.C(5))
			bad := b.Load(mir.C(1<<40), 8) // trap mid-chain
			w := b.Add(mir.R(z), mir.R(bad))
			b.RetVal(mir.R(w))
			return p
		}, KindTrap},
		{"straddling-load", func() *mir.Program {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			buf := b.Call("malloc", mir.C(64))
			a := b.Add(mir.R(buf), mir.C(5))
			v := b.Load(mir.R(a), 4) // 4 bytes at offset 5 straddle a word
			b.RetVal(mir.R(v))
			return p
		}, KindTrap},
		{"store-out-of-range", func() *mir.Program {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			x := b.Const(1)
			y := b.Add(mir.R(x), mir.C(2))
			b.Store(mir.C(1<<40), mir.R(y), 8)
			b.Ret()
			return p
		}, KindTrap},
		{"recursive-lock", func() *mir.Program {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			l := b.Const(0x1000)
			b.Lock(mir.R(l))
			b.Lock(mir.R(l))
			b.Ret()
			return p
		}, KindTrap},
		{"unlock-not-held", func() *mir.Program {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			l := b.Const(0x1000)
			b.Unlock(mir.R(l))
			b.Ret()
			return p
		}, KindTrap},
		{"join-invalid-handle", func() *mir.Program {
			p := mir.NewProgram()
			b := p.NewFunc("main", 0)
			h := b.Const(99)
			b.Join(mir.R(h))
			b.Ret()
			return p
		}, KindTrap},
		{"stack-overflow", func() *mir.Program {
			p := mir.NewProgram()
			f := p.NewFunc("f", 0)
			f.Alloca(64)
			f.CallVoid("f")
			f.Ret()
			b := p.NewFunc("main", 0)
			r := b.Call("f")
			b.RetVal(mir.R(r))
			p.Entry = "main"
			return p
		}, KindTrap},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := runEngines(t, tc.prog(), Config{}, nil)
			wantKind(t, err, tc.kind)
		})
	}
}

// TestEngineDifferentialThreads interleaves lock-stepping workers; the
// shared scheduler stream must produce the identical interleaving (and
// so identical ctx-switch/quanta counts) on both tiers.
func TestEngineDifferentialThreads(t *testing.T) {
	build := func() *mir.Program {
		p := mir.NewProgram()
		w := p.NewFunc("worker", 2)
		acc, lock := w.Param(0), w.Param(1)
		w.Loop(mir.C(500), func(i mir.Reg) {
			w.Lock(mir.R(lock))
			v := w.Load(mir.R(acc), 8)
			v2 := w.Add(mir.R(v), mir.C(1))
			w.Store(mir.R(acc), mir.R(v2), 8)
			w.Unlock(mir.R(lock))
		})
		w.Ret()
		b := p.NewFunc("main", 0)
		buf := b.Call("malloc", mir.C(16))
		lk := b.Const(0x4000)
		h1 := b.Spawn("worker", mir.R(buf), mir.R(lk))
		h2 := b.Spawn("worker", mir.R(buf), mir.R(lk))
		h3 := b.Spawn("worker", mir.R(buf), mir.R(lk))
		b.Join(mir.R(h1))
		b.Join(mir.R(h2))
		b.Join(mir.R(h3))
		v := b.Load(mir.R(buf), 8)
		b.RetVal(mir.R(v))
		p.Entry = "main"
		return p
	}
	for _, seed := range []int64{1, 7, 1337} {
		res, err := runEngines(t, build(), Config{Seed: seed}, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Exit != 1500 {
			t.Fatalf("seed %d: exit = %d, want 1500", seed, res.Exit)
		}
	}
}

func TestEngineDifferentialDeadlock(t *testing.T) {
	p := mir.NewProgram()
	w := p.NewFunc("worker", 1)
	w.Lock(mir.R(w.Param(0)))
	w.Loop(mir.C(1<<20), func(i mir.Reg) {})
	w.Ret()
	b := p.NewFunc("main", 0)
	l := b.Const(0x2000)
	b.Spawn("worker", mir.R(l))
	b.Loop(mir.C(200), func(i mir.Reg) {})
	b.Lock(mir.R(l)) // blocks forever: worker never unlocks
	b.Ret()
	p.Entry = "main"
	_, err := runEngines(t, p, Config{MaxSteps: 1 << 22}, nil)
	if err == nil {
		t.Fatal("expected a failure")
	}
}

// TestEngineDifferentialHooks plants hooks inside a fused block: arg
// marshalling (reg, shadow, tid, const), MetaDst shadow writes and the
// handler-visible Steps() clock must all match.
func TestEngineDifferentialHooks(t *testing.T) {
	p := mir.NewProgram()
	b := p.NewFunc("main", 0)
	x := b.Const(5)
	y := b.Const(6)
	sum := b.Add(mir.R(x), mir.R(y))
	f := b.Func()
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, mir.Instr{
		Op: mir.OpHook, Dst: mir.NoReg,
		Hook: &mir.HookRef{
			HandlerID: 0,
			Args: []mir.HookArg{
				{Kind: mir.HookReg, Reg: sum},
				{Kind: mir.HookThread},
				{Kind: mir.HookConst, Const: 9},
			},
			MetaDst: sum,
			Name:    "testHook",
		},
	})
	z := b.Add(mir.R(sum), mir.C(1))
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, mir.Instr{
		Op: mir.OpHook, Dst: mir.NoReg,
		Hook: &mir.HookRef{
			HandlerID: 1,
			Args:      []mir.HookArg{{Kind: mir.HookRegMeta, Reg: z}},
			MetaDst:   mir.NoReg,
			Name:      "checkHook",
		},
	})
	b.RetVal(mir.R(z))

	type seen struct {
		args   []uint64
		steps  []uint64
		shadow uint64
	}
	var per [2]seen
	idx := 0
	handlers := func(m *Machine) []HandlerFn {
		s := &per[idx]
		idx++
		return []HandlerFn{
			func(m *Machine, tid uint64, args []uint64) uint64 {
				s.args = append(s.args, args...)
				s.steps = append(s.steps, m.Steps())
				return 0xAB
			},
			func(m *Machine, tid uint64, args []uint64) uint64 {
				s.shadow = args[0]
				s.steps = append(s.steps, m.Steps())
				return 0
			},
		}
	}
	if _, err := runEngines(t, p, Config{TrackShadow: true}, handlers); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(per[0], per[1]) {
		t.Fatalf("handler-visible state divergence:\n interp:   %+v\n threaded: %+v", per[0], per[1])
	}
	if per[0].shadow != 0xAB {
		t.Fatalf("shadow did not propagate: %#x", per[0].shadow)
	}
}

// TestEngineDifferentialFaults exercises the deterministic fault
// clocks: nth-allocation NULL, nth-hook handler panic (recovered by Run
// into a trap) and scheduler perturbation.
func TestEngineDifferentialFaults(t *testing.T) {
	hooked := func() *mir.Program {
		p := mir.NewProgram()
		b := p.NewFunc("main", 0)
		b.Loop(mir.C(64), func(i mir.Reg) {
			v := b.Add(mir.R(i), mir.C(1))
			f := b.Func()
			f.Blocks[b.CurBlock()].Instrs = append(f.Blocks[b.CurBlock()].Instrs, mir.Instr{
				Op: mir.OpHook, Dst: mir.NoReg,
				Hook: &mir.HookRef{
					HandlerID: 0,
					Args:      []mir.HookArg{{Kind: mir.HookReg, Reg: v}},
					MetaDst:   mir.NoReg,
					Name:      "ev",
				},
			})
		})
		b.Ret()
		return p
	}
	countHandler := func(m *Machine) []HandlerFn {
		return []HandlerFn{func(m *Machine, tid uint64, args []uint64) uint64 { return 0 }}
	}
	t.Run("handler-panic", func(t *testing.T) {
		for _, nth := range []uint64{1, 20, 23} {
			_, err := runEngines(t, hooked(), Config{Faults: FaultSpec{HandlerPanicNth: nth}}, countHandler)
			wantKind(t, err, KindTrap)
		}
	})
	t.Run("malloc-null", func(t *testing.T) {
		p := mir.NewProgram()
		b := p.NewFunc("main", 0)
		b.Loop(mir.C(8), func(i mir.Reg) {
			buf := b.Call("malloc", mir.C(64))
			b.Store(mir.R(buf), mir.R(i), 8)
			b.CallVoid("free", mir.R(buf))
		})
		b.Ret()
		_, err := runEngines(t, p, Config{Faults: FaultSpec{MallocFailNth: 3}}, nil)
		wantKind(t, err, KindLibFault)
	})
	t.Run("sched-perturb", func(t *testing.T) {
		if _, err := runEngines(t, mixProg(3000), Config{Faults: FaultSpec{SchedPerturb: 0xDEADBEEF}}, nil); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
}

// TestEngineDifferentialBudgets trips each resource budget: the step
// limit, the heap budget and the (first-check) deadline — degraded
// outcomes must carry the same kind, message and step count.
func TestEngineDifferentialBudgets(t *testing.T) {
	t.Run("step-limit", func(t *testing.T) {
		_, err := runEngines(t, mixProg(1<<30), Config{MaxSteps: 1 << 16}, nil)
		wantKind(t, err, KindStepLimit)
	})
	t.Run("heap-budget", func(t *testing.T) {
		p := mir.NewProgram()
		b := p.NewFunc("main", 0)
		b.Loop(mir.C(1024), func(i mir.Reg) {
			buf := b.Call("malloc", mir.C(1024))
			b.Store(mir.R(buf), mir.R(i), 8)
		})
		b.Ret()
		_, err := runEngines(t, p, Config{MaxHeapBytes: 1 << 14}, nil)
		wantKind(t, err, KindHeapLimit)
	})
	t.Run("deadline-first-check", func(t *testing.T) {
		// A 1ns deadline trips at the first wall-clock check (slice 128)
		// on any machine, so the failing step count is deterministic and
		// must agree across tiers.
		_, err := runEngines(t, mixProg(1<<30), Config{Deadline: time.Nanosecond}, nil)
		wantKind(t, err, KindDeadline)
	})
}

// TestEngineDifferentialCalls covers user calls and returns terminating
// chains: deep call trees, return values, and argument shadow plumbing.
func TestEngineDifferentialCalls(t *testing.T) {
	p := mir.NewProgram()
	fib := p.NewFunc("fib", 1)
	n := fib.Param(0)
	isSmall := fib.Bin(mir.OpLt, mir.R(n), mir.C(2))
	small := fib.NewBlock()
	big := fib.NewBlock()
	fib.CondBr(mir.R(isSmall), small, big)
	fib.SetBlock(small)
	fib.RetVal(mir.R(n))
	fib.SetBlock(big)
	a := fib.Sub(mir.R(n), mir.C(1))
	c := fib.Sub(mir.R(n), mir.C(2))
	ra := fib.Call("fib", mir.R(a))
	rb := fib.Call("fib", mir.R(c))
	s := fib.Add(mir.R(ra), mir.R(rb))
	fib.RetVal(mir.R(s))
	b := p.NewFunc("main", 0)
	r := b.Call("fib", mir.C(17))
	b.RetVal(mir.R(r))
	p.Entry = "main"
	res, err := runEngines(t, p, Config{}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Exit != 1597 {
		t.Fatalf("fib(17) = %d, want 1597", res.Exit)
	}
}

// TestThreadedChainLayout sanity-checks the fuser itself: chains cover
// fusable runs, never exceed maxChain, only end with control transfers,
// and every mid-chain entry keeps a single-op fallback closure.
func TestThreadedChainLayout(t *testing.T) {
	p := mixProg(4)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{Engine: EngineThreaded})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	chains, pureRuns := 0, 0
	for _, fn := range m.funcs {
		if fn.threaded == nil {
			t.Fatalf("function %s has no threaded code", fn.name)
		}
		for bi, tb := range fn.threaded {
			entries := tb.entries
			if len(entries) != len(fn.blocks[bi]) {
				t.Fatalf("%s block %d: %d entries for %d instructions", fn.name, bi, len(entries), len(fn.blocks[bi]))
			}
			for pc, e := range entries {
				if e.fn == nil {
					t.Fatalf("%s b%d:%d has no single-op closure", fn.name, bi, pc)
				}
				if pureIns(&fn.blocks[bi][pc]) {
					if len(e.pure) == 0 {
						t.Fatalf("%s b%d:%d pure instruction without a pure run", fn.name, bi, pc)
					}
					pureRuns++
					for k := pc; k < pc+len(e.pure); k++ {
						if !pureIns(&fn.blocks[bi][k]) {
							t.Fatalf("%s b%d:%d impure instruction inside pure run", fn.name, bi, k)
						}
					}
					// Prefix sums must account the full run exactly.
					var got uint64
					for oi := range tb.pureOps {
						got += uint64(tb.cum[oi][pc+len(e.pure)] - tb.cum[oi][pc])
					}
					if got != uint64(len(e.pure)) {
						t.Fatalf("%s b%d:%d prefix sums cover %d of %d run ops", fn.name, bi, pc, got, len(e.pure))
					}
					continue
				}
				if e.chain == nil {
					continue
				}
				chains++
				if e.n < 2 || e.n > maxChain {
					t.Fatalf("%s b%d:%d chain length %d out of range", fn.name, bi, pc, e.n)
				}
				for k := pc; k < pc+int(e.n)-1; k++ {
					if chainFinal(&fn.blocks[bi][k]) {
						t.Fatalf("%s b%d:%d control transfer mid-chain", fn.name, bi, k)
					}
				}
			}
		}
	}
	if chains == 0 {
		t.Fatal("fuser built no superinstruction chains")
	}
	if pureRuns == 0 {
		t.Fatal("builder formed no inline pure runs")
	}
}
